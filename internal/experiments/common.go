// Package experiments reproduces every table and figure of the paper's
// evaluation (§2 and §5). Each experiment is a function returning a typed
// result with a Render method that prints the same rows/series the paper
// reports; cmd/experiments and the repository's benchmarks drive them.
//
// The shared Env builds, per run: a ground-truth job (package workload), a
// training execution on an idle cluster slice (from which Jockey's profile
// is extracted, as in the paper), the offline C(p, a) model, and a loaded
// shared cluster with Poisson background jobs at ~80% utilization.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/core"
	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/grid"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
	"github.com/jockeysim/jockey/internal/utility"
	"github.com/jockeysim/jockey/internal/workload"
)

// PolicyKind selects one of the four evaluated allocation policies.
type PolicyKind string

// The four policies of §5.1.
const (
	PolicyJockey PolicyKind = "jockey"          // simulator model + adaptation
	PolicyStatic PolicyKind = "jockey-no-adapt" // simulator model, fixed quota
	PolicyAmdahl PolicyKind = "jockey-no-sim"   // Amdahl model + adaptation
	PolicyMax    PolicyKind = "max-allocation"  // all tokens, all the time
)

// AllPolicies lists the policies in the paper's presentation order.
var AllPolicies = []PolicyKind{PolicyJockey, PolicyStatic, PolicyAmdahl, PolicyMax}

// Env is the shared experimental environment. The zero value is not usable;
// construct with NewEnv.
type Env struct {
	// Seed is the master seed all sub-seeds derive from.
	Seed uint64
	// Machines × Slots defines cluster capacity. The SLO job's policies may
	// use up to MaxTokens; background guarantees use part of the rest.
	Machines, Slots int
	// MaxTokens is the top of the candidate allocation grid (the paper's
	// experiments guarantee up to 100 tokens).
	MaxTokens int
	// TrainAlloc is the fixed allocation of training runs.
	TrainAlloc int
	// TrainScale is the input scale of the training run. The paper builds
	// Jockey's offline distributions "using the largest observed input"
	// (§4.4) so the model over-provisions and adaptation releases; 1.4 is
	// near the top of the per-run jitter range.
	TrainScale float64
	// Background configures the interfering load.
	Background workload.BackgroundConfig
	// Parallelism bounds the worker pools of offline C(p, a) builds and of
	// online forward prediction (0 = runtime.GOMAXPROCS(0)). Results are
	// bit-identical at any value, so experiments stay reproducible.
	Parallelism int
	// GridParallel bounds the experiment-level worker pool: how many grid
	// points (independent SLO runs) execute concurrently (0 =
	// runtime.GOMAXPROCS(0), 1 = serial). Rendered experiment output is
	// bit-identical at any value; the golden determinism tests pin this.
	GridParallel int

	// Shared models, built once per environment with per-key single-flight:
	// a cache hit never waits behind another key's in-flight build, and
	// concurrent grid workers needing the same model share one construction.
	grounds  grid.Cache[*profile.Profile] // ground truth by job name
	trains   grid.Cache[*trainEntry]      // training run by job name
	runtimes grid.Cache[*core.Jockey]     // by job name + indicator
	surge    grid.Cache[*profile.Profile] // the big-tenant surge profile
}

type trainEntry struct {
	prof  *profile.Profile
	trace *clusterTrace
}

type clusterTrace = cluster.Result

// NewEnv builds the standard environment of §5.1.
func NewEnv(seed uint64) *Env {
	return &Env{
		Seed:       seed,
		Machines:   30,
		Slots:      5,
		MaxTokens:  100,
		TrainAlloc: 50,
		TrainScale: 1.15,
		Background: workload.BackgroundConfig{
			MeanInterarrival: 78 * time.Second,
			Horizon:          6 * time.Hour,
			GuaranteeLo:      1,
			GuaranteeHi:      3,
			Seed:             stats.DeriveSeed(seed, "bg"),
		},
	}
}

// Ground returns the ground-truth profile of a Table 2 job ("A".."G"),
// generated once per environment.
func (e *Env) Ground(job string) (*profile.Profile, error) {
	return e.grounds.Get(job, func() (*profile.Profile, error) {
		spec, err := workload.Spec(job)
		if err != nil {
			return nil, err
		}
		return workload.Generate(spec, stats.DeriveSeed(e.Seed, "ground", job))
	})
}

// Training returns the profile Jockey extracts from a single training run of
// the job: an execution on an otherwise-idle cluster slice at the fixed
// training allocation (the paper's "single production run ... as input to
// the simulator").
func (e *Env) Training(job string) (*profile.Profile, error) {
	te, err := e.training(job)
	if err != nil {
		return nil, err
	}
	return te.prof, nil
}

// TrainingResult returns the cluster result of the training run (Table 3's
// "training job" column).
func (e *Env) TrainingResult(job string) (cluster.Result, error) {
	te, err := e.training(job)
	if err != nil {
		return cluster.Result{}, err
	}
	return *te.trace, nil
}

// training builds the training run single-flight per job. The build calls
// Ground — a different Cache, so no lock is held across the nesting.
func (e *Env) training(job string) (*trainEntry, error) {
	return e.trains.Get(job, func() (*trainEntry, error) {
		ground, err := e.Ground(job)
		if err != nil {
			return nil, err
		}
		c, err := cluster.New(cluster.Config{
			Machines:        e.Machines,
			SlotsPerMachine: e.Slots,
			Seed:            stats.DeriveSeed(e.Seed, "train-cluster", job),
		})
		if err != nil {
			return nil, err
		}
		trainGround := ground
		if e.TrainScale > 0 && e.TrainScale != 1 {
			trainGround = ground.Scale(e.TrainScale)
		}
		h, err := c.Submit(cluster.JobConfig{
			Profile:   trainGround,
			Guarantee: e.TrainAlloc,
			Tracked:   true,
			NoSpare:   true, // a controlled run at exactly the training allocation
		})
		if err != nil {
			return nil, err
		}
		if err := c.Run(); err != nil {
			return nil, err
		}
		res := h.Result()
		prof, err := profile.FromTrace(ground.Job, res.Trace)
		if err != nil {
			return nil, err
		}
		return &trainEntry{prof: prof, trace: &res}, nil
	})
}

// Runtime returns (building and caching on first use) the Jockey runtime
// for a job under the given indicator. Builds are single-flight per
// (job, indicator): concurrent grid workers needing the same model block on
// one construction, while hits for other models return immediately.
func (e *Env) Runtime(job string, ind core.IndicatorName) (*core.Jockey, error) {
	if ind == "" {
		ind = core.TotalWorkWithQ
	}
	key := job + "/" + string(ind)
	return e.runtimes.Get(key, func() (*core.Jockey, error) {
		train, err := e.Training(job)
		if err != nil {
			return nil, err
		}
		return core.New(train, core.Options{
			Indicator:    ind,
			MaxTokens:    e.MaxTokens,
			RunsPerAlloc: 8,
			Seed:         stats.DeriveSeed(e.Seed, "jockey", job, string(ind)),
			Parallelism:  e.Parallelism,
		})
	})
}

// Deadlines returns the short and long deadlines used for a job: the short
// one is derived from the model's worst-case latency at half the maximum
// allocation (deadlines are "set based on the length of the critical path",
// §2.2/§5.1), the long one is twice the short one.
func (e *Env) Deadlines(job string) (short, long time.Duration, err error) {
	jk, err := e.Runtime(job, core.TotalWorkWithQ)
	if err != nil {
		return 0, 0, err
	}
	base := jk.PredictLatency(jk.Model().SnapAlloc(e.MaxTokens/2), 1.0)
	// Leave headroom for the control loop's slack (×1.2) and dead zone
	// (3 min): a deadline must be comfortably above the achievable latency
	// for "minimum allocation that meets it" to be a meaningful choice.
	short = time.Duration(float64(base)*1.45) + 3*time.Minute
	short = ((short + time.Minute - 1) / time.Minute) * time.Minute
	if short < 2*time.Minute {
		short = 2 * time.Minute
	}
	return short, 2 * short, nil
}

// Knobs optionally overrides control-loop parameters for a run. Zero fields
// keep the §5.1 defaults.
type Knobs struct {
	Slack      float64
	Hysteresis float64
	DeadZone   time.Duration // negative disables
	Period     time.Duration
	Indicator  core.IndicatorName
	// OnlinePredictor drives the Jockey controller with online forward
	// simulation (model.OnlineSim, the §4.4 enhancement) instead of the
	// precomputed C(p, a) table. Only affects PolicyJockey.
	OnlinePredictor bool
	NoSlack         bool // force slack = 1.0
	NoHysteresis    bool // force α = 1.0
	DisableDeadZone bool
}

func (k Knobs) slack() float64 {
	if k.NoSlack {
		return 1.0
	}
	if k.Slack > 0 {
		return k.Slack
	}
	return control.DefaultSlack
}

func (k Knobs) hysteresis() float64 {
	if k.NoHysteresis {
		return 1.0
	}
	if k.Hysteresis > 0 {
		return k.Hysteresis
	}
	return control.DefaultHysteresis
}

func (k Knobs) deadZone() time.Duration {
	if k.DisableDeadZone {
		return -1
	}
	if k.DeadZone != 0 {
		return k.DeadZone
	}
	return control.DefaultDeadZone
}

func (k Knobs) period() time.Duration {
	if k.Period > 0 {
		return k.Period
	}
	return control.DefaultPeriod
}

// SLORun describes one experiment run.
type SLORun struct {
	Job      string
	Deadline time.Duration
	Policy   PolicyKind
	Seed     uint64 // per-run seed (varies cluster + background)
	Knobs    Knobs
	// Utility overrides the default utility.Deadline(Deadline) curve; the
	// Deadline field still defines the SLO for Met and oracle accounting.
	Utility utility.Fn
	// InputScale multiplies the job's ground-truth service times, modelling
	// the input-size variation across runs of recurring jobs (§2.3; Table 3
	// observes runs needing up to twice the training work). Zero samples a
	// per-run factor in [0.8, 1.5); Jockey's offline model is always
	// trained at scale 1.
	InputScale      float64
	DeadlineChanges []cluster.DeadlineChange
	// Guarded wraps the Jockey controller in the model-staleness guard-rail
	// layer (control.Guard), fed live task events from the cluster. Only
	// affects PolicyJockey.
	Guarded bool
	// GuardTuning tunes the guard when Guarded is set (zero = defaults).
	GuardTuning control.GuardTuning
	// Drifts injects per-stage runtime drift into the SLO job (offsets
	// relative to job start, i.e. SLOJobStart on the cluster clock).
	Drifts []cluster.StageDrift
	// RackOutages and Contention perturb the whole cluster (offsets on the
	// cluster clock; the SLO job arrives at SLOJobStart).
	RackOutages []cluster.RackOutage
	Contention  []cluster.ContentionWindow
	OnDecision  func(at time.Duration, d control.Decision)
	OnSample    func(at time.Duration, st model.State)
	// Flight, if non-nil, receives one control.DecisionRecord per control
	// tick of the SLO job's policy. Only policies that support recording
	// emit (the Jockey controller and its guarded variant); recording never
	// perturbs the run (pinned by TestFlightRecordingDoesNotPerturb).
	Flight control.Recorder
	// fixedAlloc, when positive, bypasses the policy and grants a constant
	// allocation for the whole run — the counterfactual replay mode of
	// internal/flight. Everything else (cluster, failures, background load,
	// faults) derives from the same seeds, which is what makes hindsight
	// replays exact.
	fixedAlloc int
}

// SLOJobStart is when Env.Run submits the tracked SLO job: it arrives into a
// cluster warmed up by 15 minutes of background load. Cluster-clock
// perturbations (RackOutages, Contention) should be placed relative to it.
const SLOJobStart = 15 * time.Minute

// Outcome is the result of one run with derived metrics.
type Outcome struct {
	cluster.Result
	Policy PolicyKind
	// RelCompletion is completion/deadline (1.0 = exactly on time).
	RelCompletion float64
	// AboveOracle is the fraction of the allocation integral above the
	// oracle's (§5.1's cluster-impact metric).
	AboveOracle float64
	// GuardEvents records the guard-rail transitions of a Guarded run
	// (reprofiles, fallbacks, panics, recoveries); nil when unguarded.
	GuardEvents []control.GuardEvent
}

// AllocChurn sums the absolute granted-allocation changes over a timeline —
// the total reallocation the policy imposed on the cluster (token units).
func AllocChurn(tl []trace.AllocPoint) int {
	churn := 0
	for i := 1; i < len(tl); i++ {
		d := tl[i].Granted - tl[i-1].Granted
		if d < 0 {
			d = -d
		}
		churn += d
	}
	return churn
}

// buildPolicy constructs the policy for a run from the cached runtime.
func (e *Env) buildPolicy(r SLORun) (control.Policy, error) {
	jk, err := e.Runtime(r.Job, r.Knobs.Indicator)
	if err != nil {
		return nil, err
	}
	u := utility.Fn(utility.Deadline(r.Deadline))
	if r.Utility != nil {
		u = r.Utility
	}
	cfg := control.Config{
		Utility:    u,
		Candidates: jk.Grid(),
		Slack:      r.Knobs.slack(),
		Hysteresis: r.Knobs.hysteresis(),
		DeadZone:   r.Knobs.deadZone(),
	}
	switch r.Policy {
	case PolicyJockey:
		if r.Guarded {
			cfg.Predictor = jk.Model()
			ctrl, err := control.NewController(cfg)
			if err != nil {
				return nil, err
			}
			return control.NewGuard(jk.GuardConfig(ctrl, r.GuardTuning))
		}
		if r.Knobs.OnlinePredictor {
			train, err := e.Training(r.Job)
			if err != nil {
				return nil, err
			}
			online, err := model.NewOnlineSim(train, 5, stats.DeriveSeed(e.Seed, "online", r.Job))
			if err != nil {
				return nil, err
			}
			online.SetParallelism(e.Parallelism)
			cfg.Predictor = online
			return control.NewController(cfg)
		}
		cfg.Predictor = jk.Model()
		return control.NewController(cfg)
	case PolicyStatic:
		cfg.Predictor = jk.Model()
		return control.NewStatic(cfg)
	case PolicyAmdahl:
		train, err := e.Training(r.Job)
		if err != nil {
			return nil, err
		}
		cfg.Predictor = model.NewAmdahl(train)
		return control.NewController(cfg)
	case PolicyMax:
		return control.NewMaxAllocation(e.MaxTokens)
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", r.Policy)
	}
}

// Exec is one worker's reusable execution state: a cluster engine whose
// arenas persist across runs and a background-plan pool. An Exec is not safe
// for concurrent use; runGrid hands each grid worker its own. Runs through
// the same Exec are bit-identical to runs on freshly built clusters (pinned
// by the cluster and workload reuse tests plus the grid golden tests).
type Exec struct {
	engine *cluster.Engine
	bgPool *workload.BackgroundPool
}

// NewExec returns an execution context with empty pools.
func NewExec() *Exec {
	return &Exec{engine: cluster.NewEngine(), bgPool: workload.NewBackgroundPool()}
}

// Run executes one SLO run on a freshly built, background-loaded cluster.
func (e *Env) Run(r SLORun) (Outcome, error) {
	return e.RunExec(NewExec(), r)
}

// RunExec is Run on a reusable execution context: same results, but
// repeated calls recycle the cluster's arenas instead of reallocating them.
func (e *Env) RunExec(x *Exec, r SLORun) (Outcome, error) {
	if r.Deadline <= 0 {
		return Outcome{}, fmt.Errorf("experiments: run needs a deadline")
	}
	ground, err := e.Ground(r.Job)
	if err != nil {
		return Outcome{}, err
	}
	scale := r.InputScale
	if scale == 0 {
		rng := stats.NewRNG(stats.DeriveSeed(e.Seed, "scale", r.Job, fmt.Sprint(r.Seed)))
		scale = 0.8 + 0.7*rng.Float64()
	}
	if scale != 1 {
		ground = ground.Scale(scale)
	}
	var pol control.Policy
	if r.fixedAlloc > 0 {
		pol, err = control.NewMaxAllocation(r.fixedAlloc)
	} else {
		pol, err = e.buildPolicy(r)
	}
	if err != nil {
		return Outcome{}, err
	}
	if r.Flight != nil {
		if rp, ok := pol.(control.Recordable); ok {
			rp.SetRecorder(r.Flight)
		}
	}
	c, err := x.engine.Reset(cluster.Config{
		Machines:        e.Machines,
		SlotsPerMachine: e.Slots,
		MachineMTBF:     90 * time.Minute,
		Seed:            stats.DeriveSeed(e.Seed, "run-cluster", r.Job, fmt.Sprint(r.Seed)),
		RackOutages:     r.RackOutages,
		Contention:      r.Contention,
	})
	if err != nil {
		return Outcome{}, err
	}
	bg := e.Background
	bg.Seed = stats.DeriveSeed(e.Seed, "run-bg", r.Job, fmt.Sprint(r.Seed))
	// Runs happen on different "days": the interfering load level varies
	// run to run, which is what an adaptive policy must cope with.
	bgRng := stats.NewRNG(stats.DeriveSeed(e.Seed, "run-bg-level", r.Job, fmt.Sprint(r.Seed)))
	bg.MeanInterarrival = time.Duration(float64(bg.MeanInterarrival) * (0.6 + 0.9*bgRng.Float64()))
	if _, err := x.bgPool.SubmitBackground(c, bg); err != nil {
		return Outcome{}, err
	}
	// Some runs coincide with a large high-priority tenant claiming a big
	// guaranteed slice mid-run — the "periods of contention" of §2.4 that
	// drain spare capacity. A static quota sized for normal conditions has
	// no answer; an adaptive policy raises its guarantee.
	if bgRng.Float64() < 0.35 {
		surgeAt := 15*time.Minute + time.Duration(bgRng.Float64()*float64(r.Deadline)/2)
		if err := e.submitSurge(c, surgeAt); err != nil {
			return Outcome{}, err
		}
	}
	var onTask func(trace.TaskEvent)
	if g, ok := pol.(*control.Guard); ok {
		// The guard re-profiles online from the job's live task stream.
		onTask = g.ObserveTask
	}
	h, err := c.Submit(cluster.JobConfig{
		Profile:         ground,
		Policy:          pol,
		Deadline:        r.Deadline,
		ControlPeriod:   r.Knobs.period(),
		Start:           SLOJobStart, // arrive into a warmed-up cluster
		Tracked:         true,
		DeadlineChanges: r.DeadlineChanges,
		Drifts:          r.Drifts,
		OnDecision:      r.OnDecision,
		OnSample:        r.OnSample,
		OnTaskEvent:     onTask,
	})
	if err != nil {
		return Outcome{}, err
	}
	if err := c.Run(); err != nil {
		return Outcome{}, err
	}
	res := h.Result()
	out := Outcome{Result: res, Policy: r.Policy}
	if g, ok := pol.(*control.Guard); ok {
		out.GuardEvents = g.Events()
	}
	if res.Deadline > 0 {
		out.RelCompletion = float64(res.Completion) / float64(res.Deadline)
	}
	out.AboveOracle = model.ImpactAboveOracle(res.AllocTokenSeconds, res.OracleTokenSeconds)
	return out, nil
}

// --- text-table rendering shared by all experiments ---

// renderTable renders rows as an aligned text table.
func renderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteString("\n")
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func secs(d time.Duration) string {
	return fmt.Sprintf("%.1f", d.Seconds())
}

// submitSurge adds a large tenant with a big guaranteed slice arriving at
// the given time, squeezing spare capacity for the rest of the run. The
// surge profile is built once per environment: its construction draws no
// randomness, and the stable plan pointer lets reusable engines pool the
// 20000-task arena instead of reallocating it every surge run.
func (e *Env) submitSurge(c *cluster.Cluster, at time.Duration) error {
	p, err := e.surge.Get("surge", func() (*profile.Profile, error) {
		job := dag.NewBuilder("surge").Stage("batch", 20000).MustBuild()
		return profile.New(job, []profile.StageProfile{
			{Exec: stats.LognormalFromMedian(40*time.Second, 2*time.Minute),
				Queue: workload.DefaultQueueDelay()},
		})
	})
	if err != nil {
		return err
	}
	_, err = c.Submit(cluster.JobConfig{Profile: p, Guarantee: 45, Start: at})
	return err
}

// execTask is one experiment grid point: a stable key (for debugging and the
// executor's per-task seed derivation) and a body receiving the worker's
// reusable Exec. Bodies derive their own run seeds from Env.Seed with the
// same labels the serial implementation used, so results are bit-compatible
// with historical serial runs; the executor-provided seed goes unused.
type execTask[T any] struct {
	key string
	run func(x *Exec) (T, error)
}

// runGrid executes the tasks on Env.GridParallel workers and returns their
// results in task order. Each worker lazily creates one Exec and reuses it
// for every task it claims; worker indices partition the exec slice, so no
// synchronization is needed beyond the executor's own. Output is
// bit-identical at any parallelism (grid.Run's contract plus per-task seed
// derivations independent of scheduling).
func runGrid[T any](env *Env, tasks []execTask[T]) ([]T, error) {
	execs := make([]*Exec, grid.Workers(env.GridParallel, len(tasks)))
	gts := make([]grid.Task[T], len(tasks))
	for i, t := range tasks {
		t := t
		gts[i] = grid.Task[T]{
			Key: t.key,
			Run: func(_ context.Context, _ uint64, worker int) (T, error) {
				if execs[worker] == nil {
					execs[worker] = NewExec()
				}
				return t.run(execs[worker])
			},
		}
	}
	return grid.Run(context.Background(), env.Seed, env.GridParallel, gts)
}
