// Package eventq provides the deterministic discrete-event priority queue
// shared by the offline job simulator (internal/sim) and the shared-cluster
// simulator (internal/cluster).
//
// Events are ordered by time; ties are broken by insertion sequence so that
// simulations are reproducible regardless of heap internals.
package eventq

import (
	"container/heap"
	"time"
)

type item[T any] struct {
	at  time.Duration
	seq uint64
	v   T
}

type itemHeap[T any] []item[T]

func (h itemHeap[T]) Len() int { return len(h) }
func (h itemHeap[T]) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap[T]) Push(x any)   { *h = append(*h, x.(item[T])) }
func (h *itemHeap[T]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Queue is a time-ordered event queue. The zero value is ready to use.
type Queue[T any] struct {
	h   itemHeap[T]
	seq uint64
}

// Push schedules v at the given time.
func (q *Queue[T]) Push(at time.Duration, v T) {
	q.seq++
	heap.Push(&q.h, item[T]{at: at, seq: q.seq, v: v})
}

// Pop removes and returns the earliest event. ok is false if the queue is
// empty.
func (q *Queue[T]) Pop() (at time.Duration, v T, ok bool) {
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	it := heap.Pop(&q.h).(item[T])
	return it.at, it.v, true
}

// Peek returns the earliest event time without removing it.
func (q *Queue[T]) Peek() (at time.Duration, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// Len returns the number of queued events.
func (q *Queue[T]) Len() int { return len(q.h) }
