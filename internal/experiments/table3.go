package experiments

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
)

// Table3Column summarizes one execution of job F.
type Table3Column struct {
	Name        string
	TotalWork   time.Duration
	QueueMedian time.Duration
	QueueP90    time.Duration
	ExecMedian  time.Duration
	ExecP90     time.Duration
	Completion  time.Duration
	Deadline    time.Duration
	Met         bool
}

// Table3 compares the training run of job F with two Jockey-controlled runs
// that required substantially more work (§5.2's Table 3: job 1 needed almost
// twice the work and finished slightly late; job 2 was finished on time).
type Table3 struct {
	Columns []Table3Column
}

func summarizeRun(name string, tr *trace.JobTrace, deadline time.Duration, met bool) Table3Column {
	return Table3Column{
		Name:        name,
		TotalWork:   tr.TotalWork(),
		QueueMedian: stats.QuantileDurations(tr.AllQueueSamples(), 0.5),
		QueueP90:    stats.QuantileDurations(tr.AllQueueSamples(), 0.9),
		ExecMedian:  stats.QuantileDurations(tr.AllExecSamples(), 0.5),
		ExecP90:     stats.QuantileDurations(tr.AllExecSamples(), 0.9),
		Completion:  tr.Completion,
		Deadline:    deadline,
		Met:         met,
	}
}

// TrainingVsActual reproduces Table 3 with job F: the training run, a run
// needing ~1.9× the work (job 1, expected to finish barely late) and one
// needing ~1.5× (job 2, expected on time thanks to adaptation).
func TrainingVsActual(env *Env) (*Table3, error) {
	trainRes, err := env.TrainingResult("F")
	if err != nil {
		return nil, err
	}
	short, _, err := env.Deadlines("F")
	if err != nil {
		return nil, err
	}
	t3 := &Table3{}
	t3.Columns = append(t3.Columns, summarizeRun("training", trainRes.Trace, 0, true))
	for i, scale := range []float64{1.9, 1.5} {
		o, err := env.Run(SLORun{
			Job:        "F",
			Deadline:   short,
			Policy:     PolicyJockey,
			Seed:       uint64(200 + i),
			InputScale: scale,
		})
		if err != nil {
			return nil, err
		}
		t3.Columns = append(t3.Columns,
			summarizeRun(fmt.Sprintf("job %d (×%.1f work)", i+1, scale), o.Trace, o.Deadline, o.Met))
	}
	return t3, nil
}

// Render prints the Table 3 comparison.
func (t *Table3) Render() string {
	headers := []string{"statistic"}
	for _, c := range t.Columns {
		headers = append(headers, c.Name)
	}
	row := func(name string, f func(c Table3Column) string) []string {
		out := []string{name}
		for _, c := range t.Columns {
			out = append(out, f(c))
		}
		return out
	}
	rows := [][]string{
		row("total work [hours]", func(c Table3Column) string {
			return fmt.Sprintf("%.1f", c.TotalWork.Hours())
		}),
		row("queueing median [s]", func(c Table3Column) string { return secs(c.QueueMedian) }),
		row("queueing p90 [s]", func(c Table3Column) string { return secs(c.QueueP90) }),
		row("latency median [s]", func(c Table3Column) string { return secs(c.ExecMedian) }),
		row("latency p90 [s]", func(c Table3Column) string { return secs(c.ExecP90) }),
		row("completion [min]", func(c Table3Column) string {
			return fmt.Sprintf("%.1f", c.Completion.Minutes())
		}),
		row("deadline met", func(c Table3Column) string {
			if c.Deadline == 0 {
				return "n/a"
			}
			return fmt.Sprintf("%v (%.0f%% of %v)", c.Met,
				100*float64(c.Completion)/float64(c.Deadline), c.Deadline)
		}),
	}
	return renderTable(
		"Table 3: training run of job F vs two heavier Jockey-controlled runs",
		headers, rows)
}
