// Fixture: the process-global math/rand source and time-seeded generators
// are banned everywhere; explicitly seeded constructors are the allowed path.
package app

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func draws() {
	_ = rand.Float64()                 // want `process-global random source`
	_ = randv2.IntN(7)                 // want `process-global random source`
	rand.Shuffle(3, func(i, j int) {}) // want `process-global random source`
	f := randv2.Float64                // want `process-global random source`
	_ = f
}

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from time.Now`
}

func seeded() (*rand.Rand, *randv2.Rand) {
	legacy := rand.New(rand.NewSource(42))
	modern := randv2.New(randv2.NewPCG(1, 2))
	_ = legacy.Float64()
	_ = modern.Float64()
	return legacy, modern
}
