package jockey_test

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way a
// downstream user would: plan -> profile -> runtime -> policy -> cluster.
func TestPublicAPIEndToEnd(t *testing.T) {
	job := jockey.NewJobBuilder("wordcount").
		Stage("map", 40).
		Stage("reduce", 8).
		Edge("map", "reduce", jockey.AllToAll).
		MustBuild()
	prof := jockey.MustNewProfile(job, []jockey.StageProfile{
		{Exec: jockey.LognormalFromMedian(5*time.Second, 15*time.Second)},
		{Exec: jockey.LognormalFromMedian(20*time.Second, 40*time.Second)},
	})
	jk, err := jockey.New(prof, jockey.Options{
		MaxTokens:    30,
		RunsPerAlloc: 4,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := 10 * time.Minute
	if !jk.Feasible(deadline) {
		t.Fatal("deadline should be feasible")
	}
	pol, err := jk.Policy(deadline)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := jockey.NewCluster(jockey.ClusterConfig{
		Machines: 10, SlotsPerMachine: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := cl.Submit(jockey.JobConfig{
		Profile:  prof,
		Policy:   pol,
		Deadline: deadline,
		Tracked:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	r := h.Result()
	if !r.Met {
		t.Errorf("missed SLO: %v", r.Completion)
	}
	if r.Trace == nil {
		t.Fatal("no trace")
	}
	// A profile can be re-extracted from the controlled run.
	prof2, err := jockey.ProfileFromTrace(job, r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if prof2.TotalWork() <= 0 {
		t.Error("re-extracted profile has no work")
	}
}

func TestPublicScriptCompilation(t *testing.T) {
	job, err := jockey.CompileScript(`
JOB "clicks";
EXTRACT raw FROM "clicks.tsv" TASKS 40;
REDUCE sessions FROM raw ON user TASKS 10;
OUTPUT sessions TO "sessions.tsv";
`)
	if err != nil {
		t.Fatal(err)
	}
	if job.NumStages() != 2 || job.NumBarrierStages() != 1 {
		t.Errorf("plan shape: %v", job)
	}
}

func TestPublicSimulateAndOracle(t *testing.T) {
	job := jockey.NewJobBuilder("tiny").Stage("only", 10).MustBuild()
	prof := jockey.MustNewProfile(job, []jockey.StageProfile{
		{Exec: jockey.Point{V: 6 * time.Second}},
	})
	tr, err := jockey.Simulate(jockey.SimConfig{Profile: prof, Alloc: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Completion != 12*time.Second {
		t.Errorf("completion = %v, want 12s", tr.Completion)
	}
	if got := jockey.Oracle(time.Hour, 30*time.Minute); got != 2 {
		t.Errorf("Oracle = %d, want 2", got)
	}
	u := jockey.DeadlineUtility(time.Hour)
	if u.Utility(30*time.Minute) != 1 {
		t.Error("utility before deadline should be 1")
	}
	s := jockey.SoftDeadlineUtility(time.Hour, 10*time.Minute)
	if s.Utility(2*time.Hour) != 0 {
		t.Error("soft utility should bottom out at 0")
	}
}
