// Fixture: hotalloc over heap water-fill idiom — the indexed max-heap
// arbitration shape internal/fleet's hot paths use. An epoch reslices the
// struct-owned bidder arena and heap index, appends into their standing
// capacity, and sifts by swapping ints (allowed), while the retired
// shortcuts — a fresh bidder slice per epoch, per-job utility buffers,
// sort closures, debug formatting — are exactly what the gate must flag.
package waterfill

import (
	"fmt"
	"sort"
)

type job struct {
	grant int
	util  []float64
}

type bidder struct {
	fj   *job
	rate float64
	idx  int32
}

type arbiter struct {
	bidders []bidder
	heap    []int32
	scratch []float64
}

//jockey:hotpath
func (a *arbiter) beginEpoch(jobs []*job) {
	// Allowed: the arena and heap are owned by the arbiter; reslicing to
	// zero length and appending amortize into standing capacity.
	a.bidders = a.bidders[:0]
	a.heap = a.heap[:0]
	for _, fj := range jobs {
		a.bidders = append(a.bidders, bidder{fj: fj, idx: -1})
	}
}

//jockey:hotpath
func (a *arbiter) push(i int32) {
	a.heap = append(a.heap, i)
	for c := len(a.heap) - 1; c > 0; {
		p := (c - 1) / 2
		if a.bidders[a.heap[c]].rate <= a.bidders[a.heap[p]].rate {
			return
		}
		a.heap[c], a.heap[p] = a.heap[p], a.heap[c]
		c = p
	}
}

//jockey:hotpath
func (a *arbiter) epochFresh(jobs []*job) {
	bidders := make([]bidder, 0, len(jobs)) // want `make allocates`
	for _, fj := range jobs {
		util := []float64{0, 1} // want `slice literal allocates`
		fj.util = util
		bidders = append(bidders, bidder{fj: fj}) // want `append to a local slice allocates`
	}
	a.bidders = append(a.bidders[:0], bidders...)
}

//jockey:hotpath
func (a *arbiter) pickSorted() {
	// The retired selection: materialize and sort — the closure allocates.
	sort.Slice(a.bidders, func(i, j int) bool { // want `closure captures` `boxes it`
		return a.bidders[i].rate > a.bidders[j].rate
	})
}

//jockey:hotpath
func (a *arbiter) debugTop() string {
	return fmt.Sprintf("top=%d", a.heap[0]) // want `fmt.Sprintf allocates`
}

// Rebuilding the arena between replays is cold and may allocate freely.
func (a *arbiter) coldRebuild(n int) {
	a.bidders = make([]bidder, 0, n)
	a.heap = make([]int32, 0, n)
	a.scratch = make([]float64, n)
}
