package experiments

import (
	"strings"
	"testing"
)

// goldenRenders runs the three grid-converted experiments that exercise every
// executor path (per-policy fan-out, per-case folding, paired robustness
// cells) on a fresh Env at the given grid parallelism and returns the
// concatenated rendered tables.
func goldenRenders(t *testing.T, parallel int) string {
	t.Helper()
	env := NewEnv(7)
	env.GridParallel = parallel
	var b strings.Builder
	cmp, err := PolicyComparison(env, ComparisonConfig{
		Jobs:         []string{"B", "E"},
		SeedsPerCase: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(cmp.RenderFig4())
	b.WriteString(cmp.RenderFig5())
	f11, err := Sensitivity(env, []string{"B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(f11.Render())
	rb, err := Robustness(env, "B", 1)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(rb.Render())
	return b.String()
}

// TestGridRendersBitIdenticalAcrossParallelism is the executor's determinism
// contract: the rendered experiment tables are byte-identical whether the
// grid runs on one worker or many. Parallelism 1 exercises the purely
// sequential path; 4 and 8 oversubscribe the scheduler (more workers than
// grid points per case) so task claiming order genuinely varies.
func TestGridRendersBitIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the small experiment suite three times")
	}
	want := goldenRenders(t, 1)
	for _, par := range []int{4, 8} {
		if got := goldenRenders(t, par); got != want {
			t.Errorf("parallelism %d diverged from serial renders:\n--- got ---\n%s\n--- want ---\n%s",
				par, got, want)
		}
	}
}

// benchEnv is shared across grid benchmarks so model construction (the
// dominant one-time cost) is excluded from the measured loop.
var benchEnv *Env

func gridBenchEnv(b *testing.B) *Env {
	b.Helper()
	if benchEnv == nil {
		benchEnv = NewEnv(7)
		// Warm the model caches outside the timed region.
		if _, _, err := benchEnv.Deadlines("B"); err != nil {
			b.Fatal(err)
		}
	}
	return benchEnv
}

// BenchmarkGridSerial measures the robustness grid (20 cluster replays with
// per-worker engine and background-pool reuse) on a single worker.
func BenchmarkGridSerial(b *testing.B) {
	env := gridBenchEnv(b)
	env.GridParallel = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Robustness(env, "B", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridParallel is BenchmarkGridSerial at GOMAXPROCS workers; on a
// multi-core machine the wall-clock ratio to the serial benchmark is the
// executor's speedup, on one core it bounds the pool's overhead.
func BenchmarkGridParallel(b *testing.B) {
	env := gridBenchEnv(b)
	env.GridParallel = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Robustness(env, "B", 1); err != nil {
			b.Fatal(err)
		}
	}
}
