// Fixture: order-dependent effects inside range-over-map loops, the
// collect-then-sort idiom that is allowed, and commutative effects that are
// allowed.
package app

import (
	"fmt"
	"sort"
	"strings"
)

func floatAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum`
	}
	return sum
}

func appendUnsorted(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys`
	}
	return keys
}

func collectThenSort(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // allowed: keys are sorted below
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys { // slice range: no report
		sum += m[k]
	}
	return sum
}

func emitsOutput(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside range over map`
		b.WriteString(k)            // want `WriteString inside range over map`
	}
	return b.String()
}

func channelSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

func commutative(m map[string]int) (int, map[string]int) {
	n := 0
	for _, v := range m {
		n += v // integer sums commute: no report
	}
	double := map[string]int{}
	for k, v := range m {
		double[k] = 2 * v // writes into a map: no report
	}
	return n, double
}
