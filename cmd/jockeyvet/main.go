// Command jockeyvet is the repository's determinism- and performance-
// contract checker: a vet tool with seven repo-specific analyzers
// (walltime, globalrand, maporder, panicpath, errctx, seedflow, hotalloc —
// see the README table in this directory and the "Determinism contract"
// section of DESIGN.md).
//
// It speaks the `go vet -vettool` unit protocol, so the canonical
// invocation is
//
//	go build -o bin/jockeyvet ./cmd/jockeyvet
//	go vet -vettool=$PWD/bin/jockeyvet ./...
//
// Run directly with package patterns it re-execs itself through go vet, so
// `jockeyvet ./...` is equivalent; `jockeyvet -json ./...` aggregates every
// finding into one machine-readable report on stdout (schema below) and
// mirrors them as `file:line:col: [analyzer] message` lines on stderr for
// problem matchers. A package pattern that matches no packages is an error,
// so a CI typo cannot silently skip enforcement.
//
// A finding is suppressed only by fixing it or by an explicit, reasoned
// escape hatch on the offending line:
//
//	//jockeyvet:ignore <reason the rule does not apply here>
//	//jockeyvet:ignore <analyzer> <reason>   (suppresses only the named rule)
//
// The -json report schema, version 1:
//
//	{
//	  "version": 1,
//	  "tool": "jockeyvet",
//	  "diagnostics": [
//	    {"file": "...", "line": N, "column": N, "analyzer": "...", "message": "..."}
//	  ]
//	}
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/jockeysim/jockey/internal/vet"
	"github.com/jockeysim/jockey/internal/vet/rules"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command's vettool handshake: version probe, flag enumeration,
	// then one invocation per compilation unit with a vet.cfg path.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// The version must change whenever the tool's behavior does: the go
		// command keys its vet result cache on this string, so a constant
		// here would let a rebuilt jockeyvet silently reuse stale results.
		// Hash the binary itself, as x/tools' unitchecker does.
		fmt.Printf("jockeyvet version devel buildID=%s\n", selfHash())
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		// Advertise -json so `go vet -json -vettool=jockeyvet` forwards the
		// flag to each unit invocation.
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON output"}]`)
		return 0
	}
	jsonOut := false
	if len(args) > 0 && (args[0] == "-json" || args[0] == "-json=true") {
		jsonOut = true
		args = args[1:]
	} else if len(args) > 0 && args[0] == "-json=false" {
		args = args[1:]
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vet.RunUnit(args[0], jsonOut, rules.All())
	}

	if len(args) > 0 && args[0] == "help" {
		help()
		return 0
	}

	// Standalone mode: `jockeyvet [-json] ./...` re-execs through go vet,
	// which handles package loading, export data, fact side files, and test
	// variants.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "jockeyvet: locating own binary: %v\n", err)
		return 1
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	if code := requirePackages(args); code != 0 {
		return code
	}
	if jsonOut {
		return runJSON(self, args)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "jockeyvet: %v\n", err)
		return 1
	}
	return 0
}

// requirePackages refuses patterns that match nothing: `jockeyvet
// ./intrenal/...` passing silently in CI would disable the whole contract.
func requirePackages(patterns []string) int {
	var stdout, stderr bytes.Buffer
	cmd := exec.Command("go", append([]string{"list", "--"}, patterns...)...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "jockeyvet: resolving package patterns %v: %v\n%s", patterns, err, stderr.String())
		return 1
	}
	if strings.TrimSpace(stdout.String()) == "" {
		fmt.Fprintf(os.Stderr, "jockeyvet: package pattern %s matched no packages; nothing would be checked\n", strings.Join(patterns, " "))
		return 1
	}
	return 0
}

// report is the -json aggregate: one sorted list of findings across every
// analyzed package. Version bumps only on incompatible shape changes.
type report struct {
	Version     int          `json:"version"`
	Tool        string       `json:"tool"`
	Diagnostics []diagnostic `json:"diagnostics"`
}

type diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// runJSON drives `go vet -json`, aggregates the per-unit objects into one
// report on stdout, and mirrors findings on stderr in the
// `file:line:col: [analyzer] message` shape the CI problem matcher scrapes.
func runJSON(self string, patterns []string) int {
	// go vet's -json mode streams the per-unit objects (and `# pkg` headers)
	// on stderr, with stdout unused.
	var vetOut bytes.Buffer
	cmd := exec.Command("go", append([]string{"vet", "-json", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = &vetOut
	if err := cmd.Run(); err != nil {
		// `go vet -json` fails only on broken invocations (findings are
		// data, not an error); surface that and stop.
		fmt.Fprintf(os.Stderr, "jockeyvet: go vet -json: %v\n%s", err, vetOut.String())
		return 1
	}
	rep := report{Version: 1, Tool: "jockeyvet", Diagnostics: []diagnostic{}}
	if err := parseVetJSON(vetOut.Bytes(), &rep); err != nil {
		fmt.Fprintf(os.Stderr, "jockeyvet: %v\n", err)
		return 1
	}
	sort.Slice(rep.Diagnostics, func(i, j int) bool {
		a, b := rep.Diagnostics[i], rep.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out, err := json.MarshalIndent(rep, "", "\t")
	if err == nil {
		err = validateReport(out)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jockeyvet: building report: %v\n", err)
		return 1
	}
	fmt.Println(string(out))
	for _, d := range rep.Diagnostics {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Column, d.Analyzer, d.Message)
	}
	if len(rep.Diagnostics) > 0 {
		return 2
	}
	return 0
}

// parseVetJSON decodes the `go vet -json` stream: `# pkg` comment lines
// interleaved with {"pkgid": {"analyzer": [{"posn", "message"}]}} objects.
func parseVetJSON(raw []byte, rep *report) error {
	var objs []byte
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		objs = append(objs, line...)
		objs = append(objs, '\n')
	}
	dec := json.NewDecoder(bytes.NewReader(objs))
	for {
		var unit map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		if err := dec.Decode(&unit); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("parsing go vet -json output: %w", err)
		}
		for _, byAnalyzer := range unit {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					file, line, col := splitPosn(d.Posn)
					rep.Diagnostics = append(rep.Diagnostics, diagnostic{
						File:     relPath(file),
						Line:     line,
						Column:   col,
						Analyzer: analyzer,
						Message:  d.Message,
					})
				}
			}
		}
	}
}

// splitPosn breaks "path:line:col" from the right, so path may itself
// contain colons.
func splitPosn(posn string) (file string, line, col int) {
	rest := posn
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		col, _ = strconv.Atoi(rest[i+1:])
		rest = rest[:i]
	}
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		line, _ = strconv.Atoi(rest[i+1:])
		rest = rest[:i]
	}
	return rest, line, col
}

// relPath renders p relative to the working directory when possible: the
// problem matcher annotates PR files by repo-relative path.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	rel, err := filepath.Rel(wd, p)
	if err != nil || strings.HasPrefix(rel, "..") {
		return p
	}
	return rel
}

// validateReport checks data against the version-1 report schema; the
// integration tests call it on real output, and runJSON self-checks before
// printing.
func validateReport(data []byte) error {
	var rep struct {
		Version     *int    `json:"version"`
		Tool        *string `json:"tool"`
		Diagnostics *[]struct {
			File     *string `json:"file"`
			Line     *int    `json:"line"`
			Column   *int    `json:"column"`
			Analyzer *string `json:"analyzer"`
			Message  *string `json:"message"`
		} `json:"diagnostics"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("report schema: %w", err)
	}
	switch {
	case rep.Version == nil || *rep.Version != 1:
		return fmt.Errorf("report schema: version must be 1")
	case rep.Tool == nil || *rep.Tool != "jockeyvet":
		return fmt.Errorf("report schema: tool must be %q", "jockeyvet")
	case rep.Diagnostics == nil:
		return fmt.Errorf("report schema: diagnostics must be present (empty list when clean)")
	}
	for i, d := range *rep.Diagnostics {
		switch {
		case d.File == nil || *d.File == "":
			return fmt.Errorf("report schema: diagnostics[%d] missing file", i)
		case d.Line == nil || *d.Line < 1:
			return fmt.Errorf("report schema: diagnostics[%d] line must be >= 1", i)
		case d.Column == nil || *d.Column < 1:
			return fmt.Errorf("report schema: diagnostics[%d] column must be >= 1", i)
		case d.Analyzer == nil || *d.Analyzer == "":
			return fmt.Errorf("report schema: diagnostics[%d] missing analyzer", i)
		case d.Message == nil || *d.Message == "":
			return fmt.Errorf("report schema: diagnostics[%d] missing message", i)
		}
	}
	return nil
}

// selfHash fingerprints the running binary for the -V cache key.
func selfHash() string {
	self, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(self)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func help() {
	fmt.Println("jockeyvet — determinism- and performance-contract analyzers")
	fmt.Println()
	for _, a := range rules.All() {
		fmt.Printf("  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("Usage: jockeyvet [-json] [package patterns]   (default ./...)")
	fmt.Println()
	fmt.Println("Mark an allocation-free function with a //jockey:hotpath doc comment")
	fmt.Println("to put its body under the hotalloc gate.")
	fmt.Println()
	fmt.Println("Suppress one line with a reasoned directive:")
	fmt.Println("  //jockeyvet:ignore <reason>              suppress every rule on the line")
	fmt.Println("  //jockeyvet:ignore <analyzer> <reason>   suppress only the named rule")
	fmt.Println("A reasoned directive that suppresses nothing is itself an error.")
	fmt.Println()
	fmt.Println("-json writes an aggregate report to stdout (version-1 schema) and")
	fmt.Println("mirrors findings on stderr as file:line:col: [analyzer] message.")
}
