package rules

import (
	"go/ast"
	"go/types"

	"github.com/jockeysim/jockey/internal/vet"
)

// wallClockFuncs are the package time functions that read or depend on the
// wall clock. Pure conversions and constructors (time.Duration, time.Unix,
// time.Date, ...) are fine: the contract bans the *clock*, not the types.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"After":     true,
	"AfterFunc": true,
}

// Walltime bans wall-clock time in the deterministic packages: a simulated
// cluster whose trajectory depends on time.Now is not replayable, and the
// PR 1 bit-identical C(p, a) guarantee silently dies. Virtual time (the
// simulation's own `now`) must be threaded through instead. Test files are
// exempt (timeouts and benchmarks legitimately watch the real clock), as
// are cmd/ and the experiment harness, which are not in
// DeterministicPackages.
var Walltime = &vet.Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/Since/Until/Sleep/Tick/NewTicker/NewTimer/After/AfterFunc in the deterministic packages; use virtual time",
	Run:  runWalltime,
}

func runWalltime(p *vet.Pass) error {
	if !isDeterministic(p.Pkg.Path()) {
		return nil
	}
	for _, f := range p.Files {
		if vet.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := pkgFuncRef(p, sel, "time")
			if !ok || !wallClockFuncs[name] {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the wall clock in deterministic package %s; thread virtual time through instead", name, p.Pkg.Name())
			return true
		})
	}
	return nil
}

// pkgFuncRef reports whether sel references a package-level function of the
// package imported under pkgPath (in call position or as a function value),
// returning the function's name.
func pkgFuncRef(p *vet.Pass, sel *ast.SelectorExpr, pkgPath string) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	if _, ok := p.Info.Uses[sel.Sel].(*types.Func); !ok {
		return "", false
	}
	return sel.Sel.Name, true
}
