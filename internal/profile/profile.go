// Package profile captures the per-stage statistics Jockey extracts from a
// prior execution of a recurring job (§4.1): task service-time and queueing
// distributions, failure probabilities, and the per-stage aggregates used by
// the Amdahl's-Law model and the progress indicators (T_s, Q_s, l_s).
//
// Profiles come from two places:
//
//   - FromTrace distills a recorded execution (package trace) — this is the
//     paper's "single profile run" path and the one the Jockey runtime uses.
//   - New builds a profile directly from known distributions — used by the
//     workload generator, which plays the role of ground truth.
package profile

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/invariant"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
)

// StageProfile holds the statistics of one stage.
type StageProfile struct {
	// Exec is the distribution of task service times.
	Exec stats.Distribution
	// Queue is the distribution of per-task scheduling/initialization
	// latency (time between becoming schedulable with an available token and
	// actually running).
	Queue stats.Distribution
	// FailureProb is the per-attempt probability that a task fails and must
	// be re-executed.
	FailureProb float64

	// TotalWork is T_s: aggregate execution time of the stage's tasks in the
	// training run.
	TotalWork time.Duration
	// TotalQueue is Q_s: aggregate queueing time of the stage's tasks.
	TotalQueue time.Duration
	// LongestTask is l_s: the longest observed task execution time.
	LongestTask time.Duration
}

// Profile is a complete job profile: the plan plus per-stage statistics.
type Profile struct {
	Job    *dag.Job
	Stages []StageProfile // parallel to Job.Stages

	// TrainingCompletion is the end-to-end latency of the training run, if
	// the profile came from one (zero otherwise).
	TrainingCompletion time.Duration
}

// New builds a profile from explicit per-stage statistics. The stages slice
// must be parallel to job.Stages. Aggregates (TotalWork, TotalQueue,
// LongestTask) that are zero are filled from the distributions: T_s and Q_s
// from task count × mean, l_s from the 99.5th percentile of the service
// distribution.
func New(job *dag.Job, stages []StageProfile) (*Profile, error) {
	if job == nil {
		return nil, fmt.Errorf("profile: nil job")
	}
	if len(stages) != job.NumStages() {
		return nil, fmt.Errorf("profile: job %q has %d stages, got %d stage profiles",
			job.Name, job.NumStages(), len(stages))
	}
	out := make([]StageProfile, len(stages))
	for i, sp := range stages {
		if sp.Exec == nil {
			return nil, fmt.Errorf("profile: stage %q has no execution distribution", job.Stages[i].Name)
		}
		if sp.Queue == nil {
			sp.Queue = stats.Point{V: 0}
		}
		if sp.FailureProb < 0 || sp.FailureProb >= 1 {
			return nil, fmt.Errorf("profile: stage %q failure probability %v out of [0,1)",
				job.Stages[i].Name, sp.FailureProb)
		}
		n := time.Duration(job.Stages[i].Tasks)
		if sp.TotalWork == 0 {
			sp.TotalWork = n * sp.Exec.Mean()
		}
		if sp.TotalQueue == 0 {
			sp.TotalQueue = n * sp.Queue.Mean()
		}
		if sp.LongestTask == 0 {
			sp.LongestTask = sp.Exec.Quantile(0.995)
		}
		out[i] = sp
	}
	return &Profile{Job: job, Stages: out}, nil
}

// MustNew is New that panics on error, for static definitions.
func MustNew(job *dag.Job, stages []StageProfile) *Profile {
	p, err := New(job, stages)
	invariant.NoErr(err, "profile: MustNew on a static definition")
	return p
}

// FromTrace extracts a profile from a recorded execution. Stages with no
// successful attempts in the trace (which cannot happen in a completed run)
// cause an error.
func FromTrace(job *dag.Job, tr *trace.JobTrace) (*Profile, error) {
	if job == nil || tr == nil {
		return nil, fmt.Errorf("profile: nil job or trace")
	}
	stages := make([]StageProfile, job.NumStages())
	for s := range stages {
		exec := tr.ExecSamples(s)
		if len(exec) == 0 {
			return nil, fmt.Errorf("profile: trace of %q has no successful attempts for stage %q",
				tr.JobName, job.Stages[s].Name)
		}
		// Queue uses init latency only: token waiting re-emerges when the
		// profile is replayed under an allocation, so baking observed waits
		// into the distribution would double-count them.
		inits := tr.InitSamples(s)
		stages[s] = StageProfile{
			Exec:        stats.NewEmpirical(exec),
			Queue:       stats.NewEmpirical(inits),
			FailureProb: tr.FailureRate(s),
			TotalWork:   tr.StageWork(s),
			TotalQueue:  tr.StageQueue(s),
			LongestTask: tr.LongestTask(s),
		}
	}
	return &Profile{Job: job, Stages: stages, TrainingCompletion: tr.Completion}, nil
}

// TotalWork returns Σ_s T_s, the job's aggregate CPU time.
func (p *Profile) TotalWork() time.Duration {
	var sum time.Duration
	for _, s := range p.Stages {
		sum += s.TotalWork
	}
	return sum
}

// TotalQueue returns Σ_s Q_s.
func (p *Profile) TotalQueue() time.Duration {
	var sum time.Duration
	for _, s := range p.Stages {
		sum += s.TotalQueue
	}
	return sum
}

// CriticalPath returns the length of the plan's critical path where each
// stage costs its longest observed task l_s — the paper's feasibility bound:
// no deadline shorter than this is achievable at any allocation.
func (p *Profile) CriticalPath() time.Duration {
	return p.Job.CriticalPath(func(s int) time.Duration { return p.Stages[s].LongestTask })
}

// LongestPathAfter returns, for each stage s, the paper's L_s: the length of
// the longest l-weighted path from s to the end of the job, excluding s's
// own cost.
func (p *Profile) LongestPathAfter() []time.Duration {
	inclusive := p.Job.LongestPathsFrom(func(s int) time.Duration { return p.Stages[s].LongestTask })
	out := make([]time.Duration, len(inclusive))
	for s, v := range inclusive {
		out[s] = v - p.Stages[s].LongestTask
	}
	return out
}

// Scale returns a copy of the profile with all service times (and the
// derived aggregates) multiplied by factor, modelling a proportionally
// larger input. Queueing distributions and failure probabilities are
// unchanged.
func (p *Profile) Scale(factor float64) *Profile {
	invariant.Assertf(factor > 0, "profile: Scale(%v) of job %q needs a positive factor", factor, p.Job.Name)
	stages := make([]StageProfile, len(p.Stages))
	for i, sp := range p.Stages {
		stages[i] = StageProfile{
			Exec:        stats.Scaled{Base: sp.Exec, Factor: factor},
			Queue:       sp.Queue,
			FailureProb: sp.FailureProb,
			TotalWork:   time.Duration(float64(sp.TotalWork) * factor),
			TotalQueue:  sp.TotalQueue,
			LongestTask: time.Duration(float64(sp.LongestTask) * factor),
		}
	}
	return &Profile{Job: p.Job, Stages: stages, TrainingCompletion: p.TrainingCompletion}
}
