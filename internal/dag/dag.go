// Package dag models the execution plan of a data-parallel job: a directed
// acyclic graph of stages, where each stage consists of one or more parallel
// tasks (the paper's "vertices") and edges carry data from stage to stage.
//
// Two edge kinds are distinguished, matching the SCOPE/Dryad plans the paper
// describes (§2.1):
//
//   - OneToOne: task j of the consumer reads a fixed slice of the producer's
//     tasks (pipelined map-like stages). Consumer tasks may start as soon as
//     their own inputs finish.
//   - AllToAll: a full shuffle. Every consumer task reads every producer
//     task, so the consumer cannot start until the entire producer stage has
//     finished — a barrier.
//
// The graph is immutable after Build; simulators hold indices into it.
package dag

import (
	"fmt"
	"sort"

	"github.com/jockeysim/jockey/internal/invariant"
	"time"
)

// EdgeKind describes how tasks of a consumer stage depend on the producer.
type EdgeKind int

const (
	// OneToOne connects each consumer task to a proportional slice of
	// producer tasks.
	OneToOne EdgeKind = iota
	// AllToAll is a full shuffle; it acts as a barrier.
	AllToAll
)

func (k EdgeKind) String() string {
	switch k {
	case OneToOne:
		return "one-to-one"
	case AllToAll:
		return "all-to-all"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is a dataflow dependency between two stages, identified by index into
// Job.Stages.
type Edge struct {
	From, To int
	Kind     EdgeKind
}

// Stage is one operator of the plan (map, reduce, join, ...) split into
// Tasks parallel tasks.
type Stage struct {
	Name  string
	Tasks int
	// InputGB is the amount of data this stage reads, in gigabytes. It is
	// carried for reporting (Table 2's "total data read") and does not
	// affect scheduling.
	InputGB float64
}

// Job is a validated, immutable execution plan.
type Job struct {
	Name   string
	Stages []Stage
	Edges  []Edge

	byName  map[string]int
	inputs  [][]Edge // per stage, incoming edges
	outputs [][]Edge // per stage, outgoing edges
	topo    []int    // topological order of stage indices
}

// Builder accumulates stages and edges and produces a validated Job.
type Builder struct {
	name   string
	stages []Stage
	edges  []edgeByName
	err    error
}

type edgeByName struct {
	from, to string
	kind     EdgeKind
}

// NewBuilder starts a plan for a job with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// Stage adds a stage with the given task count. It returns the builder for
// chaining. Errors (duplicate name, non-positive tasks) are deferred to
// Build.
func (b *Builder) Stage(name string, tasks int) *Builder {
	return b.StageData(name, tasks, 0)
}

// StageData adds a stage annotated with the gigabytes of input it reads.
func (b *Builder) StageData(name string, tasks int, inputGB float64) *Builder {
	if b.err != nil {
		return b
	}
	if name == "" {
		b.err = fmt.Errorf("dag: job %q: stage with empty name", b.name)
		return b
	}
	if tasks <= 0 {
		b.err = fmt.Errorf("dag: job %q: stage %q has %d tasks; need at least 1", b.name, name, tasks)
		return b
	}
	for _, s := range b.stages {
		if s.Name == name {
			b.err = fmt.Errorf("dag: job %q: duplicate stage %q", b.name, name)
			return b
		}
	}
	b.stages = append(b.stages, Stage{Name: name, Tasks: tasks, InputGB: inputGB})
	return b
}

// Edge adds a dataflow edge between two named stages.
func (b *Builder) Edge(from, to string, kind EdgeKind) *Builder {
	if b.err != nil {
		return b
	}
	b.edges = append(b.edges, edgeByName{from: from, to: to, kind: kind})
	return b
}

// Build validates the accumulated plan and returns the immutable Job.
func (b *Builder) Build() (*Job, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stages) == 0 {
		return nil, fmt.Errorf("dag: job %q has no stages", b.name)
	}
	j := &Job{
		Name:   b.name,
		Stages: append([]Stage(nil), b.stages...),
		byName: make(map[string]int, len(b.stages)),
	}
	for i, s := range j.Stages {
		j.byName[s.Name] = i
	}
	seen := make(map[[2]int]bool)
	for _, e := range b.edges {
		from, ok := j.byName[e.from]
		if !ok {
			return nil, fmt.Errorf("dag: job %q: edge from unknown stage %q", b.name, e.from)
		}
		to, ok := j.byName[e.to]
		if !ok {
			return nil, fmt.Errorf("dag: job %q: edge to unknown stage %q", b.name, e.to)
		}
		if from == to {
			return nil, fmt.Errorf("dag: job %q: self-edge on stage %q", b.name, e.from)
		}
		if seen[[2]int{from, to}] {
			return nil, fmt.Errorf("dag: job %q: duplicate edge %q -> %q", b.name, e.from, e.to)
		}
		seen[[2]int{from, to}] = true
		j.Edges = append(j.Edges, Edge{From: from, To: to, Kind: e.kind})
	}
	j.inputs = make([][]Edge, len(j.Stages))
	j.outputs = make([][]Edge, len(j.Stages))
	for _, e := range j.Edges {
		j.inputs[e.To] = append(j.inputs[e.To], e)
		j.outputs[e.From] = append(j.outputs[e.From], e)
	}
	topo, err := j.topoSort()
	if err != nil {
		return nil, err
	}
	j.topo = topo
	return j, nil
}

// MustBuild is Build that panics on error, for static plan definitions.
func (b *Builder) MustBuild() *Job {
	j, err := b.Build()
	invariant.NoErr(err, "dag: MustBuild on a static plan definition")
	return j
}

// topoSort computes a deterministic topological order from Stages and Edges
// alone, so it is safe to call before the adjacency caches exist.
func (j *Job) topoSort() ([]int, error) {
	indeg := make([]int, len(j.Stages))
	succ := make([][]int, len(j.Stages))
	for _, e := range j.Edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	// Deterministic order: among ready stages, pick the lowest index.
	var ready []int
	for i := range j.Stages {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	order := make([]int, 0, len(j.Stages))
	for len(ready) > 0 {
		s := ready[0]
		ready = ready[1:]
		order = append(order, s)
		var unlocked []int
		for _, to := range succ[s] {
			indeg[to]--
			if indeg[to] == 0 {
				unlocked = append(unlocked, to)
			}
		}
		sort.Ints(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(order) != len(j.Stages) {
		return nil, fmt.Errorf("dag: job %q contains a cycle", j.Name)
	}
	return order, nil
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		if a[i] <= b[k] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[k])
			k++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[k:]...)
	return out
}

// NumStages returns the number of stages.
func (j *Job) NumStages() int { return len(j.Stages) }

// StageIndex returns the index of the named stage, or -1.
func (j *Job) StageIndex(name string) int {
	if i, ok := j.byName[name]; ok {
		return i
	}
	return -1
}

// Inputs returns the incoming edges of stage s. The slice is owned by the Job.
func (j *Job) Inputs(s int) []Edge { return j.inputs[s] }

// Outputs returns the outgoing edges of stage s. The slice is owned by the Job.
func (j *Job) Outputs(s int) []Edge { return j.outputs[s] }

// TopoOrder returns stage indices in a deterministic topological order.
// The slice is owned by the Job.
func (j *Job) TopoOrder() []int { return j.topo }

// IsBarrier reports whether stage s has at least one all-to-all input, i.e.
// it cannot start until one of its producers completes entirely.
func (j *Job) IsBarrier(s int) bool {
	for _, e := range j.inputs[s] {
		if e.Kind == AllToAll {
			return true
		}
	}
	return false
}

// NumBarrierStages counts stages with at least one all-to-all input
// (Table 2's "number of barrier stages").
func (j *Job) NumBarrierStages() int {
	n := 0
	for s := range j.Stages {
		if j.IsBarrier(s) {
			n++
		}
	}
	return n
}

// TotalTasks returns the total number of tasks (vertices) across all stages.
func (j *Job) TotalTasks() int {
	n := 0
	for _, s := range j.Stages {
		n += s.Tasks
	}
	return n
}

// TotalInputGB sums the per-stage input sizes.
func (j *Job) TotalInputGB() float64 {
	var gb float64
	for _, s := range j.Stages {
		gb += s.InputGB
	}
	return gb
}

// Roots returns indices of stages with no inputs.
func (j *Job) Roots() []int {
	var out []int
	for s := range j.Stages {
		if len(j.inputs[s]) == 0 {
			out = append(out, s)
		}
	}
	return out
}

// Leaves returns indices of stages with no outputs.
func (j *Job) Leaves() []int {
	var out []int
	for s := range j.Stages {
		if len(j.outputs[s]) == 0 {
			out = append(out, s)
		}
	}
	return out
}

// DepRange returns the half-open range [lo, hi) of producer task indices
// that task `task` of the consumer depends on across edge e. For AllToAll
// edges this is the whole producer stage. For OneToOne edges the producer's
// tasks are split proportionally among consumer tasks, so that equal task
// counts give the identity mapping.
func (j *Job) DepRange(e Edge, task int) (lo, hi int) {
	n := j.Stages[e.From].Tasks
	if e.Kind == AllToAll {
		return 0, n
	}
	m := j.Stages[e.To].Tasks
	lo = task * n / m
	hi = (task + 1) * n / m
	if hi <= lo {
		// More consumers than producers: several consumer tasks share one
		// producer task.
		hi = lo + 1
		if hi > n {
			lo, hi = n-1, n
		}
	}
	return lo, hi
}

// CriticalPath returns the length of the longest stage path through the job,
// where stage s contributes stageCost(s). This is the job's minimum possible
// latency at infinite parallelism — the feasibility bound for deadlines
// (§2.2) and the serial term of the Amdahl model (§4.1).
func (j *Job) CriticalPath(stageCost func(stage int) time.Duration) time.Duration {
	longest := j.LongestPathsFrom(stageCost)
	var best time.Duration
	for _, v := range longest {
		if v > best {
			best = v
		}
	}
	return best
}

// LongestPathsFrom returns, for each stage s, the length of the longest path
// that starts at s (inclusive of s's own cost) and follows edges to a leaf —
// the paper's L_s plus the stage's own cost. Costs are supplied per stage.
func (j *Job) LongestPathsFrom(stageCost func(stage int) time.Duration) []time.Duration {
	out := make([]time.Duration, len(j.Stages))
	// Walk in reverse topological order so successors are resolved first.
	for i := len(j.topo) - 1; i >= 0; i-- {
		s := j.topo[i]
		var best time.Duration
		for _, e := range j.outputs[s] {
			if out[e.To] > best {
				best = out[e.To]
			}
		}
		out[s] = best + stageCost(s)
	}
	return out
}

// Validate re-checks the structural invariants of the job. Jobs produced by
// Build always pass; Validate exists so deserialized or hand-constructed
// values can be checked.
func (j *Job) Validate() error {
	if len(j.Stages) == 0 {
		return fmt.Errorf("dag: job %q has no stages", j.Name)
	}
	for i, s := range j.Stages {
		if s.Tasks <= 0 {
			return fmt.Errorf("dag: job %q: stage %q (index %d) has %d tasks", j.Name, s.Name, i, s.Tasks)
		}
	}
	for _, e := range j.Edges {
		if e.From < 0 || e.From >= len(j.Stages) || e.To < 0 || e.To >= len(j.Stages) {
			return fmt.Errorf("dag: job %q: edge %v out of range", j.Name, e)
		}
		if e.From == e.To {
			return fmt.Errorf("dag: job %q: self-edge on stage %d", j.Name, e.From)
		}
	}
	if _, err := j.topoSort(); err != nil {
		return err
	}
	return nil
}

func (j *Job) String() string {
	return fmt.Sprintf("job %q: %d stages (%d barrier), %d vertices",
		j.Name, j.NumStages(), j.NumBarrierStages(), j.TotalTasks())
}
