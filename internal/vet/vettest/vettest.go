// Package vettest is the fixture runner for the jockeyvet analyzers — the
// analysistest analogue of the stdlib-only internal/vet framework. A fixture
// is a directory holding one Go package whose lines carry expectations:
//
//	time.Now() // want `reads the wall clock`
//
// Each `want` regexp must match exactly one diagnostic reported on its line,
// and every diagnostic must be claimed by a want. Fixtures import only the
// standard library; export data comes from `go list -export`, so the runner
// works offline.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/jockeysim/jockey/internal/vet"
)

var (
	exportMu    sync.Mutex
	exportFiles = map[string]string{}
)

// exportData locates compiled export data for a standard-library import
// path via the go command (building it on first use).
func exportData(path string) (string, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	if f, ok := exportFiles[path]; ok {
		return f, nil
	}
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	if err != nil {
		return "", fmt.Errorf("go list -export %s: %v", path, err)
	}
	f := strings.TrimSpace(string(out))
	if f == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	exportFiles[path] = f
	return f, nil
}

// A Pkg names one fixture package: the directory holding its files and the
// import path it is analyzed under. The path is how fixtures opt in to (or
// stay out of) package-scoped rules: a fixture analyzed as
// "github.com/jockeysim/jockey/internal/sim" is bound by the determinism
// contract; one analyzed as "example.com/fixture/sim" is not, whatever its
// directory is called.
type Pkg struct {
	Dir  string
	Path string
}

// Run analyzes the single fixture package in dir under an import path equal
// to the directory base name prefixed with the repository's internal/ tree
// — the common case for package-scoped rules ("testdata/walltime/sim" is
// analyzed as <module>/internal/sim).
func Run(t *testing.T, dir string, analyzers ...*vet.Analyzer) {
	t.Helper()
	RunPkgs(t, []Pkg{{Dir: dir, Path: "github.com/jockeysim/jockey/internal/" + filepath.Base(dir)}}, analyzers...)
}

// RunPkg analyzes the fixture in dir under an explicit import path.
func RunPkg(t *testing.T, dir, path string, analyzers ...*vet.Analyzer) {
	t.Helper()
	RunPkgs(t, []Pkg{{Dir: dir, Path: path}}, analyzers...)
}

// RunPkgs analyzes a sequence of fixture packages in dependency order,
// sharing one fact store: facts exported while checking earlier packages
// are visible to later ones, exactly as the driver's vetx side files make
// upstream facts visible downstream. Later packages may import earlier ones
// by their fixture paths.
func RunPkgs(t *testing.T, pkgs []Pkg, analyzers ...*vet.Analyzer) {
	t.Helper()
	store := vet.NewFactStore()
	checked := map[string]*types.Package{}
	// One fset and one stdlib importer span every package: sibling fixtures
	// must agree on the identity of shared dependencies (math/rand/v2
	// imported twice as two distinct *types.Package would break cross-package
	// assignability).
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := exportData(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
	for _, fp := range pkgs {
		names, err := filepath.Glob(filepath.Join(fp.Dir, "*.go"))
		if err != nil || len(names) == 0 {
			t.Fatalf("no fixture files in %s (%v)", fp.Dir, err)
		}
		sort.Strings(names)

		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parse %s: %v", name, err)
			}
			files = append(files, f)
		}

		info := vet.NewInfo()
		tcfg := &types.Config{Importer: &fixtureImporter{checked: checked, std: std}}
		pkg, err := tcfg.Check(fp.Path, fset, files, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", fp.Dir, err)
		}
		checked[fp.Path] = pkg

		diags, err := vet.Check(fset, files, pkg, info, analyzers, store)
		if err != nil {
			t.Fatal(err)
		}

		wants := collectWants(t, fset, files)
		type key struct {
			file string
			line int
		}
		unclaimed := map[key][]string{}
		for _, d := range diags {
			k := key{filepath.Base(d.Position.Filename), d.Position.Line}
			unclaimed[k] = append(unclaimed[k], d.Message)
		}
		for _, w := range wants {
			k := key{w.file, w.line}
			matched := -1
			for i, msg := range unclaimed[k] {
				if w.rx.MatchString(msg) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %q)", w.file, w.line, w.rx, unclaimed[k])
				continue
			}
			unclaimed[k] = append(unclaimed[k][:matched], unclaimed[k][matched+1:]...)
		}
		for k, msgs := range unclaimed {
			for _, msg := range msgs {
				t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
			}
		}
	}
}

// fixtureImporter resolves sibling fixture packages already checked in this
// RunPkgs call, falling back to stdlib export data.
type fixtureImporter struct {
	checked map[string]*types.Package
	std     types.Importer
}

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.checked[path]; ok {
		return p, nil
	}
	return i.std.Import(path)
}

type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

var wantRE = regexp.MustCompile("// want ((?:[`\"][^`\"]*[`\"]\\s*)+)$")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pat, err := unquoteWant(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, want{filepath.Base(pos.Filename), pos.Line, rx})
				}
			}
		}
	}
	return wants
}

func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			out = append(out, s)
			break
		}
		out = append(out, s[:end+2])
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

func unquoteWant(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}
