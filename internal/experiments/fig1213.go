package experiments

import (
	"fmt"

	"github.com/jockeysim/jockey/internal/stats"
)

// SweepRow aggregates runs at one parameter value (Figures 12 and 13).
type SweepRow struct {
	Value       float64
	Runs        int
	MetFrac     float64
	LatencyRel  float64 // mean completion/deadline
	AboveOracle float64
	FirstAlloc  float64 // mean first granted allocation
	LastAlloc   float64 // mean last granted allocation
	MedianAlloc float64
	MaxAlloc    float64
	AllocHours  float64 // mean token-hours granted per run
}

// Sweep holds a parameter sweep.
type Sweep struct {
	Param string
	Rows  []SweepRow
}

// sweepValues runs the seven jobs at one deadline for every value of the
// swept parameter.
func sweep(env *Env, jobs []string, seedsPerJob int, param string,
	values []float64, knobsFor func(v float64) Knobs) (*Sweep, error) {
	if len(jobs) == 0 {
		jobs = DefaultJobs
	}
	if seedsPerJob <= 0 {
		seedsPerJob = 3
	}
	var tasks []execTask[Outcome]
	for _, v := range values {
		for _, job := range jobs {
			for s := 0; s < seedsPerJob; s++ {
				v, job, s := v, job, s
				tasks = append(tasks, execTask[Outcome]{
					key: fmt.Sprintf("sweep/%s/%v/%s/%d", param, v, job, s),
					run: func(x *Exec) (Outcome, error) {
						short, _, err := env.Deadlines(job)
						if err != nil {
							return Outcome{}, err
						}
						return env.RunExec(x, SLORun{
							Job:      job,
							Deadline: short,
							Policy:   PolicyJockey,
							Seed:     stats.DeriveSeed(env.Seed, "sweep", param, fmt.Sprint(v), job, fmt.Sprint(s)),
							Knobs:    knobsFor(v),
						})
					},
				})
			}
		}
	}
	results, err := runGrid(env, tasks)
	if err != nil {
		return nil, err
	}
	sw := &Sweep{Param: param}
	i := 0
	for _, v := range values {
		row := SweepRow{Value: v}
		var rels, above, firsts, lasts, medians, maxes, hours []float64
		for range jobs {
			for s := 0; s < seedsPerJob; s++ {
				o := results[i]
				i++
				row.Runs++
				if o.Met {
					row.MetFrac++
				}
				rels = append(rels, o.RelCompletion)
				above = append(above, o.AboveOracle)
				if tl := o.Trace.Timeline; len(tl) > 0 {
					firsts = append(firsts, float64(tl[0].Granted))
					lasts = append(lasts, float64(tl[len(tl)-1].Granted))
					medians = append(medians, medianGrantedAlloc(o))
					maxA := 0
					for _, p := range tl {
						if p.Granted > maxA {
							maxA = p.Granted
						}
					}
					maxes = append(maxes, float64(maxA))
				}
				hours = append(hours, o.AllocTokenSeconds/3600)
			}
		}
		row.MetFrac /= float64(row.Runs)
		row.LatencyRel = stats.Mean(rels)
		row.AboveOracle = stats.Mean(above)
		row.FirstAlloc = stats.Mean(firsts)
		row.LastAlloc = stats.Mean(lasts)
		row.MedianAlloc = stats.Mean(medians)
		row.MaxAlloc = stats.Mean(maxes)
		row.AllocHours = stats.Mean(hours)
		sw.Rows = append(sw.Rows, row)
	}
	return sw, nil
}

// SlackSweep reproduces Fig. 12: slack values 1.0–1.6.
func SlackSweep(env *Env, jobs []string, seedsPerJob int) (*Sweep, error) {
	return sweep(env, jobs, seedsPerJob, "slack",
		[]float64{1.0, 1.1, 1.2, 1.4, 1.6},
		func(v float64) Knobs {
			k := Knobs{Slack: v}
			if v == 1.0 {
				k.NoSlack = true
			}
			return k
		})
}

// HysteresisSweep reproduces Fig. 13: hysteresis α 0.05–1.0.
func HysteresisSweep(env *Env, jobs []string, seedsPerJob int) (*Sweep, error) {
	return sweep(env, jobs, seedsPerJob, "hysteresis",
		[]float64{0.05, 0.2, 0.4, 0.6, 0.8, 1.0},
		func(v float64) Knobs { return Knobs{Hysteresis: v} })
}

// Render prints the sweep in the two-panel layout of Figs. 12/13: SLO and
// impact metrics, then allocation statistics.
func (s *Sweep) Render() string {
	var rows [][]string
	for _, r := range s.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", r.Value),
			pct(r.MetFrac),
			pct(r.LatencyRel),
			pct(r.AboveOracle),
			fmt.Sprintf("%.1f", r.FirstAlloc),
			fmt.Sprintf("%.1f", r.MedianAlloc),
			fmt.Sprintf("%.1f", r.MaxAlloc),
			fmt.Sprintf("%.1f", r.LastAlloc),
			fmt.Sprintf("%.1f", r.AllocHours),
		})
	}
	var note string
	switch s.Param {
	case "slack":
		note = "(paper Fig. 12: only slack=1.0 misses SLOs; more slack ⇒ earlier finishes,\n" +
			" larger first/median allocations, more cluster impact)"
	case "hysteresis":
		note = "(paper Fig. 13: misses only at the extremes α=0.05 and α=1.0; higher α ⇒\n" +
			" finishes closer to deadline, higher max allocation)"
	}
	return renderTable(
		fmt.Sprintf("Figure %s sweep: %s\n%s",
			map[string]string{"slack": "12", "hysteresis": "13"}[s.Param], s.Param, note),
		[]string{s.Param, "met SLO", "latency/deadline", "above oracle",
			"first", "median", "max", "last", "token-hours"},
		rows)
}
