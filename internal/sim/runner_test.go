package sim

import (
	"reflect"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
)

// noisyRunnerProfile exercises every randomized path: heavy-tailed exec,
// queue delays, failures, a one-to-one pipeline and an all-to-all barrier.
func noisyRunnerProfile(t testing.TB) *profile.Profile {
	t.Helper()
	job := dag.NewBuilder("noisy").
		Stage("extract", 40).
		Stage("shuffle", 40).
		Stage("reduce", 6).
		Edge("extract", "shuffle", dag.OneToOne).
		Edge("shuffle", "reduce", dag.AllToAll).
		MustBuild()
	return profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(5*time.Second, 25*time.Second),
			Queue: stats.Exponential{MeanValue: 2 * time.Second}, FailureProb: 0.15},
		{Exec: stats.LognormalFromMedian(8*time.Second, 20*time.Second), FailureProb: 0.05},
		{Exec: stats.LognormalFromMedian(30*time.Second, 80*time.Second)},
	})
}

func cloneTrace(tr *trace.JobTrace) *trace.JobTrace {
	cp := *tr
	cp.Events = append([]trace.TaskEvent(nil), tr.Events...)
	cp.Timeline = append([]trace.AllocPoint(nil), tr.Timeline...)
	return &cp
}

// TestRunnerReuseBitIdentical is the golden determinism test for the arena
// reuse: a Runner re-run across many (seed, alloc, initial-state, sampling)
// configurations must reproduce the one-shot Run's trace byte for byte —
// same events in the same order, same completion — even though it reuses
// every arena from the previous, differently-shaped run.
func TestRunnerReuseBitIdentical(t *testing.T) {
	p := noisyRunnerProfile(t)
	small := fixedProfile(t) // different job shape, forces re-shaping mid-sequence
	cfgs := []Config{
		{Profile: p, Alloc: 1, Seed: 1},
		{Profile: p, Alloc: 7, Seed: 99, SampleEvery: 15 * time.Second},
		{Profile: small, Alloc: 4, Seed: 5},
		{Profile: p, Alloc: 30, Seed: 3, InitialFracDone: []float64{0.5, 0.25, 0}},
		{Profile: p, Alloc: 80, Seed: 77, DisableFailures: true},
		{Profile: p, Alloc: 7, Seed: 99, SampleEvery: 15 * time.Second}, // repeat of cfg 1
	}
	// Reference: fresh engine per run (the compatibility wrapper).
	var want []*trace.JobTrace
	var wantSnaps [][]Snapshot
	for i, cfg := range cfgs {
		var snaps []Snapshot
		if cfg.SampleEvery > 0 {
			cfg.OnSample = func(s Snapshot) { snaps = append(snaps, s) }
		}
		tr, err := Run(cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		want = append(want, tr)
		wantSnaps = append(wantSnaps, snaps)
	}
	// One Runner across all runs, arenas reused (and re-shaped at cfg 2).
	r := NewRunner()
	for i, cfg := range cfgs {
		var snaps []Snapshot
		if cfg.SampleEvery > 0 {
			cfg.OnSample = func(s Snapshot) {
				s.FracDone = append([]float64(nil), s.FracDone...) // Runner's buffer is callback-scoped
				snaps = append(snaps, s)
			}
		}
		tr, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("cfg %d reused: %v", i, err)
		}
		got := cloneTrace(tr)
		if got.Completion != want[i].Completion {
			t.Errorf("cfg %d: completion %v, want %v", i, got.Completion, want[i].Completion)
		}
		if !reflect.DeepEqual(got.Events, want[i].Events) {
			t.Errorf("cfg %d: reused-runner events differ from fresh-engine events", i)
		}
		if got.JobName != want[i].JobName || got.NumStages != want[i].NumStages {
			t.Errorf("cfg %d: trace header %q/%d, want %q/%d",
				i, got.JobName, got.NumStages, want[i].JobName, want[i].NumStages)
		}
		if !reflect.DeepEqual(snaps, wantSnaps[i]) {
			t.Errorf("cfg %d: reused-runner snapshots differ from fresh-engine snapshots", i)
		}
	}
}

// TestRunnerSteadyStateAllocs: once the arenas and the trace buffer have
// reached their high-water sizes, re-running the same configuration should
// allocate almost nothing. The engine itself is allocation-free; the only
// remaining allocations are inside math/rand/v2's lognormal path, so the
// budget is a small constant rather than the thousands a fresh engine pays.
func TestRunnerSteadyStateAllocs(t *testing.T) {
	p := noisyRunnerProfile(t)
	r := NewRunner()
	cfg := Config{Profile: p, Alloc: 20, Seed: 42}
	if _, err := r.Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// A fresh engine pays thousands of allocations per run (6838 on the job
	// E benchmark before this change); the reused engine must be orders of
	// magnitude below that. 16 leaves headroom for rand internals while
	// still failing loudly if any arena stops being reused.
	if allocs > 16 {
		t.Errorf("steady-state Run = %v allocs/run, want <= 16", allocs)
	}
}

// TestRunnerValidation: the reusable path applies the same Config
// validation as the one-shot wrapper.
func TestRunnerValidation(t *testing.T) {
	r := NewRunner()
	if _, err := r.Run(Config{}); err == nil {
		t.Error("nil profile must fail")
	}
	p := fixedProfile(t)
	if _, err := r.Run(Config{Profile: p, Alloc: 0}); err == nil {
		t.Error("zero alloc must fail")
	}
	if _, err := r.Run(Config{Profile: p, Alloc: 2, InitialFracDone: []float64{1}}); err == nil {
		t.Error("short InitialFracDone must fail")
	}
	// After rejected configs, a valid run still works.
	if _, err := r.Run(Config{Profile: p, Alloc: 2, Seed: 1}); err != nil {
		t.Errorf("valid run after rejects: %v", err)
	}
}

// TestReadyFIFOCompaction pins the ready-queue policy: entries are served
// strictly FIFO, compaction (copy-down at >= readyCompactMin dead entries
// occupying >= half the slice) preserves both order and content, and reset
// rewinds the queue while keeping its capacity.
func TestReadyFIFOCompaction(t *testing.T) {
	r := NewRunner()
	// Exercise popReady/markReady directly: push 3000, pop interleaved.
	r.job = dag.NewBuilder("fifo").Stage("s", 1).MustBuild()
	r.queuedAt = [][]time.Duration{make([]time.Duration, 3000)}
	next := 0
	popped := 0
	for next < 3000 {
		r.markReady(0, next%1) // stage 0, task 0; identity tracked via order
		next++
		if next%2 == 0 {
			if _, ok := r.popReady(); !ok {
				t.Fatal("pop failed with entries pending")
			}
			popped++
		}
	}
	for {
		if _, ok := r.popReady(); !ok {
			break
		}
		popped++
	}
	if popped != 3000 {
		t.Fatalf("popped %d entries, want 3000", popped)
	}
	// Compaction must have bounded the slice: without it the backing array
	// holds all 3000 entries; with the copy-down policy the head index can
	// never exceed len once readyCompactMin dead entries dominate.
	if len(r.ready) > 2*readyCompactMin {
		t.Errorf("ready slice holds %d entries after drain; compaction did not run", len(r.ready))
	}
	// FIFO order with distinct refs across a compaction boundary.
	r.ready = r.ready[:0]
	r.readyHead = 0
	r.queuedAt = [][]time.Duration{make([]time.Duration, 4096)}
	for i := 0; i < 4096; i++ {
		r.markReady(0, i)
	}
	for i := 0; i < 4096; i++ {
		ref, ok := r.popReady()
		if !ok || ref.task != i {
			t.Fatalf("FIFO order broken at %d: got task %d ok=%v", i, ref.task, ok)
		}
	}
}

// BenchmarkSimRun measures one simulation of job-E scale (plan from the
// workload generator is too heavy for a micro-bench; this DAG matches its
// structure) with a reused Runner vs the one-shot Run. The reused variant
// must show >= 30% fewer allocs/op (it is in practice ~1000x).
func BenchmarkSimRun(b *testing.B) {
	p := noisyRunnerProfile(b)
	b.Run("fresh-engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(Config{Profile: p, Alloc: 20, Seed: 7}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused-runner", func(b *testing.B) {
		r := NewRunner()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.Run(Config{Profile: p, Alloc: 20, Seed: 7}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
