package dag

import (
	"fmt"
	"math"
	"strings"
)

// DOT renders the job's stage graph in Graphviz format, mirroring Figure 3
// of the paper: barrier (full-shuffle) stages are drawn as triangles, other
// stages as circles, and node size is proportional to the square root of the
// stage's task count.
func (j *Job) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", j.Name)
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [fixedsize=true, fontsize=8];\n")
	for i, s := range j.Stages {
		shape := "circle"
		color := "black"
		if j.IsBarrier(i) {
			shape = "triangle"
			color = "blue"
		}
		size := 0.25 + 0.1*math.Sqrt(float64(s.Tasks))
		fmt.Fprintf(&b, "  %q [shape=%s, color=%s, width=%.2f, height=%.2f, label=%q];\n",
			s.Name, shape, color, size, size, fmt.Sprintf("%s\\n%d", s.Name, s.Tasks))
	}
	for _, e := range j.Edges {
		style := "solid"
		if e.Kind == AllToAll {
			style = "bold"
		}
		fmt.Fprintf(&b, "  %q -> %q [style=%s];\n", j.Stages[e.From].Name, j.Stages[e.To].Name, style)
	}
	b.WriteString("}\n")
	return b.String()
}

// Rebuild recomputes the internal adjacency indices and topological order
// from the exported Stages and Edges fields. It must be called on any Job
// that was not produced by Builder.Build (e.g. one decoded from JSON)
// before its graph accessors are used.
func (j *Job) Rebuild() error {
	if err := j.Validate(); err != nil {
		return err
	}
	j.byName = make(map[string]int, len(j.Stages))
	for i, s := range j.Stages {
		if _, dup := j.byName[s.Name]; dup {
			return fmt.Errorf("dag: job %q: duplicate stage %q", j.Name, s.Name)
		}
		j.byName[s.Name] = i
	}
	j.inputs = make([][]Edge, len(j.Stages))
	j.outputs = make([][]Edge, len(j.Stages))
	for _, e := range j.Edges {
		j.inputs[e.To] = append(j.inputs[e.To], e)
		j.outputs[e.From] = append(j.outputs[e.From], e)
	}
	topo, err := j.topoSort()
	if err != nil {
		return err
	}
	j.topo = topo
	return nil
}
