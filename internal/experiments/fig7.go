package experiments

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/stats"
)

// DeadlineChangeKind names the three Fig. 7 manipulations.
type DeadlineChangeKind string

// Ten minutes into the run, the deadline is halved, doubled or tripled
// (§5.2 "Adapting to changes in deadlines").
const (
	HalveDeadline  DeadlineChangeKind = "halve"
	DoubleDeadline DeadlineChangeKind = "double"
	TripleDeadline DeadlineChangeKind = "triple"
)

// Fig7Run is one deadline-change run.
type Fig7Run struct {
	Job     string
	Kind    DeadlineChangeKind
	Outcome Outcome
	// AllocBefore and AllocAfter are the mean granted allocations before
	// and after the change.
	AllocBefore, AllocAfter float64
}

// Fig7 aggregates the deadline-change experiment.
type Fig7 struct {
	Runs []Fig7Run
}

// DeadlineChanges runs each job once per manipulation: ten minutes after
// start, the deadline is halved, doubled, or tripled; Jockey must meet the
// new deadline, raising the allocation for cuts and releasing resources for
// extensions.
func DeadlineChanges(env *Env, jobs []string) (*Fig7, error) {
	if len(jobs) == 0 {
		jobs = DefaultJobs
	}
	f := &Fig7{}
	for _, job := range jobs {
		_, long, err := env.Deadlines(job)
		if err != nil {
			return nil, err
		}
		for _, kind := range []DeadlineChangeKind{HalveDeadline, DoubleDeadline, TripleDeadline} {
			var newDeadline time.Duration
			switch kind {
			case HalveDeadline:
				newDeadline = long / 2
			case DoubleDeadline:
				newDeadline = 2 * long
			case TripleDeadline:
				newDeadline = 3 * long
			}
			var before, after []float64
			changeAt := 10 * time.Minute
			o, err := env.Run(SLORun{
				Job:      job,
				Deadline: long,
				Policy:   PolicyJockey,
				// Pin the input size: this experiment isolates deadline
				// adaptation from input drift.
				InputScale: 1.0,
				Seed:       stats.DeriveSeed(env.Seed, "fig7", job, string(kind)),
				DeadlineChanges: []cluster.DeadlineChange{
					{At: changeAt, Deadline: newDeadline},
				},
				OnDecision: func(at time.Duration, d control.Decision) {
					if at < changeAt {
						before = append(before, float64(d.Granted))
					} else {
						after = append(after, float64(d.Granted))
					}
				},
			})
			if err != nil {
				return nil, err
			}
			f.Runs = append(f.Runs, Fig7Run{
				Job:         job,
				Kind:        kind,
				Outcome:     o,
				AllocBefore: stats.Mean(before),
				AllocAfter:  stats.Mean(after),
			})
		}
	}
	return f, nil
}

// Summary aggregates per manipulation: met count and average allocation
// change (positive = increased).
func (f *Fig7) Summary() map[DeadlineChangeKind](struct {
	Runs, Met   int
	AllocChange float64 // mean relative change of granted allocation
}) {
	type agg struct {
		Runs, Met   int
		AllocChange float64
	}
	sums := map[DeadlineChangeKind]*agg{}
	counts := map[DeadlineChangeKind]int{}
	for _, r := range f.Runs {
		a := sums[r.Kind]
		if a == nil {
			a = &agg{}
			sums[r.Kind] = a
		}
		a.Runs++
		if r.Outcome.Met {
			a.Met++
		}
		if r.AllocBefore > 0 {
			a.AllocChange += r.AllocAfter/r.AllocBefore - 1
			counts[r.Kind]++
		}
	}
	out := map[DeadlineChangeKind](struct {
		Runs, Met   int
		AllocChange float64
	}){}
	for k, a := range sums {
		change := 0.0
		if counts[k] > 0 {
			change = a.AllocChange / float64(counts[k])
		}
		out[k] = struct {
			Runs, Met   int
			AllocChange float64
		}{a.Runs, a.Met, change}
	}
	return out
}

// Render prints per-run and aggregate results.
func (f *Fig7) Render() string {
	var rows [][]string
	for _, r := range f.Runs {
		rows = append(rows, []string{
			r.Job,
			string(r.Kind),
			fmt.Sprintf("%v", r.Outcome.Deadline),
			fmt.Sprintf("%v", r.Outcome.Completion.Round(time.Second)),
			fmt.Sprint(r.Outcome.Met),
			fmt.Sprintf("%.1f", r.AllocBefore),
			fmt.Sprintf("%.1f", r.AllocAfter),
		})
	}
	out := renderTable(
		"Figure 7: adapting to deadline changes 10 minutes into the run\n"+
			"(paper: every new deadline met; halving raised allocation by 148% on average;\n"+
			" doubling/tripling released 63%/83% of resources)",
		[]string{"job", "change", "new deadline", "completion", "met", "alloc before", "alloc after"},
		rows)
	sum := f.Summary()
	var srows [][]string
	for _, k := range []DeadlineChangeKind{HalveDeadline, DoubleDeadline, TripleDeadline} {
		s := sum[k]
		srows = append(srows, []string{
			string(k), fmt.Sprint(s.Runs), fmt.Sprint(s.Met), pct(s.AllocChange),
		})
	}
	out += "\n" + renderTable("Summary", []string{"change", "runs", "met", "mean alloc change"}, srows)
	return out
}
