package profile

import (
	"math"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
)

func blendJob() *dag.Job {
	return dag.NewBuilder("blend-test").
		Stage("a", 10).
		Stage("b", 10).
		Edge("a", "b", dag.AllToAll).
		MustBuild()
}

// liveTrace returns a trace with n successful 20s tasks in stage 0 and
// nothing in stage 1.
func liveTrace(n int) *trace.JobTrace {
	tr := trace.New("blend-test", 2)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * time.Minute
		tr.AddTask(trace.TaskEvent{
			Stage: 0, Task: i % 10, Attempt: i / 10,
			Queued: at, Dispatched: at, Started: at, Ended: at + 20*time.Second,
		})
	}
	return tr
}

func TestBlendCountWeighting(t *testing.T) {
	prior := MustNew(blendJob(), []StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
		{Exec: stats.Point{V: 10 * time.Second}},
	})
	// 30 live samples of 20s against a 10-task prior of 10s: the blended
	// mean should be the pooled mean (10·10 + 30·20)/40 = 17.5s.
	got, err := Blend(prior, liveTrace(30), BlendOptions{})
	if err != nil {
		t.Fatalf("Blend: %v", err)
	}
	want := 17500 * time.Millisecond
	if m := got.Stages[0].Exec.Mean(); absDur(m-want) > time.Second {
		t.Fatalf("blended mean = %v, want ~%v", m, want)
	}
	// Aggregates are refilled from the blended distribution.
	if tw := got.Stages[0].TotalWork; absDur(tw-10*want) > 10*time.Second {
		t.Fatalf("blended TotalWork = %v, want ~%v", tw, 10*want)
	}
	// The unobserved stage keeps the prior verbatim.
	if m := got.Stages[1].Exec.Mean(); m != 10*time.Second {
		t.Fatalf("unobserved stage mean = %v, want 10s", m)
	}
}

func TestBlendPriorWeight(t *testing.T) {
	prior := MustNew(blendJob(), []StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
		{Exec: stats.Point{V: 10 * time.Second}},
	})
	// Tripling the prior weight makes the 10-task prior count as 30
	// pseudo-samples: (30·10 + 30·20)/60 = 15s.
	got, err := Blend(prior, liveTrace(30), BlendOptions{PriorWeight: 3})
	if err != nil {
		t.Fatalf("Blend: %v", err)
	}
	want := 15 * time.Second
	if m := got.Stages[0].Exec.Mean(); absDur(m-want) > time.Second {
		t.Fatalf("blended mean = %v, want ~%v", m, want)
	}
}

func TestBlendMinStageSamples(t *testing.T) {
	prior := MustNew(blendJob(), []StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
		{Exec: stats.Point{V: 10 * time.Second}},
	})
	got, err := Blend(prior, liveTrace(2), BlendOptions{MinStageSamples: 3})
	if err != nil {
		t.Fatalf("Blend: %v", err)
	}
	if m := got.Stages[0].Exec.Mean(); m != 10*time.Second {
		t.Fatalf("stage below MinStageSamples moved: mean = %v", m)
	}
}

func TestBlendFailureProb(t *testing.T) {
	prior := MustNew(blendJob(), []StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
		{Exec: stats.Point{V: 10 * time.Second}},
	})
	tr := liveTrace(10)
	for i := 0; i < 10; i++ {
		at := time.Duration(100+i) * time.Minute
		tr.AddTask(trace.TaskEvent{
			Stage: 0, Task: i, Attempt: 9,
			Queued: at, Dispatched: at, Started: at, Ended: at + 5*time.Second,
			Failed: true,
		})
	}
	got, err := Blend(prior, tr, BlendOptions{})
	if err != nil {
		t.Fatalf("Blend: %v", err)
	}
	// Prior failure prob 0 over 10 pseudo-attempts, live 10/20: pooled
	// (0·10 + 10)/(10 + 20) = 1/3.
	if fp := got.Stages[0].FailureProb; math.Abs(fp-1.0/3) > 1e-9 {
		t.Fatalf("blended FailureProb = %v, want 1/3", fp)
	}
}

func TestBlendRejectsBadInput(t *testing.T) {
	prior := MustNew(blendJob(), []StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
		{Exec: stats.Point{V: 10 * time.Second}},
	})
	if _, err := Blend(nil, liveTrace(1), BlendOptions{}); err == nil {
		t.Fatalf("Blend accepted nil prior")
	}
	if _, err := Blend(prior, nil, BlendOptions{}); err == nil {
		t.Fatalf("Blend accepted nil trace")
	}
	bad := trace.New("blend-test", 2)
	bad.AddTask(trace.TaskEvent{Stage: 7})
	if _, err := Blend(prior, bad, BlendOptions{}); err == nil {
		t.Fatalf("Blend accepted out-of-range stage")
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
