// Package stats provides the statistical substrate shared by every other
// package in the Jockey reproduction: deterministic random-number plumbing,
// parametric and empirical probability distributions over durations, and
// summary statistics (percentiles, coefficient of variation).
//
// Everything in the repository that needs randomness receives a *rand.Rand
// created by this package from an explicit seed, so all simulations and
// experiments are reproducible run-to-run.
package stats

import (
	"hash/fnv"
	"math/rand/v2"
)

// NewRNG returns a deterministic pseudo-random generator for the given seed.
// Two generators created with the same seed produce identical streams.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(NewSource(seed))
}

// NewSource returns the seeded PCG source underlying NewRNG. Callers that
// re-seed a long-lived generator (sim.Runner runs thousands of simulations
// on one *rand.Rand) keep the source and call ReseedSource between runs;
// the stream after a reseed is bit-identical to a fresh NewRNG(seed).
func NewSource(seed uint64) *rand.PCG {
	// Decorrelate the two PCG lanes so that nearby seeds (0, 1, 2, ...) do
	// not produce visibly correlated streams.
	return rand.NewPCG(SplitMix64(seed), SplitMix64(seed^0x9e3779b97f4a7c15))
}

// ReseedSource resets src to the state NewSource(seed) would create,
// without allocating. rand.Rand in math/rand/v2 keeps no buffered state of
// its own, so reseeding the source re-seeds any Rand wrapping it.
func ReseedSource(src *rand.PCG, seed uint64) {
	src.Seed(SplitMix64(seed), SplitMix64(seed^0x9e3779b97f4a7c15))
}

// SplitMix64 advances the SplitMix64 state x and returns the mixed output.
// It is used to derive independent sub-seeds from a master seed.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed produces a sub-seed from a master seed and a list of labels.
// The same (master, labels...) always yields the same sub-seed, and distinct
// labels yield (with overwhelming probability) distinct sub-seeds. It is the
// standard way experiments hand independent generators to their components.
func DeriveSeed(master uint64, labels ...string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(master >> (8 * i))
	}
	h.Write(buf[:])
	for _, l := range labels {
		h.Write([]byte{0})
		h.Write([]byte(l))
	}
	return SplitMix64(h.Sum64())
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// DeriveSeedInt is DeriveSeed(master, fmt.Sprint(n)) for n >= 0, without the
// per-call allocations of the variadic form (the hash interface, the label
// slice, the formatted string). Simulator hot paths that hash a task index on
// every dispatch use it; TestDeriveSeedIntMatchesDeriveSeed pins the
// bit-identity so placements never shift between the two spellings.
func DeriveSeedInt(master uint64, n int) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(master >> (8 * i)))
		h *= fnvPrime64
	}
	// label separator byte 0: h ^= 0 is a no-op
	h *= fnvPrime64
	var buf [20]byte
	p := len(buf)
	v := uint64(n)
	for {
		p--
		buf[p] = '0' + byte(v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	for _, c := range buf[p:] {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return SplitMix64(h)
}
