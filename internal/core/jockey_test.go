package core

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/sim"
	"github.com/jockeysim/jockey/internal/stats"
)

// 20 x 30s map -> barrier -> 4 x 60s reduce; total work 840s, CP 90s.
func detProfile(t testing.TB) *profile.Profile {
	t.Helper()
	job := dag.NewBuilder("det").
		Stage("map", 20).
		Stage("reduce", 4).
		Edge("map", "reduce", dag.AllToAll).
		MustBuild()
	return profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 30 * time.Second}},
		{Exec: stats.Point{V: 60 * time.Second}},
	})
}

func newJockey(t testing.TB) *Jockey {
	t.Helper()
	jk, err := New(detProfile(t), Options{
		MaxTokens:    20,
		RunsPerAlloc: 3,
		SampleEvery:  15 * time.Second,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return jk
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil profile must fail")
	}
	if _, err := New(detProfile(t), Options{Indicator: "bogus"}); err == nil {
		t.Error("unknown indicator must fail")
	}
}

func TestDefaultGrid(t *testing.T) {
	g := DefaultGrid(100)
	if g[0] != 1 {
		t.Errorf("grid starts at %d", g[0])
	}
	if g[len(g)-1] != 100 {
		t.Errorf("grid ends at %d", g[len(g)-1])
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not ascending: %v", g)
		}
	}
	if len(g) < 8 || len(g) > 25 {
		t.Errorf("grid has %d points: %v", len(g), g)
	}
}

func TestBuildIndicatorAll(t *testing.T) {
	p := detProfile(t)
	for _, name := range []IndicatorName{TotalWorkWithQ, TotalWork, VertexFrac, CP, MinStage, MinStageInf} {
		ind, err := BuildIndicator(name, p, 3)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if ind.Name() != string(name) {
			t.Errorf("indicator %q reports name %q", name, ind.Name())
		}
	}
	if _, err := BuildIndicator("nope", p, 1); err == nil {
		t.Error("unknown name must fail")
	}
}

func TestPredictLatency(t *testing.T) {
	jk := newJockey(t)
	// Deterministic job: at 20 tokens the worst case is exactly 90s.
	if got := jk.PredictLatency(20, 1.0); got != 90*time.Second {
		t.Errorf("PredictLatency(20) = %v, want 90s", got)
	}
	lo := jk.PredictLatency(1, 1.0)
	if lo <= jk.PredictLatency(20, 1.0) {
		t.Errorf("serial latency %v should exceed parallel", lo)
	}
}

func TestFeasibleAndRequiredAllocation(t *testing.T) {
	jk := newJockey(t)
	if jk.Feasible(30 * time.Second) {
		t.Error("deadline below critical path must be infeasible")
	}
	if !jk.Feasible(5 * time.Minute) {
		t.Error("5-minute deadline is feasible")
	}
	// 840s of work, 90s critical path: a 3-minute deadline needs several
	// tokens; a 30-minute deadline needs 1.
	need, ok := jk.RequiredAllocation(30 * time.Minute)
	if !ok || need != 1 {
		t.Errorf("loose deadline needs %d (%v)", need, ok)
	}
	tight, ok := jk.RequiredAllocation(3 * time.Minute)
	if !ok || tight <= 1 {
		t.Errorf("tight deadline needs %d (%v)", tight, ok)
	}
	if _, ok := jk.RequiredAllocation(10 * time.Second); ok {
		t.Error("impossible deadline must not fit")
	}
	if !jk.Fits(30*time.Minute, 1) {
		t.Error("job should fit in 1 spare token at a loose deadline")
	}
	if jk.Fits(3*time.Minute, 1) {
		t.Error("tight deadline must not fit in 1 token")
	}
}

func TestPoliciesConstructAndDiffer(t *testing.T) {
	jk := newJockey(t)
	full, err := jk.Policy(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	static, err := jk.StaticPolicy(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	amdahl, err := jk.AmdahlPolicy(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	max, err := jk.MaxPolicy()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range []interface{ Name() string }{full, static, amdahl, max} {
		names[p.Name()] = true
	}
	for _, want := range []string{"jockey", "jockey-static", "jockey-amdahl", "max-allocation"} {
		if !names[want] {
			t.Errorf("missing policy %q (got %v)", want, names)
		}
	}
}

func TestEndToEndOnCluster(t *testing.T) {
	jk := newJockey(t)
	pol, err := jk.Policy(4 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{Machines: 5, SlotsPerMachine: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Submit(cluster.JobConfig{
		Profile:       jk.Profile(),
		Policy:        pol,
		Deadline:      4 * time.Minute,
		ControlPeriod: jk.ControlPeriod(),
		Tracked:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := h.Result()
	if !r.Met {
		t.Errorf("missed SLO: completion %v", r.Completion)
	}
}

func TestAccessors(t *testing.T) {
	jk := newJockey(t)
	if jk.Profile() == nil || jk.Model() == nil || jk.Indicator() == nil {
		t.Error("nil accessor")
	}
	if len(jk.Grid()) == 0 {
		t.Error("empty grid")
	}
	if jk.ControlPeriod() != time.Minute {
		t.Errorf("default period = %v", jk.ControlPeriod())
	}
}

func TestMinStageIndicatorUsesConstrainedRun(t *testing.T) {
	p := detProfile(t)
	ind, err := BuildIndicator(MinStage, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: progress moves from 0 to 1.
	if got := ind.Progress([]float64{0, 0}); got != 0 {
		t.Errorf("initial = %v", got)
	}
	if got := ind.Progress([]float64{1, 1}); got != 1 {
		t.Errorf("final = %v", got)
	}
	mid := ind.Progress([]float64{1, 0})
	if mid <= 0 || mid >= 1 {
		t.Errorf("mid progress = %v", mid)
	}
	_ = sim.DefaultMaxAttempts // keep the sim import meaningful
}
