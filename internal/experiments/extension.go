package experiments

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
)

// ExtensionRow compares the precomputed-table controller with the online
// forward-simulation controller on one job.
type ExtensionRow struct {
	Job             string
	Runs            int
	TableMet        int
	OnlineMet       int
	TableRel        float64 // mean completion/deadline
	OnlineRel       float64
	TableAbove      float64 // mean allocation above oracle
	OnlineAbove     float64
	TableDecisionUs float64 // mean wall-clock per control decision, µs
	OnlineDecision  float64
}

// ExtensionResult is the E1 extension experiment (not in the paper's
// evaluation; it quantifies the §4.4 proposal of integrating the simulator
// with the online phase).
type ExtensionResult struct {
	Rows []ExtensionRow
}

// OnlineVsTable runs each job under the Jockey controller twice — once
// indexing the precomputed C(p, a) table, once re-simulating forward from
// the live state at every decision — and compares SLO outcomes, cluster
// impact and decision cost.
func OnlineVsTable(env *Env, jobs []string, seedsPerJob int) (*ExtensionResult, error) {
	if len(jobs) == 0 {
		jobs = []string{"B", "E"}
	}
	if seedsPerJob <= 0 {
		seedsPerJob = 2
	}
	out := &ExtensionResult{}
	for _, job := range jobs {
		short, _, err := env.Deadlines(job)
		if err != nil {
			return nil, err
		}
		row := ExtensionRow{Job: job}
		var tRel, oRel, tAbove, oAbove, tCost, oCost []float64
		for s := 0; s < seedsPerJob; s++ {
			seed := stats.DeriveSeed(env.Seed, "ext-online", job, fmt.Sprint(s))
			for _, online := range []bool{false, true} {
				start := time.Now()
				o, err := env.Run(SLORun{
					Job:      job,
					Deadline: short,
					Policy:   PolicyJockey,
					Seed:     seed,
					Knobs:    Knobs{OnlinePredictor: online},
				})
				elapsed := time.Since(start)
				if err != nil {
					return nil, err
				}
				n := len(o.Trace.Timeline)
				if n == 0 {
					n = 1
				}
				perDecision := float64(elapsed.Microseconds()) / float64(n)
				if online {
					row.Runs++
					if o.Met {
						row.OnlineMet++
					}
					oRel = append(oRel, o.RelCompletion)
					oAbove = append(oAbove, o.AboveOracle)
					oCost = append(oCost, perDecision)
				} else {
					if o.Met {
						row.TableMet++
					}
					tRel = append(tRel, o.RelCompletion)
					tAbove = append(tAbove, o.AboveOracle)
					tCost = append(tCost, perDecision)
				}
			}
		}
		row.TableRel = stats.Mean(tRel)
		row.OnlineRel = stats.Mean(oRel)
		row.TableAbove = stats.Mean(tAbove)
		row.OnlineAbove = stats.Mean(oAbove)
		row.TableDecisionUs = stats.Mean(tCost)
		row.OnlineDecision = stats.Mean(oCost)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the extension comparison.
func (e *ExtensionResult) Render() string {
	var rows [][]string
	for _, r := range e.Rows {
		rows = append(rows, []string{
			r.Job,
			fmt.Sprintf("%d/%d", r.TableMet, r.Runs),
			fmt.Sprintf("%d/%d", r.OnlineMet, r.Runs),
			fmt.Sprintf("%.2f", r.TableRel),
			fmt.Sprintf("%.2f", r.OnlineRel),
			pct(r.TableAbove),
			pct(r.OnlineAbove),
			fmt.Sprintf("%.0f", r.TableDecisionUs),
			fmt.Sprintf("%.0f", r.OnlineDecision),
		})
	}
	return renderTable(
		"Extension E1: precomputed C(p,a) table vs online forward simulation (§4.4 proposal)\n"+
			"(decision cost includes the whole run divided by control ticks; wall clock, µs)",
		[]string{"job", "table met", "online met", "table rel", "online rel",
			"table above", "online above", "table µs/dec", "online µs/dec"},
		rows)
}
