// Fixture: the error-identity discipline of internal/cluster and
// internal/control — origin prefix, %w wrapping, no bare foreign errors,
// no errors.New.
package cluster

import (
	"errors"
	"fmt"
	"strconv"
)

func bareForeign(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err // want `error from strconv.Atoi returned bare`
	}
	return n, nil
}

func wrapped(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("cluster: job %q: parsing guarantee: %w", s, err)
	}
	return n, nil
}

func anonymous() error {
	return errors.New("boom") // want `errors.New loses identity`
}

func noPrefix(job string) error {
	return fmt.Errorf("job %q failed", job) // want `must identify its origin`
}

func lostCause(job string, err error) error {
	return fmt.Errorf("cluster: job %q: %v", job, err) // want `without %w loses the cause`
}
