package profile

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
)

func chainJob(t testing.TB) *dag.Job {
	t.Helper()
	return dag.NewBuilder("chain").
		Stage("extract", 4).
		Stage("agg", 2).
		Edge("extract", "agg", dag.AllToAll).
		MustBuild()
}

func TestNewFillsAggregates(t *testing.T) {
	job := chainJob(t)
	p, err := New(job, []StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
		{Exec: stats.Point{V: 20 * time.Second}, Queue: stats.Point{V: time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Stages[0].TotalWork; got != 40*time.Second {
		t.Errorf("stage 0 TotalWork = %v, want 40s", got)
	}
	if got := p.Stages[1].TotalWork; got != 40*time.Second {
		t.Errorf("stage 1 TotalWork = %v, want 40s", got)
	}
	if got := p.Stages[1].TotalQueue; got != 2*time.Second {
		t.Errorf("stage 1 TotalQueue = %v, want 2s", got)
	}
	if got := p.Stages[0].LongestTask; got != 10*time.Second {
		t.Errorf("stage 0 LongestTask = %v", got)
	}
	if p.Stages[0].Queue == nil {
		t.Error("nil queue must default to a zero point distribution")
	}
	if got := p.TotalWork(); got != 80*time.Second {
		t.Errorf("TotalWork = %v", got)
	}
	if got := p.TotalQueue(); got != 2*time.Second {
		t.Errorf("TotalQueue = %v", got)
	}
}

func TestNewErrors(t *testing.T) {
	job := chainJob(t)
	if _, err := New(nil, nil); err == nil {
		t.Error("nil job must fail")
	}
	if _, err := New(job, make([]StageProfile, 1)); err == nil {
		t.Error("stage count mismatch must fail")
	}
	if _, err := New(job, make([]StageProfile, 2)); err == nil {
		t.Error("missing exec distribution must fail")
	}
	if _, err := New(job, []StageProfile{
		{Exec: stats.Point{V: time.Second}, FailureProb: 1.5},
		{Exec: stats.Point{V: time.Second}},
	}); err == nil || !strings.Contains(err.Error(), "failure probability") {
		t.Errorf("bad failure prob: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(chainJob(t), nil)
}

func TestCriticalPathAndLs(t *testing.T) {
	job := chainJob(t)
	p := MustNew(job, []StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
		{Exec: stats.Point{V: 20 * time.Second}},
	})
	if got := p.CriticalPath(); got != 30*time.Second {
		t.Errorf("CriticalPath = %v, want 30s", got)
	}
	ls := p.LongestPathAfter()
	if ls[0] != 20*time.Second {
		t.Errorf("L_extract = %v, want 20s", ls[0])
	}
	if ls[1] != 0 {
		t.Errorf("L_agg = %v, want 0", ls[1])
	}
}

func TestFromTrace(t *testing.T) {
	job := chainJob(t)
	tr := trace.New("chain", 2)
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	for task := 0; task < 4; task++ {
		tr.AddTask(trace.TaskEvent{Stage: 0, Task: task,
			Queued: 0, Started: sec(1), Ended: sec(1 + 10 + task)})
	}
	tr.AddTask(trace.TaskEvent{Stage: 0, Task: 0, Attempt: 1, Queued: sec(2), Started: sec(3), Ended: sec(5), Failed: true})
	for task := 0; task < 2; task++ {
		tr.AddTask(trace.TaskEvent{Stage: 1, Task: task,
			Queued: sec(14), Started: sec(15), Ended: sec(35)})
	}
	tr.Completion = sec(35)

	p, err := FromTrace(job, tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.TrainingCompletion != sec(35) {
		t.Errorf("TrainingCompletion = %v", p.TrainingCompletion)
	}
	if got := p.Stages[0].FailureProb; got != 0.2 {
		t.Errorf("failure prob = %v, want 0.2 (1 of 5 attempts)", got)
	}
	if got := p.Stages[0].LongestTask; got != sec(13) {
		t.Errorf("l_s = %v, want 13s", got)
	}
	if got := p.Stages[0].TotalWork; got != sec(10+11+12+13) {
		t.Errorf("T_s = %v", got)
	}
	if got := p.Stages[1].TotalQueue; got != sec(2) {
		t.Errorf("Q_s = %v", got)
	}
	if got := p.Stages[0].Exec.Quantile(0); got != sec(10) {
		t.Errorf("exec min = %v", got)
	}
}

func TestFromTraceErrors(t *testing.T) {
	job := chainJob(t)
	if _, err := FromTrace(nil, nil); err == nil {
		t.Error("nil inputs must fail")
	}
	tr := trace.New("chain", 2)
	tr.AddTask(trace.TaskEvent{Stage: 0, Started: time.Second, Ended: 2 * time.Second})
	if _, err := FromTrace(job, tr); err == nil {
		t.Error("stage without successful attempts must fail")
	}
}

func TestScale(t *testing.T) {
	job := chainJob(t)
	p := MustNew(job, []StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}, Queue: stats.Point{V: time.Second}, FailureProb: 0.1},
		{Exec: stats.Point{V: 20 * time.Second}},
	})
	s := p.Scale(2)
	if got := s.Stages[0].Exec.Mean(); got != 20*time.Second {
		t.Errorf("scaled exec mean = %v", got)
	}
	if got := s.Stages[0].TotalWork; got != 80*time.Second {
		t.Errorf("scaled T_s = %v", got)
	}
	if got := s.Stages[0].TotalQueue; got != 4*time.Second {
		t.Errorf("queue must not scale: %v", got)
	}
	if s.Stages[0].FailureProb != 0.1 {
		t.Error("failure prob must not scale")
	}
	// Original untouched.
	if p.Stages[0].TotalWork != 40*time.Second {
		t.Error("Scale mutated the original")
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	p := MustNew(chainJob(t), []StageProfile{
		{Exec: stats.Point{V: time.Second}},
		{Exec: stats.Point{V: time.Second}},
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Scale(0)
}

func TestDistSpecRoundTrip(t *testing.T) {
	dists := []stats.Distribution{
		stats.Point{V: 3 * time.Second},
		stats.Uniform{Lo: time.Second, Hi: 4 * time.Second},
		stats.Exponential{MeanValue: 9 * time.Second},
		stats.Lognormal{Mu: 1.5, Sigma: 0.7},
		stats.Shifted{Base: stats.Point{V: time.Second}, Offset: 2 * time.Second},
		stats.Scaled{Base: stats.Exponential{MeanValue: time.Second}, Factor: 2.5},
		stats.NewEmpirical([]time.Duration{time.Second, 3 * time.Second, 9 * time.Second}),
	}
	for _, d := range dists {
		spec, err := SpecOf(d)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		back, err := spec.Distribution()
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		for _, q := range []float64{0.1, 0.5, 0.9} {
			a, b := d.Quantile(q).Seconds(), back.Quantile(q).Seconds()
			if math.Abs(a-b) > 1e-6 {
				t.Errorf("%v: quantile(%v) %v != %v after round trip", d, q, a, b)
			}
		}
	}
}

func TestDistSpecErrors(t *testing.T) {
	if _, err := (&DistSpec{Kind: "nope"}).Distribution(); err == nil {
		t.Error("unknown kind must fail")
	}
	if _, err := (&DistSpec{Kind: "empirical"}).Distribution(); err == nil {
		t.Error("empirical without samples must fail")
	}
	if _, err := (&DistSpec{Kind: "shifted"}).Distribution(); err == nil {
		t.Error("shifted without base must fail")
	}
	if _, err := (&DistSpec{Kind: "scaled"}).Distribution(); err == nil {
		t.Error("scaled without base must fail")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	job := dag.NewBuilder("j").
		StageData("a", 3, 1.5).
		Stage("b", 2).
		Edge("a", "b", dag.AllToAll).
		MustBuild()
	p := MustNew(job, []StageProfile{
		{Exec: stats.Lognormal{Mu: 1, Sigma: 0.4}, Queue: stats.Exponential{MeanValue: 2 * time.Second}, FailureProb: 0.05},
		{Exec: stats.NewEmpirical([]time.Duration{time.Second, 2 * time.Second})},
	})
	p.TrainingCompletion = 90 * time.Second

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Job.Name != "j" || back.Job.NumStages() != 2 {
		t.Fatalf("job not restored: %v", back.Job)
	}
	if back.Job.NumBarrierStages() != 1 {
		t.Error("edges not restored")
	}
	if back.Job.Stages[0].InputGB != 1.5 {
		t.Error("input size not restored")
	}
	if back.TrainingCompletion != 90*time.Second {
		t.Errorf("training completion = %v", back.TrainingCompletion)
	}
	if back.Stages[0].FailureProb != 0.05 {
		t.Error("failure prob not restored")
	}
	if got, want := back.Stages[0].Exec.Quantile(0.5), p.Stages[0].Exec.Quantile(0.5); got != want {
		t.Errorf("exec quantile %v != %v", got, want)
	}
	if got := back.Stages[1].TotalWork; got != p.Stages[1].TotalWork {
		t.Errorf("T_s not restored: %v vs %v", got, p.Stages[1].TotalWork)
	}
}

func TestProfileUnmarshalErrors(t *testing.T) {
	cases := []string{
		`{`, // invalid JSON
		`{"job":"x","stages":[{"name":"a","tasks":1}],"edges":[]}`,                                                                      // missing exec
		`{"job":"x","stages":[{"name":"a","tasks":1,"exec":{"kind":"nope"}}],"edges":[]}`,                                               // bad dist
		`{"job":"x","stages":[{"name":"a","tasks":1,"exec":{"kind":"point","a":1}}],"edges":[{"from":"a","to":"a","kind":"sideways"}]}`, // bad edge kind
		`{"job":"x","stages":[],"edges":[]}`,                                                                                            // no stages
	}
	for i, c := range cases {
		var p Profile
		if err := json.Unmarshal([]byte(c), &p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
