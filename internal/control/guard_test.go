package control

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
	"github.com/jockeysim/jockey/internal/utility"
)

// linearPred is a synthetic predictor for a single-stage job that finishes
// in K at any allocation: Remaining = (1 − p) · K. A job progressing at rate
// 1/K per unit time makes it perfectly calibrated; slower progress makes it
// stale.
type linearPred struct {
	K time.Duration
}

func (f linearPred) Name() string { return "linear" }

func (f linearPred) Remaining(st model.State, a int, q float64) time.Duration {
	p := st.FracDone[0]
	if p > 1 {
		p = 1
	}
	return time.Duration((1 - p) * float64(f.K))
}

func (f linearPred) ExpectedUtility(st model.State, a int, slack float64, u utility.Fn) float64 {
	rem := f.Remaining(st, a, 1)
	return u.Utility(st.Elapsed + time.Duration(float64(rem)*slack))
}

func guardFixture(t *testing.T, deadline time.Duration, tn GuardTuning, rebuild func(p *profile.Profile, gen int) (model.Predictor, error)) *Guard {
	t.Helper()
	job := dag.NewBuilder("guard-test").Stage("only", 10).MustBuild()
	prior := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 2 * time.Minute}},
	})
	ctrl, err := NewController(Config{
		Predictor:  linearPred{K: 60 * time.Minute},
		Utility:    utility.Deadline(deadline),
		Candidates: []int{10, 20, 40},
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	g, err := NewGuard(GuardConfig{
		Controller:     ctrl,
		Prior:          prior,
		RebuildPrimary: rebuild,
		Tuning:         tn,
	})
	if err != nil {
		t.Fatalf("NewGuard: %v", err)
	}
	return g
}

// tick advances the guard one control period with the given progress.
func tick(g *Guard, minute int, frac float64) Decision {
	return g.Decide(model.State{
		Elapsed:  time.Duration(minute) * time.Minute,
		FracDone: []float64{frac},
	})
}

func TestGuardCalibratedModelStaysPrimary(t *testing.T) {
	g := guardFixture(t, 90*time.Minute, GuardTuning{}, nil)
	// Progress exactly at the model's rate: slip stays ~0.
	for m := 1; m <= 30; m++ {
		d := tick(g, m, float64(m)/60)
		if d.Mode != "primary" {
			t.Fatalf("minute %d: mode %q, want primary", m, d.Mode)
		}
		if d.Deviation > 0.05 {
			t.Fatalf("minute %d: deviation %v for a calibrated model", m, d.Deviation)
		}
	}
	if n := len(g.Events()); n != 0 {
		t.Fatalf("calibrated run logged %d guard events: %+v", n, g.Events())
	}
}

func TestGuardDetectsDriftAndFallsBack(t *testing.T) {
	g := guardFixture(t, 300*time.Minute, GuardTuning{}, nil)
	// 10 calibrated minutes, then progress halves (a 2× runtime drift):
	// slip ≈ 0.5 per tick, crossing the 0.3 threshold once the window
	// majority sees drift.
	for m := 1; m <= 10; m++ {
		tick(g, m, float64(m)/60)
	}
	fell := false
	for m := 11; m <= 25; m++ {
		frac := 10.0/60 + float64(m-10)/120
		d := tick(g, m, frac)
		if d.Mode != "primary" {
			fell = true
			break
		}
	}
	if !fell {
		t.Fatalf("guard never left primary under 2x drift; events: %+v", g.Events())
	}
	// With no rebuild/online-sim hooks, the chain lands on Amdahl.
	if g.Mode() != GuardAmdahl {
		t.Fatalf("mode = %v, want amdahl", g.Mode())
	}
	evs := g.Events()
	if len(evs) == 0 || evs[0].Kind != "fallback" || evs[0].From != GuardPrimary || evs[0].To != GuardAmdahl {
		t.Fatalf("unexpected event log: %+v", evs)
	}
	if evs[0].Deviation <= 0.3 {
		t.Fatalf("fallback fired at deviation %v <= threshold", evs[0].Deviation)
	}
}

func TestGuardReprofilesBeforeFallingBack(t *testing.T) {
	var gotGen int
	var gotProfile *profile.Profile
	rebuild := func(p *profile.Profile, gen int) (model.Predictor, error) {
		gotGen, gotProfile = gen, p
		// The "rebuilt" model knows about the drift: completion takes 2K.
		return linearPred{K: 120 * time.Minute}, nil
	}
	g := guardFixture(t, 300*time.Minute, GuardTuning{MinLiveSamples: 5}, rebuild)
	// Feed live observations so re-profiling has data.
	for i := 0; i < 8; i++ {
		g.ObserveTask(trace.TaskEvent{
			Stage: 0, Task: i,
			Started: time.Duration(i) * time.Minute,
			Ended:   time.Duration(i)*time.Minute + 4*time.Minute,
		})
	}
	for m := 1; m <= 10; m++ {
		tick(g, m, float64(m)/60)
	}
	for m := 11; m <= 25; m++ {
		frac := 10.0/60 + float64(m-10)/120
		tick(g, m, frac)
		if g.Reprofiles() > 0 {
			break
		}
	}
	if g.Reprofiles() != 1 {
		t.Fatalf("reprofiles = %d, want 1; events: %+v", g.Reprofiles(), g.Events())
	}
	if g.Mode() != GuardPrimary {
		t.Fatalf("mode = %v after reprofile, want primary", g.Mode())
	}
	if gotGen != 1 {
		t.Fatalf("rebuild generation = %d, want 1", gotGen)
	}
	if gotProfile == nil || gotProfile == g.cfg.Prior {
		t.Fatalf("rebuild did not receive a blended profile")
	}
	evs := g.Events()
	if len(evs) != 1 || evs[0].Kind != "reprofile" || evs[0].LiveSamples != 8 {
		t.Fatalf("unexpected event log: %+v", evs)
	}
	// The rebuilt (accurate) model should keep the guard in primary as the
	// slow progress continues.
	for m := 26; m <= 40; m++ {
		frac := 10.0/60 + float64(m-10)/120
		if d := tick(g, m, frac); d.Mode != "primary" {
			t.Fatalf("minute %d: rebuilt model went stale again: %+v", m, g.Events())
		}
	}
}

func TestGuardPanicsWhenDeadlineAtRisk(t *testing.T) {
	// Deadline so tight that even max allocation misses once drift appears.
	g := guardFixture(t, 40*time.Minute, GuardTuning{}, nil)
	for m := 1; m <= 8; m++ {
		tick(g, m, float64(m)/60)
	}
	var last Decision
	lastM := 0
	for m := 9; m <= 45; m++ {
		frac := 8.0/60 + float64(m-8)/240 // progress at quarter rate
		last, lastM = tick(g, m, frac), m
		if g.Mode() == GuardPanic {
			break
		}
	}
	if g.Mode() != GuardPanic {
		t.Fatalf("guard never panicked; events: %+v", g.Events())
	}
	if last.Granted != 40 {
		t.Fatalf("panic granted %d, want max allocation 40", last.Granted)
	}
	found := false
	for _, e := range g.Events() {
		if e.Kind == "panic" && e.To == GuardPanic {
			found = true
		}
	}
	if !found {
		t.Fatalf("no panic event logged: %+v", g.Events())
	}
	// Panic persists while the prediction still misses.
	frac := 8.0/60 + float64(lastM+1-8)/240
	if d := tick(g, lastM+1, frac); d.Granted != 40 || d.Mode != "panic" {
		t.Fatalf("panic did not persist: %+v", d)
	}
}

func TestGuardDisableFallbackPinsPrimary(t *testing.T) {
	g := guardFixture(t, 60*time.Minute, GuardTuning{DisableFallback: true}, nil)
	for m := 1; m <= 10; m++ {
		tick(g, m, float64(m)/60)
	}
	for m := 11; m <= 30; m++ {
		frac := 10.0/60 + float64(m-10)/240
		if d := tick(g, m, frac); d.Mode != "primary" {
			t.Fatalf("DisableFallback left primary at minute %d: %+v", m, d)
		}
	}
	if len(g.Events()) != 0 {
		t.Fatalf("DisableFallback logged events: %+v", g.Events())
	}
}

func TestNewGuardValidation(t *testing.T) {
	if _, err := NewGuard(GuardConfig{}); err == nil {
		t.Fatalf("NewGuard accepted nil controller")
	}
	ctrl, err := NewController(Config{
		Predictor:  linearPred{K: time.Hour},
		Utility:    utility.Deadline(time.Hour),
		Candidates: []int{10},
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	if _, err := NewGuard(GuardConfig{Controller: ctrl}); err == nil {
		t.Fatalf("NewGuard accepted nil prior")
	}
}
