// Fixture: main packages own their process and may panic freely.
package main

func main() {
	panic("usage: cmdtool <arg>")
}
