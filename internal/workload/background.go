package workload

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
)

// BackgroundConfig describes the non-SLO jobs that share the cluster and
// make spare capacity fluctuate. Arrivals are Poisson; sizes, durations and
// guarantees vary per job.
type BackgroundConfig struct {
	// MeanInterarrival between job submissions (default 3 minutes).
	MeanInterarrival time.Duration
	// Horizon: jobs arrive in [0, Horizon) (default 2 hours).
	Horizon time.Duration
	// TasksLo/TasksHi bound the per-job task count (default 50..400).
	TasksLo, TasksHi int
	// TaskDuration is the per-task service-time distribution
	// (default lognormal, median 20s / p90 90s).
	TaskDuration stats.Distribution
	// GuaranteeLo/GuaranteeHi bound each job's guaranteed tokens
	// (default 2..8).
	GuaranteeLo, GuaranteeHi int
	// BarrierProb is the chance a background job carries a reduce stage
	// (default 0.5), adding barrier-induced burstiness.
	BarrierProb float64
	// BurstPeriod and BurstAmplitude modulate the arrival rate with a
	// square wave: during the busy half of each period arrivals come
	// BurstAmplitude× faster, during the quiet half BurstAmplitude× slower.
	// This makes spare capacity fluctuate the way the paper observes (§2.4:
	// 5%–80% of an SLO job's vertices ran on spare tokens depending on the
	// moment). Defaults: 40 minutes, 3×. Amplitude 1 disables bursts.
	BurstPeriod    time.Duration
	BurstAmplitude float64
	// Seed drives the generator.
	Seed uint64
}

func (c *BackgroundConfig) fill() error {
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 3 * time.Minute
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Hour
	}
	if c.TasksLo == 0 && c.TasksHi == 0 {
		c.TasksLo, c.TasksHi = 50, 400
	}
	if c.TasksLo < 1 || c.TasksHi < c.TasksLo {
		return fmt.Errorf("workload: bad background task bounds [%d, %d]", c.TasksLo, c.TasksHi)
	}
	if c.TaskDuration == nil {
		c.TaskDuration = stats.LognormalFromMedian(20*time.Second, 90*time.Second)
	}
	if c.GuaranteeLo == 0 && c.GuaranteeHi == 0 {
		c.GuaranteeLo, c.GuaranteeHi = 2, 8
	}
	if c.GuaranteeLo < 1 || c.GuaranteeHi < c.GuaranteeLo {
		return fmt.Errorf("workload: bad background guarantee bounds [%d, %d]", c.GuaranteeLo, c.GuaranteeHi)
	}
	if c.BarrierProb == 0 {
		c.BarrierProb = 0.5
	}
	if c.BarrierProb < 0 || c.BarrierProb > 1 {
		return fmt.Errorf("workload: barrier probability %v out of [0,1]", c.BarrierProb)
	}
	if c.BurstPeriod <= 0 {
		c.BurstPeriod = 40 * time.Minute
	}
	if c.BurstAmplitude == 0 {
		c.BurstAmplitude = 3
	}
	if c.BurstAmplitude < 1 {
		return fmt.Errorf("workload: burst amplitude %v must be >= 1", c.BurstAmplitude)
	}
	return nil
}

// SubmitBackground pre-schedules a fleet of background jobs on the cluster
// and returns how many were submitted. Call before cluster.Run.
func SubmitBackground(c *cluster.Cluster, cfg BackgroundConfig) (int, error) {
	if err := cfg.fill(); err != nil {
		return 0, err
	}
	rng := stats.NewRNG(stats.DeriveSeed(cfg.Seed, "background"))
	n := 0
	for at := time.Duration(0); at < cfg.Horizon; {
		gap := time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		if cfg.BurstAmplitude > 1 {
			if (at/cfg.BurstPeriod)%2 == 0 {
				gap = time.Duration(float64(gap) / cfg.BurstAmplitude)
			} else {
				gap = time.Duration(float64(gap) * cfg.BurstAmplitude)
			}
		}
		at += gap
		if at >= cfg.Horizon {
			break
		}
		tasks := cfg.TasksLo + rng.IntN(cfg.TasksHi-cfg.TasksLo+1)
		name := fmt.Sprintf("bg%04d", n)
		var (
			p   *profile.Profile
			err error
		)
		if rng.Float64() < cfg.BarrierProb {
			reducers := tasks / 8
			if reducers < 1 {
				reducers = 1
			}
			job := dag.NewBuilder(name).
				Stage("map", tasks).
				Stage("reduce", reducers).
				Edge("map", "reduce", dag.AllToAll).
				MustBuild()
			p, err = profile.New(job, []profile.StageProfile{
				{Exec: cfg.TaskDuration, Queue: DefaultQueueDelay(), FailureProb: 0.01},
				{Exec: stats.Scaled{Base: cfg.TaskDuration, Factor: 2}, Queue: DefaultQueueDelay(), FailureProb: 0.01},
			})
		} else {
			job := dag.NewBuilder(name).Stage("map", tasks).MustBuild()
			p, err = profile.New(job, []profile.StageProfile{
				{Exec: cfg.TaskDuration, Queue: DefaultQueueDelay(), FailureProb: 0.01},
			})
		}
		if err != nil {
			return n, err
		}
		guarantee := cfg.GuaranteeLo + rng.IntN(cfg.GuaranteeHi-cfg.GuaranteeLo+1)
		if _, err := c.Submit(cluster.JobConfig{
			Profile:   p,
			Guarantee: guarantee,
			Start:     at,
		}); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
