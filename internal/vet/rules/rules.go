// Package rules holds the five jockeyvet analyzers that machine-check the
// repository's determinism contract (DESIGN.md, "Determinism contract"):
//
//	walltime    no wall-clock reads in the deterministic packages
//	globalrand  no global or time-seeded randomness anywhere
//	maporder    no order-dependent effects inside range-over-map loops
//	panicpath   no bare panics outside internal/invariant
//	errctx      errors leaving internal/cluster and internal/control carry
//	            origin context and wrap causes with %w
//
// Every rule honors the //jockeyvet:ignore <reason> escape hatch (applied
// by the internal/vet driver, not by the individual analyzers).
package rules

import "github.com/jockeysim/jockey/internal/vet"

// DeterministicPackages names the packages (by final import-path segment)
// whose behavior must be a pure function of their inputs and seeds: the
// C(p, a) model, the cluster replay, and everything they are built from.
// cmd/ and the experiment harness may read the wall clock (progress logs,
// measured speedups); these packages may not.
var DeterministicPackages = map[string]bool{
	"sim":      true,
	"cluster":  true,
	"model":    true,
	"control":  true,
	"profile":  true,
	"stats":    true,
	"progress": true,
	"workload": true,
	"grid":     true,
	"flight":   true,
	"fleet":    true,
}

// All returns the full suite in rule-table order.
func All() []*vet.Analyzer {
	return []*vet.Analyzer{Walltime, GlobalRand, MapOrder, PanicPath, ErrCtx}
}
