package experiments

import (
	"bytes"
	"testing"

	"github.com/jockeysim/jockey/internal/flight"
	"github.com/jockeysim/jockey/internal/stats"
)

// flightDriftRun is the canonical recorded run: job B, guarded Jockey, 2×
// mid-run drift — the scenario where every mechanism (hysteresis, dead zone,
// guard ladder) has a chance to fire.
func flightDriftRun(env *Env, t *testing.T) SLORun {
	t.Helper()
	short, _, err := env.Deadlines("B")
	if err != nil {
		t.Fatal(err)
	}
	return SLORun{
		Job:        "B",
		Deadline:   short,
		Policy:     PolicyJockey,
		Guarded:    true,
		Seed:       stats.DeriveSeed(env.Seed, "robust", "B", "drift-2x", "0"),
		InputScale: 1,
		Drifts:     driftScenario(short),
	}
}

func flightJSON(t *testing.T, rec *flight.Record) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := rec.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestFlightGoldenAcrossParallelismAndReuse pins the flight record — ticks,
// candidates, replays, regret, attribution — byte-identical across worker
// pool widths and across fresh-vs-reused cluster engines. The record is
// derived state of the run; if it ever depends on scheduling or arena
// history, the determinism contract is broken.
func TestFlightGoldenAcrossParallelismAndReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three runtime caches")
	}
	fc := FlightConfig{Level: flight.LevelCounterfactual, ReplayCandidates: 3}
	var golden []byte
	for _, par := range []int{1, 4, 8} {
		env := NewEnv(7)
		env.Parallelism = par
		env.GridParallel = par
		r := flightDriftRun(env, t)
		x := NewExec()
		_, fresh, err := env.RunFlight(x, r, fc)
		if err != nil {
			t.Fatal(err)
		}
		freshJSON := flightJSON(t, fresh)
		// Second pass on the same Exec replays through recycled arenas.
		_, reused, err := env.RunFlight(x, r, fc)
		if err != nil {
			t.Fatal(err)
		}
		reusedJSON := flightJSON(t, reused)
		if !bytes.Equal(freshJSON, reusedJSON) {
			t.Fatalf("par %d: flight record differs between fresh and reused engines:\n%s\nvs\n%s",
				par, freshJSON, reusedJSON)
		}
		if golden == nil {
			golden = freshJSON
			continue
		}
		if !bytes.Equal(golden, freshJSON) {
			t.Fatalf("par %d: flight record differs from par 1:\n%s\nvs\n%s", par, golden, freshJSON)
		}
	}
}

// TestFlightRecordingDoesNotPerturb pins the zero-interference contract
// documented on SLORun.Flight: attaching the recorder must not change the
// run — same completion, same grants, same guard transitions.
func TestFlightRecordingDoesNotPerturb(t *testing.T) {
	env := sharedEnv
	r := flightDriftRun(env, t)
	x := NewExec()
	base, err := env.RunExec(x, r)
	if err != nil {
		t.Fatal(err)
	}
	got, rec, err := env.RunFlight(x, r, FlightConfig{Level: flight.LevelDecisions})
	if err != nil {
		t.Fatal(err)
	}
	if got.Completion != base.Completion || got.Met != base.Met ||
		got.AllocTokenSeconds != base.AllocTokenSeconds {
		t.Errorf("recording changed the outcome: %v/%v/%v vs %v/%v/%v",
			got.Completion, got.Met, got.AllocTokenSeconds,
			base.Completion, base.Met, base.AllocTokenSeconds)
	}
	if len(got.GuardEvents) != len(base.GuardEvents) {
		t.Errorf("recording changed guard activity: %d vs %d events",
			len(got.GuardEvents), len(base.GuardEvents))
	}
	if len(got.Trace.Timeline) != len(base.Trace.Timeline) {
		t.Fatalf("recording changed the timeline: %d vs %d points",
			len(got.Trace.Timeline), len(base.Trace.Timeline))
	}
	for i := range base.Trace.Timeline {
		if got.Trace.Timeline[i] != base.Trace.Timeline[i] {
			t.Errorf("timeline point %d diverged: %+v vs %+v",
				i, got.Trace.Timeline[i], base.Trace.Timeline[i])
		}
	}
	if rec == nil || len(rec.Ticks) == 0 {
		t.Fatal("no flight record for a recorded run")
	}
	// Every tick's grant must match the timeline the cluster observed.
	for i, tick := range rec.Ticks {
		if tick.Mechanism == "" {
			t.Errorf("tick %d has no mechanism", i)
		}
	}
}

// TestFlightReplayExactAtFixedAlloc is the replay-exactness proof: a run that
// itself used a constant allocation, counterfactually replayed at that same
// allocation, reproduces its own outcome bit-identically — so both regret
// components are exactly 0, not merely small.
func TestFlightReplayExactAtFixedAlloc(t *testing.T) {
	env := sharedEnv
	short, _, err := env.Deadlines("B")
	if err != nil {
		t.Fatal(err)
	}
	const alloc = 54
	r := SLORun{
		Job:        "B",
		Deadline:   short,
		Policy:     PolicyJockey,
		Seed:       11,
		InputScale: 1,
		fixedAlloc: alloc,
	}
	x := NewExec()
	o, err := env.RunExec(x, r)
	if err != nil {
		t.Fatal(err)
	}
	actual := flight.ReplayOutcome{
		Completion:        o.Completion,
		Met:               o.Met,
		AllocTokenSeconds: o.AllocTokenSeconds,
	}
	fc := FlightConfig{}
	fc.fill()
	reg, err := flight.Counterfactual(nil, actual, []int{alloc}, env.flightReplayer(x, r, fc))
	if err != nil {
		t.Fatal(err)
	}
	rp := reg.Replays[0]
	if rp.Completion != o.Completion || rp.Met != o.Met || rp.AllocTokenSeconds != o.AllocTokenSeconds {
		t.Fatalf("replay at the run's own allocation diverged: %+v vs outcome %v/%v/%v",
			rp, o.Completion, o.Met, o.AllocTokenSeconds)
	}
	if reg.DeadlineRegret != 0 || reg.TokenRegret != 0 {
		t.Errorf("regret against the run itself = %v/%v, want exactly 0/0",
			reg.DeadlineRegret, reg.TokenRegret)
	}
}

// TestRobustnessFlightAttributesDriftMiss is the PR's acceptance criterion:
// with counterfactual recording on, the robustness grid must attribute at
// least one guarded-vs-unguarded miss difference to a named mechanism.
func TestRobustnessFlightAttributesDriftMiss(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full robustness grid with hindsight replays")
	}
	res, err := RobustnessFlight(sharedEnv, RobustnessConfig{
		Job:              "B",
		SeedsPerCell:     1,
		Flight:           flight.LevelCounterfactual,
		ReplayCandidates: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRecords := len(DefaultRobustnessScenarios(res.Deadline)) * len(RobustnessVariants)
	if len(res.Records) != wantRecords {
		t.Fatalf("records = %d, want %d", len(res.Records), wantRecords)
	}
	for _, fr := range res.Records {
		if fr.Record.Counterfactual == nil {
			t.Fatalf("%s/%s/%d: no counterfactual section", fr.Scenario, fr.Policy, fr.Seed)
		}
		if err := fr.Record.Validate(); err != nil {
			t.Errorf("%s/%s/%d: invalid record: %v", fr.Scenario, fr.Policy, fr.Seed, err)
		}
	}
	byCell := map[[2]string]RobustnessRow{}
	for _, row := range res.Rows {
		byCell[[2]string{row.Scenario, row.Policy}] = row
	}
	// Under drift, runs that miss while the guard's variant (or a hindsight
	// constant allocation) meets must be flagged avoidable and attributed.
	attributed := 0
	for cell, row := range byCell {
		if row.HindsightMiss > 0 {
			if row.Attributed == "" {
				t.Errorf("%v: %d avoidable misses but no attributed mechanism", cell, row.HindsightMiss)
			}
			attributed++
		}
		if row.Met == row.Runs && row.HindsightMiss != 0 {
			t.Errorf("%v: all runs met but hmiss = %d", cell, row.HindsightMiss)
		}
	}
	drifted := byCell[[2]string{"drift-2x", "jockey"}]
	guarded := byCell[[2]string{"drift-2x", "jockey-guarded"}]
	t.Logf("drift-2x: unguarded met %d/%d (hmiss %d, attributed %q), guarded met %d/%d",
		drifted.Met, drifted.Runs, drifted.HindsightMiss, drifted.Attributed,
		guarded.Met, guarded.Runs)
	if attributed == 0 {
		t.Error("no cell in the whole grid had an avoidable, attributed miss")
	}
	out := res.Render()
	for _, want := range []string{"hmiss", "tok-regret", "attributed"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestRobustnessLevelNoneUnchanged pins that the zero-value config keeps the
// legacy shape: no records, no regret columns, render without regret headers.
func TestRobustnessLevelNoneUnchanged(t *testing.T) {
	res, err := Robustness(sharedEnv, "B", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Errorf("level none produced %d flight records", len(res.Records))
	}
	out := res.Render()
	for _, banned := range []string{"hmiss", "tok-regret", "attributed"} {
		if bytes.Contains([]byte(out), []byte(banned)) {
			t.Errorf("level-none render leaked regret column %q:\n%s", banned, out)
		}
	}
}
