//go:build !invariantdebug

package invariant

// Debug reports whether the expensive debug-build invariant checks are
// compiled in. In the default build it is a false constant, so guarded
// checks (`if invariant.Debug { ... }`) are eliminated at compile time and
// the hot path pays nothing. Build with `-tags invariantdebug` to enable
// them (CI runs the model package that way).
const Debug = false
