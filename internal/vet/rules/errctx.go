package rules

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"github.com/jockeysim/jockey/internal/vet"
)

// errCtxPackages are the packages (by full import path) whose errors
// routinely cross package boundaries into the facade and the experiment
// harness, where "which job? which stage?" is the first question.
var errCtxPackages = map[string]bool{
	ModulePath + "/internal/cluster": true,
	ModulePath + "/internal/control": true,
}

// ErrCtx enforces the error-identity discipline in internal/cluster and
// internal/control (extending PR 2's "job names in cluster.Run errors" to a
// checked rule):
//
//  1. every fmt.Errorf format starts with the "<pkg>: " origin prefix;
//  2. an error-typed argument to fmt.Errorf must be wrapped with %w, so the
//     cause survives errors.Is/As across the boundary;
//  3. an error obtained from a call into another package may not be
//     returned bare — wrap it with %w plus the job/stage identity;
//  4. errors.New is banned: these packages always have identity to attach,
//     so fmt.Errorf with context is the floor.
var ErrCtx = &vet.Analyzer{
	Name: "errctx",
	Doc:  "errors in internal/cluster and internal/control must carry the origin prefix, wrap causes with %w, and never propagate foreign errors bare",
	Run:  runErrCtx,
}

func runErrCtx(p *vet.Pass) error {
	if !errCtxPackages[basePath(p.Pkg.Path())] {
		return nil
	}
	prefix := p.Pkg.Name() + ": "
	for _, f := range p.Files {
		if vet.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name, ok := pkgFuncRef(p, sel, "errors"); ok && name == "New" {
				p.Reportf(call.Pos(), "errors.New loses identity; use fmt.Errorf(%q...) with the job/stage context", prefix)
				return true
			}
			if name, ok := pkgFuncRef(p, sel, "fmt"); ok && name == "Errorf" {
				checkErrorf(p, call, prefix)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkBareForeignReturns(p, body)
			}
			return true
		})
	}
	return nil
}

func checkErrorf(p *vet.Pass, call *ast.CallExpr, prefix string) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return // non-literal formats are rare and un-checkable; let them be
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !strings.HasPrefix(format, prefix) {
		p.Reportf(lit.Pos(), "error message %q must identify its origin: start with %q", format, prefix)
	}
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if t := p.Info.TypeOf(arg); t != nil && isErrorType(t) {
			p.Reportf(arg.Pos(), "error argument formatted without %%w loses the cause across the package boundary; wrap it")
		}
	}
}

// checkBareForeignReturns flags `return err` where err came from a call into
// a different package: the error crosses two boundaries with no local
// context attached.
func checkBareForeignReturns(p *vet.Pass, body *ast.BlockStmt) {
	// Flow-insensitive taint: error vars assigned from cross-package calls.
	foreign := map[types.Object]ast.Expr{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		crossPkg := calleeForeign(p, call)
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.ObjectOf(id)
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			if crossPkg {
				foreign[obj] = call.Fun
			} else {
				delete(foreign, obj) // reassigned locally: taint cleared
			}
		}
		return true
	})
	if len(foreign) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			id, ok := res.(*ast.Ident)
			if !ok {
				continue
			}
			if from, tainted := foreign[p.Info.ObjectOf(id)]; tainted {
				p.Reportf(res.Pos(), "error from %s returned bare; wrap it: fmt.Errorf(\"%s: <job/stage identity>: %%w\", ..., %s)",
					exprString(from), p.Pkg.Name(), id.Name)
			}
		}
		return true
	})
}

// calleeForeign reports whether the call's static callee is a function or
// method declared in a package other than the one under analysis.
func calleeForeign(p *vet.Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fn]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fn.Sel]
	default:
		return false
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return false // builtin, conversion, or local function value
	}
	return f.Pkg() != p.Pkg
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	default:
		return "call"
	}
}
