package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/fleet"
	"github.com/jockeysim/jockey/internal/stats"
)

// fleetDiscipline is one arbitration variant under comparison.
type fleetDiscipline struct {
	Arb     fleet.Arbitration
	Guarded bool
}

func (d fleetDiscipline) name() string {
	if d.Guarded {
		return string(d.Arb) + "+guard"
	}
	return string(d.Arb)
}

// fleetDisciplines is the comparison set: the static FIFO baseline,
// deadline-blind fair sharing, marginal-utility water-filling, and
// water-filling with the guard-panic containment layer.
var fleetDisciplines = []fleetDiscipline{
	{fleet.FIFO, false},
	{fleet.FairShare, false},
	{fleet.UtilityGreedy, false},
	{fleet.UtilityGreedy, true},
}

// fleetLoads × fleetFaults spans the robustness grid: nominal and 3×
// arrival pressure, against a calm cluster, a 11/20-machine rack outage,
// and mid-run service-time drift on every 4th job.
var fleetLoads = []struct {
	name   string
	factor float64
}{
	{"load-1x", 1},
	{"load-3x", 3},
}

var fleetFaults = []struct {
	name   string
	outage bool
	drift  bool
}{
	{"calm", false, false},
	{"rack-outage", true, false},
	{"drift", false, true},
}

// fleetReps is how many seeded replays are aggregated per grid cell. The
// same per-rep fleet seeds are reused across disciplines, so comparisons
// are paired: every discipline faces the identical offer stream.
const fleetReps = 3

// FleetRow aggregates one (scenario, discipline) cell.
type FleetRow struct {
	Scenario   string
	Discipline string
	Offers     int
	Admitted   int
	Rejected   int
	Met        int
	Missed     int
	// MeanUtility is the aggregate fleet utility, averaged over reps.
	MeanUtility float64
	// Deferrals counts admission deferrals across reps.
	Deferrals int
	// Miss attribution tallies across reps (admission / arbitration /
	// guard / model).
	MissAdmission, MissArbitration, MissGuard, MissModel int
}

// FleetRobustnessResult is the full grid.
type FleetRobustnessResult struct {
	Rows []FleetRow
}

// Row returns the cell for a scenario and discipline display name, or nil.
func (r *FleetRobustnessResult) Row(scenario, discipline string) *FleetRow {
	for i := range r.Rows {
		if r.Rows[i].Scenario == scenario && r.Rows[i].Discipline == discipline {
			return &r.Rows[i]
		}
	}
	return nil
}

// FleetRobustness sweeps load factor × fault regime × arbitration
// discipline over deterministic multi-job fleet replays (internal/fleet)
// and reports deadline misses, aggregate utility, and per-mechanism miss
// attribution. All cells share one shape-keyed fleet.ModelCache — the
// cross-job model store — and each grid worker reuses its Exec's cluster
// engine, so the grid exercises exactly the sharing the fleet arbiter is
// built around. Output is bit-identical at any GridParallel.
func FleetRobustness(env *Env) (*FleetRobustnessResult, error) {
	models := fleet.NewModelCache(stats.DeriveSeed(env.Seed, "fleet-models"))
	models.SetParallelism(env.Parallelism)

	type cell struct {
		scenario, discipline string
	}
	type repOut struct {
		cell cell
		res  *fleet.Result
	}
	var tasks []execTask[repOut]
	for _, load := range fleetLoads {
		for _, fault := range fleetFaults {
			scenario := load.name + "/" + fault.name
			for _, d := range fleetDisciplines {
				for rep := 0; rep < fleetReps; rep++ {
					load, fault, d, rep := load, fault, d, rep
					key := fmt.Sprintf("fleet/%s/%s/%d", scenario, d.name(), rep)
					tasks = append(tasks, execTask[repOut]{
						key: key,
						run: func(x *Exec) (repOut, error) {
							cfg := fleet.Config{
								// Per-rep seeds are shared across scenarios and
								// disciplines: comparisons are paired on the
								// same offer stream.
								Seed:        stats.DeriveSeed(env.Seed, "fleet-rep", fmt.Sprint(rep)),
								Arrivals:    16,
								LoadFactor:  load.factor,
								Budget:      60,
								Arbitration: d.Arb,
								Guarded:     d.Guarded,
								Models:      models,
								Engine:      x.engine,
							}
							if fault.outage {
								cfg.RackOutages = []cluster.RackOutage{{
									At: 12 * time.Minute, FirstMachine: 0, Machines: 11,
									Duration: 20 * time.Minute,
								}}
							}
							if fault.drift {
								cfg.DriftEvery = 4
							}
							res, err := fleet.Run(cfg)
							if err != nil {
								return repOut{}, fmt.Errorf("%s: %w", key, err)
							}
							return repOut{cell: cell{scenario, d.name()}, res: res}, nil
						},
					})
				}
			}
		}
	}
	outs, err := runGrid(env, tasks)
	if err != nil {
		return nil, err
	}

	// Aggregate reps per cell, preserving task order (no map iteration).
	result := &FleetRobustnessResult{}
	idx := make(map[cell]int)
	for _, out := range outs {
		i, ok := idx[out.cell]
		if !ok {
			i = len(result.Rows)
			idx[out.cell] = i
			result.Rows = append(result.Rows, FleetRow{
				Scenario:   out.cell.scenario,
				Discipline: out.cell.discipline,
			})
		}
		row := &result.Rows[i]
		res := out.res
		row.Offers += len(res.Jobs)
		row.Admitted += res.Admitted
		row.Rejected += res.Rejected
		row.Met += res.Met
		row.Missed += res.Missed
		row.MeanUtility += res.AggUtility / fleetReps
		for _, rec := range res.Jobs {
			row.Deferrals += rec.Deferrals
			switch rec.Attribution {
			case "admission":
				row.MissAdmission++
			case "arbitration":
				row.MissArbitration++
			case "guard":
				row.MissGuard++
			case "model":
				row.MissModel++
			}
		}
	}
	return result, nil
}

// Render prints the grid with per-mechanism miss attribution.
func (r *FleetRobustnessResult) Render() string {
	headers := []string{
		"scenario", "arbitration", "offers", "admitted", "rejected",
		"met", "missed", "utility", "defers", "miss: adm/arb/grd/mdl",
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scenario, row.Discipline,
			fmt.Sprint(row.Offers), fmt.Sprint(row.Admitted), fmt.Sprint(row.Rejected),
			fmt.Sprint(row.Met), fmt.Sprint(row.Missed),
			fmt.Sprintf("%+.1f", row.MeanUtility),
			fmt.Sprint(row.Deferrals),
			fmt.Sprintf("%d/%d/%d/%d", row.MissAdmission, row.MissArbitration, row.MissGuard, row.MissModel),
		})
	}
	var b strings.Builder
	b.WriteString(renderTable(
		fmt.Sprintf("Fleet arbitration robustness (%d offers × %d reps per cell, paired seeds)",
			16, fleetReps),
		headers, rows))
	return b.String()
}
