// Package trace records executions of data-parallel jobs: one event per task
// attempt plus an allocation timeline sampled by the control loop. Traces
// are the raw material for job profiles (package profile), for the paper's
// time-lapse figures (Fig. 6), and for the training-vs-actual comparison of
// Table 3.
//
// All times are offsets from the start of the job, as time.Duration.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// TaskEvent describes one attempt of one task.
type TaskEvent struct {
	Stage      int           // stage index within the job's plan
	Task       int           // task index within the stage
	Attempt    int           // 0 for the first attempt, 1+ for re-executions
	Queued     time.Duration // when the task became schedulable
	Dispatched time.Duration // when it received a token
	Started    time.Duration // when it began executing (after init latency)
	Ended      time.Duration // when it finished or failed
	Failed     bool          // true if this attempt failed and was re-queued
}

// QueueTime returns how long the attempt spent between becoming schedulable
// and executing: token wait plus initialization (the paper's "enqueued"
// time, which feeds the totalworkWithQ indicator).
func (e TaskEvent) QueueTime() time.Duration { return e.Started - e.Queued }

// InitTime returns the scheduling/initialization latency alone: the time
// between receiving a token and executing. Profiles use it as the per-task
// init distribution, so that replaying a profile does not double-count
// token waiting.
func (e TaskEvent) InitTime() time.Duration { return e.Started - e.Dispatched }

// ExecTime returns how long the attempt executed.
func (e TaskEvent) ExecTime() time.Duration { return e.Ended - e.Started }

// AllocPoint is one sample of the allocation timeline (the series plotted in
// Fig. 6 of the paper).
type AllocPoint struct {
	T         time.Duration // sample time since job start
	Raw       int           // raw allocation requested by the policy (blue line)
	Granted   int           // smoothed allocation set by the policy (black line)
	Running   int           // number of vertices currently running (red line)
	Oracle    int           // oracle allocation ⌈T/d⌉ (green line)
	Progress  float64       // progress-indicator value in [0, 1]
	Predicted time.Duration // policy's completion-time estimate T_t at this sample
	Mode      string        // guard-rail rung that produced the decision ("" if unguarded)
	Deviation float64       // guard's misprediction score at this sample (0 if unguarded)
}

// JobTrace is the complete record of one job execution.
type JobTrace struct {
	JobName    string
	NumStages  int
	Events     []TaskEvent
	Timeline   []AllocPoint
	Completion time.Duration // end-to-end job latency
}

// New creates an empty trace for a job with the given stage count.
func New(jobName string, numStages int) *JobTrace {
	return &JobTrace{JobName: jobName, NumStages: numStages}
}

// Reset clears the trace in place for reuse, keeping the Events and
// Timeline capacity. A reusable simulation engine (sim.Runner) records
// thousands of traces into one JobTrace; after the first few runs the
// backing arrays reach their high-water size and recording stops
// allocating.
func (t *JobTrace) Reset(jobName string, numStages int) {
	t.JobName = jobName
	t.NumStages = numStages
	t.Events = t.Events[:0]
	t.Timeline = t.Timeline[:0]
	t.Completion = 0
}

// AddTask appends a task-attempt event.
func (t *JobTrace) AddTask(e TaskEvent) { t.Events = append(t.Events, e) }

// AddAlloc appends an allocation-timeline sample.
func (t *JobTrace) AddAlloc(p AllocPoint) { t.Timeline = append(t.Timeline, p) }

// ExecSamples returns the execution times of all successful attempts in the
// given stage, sorted ascending. Failed attempts are excluded because their
// truncated runtimes are not service-time observations.
func (t *JobTrace) ExecSamples(stage int) []time.Duration {
	var out []time.Duration
	for _, e := range t.Events {
		if e.Stage == stage && !e.Failed {
			out = append(out, e.ExecTime())
		}
	}
	sortDurations(out)
	return out
}

// QueueSamples returns the queueing delays of all successful attempts in the
// given stage, sorted ascending.
func (t *JobTrace) QueueSamples(stage int) []time.Duration {
	var out []time.Duration
	for _, e := range t.Events {
		if e.Stage == stage && !e.Failed {
			out = append(out, e.QueueTime())
		}
	}
	sortDurations(out)
	return out
}

// InitSamples returns the initialization latencies of all successful
// attempts in the given stage, sorted ascending.
func (t *JobTrace) InitSamples(stage int) []time.Duration {
	var out []time.Duration
	for _, e := range t.Events {
		if e.Stage == stage && !e.Failed {
			out = append(out, e.InitTime())
		}
	}
	sortDurations(out)
	return out
}

// AllExecSamples returns execution times of successful attempts across all
// stages, sorted ascending.
func (t *JobTrace) AllExecSamples() []time.Duration {
	var out []time.Duration
	for _, e := range t.Events {
		if !e.Failed {
			out = append(out, e.ExecTime())
		}
	}
	sortDurations(out)
	return out
}

// AllQueueSamples returns queueing delays of successful attempts across all
// stages, sorted ascending.
func (t *JobTrace) AllQueueSamples() []time.Duration {
	var out []time.Duration
	for _, e := range t.Events {
		if !e.Failed {
			out = append(out, e.QueueTime())
		}
	}
	sortDurations(out)
	return out
}

// FailureRate returns the fraction of attempts in the stage that failed.
// It returns 0 for a stage with no recorded attempts.
func (t *JobTrace) FailureRate(stage int) float64 {
	attempts, failures := 0, 0
	for _, e := range t.Events {
		if e.Stage == stage {
			attempts++
			if e.Failed {
				failures++
			}
		}
	}
	if attempts == 0 {
		return 0
	}
	return float64(failures) / float64(attempts)
}

// TotalWork returns the aggregate execution time of all attempts (the job's
// total CPU consumption, including work lost to failures). This is the T
// used by the oracle allocation O(T, d) = ⌈T/d⌉.
func (t *JobTrace) TotalWork() time.Duration {
	var sum time.Duration
	for _, e := range t.Events {
		sum += e.ExecTime()
	}
	return sum
}

// StageWork returns the aggregate execution time of successful attempts in
// the stage (the paper's T_s).
func (t *JobTrace) StageWork(stage int) time.Duration {
	var sum time.Duration
	for _, e := range t.Events {
		if e.Stage == stage && !e.Failed {
			sum += e.ExecTime()
		}
	}
	return sum
}

// StageQueue returns the aggregate queueing time of successful attempts in
// the stage (the paper's Q_s).
func (t *JobTrace) StageQueue(stage int) time.Duration {
	var sum time.Duration
	for _, e := range t.Events {
		if e.Stage == stage && !e.Failed {
			sum += e.QueueTime()
		}
	}
	return sum
}

// LongestTask returns the longest successful execution time in the stage
// (the paper's l_s), or 0 if the stage has no recorded attempts.
func (t *JobTrace) LongestTask(stage int) time.Duration {
	var best time.Duration
	for _, e := range t.Events {
		if e.Stage == stage && !e.Failed && e.ExecTime() > best {
			best = e.ExecTime()
		}
	}
	return best
}

// StageSpan returns the first queue time and last end time observed in the
// stage, used by the minstage indicators (the paper's tb_s and te_s relative
// stage start/end times). ok is false if the stage has no events.
func (t *JobTrace) StageSpan(stage int) (begin, end time.Duration, ok bool) {
	first := true
	for _, e := range t.Events {
		if e.Stage != stage {
			continue
		}
		if first {
			begin, end, ok, first = e.Queued, e.Ended, true, false
			continue
		}
		if e.Queued < begin {
			begin = e.Queued
		}
		if e.Ended > end {
			end = e.Ended
		}
	}
	return begin, end, ok
}

// MaxParallelism returns the maximum number of simultaneously running task
// attempts, computed by sweeping the start/end events.
func (t *JobTrace) MaxParallelism() int {
	type point struct {
		at    time.Duration
		delta int
	}
	pts := make([]point, 0, 2*len(t.Events))
	for _, e := range t.Events {
		pts = append(pts, point{e.Started, +1}, point{e.Ended, -1})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].at != pts[j].at {
			return pts[i].at < pts[j].at
		}
		return pts[i].delta < pts[j].delta // process ends before starts at ties
	})
	cur, best := 0, 0
	for _, p := range pts {
		cur += p.delta
		if cur > best {
			best = cur
		}
	}
	return best
}

// WriteEventsCSV writes the task events as CSV.
func (t *JobTrace) WriteEventsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"stage", "task", "attempt", "queued_s", "dispatched_s", "started_s", "ended_s", "failed"}); err != nil {
		return err
	}
	for _, e := range t.Events {
		rec := []string{
			strconv.Itoa(e.Stage), strconv.Itoa(e.Task), strconv.Itoa(e.Attempt),
			fmt.Sprintf("%.3f", e.Queued.Seconds()),
			fmt.Sprintf("%.3f", e.Dispatched.Seconds()),
			fmt.Sprintf("%.3f", e.Started.Seconds()),
			fmt.Sprintf("%.3f", e.Ended.Seconds()),
			strconv.FormatBool(e.Failed),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTimelineCSV writes the allocation timeline as CSV (the data behind
// the paper's Fig. 6 plots).
func (t *JobTrace) WriteTimelineCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_s", "raw", "granted", "running", "oracle", "progress", "predicted_s", "mode", "deviation"}); err != nil {
		return err
	}
	for _, p := range t.Timeline {
		rec := []string{
			fmt.Sprintf("%.1f", p.T.Seconds()),
			strconv.Itoa(p.Raw), strconv.Itoa(p.Granted),
			strconv.Itoa(p.Running), strconv.Itoa(p.Oracle),
			fmt.Sprintf("%.4f", p.Progress),
			fmt.Sprintf("%.1f", p.Predicted.Seconds()),
			p.Mode,
			fmt.Sprintf("%.4f", p.Deviation),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
