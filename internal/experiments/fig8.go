package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/stats"
)

// Fig8Point is one allocation's average prediction error.
type Fig8Point struct {
	Alloc        int
	SimErr       float64 // simulator-based predictor
	AmdahlErr    float64 // Amdahl's-Law predictor
	JobsMeasured int
}

// Fig8 holds the prediction-accuracy curves of Figure 8.
type Fig8 struct {
	Points []Fig8Point
	// AvgSim and AvgAmdahl are overall average errors (paper: 9.8% and
	// 11.8%).
	AvgSim, AvgAmdahl float64
}

// PredictionAccuracy reproduces §5.3: both predictors are initialized from
// a single training run, then each job is executed RunsPerPoint times at
// each allocation of the grid; the worst-case prediction is compared to the
// slowest actual run.
func PredictionAccuracy(env *Env, jobs []string, runsPerPoint int) (*Fig8, error) {
	if len(jobs) == 0 {
		jobs = DefaultJobs
	}
	if runsPerPoint <= 0 {
		runsPerPoint = 3
	}
	allocs := []int{20, 30, 40, 50, 60, 70, 80, 90}
	f := &Fig8{}
	var simAll, amdahlAll []float64
	for _, alloc := range allocs {
		var simErrs, amdahlErrs []float64
		for _, job := range jobs {
			jk, err := env.Runtime(job, "")
			if err != nil {
				return nil, err
			}
			train, err := env.Training(job)
			if err != nil {
				return nil, err
			}
			ground, err := env.Ground(job)
			if err != nil {
				return nil, err
			}
			// Actual executions at this allocation on an idle slice (the
			// paper's dedicated experiments), keeping the slowest.
			var slowest time.Duration
			for r := 0; r < runsPerPoint; r++ {
				c, err := cluster.New(cluster.Config{
					Machines:        env.Machines,
					SlotsPerMachine: env.Slots,
					MachineMTBF:     90 * time.Minute,
					Seed:            stats.DeriveSeed(env.Seed, "fig8", job, fmt.Sprint(alloc), fmt.Sprint(r)),
				})
				if err != nil {
					return nil, err
				}
				h, err := c.Submit(cluster.JobConfig{
					Profile:   ground,
					Guarantee: alloc,
					Tracked:   true,
					NoSpare:   true, // controlled-allocation measurement run
				})
				if err != nil {
					return nil, err
				}
				if err := c.Run(); err != nil {
					return nil, err
				}
				if got := h.Result().Completion; got > slowest {
					slowest = got
				}
			}
			simPred := jk.PredictLatency(jk.Model().SnapAlloc(alloc), 1.0)
			amdahlPred := model.NewAmdahl(train).Estimate(make([]float64, train.Job.NumStages()), alloc)
			simErrs = append(simErrs, relErr(simPred, slowest))
			amdahlErrs = append(amdahlErrs, relErr(amdahlPred, slowest))
		}
		p := Fig8Point{
			Alloc:        alloc,
			SimErr:       stats.Mean(simErrs),
			AmdahlErr:    stats.Mean(amdahlErrs),
			JobsMeasured: len(simErrs),
		}
		f.Points = append(f.Points, p)
		simAll = append(simAll, simErrs...)
		amdahlAll = append(amdahlAll, amdahlErrs...)
	}
	f.AvgSim = stats.Mean(simAll)
	f.AvgAmdahl = stats.Mean(amdahlAll)
	return f, nil
}

func relErr(pred, actual time.Duration) float64 {
	if actual <= 0 {
		return 0
	}
	return math.Abs(float64(pred)-float64(actual)) / float64(actual)
}

// Render prints the Fig. 8 error curves.
func (f *Fig8) Render() string {
	var rows [][]string
	for _, p := range f.Points {
		rows = append(rows, []string{
			fmt.Sprint(p.Alloc), pct(p.SimErr), pct(p.AmdahlErr),
		})
	}
	title := fmt.Sprintf(
		"Figure 8: average latency-prediction error vs allocation\n"+
			"(paper: simulator 9.8%% avg, Amdahl 11.8%% avg, Amdahl worst at low allocations)\n"+
			"overall: simulator %s, Amdahl %s", pct(f.AvgSim), pct(f.AvgAmdahl))
	return renderTable(title, []string{"allocation", "simulator err", "amdahl err"}, rows)
}
