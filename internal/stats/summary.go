package stats

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"
)

// Quantile returns the q-quantile of values using linear interpolation
// between order statistics. It does not require the input to be sorted.
// It returns 0 for an empty input.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// QuantileDurations returns the q-quantile of an ascending-sorted duration
// slice with linear interpolation. It returns 0 for an empty input.
func QuantileDurations(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return time.Duration(float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac)
}

// Mean returns the arithmetic mean, or 0 for an empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// values.
func StdDev(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	m := Mean(values)
	var ss float64
	for _, v := range values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(values)))
}

// CoV returns the coefficient of variation (stddev / mean) of the values.
// This is the statistic Table 1 of the paper reports for recurring-job
// completion times. It returns 0 if the mean is zero.
func CoV(values []float64) float64 {
	m := Mean(values)
	if m == 0 {
		return 0
	}
	return StdDev(values) / m
}

// CoVDurations is CoV over durations.
func CoVDurations(ds []time.Duration) float64 {
	vs := make([]float64, len(ds))
	for i, d := range ds {
		vs[i] = d.Seconds()
	}
	return CoV(vs)
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, StdDev       float64
	Min, Max           float64
	P10, P50, P90, P99 float64
}

// Summarize computes a Summary of the values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Mean:   Mean(s),
		StdDev: StdDev(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		P10:    quantileSorted(s, 0.10),
		P50:    quantileSorted(s, 0.50),
		P90:    quantileSorted(s, 0.90),
		P99:    quantileSorted(s, 0.99),
	}
}

// SummarizeDurations computes a Summary of the durations, in seconds.
func SummarizeDurations(ds []time.Duration) Summary {
	vs := make([]float64, len(ds))
	for i, d := range ds {
		vs[i] = d.Seconds()
	}
	return Summarize(vs)
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f p50=%.3f p90=%.3f p99=%.3f",
		s.N, s.Mean, s.StdDev, s.P50, s.P90, s.P99)
}

// Reservoir keeps a bounded uniform random sample of a stream of durations.
// The C(p,a) model uses reservoirs so that arbitrarily many offline
// simulations contribute to each progress bucket in constant memory.
type Reservoir struct {
	cap  int
	seen int64
	vals []time.Duration
}

// NewReservoir creates a reservoir holding at most capacity samples.
func NewReservoir(capacity int) *Reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	return &Reservoir{cap: capacity}
}

// Add offers a value to the reservoir. r selects which retained sample to
// replace once the reservoir is full (Vitter's algorithm R).
func (rv *Reservoir) Add(v time.Duration, r interface{ Int64N(int64) int64 }) {
	rv.seen++
	if len(rv.vals) < rv.cap {
		rv.vals = append(rv.vals, v)
		return
	}
	if j := r.Int64N(rv.seen); j < int64(rv.cap) {
		rv.vals[j] = v
	}
}

// Sort orders the retained samples ascending, in place. The C(p, a) table
// sorts every cell once after construction so that quantile queries index
// the sorted slice directly instead of copying and re-sorting per query.
// Algorithm R does not depend on element order, so Add remains correct
// after a Sort (though the table never adds post-build).
func (rv *Reservoir) Sort() {
	slices.Sort(rv.vals)
}

// Len returns the number of retained samples.
func (rv *Reservoir) Len() int { return len(rv.vals) }

// Seen returns how many values have been offered.
func (rv *Reservoir) Seen() int64 { return rv.seen }

// Values returns the retained samples. The slice is owned by the reservoir.
func (rv *Reservoir) Values() []time.Duration { return rv.vals }
