package eventq

// The hand-rolled heap must be observably indistinguishable from the
// container/heap implementation it replaced: (time, seq) is a total order,
// so the pop sequence is fully determined by the push sequence. refQueue
// below is a faithful copy of the old adapter; the randomized test drives
// both with identical interleaved push/pop workloads.

import (
	"container/heap"
	"testing"
	"testing/quick"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
)

type refItem struct {
	at  time.Duration
	seq uint64
	v   int
}

type refHeap []refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type refQueue struct {
	h   refHeap
	seq uint64
}

func (q *refQueue) Push(at time.Duration, v int) {
	q.seq++
	heap.Push(&q.h, refItem{at: at, seq: q.seq, v: v})
}

func (q *refQueue) Pop() (time.Duration, int, bool) {
	if len(q.h) == 0 {
		return 0, 0, false
	}
	it := heap.Pop(&q.h).(refItem)
	return it.at, it.v, true
}

// TestMatchesContainerHeapReference drives the boxing-free heap and the old
// container/heap adapter with the same random interleaving of pushes and
// pops and requires identical results at every step.
func TestMatchesContainerHeapReference(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		rng := stats.NewRNG(seed)
		ops := 50 + int(opsRaw)%2000
		var q Queue[int]
		var ref refQueue
		for i := 0; i < ops; i++ {
			// Bias toward pushes so the heap grows; cluster times so ties
			// (seq ordering) are exercised heavily.
			if rng.IntN(3) != 0 || q.Len() == 0 {
				at := time.Duration(rng.IntN(64)) * time.Millisecond
				q.Push(at, i)
				ref.Push(at, i)
				continue
			}
			at, v, ok := q.Pop()
			rat, rv, rok := ref.Pop()
			if at != rat || v != rv || ok != rok {
				return false
			}
		}
		for {
			at, v, ok := q.Pop()
			rat, rv, rok := ref.Pop()
			if at != rat || v != rv || ok != rok {
				return false
			}
			if !ok {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestResetReusesCapacity: after Reset the queue behaves like a fresh one
// (sequence restarts, ordering intact) without reallocating its backing
// array.
func TestResetReusesCapacity(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 1000; i++ {
		q.Push(time.Duration(1000-i)*time.Millisecond, i)
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop after Reset should be !ok")
	}
	if q.seq != 0 {
		t.Fatalf("seq after Reset = %d, want 0 (bit-identical to a fresh queue)", q.seq)
	}
	// Refilling to the previous high-water mark must not allocate.
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			q.Push(time.Duration(i)*time.Millisecond, i)
		}
		for q.Len() > 0 {
			q.Pop()
		}
		q.Reset()
	})
	if allocs != 0 {
		t.Errorf("refill within capacity after Reset allocated %v allocs/run, want 0", allocs)
	}
}

// TestSteadyStateZeroAllocs pins the tentpole claim: Push/Pop at constant
// queue depth never allocates (the container/heap adapter boxed one
// interface value per Push).
func TestSteadyStateZeroAllocs(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 256; i++ {
		q.Push(time.Duration(i), i)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		at, v, _ := q.Pop()
		q.Push(at+256, v)
	})
	if allocs != 0 {
		t.Errorf("steady-state Push/Pop = %v allocs/run, want 0", allocs)
	}
}

// BenchmarkEventQueue measures steady-state Push+Pop at a constant depth —
// the simulator's per-task-attempt cost.
func BenchmarkEventQueue(b *testing.B) {
	var q Queue[int]
	for i := 0; i < 256; i++ {
		q.Push(time.Duration(i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at, v, _ := q.Pop()
		q.Push(at+256, v)
	}
}
