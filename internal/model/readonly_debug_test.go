//go:build invariantdebug

package model

// Runs only under `go test -tags invariantdebug` (CI does): the read-only
// cells contract must be actively enforced, not just documented — mutating
// a cell slice returned by samplesAt must panic with an invariant
// Violation on the next query.

import (
	"errors"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/invariant"
)

func TestMutatedCellPanicsInDebugBuild(t *testing.T) {
	p := noisyProfile(t)
	c := buildTestCPA(t, p, []int{2, 5, 15, 40})
	st := State{FracDone: []float64{0.5, 0.25}}
	vs := c.samplesAt(c.Progress(st), 15)
	if len(vs) == 0 {
		t.Fatal("expected a non-empty cell")
	}
	vs[0] += time.Second // violate the contract
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mutated cell did not panic in debug build")
		}
		err, ok := r.(error)
		var v *invariant.Violation
		if !ok || !errors.As(err, &v) {
			t.Fatalf("panic value %v is not an invariant.Violation", r)
		}
	}()
	c.Remaining(st, 15, 0.9)
}
