package model_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/workload"
)

// TestAmdahlBitIdenticalAcrossConstructions locks in the determinism
// contract for the analytic predictor: rebuilding the same profile from
// scratch and re-running the estimator must reproduce every prediction
// bit for bit. Profile.Stages is a slice, so the Estimate loop in
// amdahl.go walks stages in index order with no map-iteration hazard;
// this test keeps that property from regressing if the profile
// representation ever changes.
func TestAmdahlBitIdenticalAcrossConstructions(t *testing.T) {
	const seed = 42
	allocs := []int{1, 5, 30, 110, 400}
	fracs := []float64{0, 0.25, 0.5, 0.9, 1}

	predict := func(spec workload.JobSpec) map[string]time.Duration {
		p := workload.MustGenerate(spec, seed)
		m := model.NewAmdahl(p)
		out := make(map[string]time.Duration)
		for _, a := range allocs {
			for _, f := range fracs {
				fs := make([]float64, len(p.Stages))
				for i := range fs {
					fs[i] = f
				}
				out[fmt.Sprintf("%s/a=%d/f=%g", spec.Name, a, f)] = m.Estimate(fs, a)
			}
		}
		return out
	}

	for _, spec := range workload.TableTwo {
		first := predict(spec)
		for round := 0; round < 3; round++ {
			again := predict(spec)
			if len(again) != len(first) {
				t.Fatalf("%s: prediction count changed across constructions: %d vs %d", spec.Name, len(again), len(first))
			}
			for k, v := range first {
				if again[k] != v {
					t.Fatalf("%s round %d: prediction %s drifted: %v vs %v", spec.Name, round, k, again[k], v)
				}
			}
		}
	}
}
