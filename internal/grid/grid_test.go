package grid

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
)

// mixTasks builds n tasks whose results depend only on their key-derived
// seed, plus per-worker scratch accumulation to prove workers never share
// scratch state (the -race build would catch sharing).
func mixTasks(n, workers int, scratch []uint64) []Task[uint64] {
	tasks := make([]Task[uint64], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[uint64]{
			Key: fmt.Sprintf("task/%d", i),
			Run: func(_ context.Context, seed uint64, worker int) (uint64, error) {
				if worker < 0 || worker >= workers {
					return 0, fmt.Errorf("worker index %d out of [0, %d)", worker, workers)
				}
				if scratch != nil {
					scratch[worker] += seed // un-synchronized: workers must be disjoint
				}
				return stats.SplitMix64(seed + uint64(i)), nil
			},
		}
	}
	return tasks
}

func TestRunBitIdenticalAcrossWorkerCounts(t *testing.T) {
	const n, master = 37, uint64(99)
	var want []uint64
	for _, par := range []int{1, 4, 8} {
		scratch := make([]uint64, Workers(par, n))
		got, err := Run(context.Background(), master, par, mixTasks(n, Workers(par, n), scratch))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: result[%d] = %d, want %d", par, i, got[i], want[i])
			}
		}
	}
}

func TestRunSeedsDerivedFromKey(t *testing.T) {
	const master = uint64(7)
	tasks := []Task[uint64]{{
		Key: "alpha",
		Run: func(_ context.Context, seed uint64, _ int) (uint64, error) { return seed, nil },
	}}
	got, err := Run(context.Background(), master, 1, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if want := stats.DeriveSeed(master, "alpha"); got[0] != want {
		t.Fatalf("seed = %d, want DeriveSeed(master, key) = %d", got[0], want)
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run[int](context.Background(), 1, 4, nil)
	if err != nil || got != nil {
		t.Fatalf("Run(no tasks) = %v, %v; want nil, nil", got, err)
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(4, 100); w != 4 {
		t.Errorf("Workers(4, 100) = %d, want 4", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3 (clamped to task count)", w)
	}
	if w := Workers(0, 5); w < 1 || w > 5 {
		t.Errorf("Workers(0, 5) = %d, want in [1, 5]", w)
	}
	if w := Workers(-1, 0); w != 1 {
		t.Errorf("Workers(-1, 0) = %d, want 1", w)
	}
}

// TestRunErrorCancelsRemainingTasks pins the cancellation satellite: a
// failing grid point must stop the remaining workers promptly — tasks after
// the failure are never executed, and a blocked in-flight task sees its
// context canceled rather than the grid draining to completion first.
func TestRunErrorCancelsRemainingTasks(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int64
	blocked := make(chan struct{})
	tasks := make([]Task[int], 16)
	tasks[0] = Task[int]{Key: "blocker", Run: func(ctx context.Context, _ uint64, _ int) (int, error) {
		close(blocked)
		<-ctx.Done() // must be released by task 1's failure, not by grid completion
		return 0, nil
	}}
	tasks[1] = Task[int]{Key: "failer", Run: func(_ context.Context, _ uint64, _ int) (int, error) {
		<-blocked // ensure the blocker holds worker 0 first
		return 0, boom
	}}
	for i := 2; i < len(tasks); i++ {
		tasks[i] = Task[int]{Key: fmt.Sprintf("after/%d", i), Run: func(_ context.Context, _ uint64, _ int) (int, error) {
			executed.Add(1)
			return 0, nil
		}}
	}
	_, err := Run(context.Background(), 1, 2, tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task failure", err)
	}
	if n := executed.Load(); n != 0 {
		t.Fatalf("%d tasks after the failure executed; cancellation should have skipped them all", n)
	}
}

func TestRunReportsLowestObservedFailure(t *testing.T) {
	tasks := make([]Task[int], 8)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Key: fmt.Sprint(i), Run: func(_ context.Context, _ uint64, _ int) (int, error) {
			if i >= 3 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		}}
	}
	_, err := Run(context.Background(), 1, 1, tasks)
	if err == nil || err.Error() != "task 3 failed" {
		t.Fatalf("err = %v, want the serial-order first failure (task 3)", err)
	}
}

func TestRunExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, 1, 4, mixTasks(8, Workers(4, 8), nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	var c Cache[int]
	var builds atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Get("k", func() (int, error) {
				builds.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Get = %d, %v; want 42, nil", v, err)
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want exactly 1 (single-flight)", n)
	}
}

// TestCacheHitDoesNotWaitOnOtherBuild is the regression test for the old
// Env behavior, where one mutex was held across a full model build and a
// cache *hit* for a different job blocked behind it. A hit must return
// while an unrelated build is still in flight.
func TestCacheHitDoesNotWaitOnOtherBuild(t *testing.T) {
	var c Cache[string]
	if _, err := c.Get("fast", func() (string, error) { return "cached", nil }); err != nil {
		t.Fatal(err)
	}

	slowEntered := make(chan struct{})
	slowRelease := make(chan struct{})
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		c.Get("slow", func() (string, error) {
			close(slowEntered)
			<-slowRelease // the build stays in flight until the hit completes
			return "built", nil
		})
	}()
	<-slowEntered

	hit := make(chan string, 1)
	go func() {
		v, _ := c.Get("fast", func() (string, error) { return "rebuilt?!", nil })
		hit <- v
	}()
	select {
	case v := <-hit:
		if v != "cached" {
			t.Fatalf("hit returned %q, want the cached value", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cache hit blocked behind an in-flight build of a different key")
	}
	close(slowRelease)
	<-slowDone
}

func TestCacheCachesErrors(t *testing.T) {
	var c Cache[int]
	var builds atomic.Int64
	boom := errors.New("bad build")
	for i := 0; i < 3; i++ {
		if _, err := c.Get("k", func() (int, error) { builds.Add(1); return 0, boom }); !errors.Is(err, boom) {
			t.Fatalf("Get #%d err = %v, want the build error", i, err)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("failed build ran %d times, want 1 (errors are cached)", n)
	}
}
