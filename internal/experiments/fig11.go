package experiments

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/core"
	"github.com/jockeysim/jockey/internal/stats"
)

// SensitivityCase is one configuration row of Fig. 11.
type SensitivityCase struct {
	Name  string
	Knobs Knobs
}

// SensitivityCases mirrors the configurations of the paper's Fig. 11.
func SensitivityCases() []SensitivityCase {
	return []SensitivityCase{
		{Name: "baseline", Knobs: Knobs{}},
		{Name: "no hysteresis, no deadzone", Knobs: Knobs{NoHysteresis: true, DisableDeadZone: true}},
		{Name: "no deadzone", Knobs: Knobs{DisableDeadZone: true}},
		{Name: "no slack, less hysteresis", Knobs: Knobs{NoSlack: true, Hysteresis: 0.4}},
		{Name: "5-min period", Knobs: Knobs{Period: 5 * time.Minute}},
		{Name: "minstage progress", Knobs: Knobs{Indicator: core.MinStage}},
		{Name: "CP progress", Knobs: Knobs{Indicator: core.CP}},
	}
}

// SensitivityRow is one aggregated result row.
type SensitivityRow struct {
	Name        string
	Runs        int
	MetFrac     float64
	LatencyRel  float64 // mean (completion/deadline − 1): negative = early
	AboveOracle float64
	MedianAlloc float64
}

// Fig11 holds the sensitivity analysis.
type Fig11 struct {
	Rows []SensitivityRow
}

// Sensitivity reruns the seven jobs at one deadline under each control-loop
// configuration (§5.5, Fig. 11).
func Sensitivity(env *Env, jobs []string, seedsPerJob int) (*Fig11, error) {
	if len(jobs) == 0 {
		jobs = DefaultJobs
	}
	if seedsPerJob <= 0 {
		seedsPerJob = 3
	}
	cases := SensitivityCases()
	var tasks []execTask[Outcome]
	for _, cse := range cases {
		for _, job := range jobs {
			for s := 0; s < seedsPerJob; s++ {
				cse, job, s := cse, job, s
				tasks = append(tasks, execTask[Outcome]{
					key: fmt.Sprintf("fig11/%s/%s/%d", cse.Name, job, s),
					run: func(x *Exec) (Outcome, error) {
						short, _, err := env.Deadlines(job)
						if err != nil {
							return Outcome{}, err
						}
						return env.RunExec(x, SLORun{
							Job:      job,
							Deadline: short,
							Policy:   PolicyJockey,
							Seed:     stats.DeriveSeed(env.Seed, "fig11", cse.Name, job, fmt.Sprint(s)),
							Knobs:    cse.Knobs,
						})
					},
				})
			}
		}
	}
	results, err := runGrid(env, tasks)
	if err != nil {
		return nil, err
	}
	f := &Fig11{}
	i := 0
	for _, cse := range cases {
		row := SensitivityRow{Name: cse.Name}
		var rels, above, medAllocs []float64
		for range jobs {
			for s := 0; s < seedsPerJob; s++ {
				o := results[i]
				i++
				row.Runs++
				if o.Met {
					row.MetFrac++
				}
				rels = append(rels, o.RelCompletion-1)
				above = append(above, o.AboveOracle)
				medAllocs = append(medAllocs, medianGrantedAlloc(o))
			}
		}
		row.MetFrac /= float64(row.Runs)
		row.LatencyRel = stats.Mean(rels)
		row.AboveOracle = stats.Mean(above)
		row.MedianAlloc = stats.Mean(medAllocs)
		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// medianGrantedAlloc returns the median granted allocation over a run's
// timeline (0 if no timeline).
func medianGrantedAlloc(o Outcome) float64 {
	if o.Trace == nil || len(o.Trace.Timeline) == 0 {
		return 0
	}
	vals := make([]float64, len(o.Trace.Timeline))
	for i, p := range o.Trace.Timeline {
		vals[i] = float64(p.Granted)
	}
	return stats.Quantile(vals, 0.5)
}

// Render prints the Fig. 11 table.
func (f *Fig11) Render() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Name,
			pct(r.MetFrac),
			fmt.Sprintf("%+.0f%%", 100*r.LatencyRel),
			pct(r.AboveOracle),
			fmt.Sprintf("%.1f", r.MedianAlloc),
		})
	}
	return renderTable(
		"Figure 11: control-loop sensitivity analysis\n"+
			"(paper: baseline 95% met / −14% latency / 35% above oracle / median alloc 52.9;\n"+
			" no hysteresis+deadzone 57% met; no deadzone 90%; no slack 76%; 5-min 95%;\n"+
			" minstage 100%; CP 95%)",
		[]string{"experiment", "met SLO", "latency vs deadline", "above oracle", "median alloc"},
		rows)
}
