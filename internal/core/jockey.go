// Package core is the Jockey runtime: it assembles the paper's three
// components (offline simulator model, progress indicator, control loop)
// around a job profile and produces ready-to-run allocation policies.
//
// Typical use:
//
//	p, _ := profile.FromTrace(job, trainingRun)
//	jk, _ := core.New(p, core.Options{Seed: 42})
//	pol, _ := jk.Policy(time.Hour)            // full Jockey
//	cluster.Submit(cluster.JobConfig{Profile: groundTruth, Policy: pol, ...})
//
// Baselines for the paper's comparisons come from StaticPolicy ("Jockey w/o
// adaptation"), AmdahlPolicy ("Jockey w/o simulator") and MaxPolicy.
package core

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/progress"
	"github.com/jockeysim/jockey/internal/sim"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
)

// IndicatorName selects a progress indicator (§4.2, §5.4).
type IndicatorName string

// The six indicators the paper evaluates.
const (
	TotalWorkWithQ IndicatorName = "totalworkWithQ" // Jockey's default
	TotalWork      IndicatorName = "totalwork"
	VertexFrac     IndicatorName = "vertexfrac"
	CP             IndicatorName = "cp"
	MinStage       IndicatorName = "minstage"
	MinStageInf    IndicatorName = "minstage-inf"
)

// Options configures the Jockey runtime. The zero value gives the paper's
// defaults.
type Options struct {
	// Indicator selects the progress indicator (default TotalWorkWithQ).
	Indicator IndicatorName
	// AllocGrid is the candidate allocation grid; default: geometric steps
	// from 1 to MaxTokens.
	AllocGrid []int
	// MaxTokens caps the grid (default 100, the experiments' full slice).
	MaxTokens int
	// RunsPerAlloc for the offline C(p, a) table (default 10).
	RunsPerAlloc int
	// SampleEvery for offline progress samples (default 30s).
	SampleEvery time.Duration
	// Slack, Hysteresis, DeadZone, ControlPeriod: the control-loop knobs
	// (§4.3); zero values take the paper's defaults (1.2, 0.2, 3min, 1min).
	Slack         float64
	Hysteresis    float64
	DeadZone      time.Duration
	ControlPeriod time.Duration
	// Seed drives offline simulation.
	Seed uint64
	// Parallelism bounds the worker pool for the offline C(p, a)
	// simulations (default: runtime.GOMAXPROCS(0)). The resulting model is
	// bit-identical at any value — per-run seeds are derived independently
	// and samples are merged in deterministic order — so this is purely a
	// wall-clock knob.
	Parallelism int
	// QuantizeModel stores C(p, a) cells as fixed-point int32 milliseconds,
	// halving each table's resident size (for fleets holding hundreds of
	// models). Control decisions may differ from the exact table by the 1ms
	// cell resolution; default off, which preserves exact outputs.
	QuantizeModel bool
}

// Jockey holds the precomputed model for one recurring job.
type Jockey struct {
	opts      Options
	p         *profile.Profile
	indicator progress.Indicator
	cpa       *model.CPA
	amdahl    *model.Amdahl
}

// New builds the Jockey runtime for a profiled job, running the offline
// simulations that populate the C(p, a) table.
func New(p *profile.Profile, opts Options) (*Jockey, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil profile")
	}
	if opts.Indicator == "" {
		opts.Indicator = TotalWorkWithQ
	}
	if opts.MaxTokens <= 0 {
		opts.MaxTokens = 100
	}
	if len(opts.AllocGrid) == 0 {
		opts.AllocGrid = DefaultGrid(opts.MaxTokens)
	}
	ind, err := BuildIndicator(opts.Indicator, p, stats.DeriveSeed(opts.Seed, "indicator"))
	if err != nil {
		return nil, err
	}
	cpa, err := model.BuildCPA(p, ind, model.CPAConfig{
		Allocs:       opts.AllocGrid,
		RunsPerAlloc: opts.RunsPerAlloc,
		SampleEvery:  opts.SampleEvery,
		Seed:         stats.DeriveSeed(opts.Seed, "cpa"),
		Parallelism:  opts.Parallelism,
		Quantize:     opts.QuantizeModel,
	})
	if err != nil {
		return nil, err
	}
	return &Jockey{
		opts:      opts,
		p:         p,
		indicator: ind,
		cpa:       cpa,
		amdahl:    model.NewAmdahl(p),
	}, nil
}

// DefaultGrid returns geometric candidate allocations 1..max (≈1.33× steps).
func DefaultGrid(max int) []int {
	var out []int
	prev := 0
	for v := 1.0; int(v) <= max; v *= 1.33 {
		if int(v) != prev {
			out = append(out, int(v))
			prev = int(v)
		}
	}
	if prev != max {
		out = append(out, max)
	}
	return out
}

// BuildIndicator constructs a progress indicator by name. The minstage
// variants require reference runs, which are produced with the offline
// simulator (a constrained run for minstage, an unconstrained one for
// minstage-inf).
func BuildIndicator(name IndicatorName, p *profile.Profile, seed uint64) (progress.Indicator, error) {
	switch name {
	case TotalWorkWithQ:
		return progress.NewTotalWorkWithQ(p), nil
	case TotalWork:
		return progress.NewTotalWork(p), nil
	case VertexFrac:
		return progress.NewVertexFrac(p), nil
	case CP:
		return progress.NewCP(p), nil
	case MinStage:
		alloc := model.Oracle(p.TotalWork(), p.CriticalPath()*4)
		if alloc < 1 {
			alloc = 1
		}
		ref, err := sim.Run(sim.Config{Profile: p, Alloc: alloc, Seed: seed})
		if err != nil {
			return nil, err
		}
		return progress.NewMinStage(progress.SpansFromTrace(ref, p.Job.NumStages())), nil
	case MinStageInf:
		ref, err := sim.RunInfinite(p, seed)
		if err != nil {
			return nil, err
		}
		return progress.NewMinStageInf(progress.SpansFromTrace(ref, p.Job.NumStages())), nil
	default:
		return nil, fmt.Errorf("core: unknown indicator %q", name)
	}
}

// Profile returns the job profile the runtime was built from.
func (j *Jockey) Profile() *profile.Profile { return j.p }

// Indicator returns the configured progress indicator.
func (j *Jockey) Indicator() progress.Indicator { return j.indicator }

// Model returns the simulator-backed C(p, a) predictor.
func (j *Jockey) Model() *model.CPA { return j.cpa }

// Grid returns the candidate allocation grid.
func (j *Jockey) Grid() []int { return j.opts.AllocGrid }

func (j *Jockey) controlConfig(pred model.Predictor, u utility.Fn) control.Config {
	return control.Config{
		Predictor:  pred,
		Utility:    u,
		Candidates: j.opts.AllocGrid,
		Slack:      j.opts.Slack,
		Hysteresis: j.opts.Hysteresis,
		DeadZone:   j.opts.DeadZone,
	}
}

// Policy returns a fresh full-Jockey controller for the given deadline.
// Policies carry per-run state; build one per execution.
func (j *Jockey) Policy(deadline time.Duration) (control.Policy, error) {
	return j.PolicyWithUtility(utility.Deadline(deadline))
}

// PolicyWithUtility is Policy with an explicit utility curve.
func (j *Jockey) PolicyWithUtility(u utility.Fn) (control.Policy, error) {
	return control.NewController(j.controlConfig(j.cpa, u))
}

// GuardedPolicy wraps the full Jockey controller in the model-staleness
// guard-rail layer (control.Guard): a deviation detector scoring the C(p, a)
// model against observed progress, online re-profiling that blends live task
// observations into the prior profile and rebuilds the table mid-run (the
// parallel build, deterministic at any Options.Parallelism), and the
// CPA → OnlineSim → Amdahl → max-allocation fallback chain. Wire the
// returned guard's ObserveTask to cluster.JobConfig.OnTaskEvent so it sees
// live task completions. The zero GuardTuning gives the defaults.
func (j *Jockey) GuardedPolicy(deadline time.Duration, tuning control.GuardTuning) (*control.Guard, error) {
	return j.GuardedPolicyWithUtility(utility.Deadline(deadline), tuning)
}

// GuardedPolicyWithUtility is GuardedPolicy with an explicit utility curve.
func (j *Jockey) GuardedPolicyWithUtility(u utility.Fn, tuning control.GuardTuning) (*control.Guard, error) {
	ctrl, err := control.NewController(j.controlConfig(j.cpa, u))
	if err != nil {
		return nil, err
	}
	return control.NewGuard(j.GuardConfig(ctrl, tuning))
}

// GuardConfig wires a caller-built controller (any knob combination) to this
// runtime's prior profile and model-rebuild paths, ready for
// control.NewGuard. Most callers use GuardedPolicy instead.
func (j *Jockey) GuardConfig(ctrl *control.Controller, tuning control.GuardTuning) control.GuardConfig {
	rebuild := func(p *profile.Profile, gen int) (model.Predictor, error) {
		// Per-generation seeds keep rebuilds deterministic for a fixed
		// Options.Seed no matter when staleness fires.
		ind, err := BuildIndicator(j.opts.Indicator, p,
			stats.DeriveSeed(j.opts.Seed, "guard-indicator", fmt.Sprint(gen)))
		if err != nil {
			return nil, err
		}
		return model.BuildCPA(p, ind, model.CPAConfig{
			Allocs:       j.opts.AllocGrid,
			RunsPerAlloc: j.opts.RunsPerAlloc,
			SampleEvery:  j.opts.SampleEvery,
			Seed:         stats.DeriveSeed(j.opts.Seed, "guard-cpa", fmt.Sprint(gen)),
			Parallelism:  j.opts.Parallelism,
			Quantize:     j.opts.QuantizeModel,
		})
	}
	onlineSim := func(p *profile.Profile, gen int) (model.Predictor, error) {
		os, err := model.NewOnlineSim(p, 0,
			stats.DeriveSeed(j.opts.Seed, "guard-onlinesim", fmt.Sprint(gen)))
		if err != nil {
			return nil, err
		}
		os.SetParallelism(j.opts.Parallelism)
		return os, nil
	}
	return control.GuardConfig{
		Controller:     ctrl,
		Prior:          j.p,
		RebuildPrimary: rebuild,
		NewOnlineSim:   onlineSim,
		Tuning:         tuning,
	}
}

// StaticPolicy returns the "Jockey w/o adaptation" baseline: the simulator
// model picks one allocation up front and never adapts.
func (j *Jockey) StaticPolicy(deadline time.Duration) (control.Policy, error) {
	return control.NewStatic(j.controlConfig(j.cpa, utility.Deadline(deadline)))
}

// AmdahlPolicy returns the "Jockey w/o simulator" baseline: dynamic control
// driven by the analytic Amdahl's-Law model.
func (j *Jockey) AmdahlPolicy(deadline time.Duration) (control.Policy, error) {
	return control.NewController(j.controlConfig(j.amdahl, utility.Deadline(deadline)))
}

// MaxPolicy returns the max-allocation baseline at the grid's maximum.
func (j *Jockey) MaxPolicy() (control.Policy, error) {
	return control.NewMaxAllocation(j.opts.AllocGrid[len(j.opts.AllocGrid)-1])
}

// PredictLatency returns the q-quantile of the modelled end-to-end latency
// at a fixed allocation (progress 0).
func (j *Jockey) PredictLatency(alloc int, q float64) time.Duration {
	st := model.State{FracDone: make([]float64, j.p.Job.NumStages())}
	return j.cpa.Remaining(st, alloc, q)
}

// Feasible reports whether the deadline is achievable at all: it must
// exceed the profile's critical path (§2.2).
func (j *Jockey) Feasible(deadline time.Duration) bool {
	return deadline > j.p.CriticalPath()
}

// RequiredAllocation returns the minimum grid allocation whose predicted
// worst-case latency (with the configured slack) meets the deadline, or
// (0, false) if none does.
func (j *Jockey) RequiredAllocation(deadline time.Duration) (int, bool) {
	slack := j.opts.Slack
	if slack == 0 {
		slack = control.DefaultSlack
	}
	for _, a := range j.opts.AllocGrid {
		pred := time.Duration(float64(j.PredictLatency(a, 1.0)) * slack)
		if pred <= deadline {
			return a, true
		}
	}
	return 0, false
}

// Fits is the admission-control check of §1: can this job meet its deadline
// with at most `available` guaranteed tokens left in the cluster?
func (j *Jockey) Fits(deadline time.Duration, available int) bool {
	need, ok := j.RequiredAllocation(deadline)
	return ok && need <= available
}

// ControlPeriod returns the configured control period (defaulted).
func (j *Jockey) ControlPeriod() time.Duration {
	if j.opts.ControlPeriod > 0 {
		return j.opts.ControlPeriod
	}
	return control.DefaultPeriod
}
