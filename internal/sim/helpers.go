package sim

import (
	"time"

	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/trace"
)

// RunInfinite simulates the job with unconstrained parallelism and no
// failure injection. Its completion time approximates the critical path and
// its per-stage spans parameterize the minstage-inf progress indicator
// ("a simulation of the job with no constraint on resources", §5.4).
func RunInfinite(p *profile.Profile, seed uint64) (*trace.JobTrace, error) {
	return Run(Config{
		Profile:         p,
		Alloc:           p.Job.TotalTasks(),
		Seed:            seed,
		DisableFailures: true,
	})
}

// EstimateLatency runs the simulator n times at the given allocation and
// returns the observed completion times, sorted ascending. Seeds are derived
// from seed so results are reproducible. The n runs share one Runner, so
// only the first pays the engine allocation.
func EstimateLatency(p *profile.Profile, alloc, n int, seed uint64) ([]time.Duration, error) {
	out := make([]time.Duration, 0, n)
	r := NewRunner()
	for i := 0; i < n; i++ {
		tr, err := r.Run(Config{Profile: p, Alloc: alloc, Seed: seed + uint64(i)*0x9e37})
		if err != nil {
			return nil, err
		}
		out = append(out, tr.Completion)
	}
	sortDur(out)
	return out, nil
}

func sortDur(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
