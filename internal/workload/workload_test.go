package workload

import (
	"math"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/sim"
	"github.com/jockeysim/jockey/internal/stats"
)

func TestSpecLookup(t *testing.T) {
	s, err := Spec("F")
	if err != nil {
		t.Fatal(err)
	}
	if s.Stages != 26 || s.Vertices != 6139 {
		t.Errorf("spec F = %+v", s)
	}
	if _, err := Spec("Z"); err == nil {
		t.Error("unknown spec must fail")
	}
}

func TestGenerateStructureMatchesTableTwo(t *testing.T) {
	for _, spec := range TableTwo {
		p := MustGenerate(spec, 1)
		job := p.Job
		if job.NumStages() != spec.Stages {
			t.Errorf("job %s: stages %d, want %d", spec.Name, job.NumStages(), spec.Stages)
		}
		if job.TotalTasks() != spec.Vertices {
			t.Errorf("job %s: vertices %d, want %d", spec.Name, job.TotalTasks(), spec.Vertices)
		}
		if got := job.NumBarrierStages(); got != spec.Barriers {
			t.Errorf("job %s: barriers %d, want %d", spec.Name, got, spec.Barriers)
		}
		if got := job.TotalInputGB(); math.Abs(got-spec.DataGB) > 0.01 {
			t.Errorf("job %s: data %.2f GB, want %.2f", spec.Name, got, spec.DataGB)
		}
		if err := job.Validate(); err != nil {
			t.Errorf("job %s: %v", spec.Name, err)
		}
		// Plan must be connected enough to run: exactly the stages with no
		// inputs are roots, and every stage is reachable in topo order.
		if len(job.TopoOrder()) != spec.Stages {
			t.Errorf("job %s: topo incomplete", spec.Name)
		}
	}
}

func TestGenerateRuntimePercentiles(t *testing.T) {
	// Sampling each job's vertex-runtime mixture must land near the
	// published overall median and p90 (the calibration target).
	for _, spec := range TableTwo {
		p := MustGenerate(spec, 1)
		rng := stats.NewRNG(7)
		var all []time.Duration
		for s, sp := range p.Stages {
			for i := 0; i < p.Job.Stages[s].Tasks; i++ {
				all = append(all, sp.Exec.Sample(rng))
			}
		}
		e := stats.NewEmpirical(all)
		med := e.Quantile(0.5).Seconds()
		p90 := e.Quantile(0.9).Seconds()
		wantMed := spec.MedianRuntime.Seconds()
		wantP90 := spec.P90Runtime.Seconds()
		if med < wantMed*0.7 || med > wantMed*1.4 {
			t.Errorf("job %s: sampled median %.1fs, want ~%.1fs", spec.Name, med, wantMed)
		}
		if p90 < wantP90*0.6 || p90 > wantP90*1.7 {
			t.Errorf("job %s: sampled p90 %.1fs, want ~%.1fs", spec.Name, p90, wantP90)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(TableTwo[0], 5)
	b := MustGenerate(TableTwo[0], 5)
	if a.Job.NumStages() != b.Job.NumStages() || len(a.Job.Edges) != len(b.Job.Edges) {
		t.Fatal("same seed produced different plans")
	}
	for i := range a.Job.Edges {
		if a.Job.Edges[i] != b.Job.Edges[i] {
			t.Fatal("edge sets differ")
		}
	}
	for s := range a.Stages {
		if a.Stages[s].Exec.Quantile(0.5) != b.Stages[s].Exec.Quantile(0.5) {
			t.Fatal("distributions differ")
		}
	}
	c := MustGenerate(TableTwo[0], 6)
	same := true
	for s := range a.Stages {
		if a.Stages[s].Exec.Quantile(0.5) != c.Stages[s].Exec.Quantile(0.5) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical distributions")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []JobSpec{
		{Name: "x", Stages: 0, Vertices: 10},
		{Name: "x", Stages: 5, Vertices: 3},
		{Name: "x", Stages: 3, Barriers: 3, Vertices: 30, MedianRuntime: time.Second, P90Runtime: 2 * time.Second},
		{Name: "x", Stages: 3, Vertices: 30, MedianRuntime: 2 * time.Second, P90Runtime: time.Second},
		{Name: "x", Stages: 3, Vertices: 30, MedianRuntime: time.Second, P90Runtime: 2 * time.Second, FailureProb: 1.5},
	}
	for i, spec := range bad {
		if _, err := Generate(spec, 1); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestJobsGeneratesAllSeven(t *testing.T) {
	jobs := Jobs(1)
	if len(jobs) != 7 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for _, name := range []string{"A", "B", "C", "D", "E", "F", "G"} {
		if jobs[name] == nil {
			t.Errorf("missing job %s", name)
		}
	}
}

func TestGeneratedJobRunsInSimulator(t *testing.T) {
	p := MustGenerate(TableTwo[1], 3) // job B: no barriers, 1605 vertices
	tr, err := sim.Run(sim.Config{Profile: p, Alloc: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Completion <= 0 {
		t.Error("no completion")
	}
	succ := 0
	for _, e := range tr.Events {
		if !e.Failed {
			succ++
		}
	}
	if succ != p.Job.TotalTasks() {
		t.Errorf("successes %d, want %d", succ, p.Job.TotalTasks())
	}
}

func TestDefaultQueueDelay(t *testing.T) {
	q := DefaultQueueDelay()
	if q.Quantile(0) < 2*time.Second {
		t.Error("queue delay floor missing")
	}
	med := q.Quantile(0.5).Seconds()
	if med < 3 || med > 6 {
		t.Errorf("queue median %.1fs out of expected band", med)
	}
}

func TestSubmitBackground(t *testing.T) {
	c, err := cluster.New(cluster.Config{Machines: 10, SlotsPerMachine: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := SubmitBackground(c, BackgroundConfig{
		MeanInterarrival: time.Minute,
		Horizon:          30 * time.Minute,
		BurstAmplitude:   1, // steady Poisson arrivals
		Seed:             2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n < 15 || n > 60 {
		t.Errorf("submitted %d jobs, want ~30", n)
	}
	// Deterministic for the same seed.
	c2, _ := cluster.New(cluster.Config{Machines: 10, SlotsPerMachine: 4, Seed: 1})
	n2, err := SubmitBackground(c2, BackgroundConfig{
		MeanInterarrival: time.Minute,
		Horizon:          30 * time.Minute,
		BurstAmplitude:   1,
		Seed:             2,
	})
	if err != nil || n2 != n {
		t.Errorf("replay submitted %d vs %d (err %v)", n2, n, err)
	}
}

func TestSubmitBackgroundBursts(t *testing.T) {
	// With the default 3× burst amplitude, the busy half of each period
	// sees far more arrivals than the quiet half.
	c, _ := cluster.New(cluster.Config{Machines: 10, SlotsPerMachine: 4, Seed: 1})
	n, err := SubmitBackground(c, BackgroundConfig{
		MeanInterarrival: time.Minute,
		Horizon:          80 * time.Minute, // one busy + one quiet phase
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Busy phase alone expects ~120 arrivals, quiet ~13.
	if n < 60 || n > 250 {
		t.Errorf("submitted %d jobs, want bursty total ~130", n)
	}
	if _, err := SubmitBackground(c, BackgroundConfig{BurstAmplitude: 0.5}); err == nil {
		t.Error("amplitude < 1 must fail")
	}
}

func TestSubmitBackgroundValidation(t *testing.T) {
	c, _ := cluster.New(cluster.Config{})
	bad := []BackgroundConfig{
		{TasksLo: 10, TasksHi: 5},
		{GuaranteeLo: 5, GuaranteeHi: 2},
		{BarrierProb: 2},
	}
	for i, cfg := range bad {
		if _, err := SubmitBackground(c, cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGeneratePipelines(t *testing.T) {
	ps, err := GeneratePipelines(PipelineConfig{Jobs: 3000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Gaps) == 0 || len(ps.Dependents) == 0 || len(ps.ChainLengths) == 0 {
		t.Fatalf("empty stats: %+v", ps)
	}
	// Median gap should be near the 10-minute target.
	medGap := ps.Gaps[len(ps.Gaps)/2]
	if medGap < 3*time.Minute || medGap > 30*time.Minute {
		t.Errorf("median gap %v, want ~10m", medGap)
	}
	// Preferential attachment must produce a heavy tail of dependents:
	// the top job should feed far more jobs than the median producer.
	maxDeps := ps.Dependents[len(ps.Dependents)-1]
	medDeps := ps.Dependents[len(ps.Dependents)/2]
	if maxDeps < 10*medDeps && maxDeps < 50 {
		t.Errorf("dependent counts not heavy-tailed: median %d max %d", medDeps, maxDeps)
	}
	// Group counts bounded by configured groups.
	for _, g := range ps.Groups {
		if g < 1 || g > 12 {
			t.Errorf("group count %d out of range", g)
		}
	}
	// Sorted outputs.
	for i := 1; i < len(ps.Gaps); i++ {
		if ps.Gaps[i] < ps.Gaps[i-1] {
			t.Fatal("gaps not sorted")
		}
	}
}

func TestGeneratePipelinesValidation(t *testing.T) {
	if _, err := GeneratePipelines(PipelineConfig{Jobs: 1}); err == nil {
		t.Error("too few jobs must fail")
	}
	if _, err := GeneratePipelines(PipelineConfig{DependentFraction: 1.5}); err == nil {
		t.Error("bad fraction must fail")
	}
}

func TestGeneratePipelinesDeterministic(t *testing.T) {
	a, err := GeneratePipelines(PipelineConfig{Jobs: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePipelines(PipelineConfig{Jobs: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Gaps) != len(b.Gaps) || len(a.Dependents) != len(b.Dependents) {
		t.Error("replay diverged")
	}
}
