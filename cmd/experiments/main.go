// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated cluster and writes the results as text tables
// (plus CSV timelines and DOT graphs where applicable).
//
// Usage:
//
//	experiments [-seed N] [-out DIR] [-quick] [-run LIST] [-parallelism N] [-parallel N]
//	            [-flight-level none|decisions|counterfactual] [-flight DIR]
//
// -run selects a comma-separated subset of:
// table1,fig1,table2,fig3,fig4,fig5,fig6,table3,fig7,fig8,fig9,fig10,fig11,fig12,fig13,ext1,ext2,robustness,fleet
// (fig4 and fig5 share one set of runs and always run together).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/jockeysim/jockey/internal/experiments"
	"github.com/jockeysim/jockey/internal/flight"
)

func main() {
	var (
		seed  = flag.Uint64("seed", 1, "master seed for all experiments")
		out   = flag.String("out", "", "directory for result files (default: stdout only)")
		quick = flag.Bool("quick", false, "smaller run counts (for smoke testing)")
		run   = flag.String("run", "", "comma-separated experiment subset (default: all)")
		par   = flag.Int("parallelism", 0, "worker pool size for offline model simulations (0 = GOMAXPROCS); results are identical at any value")
		gpar  = flag.Int("parallel", 0, "worker pool size for experiment grid points (0 = GOMAXPROCS); results are identical at any value")

		flightLvl = flag.String("flight-level", "none", "decision flight recorder for the robustness grid: none, decisions or counterfactual")
		flightDir = flag.String("flight", "", "directory for per-run flight-record JSON files (default: the -out directory)")
	)
	flag.Parse()
	flightLevel, err := flight.ParseLevel(*flightLvl)
	if err != nil {
		fatal(err)
	}

	want := map[string]bool{}
	if *run != "" {
		for _, name := range strings.Split(*run, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	env := experiments.NewEnv(*seed)
	env.Parallelism = *par
	env.GridParallel = *gpar
	seeds := 3
	t1runs := 12
	fig8Runs := 3
	if *quick {
		seeds = 1
		t1runs = 6
		fig8Runs = 1
	}

	emit := func(name, content string) {
		fmt.Println(content)
		if *out != "" {
			path := filepath.Join(*out, name+".txt")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	if selected("table1") {
		step("Table 1: recurring-job completion-time variance")
		t1, err := experiments.RecurringVariance(env, experiments.Table1Config{RunsPerJob: t1runs})
		if err != nil {
			fatal(err)
		}
		emit("table1", t1.Render())
	}
	if selected("fig1") {
		step("Figure 1: inter-job dependencies")
		f1, err := experiments.Dependencies(env, 5000)
		if err != nil {
			fatal(err)
		}
		emit("fig1", f1.Render())
	}
	if selected("table2") {
		step("Table 2: evaluation job statistics")
		t2, err := experiments.JobStatistics(env)
		if err != nil {
			fatal(err)
		}
		emit("table2", t2.Render())
	}
	if selected("fig3") {
		step("Figure 3: stage graphs")
		f3, err := experiments.StageGraphs(env)
		if err != nil {
			fatal(err)
		}
		emit("fig3", f3.Render())
		if *out != "" {
			for job, dot := range f3.DOT {
				path := filepath.Join(*out, "fig3-job"+job+".dot")
				if err := os.WriteFile(path, []byte(dot), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}
	if selected("fig4") || selected("fig5") {
		step("Figures 4 & 5: policy comparison (the slow one)")
		cmp, err := experiments.PolicyComparison(env, experiments.ComparisonConfig{SeedsPerCase: seeds})
		if err != nil {
			fatal(err)
		}
		emit("fig4", cmp.RenderFig4())
		emit("fig5", cmp.RenderFig5())
	}
	if selected("fig6") {
		step("Figure 6: adaptation time-lapses")
		f6, err := experiments.Timelapses(env)
		if err != nil {
			fatal(err)
		}
		emit("fig6", f6.Render())
		if *out != "" {
			for i, c := range f6.Cases {
				var b strings.Builder
				if err := c.Outcome.Trace.WriteTimelineCSV(&b); err != nil {
					fatal(err)
				}
				path := filepath.Join(*out, fmt.Sprintf("fig6-%c-job%s.csv", 'a'+i, c.Job))
				if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}
	if selected("table3") {
		step("Table 3: training vs heavier actual runs")
		t3, err := experiments.TrainingVsActual(env)
		if err != nil {
			fatal(err)
		}
		emit("table3", t3.Render())
	}
	if selected("fig7") {
		step("Figure 7: deadline changes")
		f7, err := experiments.DeadlineChanges(env, nil)
		if err != nil {
			fatal(err)
		}
		emit("fig7", f7.Render())
	}
	if selected("fig8") {
		step("Figure 8: prediction accuracy")
		f8, err := experiments.PredictionAccuracy(env, nil, fig8Runs)
		if err != nil {
			fatal(err)
		}
		emit("fig8", f8.Render())
	}
	if selected("fig9") {
		step("Figure 9: indicator traces")
		f9, err := experiments.IndicatorTraces(env)
		if err != nil {
			fatal(err)
		}
		emit("fig9", f9.Render())
	}
	if selected("fig10") {
		step("Figure 10: indicator comparison")
		f10, err := experiments.IndicatorComparison(env, nil)
		if err != nil {
			fatal(err)
		}
		emit("fig10", f10.Render())
	}
	if selected("fig11") {
		step("Figure 11: sensitivity analysis")
		f11, err := experiments.Sensitivity(env, nil, seeds)
		if err != nil {
			fatal(err)
		}
		emit("fig11", f11.Render())
	}
	if selected("fig12") {
		step("Figure 12: slack sweep")
		f12, err := experiments.SlackSweep(env, nil, seeds)
		if err != nil {
			fatal(err)
		}
		emit("fig12", f12.Render())
	}
	if selected("ext1") {
		step("Extension E1: online simulation vs precomputed table")
		e1, err := experiments.OnlineVsTable(env, nil, seeds)
		if err != nil {
			fatal(err)
		}
		emit("ext1", e1.Render())
	}
	if selected("ext2") {
		step("Extension E2: admission control")
		e2, err := experiments.AdmissionControl(env, 8)
		if err != nil {
			fatal(err)
		}
		emit("ext2", e2.Render())
	}
	if selected("robustness") {
		step("Robustness: guard rails under injected faults")
		rb, err := experiments.RobustnessFlight(env, experiments.RobustnessConfig{
			Job:          "B",
			SeedsPerCell: seeds,
			Flight:       flightLevel,
		})
		if err != nil {
			fatal(err)
		}
		emit("robustness", rb.Render())
		dir := *flightDir
		if dir == "" {
			dir = *out
		}
		if dir != "" {
			for _, fr := range rb.Records {
				var b strings.Builder
				if err := fr.Record.WriteJSON(&b); err != nil {
					fatal(err)
				}
				name := fmt.Sprintf("flight-robust-%s-%s-%d.json", fr.Scenario, fr.Policy, fr.Seed)
				if err := os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}
	if selected("fleet") {
		step("Fleet: multi-job arbitration robustness grid")
		fl, err := experiments.FleetRobustness(env)
		if err != nil {
			fatal(err)
		}
		emit("fleet", fl.Render())
	}
	if selected("fig13") {
		step("Figure 13: hysteresis sweep")
		f13, err := experiments.HysteresisSweep(env, nil, seeds)
		if err != nil {
			fatal(err)
		}
		emit("fig13", f13.Render())
	}
}

var start = time.Now()

func step(msg string) {
	fmt.Fprintf(os.Stderr, "[%7.1fs] %s\n", time.Since(start).Seconds(), msg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
