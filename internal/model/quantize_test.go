package model

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/progress"
	"github.com/jockeysim/jockey/internal/utility"
)

// buildQuantPair builds the same table twice — exact and quantized — from
// one config, so tests can compare query-for-query.
func buildQuantPair(t testing.TB, allocs []int) (exact, quant *CPA) {
	t.Helper()
	p := noisyProfile(t)
	cfg := CPAConfig{
		Allocs:       allocs,
		RunsPerAlloc: 6,
		SampleEvery:  10 * time.Second,
		Seed:         42,
	}
	var err error
	exact, err = BuildCPA(p, progress.NewTotalWorkWithQ(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Quantize = true
	quant, err = BuildCPA(p, progress.NewTotalWorkWithQ(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return exact, quant
}

// TestQuantizedCellStructure pins the storage contract: a quantized table
// drops its Duration cells entirely and mirrors the exact table's per-cell
// sample counts (truncation never removes or reorders samples).
func TestQuantizedCellStructure(t *testing.T) {
	exact, quant := buildQuantPair(t, []int{2, 8, 20})
	if quant.cells != nil {
		t.Fatal("quantized table retains Duration cells")
	}
	if quant.quant == nil {
		t.Fatal("quantized table has no fixed-point cells")
	}
	for ai := range exact.cells {
		for b := range exact.cells[ai] {
			ne := len(exact.cells[ai][b].Values())
			nq := len(quant.quant[ai][b])
			if ne != nq {
				t.Fatalf("cell (%d,%d): exact holds %d samples, quantized %d", ai, b, ne, nq)
			}
			for i, v := range exact.cells[ai][b].Values() {
				want := int32(v / time.Millisecond)
				if quant.quant[ai][b][i] != want {
					t.Fatalf("cell (%d,%d)[%d] = %dms, want %dms", ai, b, i, quant.quant[ai][b][i], want)
				}
			}
		}
	}
}

// TestQuantizedRemainingWithinResolution checks that every Remaining query
// agrees with the exact table to within the 1ms cell resolution, across
// progress, allocation, and quantile.
func TestQuantizedRemainingWithinResolution(t *testing.T) {
	exact, quant := buildQuantPair(t, []int{2, 8, 20})
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, a := range []int{2, 8, 20} {
			for _, q := range []float64{0, 0.5, 0.9, 1} {
				st := State{FracDone: []float64{frac, frac}}
				re := exact.Remaining(st, a, q)
				rq := quant.Remaining(st, a, q)
				diff := re - rq
				if diff < 0 {
					diff = -diff
				}
				if diff > time.Millisecond {
					t.Errorf("Remaining(p=%.2f, a=%d, q=%.1f): exact %v, quantized %v (Δ %v)",
						frac, a, q, re, rq, diff)
				}
			}
		}
	}
}

// TestQuantizedExpectedUtility checks the utility integral stays within the
// tolerance a 1ms-per-sample perturbation can introduce.
func TestQuantizedExpectedUtility(t *testing.T) {
	exact, quant := buildQuantPair(t, []int{2, 8, 20})
	u := utility.Deadline(10 * time.Minute)
	st := State{Elapsed: time.Minute, FracDone: []float64{0.5, 0}}
	ue := exact.ExpectedUtility(st, 8, 1.2, u)
	uq := quant.ExpectedUtility(st, 8, 1.2, u)
	diff := ue - uq
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-3 {
		t.Errorf("ExpectedUtility: exact %v, quantized %v (Δ %v)", ue, uq, diff)
	}
}

// TestQuantizedQueryZeroAllocs pins the quantized query path to zero
// allocations, same as the exact path.
func TestQuantizedQueryZeroAllocs(t *testing.T) {
	_, quant := buildQuantPair(t, []int{2, 8, 20})
	st := State{Elapsed: time.Minute, FracDone: []float64{0.5, 0}}
	u := utility.Deadline(10 * time.Minute)
	allocs := testing.AllocsPerRun(100, func() {
		_ = quant.Remaining(st, 8, 0.9)
		_ = quant.ExpectedUtility(st, 8, 1.2, u)
	})
	if allocs != 0 {
		t.Errorf("quantized query allocates %.1f per run, want 0", allocs)
	}
}
