package eventq

import (
	"time"
)

// calendar is the large-regime storage behind Queue: a bucketed calendar
// queue (Brown 1988) whose buckets are small (time, seq) min-heaps.
//
// Events hash into buckets by ⌊at / width⌋ mod nbuckets; a pop scans forward
// from the current bucket and takes the earliest event inside the current
// bucket's "day" window. With the width tuned so buckets hold a handful of
// events, push and pop are O(1) amortized — the binary heap's O(log n)
// comparisons (and their cache misses) disappear at 10⁵–10⁶ queued events.
//
// Ordering is exactly the heap's: (at, seq) is a strict total order, every
// bucket is itself a min-heap on that order, and a pop always removes the
// global minimum (the earliest event of the first non-empty day). The pop
// sequence is therefore bit-identical to the reference heap for any push
// sequence, which the differential tests in eventq_ref_test.go pin at 10⁵
// events. Heap-ordered buckets also remove the classic calendar-queue
// degeneracy: a same-timestamp burst that lands in one bucket behaves like
// one binary heap instead of an O(n) scan per pop.
//
// The calendar never observes wall time and uses no randomness; its state
// is a pure function of the push/pop history.
type calendar[T any] struct {
	buckets [][]item[T]
	// scratch stages all items during a resize so bucket arrays can be
	// redistributed without allocating per item.
	scratch []item[T]
	width   int64 // bucket span in nanoseconds, > 0
	mask    int   // len(buckets) - 1 (len is a power of two)
	cur     int   // ring index of the bucket the pop frontier is in
	day     int64 // start of cur's current window (multiple of width)
	n       int
}

const (
	// calMinBuckets and calMaxBuckets bound the ring size; a resize targets
	// calOccupancy items per bucket, and the grow/shrink thresholds leave a
	// hysteresis band around that target so steady queues never thrash.
	calMinBuckets = 64
	calMaxBuckets = 1 << 20
	calOccupancy  = 4
	calGrowAt     = 8 // resize up when occupancy exceeds this
	calShrinkAt   = 1 // resize down when occupancy falls below this
)

// lessItem is the queue's total order: time, then insertion sequence.
//
//jockey:hotpath
func lessItem[T any](a, b item[T]) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// floorDiv is ⌊a / w⌋ for w > 0 (truncated division rounds toward zero,
// which is wrong for negative times).
//
//jockey:hotpath
func floorDiv(a, w int64) int64 {
	q := a / w
	if a%w != 0 && a < 0 {
		q--
	}
	return q
}

//jockey:hotpath
func (c *calendar[T]) bucketFor(at time.Duration) int {
	return int(floorDiv(int64(at), c.width)) & c.mask
}

// push files an event into its bucket's heap, rewinding the pop frontier if
// the event lands before it (a discrete-event simulator schedules at or
// after "now", but the queue does not rely on that).
//
//jockey:hotpath
func (c *calendar[T]) push(it item[T]) {
	c.pushNoGrow(it)
	c.maybeGrow()
}

// pushBatch files a batch of entries, assigning consecutive sequences from
// *seq in slice order — exactly what len(es) push calls would do. A batch
// big enough to force ring growth is folded in with a single rebuild sized
// (and width-tuned) for the whole batch; smaller batches skip the per-push
// grow check and re-examine the ring once at the end. Either way the ring
// geometry is performance-only: the pop order is pinned by (at, seq).
//
//jockey:hotpath
func (c *calendar[T]) pushBatch(es []Entry[T], seq *uint64) {
	total := c.n + len(es)
	if total > calGrowAt*len(c.buckets) && len(c.buckets) < calMaxBuckets {
		c.scratch = c.scratch[:0]
		for i := range c.buckets {
			c.scratch = append(c.scratch, c.buckets[i]...)
			clear(c.buckets[i])
			c.buckets[i] = c.buckets[i][:0]
		}
		for i := range es {
			*seq++
			c.scratch = append(c.scratch, item[T]{at: es[i].At, seq: *seq, v: es[i].V})
		}
		c.rebuild(c.scratch)
		clear(c.scratch) // drop duplicated references held by T
		c.scratch = c.scratch[:0]
		return
	}
	for i := range es {
		*seq++
		c.pushNoGrow(item[T]{at: es[i].At, seq: *seq, v: es[i].V})
	}
	c.maybeGrow()
}

// pushNoGrow is push without the occupancy check, so a batch can defer the
// (possibly repeated) ring growth to one decision after all items landed.
//
//jockey:hotpath
func (c *calendar[T]) pushNoGrow(it item[T]) {
	if int64(it.at) < c.day {
		c.day = floorDiv(int64(it.at), c.width) * c.width
		c.cur = c.bucketFor(it.at)
	}
	c.heapPush(c.bucketFor(it.at), it)
	c.n++
}

//jockey:hotpath
func (c *calendar[T]) maybeGrow() {
	if c.n > calGrowAt*len(c.buckets) && len(c.buckets) < calMaxBuckets {
		c.resize()
	}
}

// pop removes and returns the earliest event.
//
//jockey:hotpath
func (c *calendar[T]) pop() (item[T], bool) {
	var zero item[T]
	if c.n == 0 {
		return zero, false
	}
	// Scan at most one full year from the frontier; each bucket's heap head
	// is its minimum, so a head inside the current day window is the global
	// minimum (every earlier day was drained before the frontier advanced).
	for range c.buckets {
		b := c.buckets[c.cur]
		if len(b) > 0 && int64(b[0].at) < c.day+c.width {
			return c.take(), true
		}
		c.cur = (c.cur + 1) & c.mask
		c.day += c.width
	}
	// A whole empty year: jump the frontier straight to the earliest event
	// instead of iterating year by year across a sparse horizon.
	c.jumpToMin()
	return c.take(), true
}

// peek returns the earliest event time without removing it. It advances the
// frontier exactly like pop would, which affects only performance, never
// order.
//
//jockey:hotpath
func (c *calendar[T]) peek() (time.Duration, bool) {
	if c.n == 0 {
		return 0, false
	}
	for range c.buckets {
		b := c.buckets[c.cur]
		if len(b) > 0 && int64(b[0].at) < c.day+c.width {
			return b[0].at, true
		}
		c.cur = (c.cur + 1) & c.mask
		c.day += c.width
	}
	c.jumpToMin()
	return c.buckets[c.cur][0].at, true
}

// take pops the head of the frontier bucket (which the caller has verified
// is the global minimum) and shrinks the ring when occupancy collapses.
//
//jockey:hotpath
func (c *calendar[T]) take() item[T] {
	it := c.heapPop(c.cur)
	c.n--
	if len(c.buckets) > calMinBuckets && c.n < len(c.buckets)*calShrinkAt && c.n > 0 {
		c.resize()
	}
	return it
}

// jumpToMin moves the frontier to the bucket holding the earliest event.
// O(nbuckets), amortized across the year of empty advances that precede it.
//
//jockey:hotpath
func (c *calendar[T]) jumpToMin() {
	best := -1
	for i := range c.buckets {
		b := c.buckets[i]
		if len(b) == 0 {
			continue
		}
		if best < 0 || lessItem(b[0], c.buckets[best][0]) {
			best = i
		}
	}
	c.cur = best
	c.day = floorDiv(int64(c.buckets[best][0].at), c.width) * c.width
}

// heapPush sifts an event into bucket bi's min-heap.
//
//jockey:hotpath
func (c *calendar[T]) heapPush(bi int, it item[T]) {
	c.buckets[bi] = append(c.buckets[bi], it)
	b := c.buckets[bi]
	i := len(b) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !lessItem(b[i], b[parent]) {
			break
		}
		b[i], b[parent] = b[parent], b[i]
		i = parent
	}
}

// heapPop removes bucket bi's minimum.
//
//jockey:hotpath
func (c *calendar[T]) heapPop(bi int) item[T] {
	b := c.buckets[bi]
	it := b[0]
	n := len(b) - 1
	b[0] = b[n]
	b[n] = item[T]{} // drop references so reused capacity cannot retain T's pointers
	b = b[:n]
	c.buckets[bi] = b
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && lessItem(b[right], b[left]) {
			least = right
		}
		if !lessItem(b[least], b[i]) {
			break
		}
		b[i], b[least] = b[least], b[i]
		i = least
	}
	return it
}

// resize re-tunes the ring to ~calOccupancy events per bucket and re-derives
// the bucket width from the current event-time span. All items are staged
// through the reused scratch buffer, so steady-state resizes allocate only
// when the ring or a bucket grows past its high-water capacity. The choice
// of geometry affects performance only — order is decided per pop — so any
// deterministic width heuristic preserves bit-identity.
func (c *calendar[T]) resize() {
	c.scratch = c.scratch[:0]
	for i := range c.buckets {
		c.scratch = append(c.scratch, c.buckets[i]...)
		clear(c.buckets[i])
		c.buckets[i] = c.buckets[i][:0]
	}
	c.rebuild(c.scratch)
	clear(c.scratch) // drop duplicated references held by T
	c.scratch = c.scratch[:0]
}

// rebuild sizes the ring for the given items and redistributes them. Shared
// by resize and the heap-mode promotion in Queue.
func (c *calendar[T]) rebuild(items []item[T]) {
	n := len(items)
	nb := calMinBuckets
	for nb < calMaxBuckets && nb*calOccupancy < n {
		nb *= 2
	}
	if cap(c.buckets) >= nb {
		c.buckets = c.buckets[:nb]
		for i := range c.buckets {
			if c.buckets[i] == nil {
				continue
			}
			clear(c.buckets[i])
			c.buckets[i] = c.buckets[i][:0]
		}
	} else {
		c.buckets = make([][]item[T], nb)
	}
	c.mask = nb - 1
	minAt := int64(0)
	maxAt := int64(0)
	if n > 0 {
		minAt, maxAt = int64(items[0].at), int64(items[0].at)
		for _, it := range items[1:] {
			if int64(it.at) < minAt {
				minAt = int64(it.at)
			}
			if int64(it.at) > maxAt {
				maxAt = int64(it.at)
			}
		}
	}
	// One year (nb × width) spans the live events with ~calOccupancy per
	// bucket; +1 keeps the width positive when all events share one time.
	c.width = (maxAt-minAt)/int64(nb) + 1
	// A pop scan adds width per bucket for up to a year; keep the whole
	// year's span far from int64 overflow.
	if limit := int64(1) << 59 / int64(nb); c.width > limit {
		c.width = limit
	}
	c.day = floorDiv(minAt, c.width) * c.width
	c.cur = int(floorDiv(minAt, c.width)) & c.mask
	c.n = 0
	for _, it := range items {
		c.heapPush(c.bucketFor(it.at), it)
		c.n++
	}
}

// reset empties the calendar in place, keeping every bucket's capacity.
func (c *calendar[T]) reset() {
	for i := range c.buckets {
		clear(c.buckets[i])
		c.buckets[i] = c.buckets[i][:0]
	}
	c.n = 0
	c.cur = 0
	c.day = 0
}
