package experiments

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/workload"
)

// Table1Config sizes the recurring-job variance experiment (§2.3).
type Table1Config struct {
	// Jobs are the recurring jobs whose completion-time CoV is measured
	// (default the seven Table 2 jobs).
	Jobs []string
	// RunsPerJob is how many recurrences each job gets (default 12; the
	// paper requires at least ten).
	RunsPerJob int
}

func (c *Table1Config) fill() {
	if len(c.Jobs) == 0 {
		c.Jobs = DefaultJobs
	}
	if c.RunsPerJob <= 0 {
		c.RunsPerJob = 12
	}
}

// Table1 holds the coefficient-of-variation statistics of Table 1.
type Table1 struct {
	// PerJobCoV is the completion-time CoV of each recurring job across all
	// its runs (input sizes vary per run, as in production).
	PerJobCoV []float64
	// PerJobCoVSimilarInput is the CoV across runs whose input size differs
	// by at most 10%.
	PerJobCoVSimilarInput []float64
}

// RecurringVariance reruns each recurring job many times on the shared
// cluster — with fluctuating background load, spare capacity, failures and
// varying input sizes — and computes the CoV of completion times, plus the
// CoV restricted to runs with near-identical inputs (Table 1's second row).
func RecurringVariance(env *Env, cfg Table1Config) (*Table1, error) {
	cfg.fill()
	t1 := &Table1{}
	for _, job := range cfg.Jobs {
		ground, err := env.Ground(job)
		if err != nil {
			return nil, err
		}
		guarantee := 8 // a production job's modest fixed guarantee
		var all, similar []time.Duration
		for run := 0; run < cfg.RunsPerJob; run++ {
			rng := stats.NewRNG(stats.DeriveSeed(env.Seed, "t1", job, fmt.Sprint(run)))
			// Two thirds of the runs use near-identical input (±5%), so the
			// "similar input" cluster has enough members for a stable CoV;
			// the rest vary substantially, as §2.3 observes.
			similarInput := run%3 != 2
			var scale float64
			if similarInput {
				scale = 0.95 + 0.1*rng.Float64()
			} else {
				scale = 0.6 + 0.9*rng.Float64()
			}
			c, err := cluster.New(cluster.Config{
				Machines:        env.Machines,
				SlotsPerMachine: env.Slots,
				MachineMTBF:     90 * time.Minute,
				Seed:            stats.DeriveSeed(env.Seed, "t1-cluster", job, fmt.Sprint(run)),
			})
			if err != nil {
				return nil, err
			}
			bg := env.Background
			bg.Seed = stats.DeriveSeed(env.Seed, "t1-bg", job, fmt.Sprint(run))
			// Recurrences run on different days: the rest of the cluster is
			// sometimes quiet, sometimes slammed (§2.3-§2.4 — the paper's
			// dominant variance source is fluctuating spare capacity).
			bg.MeanInterarrival = time.Duration(float64(bg.MeanInterarrival) * (0.8 + 1.4*rng.Float64()))
			if _, err := workload.SubmitBackground(c, bg); err != nil {
				return nil, err
			}
			h, err := c.Submit(cluster.JobConfig{
				Profile:   ground.Scale(scale),
				Guarantee: guarantee,
				Start:     15 * time.Minute,
				Tracked:   true,
			})
			if err != nil {
				return nil, err
			}
			if err := c.Run(); err != nil {
				return nil, err
			}
			completion := h.Result().Completion
			all = append(all, completion)
			if similarInput {
				similar = append(similar, completion)
			}
		}
		t1.PerJobCoV = append(t1.PerJobCoV, stats.CoVDurations(all))
		t1.PerJobCoVSimilarInput = append(t1.PerJobCoVSimilarInput, stats.CoVDurations(similar))
	}
	return t1, nil
}

// Render prints Table 1: CoV percentiles across recurring jobs.
func (t *Table1) Render() string {
	row := func(name string, values []float64) []string {
		s := stats.Summarize(values)
		return []string{name,
			fmt.Sprintf("%.2f", s.P10),
			fmt.Sprintf("%.2f", s.P50),
			fmt.Sprintf("%.2f", s.P90),
			fmt.Sprintf("%.2f", s.P99),
		}
	}
	return renderTable(
		"Table 1: coefficient of variation of completion time across recurring-job runs\n"+
			"(paper: .15/.28/.59/1.55 across runs; .13/.20/.37/.85 within ±10% input)",
		[]string{"statistic", "p10", "p50", "p90", "p99"},
		[][]string{
			row("CoV across recurring jobs", t.PerJobCoV),
			row("CoV, inputs within 10%", t.PerJobCoVSimilarInput),
		})
}
