// Fixture: a package whose directory and package name collide with the
// deterministic internal/sim, analyzed under a NON-module import path
// (example.com/fixtures/sim). Full-path matching must leave it exempt: no
// findings despite the wall-clock reads.
package sim

import "time"

func stamp() time.Time {
	return time.Now()
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since)
}
