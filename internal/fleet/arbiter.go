package fleet

import (
	"time"

	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/model"
)

// flatEps is the marginal-utility threshold below which an allocation step
// is considered flat. Jobs whose whole curve is flat (already certain to
// meet at the floor — the paper's "utility curve has gone flat") stay at
// the floor and their tokens go to the rest of the fleet.
const flatEps = 1e-9

// arbitrate re-divides this epoch's effective budget across the active
// jobs and actuates the new grants. It returns the granted total and the
// number of latched (guard-panic) jobs, for the epoch observer.
//
//jockey:hotpath
func (r *replay) arbitrate(now time.Duration) (granted, latched int) {
	r.heapOps = 0
	if len(r.active) == 0 {
		return 0, 0
	}
	budget := r.effectiveBudget()
	switch r.cfg.Arbitration {
	case FIFO:
		// The static baseline never revisits a grant: each job keeps its
		// admission reservation, outage or not.
		for _, fj := range r.active {
			fj.wanted = fj.reservation
			granted += fj.grant
		}
		return granted, 0
	case FairShare:
		r.fairShare(budget)
	case UtilityGreedy:
		latched = r.waterFill(now, budget)
	}
	for _, fj := range r.active {
		fj.handle.SetGuarantee(fj.grant)
		granted += fj.grant
	}
	return granted, latched
}

// fairShare hands each active job one token at a time in admission order
// until the budget (or everyone's grid top) is exhausted — an exact equal
// split with deterministic remainder placement, deadline-blind by design.
//
//jockey:hotpath
func (r *replay) fairShare(budget int) {
	cap := r.models.MaxTokens()
	for _, fj := range r.active {
		fj.grant = 0
		// The baseline's notion of desire stays its reservation: the gap
		// integration then charges misses to arbitration when fair-share
		// starves a tight job below what admission promised it.
		fj.wanted = fj.reservation
	}
	for budget > 0 {
		gave := false
		for _, fj := range r.active {
			if budget == 0 {
				break
			}
			if fj.grant >= cap {
				continue
			}
			fj.grant++
			budget--
			gave = true
		}
		if !gave {
			break
		}
	}
}

// bidder is one non-latched job's position in the epoch's water-fill: its
// candidate allocations (the model grid), the model-estimated deadline
// utility at each, and the rung currently granted. bestK/bestRate cache the
// job's best affordable jump for the marginal-utility heap; idx is -1 until
// the floor pass seats the job. The slice of bidders lives on the replay
// and is reused every epoch, so steady-state arbitration does not allocate.
type bidder struct {
	fj       *fleetJob
	cands    []int
	util     []float64
	idx      int32
	bestK    int32
	bestRate float64
}

// waterFill is the headline discipline: greedy marginal-utility
// water-filling over each job's model-estimated deadline utility.
//
// Latched (guard-panic) jobs are served first off the top: under
// containment their panic grant is capped at the admission reservation —
// the promise the arbiter actually made — so one sick job cannot starve
// feasible peers; with NoContainment the latch bids the whole grid top.
// Everyone else starts at the floor (the smallest grid allocation) and the
// remaining budget goes, step by step, to the job whose next candidate
// jump buys the most utility per token. Ties break in admission order.
//
// The greedy rounds run on an indexed max-heap over per-bidder marginal
// rates (see greedyFill); the retired O(rounds × bidders) scan survives as
// fillRef, the reference implementation the heap is differential-tested
// against on every epoch of every test replay (Config.selfCheck).
func (r *replay) waterFill(now time.Duration, budget int) (latched int) {
	remaining := budget
	r.bidders = r.bidders[:0]
	latchedJobs := r.latchedScratch[:0]
	for _, fj := range r.active {
		st := fj.handle.State()
		d := r.decide(fj, st)
		if fj.guard != nil && fj.guard.Mode() == control.GuardPanic {
			// Max-allocation latch: the model can no longer be trusted, so
			// the guard bids its panic grant. Containment keeps the job's
			// admission reservation — the promise the arbiter actually
			// made — off the top, and lets the panic soak up only budget
			// left over after every healthy peer is served. Without
			// containment the full panic bid comes off the top first, and
			// peers get whatever survives.
			fj.latched = true
			fj.wanted = d.Granted
			if r.cfg.NoContainment {
				fj.grant = min(d.Granted, remaining)
			} else {
				fj.grant = min(fj.reservation, remaining)
				latchedJobs = append(latchedJobs, fj)
			}
			remaining -= fj.grant
			latched++
			continue
		}
		fj.latched = false
		cands := fj.jk.Grid()
		util := fj.utilBuf
		for i, a := range cands {
			util[i] = float64(fj.arr.value) * fj.util.Utility(fj.ctrl.PredictAt(st, a))
		}
		// The unconstrained desire is the smallest candidate that attains
		// the curve's maximum — what the job's own controller would ask
		// for with no fleet around it.
		best := 0
		for i := 1; i < len(util); i++ {
			if util[i] > util[best]+flatEps {
				best = i
			}
		}
		fj.wanted = cands[best]
		fj.grant = 0
		r.bidders = append(r.bidders, bidder{fj: fj, cands: cands, util: util, idx: -1})
	}

	if r.cfg.selfCheck != nil {
		defer r.checkAgainstRef(snapshotBidders(r.bidders), remaining)
	}

	remaining = r.fill(remaining)

	// Leftover pass: budget nobody's curve wanted tops up contained
	// panic latches (admission order) toward their full bid — the sick
	// job gets every idle token, just never a healthy peer's.
	for _, fj := range latchedJobs {
		if remaining <= 0 {
			break
		}
		if extra := min(fj.wanted-fj.grant, remaining); extra > 0 {
			fj.grant += extra
			remaining -= extra
		}
	}
	r.latchedScratch = latchedJobs[:0]
	return latched
}

// fill seats every bidder at the floor and runs the greedy heap rounds;
// factored out of waterFill so tests can drive the exact production path
// on hand-built bidder sets against fillRef.
//
//jockey:hotpath
func (r *replay) fill(remaining int) int {
	// Floor pass: every non-latched job gets the smallest grid allocation
	// (admission order) so nobody is silently starved to zero.
	for i := range r.bidders {
		b := &r.bidders[i]
		floor := b.cands[0]
		if floor > remaining {
			break
		}
		b.idx = 0
		b.fj.grant = floor
		remaining -= floor
	}
	return r.greedyFill(remaining)
}

// greedyFill runs the marginal water-fill rounds on an indexed max-heap:
// each bidder contributes (at most) one entry, its best affordable jump —
// the ascent to ANY higher candidate (which handles non-concave curves
// whose gain sits past a flat stretch) with the best utility-per-token
// rate, smallest rung on ties, eligible only above flatEps. The heap
// orders entries by (rate desc, admission asc), so its top — once
// validated — is exactly the pick the retired full scan made.
//
// Laziness is sound because remaining only shrinks: a bidder's cached best
// jump is an upper bound on its current best (shrinking the affordable set
// can only remove jumps, never improve one). A popped top whose cached
// jump is no longer affordable is recomputed under the tighter budget and
// re-seated; a top whose jump IS affordable is ≥ every other entry's upper
// bound, hence the true global argmax. Each grant advances a rung and each
// recompute follows a grant, so an epoch costs O(grants × (K + log n))
// instead of O(grants × n × K) — linear, not quadratic, in active jobs.
//
//jockey:hotpath
func (r *replay) greedyFill(remaining int) int {
	r.bheap = r.bheap[:0]
	for i := range r.bidders {
		b := &r.bidders[i]
		if b.idx < 0 {
			continue
		}
		if b.bestJump(remaining) {
			r.bheapPush(int32(i))
		}
	}
	for remaining > 0 && len(r.bheap) > 0 {
		b := &r.bidders[r.bheap[0]]
		cost := b.cands[b.bestK] - b.cands[b.idx]
		if cost > remaining {
			// Stale upper bound: the budget tightened since this entry was
			// cached. Recompute under what is actually left.
			if b.bestJump(remaining) {
				r.bheapFix()
			} else {
				r.bheapPop()
			}
			continue
		}
		remaining -= cost
		b.idx = b.bestK
		b.fj.grant = b.cands[b.idx]
		if b.bestJump(remaining) {
			r.bheapFix()
		} else {
			r.bheapPop()
		}
	}
	return remaining
}

// bestJump caches b's best affordable jump from its current rung, returning
// false when no eligible jump remains (curve flat or budget too tight).
// Scanning rungs in ascending order with a strict improvement test keeps
// the smallest rung among equal-rate maxima — the retired scan's tie-break.
//
//jockey:hotpath
func (b *bidder) bestJump(remaining int) bool {
	b.bestK = -1
	b.bestRate = 0
	base := b.util[b.idx]
	c0 := b.cands[b.idx]
	for k := int(b.idx) + 1; k < len(b.cands); k++ {
		cost := b.cands[k] - c0
		if cost > remaining {
			break
		}
		if rate := (b.util[k] - base) / float64(cost); rate > flatEps && rate > b.bestRate {
			b.bestK, b.bestRate = int32(k), rate
		}
	}
	return b.bestK >= 0
}

// bidderAbove orders the marginal-utility heap: higher rate first, earliest
// admission on ties (bidders are appended in admission order, so the slice
// index is the admission rank).
//
//jockey:hotpath
func (r *replay) bidderAbove(i, j int32) bool {
	bi, bj := &r.bidders[i], &r.bidders[j]
	if bi.bestRate != bj.bestRate {
		return bi.bestRate > bj.bestRate
	}
	return i < j
}

//jockey:hotpath
func (r *replay) bheapPush(i int32) {
	r.heapOps++
	r.bheap = append(r.bheap, i)
	c := len(r.bheap) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !r.bidderAbove(r.bheap[c], r.bheap[p]) {
			return
		}
		r.bheap[c], r.bheap[p] = r.bheap[p], r.bheap[c]
		c = p
	}
}

//jockey:hotpath
func (r *replay) bheapPop() {
	r.heapOps++
	n := len(r.bheap) - 1
	r.bheap[0] = r.bheap[n]
	r.bheap = r.bheap[:n]
	if n > 1 {
		r.bheapDown()
	}
}

// bheapFix re-seats the top entry after its rate was recomputed (rates only
// ever fall, so the entry can only sink).
//
//jockey:hotpath
func (r *replay) bheapFix() {
	r.heapOps++
	r.bheapDown()
}

//jockey:hotpath
func (r *replay) bheapDown() {
	i := 0
	n := len(r.bheap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		top := left
		if right := left + 1; right < n && r.bidderAbove(r.bheap[right], r.bheap[left]) {
			top = right
		}
		if !r.bidderAbove(r.bheap[top], r.bheap[i]) {
			return
		}
		r.bheap[i], r.bheap[top] = r.bheap[top], r.bheap[i]
		i = top
	}
}

// decide runs the job's control stack for this epoch. For guarded jobs this
// is what feeds the staleness detector and drives panic entry/recovery; the
// returned decision's grant is only used by the panic latch (water-filling
// overrides it otherwise).
//
//jockey:hotpath
func (r *replay) decide(fj *fleetJob, st model.State) control.Decision {
	if fj.guard != nil {
		return fj.guard.Decide(st)
	}
	// Unguarded utility-greedy probes the model directly via PredictAt;
	// running the plain controller's hysteresis would be dead state.
	return control.Decision{}
}
