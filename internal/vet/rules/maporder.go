package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/jockeysim/jockey/internal/vet"
)

// MapOrder flags range-over-map loops whose body has an order-dependent
// effect: appending to a slice declared outside the loop, accumulating into
// a float (float addition does not commute bit-for-bit), writing output, or
// sending on a channel. Go randomizes map iteration order per range, so any
// such loop produces run-to-run different bits — the amdahl-class hazard.
//
// The canonical fix is to collect the keys and sort them first. The
// collect-then-sort idiom itself is recognized: a loop that only appends to
// a slice which the same function later passes to sort.* / slices.Sort* is
// not flagged. Commutative effects (integer sums, counters, min/max over
// ints, writes into another map) are allowed.
var MapOrder = &vet.Analyzer{
	Name: "maporder",
	Doc:  "forbid order-dependent effects (append, float accumulation, output, channel send) inside range-over-map loops; iterate sorted keys",
	Run:  runMapOrder,
}

// outputMethods are method / function names that emit ordered output.
var outputMethods = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMapOrder(p *vet.Pass) error {
	for _, f := range p.Files {
		// Examine each function so the sorted-later exemption can see the
		// statements that follow the loop.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFuncMapRanges(p, body)
			}
			return true
		})
	}
	return nil
}

func checkFuncMapRanges(p *vet.Pass, funcBody *ast.BlockStmt) {
	ast.Inspect(funcBody, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false // handled as its own function by the caller
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		reportMapRangeEffects(p, funcBody, rs)
		return true
	})
}

func reportMapRangeEffects(p *vet.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.SendStmt:
			p.Reportf(stmt.Pos(), "channel send inside range over map: receive order varies run to run; iterate sorted keys")

		case *ast.AssignStmt:
			// v = append(v, ...) into a slice declared outside the loop.
			if len(stmt.Lhs) == 1 && len(stmt.Rhs) == 1 {
				if lhs, ok := stmt.Lhs[0].(*ast.Ident); ok && isAppendTo(p, stmt.Rhs[0], lhs) {
					obj := p.Info.ObjectOf(lhs)
					if obj != nil && !within(obj.Pos(), rs) {
						if !sortedAfter(p, funcBody, obj, rs.End()) {
							p.Reportf(stmt.Pos(), "append to %s inside range over map produces a random-order slice; collect and sort the keys first", lhs.Name)
						}
					}
				}
			}
			// Float accumulation: x += expr (and -=, *=, /=) where x is a
			// float declared outside the loop.
			switch stmt.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if lhs, ok := stmt.Lhs[0].(*ast.Ident); ok {
					obj := p.Info.ObjectOf(lhs)
					if obj != nil && !within(obj.Pos(), rs) && isFloat(obj.Type()) {
						p.Reportf(stmt.Pos(), "float accumulation into %s inside range over map is order-dependent bit-for-bit; iterate sorted keys", lhs.Name)
					}
				}
			}

		case *ast.CallExpr:
			if name, ok := outputCallee(p, stmt); ok {
				p.Reportf(stmt.Pos(), "%s inside range over map emits output in random order; iterate sorted keys", name)
			}
		}
		return true
	})
}

func isAppendTo(p *vet.Pass, rhs ast.Expr, lhs *ast.Ident) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if _, builtin := p.Info.Uses[fn].(*types.Builtin); !builtin {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	return ok && p.Info.ObjectOf(first) == p.Info.ObjectOf(lhs)
}

// sortedAfter reports whether, anywhere in the function after pos, the
// slice object is passed (as the first argument) to a sort.* or slices.Sort*
// call — the collect-then-sort idiom.
func sortedAfter(p *vet.Pass, funcBody *ast.BlockStmt, slice types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sortCall := false
		if name, ok := pkgFuncRef(p, sel, "sort"); ok {
			sortCall = name != "Search" // every sort.X(s, ...) entry point sorts s except Search
		}
		if name, ok := pkgFuncRef(p, sel, "slices"); ok {
			switch name {
			case "Sort", "SortFunc", "SortStableFunc":
				sortCall = true
			}
		}
		if !sortCall {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && p.Info.ObjectOf(arg) == slice {
			found = true
			return false
		}
		return true
	})
	return found
}

func outputCallee(p *vet.Pass, call *ast.CallExpr) (string, bool) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if _, builtin := p.Info.Uses[fn].(*types.Builtin); builtin && (fn.Name == "print" || fn.Name == "println") {
			return fn.Name, true
		}
	case *ast.SelectorExpr:
		if !outputMethods[fn.Sel.Name] {
			return "", false
		}
		// Package-level output function (fmt.Printf, ...) or a method with
		// an output name on any receiver (Writer.Write, Builder.WriteString).
		if name, ok := pkgFuncRef(p, fn, "fmt"); ok {
			return "fmt." + name, true
		}
		if _, isMethod := p.Info.Selections[fn]; isMethod {
			return fn.Sel.Name, true
		}
	}
	return "", false
}

func within(pos token.Pos, rs *ast.RangeStmt) bool {
	return pos >= rs.Pos() && pos <= rs.End()
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
