package rules_test

import (
	"testing"

	"github.com/jockeysim/jockey/internal/vet/rules"
	"github.com/jockeysim/jockey/internal/vet/vettest"
)

func TestWalltime(t *testing.T) {
	vettest.Run(t, "testdata/walltime/sim", rules.Walltime)
}

func TestWalltimeAllowsNonDeterministicPackages(t *testing.T) {
	vettest.Run(t, "testdata/walltime/experiments", rules.Walltime)
}

func TestWalltimeGridWorkerPool(t *testing.T) {
	vettest.Run(t, "testdata/walltime/grid", rules.Walltime)
}

func TestWalltimeFlightRecorder(t *testing.T) {
	vettest.Run(t, "testdata/walltime/flight", rules.Walltime)
}

func TestWalltimeFleetArbiter(t *testing.T) {
	vettest.Run(t, "testdata/walltime/fleet", rules.Walltime)
}

// TestWalltimeExemptsLookalikePackagePaths pins the full-import-path
// matching: a package whose final segment collides with a deterministic
// package ("sim") but lives outside the module's internal tree is exempt.
func TestWalltimeExemptsLookalikePackagePaths(t *testing.T) {
	vettest.RunPkg(t, "testdata/walltime/simclone", "example.com/fixtures/sim", rules.Walltime)
}

// TestSeedFlow runs the three-package provenance fixture in dependency
// order: the stats miniature (analyzed under the real internal/stats path,
// so the intrinsics resolve), the non-deterministic helper package whose
// consumer/deriver facts cross the boundary, and the deterministic consumer
// where the violations surface.
func TestSeedFlow(t *testing.T) {
	vettest.RunPkgs(t, []vettest.Pkg{
		{Dir: "testdata/seedflow/statsfx", Path: rules.ModulePath + "/internal/stats"},
		{Dir: "testdata/seedflow/seedhelp", Path: rules.ModulePath + "/internal/seedhelp"},
		{Dir: "testdata/seedflow/sim", Path: rules.ModulePath + "/internal/sim"},
	}, rules.SeedFlow)
}

func TestHotAlloc(t *testing.T) {
	vettest.Run(t, "testdata/hotalloc/hot", rules.HotAlloc)
}

// TestHotAllocCalendarQueue runs the gate over bucketed calendar-queue
// idiom (internal/eventq's hot-path shape): amortized appends into
// queue-owned bucket slices must pass, while per-push slice rebuilds,
// boxing, and debug formatting are flagged.
func TestHotAllocCalendarQueue(t *testing.T) {
	vettest.Run(t, "testdata/hotalloc/calq", rules.HotAlloc)
}

// TestHotAllocWaterFill runs the gate over the indexed-heap water-fill
// idiom (internal/fleet's arbitration hot path): epoch reslices and
// amortized appends into the arbiter-owned bidder arena and heap index
// must pass, while fresh per-epoch slices, per-job utility buffers, sort
// closures, and debug formatting are flagged.
func TestHotAllocWaterFill(t *testing.T) {
	vettest.Run(t, "testdata/hotalloc/waterfill", rules.HotAlloc)
}

// TestHotAllocBatchDispatch runs the gate over the batch-dispatch idiom
// (internal/cluster's arrival-burst path): buffering task-end events in an
// engine-owned batch slice and flushing through one bulk insert must pass,
// while a fresh buffer per pass, map-keyed staging, and boxing are flagged.
func TestHotAllocBatchDispatch(t *testing.T) {
	vettest.Run(t, "testdata/hotalloc/batchdisp", rules.HotAlloc)
}

// TestSeedFlowHotAllocInteraction runs both analyzers over one fixture
// where single lines violate both rules, pinning that a scoped
// //jockeyvet:ignore suppresses exactly the named analyzer.
func TestSeedFlowHotAllocInteraction(t *testing.T) {
	vettest.Run(t, "testdata/interaction/sim", rules.SeedFlow, rules.HotAlloc)
}

func TestGlobalRand(t *testing.T) {
	vettest.Run(t, "testdata/globalrand/app", rules.GlobalRand)
}

func TestGlobalRandFlightReplay(t *testing.T) {
	vettest.Run(t, "testdata/globalrand/flight", rules.GlobalRand)
}

func TestGlobalRandFleetArrivals(t *testing.T) {
	vettest.Run(t, "testdata/globalrand/fleet", rules.GlobalRand)
}

func TestMapOrder(t *testing.T) {
	vettest.Run(t, "testdata/maporder/app", rules.MapOrder)
}

func TestPanicPath(t *testing.T) {
	vettest.Run(t, "testdata/panicpath/libpkg", rules.PanicPath)
}

func TestPanicPathAllowsMain(t *testing.T) {
	vettest.Run(t, "testdata/panicpath/cmdtool", rules.PanicPath)
}

func TestErrCtx(t *testing.T) {
	vettest.Run(t, "testdata/errctx/cluster", rules.ErrCtx)
}

// TestIgnoreDirective proves a reasoned //jockeyvet:ignore suppresses the
// diagnostic on exactly one line: the directive's own line when trailing
// code, the next line when standalone — and nothing more.
func TestIgnoreDirective(t *testing.T) {
	vettest.Run(t, "testdata/ignore/app", rules.GlobalRand)
}
