package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("iteration %d: %d != %d", i, av, bv)
		}
	}
}

func TestNewRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different seeds coincide %d/64 times", same)
	}
}

func TestDeriveSeedStable(t *testing.T) {
	s1 := DeriveSeed(7, "cluster", "jobA")
	s2 := DeriveSeed(7, "cluster", "jobA")
	if s1 != s2 {
		t.Fatalf("DeriveSeed not stable: %d vs %d", s1, s2)
	}
	if DeriveSeed(7, "cluster", "jobA") == DeriveSeed(7, "cluster", "jobB") {
		t.Fatal("DeriveSeed collision for distinct labels")
	}
	if DeriveSeed(7, "x") == DeriveSeed(8, "x") {
		t.Fatal("DeriveSeed collision for distinct masters")
	}
}

func TestSplitMix64Property(t *testing.T) {
	// SplitMix64 must be a bijection-ish mixer: no two of a modest sample of
	// inputs may collide.
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return SplitMix64(a) != SplitMix64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoint(t *testing.T) {
	p := Point{V: 5 * time.Second}
	r := NewRNG(1)
	if got := p.Sample(r); got != 5*time.Second {
		t.Errorf("Sample = %v", got)
	}
	if p.Mean() != 5*time.Second || p.Quantile(0.99) != 5*time.Second {
		t.Error("point distribution not degenerate")
	}
}

func TestUniform(t *testing.T) {
	u := Uniform{Lo: time.Second, Hi: 3 * time.Second}
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := u.Sample(r)
		if v < u.Lo || v > u.Hi {
			t.Fatalf("sample %v out of [%v,%v]", v, u.Lo, u.Hi)
		}
	}
	if got, want := u.Mean(), 2*time.Second; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got := u.Quantile(0.5); got != 2*time.Second {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	// Degenerate range must not panic.
	d := Uniform{Lo: time.Second, Hi: time.Second}
	if d.Sample(r) != time.Second {
		t.Error("degenerate uniform should return Lo")
	}
}

func TestExponentialMean(t *testing.T) {
	e := Exponential{MeanValue: 10 * time.Second}
	r := NewRNG(3)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += e.Sample(r)
	}
	got := (sum / n).Seconds()
	if math.Abs(got-10) > 0.5 {
		t.Errorf("empirical mean %.2fs, want ~10s", got)
	}
	if q := e.Quantile(0.5).Seconds(); math.Abs(q-10*math.Ln2) > 1e-6 {
		t.Errorf("median %.4f, want %.4f", q, 10*math.Ln2)
	}
}

func TestLognormalFromMedian(t *testing.T) {
	l := LognormalFromMedian(4*time.Second, 54*time.Second) // job B stage stats
	if got := l.Quantile(0.5).Seconds(); math.Abs(got-4) > 0.01 {
		t.Errorf("median = %.3f, want 4", got)
	}
	if got := l.Quantile(0.9).Seconds(); math.Abs(got-54) > 0.5 {
		t.Errorf("p90 = %.3f, want 54", got)
	}
	// Empirical check of the median via sampling.
	r := NewRNG(4)
	vals := make([]time.Duration, 0, 10001)
	for i := 0; i < 10001; i++ {
		vals = append(vals, l.Sample(r))
	}
	e := NewEmpirical(vals)
	if got := e.Quantile(0.5).Seconds(); math.Abs(got-4) > 0.5 {
		t.Errorf("sampled median %.3f, want ~4", got)
	}
}

func TestLognormalDegenerateSpread(t *testing.T) {
	l := LognormalFromMedian(10*time.Second, 5*time.Second) // p90 < median
	if l.Sigma <= 0 {
		t.Fatalf("sigma must stay positive, got %f", l.Sigma)
	}
}

func TestShiftedAndScaled(t *testing.T) {
	base := Point{V: 10 * time.Second}
	sh := Shifted{Base: base, Offset: 2 * time.Second}
	r := NewRNG(5)
	if got := sh.Sample(r); got != 12*time.Second {
		t.Errorf("shifted sample = %v", got)
	}
	if sh.Mean() != 12*time.Second || sh.Quantile(0.3) != 12*time.Second {
		t.Error("shifted stats wrong")
	}
	sc := Scaled{Base: base, Factor: 1.5}
	if got := sc.Sample(r); got != 15*time.Second {
		t.Errorf("scaled sample = %v", got)
	}
	if sc.Mean() != 15*time.Second || sc.Quantile(0.9) != 15*time.Second {
		t.Error("scaled stats wrong")
	}
}

func TestEmpirical(t *testing.T) {
	samples := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	e := NewEmpirical(samples)
	if e.Len() != 3 {
		t.Fatalf("Len = %d", e.Len())
	}
	if got := e.Quantile(0); got != time.Second {
		t.Errorf("min = %v", got)
	}
	if got := e.Quantile(1); got != 3*time.Second {
		t.Errorf("max = %v", got)
	}
	if got := e.Quantile(0.5); got != 2*time.Second {
		t.Errorf("median = %v", got)
	}
	if got := e.Mean(); got != 2*time.Second {
		t.Errorf("mean = %v", got)
	}
	r := NewRNG(6)
	for i := 0; i < 100; i++ {
		v := e.Sample(r)
		if v < time.Second || v > 3*time.Second {
			t.Fatalf("sample %v outside hull", v)
		}
	}
}

func TestEmpiricalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty sample set")
		}
	}()
	NewEmpirical(nil)
}

func TestQuantileMonotoneProperty(t *testing.T) {
	// For any distribution, Quantile must be monotone non-decreasing in q.
	dists := []Distribution{
		Point{V: time.Second},
		Uniform{Lo: time.Second, Hi: time.Minute},
		Exponential{MeanValue: 30 * time.Second},
		LognormalFromMedian(5*time.Second, 60*time.Second),
		NewEmpirical([]time.Duration{time.Second, 5 * time.Second, 9 * time.Second, 2 * time.Minute}),
	}
	f := func(q1, q2 float64) bool {
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		for _, d := range dists {
			if d.Quantile(q1) > d.Quantile(q2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamplesAreNonNegativeProperty(t *testing.T) {
	dists := []Distribution{
		Uniform{Lo: 0, Hi: time.Minute},
		Exponential{MeanValue: 30 * time.Second},
		LognormalFromMedian(5*time.Second, 60*time.Second),
	}
	r := NewRNG(7)
	for _, d := range dists {
		for i := 0; i < 2000; i++ {
			if v := d.Sample(r); v < 0 {
				t.Fatalf("%v produced negative sample %v", d, v)
			}
		}
	}
}

func TestDistributionStrings(t *testing.T) {
	for _, d := range []Distribution{
		Point{V: time.Second},
		Uniform{Lo: 0, Hi: time.Second},
		Exponential{MeanValue: time.Second},
		Lognormal{Mu: 1, Sigma: 0.5},
		Shifted{Base: Point{V: time.Second}, Offset: time.Second},
		Scaled{Base: Point{V: time.Second}, Factor: 2},
		NewEmpirical([]time.Duration{time.Second}),
	} {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}
