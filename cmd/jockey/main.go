// Command jockey runs one of the paper's evaluation jobs (A–G) on the
// simulated shared cluster under a chosen allocation policy and prints the
// allocation timeline and outcome — a one-shot view of what the control
// loop does.
//
// Usage:
//
//	jockey -job F -deadline 30m -policy jockey [-seed N] [-slack 1.2]
//	       [-hysteresis 0.2] [-deadzone 3m] [-period 1m] [-indicator totalworkWithQ]
//	       [-scale 1.0] [-csv timeline.csv] [-parallelism N]
//	       [-guard] [-drift-factor 2.0 -drift-at 6m]
//	       [-flight-level none|decisions|counterfactual] [-flight record.json]
//
// Policies: jockey, jockey-no-adapt, jockey-no-sim, max-allocation.
// With -deadline 0 the tool picks the job's standard short deadline.
// -guard wraps the controller in the model-staleness guard rails (deviation
// detection, online re-profiling, fallback chain); -drift-factor/-drift-at
// inject an all-stage service-time drift to watch the guard react.
// -flight-level turns on the decision flight recorder (per-tick mechanisms
// and top-K candidates; "counterfactual" adds hindsight constant-allocation
// replays and a regret report); -flight writes the record as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/core"
	"github.com/jockeysim/jockey/internal/experiments"
	"github.com/jockeysim/jockey/internal/flight"
	"github.com/jockeysim/jockey/internal/utility"
)

func main() {
	var (
		job       = flag.String("job", "F", "evaluation job name (A..G)")
		deadline  = flag.Duration("deadline", 0, "SLO deadline (0 = the job's standard short deadline)")
		policy    = flag.String("policy", "jockey", "allocation policy: jockey | jockey-no-adapt | jockey-no-sim | max-allocation")
		seed      = flag.Uint64("seed", 1, "run seed")
		slack     = flag.Float64("slack", 0, "slack factor (0 = default 1.2)")
		hyst      = flag.Float64("hysteresis", 0, "hysteresis α (0 = default 0.2)")
		deadzone  = flag.Duration("deadzone", 0, "dead zone (0 = default 3m, negative disables)")
		period    = flag.Duration("period", 0, "control period (0 = default 1m)")
		indicator = flag.String("indicator", "", "progress indicator (default totalworkWithQ)")
		scale     = flag.Float64("scale", 0, "input-size scale factor (0 = per-run jitter)")
		csvPath   = flag.String("csv", "", "write the allocation timeline as CSV to this file")
		online    = flag.Bool("online", false, "drive the controller with online forward simulation instead of the C(p,a) table")
		utilSpec  = flag.String("utility", "", `custom utility curve, e.g. "deadline 60m", "soft 1h grace 20m" or "0:1, 60m:1, 70m:-1"`)
		profOut   = flag.String("save-profile", "", "write the job's training profile as JSON to this file")
		traceOut  = flag.String("save-trace", "", "write the run's full task trace as JSON to this file")
		par       = flag.Int("parallelism", 0, "worker pool size for offline model simulations (0 = GOMAXPROCS); results are identical at any value")
		guard     = flag.Bool("guard", false, "wrap the controller in the model-staleness guard rails (policy jockey only)")
		driftFac  = flag.Float64("drift-factor", 0, "inject an all-stage service-time drift of this factor (0 = none)")
		driftAt   = flag.Duration("drift-at", 0, "when the injected drift starts, relative to job start")
		flightLvl = flag.String("flight-level", "none", "decision flight recorder: none, decisions or counterfactual")
		flightOut = flag.String("flight", "", "write the flight record as JSON to this file (implies -flight-level decisions)")
	)
	flag.Parse()
	flightLevel, err := flight.ParseLevel(*flightLvl)
	if err != nil {
		fatal(err)
	}
	if *flightOut != "" && flightLevel == flight.LevelNone {
		flightLevel = flight.LevelDecisions
	}

	env := experiments.NewEnv(*seed)
	env.Parallelism = *par
	d := *deadline
	if d == 0 {
		short, _, err := env.Deadlines(*job)
		if err != nil {
			fatal(err)
		}
		d = short
		fmt.Fprintf(os.Stderr, "using the job's standard short deadline: %v\n", d)
	}
	var u utility.Fn
	if *utilSpec != "" {
		var err error
		if u, err = utility.Parse(*utilSpec); err != nil {
			fatal(err)
		}
	}
	if *profOut != "" {
		prof, err := env.Training(*job)
		if err != nil {
			fatal(err)
		}
		data, err := json.MarshalIndent(prof, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*profOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "training profile written to %s\n", *profOut)
	}
	var drifts []cluster.StageDrift
	if *driftFac > 0 {
		drifts = []cluster.StageDrift{{At: *driftAt, Stage: -1, Factor: *driftFac}}
	}
	out, record, err := env.RunFlight(experiments.NewExec(), experiments.SLORun{
		Job:        *job,
		Deadline:   d,
		Policy:     experiments.PolicyKind(*policy),
		Guarded:    *guard,
		Seed:       *seed,
		InputScale: *scale,
		Utility:    u,
		Drifts:     drifts,
		Knobs: experiments.Knobs{
			Slack:           *slack,
			Hysteresis:      *hyst,
			DeadZone:        *deadzone,
			Period:          *period,
			Indicator:       core.IndicatorName(*indicator),
			OnlinePredictor: *online,
		},
	}, experiments.FlightConfig{Level: flightLevel})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("job %s under %s, deadline %v\n\n", *job, *policy, d)
	if *guard {
		fmt.Println("  t[min]  raw  granted  running  oracle  progress  predicted[min]  dev   mode")
		for _, p := range out.Trace.Timeline {
			fmt.Printf("  %6.1f  %3d  %7d  %7d  %6d  %7.0f%%  %14.1f  %4.2f  %s\n",
				p.T.Minutes(), p.Raw, p.Granted, p.Running, p.Oracle,
				100*p.Progress, p.Predicted.Minutes(), p.Deviation, p.Mode)
		}
	} else {
		fmt.Println("  t[min]  raw  granted  running  oracle  progress  predicted[min]")
		for _, p := range out.Trace.Timeline {
			fmt.Printf("  %6.1f  %3d  %7d  %7d  %6d  %7.0f%%  %14.1f\n",
				p.T.Minutes(), p.Raw, p.Granted, p.Running, p.Oracle,
				100*p.Progress, p.Predicted.Minutes())
		}
	}
	for _, ev := range out.GuardEvents {
		fmt.Printf("guard: t=%v %s %s -> %s (deviation %.2f, live samples %d)\n",
			ev.At, ev.Kind, ev.From, ev.To, ev.Deviation, ev.LiveSamples)
	}
	fmt.Printf("\ncompleted in %v — %.0f%% of the deadline — SLO met: %v\n",
		out.Completion.Round(time.Second), 100*out.RelCompletion, out.Met)
	fmt.Printf("allocation above oracle: %.0f%%, spare-token tasks: %.0f%%, evictions: %d\n",
		100*out.AboveOracle, 100*out.SpareTaskFraction, out.Evictions)
	if record != nil && record.Counterfactual != nil {
		cf := record.Counterfactual
		fmt.Printf("\ncounterfactual (constant-allocation hindsight over %v):\n", cf.Candidates)
		for _, o := range cf.Replays {
			fmt.Printf("  alloc %3d: completed %v, met %v, %.0f token-seconds\n",
				o.Alloc, o.Completion.Round(time.Second), o.Met, o.AllocTokenSeconds)
		}
		fmt.Printf("  deadline regret %.0f, token regret %.0f token-seconds", cf.DeadlineRegret, cf.TokenRegret)
		if cf.Attributed != "" {
			fmt.Printf(", attributed to %s", cf.Attributed)
		}
		fmt.Println()
		for _, s := range cf.Attribution {
			fmt.Printf("    %-13s %4d ticks, %.0f token-seconds of gap\n", s.Mechanism, s.Ticks, s.GapTokenSeconds)
		}
	}
	if *flightOut != "" && record != nil {
		f, err := os.Create(*flightOut)
		if err != nil {
			fatal(err)
		}
		if err := record.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "flight record written to %s\n", *flightOut)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := out.Trace.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := out.Trace.WriteTimelineCSV(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "timeline written to %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jockey:", err)
	os.Exit(1)
}
