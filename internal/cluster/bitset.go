package cluster

import (
	"math/bits"
)

// bitset is a two-level bitmap over machine ids: words holds one bit per
// machine, sum one bit per non-zero word. first() therefore scans the (tiny)
// summary level instead of all words, which keeps "lowest-index available
// machine" O(1)-ish at 10k machines — the indexed up-machine set that
// replaces the full c.machines scans of earlier engines.
type bitset struct {
	words []uint64
	sum   []uint64
}

// init sizes the set for n bits and fills it (all true or all false),
// keeping the backing arrays across reuse.
func (b *bitset) init(n int, all bool) {
	nw := (n + 63) / 64
	ns := (nw + 63) / 64
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
		b.sum = make([]uint64, ns)
	}
	b.words = b.words[:nw]
	b.sum = b.sum[:ns]
	if !all {
		clear(b.words)
		clear(b.sum)
		return
	}
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if tail := n & 63; tail != 0 {
		b.words[nw-1] = (uint64(1) << tail) - 1
	}
	clear(b.sum)
	for i := range b.words {
		if b.words[i] != 0 {
			b.sum[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

//jockey:hotpath
func (b *bitset) set(i int) {
	w := i >> 6
	b.words[w] |= 1 << (uint(i) & 63)
	b.sum[w>>6] |= 1 << (uint(w) & 63)
}

//jockey:hotpath
func (b *bitset) clear(i int) {
	w := i >> 6
	b.words[w] &^= 1 << (uint(i) & 63)
	if b.words[w] == 0 {
		b.sum[w>>6] &^= 1 << (uint(w) & 63)
	}
}

//jockey:hotpath
func (b *bitset) get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// first returns the lowest set bit, or -1 when the set is empty.
//
//jockey:hotpath
func (b *bitset) first() int {
	for si, sw := range b.sum {
		if sw == 0 {
			continue
		}
		w := si<<6 + bits.TrailingZeros64(sw)
		return w<<6 + bits.TrailingZeros64(b.words[w])
	}
	return -1
}

// selectK returns the k-th (0-based) set bit in index order, or -1 when
// fewer than k+1 bits are set. Used by the machine-failure sampler, which
// picks a uniformly random up machine: the k-th set bit of the up set is
// exactly the k-th entry of the up-machine slice earlier engines rebuilt per
// failure event.
func (b *bitset) selectK(k int) int {
	for wi, w := range b.words {
		c := bits.OnesCount64(w)
		if k >= c {
			k -= c
			continue
		}
		for ; k > 0; k-- {
			w &= w - 1 // drop lowest set bit
		}
		return wi<<6 + bits.TrailingZeros64(w)
	}
	return -1
}
