package rules

import (
	"go/ast"
	"go/types"

	"github.com/jockeysim/jockey/internal/vet"
)

// PanicPath confines panics in library packages to the internal/invariant
// helpers, which always attach context (the violated condition, the job or
// stage identity, the wrapped cause). A bare panic(err) that fires three
// layers deep in a simulation leaves nothing to debug with; a *Violation
// names the invariant. main packages (cmd/, examples/) and test files may
// still panic — they own their process.
var PanicPath = &vet.Analyzer{
	Name: "panicpath",
	Doc:  "forbid bare panic in library packages; use invariant.Assertf / invariant.NoErr or return an error",
	Run:  runPanicPath,
}

func runPanicPath(p *vet.Pass) error {
	if p.Pkg.Name() == "main" || basePath(p.Pkg.Path()) == ModulePath+"/internal/invariant" {
		return nil
	}
	for _, f := range p.Files {
		if vet.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, builtin := p.Info.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			p.Reportf(call.Pos(), "bare panic in library package %s; use invariant.Assertf/invariant.NoErr (carries context) or return an error", p.Pkg.Name())
			return true
		})
	}
	return nil
}
