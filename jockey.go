// Package jockey provides guaranteed job latency for DAG-structured data
// parallel jobs in shared clusters, reproducing "Jockey: Guaranteed Job
// Latency in Data Parallel Clusters" (Ferguson et al., EuroSys 2012).
//
// Jockey combines three components:
//
//   - an offline, event-based job simulator that precomputes C(p, a) — the
//     distribution of remaining completion time at progress p under token
//     allocation a — from a profile of a prior run;
//   - a progress indicator (totalworkWithQ by default) that maps a running
//     job's per-stage completion fractions to the scalar p;
//   - a control loop that, every minute, grants the minimum allocation
//     maximizing the job's expected utility, moderated by slack, hysteresis
//     and a dead zone.
//
// The package also contains everything needed to evaluate the system
// without a production cluster: a discrete-event shared-cluster simulator
// with token-based weighted fair sharing, work-conserving spare-capacity
// redistribution, eviction and failure injection; a SCOPE-like plan
// language; and workload generators reproducing the paper's evaluation
// jobs.
//
// # Quick start
//
//	// Describe (or compile, or profile) a job plan.
//	job := jockey.NewJobBuilder("wordcount").
//		Stage("map", 100).
//		Stage("reduce", 10).
//		Edge("map", "reduce", jockey.AllToAll).
//		MustBuild()
//
//	// Attach per-stage statistics (here parametric; production use
//	// extracts them from a recorded run with jockey.ProfileFromTrace).
//	prof := jockey.MustNewProfile(job, []jockey.StageProfile{
//		{Exec: jockey.LognormalFromMedian(5*time.Second, 20*time.Second)},
//		{Exec: jockey.LognormalFromMedian(30*time.Second, 60*time.Second)},
//	})
//
//	// Build the runtime (runs the offline simulations) and a policy.
//	jk, err := jockey.New(prof, jockey.Options{Seed: 42})
//	pol, err := jk.Policy(30 * time.Minute)
//
//	// Run the job under the policy on a (simulated) shared cluster.
//	cl, err := jockey.NewCluster(jockey.ClusterConfig{Seed: 1})
//	h, err := cl.Submit(jockey.JobConfig{
//		Profile: prof, Policy: pol,
//		Deadline: 30 * time.Minute, Tracked: true,
//	})
//	err = cl.Run()
//	fmt.Println(h.Result().Met, h.Result().Completion)
//
// See the examples directory for complete programs, and internal/experiments
// for the reproduction of every table and figure of the paper.
package jockey

import (
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/core"
	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/fleet"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/progress"
	"github.com/jockeysim/jockey/internal/scope"
	"github.com/jockeysim/jockey/internal/sim"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
	"github.com/jockeysim/jockey/internal/utility"
)

// Plan graph (package internal/dag).
type (
	// Job is an immutable execution plan: stages of parallel tasks
	// connected by dataflow edges.
	Job = dag.Job
	// Stage is one operator of a plan.
	Stage = dag.Stage
	// Edge is a dataflow dependency between stages.
	Edge = dag.Edge
	// EdgeKind distinguishes pipelined from barrier edges.
	EdgeKind = dag.EdgeKind
	// JobBuilder accumulates stages and edges into a validated Job.
	JobBuilder = dag.Builder
)

// Edge kinds.
const (
	// OneToOne pipelines: each consumer task reads a slice of producers.
	OneToOne = dag.OneToOne
	// AllToAll is a full shuffle and acts as a barrier.
	AllToAll = dag.AllToAll
)

// NewJobBuilder starts a new plan.
func NewJobBuilder(name string) *JobBuilder { return dag.NewBuilder(name) }

// CompileScript compiles a SCOPE-like script (package internal/scope) into
// a Job plan.
func CompileScript(src string) (*Job, error) { return scope.Compile(src) }

// Profiles (package internal/profile).
type (
	// Profile carries a job plan plus per-stage statistics: the input to
	// Jockey's models.
	Profile = profile.Profile
	// StageProfile holds one stage's statistics.
	StageProfile = profile.StageProfile
)

// NewProfile builds a profile from explicit per-stage statistics.
func NewProfile(job *Job, stages []StageProfile) (*Profile, error) {
	return profile.New(job, stages)
}

// MustNewProfile is NewProfile that panics on error.
func MustNewProfile(job *Job, stages []StageProfile) *Profile {
	return profile.MustNew(job, stages)
}

// ProfileFromTrace extracts a profile from a recorded execution — the
// paper's "single profile run" path for recurring jobs.
func ProfileFromTrace(job *Job, tr *JobTrace) (*Profile, error) {
	return profile.FromTrace(job, tr)
}

// Distributions (package internal/stats).
type (
	// Distribution models task service times, init latencies, etc.
	Distribution = stats.Distribution
	// Lognormal is the heavy-tailed workhorse distribution.
	Lognormal = stats.Lognormal
	// Exponential distribution.
	Exponential = stats.Exponential
	// Uniform distribution on an interval.
	Uniform = stats.Uniform
	// Point is a degenerate (constant) distribution.
	Point = stats.Point
	// Truncated caps another distribution's samples.
	Truncated = stats.Truncated
)

// LognormalFromMedian builds a lognormal matching a median and a 90th
// percentile.
func LognormalFromMedian(median, p90 time.Duration) Lognormal {
	return stats.LognormalFromMedian(median, p90)
}

// The Jockey runtime (package internal/core).
type (
	// Jockey is the per-job runtime: offline model + policy factory.
	Jockey = core.Jockey
	// Options configures the runtime; the zero value gives the paper's
	// defaults. Options.Parallelism bounds the worker pool running the
	// offline C(p, a) simulations (default GOMAXPROCS); the model built is
	// bit-identical at any setting.
	Options = core.Options
	// IndicatorName selects a progress indicator.
	IndicatorName = core.IndicatorName
)

// The six progress indicators of the paper.
const (
	TotalWorkWithQ = core.TotalWorkWithQ
	TotalWork      = core.TotalWork
	VertexFrac     = core.VertexFrac
	CP             = core.CP
	MinStage       = core.MinStage
	MinStageInf    = core.MinStageInf
)

// New builds the Jockey runtime for a profiled job, running the offline
// simulations that populate the C(p, a) model.
func New(p *Profile, opts Options) (*Jockey, error) { return core.New(p, opts) }

// Control loop (package internal/control).
type (
	// Policy decides a job's guaranteed token allocation each period.
	Policy = control.Policy
	// Decision is one policy output.
	Decision = control.Decision
	// ControllerConfig parameterizes a standalone controller.
	ControllerConfig = control.Config
)

// NewController builds a standalone Jockey control loop from a predictor
// and a utility function; most callers use Jockey.Policy instead.
func NewController(cfg ControllerConfig) (Policy, error) {
	return control.NewController(cfg)
}

// NewMaxAllocationPolicy returns the max-allocation baseline.
func NewMaxAllocationPolicy(tokens int) (Policy, error) {
	return control.NewMaxAllocation(tokens)
}

// Model-staleness guard rails (package internal/control). Jockey.GuardedPolicy
// builds a ready-wired Guard for a profiled job; these aliases let callers
// tune it or assemble one from custom parts.
type (
	// Guard wraps a controller with deviation detection, online
	// re-profiling and the CPA → OnlineSim → Amdahl → max-allocation
	// fallback chain. Wire Guard.ObserveTask to JobConfig.OnTaskEvent.
	Guard = control.Guard
	// GuardTuning holds the guard's knobs; the zero value gives defaults.
	GuardTuning = control.GuardTuning
	// GuardConfig assembles a Guard from custom parts (see
	// Jockey.GuardConfig for the ready-wired path).
	GuardConfig = control.GuardConfig
	// GuardEvent is one logged guard transition (reprofile, fallback,
	// panic, recover).
	GuardEvent = control.GuardEvent
	// GuardMode is a rung of the fallback chain.
	GuardMode = control.GuardMode
	// BlendOptions tunes BlendProfiles.
	BlendOptions = profile.BlendOptions
)

// NewGuard builds the guard-rail layer around a controller; most callers use
// Jockey.GuardedPolicy instead.
func NewGuard(cfg GuardConfig) (*Guard, error) { return control.NewGuard(cfg) }

// BlendProfiles merges live task observations into a prior profile,
// count-weighted — the data path of online re-profiling, usable standalone
// for profile refresh between recurring runs.
func BlendProfiles(prior *Profile, live *JobTrace, opts BlendOptions) (*Profile, error) {
	return profile.Blend(prior, live, opts)
}

// Utility curves (package internal/utility).
type (
	// UtilityFn maps completion time to economic utility.
	UtilityFn = utility.Fn
	// PiecewiseLinear is a piecewise-linear utility curve.
	PiecewiseLinear = utility.PiecewiseLinear
)

// DeadlineUtility builds the paper's standard deadline curve.
func DeadlineUtility(d time.Duration) *PiecewiseLinear { return utility.Deadline(d) }

// SoftDeadlineUtility builds a non-penalizing soft-deadline curve.
func SoftDeadlineUtility(d, grace time.Duration) *PiecewiseLinear {
	return utility.SoftDeadline(d, grace)
}

// Shared-cluster simulator (package internal/cluster).
type (
	// Cluster is the discrete-event shared-cluster simulator.
	Cluster = cluster.Cluster
	// ClusterConfig describes the simulated cluster.
	ClusterConfig = cluster.Config
	// JobConfig submits one job.
	JobConfig = cluster.JobConfig
	// JobHandle refers to a submitted job.
	JobHandle = cluster.Handle
	// Result summarizes a completed job.
	Result = cluster.Result
	// DeadlineChange reschedules a job's SLO mid-run.
	DeadlineChange = cluster.DeadlineChange
	// StageDrift injects a mid-run service-time drift (ClusterConfig or
	// JobConfig perturbations).
	StageDrift = cluster.StageDrift
	// RackOutage takes a contiguous machine range down for a while.
	RackOutage = cluster.RackOutage
	// ContentionWindow caps the fraction of guaranteed tokens the
	// scheduler honors during a window.
	ContentionWindow = cluster.ContentionWindow
)

// NewCluster creates a shared-cluster simulator.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// Offline simulator and traces.
type (
	// JobTrace records one execution: task events and allocation timeline.
	JobTrace = trace.JobTrace
	// TaskEvent is one task attempt.
	TaskEvent = trace.TaskEvent
	// SimConfig parameterizes one offline simulation.
	SimConfig = sim.Config
	// Indicator estimates job progress from stage completion fractions.
	Indicator = progress.Indicator
	// State is the observable state of a running job.
	State = model.State
	// Predictor estimates remaining completion time.
	Predictor = model.Predictor
)

// Simulate runs the offline job simulator once and returns the trace.
func Simulate(cfg SimConfig) (*JobTrace, error) { return sim.Run(cfg) }

// SimRunner is a reusable simulation engine: the first Run against a job
// plan allocates the engine's arenas, subsequent Runs against the same
// plan reset them in place and are allocation-free. Results are
// bit-identical to Simulate. Not safe for concurrent use — hold one per
// goroutine. The returned trace and the snapshots handed to
// SimConfig.OnSample are valid only until the next Run.
type SimRunner = sim.Runner

// NewSimRunner creates a reusable simulation engine for loops that run
// many simulations of the same job (model sweeps, what-if analysis).
func NewSimRunner() *SimRunner { return sim.NewRunner() }

// Oracle returns the theoretical minimum allocation ⌈T/d⌉ for total work T
// and deadline d.
func Oracle(totalWork, deadline time.Duration) int { return model.Oracle(totalWork, deadline) }

// Arbiter is the admission-control component of §1: it commits
// guaranteed-token budget to SLO jobs and admits a new job only if every
// admitted job can still meet its deadline.
type Arbiter = core.Arbiter

// NewArbiter creates an admission-control arbiter over a guaranteed-token
// budget.
func NewArbiter(budget int) (*Arbiter, error) { return core.NewArbiter(budget) }

// ErrDuplicateAdmission reports an Arbiter.TryAdmit for a job id that is
// already admitted and not yet released. Match with errors.Is.
var ErrDuplicateAdmission = core.ErrDuplicateAdmission

// Fleet arbitration: the dynamic multi-job layer above the static Arbiter.
// FleetRun replays a deterministic stream of recurring SLO-job offers
// through admission, per-epoch utility-driven re-arbitration of the global
// token budget, and graceful degradation (deferral, rejection, guard-panic
// containment) under overload or faults.
type (
	// FleetConfig configures one fleet replay.
	FleetConfig = fleet.Config
	// FleetArbitration selects the arbitration discipline.
	FleetArbitration = fleet.Arbitration
	// FleetResult is the replay outcome with per-job records.
	FleetResult = fleet.Result
	// FleetJobRecord is one offer's full admission/arbitration history.
	FleetJobRecord = fleet.JobRecord
	// FleetEpochStats is the per-epoch observer payload.
	FleetEpochStats = fleet.EpochStats
	// FleetModelCache shares per-shape profiles and C(p, a) models across
	// jobs and replays.
	FleetModelCache = fleet.ModelCache
)

// Fleet arbitration disciplines.
const (
	FleetFIFO          = fleet.FIFO
	FleetFairShare     = fleet.FairShare
	FleetUtilityGreedy = fleet.UtilityGreedy
)

// FleetRun executes one deterministic fleet replay.
func FleetRun(cfg FleetConfig) (*FleetResult, error) { return fleet.Run(cfg) }

// NewFleetModelCache creates a shareable model cache for fleet replays. The
// cache is safe for concurrent use and its models depend only on the seed
// and job shape, never on warm-up order.
func NewFleetModelCache(seed uint64) *FleetModelCache { return fleet.NewModelCache(seed) }

// OnlineSimPredictor is the §4.4 enhancement: instead of indexing
// precomputed C(p, a) tables through a progress indicator, it re-runs the
// job simulator at control time from the job's actual per-stage state.
// More precise, far more expensive per decision.
type OnlineSimPredictor = model.OnlineSim

// NewOnlineSimPredictor builds the online predictor; runs forward
// simulations per (state, allocation) query. The forward runs of one query
// execute on a worker pool (see OnlineSimPredictor.SetParallelism); the
// predictions are bit-identical at any pool size.
func NewOnlineSimPredictor(p *Profile, runs int, seed uint64) (*OnlineSimPredictor, error) {
	return model.NewOnlineSim(p, runs, seed)
}

// ParseUtility builds a utility curve from its textual form:
// "deadline 60m", "soft 1h grace 30m", or "0:1, 60m:1, 70m:-1, 1060m:-1000".
func ParseUtility(s string) (*PiecewiseLinear, error) { return utility.Parse(s) }
