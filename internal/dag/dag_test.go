package dag

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// mapReduce builds the canonical two-stage plan the paper's Fig. 3 caption
// describes ("a black circle connected to a blue triangle").
func mapReduce(t testing.TB) *Job {
	t.Helper()
	j, err := NewBuilder("mapreduce").
		StageData("map", 100, 10).
		StageData("reduce", 10, 2).
		Edge("map", "reduce", AllToAll).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// diamond builds extract -> (left, right) -> join.
func diamond(t testing.TB) *Job {
	t.Helper()
	j, err := NewBuilder("diamond").
		Stage("extract", 50).
		Stage("left", 50).
		Stage("right", 25).
		Stage("join", 10).
		Edge("extract", "left", OneToOne).
		Edge("extract", "right", OneToOne).
		Edge("left", "join", AllToAll).
		Edge("right", "join", AllToAll).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestBuildBasics(t *testing.T) {
	j := mapReduce(t)
	if j.NumStages() != 2 {
		t.Fatalf("NumStages = %d", j.NumStages())
	}
	if j.TotalTasks() != 110 {
		t.Errorf("TotalTasks = %d", j.TotalTasks())
	}
	if got := j.TotalInputGB(); got != 12 {
		t.Errorf("TotalInputGB = %v", got)
	}
	if j.StageIndex("map") != 0 || j.StageIndex("reduce") != 1 {
		t.Error("StageIndex wrong")
	}
	if j.StageIndex("nope") != -1 {
		t.Error("unknown stage should be -1")
	}
	if !j.IsBarrier(1) || j.IsBarrier(0) {
		t.Error("barrier detection wrong")
	}
	if j.NumBarrierStages() != 1 {
		t.Errorf("NumBarrierStages = %d", j.NumBarrierStages())
	}
	if s := j.String(); !strings.Contains(s, "mapreduce") {
		t.Errorf("String = %q", s)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
		want string
	}{
		{"empty", NewBuilder("x"), "no stages"},
		{"dup stage", NewBuilder("x").Stage("a", 1).Stage("a", 1), "duplicate stage"},
		{"zero tasks", NewBuilder("x").Stage("a", 0), "at least 1"},
		{"empty name", NewBuilder("x").Stage("", 1), "empty name"},
		{"unknown from", NewBuilder("x").Stage("a", 1).Edge("b", "a", OneToOne), "unknown stage"},
		{"unknown to", NewBuilder("x").Stage("a", 1).Edge("a", "b", OneToOne), "unknown stage"},
		{"self edge", NewBuilder("x").Stage("a", 1).Edge("a", "a", OneToOne), "self-edge"},
		{"dup edge", NewBuilder("x").Stage("a", 1).Stage("b", 1).
			Edge("a", "b", OneToOne).Edge("a", "b", AllToAll), "duplicate edge"},
		{"cycle", NewBuilder("x").Stage("a", 1).Stage("b", 1).
			Edge("a", "b", OneToOne).Edge("b", "a", OneToOne), "cycle"},
	}
	for _, c := range cases {
		if _, err := c.b.Build(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestBuilderErrorSticks(t *testing.T) {
	b := NewBuilder("x").Stage("a", 0).Stage("b", 1).Edge("a", "b", OneToOne)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "at least 1") {
		t.Fatalf("first error must stick, got %v", err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on invalid plan")
		}
	}()
	NewBuilder("x").MustBuild()
}

func TestTopoOrder(t *testing.T) {
	j := diamond(t)
	pos := make(map[int]int)
	for i, s := range j.TopoOrder() {
		pos[s] = i
	}
	if len(pos) != 4 {
		t.Fatalf("topo order has %d entries", len(pos))
	}
	for _, e := range j.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %v violates topo order", e)
		}
	}
}

func TestRootsLeaves(t *testing.T) {
	j := diamond(t)
	if r := j.Roots(); len(r) != 1 || r[0] != j.StageIndex("extract") {
		t.Errorf("Roots = %v", r)
	}
	if l := j.Leaves(); len(l) != 1 || l[0] != j.StageIndex("join") {
		t.Errorf("Leaves = %v", l)
	}
}

func TestInputsOutputs(t *testing.T) {
	j := diamond(t)
	ex := j.StageIndex("extract")
	jn := j.StageIndex("join")
	if len(j.Outputs(ex)) != 2 || len(j.Inputs(ex)) != 0 {
		t.Error("extract adjacency wrong")
	}
	if len(j.Inputs(jn)) != 2 || len(j.Outputs(jn)) != 0 {
		t.Error("join adjacency wrong")
	}
}

func TestDepRangeOneToOneEqual(t *testing.T) {
	j, err := NewBuilder("x").Stage("a", 10).Stage("b", 10).Edge("a", "b", OneToOne).Build()
	if err != nil {
		t.Fatal(err)
	}
	e := j.Edges[0]
	for task := 0; task < 10; task++ {
		lo, hi := j.DepRange(e, task)
		if lo != task || hi != task+1 {
			t.Errorf("task %d: range [%d,%d), want identity", task, lo, hi)
		}
	}
}

func TestDepRangeFanIn(t *testing.T) {
	// 100 producers, 10 consumers: each consumer reads 10 producers.
	j, err := NewBuilder("x").Stage("a", 100).Stage("b", 10).Edge("a", "b", OneToOne).Build()
	if err != nil {
		t.Fatal(err)
	}
	e := j.Edges[0]
	covered := make([]bool, 100)
	for task := 0; task < 10; task++ {
		lo, hi := j.DepRange(e, task)
		if hi-lo != 10 {
			t.Errorf("task %d: width %d, want 10", task, hi-lo)
		}
		for i := lo; i < hi; i++ {
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Errorf("producer task %d not covered", i)
		}
	}
}

func TestDepRangeFanOut(t *testing.T) {
	// 3 producers, 10 consumers: every consumer depends on at least one
	// producer and ranges stay in bounds.
	j, err := NewBuilder("x").Stage("a", 3).Stage("b", 10).Edge("a", "b", OneToOne).Build()
	if err != nil {
		t.Fatal(err)
	}
	e := j.Edges[0]
	for task := 0; task < 10; task++ {
		lo, hi := j.DepRange(e, task)
		if lo < 0 || hi > 3 || hi <= lo {
			t.Errorf("task %d: bad range [%d,%d)", task, lo, hi)
		}
	}
}

func TestDepRangeAllToAll(t *testing.T) {
	j := mapReduce(t)
	e := j.Edges[0]
	lo, hi := j.DepRange(e, 3)
	if lo != 0 || hi != 100 {
		t.Errorf("all-to-all range [%d,%d), want [0,100)", lo, hi)
	}
}

func TestCriticalPath(t *testing.T) {
	j := diamond(t)
	cost := func(s int) time.Duration {
		// extract=10, left=20, right=5, join=7
		switch j.Stages[s].Name {
		case "extract":
			return 10 * time.Second
		case "left":
			return 20 * time.Second
		case "right":
			return 5 * time.Second
		default:
			return 7 * time.Second
		}
	}
	if got, want := j.CriticalPath(cost), 37*time.Second; got != want {
		t.Errorf("CriticalPath = %v, want %v", got, want)
	}
	lp := j.LongestPathsFrom(cost)
	if got, want := lp[j.StageIndex("right")], 12*time.Second; got != want {
		t.Errorf("LongestPathsFrom(right) = %v, want %v", got, want)
	}
	if got, want := lp[j.StageIndex("join")], 7*time.Second; got != want {
		t.Errorf("LongestPathsFrom(join) = %v, want %v", got, want)
	}
}

func TestDOT(t *testing.T) {
	j := mapReduce(t)
	dot := j.DOT()
	for _, want := range []string{"digraph", "triangle", "circle", `"map" -> "reduce"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestRebuildAfterDeserialization(t *testing.T) {
	orig := diamond(t)
	// Simulate a JSON round trip: only exported fields survive.
	clone := &Job{Name: orig.Name, Stages: append([]Stage(nil), orig.Stages...),
		Edges: append([]Edge(nil), orig.Edges...)}
	if err := clone.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if clone.StageIndex("join") != orig.StageIndex("join") {
		t.Error("byName not rebuilt")
	}
	if len(clone.TopoOrder()) != 4 {
		t.Error("topo not rebuilt")
	}
	if clone.NumBarrierStages() != orig.NumBarrierStages() {
		t.Error("adjacency not rebuilt")
	}
}

func TestRebuildRejectsBadGraphs(t *testing.T) {
	bad := &Job{Name: "x", Stages: []Stage{{Name: "a", Tasks: 1}, {Name: "b", Tasks: 1}},
		Edges: []Edge{{From: 0, To: 5, Kind: OneToOne}}}
	if err := bad.Rebuild(); err == nil {
		t.Error("out-of-range edge must fail")
	}
	cyc := &Job{Name: "x", Stages: []Stage{{Name: "a", Tasks: 1}, {Name: "b", Tasks: 1}},
		Edges: []Edge{{From: 0, To: 1, Kind: OneToOne}, {From: 1, To: 0, Kind: OneToOne}}}
	if err := cyc.Rebuild(); err == nil {
		t.Error("cycle must fail")
	}
	dup := &Job{Name: "x", Stages: []Stage{{Name: "a", Tasks: 1}, {Name: "a", Tasks: 1}}}
	if err := dup.Rebuild(); err == nil {
		t.Error("duplicate names must fail")
	}
	selfe := &Job{Name: "x", Stages: []Stage{{Name: "a", Tasks: 1}},
		Edges: []Edge{{From: 0, To: 0}}}
	if err := selfe.Rebuild(); err == nil {
		t.Error("self edge must fail")
	}
	zero := &Job{Name: "x", Stages: []Stage{{Name: "a", Tasks: 0}}}
	if err := zero.Rebuild(); err == nil {
		t.Error("zero tasks must fail")
	}
	if err := (&Job{Name: "x"}).Rebuild(); err == nil {
		t.Error("no stages must fail")
	}
}

func TestEdgeKindString(t *testing.T) {
	if OneToOne.String() != "one-to-one" || AllToAll.String() != "all-to-all" {
		t.Error("EdgeKind strings wrong")
	}
	if EdgeKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

// randomLayeredJob produces a random valid layered DAG for property tests.
func randomLayeredJob(r *rand.Rand) *Job {
	layers := 2 + r.IntN(5)
	b := NewBuilder("rand")
	var names [][]string
	for l := 0; l < layers; l++ {
		width := 1 + r.IntN(4)
		var layer []string
		for w := 0; w < width; w++ {
			name := string(rune('a'+l)) + string(rune('0'+w))
			b.Stage(name, 1+r.IntN(200))
			layer = append(layer, name)
		}
		names = append(names, layer)
	}
	for l := 1; l < layers; l++ {
		for _, to := range names[l] {
			// Each stage gets at least one input from the previous layer.
			from := names[l-1][r.IntN(len(names[l-1]))]
			kind := OneToOne
			if r.IntN(3) == 0 {
				kind = AllToAll
			}
			b.Edge(from, to, kind)
		}
	}
	return b.MustBuild()
}

func TestRandomJobsInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, seed))
		j := randomLayeredJob(r)
		// Topo order must be a permutation respecting all edges.
		pos := make(map[int]int)
		for i, s := range j.TopoOrder() {
			if _, dup := pos[s]; dup {
				return false
			}
			pos[s] = i
		}
		if len(pos) != j.NumStages() {
			return false
		}
		for _, e := range j.Edges {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		// Every consumer task's dep range must be within producer bounds.
		for _, e := range j.Edges {
			for task := 0; task < j.Stages[e.To].Tasks; task++ {
				lo, hi := j.DepRange(e, task)
				if lo < 0 || hi > j.Stages[e.From].Tasks || hi <= lo {
					return false
				}
			}
		}
		// Critical path with unit costs is between 1 and #stages.
		cp := j.CriticalPath(func(int) time.Duration { return time.Second })
		return cp >= time.Second && cp <= time.Duration(j.NumStages())*time.Second
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
