// Package grid executes a grid of independent tasks — the (job × seed ×
// knob × policy) fan-out every experiment in this repository is made of —
// across a bounded worker pool, deterministically.
//
// The determinism contract (DESIGN.md, "The grid executor") is the same
// discipline internal/model uses for parallel C(p, a) construction, applied
// one level up:
//
//   - every task has a unique string key; its seed is derived as
//     stats.DeriveSeed(master, key), never from worker identity or
//     scheduling order;
//   - workers claim tasks with an atomic counter, so the set of claimed
//     indices is always a prefix of the task list;
//   - results are merged in task-index order, so the returned slice is
//     bit-identical at any worker count, including 1.
//
// Tasks additionally receive their worker index so callers can give each
// worker private scratch state (a reusable cluster.Engine, for example)
// without synchronization: a worker runs one task at a time.
package grid

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/jockeysim/jockey/internal/stats"
)

// Task is one grid point.
type Task[T any] struct {
	// Key identifies the task; it must be unique within one Run call. The
	// task's seed is stats.DeriveSeed(master, Key), so the key — not the
	// execution order — determines the task's randomness.
	Key string
	// Run executes the task. seed is the task's derived seed; worker is the
	// index of the executing worker in [0, Workers(parallelism, len(tasks))),
	// for callers that keep per-worker scratch state. ctx is canceled when
	// another task fails; long tasks may check it to stop early.
	Run func(ctx context.Context, seed uint64, worker int) (T, error)
}

// Workers resolves a parallelism knob against a task count: 0 (or negative)
// means runtime.GOMAXPROCS(0), and the pool is never larger than the number
// of tasks nor smaller than 1. Callers sizing per-worker state should use
// this so their slice matches the pool Run actually creates.
func Workers(parallelism, tasks int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > tasks {
		parallelism = tasks
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return parallelism
}

// Run executes all tasks and returns their results in task order. Results
// are bit-identical at any parallelism (given tasks that honor their seed
// discipline); see the package comment for the contract.
//
// On failure Run cancels the context passed to still-running tasks, stops
// claiming new tasks, waits for in-flight tasks, and returns the error of
// the lowest-index failed task it observed. When several tasks fail, which
// failures are observed (rather than skipped) can depend on the worker
// count, so only a nil error makes the results meaningful. If ctx is
// canceled externally, Run returns ctx's error.
func Run[T any](ctx context.Context, master uint64, parallelism int, tasks []Task[T]) ([]T, error) {
	if len(tasks) == 0 {
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, len(tasks))
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		errIdx   int
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
		mu.Unlock()
		cancel()
	}

	workers := Workers(parallelism, len(tasks))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(tasks) || ctx.Err() != nil {
					return
				}
				v, err := tasks[i].Run(ctx, stats.DeriveSeed(master, tasks[i].Key), worker)
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = v
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
