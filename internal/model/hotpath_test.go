package model

// Regression tests for the allocation-free query path: presorted cells
// must answer quantile queries bit-identically to the old copy-and-sort-
// per-query implementation, tables must stay bit-identical across worker
// counts (including the reused-engine fan-out), and the steady-state query
// path must not allocate.

import (
	"sort"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
)

// referenceRemaining reimplements the pre-presort Remaining: copy the
// cell, sort the copy, interpolate. Equivalence with the zero-copy path
// follows from cells being sorted at build time — this test keeps that
// reasoning honest.
func referenceRemaining(c *CPA, st State, a int, q float64) time.Duration {
	samples := c.samplesAt(c.Progress(st), a)
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return stats.QuantileDurations(sorted, q)
}

func TestPresortedQuantilesMatchReference(t *testing.T) {
	p := noisyProfile(t)
	c := buildCPAWithParallelism(t, 4)
	for _, a := range []int{1, 2, 5, 15, 40, 100} {
		for _, frac := range []float64{0, 0.1, 0.33, 0.5, 0.77, 0.99, 1} {
			st := State{FracDone: []float64{frac, frac}}
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 1} {
				got := c.Remaining(st, a, q)
				want := referenceRemaining(c, st, a, q)
				if got != want {
					t.Fatalf("Remaining(frac=%v, a=%d, q=%v) = %v; copy-and-sort reference = %v",
						frac, a, q, got, want)
				}
			}
		}
	}
	_ = p
}

// TestCPACellsSortedAscending: every non-empty cell must be sorted after
// BuildCPA — the invariant Remaining's direct indexing depends on.
func TestCPACellsSortedAscending(t *testing.T) {
	c := buildCPAWithParallelism(t, 2)
	for ai := range c.cells {
		for b := range c.cells[ai] {
			vs := c.cells[ai][b].Values()
			for i := 1; i < len(vs); i++ {
				if vs[i-1] > vs[i] {
					t.Fatalf("cell (a=%d, b=%d) unsorted at %d: %v > %v",
						c.allocs[ai], b, i, vs[i-1], vs[i])
				}
			}
		}
	}
}

// TestCPABitIdenticalAcrossParallelism extends the PR-1 determinism pin to
// the reused-engine fan-out at the issue's required worker counts: the
// retained samples of every cell, and the quantiles read from them, must
// be bit-identical at parallelism 1, 4 and 8.
func TestCPABitIdenticalAcrossParallelism(t *testing.T) {
	seq := buildCPAWithParallelism(t, 1)
	for _, par := range []int{4, 8} {
		c := buildCPAWithParallelism(t, par)
		for ai := range seq.cells {
			for b := range seq.cells[ai] {
				sv, cv := seq.cells[ai][b].Values(), c.cells[ai][b].Values()
				if len(sv) != len(cv) {
					t.Fatalf("par %d: cell (a=%d, b=%d) has %d samples, want %d",
						par, seq.allocs[ai], b, len(cv), len(sv))
				}
				for i := range sv {
					if sv[i] != cv[i] {
						t.Fatalf("par %d: cell (a=%d, b=%d)[%d] = %v, want %v",
							par, seq.allocs[ai], b, i, cv[i], sv[i])
					}
				}
			}
		}
	}
}

// TestOnlineSimBitIdenticalAcrossParallelism: same pin for the online
// predictor's per-worker reused engines at parallelism 1, 4, 8.
func TestOnlineSimBitIdenticalAcrossParallelism(t *testing.T) {
	p := noisyProfile(t)
	build := func(par int) *OnlineSim {
		o, err := NewOnlineSim(p, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		o.SetParallelism(par)
		return o
	}
	states := []State{
		{FracDone: []float64{0, 0}},
		{Elapsed: 3 * time.Minute, FracDone: []float64{0.5, 0}},
		{Elapsed: 11 * time.Minute, FracDone: []float64{1, 0.75}},
	}
	seq := build(1)
	for _, par := range []int{4, 8} {
		o := build(par)
		for _, st := range states {
			for _, a := range []int{1, 6, 30} {
				for _, q := range []float64{0, 0.5, 0.95, 1} {
					if got, want := o.Remaining(st, a, q), seq.Remaining(st, a, q); got != want {
						t.Fatalf("par %d: Remaining(a=%d, q=%v) = %v, want %v", par, a, q, got, want)
					}
				}
			}
		}
	}
}

// TestCPAQueryZeroAllocs pins the acceptance criterion: steady-state
// Remaining and ExpectedUtility queries perform zero allocations.
func TestCPAQueryZeroAllocs(t *testing.T) {
	p := noisyProfile(t)
	c := buildTestCPA(t, p, []int{2, 5, 15, 40})
	st := State{Elapsed: 5 * time.Minute, FracDone: []float64{0.5, 0.25}}
	u := utility.Deadline(20 * time.Minute)
	var sink time.Duration
	allocs := testing.AllocsPerRun(100, func() {
		sink = c.Remaining(st, 15, 0.9)
	})
	if allocs != 0 {
		t.Errorf("Remaining = %v allocs/run, want 0", allocs)
	}
	var fsink float64
	allocs = testing.AllocsPerRun(100, func() {
		fsink = c.ExpectedUtility(st, 15, 1.2, u)
	})
	if allocs != 0 {
		t.Errorf("ExpectedUtility = %v allocs/run, want 0", allocs)
	}
	_, _ = sink, fsink
}

// TestOnlineSimMemoHitZeroAllocs: within one control tick (unchanged
// state), repeated queries for an already-simulated allocation must not
// allocate — the binary state key is built into a reused buffer and the
// sample slice comes from the memo.
func TestOnlineSimMemoHitZeroAllocs(t *testing.T) {
	p := noisyProfile(t)
	o, err := NewOnlineSim(p, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := State{Elapsed: time.Minute, FracDone: []float64{0.25, 0}}
	o.Remaining(st, 10, 0.5) // fill the memo
	var sink time.Duration
	allocs := testing.AllocsPerRun(100, func() {
		sink = o.Remaining(st, 10, 0.5)
	})
	if allocs != 0 {
		t.Errorf("memo-hit Remaining = %v allocs/run, want 0", allocs)
	}
	_ = sink
}

// TestOnlineSimSeedKeyFormat pins the seed-label string to the legacy
// format: the binary memo key is an optimization and must not shift the
// derived seeds (which would silently change every online prediction).
func TestOnlineSimSeedKeyFormat(t *testing.T) {
	p := noisyProfile(t)
	o, err := NewOnlineSim(p, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := State{Elapsed: 90 * time.Second, FracDone: []float64{0.5115, 0.25}}
	o.refreshMemo(st)
	// Legacy: 3 bytes (v>>8, v, ',') per stage, then fmt.Sprint(seconds).
	legacy := func(st State) string {
		out := make([]byte, 0, len(st.FracDone)*3)
		for _, f := range st.FracDone {
			v := int(f * 1000)
			out = append(out, byte(v>>8), byte(v), ',')
		}
		return string(out) + "90"
	}
	if o.seedKey != legacy(st) {
		t.Fatalf("seedKey = %q, want legacy format %q", o.seedKey, legacy(st))
	}
}

// BenchmarkCPAQuery measures the controller-facing query path on a built
// table. The acceptance criterion is 0 allocs/op for Remaining (it was 3
// allocs/op via copy+sort before presorting).
func BenchmarkCPAQuery(b *testing.B) {
	p := noisyProfile(b)
	c := buildTestCPA(b, p, []int{2, 5, 15, 40})
	st := State{Elapsed: 5 * time.Minute, FracDone: []float64{0.5, 0.25}}
	u := utility.Deadline(20 * time.Minute)
	b.Run("Remaining", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Remaining(st, 15, 0.9)
		}
	})
	b.Run("ExpectedUtility", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.ExpectedUtility(st, 15, 1.2, u)
		}
	})
}

// BenchmarkOnlineSimTick measures one full control tick of the online
// predictor (all candidate allocations at one state) with reused
// per-worker engines, plus the memo-hit fast path.
func BenchmarkOnlineSimTick(b *testing.B) {
	p := noisyProfile(b)
	o, err := NewOnlineSim(p, 8, 7)
	if err != nil {
		b.Fatal(err)
	}
	o.SetParallelism(1)
	u := utility.Deadline(20 * time.Minute)
	b.Run("tick", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Vary elapsed so every iteration is a fresh state (a real tick).
			st := State{Elapsed: time.Duration(i) * time.Second, FracDone: []float64{0.5, 0.25}}
			for _, a := range []int{2, 5, 15, 40} {
				o.ExpectedUtility(st, a, 1.2, u)
			}
		}
	})
	b.Run("memo-hit", func(b *testing.B) {
		st := State{Elapsed: time.Minute, FracDone: []float64{0.5, 0.25}}
		o.ExpectedUtility(st, 15, 1.2, u)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.ExpectedUtility(st, 15, 1.2, u)
		}
	})
}
