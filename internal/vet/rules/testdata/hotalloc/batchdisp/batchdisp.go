// Fixture: hotalloc over batch-dispatch idiom — the arrival-burst shape
// internal/cluster's scheduling pass uses. Task-end events buffer into a
// struct-owned batch slice and flush through one bulk insert (allowed:
// amortized appends, in-place reslice), while per-pass fresh buffers and
// per-event boxing are what the gate must flag.
package batchdisp

type event struct {
	at   int64
	task int
}

type queue struct {
	items []event
}

func (q *queue) pushBatch(es []event) {
	q.items = append(q.items, es...)
}

type engine struct {
	q     queue
	batch []event
	byAt  map[int64][]event
}

//jockey:hotpath
func (e *engine) start(task int, at int64) {
	// Allowed: the batch buffer is owned by the engine and appends
	// amortize into its standing capacity.
	e.batch = append(e.batch, event{at: at, task: task})
}

//jockey:hotpath
func (e *engine) flush() {
	// Allowed: one bulk insert, then an in-place reslice for the next pass.
	if len(e.batch) > 0 {
		e.q.pushBatch(e.batch)
		e.batch = e.batch[:0]
	}
}

//jockey:hotpath
func (e *engine) flushFresh(tasks []int, at int64) {
	batch := make([]event, 0, len(tasks)) // want `make allocates`
	for _, task := range tasks {
		batch = append(batch, event{at: at, task: task}) // want `append to a local slice allocates`
	}
	e.q.pushBatch(batch)
}

//jockey:hotpath
func (e *engine) stageByTime(ev event) {
	// Map staging slips past the gate (appends into an owned container
	// amortize), but it forfeits the insertion order the queue's sequence
	// numbers pin — kept here to document the boundary, not a violation.
	e.byAt[ev.at] = append(e.byAt[ev.at], ev)
}

//jockey:hotpath
func (e *engine) boxed(ev event) any {
	var v any = ev // want `boxes it`
	return v
}

// Pre-sizing the batch buffer at init is cold and may allocate freely.
func (e *engine) coldInit(slots int) {
	e.batch = make([]event, 0, slots)
}
