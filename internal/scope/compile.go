package scope

import (
	"github.com/jockeysim/jockey/internal/dag"
)

// Default task counts when a statement omits TASKS.
const (
	DefaultExtractTasks = 25
	DefaultReduceFactor = 4 // reduce gets input tasks / 4, at least 1
)

// Compile parses and lowers a script to an execution plan.
//
// Lowering rules (mirroring how SCOPE operators map to Dryad stages):
//
//   - EXTRACT becomes a root stage.
//   - PROCESS becomes a stage with a one-to-one edge from its input: its
//     tasks pipeline as input partitions complete.
//   - REDUCE and AGGREGATE become stages with an all-to-all edge (a full
//     shuffle): they are barriers.
//   - JOIN becomes a stage with an all-to-all edge from every input.
//   - OUTPUT marks a dataset as a job output; it creates no stage. Every
//     dataset must flow into an output (dead stages are a compile error),
//     and every script needs at least one OUTPUT.
func Compile(src string) (*dag.Job, error) {
	s, err := parse(src)
	if err != nil {
		return nil, err
	}
	b := dag.NewBuilder(s.jobName)
	defined := map[string]*stmt{} // dataset -> defining statement
	used := map[string]bool{}     // dataset consumed by another stage or output
	outputs := 0

	for i := range s.stmts {
		st := &s.stmts[i]
		if st.op == opOutput {
			if defined[st.name] == nil {
				return nil, errf(st.line, "OUTPUT of undefined dataset %q", st.name)
			}
			used[st.name] = true
			outputs++
			continue
		}
		if defined[st.name] != nil {
			return nil, errf(st.line, "dataset %q defined twice", st.name)
		}
		for _, in := range st.inputs {
			def := defined[in]
			if def == nil {
				return nil, errf(st.line, "%s %q reads undefined dataset %q (datasets must be defined before use)",
					st.op, st.name, in)
			}
			used[in] = true
		}
		defined[st.name] = st
		b.StageData(st.name, taskCount(st, defined), st.sizeGB)
		for _, in := range st.inputs {
			b.Edge(in, st.name, edgeKind(st.op))
		}
	}
	if outputs == 0 {
		return nil, errf(s.stmts[len(s.stmts)-1].line, "script has no OUTPUT statement")
	}
	for name, st := range defined {
		if !used[name] {
			return nil, errf(st.line, "dataset %q is never consumed or output (dead stage)", name)
		}
	}
	return b.Build()
}

func taskCount(st *stmt, defined map[string]*stmt) int {
	if st.tasks > 0 {
		return st.tasks
	}
	switch st.op {
	case opExtract:
		return DefaultExtractTasks
	case opProcess:
		// Inherit the input's parallelism.
		return taskCount(defined[st.inputs[0]], defined)
	case opReduce:
		n := taskCount(defined[st.inputs[0]], defined) / DefaultReduceFactor
		if n < 1 {
			n = 1
		}
		return n
	case opJoin:
		// Default to the smaller input's parallelism.
		n := taskCount(defined[st.inputs[0]], defined)
		for _, in := range st.inputs[1:] {
			if m := taskCount(defined[in], defined); m < n {
				n = m
			}
		}
		return n
	case opAggregate:
		return 1
	default:
		return 1
	}
}

func edgeKind(op opKind) dag.EdgeKind {
	if op == opProcess {
		return dag.OneToOne
	}
	return dag.AllToAll
}
