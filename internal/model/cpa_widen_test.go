package model

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/progress"
	"github.com/jockeysim/jockey/internal/stats"
)

// widenCPA hand-builds a 10-bucket, single-allocation table with samples
// only in the listed buckets, so each widening boundary can be exercised
// precisely. Bucket b holds the single value (b+1) seconds, making the
// returned samples identify which cell satisfied the query.
func widenCPA(t *testing.T, filled ...int) *CPA {
	t.Helper()
	const buckets = 10
	c := &CPA{
		indicator: progress.NewTotalWork(detProfile(t)),
		allocs:    []int{4},
		buckets:   buckets,
		cells:     [][]*stats.Reservoir{make([]*stats.Reservoir, buckets+1)},
	}
	rng := stats.NewRNG(1)
	for b := range c.cells[0] {
		c.cells[0][b] = stats.NewReservoir(4)
	}
	for _, b := range filled {
		c.cells[0][b].Add(time.Duration(b+1)*time.Second, rng)
	}
	return c
}

func TestSamplesAtWidening(t *testing.T) {
	cases := []struct {
		name   string
		filled []int
		p      float64
		want   time.Duration // 0 means "no samples anywhere"
	}{
		{name: "exact hit, no widening", filled: []int{5}, p: 0.55, want: 6 * time.Second},
		{name: "all cells empty", filled: nil, p: 0.5, want: 0},
		{name: "p=0 hits bucket 0", filled: []int{0}, p: 0, want: 1 * time.Second},
		{name: "p=0 widens upward", filled: []int{3}, p: 0, want: 4 * time.Second},
		{name: "p=1 hits the terminal bucket", filled: []int{10}, p: 1, want: 11 * time.Second},
		{name: "p=1 widens downward", filled: []int{7}, p: 1, want: 8 * time.Second},
		{name: "p beyond 1 clamps then widens", filled: []int{2}, p: 3.7, want: 3 * time.Second},
		{name: "negative p clamps to bucket 0", filled: []int{0, 10}, p: -0.4, want: 1 * time.Second},
		{name: "tie prefers the lower (pessimistic) bucket", filled: []int{4, 6}, p: 0.55, want: 5 * time.Second},
		{name: "nearest non-empty wins over farther lower", filled: []int{1, 6}, p: 0.55, want: 7 * time.Second},
		{name: "progress beyond all samples widens to the last populated cell",
			filled: []int{2}, p: 0.95, want: 3 * time.Second},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			c := widenCPA(t, cse.filled...)
			got := c.samplesAt(cse.p, 4)
			if cse.want == 0 {
				if got != nil {
					t.Fatalf("samplesAt(%v) = %v, want nil", cse.p, got)
				}
				return
			}
			if len(got) != 1 || got[0] != cse.want {
				t.Fatalf("samplesAt(%v) = %v, want [%v]", cse.p, got, cse.want)
			}
		})
	}
}

// TestSamplesAtEmptyTableQuantiles: the public entry points must degrade
// gracefully (zero remaining, bare elapsed utility) when the whole table is
// empty rather than panic or return junk.
func TestSamplesAtEmptyTableQuantiles(t *testing.T) {
	c := widenCPA(t)
	st := State{Elapsed: time.Minute, FracDone: []float64{0.5, 0.5}}
	if got := c.Remaining(st, 4, 0.9); got != 0 {
		t.Errorf("Remaining on empty table = %v, want 0", got)
	}
}
