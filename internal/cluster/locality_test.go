package cluster

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
)

func localityJob(t testing.TB, tasks int) *profile.Profile {
	t.Helper()
	job := dag.NewBuilder("loc").
		Stage("extract", tasks).
		Stage("agg", tasks/10+1).
		Edge("extract", "agg", dag.AllToAll).
		MustBuild()
	return profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 20 * time.Second}},
		{Exec: stats.Point{V: 10 * time.Second}},
	})
}

func TestLocalityHighOnIdleCluster(t *testing.T) {
	// Alone on an under-subscribed cluster, a job's root tasks should land
	// on their replica machines almost always (3 replicas × 4 slots each
	// give every task 12 preferred slots).
	c, _ := New(Config{Machines: 20, SlotsPerMachine: 4, Seed: 1})
	h, err := c.Submit(JobConfig{Profile: localityJob(t, 60), Guarantee: 20,
		Deadline: time.Hour, Tracked: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := h.Result().LocalityFraction; got < 0.8 {
		t.Errorf("idle-cluster locality = %.2f, want >= 0.8", got)
	}
}

func TestLocalityDegradesUnderContention(t *testing.T) {
	// The same job on a cluster crammed with other work loses locality:
	// its guaranteed tasks must take whatever slots are free.
	runLoc := func(withLoad bool) float64 {
		c, _ := New(Config{Machines: 20, SlotsPerMachine: 4, Seed: 2})
		if withLoad {
			for i := 0; i < 6; i++ {
				bg := profile.MustNew(
					dag.NewBuilder("bg"+string(rune('0'+i))).Stage("work", 2000).MustBuild(),
					[]profile.StageProfile{{Exec: stats.Point{V: 30 * time.Second}}})
				if _, err := c.Submit(JobConfig{Profile: bg, Guarantee: 12}); err != nil {
					t.Fatal(err)
				}
			}
		}
		h, err := c.Submit(JobConfig{Profile: localityJob(t, 60), Guarantee: 8,
			Deadline: 2 * time.Hour, Tracked: true, Start: 5 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return h.Result().LocalityFraction
	}
	idle := runLoc(false)
	loaded := runLoc(true)
	if loaded >= idle {
		t.Errorf("locality should degrade under contention: idle %.2f vs loaded %.2f", idle, loaded)
	}
}

func TestReplicaMachinesDeterministicAndBounded(t *testing.T) {
	c, _ := New(Config{Machines: 7, SlotsPerMachine: 1, Replicas: 3, Seed: 1})
	p := localityJob(t, 10)
	h, _ := c.Submit(JobConfig{Profile: p, Guarantee: 7, Tracked: true})
	_ = h
	jr := c.jobs[0]
	for task := 0; task < 10; task++ {
		a := c.replicaMachines(jr, 0, task)
		b := c.replicaMachines(jr, 0, task)
		if len(a) != 3 {
			t.Fatalf("task %d: %d replicas", task, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("replica placement not deterministic")
			}
			if a[i] < 0 || a[i] >= 7 {
				t.Fatalf("replica %d out of range", a[i])
			}
		}
	}
	// Non-root stages have no DFS partitions.
	if got := c.replicaMachines(jr, 1, 0); got != nil {
		t.Errorf("non-root stage has replicas: %v", got)
	}
	// Single-machine cluster must not divide by zero.
	c1, _ := New(Config{Machines: 1, SlotsPerMachine: 2, Seed: 1})
	c1.Submit(JobConfig{Profile: p, Guarantee: 1, Tracked: true})
	if got := c1.replicaMachines(c1.jobs[0], 0, 3); len(got) != 1 || got[0] != 0 {
		t.Errorf("single-machine replicas = %v", got)
	}
}

func TestReplicasValidation(t *testing.T) {
	if _, err := New(Config{Replicas: -2}); err == nil {
		t.Error("negative replicas must fail")
	}
}
