// Deadlinechange: reacting to an SLO that moves while the job runs.
//
// The scenario of Fig. 7 in the paper: ten minutes into a run the deadline
// is first halved (an upstream consumer suddenly needs the output sooner),
// then — in a second run — doubled (the consumer slipped). Jockey must meet
// the new deadline in both cases, ramping the allocation up for the cut and
// releasing guaranteed tokens for the extension so other SLO jobs can use
// them.
//
// Run with:
//
//	go run ./examples/deadlinechange
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/jockeysim/jockey"
)

func buildProfile() *jockey.Profile {
	job := jockey.NewJobBuilder("nightly-model").
		Stage("features", 300).
		Stage("train", 40).
		Stage("validate", 8).
		Edge("features", "train", jockey.AllToAll).
		Edge("train", "validate", jockey.AllToAll).
		MustBuild()
	return jockey.MustNewProfile(job, []jockey.StageProfile{
		{Exec: jockey.LognormalFromMedian(25*time.Second, 70*time.Second),
			Queue: jockey.Exponential{MeanValue: 2 * time.Second}, FailureProb: 0.01},
		{Exec: jockey.LognormalFromMedian(60*time.Second, 2*time.Minute),
			Queue: jockey.Exponential{MeanValue: 2 * time.Second}},
		{Exec: jockey.LognormalFromMedian(30*time.Second, time.Minute)},
	})
}

func runScenario(name string, factor float64) {
	prof := buildProfile()
	jk, err := jockey.New(prof, jockey.Options{MaxTokens: 80, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	deadline := 40 * time.Minute
	newDeadline := time.Duration(float64(deadline) * factor)
	pol, err := jk.Policy(deadline)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := jockey.NewCluster(jockey.ClusterConfig{
		Machines:        25,
		SlotsPerMachine: 4,
		Seed:            9,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Background pressure so the allocation decisions matter: many tenants
	// with pending work split the spare capacity thinly.
	for i := 0; i < 8; i++ {
		noise := jockey.NewJobBuilder(fmt.Sprintf("tenant%d", i)).Stage("batch", 2000).MustBuild()
		nprof := jockey.MustNewProfile(noise, []jockey.StageProfile{
			{Exec: jockey.LognormalFromMedian(25*time.Second, 80*time.Second)},
		})
		if _, err := cl.Submit(jockey.JobConfig{Profile: nprof, Guarantee: 2}); err != nil {
			log.Fatal(err)
		}
	}

	h, err := cl.Submit(jockey.JobConfig{
		Profile:  prof,
		Policy:   pol,
		Deadline: deadline,
		Tracked:  true,
		DeadlineChanges: []jockey.DeadlineChange{
			{At: 6 * time.Minute, Deadline: newDeadline},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
	r := h.Result()

	fmt.Printf("--- %s: %v -> %v at t=6min ---\n", name, deadline, newDeadline)
	var beforeMax, afterMax int
	for _, p := range r.Trace.Timeline {
		if p.T < 6*time.Minute {
			if p.Granted > beforeMax {
				beforeMax = p.Granted
			}
		} else if p.Granted > afterMax {
			afterMax = p.Granted
		}
	}
	fmt.Printf("max granted allocation: %d before the change, %d after\n", beforeMax, afterMax)
	fmt.Printf("finished in %v — new deadline met: %v\n\n", r.Completion.Round(time.Second), r.Met)
}

func main() {
	runScenario("deadline cut in half", 0.5)
	runScenario("deadline doubled", 2.0)
}
