package experiments

import "testing"

// The fleet robustness grid must render byte-identically at any grid
// parallelism: cells share one model cache and per-worker engines, and
// none of that sharing may leak into the results.
func TestFleetRobustnessBitIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet grid in -short mode")
	}
	var want string
	for _, par := range []int{1, 4, 8} {
		env := NewEnv(1)
		env.GridParallel = par
		res, err := FleetRobustness(env)
		if err != nil {
			t.Fatalf("FleetRobustness(parallel=%d): %v", par, err)
		}
		got := res.Render()
		if par == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("fleet grid differs at parallel=%d:\n%s\n--- want ---\n%s", par, got, want)
		}
	}
}

// The headline acceptance claim: under overload plus a rack outage,
// guarded utility-greedy arbitration misses strictly fewer deadlines than
// FIFO admission, and never at a utility cost. Comparisons are paired —
// both disciplines face the identical offer streams.
func TestFleetRobustnessGuardedBeatsFIFOUnderOverloadOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet grid in -short mode")
	}
	env := NewEnv(1)
	res, err := FleetRobustness(env)
	if err != nil {
		t.Fatalf("FleetRobustness: %v", err)
	}
	const scenario = "load-3x/rack-outage"
	fifo := res.Row(scenario, "fifo")
	guarded := res.Row(scenario, "utility-greedy+guard")
	if fifo == nil || guarded == nil {
		t.Fatalf("grid is missing the %s cells:\n%s", scenario, res.Render())
	}
	if guarded.Missed >= fifo.Missed {
		t.Fatalf("guarded utility-greedy missed %d deadlines, FIFO %d — want strictly fewer:\n%s",
			guarded.Missed, fifo.Missed, res.Render())
	}
	if guarded.MeanUtility <= fifo.MeanUtility {
		t.Errorf("guarded utility-greedy utility %+.2f not above FIFO's %+.2f:\n%s",
			guarded.MeanUtility, fifo.MeanUtility, res.Render())
	}
	// Tally sanity across the whole grid.
	for _, row := range res.Rows {
		if row.Admitted+row.Rejected != row.Offers {
			t.Errorf("%s/%s: admitted %d + rejected %d != offers %d",
				row.Scenario, row.Discipline, row.Admitted, row.Rejected, row.Offers)
		}
		if row.Met+row.Missed != row.Offers {
			t.Errorf("%s/%s: met %d + missed %d != offers %d",
				row.Scenario, row.Discipline, row.Met, row.Missed, row.Offers)
		}
		misses := row.MissAdmission + row.MissArbitration + row.MissGuard + row.MissModel
		if misses != row.Missed {
			t.Errorf("%s/%s: attribution tallies %d don't cover %d misses",
				row.Scenario, row.Discipline, misses, row.Missed)
		}
	}
}
