// Fixture: a helper package OUTSIDE the deterministic set. Nothing is
// reported here — but seedflow still computes facts, so deterministic
// packages calling these helpers inherit the obligations: Gen is a seed
// consumer (its parameter reaches rand.NewPCG), Mix is a propagating
// deriver, and Next launders entropy through mutable package state and is
// tracked as neither.
package seedhelp

import (
	"math/rand/v2"

	"github.com/jockeysim/jockey/internal/stats"
)

// Gen builds a generator from a caller-supplied seed: a cross-package seed
// consumer.
func Gen(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
}

// Mix forwards through the stats chain: derived out iff derived in.
func Mix(seed uint64) uint64 {
	return stats.SplitMix64(seed)
}

var counter uint64

// Next is a laundering helper: its result is fresh mutable state, not a
// value derived from any master seed, so seedflow refuses to track it.
func Next() uint64 {
	counter++
	return counter
}
