package fleet

import (
	"fmt"
	"sync"

	"github.com/jockeysim/jockey/internal/core"
	"github.com/jockeysim/jockey/internal/grid"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/workload"
)

// Shape identifies a recurring-job family: the plan (task count, optional
// reduce barrier) comes from the canonical background shapes of
// workload.BackgroundPool, and Scale is the quantized input-size multiplier
// of this recurrence. Two jobs with the same Shape share one profile pointer
// and one C(p, a) model.
type Shape struct {
	// Tasks is the map-stage task count.
	Tasks int
	// Barrier adds an all-to-all reduce stage.
	Barrier bool
	// Scale multiplies the shape's service times (0 and 1 both mean
	// unscaled). Scales are quantized so the model cache stays small.
	Scale float64
}

// Key is the cache key and display name of the shape.
func (s Shape) Key() string {
	name := fmt.Sprintf("bg-%d", s.Tasks)
	if s.Barrier {
		name = fmt.Sprintf("bgb-%d", s.Tasks)
	}
	if s.Scale != 0 && s.Scale != 1 {
		name = fmt.Sprintf("%s@x%.2g", name, s.Scale)
	}
	return name
}

// ModelCache is the cross-job C(p, a) and profile store of the fleet
// arbiter (ROADMAP item 1): Jockey models are keyed on job *shape*, not job
// identity, so a fleet of recurring jobs — and every cell of an experiment
// grid over such fleets — shares one offline simulation per shape instead
// of re-deriving it per admission.
//
// A ModelCache is safe for concurrent use (single-flight per key, like the
// experiment environment's caches) and deterministic: model seeds derive
// from the cache seed and the shape key alone, never from which caller
// triggered the build, so shared and private caches produce bit-identical
// models.
type ModelCache struct {
	seed         uint64
	maxTokens    int
	runsPerAlloc int
	parallelism  int

	mu       sync.Mutex // guards pool (BackgroundPool is not concurrency-safe)
	pool     *workload.BackgroundPool
	profiles grid.Cache[*profile.Profile]
	models   grid.Cache[*core.Jockey]
}

// DefaultMaxTokens is the top of each fleet job's candidate allocation grid.
// It is deliberately below typical budgets so one job cannot monopolize the
// cluster by asking: containment of a panicking guard is the arbiter's job.
const DefaultMaxTokens = 40

// NewModelCache returns an empty shape-keyed model store. All model
// randomness derives from seed.
func NewModelCache(seed uint64) *ModelCache {
	return &ModelCache{
		seed:         seed,
		maxTokens:    DefaultMaxTokens,
		runsPerAlloc: 4,
		pool:         workload.NewBackgroundPool(),
	}
}

// SetParallelism bounds the worker pool of offline C(p, a) builds (0 =
// GOMAXPROCS). Models are bit-identical at any value.
func (m *ModelCache) SetParallelism(n int) { m.parallelism = n }

// MaxTokens returns the top of the per-job candidate allocation grid.
func (m *ModelCache) MaxTokens() int { return m.maxTokens }

// Profile returns the shared ground-truth profile for a shape. The pointer
// is stable across calls (and so is its *dag.Job plan), which lets reusable
// cluster engines pool arenas across every job of the shape.
func (m *ModelCache) Profile(s Shape) (*profile.Profile, error) {
	return m.profiles.Get(s.Key(), func() (*profile.Profile, error) {
		m.mu.Lock()
		base, err := m.pool.Shape(workload.BackgroundConfig{}, s.Tasks, s.Barrier)
		m.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if s.Scale != 0 && s.Scale != 1 {
			// Scale keeps the plan pointer, so scaled profiles still pool
			// engine arenas with their unscaled siblings.
			base = base.Scale(s.Scale)
		}
		return base, nil
	})
}

// Model returns the shared Jockey runtime (offline C(p, a) model) for a
// shape, building it single-flight on first use.
func (m *ModelCache) Model(s Shape) (*core.Jockey, error) {
	return m.models.Get(s.Key(), func() (*core.Jockey, error) {
		p, err := m.Profile(s)
		if err != nil {
			return nil, err
		}
		return core.New(p, core.Options{
			MaxTokens:    m.maxTokens,
			RunsPerAlloc: m.runsPerAlloc,
			Seed:         stats.DeriveSeed(m.seed, "fleet-model", s.Key()),
			Parallelism:  m.parallelism,
		})
	})
}
