package model

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/progress"
)

// buildCPAWithParallelism builds the noisy-profile table at a fixed seed
// with the given worker count; everything else matches buildTestCPA.
func buildCPAWithParallelism(t testing.TB, par int) *CPA {
	t.Helper()
	p := noisyProfile(t)
	c, err := BuildCPA(p, progress.NewTotalWorkWithQ(p), CPAConfig{
		Allocs:       []int{2, 5, 15, 40},
		RunsPerAlloc: 6,
		SampleEvery:  10 * time.Second,
		Seed:         42,
		Parallelism:  par,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCPAParallelDeterminism is the regression test that forbids "fast but
// flaky": the C(p, a) table must be bit-identical regardless of worker
// count or completion order. It compares every (p, a) cell's retained
// reservoir samples — a stronger check than comparing a few quantiles —
// and then spot-checks the quantiles the controller actually consumes.
func TestCPAParallelDeterminism(t *testing.T) {
	seq := buildCPAWithParallelism(t, 1)
	for _, par := range []int{2, 8} {
		p := buildCPAWithParallelism(t, par)
		if len(p.cells) != len(seq.cells) {
			t.Fatalf("parallelism %d: %d alloc rows, want %d", par, len(p.cells), len(seq.cells))
		}
		for ai := range seq.cells {
			for b := range seq.cells[ai] {
				sv, pv := seq.cells[ai][b].Values(), p.cells[ai][b].Values()
				if len(sv) != len(pv) {
					t.Fatalf("parallelism %d: cell (a=%d, b=%d) has %d samples, want %d",
						par, seq.allocs[ai], b, len(pv), len(sv))
				}
				for i := range sv {
					if sv[i] != pv[i] {
						t.Fatalf("parallelism %d: cell (a=%d, b=%d) sample %d = %v, want %v",
							par, seq.allocs[ai], b, i, pv[i], sv[i])
					}
				}
				if seq.cells[ai][b].Seen() != p.cells[ai][b].Seen() {
					t.Fatalf("parallelism %d: cell (a=%d, b=%d) saw %d values, want %d",
						par, seq.allocs[ai], b, p.cells[ai][b].Seen(), seq.cells[ai][b].Seen())
				}
			}
		}
		// The quantiles the control loop reads must therefore agree too.
		for _, a := range seq.allocs {
			for _, frac := range []float64{0, 0.25, 0.6, 1} {
				st := State{FracDone: []float64{frac, frac}}
				for _, q := range []float64{0.5, 0.9, 1.0} {
					if got, want := p.Remaining(st, a, q), seq.Remaining(st, a, q); got != want {
						t.Fatalf("parallelism %d: Remaining(frac=%v, a=%d, q=%v) = %v, want %v",
							par, frac, a, q, got, want)
					}
				}
			}
		}
	}
}

// TestOnlineSimParallelDeterminism: the online predictor's forward runs
// must also produce identical predictions at any worker count.
func TestOnlineSimParallelDeterminism(t *testing.T) {
	p := noisyProfile(t)
	states := []State{
		{FracDone: []float64{0, 0}},
		{Elapsed: 3 * time.Minute, FracDone: []float64{0.5, 0}},
		{Elapsed: 8 * time.Minute, FracDone: []float64{1, 0.5}},
	}
	build := func(par int) *OnlineSim {
		o, err := NewOnlineSim(p, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		o.SetParallelism(par)
		return o
	}
	seq := build(1)
	for _, par := range []int{2, 8} {
		o := build(par)
		for _, st := range states {
			for _, a := range []int{1, 6, 30} {
				for _, q := range []float64{0.5, 0.95} {
					if got, want := o.Remaining(st, a, q), seq.Remaining(st, a, q); got != want {
						t.Fatalf("parallelism %d: Remaining(a=%d, q=%v) = %v, want %v", par, a, q, got, want)
					}
				}
			}
		}
	}
}

// TestCPAParallelismDefault: a zero/negative knob falls back to GOMAXPROCS
// rather than serializing or panicking.
func TestCPAParallelismDefault(t *testing.T) {
	cfg := CPAConfig{Allocs: []int{1}}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.Parallelism < 1 {
		t.Fatalf("filled Parallelism = %d, want >= 1", cfg.Parallelism)
	}
}

// TestRunParallelCoversAllIndices exercises the work-distribution helper
// directly: every index must be visited exactly once at any worker count,
// including worker counts above the item count.
func TestRunParallelCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		const n = 37
		counts := make([]int32, n)
		done := make(chan struct{})
		go func() {
			defer close(done)
			runParallel(n, workers, func(i int) {
				// Each index is owned by exactly one worker, so a plain
				// increment is race-free by construction (and the -race CI
				// job verifies that claim).
				counts[i]++
			})
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: runParallel did not finish", workers)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}
