// Package sim implements Jockey's offline job simulator (§4.1 of the
// paper): an event-based simulation of one job executing at a fixed token
// allocation, parameterized by a job profile (per-stage task runtime and
// initialization-latency distributions and failure probabilities).
//
// The simulator captures the features the paper calls out as important —
// outliers (heavy-tailed task runtimes), barriers (all-to-all edges), task
// failures and re-execution, and limited parallelism — while ignoring
// aspects the paper's simulator also ignores (input-size variation,
// duplicate-task scheduling).
//
// Repeatedly running the simulator across an allocation grid yields the
// samples from which the C(p, a) remaining-time distributions are built
// (package model). Because one table build runs thousands of simulations
// and the online predictor re-runs them every control tick, the hot path
// is allocation-lean: a Runner allocates its arenas once per job shape and
// reuses them across runs, and the event queue never boxes.
package sim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/eventq"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
)

// DefaultMaxAttempts bounds re-execution of a repeatedly failing task so a
// pathological failure probability cannot hang the simulation.
const DefaultMaxAttempts = 20

// Snapshot is the observable job state handed to sampling callbacks.
type Snapshot struct {
	Time     time.Duration
	FracDone []float64 // per stage, fraction of tasks complete (f_s)
	Running  int       // tasks currently executing
	Ready    int       // tasks ready but waiting for a token
}

// Config parameterizes one simulated execution.
type Config struct {
	Profile *profile.Profile
	// Alloc is the fixed token allocation (maximum concurrently running
	// tasks). Must be >= 1.
	Alloc int
	// Seed drives all randomness of this run.
	Seed uint64
	// DisableFailures turns off failure injection (used for the
	// infinite-resource critical-path runs behind the minstage-inf
	// indicator).
	DisableFailures bool
	// MaxAttempts bounds per-task attempts; 0 means DefaultMaxAttempts.
	MaxAttempts int
	// SampleEvery, if positive, invokes OnSample at this period during the
	// run (the paper samples per minute).
	SampleEvery time.Duration
	// OnSample receives periodic snapshots. Ignored if SampleEvery <= 0.
	OnSample func(Snapshot)
	// InitialFracDone, if non-nil, starts the simulation from a partially
	// completed job: per stage, the given fraction of tasks (rounded down)
	// begins as already finished. This supports online re-simulation from a
	// running job's state (§4.4's proposed enhancement). Must be parallel
	// to the plan's stages.
	InitialFracDone []float64
}

func (cfg *Config) validate() error {
	if cfg.Profile == nil {
		return fmt.Errorf("sim: nil profile")
	}
	if cfg.Alloc < 1 {
		return fmt.Errorf("sim: allocation %d; need at least 1 token", cfg.Alloc)
	}
	if cfg.InitialFracDone != nil && len(cfg.InitialFracDone) != cfg.Profile.Job.NumStages() {
		return fmt.Errorf("sim: InitialFracDone has %d entries; plan %q has %d stages",
			len(cfg.InitialFracDone), cfg.Profile.Job.Name, cfg.Profile.Job.NumStages())
	}
	return nil
}

type taskRef struct {
	stage, task int
}

type event struct {
	kind   eventKind
	stage  int
	task   int
	failed bool
}

type eventKind int

const (
	evTaskEnd eventKind = iota
	evSample
)

// readyCompactMin is the minimum number of consumed entries before the
// ready FIFO compacts (see popReady); small queues never pay the copy.
const readyCompactMin = 1024

// Runner is a reusable simulation engine. The first Run against a job plan
// allocates the engine's state arenas — per-task completion/dependency/
// attempt/timestamp arrays (flat backing arrays with per-stage views), the
// consumer adjacency, the ready FIFO, the event queue, and the trace
// buffer — sized to that plan; subsequent Runs against the same plan
// (pointer-identical *dag.Job) reset them in place and allocate nothing
// beyond what the run itself records. This is the hot-path engine behind
// C(p, a) table builds and per-tick online re-simulation, where thousands
// of runs share one job shape.
//
// A Runner is NOT safe for concurrent use: callers that fan simulations
// out across goroutines hold one Runner per worker (see model.BuildCPA).
// Results are bit-identical to the one-shot Run function — same RNG draws,
// same event order, same trace — pinned by TestRunnerReuseBitIdentical.
type Runner struct {
	// Immutable per job shape (rebuilt only when the job changes).
	job *dag.Job
	// consumers[s][i] lists, for each one-to-one out-edge of stage s, the
	// consumer tasks that depend on producer task i.
	consumers [][][]taskRef
	// baseDeps is the initial remaining-dependency count of every task,
	// derived from the plan's edges alone; reset copies it into remFlat.
	baseDeps   []int
	totalTasks int

	// Flat arenas, one entry per task, with per-stage window views.
	doneFlat       []bool
	remFlat        []int
	attemptsFlat   []int
	queuedFlat     []time.Duration
	dispatchedFlat []time.Duration
	startedFlat    []time.Duration

	done         [][]bool
	remDeps      [][]int
	attempts     [][]int
	queuedAt     [][]time.Duration
	dispatchedAt [][]time.Duration // token-grant time of the in-flight attempt
	startedAt    [][]time.Duration // exec-start time of the in-flight attempt
	doneCount    []int

	ready     []taskRef // FIFO queue of schedulable tasks
	readyHead int
	q         eventq.Queue[event]
	tr        trace.JobTrace
	src       *rand.PCG
	rng       *rand.Rand
	fracBuf   []float64 // scratch for Snapshot.FracDone

	// snapshotCopy makes emitSample hand each OnSample callback a freshly
	// allocated FracDone slice (the one-shot Run contract, where callers
	// may retain snapshots). Runner's default hands out fracBuf, valid only
	// during the callback.
	snapshotCopy bool

	// Per-run state.
	cfg       Config
	p         *profile.Profile
	now       time.Duration
	running   int
	tasksLeft int
	maxA      int
}

// NewRunner returns an empty Runner; arenas are sized lazily by the first
// Run's job plan.
func NewRunner() *Runner {
	src := stats.NewSource(0) //jockeyvet:ignore seedflow placeholder state only: reset() reseeds from cfg.Seed before every run
	return &Runner{src: src, rng: rand.New(src)}
}

// Run simulates one execution of the profiled job and returns its trace.
//
// Reuse contract: the returned trace AND the Snapshot.FracDone slices
// passed to cfg.OnSample are backed by the Runner's arenas and are valid
// only until the next Run call. Callers that need to retain them must
// copy; callers that cannot honour that use the package-level Run, which
// allocates a fresh Runner per call and therefore carries no aliasing.
func (r *Runner) Run(cfg Config) (*trace.JobTrace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r.cfg = cfg
	r.p = cfg.Profile
	r.maxA = cfg.MaxAttempts
	if r.maxA <= 0 {
		r.maxA = DefaultMaxAttempts
	}
	if r.job != cfg.Profile.Job {
		r.shape(cfg.Profile.Job)
	}
	r.reset()
	if err := r.run(); err != nil {
		return nil, err
	}
	return &r.tr, nil
}

// Run simulates one execution of the profiled job and returns its trace.
// It is the one-shot convenience wrapper around Runner: a fresh Runner per
// call, so the returned trace and every Snapshot handed to OnSample are
// independently owned by the caller. Loops over many runs of the same job
// should hold a Runner instead.
func Run(cfg Config) (*trace.JobTrace, error) {
	r := NewRunner()
	r.snapshotCopy = true
	return r.Run(cfg)
}

// shape (re)builds the arenas for a new job plan: one flat array per
// per-task field, sliced into per-stage windows, plus the consumer
// adjacency and base dependency counts, both of which depend only on the
// plan and are reused unchanged across runs.
func (r *Runner) shape(job *dag.Job) {
	r.job = job
	n := job.NumStages()
	total := 0
	for s := 0; s < n; s++ {
		total += job.Stages[s].Tasks
	}
	r.totalTasks = total

	r.doneFlat = make([]bool, total)
	r.remFlat = make([]int, total)
	r.attemptsFlat = make([]int, total)
	r.queuedFlat = make([]time.Duration, total)
	r.dispatchedFlat = make([]time.Duration, total)
	r.startedFlat = make([]time.Duration, total)
	r.baseDeps = make([]int, total)
	r.doneCount = make([]int, n)
	r.fracBuf = make([]float64, n)

	r.done = make([][]bool, n)
	r.remDeps = make([][]int, n)
	r.attempts = make([][]int, n)
	r.queuedAt = make([][]time.Duration, n)
	r.dispatchedAt = make([][]time.Duration, n)
	r.startedAt = make([][]time.Duration, n)
	r.consumers = make([][][]taskRef, n)
	off := 0
	for s := 0; s < n; s++ {
		tasks := job.Stages[s].Tasks
		r.done[s] = r.doneFlat[off : off+tasks]
		r.remDeps[s] = r.remFlat[off : off+tasks]
		r.attempts[s] = r.attemptsFlat[off : off+tasks]
		r.queuedAt[s] = r.queuedFlat[off : off+tasks]
		r.dispatchedAt[s] = r.dispatchedFlat[off : off+tasks]
		r.startedAt[s] = r.startedFlat[off : off+tasks]
		r.consumers[s] = make([][]taskRef, tasks)
		off += tasks
	}
	// Dependency counts: one unit per one-to-one producer task in range,
	// plus one unit per all-to-all input edge (satisfied when the producer
	// stage completes).
	baseDeps := r.remDeps // fill the views, then snapshot into baseDeps
	for s := 0; s < n; s++ {
		for _, edge := range job.Inputs(s) {
			for task := 0; task < job.Stages[s].Tasks; task++ {
				if edge.Kind == dag.AllToAll {
					baseDeps[s][task]++
					continue
				}
				lo, hi := job.DepRange(edge, task)
				baseDeps[s][task] += hi - lo
				for i := lo; i < hi; i++ {
					r.consumers[edge.From][i] = append(r.consumers[edge.From][i], taskRef{s, task})
				}
			}
		}
	}
	copy(r.baseDeps, r.remFlat)
}

// reset reinitializes the per-run state in place: counters and flags are
// cleared, dependency counts restored from baseDeps, the ready FIFO, event
// queue, trace and RNG rewound. Nothing allocates once the arenas exist.
func (r *Runner) reset() {
	clear(r.doneFlat)
	copy(r.remFlat, r.baseDeps)
	clear(r.attemptsFlat)
	clear(r.queuedFlat)
	clear(r.dispatchedFlat)
	clear(r.startedFlat)
	clear(r.doneCount)
	r.ready = r.ready[:0]
	r.readyHead = 0
	r.q.Reset()
	r.tr.Reset(r.job.Name, r.job.NumStages())
	stats.ReseedSource(r.src, r.cfg.Seed)
	r.now = 0
	r.running = 0
	r.tasksLeft = r.totalTasks

	r.applyInitialState()
	for s := 0; s < r.job.NumStages(); s++ {
		for task := 0; task < r.job.Stages[s].Tasks; task++ {
			if r.remDeps[s][task] == 0 && !r.done[s][task] {
				r.markReady(s, task)
			}
		}
	}
	if r.cfg.SampleEvery > 0 && r.cfg.OnSample != nil {
		r.q.Push(r.cfg.SampleEvery, event{kind: evSample})
	}
}

// applyInitialState pre-completes tasks according to InitialFracDone,
// propagating dependency satisfaction exactly as live completions would.
func (r *Runner) applyInitialState() {
	fracs := r.cfg.InitialFracDone
	if fracs == nil {
		return
	}
	job := r.job
	// First mark per-task completions and satisfy one-to-one consumers.
	// Run validated len(fracs) == NumStages before the engine was built.
	for s := 0; s < job.NumStages(); s++ {
		k := int(fracs[s] * float64(job.Stages[s].Tasks))
		if k > job.Stages[s].Tasks {
			k = job.Stages[s].Tasks
		}
		for task := 0; task < k; task++ {
			r.done[s][task] = true
			r.doneCount[s]++
			r.tasksLeft--
			for _, c := range r.consumers[s][task] {
				r.remDeps[c.stage][c.task]--
			}
		}
	}
	// Then satisfy all-to-all consumers of fully completed stages.
	for s := 0; s < job.NumStages(); s++ {
		if r.doneCount[s] != job.Stages[s].Tasks {
			continue
		}
		for _, edge := range job.Outputs(s) {
			if edge.Kind != dag.AllToAll {
				continue
			}
			for t := 0; t < job.Stages[edge.To].Tasks; t++ {
				r.remDeps[edge.To][t]--
			}
		}
	}
}

//jockey:hotpath
func (r *Runner) markReady(stage, task int) {
	r.queuedAt[stage][task] = r.now
	r.ready = append(r.ready, taskRef{stage, task})
}

// popReady dequeues the oldest ready task. The FIFO is a slice plus a head
// index; consumed entries are compacted away (a copy-down, preserving
// order) only once at least readyCompactMin entries are dead AND they make
// up at least half the slice, so the amortized cost per task stays O(1)
// and the backing array stops growing at the job's high-water ready count.
// Compaction is content-preserving, so it cannot affect simulation
// results, and reset rewinds head and length while keeping capacity.
//
//jockey:hotpath
func (r *Runner) popReady() (taskRef, bool) {
	if r.readyHead >= len(r.ready) {
		return taskRef{}, false
	}
	t := r.ready[r.readyHead]
	r.readyHead++
	if r.readyHead >= readyCompactMin && r.readyHead*2 >= len(r.ready) {
		n := copy(r.ready, r.ready[r.readyHead:])
		r.ready = r.ready[:n]
		r.readyHead = 0
	}
	return t, true
}

//jockey:hotpath
func (r *Runner) readyLen() int { return len(r.ready) - r.readyHead }

// dispatch starts ready tasks while tokens are available.
//
//jockey:hotpath
func (r *Runner) dispatch() {
	for r.running < r.cfg.Alloc {
		t, ok := r.popReady()
		if !ok {
			return
		}
		r.startTask(t.stage, t.task)
	}
}

//jockey:hotpath
func (r *Runner) startTask(stage, task int) {
	sp := &r.p.Stages[stage]
	initDelay := sp.Queue.Sample(r.rng)
	exec := sp.Exec.Sample(r.rng)
	if exec <= 0 {
		exec = time.Millisecond
	}
	fails := false
	if !r.cfg.DisableFailures && r.attempts[stage][task] < r.maxA-1 && sp.FailureProb > 0 {
		fails = r.rng.Float64() < sp.FailureProb
	}
	if fails {
		// A failing attempt dies partway through its service time.
		exec = time.Duration(float64(exec) * r.rng.Float64())
		if exec <= 0 {
			exec = time.Millisecond
		}
	}
	r.dispatchedAt[stage][task] = r.now
	r.startedAt[stage][task] = r.now + initDelay
	r.running++
	r.q.Push(r.now+initDelay+exec, event{kind: evTaskEnd, stage: stage, task: task, failed: fails})
}

//jockey:hotpath
func (r *Runner) run() error {
	r.dispatch()
	for r.tasksLeft > 0 {
		at, ev, ok := r.q.Pop()
		if !ok {
			return fmt.Errorf("sim: job %q stalled at %v with %d tasks left (plan bug?)", //jockeyvet:ignore hotalloc cold path: a stall is a plan bug that ends the run
				r.job.Name, r.now, r.tasksLeft)
		}
		r.now = at
		switch ev.kind {
		case evSample:
			r.emitSample()
			if r.tasksLeft > 0 {
				r.q.Push(r.now+r.cfg.SampleEvery, event{kind: evSample})
			}
		case evTaskEnd:
			r.finishTask(ev)
		}
	}
	r.tr.Completion = r.now
	return nil
}

func (r *Runner) emitSample() {
	frac := r.fracBuf
	if r.snapshotCopy {
		frac = make([]float64, r.job.NumStages())
	}
	for s := range frac {
		frac[s] = float64(r.doneCount[s]) / float64(r.job.Stages[s].Tasks)
	}
	r.cfg.OnSample(Snapshot{
		Time:     r.now,
		FracDone: frac,
		Running:  r.running,
		Ready:    r.readyLen(),
	})
}

//jockey:hotpath
func (r *Runner) finishTask(ev event) {
	stage, task := ev.stage, ev.task
	r.running--
	r.tr.AddTask(trace.TaskEvent{
		Stage:      stage,
		Task:       task,
		Attempt:    r.attempts[stage][task],
		Queued:     r.queuedAt[stage][task],
		Dispatched: r.dispatchedAt[stage][task],
		Started:    r.startedAt[stage][task],
		Ended:      r.now,
		Failed:     ev.failed,
	})
	if ev.failed {
		r.attempts[stage][task]++
		r.markReady(stage, task)
		r.dispatch()
		return
	}
	r.done[stage][task] = true
	r.doneCount[stage]++
	r.tasksLeft--
	// Satisfy one-to-one consumers of this task.
	for _, c := range r.consumers[stage][task] {
		r.remDeps[c.stage][c.task]--
		if r.remDeps[c.stage][c.task] == 0 {
			r.markReady(c.stage, c.task)
		}
	}
	// Satisfy all-to-all consumers if the stage just completed.
	if r.doneCount[stage] == r.job.Stages[stage].Tasks {
		for _, edge := range r.job.Outputs(stage) {
			if edge.Kind != dag.AllToAll {
				continue
			}
			for t := 0; t < r.job.Stages[edge.To].Tasks; t++ {
				r.remDeps[edge.To][t]--
				if r.remDeps[edge.To][t] == 0 {
					r.markReady(edge.To, t)
				}
			}
		}
	}
	r.dispatch()
}
