package vet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// calls reports a diagnostic at every function call, making suppression
// behavior observable line by line without any repo-specific rule logic.
var calls = &Analyzer{
	Name: "calls",
	Doc:  "test analyzer: flags every call expression",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					p.Reportf(c.Pos(), "call")
				}
				return true
			})
		}
		return nil
	},
}

func checkSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Check(fset, []*ast.File{f}, pkg, info, []*Analyzer{calls})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func lines(diags []Diagnostic) []int {
	out := make([]int, len(diags))
	for i, d := range diags {
		out[i] = d.Position.Line
	}
	return out
}

func TestIgnoreSuppressesExactlyOneLine(t *testing.T) {
	diags := checkSrc(t, `package fixture

func f() {}

func g() {
	f() //jockeyvet:ignore trailing directive covers its own line
	f()
	//jockeyvet:ignore standalone directive covers only the next line
	f()
	f()
}
`)
	// Lines 6 and 9 are suppressed; lines 7 and 10 keep their diagnostics.
	if got := lines(diags); len(got) != 2 || got[0] != 7 || got[1] != 10 {
		t.Fatalf("diagnostics on lines %v, want [7 10]", got)
	}
}

func TestIgnoreWithoutReason(t *testing.T) {
	diags := checkSrc(t, `package fixture

func f() {}

func g() {
	f() //jockeyvet:ignore
}
`)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (unsuppressed call + missing reason): %v", len(diags), diags)
	}
	var sawCall, sawReason bool
	for _, d := range diags {
		if d.Message == "call" && d.Position.Line == 6 {
			sawCall = true
		}
		if strings.Contains(d.Message, "needs a reason") {
			sawReason = true
		}
	}
	if !sawCall || !sawReason {
		t.Fatalf("want the call diagnostic to survive and the directive to be flagged, got %v", diags)
	}
}

func TestIgnoreLookalikeIsNotADirective(t *testing.T) {
	diags := checkSrc(t, `package fixture

func f() {}

func g() {
	f() //jockeyvet:ignoreXXX not the directive
}
`)
	if got := lines(diags); len(got) != 1 || got[0] != 6 {
		t.Fatalf("diagnostics on lines %v, want [6]", got)
	}
}

func TestDiagnosticsSorted(t *testing.T) {
	diags := checkSrc(t, `package fixture

func f() {}

func g() { f(); f() }

func h() { f() }
`)
	if got := lines(diags); len(got) != 3 || got[0] != 5 || got[1] != 5 || got[2] != 7 {
		t.Fatalf("diagnostics on lines %v, want [5 5 7]", got)
	}
	if diags[0].Position.Column > diags[1].Position.Column {
		t.Fatalf("same-line diagnostics not in column order: %v", diags)
	}
}
