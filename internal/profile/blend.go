package profile

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
)

// BlendOptions tunes Blend. The zero value gives the defaults.
type BlendOptions struct {
	// PriorWeight scales the prior's effective sample count: 1 (the default)
	// makes the prior count as one full training run of the stage, 0.5 lets
	// live data dominate twice as fast, 2 makes the prior twice as sticky.
	PriorWeight float64
	// MinStageSamples is the number of successful live observations a stage
	// needs before its prior statistics are touched at all (default 3).
	// Stages below it keep the prior verbatim, so early in a run only the
	// stages actually observed get refreshed.
	MinStageSamples int
	// ScaleUnobserved extrapolates a job-wide runtime drift to stages with
	// too few live observations: their prior execution distributions are
	// scaled by the count-weighted mean live/prior runtime ratio of the
	// observed stages. Without it a job-wide slowdown stays invisible to the
	// blend until every stage has run — remaining time is dominated by future
	// stages, which would keep the stale prior verbatim.
	ScaleUnobserved bool
}

func (o *BlendOptions) fill() {
	if o.PriorWeight <= 0 {
		o.PriorWeight = 1
	}
	if o.MinStageSamples <= 0 {
		o.MinStageSamples = 3
	}
}

// Blend merges live task observations into a prior profile, count-weighted:
// each stage's prior execution and init distributions are discretized into
// as many representative samples as the prior run had tasks (scaled by
// PriorWeight), pooled with the live trace's observed samples, and refit as
// an empirical distribution — so a stage observed 300 times outweighs a
// prior of 100 tasks 3:1, while a stage observed twice barely moves.
// Failure probabilities blend by attempt counts the same way. Per-stage
// aggregates (T_s, Q_s, l_s) are recomputed from the blended distributions.
//
// The live trace may be partial (a running job): stages with fewer than
// MinStageSamples successful observations keep their prior statistics.
// Blend is the data path of online re-profiling (see control.Guard).
func Blend(prior *Profile, live *trace.JobTrace, opts BlendOptions) (*Profile, error) {
	if prior == nil || live == nil {
		return nil, fmt.Errorf("profile: Blend needs a prior profile and a live trace")
	}
	opts.fill()
	n := prior.Job.NumStages()
	attempts := make([]int, n)
	failures := make([]int, n)
	for _, e := range live.Events {
		if e.Stage < 0 || e.Stage >= n {
			return nil, fmt.Errorf("profile: live trace of %q references stage %d, job %q has %d stages",
				live.JobName, e.Stage, prior.Job.Name, n)
		}
		attempts[e.Stage]++
		if e.Failed {
			failures[e.Stage]++
		}
	}
	// Job-wide drift ratio: count-weighted mean of live/prior mean runtime
	// across observed stages, used to extrapolate to unobserved ones.
	var ratioNum, ratioDen float64
	for s := 0; s < n; s++ {
		exec := live.ExecSamples(s)
		if len(exec) < opts.MinStageSamples {
			continue
		}
		priorMean := prior.Stages[s].Exec.Mean()
		if priorMean <= 0 {
			continue
		}
		var sum time.Duration
		for _, d := range exec {
			sum += d
		}
		liveMean := float64(sum) / float64(len(exec))
		w := float64(len(exec))
		ratioNum += w * liveMean / float64(priorMean)
		ratioDen += w
	}
	drift := 1.0
	if ratioDen > 0 {
		drift = ratioNum / ratioDen
	}
	stages := make([]StageProfile, n)
	for s := range stages {
		sp := prior.Stages[s]
		exec := live.ExecSamples(s)
		if len(exec) < opts.MinStageSamples {
			if opts.ScaleUnobserved && drift > 0 && drift != 1 {
				stages[s] = StageProfile{
					Exec:        stats.Scaled{Base: sp.Exec, Factor: drift},
					Queue:       sp.Queue,
					FailureProb: sp.FailureProb,
				}
			} else {
				stages[s] = sp
			}
			continue
		}
		priorN := int(float64(prior.Job.Stages[s].Tasks)*opts.PriorWeight + 0.5)
		if priorN < 1 {
			priorN = 1
		}
		blended := StageProfile{
			Exec:  stats.NewEmpirical(append(discretize(sp.Exec, priorN), exec...)),
			Queue: sp.Queue,
		}
		if inits := live.InitSamples(s); len(inits) >= opts.MinStageSamples {
			blended.Queue = stats.NewEmpirical(append(discretize(sp.Queue, priorN), inits...))
		}
		// Failure probability: pool prior pseudo-attempts with live attempts.
		pa, la := float64(priorN), float64(attempts[s])
		blended.FailureProb = (sp.FailureProb*pa + float64(failures[s])) / (pa + la)
		if blended.FailureProb >= 1 {
			blended.FailureProb = 0.999
		}
		// Leave aggregates zero: New refills T_s, Q_s, l_s from the blended
		// distributions.
		stages[s] = StageProfile{
			Exec:        blended.Exec,
			Queue:       blended.Queue,
			FailureProb: blended.FailureProb,
		}
	}
	out, err := New(prior.Job, stages)
	if err != nil {
		return nil, fmt.Errorf("profile: blend: %w", err)
	}
	out.TrainingCompletion = prior.TrainingCompletion
	return out, nil
}

// discretize summarizes a distribution as n representative samples at the
// mid-quantiles (i+0.5)/n, preserving its shape with a known sample count so
// empirical pooling weights prior against live data correctly.
func discretize(d stats.Distribution, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d.Quantile((float64(i) + 0.5) / float64(n))
	}
	return out
}
