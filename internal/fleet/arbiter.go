package fleet

import (
	"time"

	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/model"
)

// flatEps is the marginal-utility threshold below which an allocation step
// is considered flat. Jobs whose whole curve is flat (already certain to
// meet at the floor — the paper's "utility curve has gone flat") stay at
// the floor and their tokens go to the rest of the fleet.
const flatEps = 1e-9

// arbitrate re-divides this epoch's effective budget across the active
// jobs and actuates the new grants. It returns the granted total and the
// number of latched (guard-panic) jobs, for the epoch observer.
//
//jockey:hotpath
func (r *replay) arbitrate(now time.Duration) (granted, latched int) {
	if len(r.active) == 0 {
		return 0, 0
	}
	budget := r.effectiveBudget()
	switch r.cfg.Arbitration {
	case FIFO:
		// The static baseline never revisits a grant: each job keeps its
		// admission reservation, outage or not.
		for _, fj := range r.active {
			fj.wanted = fj.reservation
			granted += fj.grant
		}
		return granted, 0
	case FairShare:
		r.fairShare(budget)
	case UtilityGreedy:
		latched = r.waterFill(now, budget)
	}
	for _, fj := range r.active {
		fj.handle.SetGuarantee(fj.grant)
		granted += fj.grant
	}
	return granted, latched
}

// fairShare hands each active job one token at a time in admission order
// until the budget (or everyone's grid top) is exhausted — an exact equal
// split with deterministic remainder placement, deadline-blind by design.
//
//jockey:hotpath
func (r *replay) fairShare(budget int) {
	cap := r.models.MaxTokens()
	for _, fj := range r.active {
		fj.grant = 0
		// The baseline's notion of desire stays its reservation: the gap
		// integration then charges misses to arbitration when fair-share
		// starves a tight job below what admission promised it.
		fj.wanted = fj.reservation
	}
	for budget > 0 {
		gave := false
		for _, fj := range r.active {
			if budget == 0 {
				break
			}
			if fj.grant >= cap {
				continue
			}
			fj.grant++
			budget--
			gave = true
		}
		if !gave {
			break
		}
	}
}

// waterFill is the headline discipline: greedy marginal-utility
// water-filling over each job's model-estimated deadline utility.
//
// Latched (guard-panic) jobs are served first off the top: under
// containment their panic grant is capped at the admission reservation —
// the promise the arbiter actually made — so one sick job cannot starve
// feasible peers; with NoContainment the latch bids the whole grid top.
// Everyone else starts at the floor (the smallest grid allocation) and the
// remaining budget goes, step by step, to the job whose next candidate
// jump buys the most utility per token. Ties break in admission order.
func (r *replay) waterFill(now time.Duration, budget int) (latched int) {
	remaining := budget
	type bidder struct {
		fj    *fleetJob
		cands []int
		util  []float64
		idx   int // current rung in cands; -1 before the floor is granted
	}
	var bidders []*bidder
	var latchedJobs []*fleetJob
	for _, fj := range r.active {
		st := fj.handle.State()
		d := r.decide(fj, st)
		if fj.guard != nil && fj.guard.Mode() == control.GuardPanic {
			// Max-allocation latch: the model can no longer be trusted, so
			// the guard bids its panic grant. Containment keeps the job's
			// admission reservation — the promise the arbiter actually
			// made — off the top, and lets the panic soak up only budget
			// left over after every healthy peer is served. Without
			// containment the full panic bid comes off the top first, and
			// peers get whatever survives.
			fj.latched = true
			fj.wanted = d.Granted
			if r.cfg.NoContainment {
				fj.grant = min(d.Granted, remaining)
			} else {
				fj.grant = min(fj.reservation, remaining)
				latchedJobs = append(latchedJobs, fj)
			}
			remaining -= fj.grant
			latched++
			continue
		}
		fj.latched = false
		cands := fj.jk.Grid()
		util := make([]float64, len(cands))
		for i, a := range cands {
			util[i] = float64(fj.arr.value) * fj.util.Utility(fj.ctrl.PredictAt(st, a))
		}
		// The unconstrained desire is the smallest candidate that attains
		// the curve's maximum — what the job's own controller would ask
		// for with no fleet around it.
		best := 0
		for i := 1; i < len(util); i++ {
			if util[i] > util[best]+flatEps {
				best = i
			}
		}
		fj.wanted = cands[best]
		fj.grant = 0
		bidders = append(bidders, &bidder{fj: fj, cands: cands, util: util, idx: -1})
	}

	// Floor pass: every non-latched job gets the smallest grid allocation
	// (admission order) so nobody is silently starved to zero.
	for _, b := range bidders {
		floor := b.cands[0]
		if floor > remaining {
			break
		}
		b.idx = 0
		b.fj.grant = floor
		remaining -= floor
	}

	// Greedy marginal water-fill. Each round picks the single affordable
	// jump (to ANY higher candidate, which handles non-concave curves
	// whose gain sits past a flat stretch) with the best utility-per-token
	// rate; earliest-admitted wins ties. Flat jobs never clear flatEps and
	// stay at the floor.
	for remaining > 0 {
		var pick *bidder
		pickTo, pickRate := 0, 0.0
		for _, b := range bidders {
			if b.idx < 0 {
				continue
			}
			for k := b.idx + 1; k < len(b.cands); k++ {
				cost := b.cands[k] - b.cands[b.idx]
				if cost > remaining {
					break
				}
				rate := (b.util[k] - b.util[b.idx]) / float64(cost)
				if rate > flatEps && rate > pickRate+flatEps {
					pick, pickTo, pickRate = b, k, rate
				}
			}
		}
		if pick == nil {
			break
		}
		remaining -= pick.cands[pickTo] - pick.cands[pick.idx]
		pick.idx = pickTo
		pick.fj.grant = pick.cands[pickTo]
	}

	// Leftover pass: budget nobody's curve wanted tops up contained
	// panic latches (admission order) toward their full bid — the sick
	// job gets every idle token, just never a healthy peer's.
	for _, fj := range latchedJobs {
		if remaining <= 0 {
			break
		}
		if extra := min(fj.wanted-fj.grant, remaining); extra > 0 {
			fj.grant += extra
			remaining -= extra
		}
	}
	return latched
}

// decide runs the job's control stack for this epoch. For guarded jobs this
// is what feeds the staleness detector and drives panic entry/recovery; the
// returned decision's grant is only used by the panic latch (water-filling
// overrides it otherwise).
//
//jockey:hotpath
func (r *replay) decide(fj *fleetJob, st model.State) control.Decision {
	if fj.guard != nil {
		return fj.guard.Decide(st)
	}
	// Unguarded utility-greedy probes the model directly via PredictAt;
	// running the plain controller's hysteresis would be dead state.
	return control.Decision{}
}
