// Fixture: the fleet's arrival stream and any arbitration tie-jitter must
// replay bit-identically, so the process-global random source (or a
// time-seeded one) is banned; generators derived from the replay seed are
// the allowed path.
package fleet

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func drawArrivalGap(mean float64) float64 {
	return randv2.ExpFloat64() * mean // want `process-global random source`
}

func shuffleOffers(offers []int) {
	rand.Shuffle(len(offers), func(i, j int) { // want `process-global random source`
		offers[i], offers[j] = offers[j], offers[i]
	})
}

func jitteredBackoff() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from time.Now`
}

func derivedArrivals(seed uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(seed, 0))
}
