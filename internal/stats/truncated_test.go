package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTruncatedCapsSamples(t *testing.T) {
	base := Lognormal{Mu: 2, Sigma: 2} // wild tail
	tr := Truncated{Base: base, Max: 30 * time.Second}
	r := NewRNG(1)
	capped := 0
	for i := 0; i < 5000; i++ {
		v := tr.Sample(r)
		if v > tr.Max {
			t.Fatalf("sample %v above cap", v)
		}
		if v == tr.Max {
			capped++
		}
	}
	if capped == 0 {
		t.Error("cap never reached; test distribution too narrow")
	}
}

func TestTruncatedQuantileAndMean(t *testing.T) {
	tr := Truncated{Base: Uniform{Lo: 0, Hi: 10 * time.Second}, Max: 5 * time.Second}
	if got := tr.Quantile(0.25); got != 2500*time.Millisecond {
		t.Errorf("q25 = %v", got)
	}
	if got := tr.Quantile(0.9); got != 5*time.Second {
		t.Errorf("q90 should clamp: %v", got)
	}
	// Mean of min(U(0,10), 5) = 2.5*0.5 + 5*0.5 = 3.75s.
	mean := tr.Mean()
	if mean < 3600*time.Millisecond || mean > 3900*time.Millisecond {
		t.Errorf("mean = %v, want ~3.75s", mean)
	}
	if tr.String() == "" {
		t.Error("empty String")
	}
}

func TestTruncatedQuantileMonotoneProperty(t *testing.T) {
	tr := Truncated{Base: Lognormal{Mu: 1, Sigma: 1.5}, Max: 20 * time.Second}
	f := func(a, b float64) bool {
		a, b = norm01(a), norm01(b)
		if a > b {
			a, b = b, a
		}
		return tr.Quantile(a) <= tr.Quantile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func norm01(v float64) float64 {
	if v < 0 {
		v = -v
	}
	for v > 1 {
		v /= 2
	}
	return v
}
