package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/jockeysim/jockey/internal/vet"
)

// HotPathDirective marks a function whose body must not allocate: the
// compile-time counterpart of the runtime testing.AllocsPerRun guards that
// protect the arena-reuse work in internal/sim, internal/eventq,
// internal/cluster, internal/control, internal/flight, and internal/fleet.
const HotPathDirective = "//jockey:hotpath"

// HotAlloc statically checks //jockey:hotpath function bodies for
// allocating constructs:
//
//   - make / new and slice or map literals
//   - composite literals that escape through & (heap allocation)
//   - append to anything but a struct field or a resliced arena (growing a
//     local slice from nil allocates every call; arena fields amortize)
//   - fmt.* calls, string concatenation, and string<->[]byte conversions
//   - boxing a concrete value into an interface argument or variable
//   - closures that capture variables (the capture cell escapes)
//   - go statements (every goroutine allocates its stack)
//
// The check is necessarily stricter than the escape analyzer — a
// non-escaping &T{} is free at runtime but still flagged — because the
// contract for hot paths is "obviously allocation-free by local
// inspection". Value composite literals (T{...}) not taken by address are
// allowed. A construct that is provably cold (an error path) carries a
// scoped //jockeyvet:ignore hotalloc <reason>.
var HotAlloc = &vet.Analyzer{
	Name: "hotalloc",
	Doc:  "//jockey:hotpath function bodies must not contain allocating constructs (make, escaping literals, growing append, fmt, string concat, boxing, capturing closures)",
	Run:  runHotAlloc,
}

func runHotAlloc(p *vet.Pass) error {
	for _, f := range p.Files {
		if vet.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotBody(p, fd)
		}
	}
	return nil
}

// isHotPath reports whether the function's doc comment carries the
// //jockey:hotpath directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotPathDirective || strings.HasPrefix(c.Text, HotPathDirective+" ") {
			return true
		}
	}
	return false
}

type hotChecker struct {
	pass *vet.Pass
	fd   *ast.FuncDecl
	// addressed marks composite literals consumed by &, so the CompositeLit
	// case does not double-report what the UnaryExpr case already flagged.
	addressed map[*ast.CompositeLit]bool
}

func checkHotBody(p *vet.Pass, fd *ast.FuncDecl) {
	c := &hotChecker{pass: p, fd: fd, addressed: map[*ast.CompositeLit]bool{}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			c.checkCall(x)
		case *ast.UnaryExpr:
			if lit, ok := unparen(x.X).(*ast.CompositeLit); ok && x.Op.String() == "&" {
				c.addressed[lit] = true
				c.reportf(x, "&%s composite literal escapes to the heap; reuse an arena slot", typeLabel(p, lit))
			}
		case *ast.CompositeLit:
			c.checkCompositeLit(x)
		case *ast.BinaryExpr:
			if x.Op.String() == "+" && isStringType(p.Info.TypeOf(x)) {
				c.reportf(x, "string concatenation allocates; precompute or reuse a byte buffer")
			}
		case *ast.AssignStmt:
			c.checkAssign(x)
		case *ast.ValueSpec:
			c.checkValueSpec(x)
		case *ast.FuncLit:
			c.checkFuncLit(x)
		case *ast.GoStmt:
			c.reportf(x, "go statement allocates a goroutine; hot paths are single-threaded")
		}
		return true
	})
}

func (c *hotChecker) reportf(n ast.Node, format string, args ...any) {
	c.pass.Reportf(n.Pos(), "//jockey:hotpath function %s: "+format, append([]any{c.fd.Name.Name}, args...)...)
}

func (c *hotChecker) checkCall(call *ast.CallExpr) {
	p := c.pass
	// Conversions: string([]byte) and []byte(string) copy and allocate.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		to, from := tv.Type, p.Info.TypeOf(call.Args[0])
		if (isStringType(to) && isByteSliceLike(from)) || (isByteSliceLike(to) && isStringType(from)) {
			c.reportf(call, "string<->[]byte conversion copies and allocates")
		}
		return
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.reportf(call, "make allocates; size the buffer once in the setup/shape step")
			case "new":
				c.reportf(call, "new allocates; reuse an arena slot")
			case "append":
				c.checkAppend(call)
			}
			return
		}
	}
	if name, ok := vet.CalleeOfPkg(p.Info, call, "fmt"); ok {
		c.reportf(call, "fmt.%s allocates (formatting state and boxed arguments)", name)
		return
	}
	c.checkBoxing(call)
}

// checkAppend allows the two amortized-reuse idioms — appending to a struct
// field (the arena) and appending to an explicit reslice like buf[:0] — and
// flags everything else: appending to a plain local grows a fresh backing
// array as the function re-runs.
func (c *hotChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	switch dst := unparen(call.Args[0]).(type) {
	case *ast.SelectorExpr:
		if s, ok := c.pass.Info.Selections[dst]; ok && s.Kind() == types.FieldVal {
			return // arena field: growth amortizes across runs
		}
		c.reportf(call, "append to %s grows an unmanaged slice; append to a reused arena field instead", exprString(dst))
	case *ast.SliceExpr, *ast.IndexExpr:
		return // buf[:0] / arena[i] reuse idiom
	default:
		c.reportf(call, "append to a local slice allocates as it grows; preallocate an arena field")
	}
}

// checkBoxing flags concrete, non-pointer-shaped values passed to interface
// parameters: the conversion heap-allocates a box per call. Pointers,
// maps, channels, and funcs are word-sized and convert for free; untyped
// constants are excluded (small-int boxing is interned by the runtime).
func (c *hotChecker) checkBoxing(call *ast.CallExpr) {
	p := c.pass
	sigT := p.Info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			continue // instantiation decides; the generic body is checked on its own
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := p.Info.TypeOf(arg)
		tv := p.Info.Types[arg]
		if at == nil || tv.Value != nil || tv.IsNil() || types.IsInterface(at) || isPointerShaped(at) {
			continue
		}
		c.reportf(arg, "passing %s by value boxes it into interface %s (one allocation per call); pass a pointer or keep the call off the hot path", at, pt)
	}
}

// checkAssign flags assignments that box a concrete value into an
// interface-typed variable, plus += string concatenation.
func (c *hotChecker) checkAssign(as *ast.AssignStmt) {
	p := c.pass
	if as.Tok.String() == "+=" && len(as.Lhs) == 1 && isStringType(p.Info.TypeOf(as.Lhs[0])) {
		c.reportf(as, "string += allocates a fresh string each iteration; use a reused byte buffer")
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt, rt := p.Info.TypeOf(as.Lhs[i]), p.Info.TypeOf(as.Rhs[i])
		tv := p.Info.Types[as.Rhs[i]]
		if lt == nil || rt == nil || !types.IsInterface(lt) || types.IsInterface(rt) {
			continue
		}
		if tv.Value != nil || tv.IsNil() || isPointerShaped(rt) {
			continue
		}
		c.reportf(as.Rhs[i], "assigning %s into interface %s boxes it (one allocation); store a pointer instead", rt, lt)
	}
}

// checkValueSpec is checkAssign for `var x I = v` declarations.
func (c *hotChecker) checkValueSpec(vs *ast.ValueSpec) {
	p := c.pass
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		lt, rt := p.Info.TypeOf(name), p.Info.TypeOf(vs.Values[i])
		tv := p.Info.Types[vs.Values[i]]
		if lt == nil || rt == nil || !types.IsInterface(lt) || types.IsInterface(rt) {
			continue
		}
		if tv.Value != nil || tv.IsNil() || isPointerShaped(rt) {
			continue
		}
		c.reportf(vs.Values[i], "assigning %s into interface %s boxes it (one allocation); store a pointer instead", rt, lt)
	}
}

func (c *hotChecker) checkCompositeLit(lit *ast.CompositeLit) {
	if c.addressed[lit] {
		return
	}
	t := c.pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.reportf(lit, "slice literal allocates a backing array; fill a preallocated arena instead")
	case *types.Map:
		c.reportf(lit, "map literal allocates; hoist it to a package-level table or the setup step")
	}
	// Struct and array value literals stay on the stack and are allowed.
}

// checkFuncLit flags closures that capture variables from the enclosing
// function: each capture forces a heap cell plus the closure object itself.
// Capture-free function literals compile to static funcs and are allowed.
func (c *hotChecker) checkFuncLit(lit *ast.FuncLit) {
	p := c.pass
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside the enclosing function but outside this
		// literal. Package-level vars are shared, not captured.
		if v.Pos() >= c.fd.Pos() && v.Pos() < c.fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captured = v.Name()
		}
		return true
	})
	if captured != "" {
		c.reportf(lit, "closure captures %s and allocates; hoist the state into the receiver or pass it explicitly", captured)
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func typeLabel(p *vet.Pass, lit *ast.CompositeLit) string {
	if t := p.Info.TypeOf(lit); t != nil {
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name()
		}
		return t.String()
	}
	return "T"
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSliceLike(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}
