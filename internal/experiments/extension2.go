package experiments

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/core"
	"github.com/jockeysim/jockey/internal/invariant"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/workload"
)

// AdmissionOutcome summarizes one mode of the admission-control experiment.
type AdmissionOutcome struct {
	Mode     string // "admission-control" or "admit-everything"
	Offered  int
	Admitted int
	Met      int // deadlines met among admitted jobs
}

// ExtensionE2 is the admission-control experiment (§1: "Jockey's job model
// can be used to check whether a newly submitted job would fit in the
// cluster — that is, that all previously accepted SLO jobs would still be
// able to meet their deadlines").
type ExtensionE2 struct {
	Outcomes []AdmissionOutcome
	// Rejected lists the jobs the arbiter turned away.
	Rejected []string
}

// AdmissionControl offers a stream of SLO jobs with tight deadlines to a
// shared cluster whose SLO budget is limited, once gated by the arbiter and
// once admitting everything. With the arbiter, every admitted job should
// meet its deadline; without it, the over-committed guarantees collide and
// some jobs miss.
func AdmissionControl(env *Env, offers int) (*ExtensionE2, error) {
	if offers <= 0 {
		offers = 8
	}
	type offer struct {
		job      string
		deadline time.Duration
		start    time.Duration
	}
	jobs := []string{"B", "C", "E", "F"}
	rng := stats.NewRNG(stats.DeriveSeed(env.Seed, "ext2"))
	var stream []offer
	for i := 0; i < offers; i++ {
		name := jobs[rng.IntN(len(jobs))]
		short, _, err := env.Deadlines(name)
		if err != nil {
			return nil, err
		}
		stream = append(stream, offer{
			job:      name,
			deadline: time.Duration(float64(short) * (0.9 + 0.3*rng.Float64())),
			start:    time.Duration(i) * 4 * time.Minute,
		})
	}

	out := &ExtensionE2{}
	for _, gate := range []bool{true, false} {
		mode := "admit-everything"
		if gate {
			mode = "admission-control"
		}
		c, err := cluster.New(cluster.Config{
			Machines:        env.Machines,
			SlotsPerMachine: env.Slots,
			MachineMTBF:     90 * time.Minute,
			Seed:            stats.DeriveSeed(env.Seed, "ext2-cluster", mode),
		})
		if err != nil {
			return nil, err
		}
		bg := env.Background
		bg.Seed = stats.DeriveSeed(env.Seed, "ext2-bg", mode)
		if _, err := workload.SubmitBackground(c, bg); err != nil {
			return nil, err
		}
		arbiter, err := core.NewArbiter(env.MaxTokens)
		if err != nil {
			return nil, err
		}
		o := AdmissionOutcome{Mode: mode, Offered: len(stream)}
		var handles []*cluster.Handle
		for i, of := range stream {
			jk, err := env.Runtime(of.job, "")
			if err != nil {
				return nil, err
			}
			id := fmt.Sprintf("%s-%d", of.job, i)
			if gate {
				_, ok, err := arbiter.TryAdmit(id, jk, of.deadline)
				if err != nil {
					return nil, err
				}
				if !ok {
					out.Rejected = append(out.Rejected, id)
					continue
				}
			}
			pol, err := jk.Policy(of.deadline)
			if err != nil {
				return nil, err
			}
			h, err := c.Submit(cluster.JobConfig{
				Profile:  mustGround(env, of.job),
				Policy:   pol,
				Deadline: of.deadline,
				Start:    of.start,
				Tracked:  true,
			})
			if err != nil {
				return nil, err
			}
			handles = append(handles, h)
			o.Admitted++
		}
		if err := c.Run(); err != nil {
			return nil, err
		}
		for _, h := range handles {
			if h.Result().Met {
				o.Met++
			}
		}
		out.Outcomes = append(out.Outcomes, o)
	}
	return out, nil
}

func mustGround(env *Env, job string) *profile.Profile {
	p, err := env.Ground(job)
	// Jobs come from the fixed Table 2 set; Ground cannot fail here.
	invariant.NoErr(err, "experiments: Ground(%q) on the fixed Table 2 set", job)
	return p
}

// Render prints the E2 comparison.
func (e *ExtensionE2) Render() string {
	var rows [][]string
	for _, o := range e.Outcomes {
		metFrac := "n/a"
		if o.Admitted > 0 {
			metFrac = pct(float64(o.Met) / float64(o.Admitted))
		}
		rows = append(rows, []string{
			o.Mode,
			fmt.Sprint(o.Offered),
			fmt.Sprint(o.Admitted),
			fmt.Sprintf("%d (%s)", o.Met, metFrac),
		})
	}
	title := "Extension E2: admission control over a stream of SLO jobs (§1's fit check)\n" +
		fmt.Sprintf("rejected by the arbiter: %v", e.Rejected)
	return renderTable(title,
		[]string{"mode", "offered", "admitted", "deadlines met"}, rows)
}
