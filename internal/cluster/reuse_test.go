package cluster

import (
	"reflect"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
)

// reuseScenario is deliberately demanding: machine MTBF failures, a rack
// outage, a contention window, speculation, a mid-run deadline change, stage
// drift, a controlled SLO job, and two submissions sharing one plan (so the
// arena pool must hold multiple live arenas for the same *dag.Job).
type reuseScenario struct {
	cfg  Config
	fg   *profile.Profile
	bg   *profile.Profile
	spec *profile.Profile
}

func newReuseScenario(t testing.TB) *reuseScenario {
	t.Helper()
	fgJob := dag.NewBuilder("fg").
		Stage("m", 24).
		Stage("r", 6).
		Edge("m", "r", dag.AllToAll).
		MustBuild()
	fg := profile.MustNew(fgJob, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(8*time.Second, 25*time.Second),
			Queue: stats.Exponential{MeanValue: time.Second}, FailureProb: 0.05},
		{Exec: stats.LognormalFromMedian(15*time.Second, 40*time.Second)},
	})
	bgJob := dag.NewBuilder("bg").Stage("work", 120).MustBuild()
	bg := profile.MustNew(bgJob, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(20*time.Second, time.Minute), FailureProb: 0.02},
	})
	specJob := dag.NewBuilder("spec").Stage("work", 30).MustBuild()
	spec := profile.MustNew(specJob, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(10*time.Second, 45*time.Second)},
	})
	return &reuseScenario{
		cfg: Config{
			Machines:        8,
			SlotsPerMachine: 3,
			MachineMTBF:     4 * time.Minute,
			MachineRecovery: stats.Point{V: 45 * time.Second},
			Seed:            42,
			RackOutages:     []RackOutage{{At: 2 * time.Minute, FirstMachine: 0, Machines: 3, Duration: time.Minute}},
			Contention:      []ContentionWindow{{From: 3 * time.Minute, To: 5 * time.Minute, Frac: 0.5}},
		},
		fg:   fg,
		bg:   bg,
		spec: spec,
	}
}

// run submits the scenario's jobs to a prepared cluster and returns every
// tracked result plus the cluster-level summary numbers.
func (s *reuseScenario) run(t testing.TB, c *Cluster) ([]Result, time.Duration, float64) {
	t.Helper()
	submit := func(cfg JobConfig) *Handle {
		h, err := c.Submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	submit(JobConfig{Profile: s.bg, Guarantee: 4})
	submit(JobConfig{Profile: s.bg, Guarantee: 2, Weight: 2, Start: 90 * time.Second})
	hs := []*Handle{
		submit(JobConfig{Profile: s.spec, Guarantee: 3, Deadline: 12 * time.Minute,
			Tracked: true, SpeculativeThreshold: 1.5, Start: 30 * time.Second,
			Drifts: []StageDrift{{At: 2 * time.Minute, Stage: -1, Factor: 1.5}}}),
	}
	pol, err := control.NewController(control.Config{
		Predictor:  model.NewAmdahl(s.fg),
		Utility:    utility.Deadline(10 * time.Minute),
		Candidates: SLODefaults(12),
		Slack:      1.1,
		Hysteresis: 1.0,
		DeadZone:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs = append(hs, submit(JobConfig{
		Profile:       s.fg,
		Policy:        pol,
		Deadline:      10 * time.Minute,
		ControlPeriod: 30 * time.Second,
		Tracked:       true,
		Start:         time.Minute,
		DeadlineChanges: []DeadlineChange{
			{At: 3 * time.Minute, Deadline: 8 * time.Minute},
		},
	}))
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	out := make([]Result, len(hs))
	for i, h := range hs {
		out[i] = h.Result()
	}
	return out, c.Now(), c.Utilization()
}

// TestEngineReuseBitIdentical pins the Engine contract: a reset engine
// replays a configuration bit-identically to a fresh cluster, including
// traces, and keeps doing so across repeated resets.
func TestEngineReuseBitIdentical(t *testing.T) {
	s := newReuseScenario(t)
	fresh, err := New(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, wantNow, wantUtil := s.run(t, fresh)

	eng := NewEngine()
	for round := 0; round < 3; round++ {
		c, err := eng.Reset(s.cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, gotNow, gotUtil := s.run(t, c)
		if gotNow != wantNow || gotUtil != wantUtil {
			t.Fatalf("round %d: cluster summary diverged: now %v/%v util %v/%v",
				round, gotNow, wantNow, gotUtil, wantUtil)
		}
		for i := range wantRes {
			got, want := gotRes[i], wantRes[i]
			gt, wt := got.Trace, want.Trace
			got.Trace, want.Trace = nil, nil
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: job %d result diverged:\n got %+v\nwant %+v", round, i, got, want)
			}
			if (gt == nil) != (wt == nil) {
				t.Fatalf("round %d: job %d trace presence diverged", round, i)
			}
			if gt != nil && !reflect.DeepEqual(*gt, *wt) {
				t.Fatalf("round %d: job %d trace diverged (%d/%d events, %d/%d alloc points)",
					round, i, len(gt.Events), len(wt.Events), len(gt.Timeline), len(wt.Timeline))
			}
		}
	}
}

// TestEngineTracesSurviveReset pins that a Result.Trace taken from one run is
// freshly allocated per run: resetting and re-running must not mutate it.
func TestEngineTracesSurviveReset(t *testing.T) {
	s := newReuseScenario(t)
	eng := NewEngine()
	c, err := eng.Reset(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, _, _ := s.run(t, c)
	kept := res[1].Trace
	keptEvents := len(kept.Events)
	keptCompletion := kept.Completion
	if _, err := eng.Reset(s.cfg); err != nil {
		t.Fatal(err)
	}
	c2, _ := eng.Reset(s.cfg)
	s.run(t, c2)
	if len(kept.Events) != keptEvents || kept.Completion != keptCompletion {
		t.Fatal("trace retained across Reset was mutated by a later run")
	}
}

// steadyCfg is a failure-free, policy-free configuration whose event loop
// exercises dispatch, eviction-free completion, and locality accounting —
// the pure hot path the allocation guard measures.
func steadyCfg() (Config, JobConfig, JobConfig) {
	job := dag.NewBuilder("steady").
		Stage("m", 40).
		Stage("r", 8).
		Edge("m", "r", dag.AllToAll).
		MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(8*time.Second, 20*time.Second)},
		{Exec: stats.LognormalFromMedian(12*time.Second, 30*time.Second)},
	})
	bgJob := dag.NewBuilder("steadybg").Stage("work", 60).MustBuild()
	bgp := profile.MustNew(bgJob, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(15*time.Second, 40*time.Second)},
	})
	cfg := Config{Machines: 6, SlotsPerMachine: 3, Seed: 9}
	fg := JobConfig{Profile: p, Guarantee: 8, Deadline: 10 * time.Minute, Tracked: true, NoTrace: true}
	bg := JobConfig{Profile: bgp, Guarantee: 2}
	return cfg, fg, bg
}

// TestEngineSteadyStateAllocations is the arena-reuse acceptance guard: once
// warmed, a full Reset+Submit+Run cycle must allocate only the small
// per-submission constant (seed-label formatting and the job handles), no
// matter how many tasks and events the run processes.
func TestEngineSteadyStateAllocations(t *testing.T) {
	cfg, fg, bg := steadyCfg()
	eng := NewEngine()
	cycle := func() {
		c, err := eng.Reset(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit(bg); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit(fg); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		cycle() // warm every pool and backing array
	}
	avg := testing.AllocsPerRun(10, cycle)
	// Two Submits cost ~5 small allocations each (DeriveSeed's hash and
	// label formatting, the *Handle); the event loop itself must not
	// contribute. 148 tasks × several events each would dwarf this bound
	// immediately if any per-event allocation crept back in.
	if avg > 14 {
		t.Errorf("steady-state cycle allocates %.1f times, want the per-submission constant (<= 14)", avg)
	}
}

// policySteadyCycle runs steadyCfg's workload with the SLO job driven by a
// real Jockey controller (recording off), so the measured loop includes every
// per-tick Decide call along the reused-Engine replay path. The controller is
// stateful and must be rebuilt per cycle; its construction is the per-cycle
// allocation constant the guard bounds.
func policySteadyCycle(t testing.TB, eng *Engine, cfg Config, fg, bg JobConfig) {
	pol, err := control.NewController(control.Config{
		Predictor:  model.NewAmdahl(fg.Profile),
		Utility:    utility.Deadline(10 * time.Minute),
		Candidates: SLODefaults(12),
	})
	if err != nil {
		t.Fatal(err)
	}
	fg.Policy = pol
	fg.ControlPeriod = 30 * time.Second
	c, err := eng.Reset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(bg); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(fg); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestEnginePolicySteadyStateAllocations pins that the decision flight
// recorder's control-loop hooks cost nothing when recording is off: a
// policy-driven Reset+Submit+Run cycle allocates only the per-cycle constant
// (controller construction plus the submission bookkeeping already pinned
// above). The run makes ~20 control ticks; if the nil-recorder Decide path
// allocated even once per tick, the bound would break immediately.
func TestEnginePolicySteadyStateAllocations(t *testing.T) {
	cfg, fg, bg := steadyCfg()
	eng := NewEngine()
	cycle := func() { policySteadyCycle(t, eng, cfg, fg, bg) }
	for i := 0; i < 3; i++ {
		cycle() // warm every pool and backing array
	}
	avg := testing.AllocsPerRun(10, cycle)
	if avg > 40 {
		t.Errorf("policy-driven steady-state cycle allocates %.1f times, want the per-cycle constant (<= 40)", avg)
	}
}

func BenchmarkEngineFresh(b *testing.B) {
	cfg, fg, bg := steadyCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Submit(bg); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Submit(fg); err != nil {
			b.Fatal(err)
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineReuse(b *testing.B) {
	cfg, fg, bg := steadyCfg()
	eng := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := eng.Reset(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Submit(bg); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Submit(fg); err != nil {
			b.Fatal(err)
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
