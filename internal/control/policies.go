package control

import (
	"fmt"

	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/utility"
)

// Static is the "Jockey w/o adaptation" baseline (§3.2, §5.2): it uses the
// predictor once, before the job starts, to find the a-priori allocation
// that maximizes utility, and never changes it.
type Static struct {
	cfg     Config
	decided bool
	alloc   int
}

// NewStatic builds the static-quota policy. It accepts the same Config as
// the controller; hysteresis and dead zone are ignored.
func NewStatic(cfg Config) (*Static, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Static{cfg: cfg}, nil
}

// Name implements Policy.
func (s *Static) Name() string { return "jockey-static" }

// ChangeUtility implements Policy. A static quota cannot react, matching the
// baseline's behaviour; the new curve only affects the initial decision if
// it has not been made yet.
func (s *Static) ChangeUtility(u utility.Fn) {
	if !s.decided {
		s.cfg.Utility = u
	}
}

// Decide implements Policy.
func (s *Static) Decide(st model.State) Decision {
	if !s.decided {
		s.decided = true
		best := -1
		bestU := 0.0
		for _, a := range s.cfg.Candidates {
			ua := s.cfg.Predictor.ExpectedUtility(st, a, s.cfg.Slack, s.cfg.Utility)
			if best == -1 || ua > bestU+1e-9 {
				best, bestU = a, ua
			}
		}
		s.alloc = best
	}
	return Decision{Raw: s.alloc, Granted: s.alloc}
}

// MaxAllocation is the baseline that guarantees a fixed, maximal number of
// tokens for the whole run (§5.1's "max allocation" policy).
type MaxAllocation struct {
	tokens int
}

// NewMaxAllocation builds the policy; tokens must be positive.
func NewMaxAllocation(tokens int) (*MaxAllocation, error) {
	if tokens < 1 {
		return nil, fmt.Errorf("control: max allocation needs at least 1 token, got %d", tokens)
	}
	return &MaxAllocation{tokens: tokens}, nil
}

// Name implements Policy.
func (m *MaxAllocation) Name() string { return "max-allocation" }

// ChangeUtility implements Policy (no-op).
func (m *MaxAllocation) ChangeUtility(utility.Fn) {}

// Decide implements Policy.
func (m *MaxAllocation) Decide(model.State) Decision {
	return Decision{Raw: m.tokens, Granted: m.tokens}
}
