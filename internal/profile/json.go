package profile

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/stats"
)

// DistSpec is a JSON-serializable description of a stats.Distribution.
type DistSpec struct {
	Kind string `json:"kind"`
	// Parametric parameters (seconds).
	A float64 `json:"a,omitempty"` // point: value; uniform: lo; exp: mean; lognormal: mu
	B float64 `json:"b,omitempty"` // uniform: hi; lognormal: sigma; scaled: factor; shifted: offset
	// Samples holds the data of an empirical distribution, in seconds.
	Samples []float64 `json:"samples,omitempty"`
	// Base is the wrapped distribution for shifted/scaled.
	Base *DistSpec `json:"base,omitempty"`
}

// SpecOf converts a distribution built from this repository's types into a
// serializable spec. It returns an error for unknown implementations.
func SpecOf(d stats.Distribution) (*DistSpec, error) {
	switch v := d.(type) {
	case stats.Point:
		return &DistSpec{Kind: "point", A: v.V.Seconds()}, nil
	case stats.Uniform:
		return &DistSpec{Kind: "uniform", A: v.Lo.Seconds(), B: v.Hi.Seconds()}, nil
	case stats.Exponential:
		return &DistSpec{Kind: "exp", A: v.MeanValue.Seconds()}, nil
	case stats.Lognormal:
		return &DistSpec{Kind: "lognormal", A: v.Mu, B: v.Sigma}, nil
	case stats.Shifted:
		base, err := SpecOf(v.Base)
		if err != nil {
			return nil, err
		}
		return &DistSpec{Kind: "shifted", B: v.Offset.Seconds(), Base: base}, nil
	case stats.Scaled:
		base, err := SpecOf(v.Base)
		if err != nil {
			return nil, err
		}
		return &DistSpec{Kind: "scaled", B: v.Factor, Base: base}, nil
	case stats.Truncated:
		base, err := SpecOf(v.Base)
		if err != nil {
			return nil, err
		}
		return &DistSpec{Kind: "truncated", B: v.Max.Seconds(), Base: base}, nil
	case *stats.Empirical:
		samples := v.Samples()
		out := make([]float64, len(samples))
		for i, s := range samples {
			out[i] = s.Seconds()
		}
		return &DistSpec{Kind: "empirical", Samples: out}, nil
	default:
		return nil, fmt.Errorf("profile: cannot serialize distribution %T", d)
	}
}

// Distribution reconstructs the distribution described by the spec.
func (s *DistSpec) Distribution() (stats.Distribution, error) {
	sec := func(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }
	switch s.Kind {
	case "point":
		return stats.Point{V: sec(s.A)}, nil
	case "uniform":
		return stats.Uniform{Lo: sec(s.A), Hi: sec(s.B)}, nil
	case "exp":
		return stats.Exponential{MeanValue: sec(s.A)}, nil
	case "lognormal":
		return stats.Lognormal{Mu: s.A, Sigma: s.B}, nil
	case "shifted":
		if s.Base == nil {
			return nil, fmt.Errorf("profile: shifted spec without base")
		}
		base, err := s.Base.Distribution()
		if err != nil {
			return nil, err
		}
		return stats.Shifted{Base: base, Offset: sec(s.B)}, nil
	case "scaled":
		if s.Base == nil {
			return nil, fmt.Errorf("profile: scaled spec without base")
		}
		base, err := s.Base.Distribution()
		if err != nil {
			return nil, err
		}
		return stats.Scaled{Base: base, Factor: s.B}, nil
	case "truncated":
		if s.Base == nil {
			return nil, fmt.Errorf("profile: truncated spec without base")
		}
		base, err := s.Base.Distribution()
		if err != nil {
			return nil, err
		}
		return stats.Truncated{Base: base, Max: sec(s.B)}, nil
	case "empirical":
		if len(s.Samples) == 0 {
			return nil, fmt.Errorf("profile: empirical spec without samples")
		}
		ds := make([]time.Duration, len(s.Samples))
		for i, v := range s.Samples {
			ds[i] = sec(v)
		}
		return stats.NewEmpirical(ds), nil
	default:
		return nil, fmt.Errorf("profile: unknown distribution kind %q", s.Kind)
	}
}

type stageJSON struct {
	Name        string    `json:"name"`
	Tasks       int       `json:"tasks"`
	InputGB     float64   `json:"input_gb,omitempty"`
	Exec        *DistSpec `json:"exec"`
	Queue       *DistSpec `json:"queue"`
	FailureProb float64   `json:"failure_prob,omitempty"`
	TotalWorkS  float64   `json:"total_work_s"`
	TotalQueueS float64   `json:"total_queue_s"`
	LongestS    float64   `json:"longest_task_s"`
}

type edgeJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
	Kind string `json:"kind"`
}

type profileJSON struct {
	Job                 string      `json:"job"`
	Stages              []stageJSON `json:"stages"`
	Edges               []edgeJSON  `json:"edges"`
	TrainingCompletionS float64     `json:"training_completion_s,omitempty"`
}

// MarshalJSON serializes the profile, including the plan, so a profile file
// is self-contained.
func (p *Profile) MarshalJSON() ([]byte, error) {
	out := profileJSON{
		Job:                 p.Job.Name,
		TrainingCompletionS: p.TrainingCompletion.Seconds(),
	}
	for i, s := range p.Job.Stages {
		sp := p.Stages[i]
		exec, err := SpecOf(sp.Exec)
		if err != nil {
			return nil, err
		}
		queue, err := SpecOf(sp.Queue)
		if err != nil {
			return nil, err
		}
		out.Stages = append(out.Stages, stageJSON{
			Name: s.Name, Tasks: s.Tasks, InputGB: s.InputGB,
			Exec: exec, Queue: queue, FailureProb: sp.FailureProb,
			TotalWorkS:  sp.TotalWork.Seconds(),
			TotalQueueS: sp.TotalQueue.Seconds(),
			LongestS:    sp.LongestTask.Seconds(),
		})
	}
	for _, e := range p.Job.Edges {
		out.Edges = append(out.Edges, edgeJSON{
			From: p.Job.Stages[e.From].Name,
			To:   p.Job.Stages[e.To].Name,
			Kind: e.Kind.String(),
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON reconstructs a profile produced by MarshalJSON.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var in profileJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	b := dag.NewBuilder(in.Job)
	for _, s := range in.Stages {
		b.StageData(s.Name, s.Tasks, s.InputGB)
	}
	for _, e := range in.Edges {
		var kind dag.EdgeKind
		switch e.Kind {
		case "one-to-one":
			kind = dag.OneToOne
		case "all-to-all":
			kind = dag.AllToAll
		default:
			return fmt.Errorf("profile: unknown edge kind %q", e.Kind)
		}
		b.Edge(e.From, e.To, kind)
	}
	job, err := b.Build()
	if err != nil {
		return err
	}
	sec := func(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }
	stages := make([]StageProfile, len(in.Stages))
	for i, s := range in.Stages {
		if s.Exec == nil {
			return fmt.Errorf("profile: stage %q missing exec distribution", s.Name)
		}
		exec, err := s.Exec.Distribution()
		if err != nil {
			return err
		}
		var queue stats.Distribution = stats.Point{}
		if s.Queue != nil {
			if queue, err = s.Queue.Distribution(); err != nil {
				return err
			}
		}
		stages[i] = StageProfile{
			Exec: exec, Queue: queue, FailureProb: s.FailureProb,
			TotalWork:   sec(s.TotalWorkS),
			TotalQueue:  sec(s.TotalQueueS),
			LongestTask: sec(s.LongestS),
		}
	}
	p.Job = job
	p.Stages = stages
	p.TrainingCompletion = sec(in.TrainingCompletionS)
	return nil
}
