package model

import (
	"math"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/progress"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
)

// deterministic two-stage profile: 20 x 30s map, barrier, 4 x 60s reduce.
// Total work 840s; critical path 90s.
func detProfile(t testing.TB) *profile.Profile {
	t.Helper()
	job := dag.NewBuilder("det").
		Stage("map", 20).
		Stage("reduce", 4).
		Edge("map", "reduce", dag.AllToAll).
		MustBuild()
	return profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 30 * time.Second}},
		{Exec: stats.Point{V: 60 * time.Second}},
	})
}

// noisyProfile has heavy-tailed stages for distribution-sensitive tests.
func noisyProfile(t testing.TB) *profile.Profile {
	t.Helper()
	job := dag.NewBuilder("noisy").
		Stage("map", 40).
		Stage("reduce", 8).
		Edge("map", "reduce", dag.AllToAll).
		MustBuild()
	return profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(10*time.Second, 40*time.Second), FailureProb: 0.02},
		{Exec: stats.LognormalFromMedian(20*time.Second, 50*time.Second)},
	})
}

func TestOracle(t *testing.T) {
	cases := []struct {
		work, d time.Duration
		want    int
	}{
		{time.Hour, time.Hour, 1},
		{10 * time.Hour, time.Hour, 10},
		{61 * time.Minute, time.Hour, 2}, // ceil
		{0, time.Hour, 0},
		{time.Hour, 0, 0},
	}
	for _, c := range cases {
		if got := Oracle(c.work, c.d); got != c.want {
			t.Errorf("Oracle(%v, %v) = %d, want %d", c.work, c.d, got, c.want)
		}
	}
}

func TestImpactAboveOracle(t *testing.T) {
	if got := ImpactAboveOracle(100, 75); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("impact = %v", got)
	}
	if got := ImpactAboveOracle(50, 75); got != 0 {
		t.Errorf("below-oracle impact = %v, want 0", got)
	}
	if got := ImpactAboveOracle(0, 10); got != 0 {
		t.Errorf("zero alloc = %v", got)
	}
}

func TestAmdahlEstimate(t *testing.T) {
	p := detProfile(t)
	m := NewAmdahl(p)
	if m.Name() != "amdahl" {
		t.Errorf("name = %q", m.Name())
	}
	// At start: S_0 = 30+60 = 90s, P_0 = 840s.
	got := m.Estimate([]float64{0, 0}, 10)
	want := 90*time.Second + 84*time.Second
	if got != want {
		t.Errorf("Estimate(0, 10) = %v, want %v", got, want)
	}
	// Map done: S = 60s, P = 240s; a=4 -> 60+60=120s.
	got = m.Estimate([]float64{1, 0}, 4)
	if got != 120*time.Second {
		t.Errorf("Estimate(map done, 4) = %v, want 120s", got)
	}
	// All done: 0.
	if got := m.Estimate([]float64{1, 1}, 4); got != 0 {
		t.Errorf("Estimate(done) = %v", got)
	}
	// a < 1 clamps.
	if got := m.Estimate([]float64{1, 0}, 0); got != 60*time.Second+240*time.Second {
		t.Errorf("Estimate(a=0) = %v", got)
	}
	// nil fs treated as all-zero.
	if got := m.Estimate(nil, 10); got != want {
		t.Errorf("Estimate(nil) = %v, want %v", got, want)
	}
}

func TestAmdahlPredictorInterface(t *testing.T) {
	p := detProfile(t)
	var pred Predictor = NewAmdahl(p)
	st := State{Elapsed: time.Minute, FracDone: []float64{0.5, 0}}
	r1 := pred.Remaining(st, 10, 0.5)
	r2 := pred.Remaining(st, 10, 0.99)
	if r1 != r2 {
		t.Error("analytic model must be quantile-invariant")
	}
	u := utility.Deadline(10 * time.Minute)
	// More allocation must not lower expected utility for this job.
	u4 := pred.ExpectedUtility(st, 4, 1.0, u)
	u40 := pred.ExpectedUtility(st, 40, 1.0, u)
	if u40 < u4 {
		t.Errorf("utility decreased with allocation: %v -> %v", u4, u40)
	}
}

func buildTestCPA(t testing.TB, p *profile.Profile, allocs []int) *CPA {
	t.Helper()
	c, err := BuildCPA(p, progress.NewTotalWorkWithQ(p), CPAConfig{
		Allocs:       allocs,
		RunsPerAlloc: 6,
		SampleEvery:  10 * time.Second,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildCPAValidation(t *testing.T) {
	p := detProfile(t)
	ind := progress.NewTotalWorkWithQ(p)
	if _, err := BuildCPA(nil, ind, CPAConfig{Allocs: []int{1}}); err == nil {
		t.Error("nil profile must fail")
	}
	if _, err := BuildCPA(p, nil, CPAConfig{Allocs: []int{1}}); err == nil {
		t.Error("nil indicator must fail")
	}
	if _, err := BuildCPA(p, ind, CPAConfig{}); err == nil {
		t.Error("empty alloc grid must fail")
	}
	if _, err := BuildCPA(p, ind, CPAConfig{Allocs: []int{5, 3}}); err == nil {
		t.Error("non-ascending grid must fail")
	}
	if _, err := BuildCPA(p, ind, CPAConfig{Allocs: []int{0, 3}}); err == nil {
		t.Error("non-positive alloc must fail")
	}
}

func TestCPARemainingShrinksWithProgress(t *testing.T) {
	p := detProfile(t)
	c := buildTestCPA(t, p, []int{4, 8, 16})
	st0 := State{Elapsed: 0, FracDone: []float64{0, 0}}
	stMid := State{Elapsed: 5 * time.Minute, FracDone: []float64{1, 0}}
	stEnd := State{Elapsed: 9 * time.Minute, FracDone: []float64{1, 1}}
	r0 := c.Remaining(st0, 8, 0.5)
	rMid := c.Remaining(stMid, 8, 0.5)
	rEnd := c.Remaining(stEnd, 8, 0.5)
	if !(r0 > rMid && rMid > rEnd) {
		t.Errorf("remaining not shrinking: %v -> %v -> %v", r0, rMid, rEnd)
	}
	if rEnd != 0 {
		t.Errorf("remaining at completion = %v, want 0", rEnd)
	}
}

func TestCPARemainingShrinksWithAllocation(t *testing.T) {
	p := detProfile(t)
	c := buildTestCPA(t, p, []int{2, 8, 20})
	st := State{FracDone: []float64{0, 0}}
	r2 := c.Remaining(st, 2, 0.5)
	r20 := c.Remaining(st, 20, 0.5)
	if r20 >= r2 {
		t.Errorf("more tokens should predict faster completion: a=2 %v vs a=20 %v", r2, r20)
	}
	// The deterministic job at a=20 finishes in exactly 90s; C(0, a) also
	// holds samples from t=10s and t=20s (progress still 0), so the
	// worst-case quantile — not the median — recovers the full latency.
	if got := c.Remaining(st, 20, 1.0); got != 90*time.Second {
		t.Errorf("a=20 worst-case remaining = %v, want 90s", got)
	}
}

func TestCPAAccuracyOnDeterministicJob(t *testing.T) {
	p := detProfile(t)
	c := buildTestCPA(t, p, []int{4})
	// At alloc 4: 5 map waves (150s) + 1 reduce wave (60s) = 210s.
	got := c.Remaining(State{FracDone: []float64{0, 0}}, 4, 1.0)
	if got != 210*time.Second {
		t.Errorf("predicted %v, want 210s", got)
	}
}

func TestCPASnapAlloc(t *testing.T) {
	p := detProfile(t)
	c := buildTestCPA(t, p, []int{4, 8, 16})
	cases := []struct{ in, want int }{
		{1, 4}, {4, 4}, {5, 4}, {7, 8}, {6, 4}, {12, 8}, {13, 16}, {99, 16},
	}
	for _, cse := range cases {
		if got := c.SnapAlloc(cse.in); got != cse.want {
			t.Errorf("SnapAlloc(%d) = %d, want %d", cse.in, got, cse.want)
		}
	}
}

func TestCPAExpectedUtility(t *testing.T) {
	p := noisyProfile(t)
	c := buildTestCPA(t, p, []int{2, 10, 30})
	st := State{FracDone: []float64{0, 0}}
	// A generous deadline yields utility ~1 at high allocation.
	easy := utility.Deadline(4 * time.Hour)
	if got := c.ExpectedUtility(st, 30, 1.2, easy); got < 0.99 {
		t.Errorf("easy deadline utility = %v", got)
	}
	// An infeasible deadline yields negative utility at any allocation.
	hard := utility.Deadline(time.Second)
	if got := c.ExpectedUtility(st, 30, 1.2, hard); got >= 0 {
		t.Errorf("impossible deadline utility = %v", got)
	}
	// Higher slack never increases expected utility (monotone curve).
	u1 := c.ExpectedUtility(st, 10, 1.0, utility.Deadline(10*time.Minute))
	u2 := c.ExpectedUtility(st, 10, 1.5, utility.Deadline(10*time.Minute))
	if u2 > u1+1e-9 {
		t.Errorf("slack increased utility: %v -> %v", u1, u2)
	}
}

func TestCPAWorstCaseAboveMedian(t *testing.T) {
	p := noisyProfile(t)
	c := buildTestCPA(t, p, []int{10})
	st := State{FracDone: []float64{0, 0}}
	med := c.Remaining(st, 10, 0.5)
	worst := c.Remaining(st, 10, 1.0)
	if worst < med {
		t.Errorf("worst case %v below median %v", worst, med)
	}
	if worst == med {
		t.Errorf("noisy job should show spread (median %v == worst %v)", med, worst)
	}
}

func TestCPAEmptyBucketWidening(t *testing.T) {
	p := detProfile(t)
	c := buildTestCPA(t, p, []int{8})
	// Progress 0.97 lands in a bucket that may have no samples (the job jumps
	// from reduce-running to done); the query must widen, not return junk.
	st := State{FracDone: []float64{1, 0.9}}
	got := c.Remaining(st, 8, 0.5)
	if got < 0 || got > 5*time.Minute {
		t.Errorf("widened remaining = %v out of sane range", got)
	}
	if c.Indicator().Name() != "totalworkWithQ" {
		t.Errorf("indicator = %q", c.Indicator().Name())
	}
	if len(c.Allocs()) != 1 || c.Allocs()[0] != 8 {
		t.Errorf("Allocs = %v", c.Allocs())
	}
}

func TestCPADeterministicRebuild(t *testing.T) {
	p := noisyProfile(t)
	a := buildTestCPA(t, p, []int{5, 15})
	b := buildTestCPA(t, p, []int{5, 15})
	st := State{FracDone: []float64{0.3, 0}}
	if a.Remaining(st, 5, 0.9) != b.Remaining(st, 5, 0.9) {
		t.Error("same seed must rebuild identical tables")
	}
}
