package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the trace (events, timeline, completion) so training
// runs can be archived and profiles rebuilt later.
func (t *JobTrace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// ReadJSON deserializes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*JobTrace, error) {
	var t JobTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	if t.JobName == "" {
		return nil, fmt.Errorf("trace: decoded trace has no job name")
	}
	for i, e := range t.Events {
		if e.Started < e.Queued || e.Ended < e.Started {
			return nil, fmt.Errorf("trace: event %d has inconsistent timestamps", i)
		}
		// Dispatched is optional in hand-written traces (zero = unrecorded).
		if e.Dispatched != 0 && (e.Dispatched < e.Queued || e.Started < e.Dispatched) {
			return nil, fmt.Errorf("trace: event %d has inconsistent dispatch time", i)
		}
	}
	return &t, nil
}
