package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestQuantileBasics(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {-0.5, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	Quantile(vals, 0.5)
	if vals[0] != 4 || vals[1] != 1 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestQuantileDurations(t *testing.T) {
	ds := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second}
	if got := QuantileDurations(ds, 0.5); got != 2*time.Second {
		t.Errorf("median = %v", got)
	}
	if got := QuantileDurations(ds, 0.75); got != 3*time.Second {
		t.Errorf("p75 = %v, want 3s", got)
	}
	if got := QuantileDurations(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestMeanStdDevCoV(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vals); got != 5 {
		t.Errorf("mean = %v", got)
	}
	if got := StdDev(vals); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
	if got := CoV(vals); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("CoV = %v, want 0.4", got)
	}
	if CoV(nil) != 0 || StdDev([]float64{1}) != 0 || Mean(nil) != 0 {
		t.Error("degenerate inputs must yield 0")
	}
	if CoV([]float64{0, 0}) != 0 {
		t.Error("zero-mean CoV must be 0")
	}
}

func TestSummarize(t *testing.T) {
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := Summarize(vals)
	if s.N != 101 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.P50 != 50 || s.P10 != 10 || s.P90 != 90 {
		t.Errorf("percentiles: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary: %+v", z)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if s.Mean != 2 {
		t.Errorf("mean = %v", s.Mean)
	}
}

func TestCoVDurations(t *testing.T) {
	got := CoVDurations([]time.Duration{2 * time.Second, 4 * time.Second, 4 * time.Second,
		4 * time.Second, 5 * time.Second, 5 * time.Second, 7 * time.Second, 9 * time.Second})
	if math.Abs(got-0.4) > 1e-9 {
		t.Errorf("CoV = %v, want 0.4", got)
	}
}

func TestQuantileSortedAgreesWithQuantileProperty(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		q = math.Abs(math.Mod(q, 1))
		want := Quantile(vals, q)
		s := make([]float64, len(vals))
		copy(s, vals)
		sort.Float64s(s)
		return QuantileSorted(s, q) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReservoirBelowCapacityKeepsAll(t *testing.T) {
	rv := NewReservoir(10)
	r := NewRNG(1)
	for i := 1; i <= 5; i++ {
		rv.Add(time.Duration(i), r)
	}
	if rv.Len() != 5 || rv.Seen() != 5 {
		t.Fatalf("len=%d seen=%d", rv.Len(), rv.Seen())
	}
}

func TestReservoirBoundedAndUniformish(t *testing.T) {
	const capacity, n = 100, 10000
	rv := NewReservoir(capacity)
	r := NewRNG(2)
	for i := 0; i < n; i++ {
		rv.Add(time.Duration(i), r)
	}
	if rv.Len() != capacity {
		t.Fatalf("len = %d, want %d", rv.Len(), capacity)
	}
	if rv.Seen() != n {
		t.Fatalf("seen = %d", rv.Seen())
	}
	// A uniform sample of 0..n-1 should have mean near n/2.
	var sum float64
	for _, v := range rv.Values() {
		sum += float64(v)
	}
	mean := sum / capacity
	if mean < n*0.35 || mean > n*0.65 {
		t.Errorf("reservoir mean %.0f suggests bias (want ~%d)", mean, n/2)
	}
}

func TestReservoirZeroCapacity(t *testing.T) {
	rv := NewReservoir(0)
	r := NewRNG(3)
	rv.Add(time.Second, r)
	rv.Add(2*time.Second, r)
	if rv.Len() != 1 {
		t.Fatalf("capacity-0 reservoir should clamp to 1, got len %d", rv.Len())
	}
}

func TestZScore(t *testing.T) {
	cases := []struct{ q, want float64 }{
		{0.5, 0},
		{0.9, 1.2815515655446004},
		{0.1, -1.2815515655446004},
	}
	for _, c := range cases {
		if got := zScore(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("zScore(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsInf(zScore(0), -1) || !math.IsInf(zScore(1), 1) {
		t.Error("zScore extremes must be infinite")
	}
}

func TestSecondsToDurationClamps(t *testing.T) {
	if secondsToDuration(-5) != 0 {
		t.Error("negative seconds must clamp to 0")
	}
	if secondsToDuration(1e30) != math.MaxInt64 {
		t.Error("huge seconds must clamp to MaxInt64")
	}
	if got := secondsToDuration(1.5); got != 1500*time.Millisecond {
		t.Errorf("1.5s -> %v", got)
	}
	if got := durationToSeconds(1500 * time.Millisecond); got != 1.5 {
		t.Errorf("roundtrip: %v", got)
	}
}
