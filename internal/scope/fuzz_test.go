package scope

import (
	"strings"
	"testing"
)

// FuzzCompile checks that arbitrary input never panics the compiler and
// that accepted scripts produce structurally valid plans.
func FuzzCompile(f *testing.F) {
	f.Add(`JOB "x"; EXTRACT a FROM "f"; OUTPUT a TO "o";`)
	f.Add(clickstream)
	f.Add(`JOB "x"; EXTRACT a FROM "f" TASKS 3 SIZE 1.5; REDUCE b FROM a ON k; OUTPUT b TO "o";`)
	f.Add("JOB \"x\";\n-- comment\nEXTRACT a FROM \"f\";\nJOIN j FROM a, a;\n")
	f.Add(`job "lower"; extract a from "f"; output a to "o";`)
	f.Add("\"unterminated")
	f.Add("JOB x; 1.2.3 ,,;;")
	f.Fuzz(func(t *testing.T, src string) {
		job, err := Compile(src)
		if err != nil {
			if !strings.Contains(err.Error(), "scope:") {
				t.Errorf("error missing package prefix: %v", err)
			}
			return
		}
		if err := job.Validate(); err != nil {
			t.Errorf("accepted script produced invalid plan: %v", err)
		}
	})
}
