#!/usr/bin/env bash
# bench.sh — run a benchmark suite and emit a machine-readable BENCH_*.json
# so the perf trajectory is tracked PR-over-PR (CI uploads the files as
# non-gating artifacts).
#
# Usage: scripts/bench.sh [suite] [output.json]
#
# Suites:
#   simcore (default) — simulator-core hot-path benchmarks:
#     internal/sim:    BenchmarkSimRun            (fresh engine vs reused Runner)
#     internal/eventq: BenchmarkEventQueue        (steady-state Push+Pop)
#     internal/model:  BenchmarkCPAQuery          (Remaining / ExpectedUtility)
#     internal/model:  BenchmarkOnlineSimTick     (per-tick online prediction)
#     root:            BenchmarkSimulatorThroughput (job F, 6139 vertices)
#   grid — experiment-executor benchmarks (run once each; a single grid
#   iteration already replays dozens of cluster simulations):
#     internal/cluster:     BenchmarkEngineFresh/Reuse (arena reuse win)
#     internal/experiments: BenchmarkGridSerial/Parallel (robustness grid)
#   fleet — fleet-arbiter benchmarks (one full multi-job replay per
#   iteration, models and engine warmed outside the timed loop):
#     internal/fleet: BenchmarkFleetReplay
#   largecluster — cosmos-scale engine benchmarks (the PR-9 scale contract;
#   one iteration replays a full multi-hour horizon, so counts are fixed):
#     internal/cluster: BenchmarkEngineLargeCluster (10k machines, ≥1e5 tasks)
#     internal/cluster: BenchmarkEngineMidCluster   (1/10 scale trend line)
#   fleetscale — thousands-of-jobs arbitration + arrival-wave batching (the
#   PR-10 fleet-scale contract):
#     internal/fleet:  BenchmarkFleetScaleReplay (2,400-offer replay)
#     internal/eventq: BenchmarkArrivalWaveSingle/Batch (5e5-event wave)
#
# Output files may carry hand-added "baseline_*" blocks recording pre-change
# numbers (BENCH_largecluster.json does); those are history, so the script
# refuses to clobber such a file unless BENCH_FORCE=1 is set — re-point the
# output or merge the fresh "benchmarks" array by hand instead.
set -euo pipefail

cd "$(dirname "$0")/.."
SUITE="${1:-simcore}"
OUT="${2:-BENCH_${SUITE}.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

if [ -e "$OUT" ] && grep -q '"baseline' "$OUT" && [ "${BENCH_FORCE:-0}" != "1" ]; then
  echo "bench.sh: $OUT holds a hand-added baseline block; refusing to overwrite it." >&2
  echo "bench.sh: pass a different output path, or set BENCH_FORCE=1 and re-add the baseline." >&2
  exit 3
fi

run() { # run <package> <bench regex> [benchtime]
  go test -run NONE -bench "$2" -benchmem -benchtime "${3:-${BENCHTIME:-1s}}" -count 1 "$1" | tee -a "$TMP"
}

: >"$TMP"
case "$SUITE" in
simcore)
  run ./internal/sim 'BenchmarkSimRun'
  run ./internal/eventq 'BenchmarkEventQueue'
  run ./internal/model 'BenchmarkCPAQuery|BenchmarkOnlineSimTick'
  run . 'BenchmarkSimulatorThroughput'
  ;;
grid)
  run ./internal/cluster 'BenchmarkEngine(Fresh|Reuse)$' "${BENCHTIME:-1x}"
  run ./internal/experiments 'BenchmarkGrid' "${BENCHTIME:-1x}"
  ;;
fleet)
  run ./internal/fleet 'BenchmarkFleet' "${BENCHTIME:-5x}"
  ;;
largecluster)
  run ./internal/cluster 'BenchmarkEngineMidCluster$' "${BENCHTIME:-3x}"
  run ./internal/cluster 'BenchmarkEngineLargeCluster$' "${BENCHTIME:-3x}"
  ;;
fleetscale)
  run ./internal/fleet 'BenchmarkFleetScaleReplay$' "${BENCHTIME:-3x}"
  run ./internal/eventq 'BenchmarkArrivalWave' "${BENCHTIME:-5x}"
  ;;
*)
  echo "bench.sh: unknown suite '$SUITE' (want simcore, grid, fleet, largecluster or fleetscale)" >&2
  exit 2
  ;;
esac

# Parse `BenchmarkName-N  iters  X ns/op  Y B/op  Z allocs/op [extra metrics]`
# into JSON. awk keeps the script dependency-free (no jq in the container).
# Every suite gets the same metadata header — suite, timestamp, toolchain,
# benchtime — so files are comparable PR-over-PR without guessing how they
# were produced.
GOVER="$(go env GOVERSION)"
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v suite="$SUITE" \
  -v gover="$GOVER" -v benchtime="${BENCHTIME:-suite-default}" '
BEGIN { n = 0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name) # strip GOMAXPROCS suffix
  ns = ""; bytes = ""; allocs = ""
  for (i = 2; i < NF; i++) {
    if ($(i + 1) == "ns/op") ns = $i
    if ($(i + 1) == "B/op") bytes = $i
    if ($(i + 1) == "allocs/op") allocs = $i
  }
  if (ns == "") next
  line = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
  if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
  if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
  line = line "}"
  rows[n++] = line
}
END {
  printf "{\n  \"suite\": \"%s\",\n  \"generated\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", suite, date, gover, benchtime
  for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
  printf "  ]\n}\n"
}' "$TMP" >"$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
