package control

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/trace"
	"github.com/jockeysim/jockey/internal/utility"
)

// GuardMode is one rung of the guard's fallback ladder, ordered from most to
// least model-dependent.
type GuardMode int

// The fallback chain: the precomputed C(p, a) table (possibly rebuilt from a
// blended profile), online forward simulation on the blended profile, the
// analytic Amdahl model, and finally the model-free max-allocation panic.
const (
	GuardPrimary GuardMode = iota
	GuardOnlineSim
	GuardAmdahl
	GuardPanic
)

// String names the mode for decision logs and reports.
func (m GuardMode) String() string {
	switch m {
	case GuardPrimary:
		return "primary"
	case GuardOnlineSim:
		return "online-sim"
	case GuardAmdahl:
		return "amdahl"
	case GuardPanic:
		return "panic"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// The guard-event kinds.
const (
	// GuardEventReprofile: model rebuilt in place from the blended profile.
	GuardEventReprofile = "reprofile"
	// GuardEventFallback: stepped down one rung of the ladder.
	GuardEventFallback = "fallback"
	// GuardEventPanic: entered max-allocation panic.
	GuardEventPanic = "panic"
	// GuardEventRecover: left panic, restored the previous rung.
	GuardEventRecover = "recover"
)

// GuardEvent records one guard-rail transition for the decision log.
type GuardEvent struct {
	// At is the job's elapsed time when the transition happened.
	At time.Duration
	// Kind is one of the GuardEvent* constants.
	Kind string
	// From and To are the rungs before and after the transition (equal for
	// "reprofile").
	From, To GuardMode
	// Deviation is the detector score that triggered the transition.
	Deviation float64
	// LiveSamples is the number of successful live task observations
	// available at the time.
	LiveSamples int
}

// GuardTuning holds the detector and re-profiling knobs. The zero value
// gives the defaults.
type GuardTuning struct {
	// Window is the number of control ticks the deviation detector averages
	// over (default 5).
	Window int
	// Threshold is the normalized misprediction score above which the model
	// is declared stale (default 0.3). The score is the windowed mean of
	// per-tick predicted-completion slip divided by wall time: 0 for a
	// perfectly calibrated model, ~0.5 under a 2× runtime drift.
	Threshold float64
	// RebuildBackoff is the minimum elapsed time between model rebuilds, so
	// refreshes cannot storm the control period (default 4 minutes).
	RebuildBackoff time.Duration
	// MinLiveSamples is the number of successful live task observations
	// required before the prior profile is blended and a model rebuilt
	// (default 20).
	MinLiveSamples int
	// BlendPriorWeight scales the prior profile's effective sample count in
	// the blend (default 0.25: by the time the guard rebuilds, the detector
	// has already proven the prior wrong, so live observations dominate).
	BlendPriorWeight float64
	// LiveWindow restricts the blend to live observations that completed
	// within this much elapsed time before the rebuild (default 10 minutes;
	// negative = unlimited). Recency weighting is what lets the blend track a
	// regime change instead of averaging it away: after a mid-run drift the
	// window soon holds only post-drift samples.
	LiveWindow time.Duration
	// DisableReprofile skips the in-place rebuild rung: staleness steps
	// straight down the fallback chain.
	DisableReprofile bool
	// DisableFallback pins the guard to the primary rung: the detector and
	// re-profiling still run, but the chain never steps down and never
	// panics. Used to isolate the detector in experiments.
	DisableFallback bool
}

func (t *GuardTuning) fill() {
	if t.Window <= 0 {
		t.Window = 5
	}
	if t.Threshold <= 0 {
		t.Threshold = 0.3
	}
	if t.RebuildBackoff <= 0 {
		t.RebuildBackoff = 4 * time.Minute
	}
	if t.MinLiveSamples <= 0 {
		t.MinLiveSamples = 20
	}
	if t.BlendPriorWeight <= 0 {
		t.BlendPriorWeight = 0.25
	}
	if t.LiveWindow == 0 {
		t.LiveWindow = 10 * time.Minute
	}
}

// GuardConfig wires a Guard around a Controller.
type GuardConfig struct {
	// Controller is the primary control loop (required). The guard swaps its
	// predictor on re-profiles and fallbacks; smoothing state carries over.
	Controller *Controller
	// Prior is the profile the primary model was built from (required): the
	// baseline that live observations are blended into.
	Prior *profile.Profile
	// RebuildPrimary rebuilds the primary predictor from a blended profile
	// (e.g. the parallel C(p, a) rebuild). generation counts rebuilds so the
	// callee can derive a fresh deterministic seed. Nil disables the
	// re-profiling rung.
	RebuildPrimary func(p *profile.Profile, generation int) (model.Predictor, error)
	// NewOnlineSim builds the forward-simulation fallback predictor from a
	// blended profile. Nil skips the rung (falls through to Amdahl).
	NewOnlineSim func(p *profile.Profile, generation int) (model.Predictor, error)
	// MaxAllocation is the panic grant (default: the controller's top
	// candidate, i.e. the same token budget the rest of the chain can reach).
	MaxAllocation int
	// Tuning holds the detector and blending knobs.
	Tuning GuardTuning
}

// Guard is the model-staleness guard-rail layer around the Jockey control
// loop: a deviation detector scoring the predictor's forecasts against
// observed progress, online re-profiling that blends live task observations
// into the prior profile and rebuilds the model mid-run, and a graceful
// fallback chain that steps down to simpler predictors — and ultimately a
// max-allocation panic — when confidence is low and the deadline at risk.
//
// Guard implements Policy and is deterministic for a fixed seed: all inputs
// (states, live events) arrive in event order and rebuild seeds derive from
// a generation counter.
type Guard struct {
	cfg  GuardConfig
	mode GuardMode
	// preP panicFrom remember the rung to return to when panic clears.
	panicFrom GuardMode

	live       *trace.JobTrace
	liveOK     int // successful (non-failed) events in live
	slips      []float64
	slipN      int // valid entries in slips (ring fill)
	slipI      int // ring index
	prevState  model.State
	prevSet    bool
	rebuilds   int // rebuilt-or-fallback predictor generations
	reprofiles int
	lastBuild  time.Duration
	builtOnce  bool
	stale      bool // latched: detector fired at least once on this rung
	// alarm survives detector resets: once staleness fires it stays raised
	// until predictions comfortably meet the deadline again, so rescue
	// actions are not suspended while a freshly swapped model refills the
	// detector window.
	alarm bool
	// recoverStreak counts consecutive panic ticks whose predictions meet
	// the deadline; panic only clears after a full window of them, so noisy
	// predictions cannot flap the grant (each flap demotes in-flight tasks
	// to spare, exposing them to eviction).
	recoverStreak int
	events        []GuardEvent

	// rec, when non-nil, receives the final per-tick DecisionRecord. The
	// inner controller emits into capture (stashing the record in pending)
	// so the guard can amend it — mode, deviation, urgency overrides —
	// before forwarding; panic ticks, which bypass the controller, publish
	// through pscratch instead.
	rec      Recorder
	capture  guardCapture
	pending  *DecisionRecord
	pscratch DecisionRecord
}

// guardCapture intercepts the inner controller's decision records so the
// guard can finalize them after its own overrides run.
type guardCapture struct{ g *Guard }

// RecordDecision implements Recorder.
func (gc *guardCapture) RecordDecision(r *DecisionRecord) { gc.g.pending = r }

// SetRecorder installs (or, with nil, removes) the decision recorder. The
// guard re-emits the inner controller's records after applying its
// overrides, so recorders see the grant that actually took effect.
func (g *Guard) SetRecorder(rec Recorder) {
	g.rec = rec
	g.pending = nil
	if rec == nil {
		g.cfg.Controller.SetRecorder(nil)
		return
	}
	g.capture = guardCapture{g: g}
	g.cfg.Controller.SetRecorder(&g.capture)
}

// flushPending forwards the controller's captured record, synced to the
// decision as finally returned. mech overrides the mechanism when non-empty.
func (g *Guard) flushPending(d Decision, mech string) {
	r := g.pending
	g.pending = nil
	if g.rec == nil || r == nil {
		return
	}
	r.Granted = d.Granted
	r.Predicted = d.Predicted
	r.Mode = d.Mode
	r.Deviation = d.Deviation
	if mech != "" {
		r.Mechanism = mech
	}
	g.rec.RecordDecision(r)
}

// NewGuard builds the guard-rail layer. See GuardConfig.
func NewGuard(cfg GuardConfig) (*Guard, error) {
	if cfg.Controller == nil {
		return nil, fmt.Errorf("control: GuardConfig.Controller is required")
	}
	if cfg.Prior == nil {
		return nil, fmt.Errorf("control: GuardConfig.Prior is required")
	}
	cfg.Tuning.fill()
	if cfg.MaxAllocation <= 0 {
		cand := cfg.Controller.Candidates()
		cfg.MaxAllocation = cand[len(cand)-1]
	}
	return &Guard{
		cfg:   cfg,
		live:  trace.New(cfg.Prior.Job.Name, cfg.Prior.Job.NumStages()),
		slips: make([]float64, cfg.Tuning.Window),
	}, nil
}

// Name implements Policy.
func (g *Guard) Name() string { return "jockey-guarded" }

// ChangeUtility implements Policy, delegating to the inner controller.
func (g *Guard) ChangeUtility(u utility.Fn) { g.cfg.Controller.ChangeUtility(u) }

// Mode returns the current rung of the fallback chain.
func (g *Guard) Mode() GuardMode { return g.mode }

// Events returns a copy of the transition log (reprofiles, fallbacks,
// panics). The copy keeps callers from mutating — or observing later
// appends to — the guard's internal log.
func (g *Guard) Events() []GuardEvent {
	return append([]GuardEvent(nil), g.events...)
}

// Reprofiles returns how many in-place model rebuilds have happened.
func (g *Guard) Reprofiles() int { return g.reprofiles }

// ObserveTask ingests one completed task attempt from the running job. Wire
// it to the cluster's JobConfig.OnTaskEvent so the guard can re-profile
// online from the live trace.
func (g *Guard) ObserveTask(e trace.TaskEvent) {
	g.live.AddTask(e)
	if !e.Failed {
		g.liveOK++
	}
}

// detectorQuantile is the remaining-time quantile the deviation detector
// probes. The median is less noisy than the controller's worst-case
// quantile, which jumps between reservoir extremes.
const detectorQuantile = 0.5

// observe scores the predictor's self-consistency over the last control
// period: for a calibrated model, elapsed + Remaining is a martingale, so
// the per-tick slip ((T_t − T_{t−1}) / Δt, both evaluated under the same
// allocation) should hover around zero. Persistent positive slip means the
// model underestimates remaining work (runtime drift, outages, contention);
// negative slip means it overestimates (input shrank). Probing both states
// under the current grant isolates model error from control actions.
func (g *Guard) observe(st model.State) float64 {
	defer func() {
		g.prevState = model.State{Elapsed: st.Elapsed, FracDone: append([]float64(nil), st.FracDone...)}
		g.prevSet = true
	}()
	if !g.prevSet {
		return g.score()
	}
	dt := st.Elapsed - g.prevState.Elapsed
	if dt <= 0 {
		return g.score()
	}
	a := g.cfg.Controller.Granted()
	if a < 1 {
		a = 1
	}
	pred := g.cfg.Controller.Predictor()
	tNow := st.Elapsed + pred.Remaining(st, a, detectorQuantile)
	tPrev := g.prevState.Elapsed + pred.Remaining(g.prevState, a, detectorQuantile)
	slip := float64(tNow-tPrev) / float64(dt)
	g.slips[g.slipI] = slip
	g.slipI = (g.slipI + 1) % len(g.slips)
	if g.slipN < len(g.slips) {
		g.slipN++
	}
	return g.score()
}

// score returns |windowed mean slip|, or 0 until the window has filled.
func (g *Guard) score() float64 {
	mean := g.signedScore()
	if mean < 0 {
		return -mean
	}
	return mean
}

// signedScore returns the windowed mean slip with its sign (positive =
// completion receding, the model underestimates; negative = the model
// overestimates), or 0 until the window has filled.
func (g *Guard) signedScore() float64 {
	if g.slipN < len(g.slips) {
		return 0
	}
	var sum float64
	for _, s := range g.slips[:g.slipN] {
		sum += s
	}
	return sum / float64(g.slipN)
}

// resetDetector clears the slip window and state baseline, giving a freshly
// swapped predictor an unbiased measurement.
func (g *Guard) resetDetector() {
	g.slipN, g.slipI = 0, 0
	g.prevSet = false
	g.stale = false
}

// recentLive returns the live trace restricted to the tuning's recency
// window (events that completed within LiveWindow of now) and whether it
// holds enough successful observations to blend.
func (g *Guard) recentLive(now time.Duration) (*trace.JobTrace, bool) {
	w := g.cfg.Tuning.LiveWindow
	if w < 0 {
		return g.live, g.liveOK >= g.cfg.Tuning.MinLiveSamples
	}
	cutoff := now - w
	out := trace.New(g.live.JobName, g.live.NumStages)
	ok := 0
	for _, e := range g.live.Events {
		if e.Ended < cutoff {
			continue
		}
		out.AddTask(e)
		if !e.Failed {
			ok++
		}
	}
	return out, ok >= g.cfg.Tuning.MinLiveSamples
}

// blended returns the prior profile with recent live observations blended
// in, or the prior itself when too little recent data has accumulated.
func (g *Guard) blended(now time.Duration) *profile.Profile {
	live, ok := g.recentLive(now)
	if !ok {
		return g.cfg.Prior
	}
	p, err := profile.Blend(g.cfg.Prior, live, profile.BlendOptions{
		PriorWeight: g.cfg.Tuning.BlendPriorWeight,
		// Extrapolate an observed job-wide slowdown to the stages still ahead
		// of the job: that is where most of the remaining time lives.
		ScaleUnobserved: true,
	})
	if err != nil {
		return g.cfg.Prior
	}
	return p
}

// deadlineAtRisk reports whether even the full token budget is predicted to
// miss the deadline under the current (possibly degraded) model.
func (g *Guard) deadlineAtRisk(st model.State) bool {
	d := g.cfg.Controller.Deadline()
	if d <= 0 {
		return false
	}
	return g.cfg.Controller.PredictAt(st, g.cfg.MaxAllocation) > d
}

// maybeRebuild runs the re-profiling rung: blend live stats into the prior
// and rebuild the current rung's predictor, rate-limited by the backoff.
// It reports whether a rebuild happened.
func (g *Guard) maybeRebuild(st model.State, score float64) bool {
	if g.cfg.Tuning.DisableReprofile {
		return false
	}
	if _, ok := g.recentLive(st.Elapsed); !ok {
		return false
	}
	if g.builtOnce && st.Elapsed-g.lastBuild < g.cfg.Tuning.RebuildBackoff {
		return false
	}
	var build func(p *profile.Profile, generation int) (model.Predictor, error)
	switch g.mode {
	case GuardPrimary:
		build = g.cfg.RebuildPrimary
	case GuardOnlineSim:
		build = g.cfg.NewOnlineSim
	case GuardAmdahl:
		build = func(p *profile.Profile, _ int) (model.Predictor, error) {
			return model.NewAmdahl(p), nil
		}
	}
	if build == nil {
		return false
	}
	g.rebuilds++
	pred, err := build(g.blended(st.Elapsed), g.rebuilds)
	if err != nil {
		return false
	}
	g.cfg.Controller.SetPredictor(pred)
	g.lastBuild = st.Elapsed
	g.builtOnce = true
	g.reprofiles++
	g.logEvent(st, GuardEventReprofile, g.mode, g.mode, score)
	g.resetDetector()
	return true
}

// stepDown moves one rung down the fallback chain, building the next
// predictor from the blended profile. It reports whether a step happened.
func (g *Guard) stepDown(st model.State, score float64) bool {
	from := g.mode
	for next := g.mode + 1; next <= GuardAmdahl; next++ {
		var pred model.Predictor
		var err error
		switch next {
		case GuardOnlineSim:
			if g.cfg.NewOnlineSim == nil {
				continue
			}
			g.rebuilds++
			pred, err = g.cfg.NewOnlineSim(g.blended(st.Elapsed), g.rebuilds)
		case GuardAmdahl:
			pred = model.NewAmdahl(g.blended(st.Elapsed))
		}
		if err != nil || pred == nil {
			continue
		}
		g.cfg.Controller.SetPredictor(pred)
		g.mode = next
		g.lastBuild = st.Elapsed
		g.builtOnce = true
		g.logEvent(st, GuardEventFallback, from, next, score)
		g.resetDetector()
		return true
	}
	return false
}

func (g *Guard) logEvent(st model.State, kind string, from, to GuardMode, score float64) {
	g.events = append(g.events, GuardEvent{
		At:          st.Elapsed,
		Kind:        kind,
		From:        from,
		To:          to,
		Deviation:   score,
		LiveSamples: g.liveOK,
	})
}

// Decide implements Policy: run the deviation detector, walk the guard
// ladder if the model has gone stale, then delegate to the controller.
func (g *Guard) Decide(st model.State) Decision {
	if g.mode == GuardPanic {
		return g.panicDecision(st)
	}
	score := g.observe(st)
	optimistic := g.signedScore() > g.cfg.Tuning.Threshold
	if score > g.cfg.Tuning.Threshold {
		g.stale = true
		g.alarm = true
	}
	if g.stale && !g.cfg.Tuning.DisableFallback {
		// Ladder: refresh the current rung's model first. Step down to a less
		// profile-dependent rung only when the refresh is unavailable (no data
		// yet, backoff, disabled) AND the model is still underestimating: a
		// pessimistic model wastes tokens but cannot miss the deadline, so it
		// only warrants a reprofile, never a downgrade.
		if !g.maybeRebuild(st, score) && optimistic {
			g.stepDown(st, score)
		}
	}
	// Panic is orthogonal to the ladder: whenever confidence is low and even
	// the full budget is predicted to miss, stop trusting models entirely.
	if (g.stale || g.alarm) && !g.cfg.Tuning.DisableFallback && g.deadlineAtRisk(st) {
		g.panicFrom = g.mode
		g.recoverStreak = 0
		g.logEvent(st, GuardEventPanic, g.mode, GuardPanic, score)
		g.mode = GuardPanic
		return g.panicDecision(st)
	}
	d := g.cfg.Controller.Decide(st)
	boosted := false
	if g.alarm && !g.cfg.Tuning.DisableFallback {
		c := g.cfg.Controller
		if dl := c.Deadline(); dl > 0 {
			switch pred := c.PredictAt(st, d.Granted); {
			case d.Raw > d.Granted && pred > dl:
				// Urgency override: the model has been flagged stale and even
				// the granted allocation is predicted to miss. Waiting out the
				// hysteresis lag would burn deadline slack on a model known to
				// be wrong, so jump straight to the raw allocation; smoothing
				// resumes from there.
				c.smoothed = float64(d.Raw)
				c.granted = d.Raw
				d.Granted = d.Raw
				d.Predicted = c.PredictAt(st, d.Raw)
				boosted = true
			case pred+c.cfg.DeadZone <= dl:
				// Predictions are comfortably inside the deadline again: stand
				// down until the detector re-fires.
				g.alarm = false
			}
		}
	}
	d.Mode = g.mode.String()
	d.Deviation = score
	if boosted {
		g.flushPending(d, MechUrgencyBoost)
	} else {
		g.flushPending(d, "")
	}
	return d
}

// panicDecision grants the full token budget and watches for recovery: once
// the model predicts the deadline is met at the full budget with the dead
// zone to spare for a full detector window of consecutive ticks, the guard
// steps back to the rung it panicked from. The dwell requirement is what
// keeps panic from flapping: a single optimistic prediction must not shed
// tokens, because every release demotes in-flight tasks to spare where
// competing guarantees can evict them mid-run.
func (g *Guard) panicDecision(st model.State) Decision {
	c := g.cfg.Controller
	d := c.Deadline()
	pred := c.PredictAt(st, g.cfg.MaxAllocation)
	if d > 0 && pred+c.cfg.DeadZone <= d {
		g.recoverStreak++
	} else {
		g.recoverStreak = 0
	}
	if g.recoverStreak >= g.cfg.Tuning.Window {
		g.recoverStreak = 0
		g.mode = g.panicFrom
		g.logEvent(st, GuardEventRecover, GuardPanic, g.mode, 0)
		g.resetDetector()
		// Fall through to a normal decision on the restored rung, seeding the
		// controller's smoothing at the panic grant so release is gradual.
		c.smoothed = float64(g.cfg.MaxAllocation)
		c.granted = g.cfg.MaxAllocation
		dec := c.Decide(st)
		dec.Mode = g.mode.String()
		g.flushPending(dec, "")
		return dec
	}
	// Keep the controller's bookkeeping consistent with the forced grant.
	c.started = true
	c.smoothed = float64(g.cfg.MaxAllocation)
	c.granted = g.cfg.MaxAllocation
	dec := Decision{
		Raw:       g.cfg.MaxAllocation,
		Granted:   g.cfg.MaxAllocation,
		Predicted: pred,
		Mode:      GuardPanic.String(),
	}
	if prog, ok := c.cfg.Predictor.(interface{ Progress(model.State) float64 }); ok {
		dec.Progress = prog.Progress(st)
	}
	if g.rec != nil {
		// Panic bypasses the controller, so no record was captured; build
		// one. The candidate sweep runs only when recording and queries only
		// pure or memoized predictors, so it cannot perturb the trajectory.
		c.rawAllocationRecorded(st)
		g.pscratch = DecisionRecord{
			At:         st.Elapsed,
			Raw:        dec.Raw,
			Granted:    dec.Granted,
			Mechanism:  MechGuardPanic,
			Mode:       dec.Mode,
			Predicted:  dec.Predicted,
			Candidates: c.cands,
		}
		g.rec.RecordDecision(&g.pscratch)
	}
	return dec
}
