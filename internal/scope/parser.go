package scope

import "fmt"

// opKind is the operator of a statement.
type opKind int

const (
	opExtract opKind = iota
	opProcess
	opReduce
	opJoin
	opAggregate
	opOutput
)

func (k opKind) String() string {
	switch k {
	case opExtract:
		return "EXTRACT"
	case opProcess:
		return "PROCESS"
	case opReduce:
		return "REDUCE"
	case opJoin:
		return "JOIN"
	case opAggregate:
		return "AGGREGATE"
	case opOutput:
		return "OUTPUT"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// stmt is one parsed statement.
type stmt struct {
	op     opKind
	name   string   // defined dataset (or the dataset being output)
	inputs []string // upstream datasets (PROCESS/REDUCE/JOIN/AGGREGATE)
	source string   // EXTRACT input file / OUTPUT target file
	key    string   // REDUCE ... ON key
	tasks  int      // 0 = default
	sizeGB float64  // EXTRACT SIZE
	line   int
}

// script is a parsed program.
type script struct {
	jobName string
	stmts   []stmt
}

type parser struct {
	toks []token
	pos  int
}

func parse(src string) (*script, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s := &script{}
	for p.peek().kind != tokEOF {
		if err := p.statement(s); err != nil {
			return nil, err
		}
	}
	if s.jobName == "" {
		return nil, errf(1, "script must start with JOB \"name\";")
	}
	if len(s.stmts) == 0 {
		return nil, errf(p.peek().line, "script has no operators")
	}
	return s, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.advance()
	if t.kind != kind {
		return t, errf(t.line, "expected %s, got %s %q", what, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.advance()
	if t.kind != tokKeyword || t.text != kw {
		return errf(t.line, "expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) statement(s *script) error {
	t := p.advance()
	if t.kind != tokKeyword {
		return errf(t.line, "expected a statement keyword, got %q", t.text)
	}
	switch t.text {
	case "JOB":
		name, err := p.expect(tokString, "job name string")
		if err != nil {
			return err
		}
		if s.jobName != "" {
			return errf(t.line, "duplicate JOB statement")
		}
		if len(s.stmts) > 0 {
			return errf(t.line, "JOB must be the first statement")
		}
		s.jobName = name.text
		return p.terminator()
	case "EXTRACT":
		return p.extract(s, t.line)
	case "PROCESS":
		return p.unaryOp(s, opProcess, t.line)
	case "REDUCE":
		return p.reduce(s, t.line)
	case "JOIN":
		return p.join(s, t.line)
	case "AGGREGATE":
		return p.unaryOp(s, opAggregate, t.line)
	case "OUTPUT":
		return p.output(s, t.line)
	default:
		return errf(t.line, "unexpected keyword %s at statement start", t.text)
	}
}

func (p *parser) terminator() error {
	_, err := p.expect(tokSemicolon, "';'")
	return err
}

// options parses the trailing [TASKS n] [SIZE gb] clauses in any order.
func (p *parser) options(st *stmt, allowSize bool) error {
	for {
		t := p.peek()
		if t.kind != tokKeyword {
			break
		}
		switch t.text {
		case "TASKS":
			p.advance()
			n, err := p.expect(tokNumber, "task count")
			if err != nil {
				return err
			}
			if n.num < 1 || n.num != float64(int(n.num)) {
				return errf(n.line, "TASKS must be a positive integer, got %q", n.text)
			}
			st.tasks = int(n.num)
		case "SIZE":
			if !allowSize {
				return errf(t.line, "SIZE is only valid on EXTRACT")
			}
			p.advance()
			n, err := p.expect(tokNumber, "size in GB")
			if err != nil {
				return err
			}
			st.sizeGB = n.num
		default:
			return errf(t.line, "unexpected %s", t.text)
		}
	}
	return p.terminator()
}

func (p *parser) extract(s *script, line int) error {
	name, err := p.expect(tokIdent, "dataset name")
	if err != nil {
		return err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return err
	}
	src, err := p.expect(tokString, "source file string")
	if err != nil {
		return err
	}
	st := stmt{op: opExtract, name: name.text, source: src.text, line: line}
	if err := p.options(&st, true); err != nil {
		return err
	}
	s.stmts = append(s.stmts, st)
	return nil
}

func (p *parser) unaryOp(s *script, op opKind, line int) error {
	name, err := p.expect(tokIdent, "dataset name")
	if err != nil {
		return err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return err
	}
	in, err := p.expect(tokIdent, "input dataset")
	if err != nil {
		return err
	}
	st := stmt{op: op, name: name.text, inputs: []string{in.text}, line: line}
	if err := p.options(&st, false); err != nil {
		return err
	}
	s.stmts = append(s.stmts, st)
	return nil
}

func (p *parser) reduce(s *script, line int) error {
	name, err := p.expect(tokIdent, "dataset name")
	if err != nil {
		return err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return err
	}
	in, err := p.expect(tokIdent, "input dataset")
	if err != nil {
		return err
	}
	st := stmt{op: opReduce, name: name.text, inputs: []string{in.text}, line: line}
	if p.peek().kind == tokKeyword && p.peek().text == "ON" {
		p.advance()
		key, err := p.expect(tokIdent, "reduce key")
		if err != nil {
			return err
		}
		st.key = key.text
	}
	if err := p.options(&st, false); err != nil {
		return err
	}
	s.stmts = append(s.stmts, st)
	return nil
}

func (p *parser) join(s *script, line int) error {
	name, err := p.expect(tokIdent, "dataset name")
	if err != nil {
		return err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return err
	}
	st := stmt{op: opJoin, name: name.text, line: line}
	for {
		in, err := p.expect(tokIdent, "input dataset")
		if err != nil {
			return err
		}
		st.inputs = append(st.inputs, in.text)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if len(st.inputs) < 2 {
		return errf(line, "JOIN needs at least two inputs")
	}
	if err := p.options(&st, false); err != nil {
		return err
	}
	s.stmts = append(s.stmts, st)
	return nil
}

func (p *parser) output(s *script, line int) error {
	name, err := p.expect(tokIdent, "dataset name")
	if err != nil {
		return err
	}
	if err := p.expectKeyword("TO"); err != nil {
		return err
	}
	dst, err := p.expect(tokString, "target file string")
	if err != nil {
		return err
	}
	st := stmt{op: opOutput, name: name.text, source: dst.text, line: line}
	if err := p.terminator(); err != nil {
		return err
	}
	s.stmts = append(s.stmts, st)
	return nil
}
