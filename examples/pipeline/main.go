// Pipeline: deadlines for a chain of dependent jobs.
//
// The motivation of §2.5 of the paper: business results are produced by
// pipelines of jobs, so a deadline on the final output induces deadlines on
// every upstream job, and one late job stalls everyone downstream.
//
// This example runs a three-stage pipeline — ingest → enrich → report —
// where each job starts when its predecessor finishes and the report must
// be fresh by a global deadline. Each job gets its own Jockey policy with
// its slice of the pipeline budget.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/jockeysim/jockey"
)

type pipelineJob struct {
	name   string
	prof   *jockey.Profile
	budget time.Duration // this job's share of the end-to-end deadline
}

func buildJobs() []pipelineJob {
	ingest := jockey.NewJobBuilder("ingest").
		Stage("extract", 150).
		Stage("clean", 150).
		Edge("extract", "clean", jockey.OneToOne).
		MustBuild()
	enrich := jockey.NewJobBuilder("enrich").
		Stage("join", 60).
		Stage("score", 60).
		Edge("join", "score", jockey.OneToOne).
		MustBuild()
	report := jockey.NewJobBuilder("report").
		Stage("aggregate", 30).
		Stage("render", 4).
		Edge("aggregate", "render", jockey.AllToAll).
		MustBuild()

	mk := func(job *jockey.Job, med, p90 time.Duration) *jockey.Profile {
		stages := make([]jockey.StageProfile, job.NumStages())
		for i := range stages {
			stages[i] = jockey.StageProfile{
				Exec:        jockey.LognormalFromMedian(med, p90),
				Queue:       jockey.Exponential{MeanValue: 2 * time.Second},
				FailureProb: 0.01,
			}
		}
		return jockey.MustNewProfile(job, stages)
	}
	return []pipelineJob{
		{name: "ingest", prof: mk(ingest, 10*time.Second, 30*time.Second), budget: 10 * time.Minute},
		{name: "enrich", prof: mk(enrich, 15*time.Second, 45*time.Second), budget: 8 * time.Minute},
		{name: "report", prof: mk(report, 20*time.Second, 50*time.Second), budget: 7 * time.Minute},
	}
}

func main() {
	jobs := buildJobs()
	var total time.Duration
	for _, j := range jobs {
		total += j.budget
	}
	fmt.Printf("pipeline of %d jobs, end-to-end deadline %v\n\n", len(jobs), total)

	cl, err := jockey.NewCluster(jockey.ClusterConfig{
		Machines:        25,
		SlotsPerMachine: 4,
		MachineMTBF:     2 * time.Hour,
		Seed:            11,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Competing tenant keeping the cluster busy.
	noise := jockey.NewJobBuilder("tenant").Stage("batch", 3000).MustBuild()
	nprof := jockey.MustNewProfile(noise, []jockey.StageProfile{
		{Exec: jockey.LognormalFromMedian(25*time.Second, 80*time.Second)},
	})
	if _, err := cl.Submit(jockey.JobConfig{Profile: nprof, Guarantee: 30}); err != nil {
		log.Fatal(err)
	}

	// Jobs start when their predecessor's output lands. In a real pipeline
	// a workflow manager watches completion; here we run the cluster once
	// per hop and submit the next job at the observed finish time.
	start := time.Duration(0)
	lateBy := time.Duration(0)
	for _, pj := range jobs {
		jk, err := jockey.New(pj.prof, jockey.Options{MaxTokens: 70, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		pol, err := jk.Policy(pj.budget)
		if err != nil {
			log.Fatal(err)
		}
		h, err := cl.Submit(jockey.JobConfig{
			Profile:  pj.prof,
			Policy:   pol,
			Deadline: pj.budget,
			Tracked:  true,
			Start:    start,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			log.Fatal(err)
		}
		r := h.Result()
		status := "on time"
		if !r.Met {
			status = "LATE"
			lateBy += r.Completion - r.Deadline
		}
		fmt.Printf("%-8s started %6.1f min, budget %v, finished in %v — %s\n",
			pj.name, r.Start.Minutes(), pj.budget, r.Completion.Round(time.Second), status)
		start = r.Start + r.Completion // next hop begins when output lands
	}

	fmt.Printf("\npipeline finished at %v (budget %v)\n", start.Round(time.Second), total)
	if start <= total {
		fmt.Println("end-to-end SLO met: downstream consumers are unblocked")
	} else {
		fmt.Printf("end-to-end SLO missed by %v\n", (start - total).Round(time.Second))
	}
	_ = lateBy
}
