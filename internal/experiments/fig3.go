package experiments

import (
	"fmt"
	"time"
)

// Fig3 holds the Graphviz renderings of the seven evaluation jobs' stage
// graphs.
type Fig3 struct {
	// DOT maps job name to its Graphviz source (triangles = barrier
	// stages, node size ∝ √tasks — the same visual convention as the
	// paper's Fig. 3).
	DOT map[string]string
	// Summary rows: job, stages, barriers, vertices, edges, depth.
	Rows [][]string
}

// StageGraphs renders the DAG of each job A–G.
func StageGraphs(env *Env) (*Fig3, error) {
	f := &Fig3{DOT: map[string]string{}}
	for _, job := range DefaultJobs {
		p, err := env.Ground(job)
		if err != nil {
			return nil, err
		}
		f.DOT[job] = p.Job.DOT()
		// Depth: longest stage path with unit cost per stage.
		depth := int(p.Job.CriticalPath(func(int) time.Duration { return 1 }))
		f.Rows = append(f.Rows, []string{
			job,
			fmt.Sprint(p.Job.NumStages()),
			fmt.Sprint(p.Job.NumBarrierStages()),
			fmt.Sprint(p.Job.TotalTasks()),
			fmt.Sprint(len(p.Job.Edges)),
			fmt.Sprint(depth),
		})
	}
	return f, nil
}

// Render prints a structural summary; the DOT sources are exported
// separately by cmd/experiments.
func (f *Fig3) Render() string {
	return renderTable(
		"Figure 3: stage dependency structure of the seven jobs (DOT files carry the drawings)",
		[]string{"job", "stages", "barriers", "vertices", "edges", "depth"},
		f.Rows)
}
