// Fixture: "sim" is a deterministic package, so every wall-clock read is a
// violation; pure time arithmetic and conversions are not.
package sim

import "time"

func step(now time.Duration) time.Duration {
	start := time.Now() // want `time.Now reads the wall clock`
	_ = start
	time.Sleep(time.Millisecond)   // want `time.Sleep reads the wall clock`
	_ = time.Since(start)          // want `time.Since reads the wall clock`
	_ = time.Until(start)          // want `time.Until reads the wall clock`
	_ = time.After(time.Second)    // want `time.After reads the wall clock`
	tick := time.Tick(time.Second) // want `time.Tick reads the wall clock`
	_ = tick

	// Virtual time, conversions, and constructors are all fine.
	next := now + 5*time.Second
	_ = time.Duration(42)
	_ = time.Unix(0, 0)
	return next
}
