// Scopejob: author a job in the SCOPE-like language and give it an SLO.
//
// Cosmos jobs are written in SCOPE and compiled into stage DAGs (§2.1 of
// the paper). This example compiles a small analytics script with the
// repository's SCOPE-like compiler, attaches per-stage statistics, prints
// the plan (including its Graphviz rendering), and runs it under Jockey
// control.
//
// Run with:
//
//	go run ./examples/scopejob
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/jockeysim/jockey"
)

const script = `
JOB "ad-revenue";

-- raw inputs
EXTRACT impressions FROM "impressions.tsv" TASKS 200 SIZE 120;
EXTRACT clicks FROM "clicks.tsv" TASKS 80 SIZE 30;

-- per-record cleanup pipelines (one-to-one, no barrier)
PROCESS validImpr FROM impressions;
PROCESS validClicks FROM clicks;

-- shuffle to join clicks with impressions per ad
JOIN matched FROM validImpr, validClicks TASKS 40;

-- revenue per advertiser, then the daily rollup
REDUCE perAdvertiser FROM matched ON advertiser TASKS 16;
AGGREGATE daily FROM perAdvertiser;
OUTPUT daily TO "revenue.tsv";
`

func main() {
	job, err := jockey.CompileScript(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %v\n", job)
	fmt.Printf("critical path has %d stages; barriers at:", int(job.CriticalPath(func(int) time.Duration { return 1 })))
	for i := range job.Stages {
		if job.IsBarrier(i) {
			fmt.Printf(" %s", job.Stages[i].Name)
		}
	}
	fmt.Println()

	// Per-stage statistics: wider stages are cheap record pipelines, the
	// joins and reductions are heavier.
	stages := make([]jockey.StageProfile, job.NumStages())
	for i, s := range job.Stages {
		med := 6 * time.Second
		if s.Tasks <= 40 {
			med = 20 * time.Second
		}
		stages[i] = jockey.StageProfile{
			Exec:        jockey.LognormalFromMedian(med, 3*med),
			Queue:       jockey.Exponential{MeanValue: 2 * time.Second},
			FailureProb: 0.01,
		}
	}
	prof := jockey.MustNewProfile(job, stages)

	jk, err := jockey.New(prof, jockey.Options{MaxTokens: 60, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	deadline := 15 * time.Minute
	pol, err := jk.Policy(deadline)
	if err != nil {
		log.Fatal(err)
	}

	cl, err := jockey.NewCluster(jockey.ClusterConfig{Machines: 20, SlotsPerMachine: 4, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	h, err := cl.Submit(jockey.JobConfig{
		Profile:  prof,
		Policy:   pol,
		Deadline: deadline,
		Tracked:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
	r := h.Result()
	fmt.Printf("finished in %v (deadline %v) — met: %v\n\n",
		r.Completion.Round(time.Second), deadline, r.Met)

	fmt.Println("Graphviz rendering of the plan (pipe into `dot -Tsvg`):")
	fmt.Println(job.DOT())
}
