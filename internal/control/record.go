package control

import (
	"time"

	"github.com/jockeysim/jockey/internal/model"
)

// Mechanism labels for decision records: which control mechanism determined
// the final grant at a tick. The flight recorder's counterfactual analyzer
// groups regret attribution by these names, so they are part of the stable
// flight-record schema (internal/flight/json.go).
const (
	// MechModel: the grant equals the raw model argmax — the model alone
	// decided.
	MechModel = "model"
	// MechFirstTick: the initial pessimistic jump straight to the raw
	// allocation (no smoothing state exists yet).
	MechFirstTick = "first-tick"
	// MechHysteresis: exponential smoothing kept the grant away from the raw
	// want.
	MechHysteresis = "hysteresis"
	// MechDeadZone: the dead zone held the previous grant although the raw
	// allocation wanted to rise.
	MechDeadZone = "dead-zone"
	// MechUrgencyBoost: the guard bypassed hysteresis and jumped the grant to
	// the raw allocation (stale model, deadline at risk).
	MechUrgencyBoost = "urgency-boost"
	// MechGuardPanic: the guard granted the full token budget (panic rung).
	MechGuardPanic = "guard-panic"
)

// CandidateEval is one candidate allocation's evaluation at a control tick.
type CandidateEval struct {
	// Alloc is the candidate allocation (tokens).
	Alloc int
	// Utility is the expected utility under the dead-zone-shifted curve —
	// exactly the value the raw-allocation argmax compares.
	Utility float64
	// Predicted is the worst-case completion estimate at this allocation
	// (elapsed + slack · Remaining at the configured quantile).
	Predicted time.Duration
}

// DecisionRecord is the flight recorder's view of one control decision: the
// Decision plus the mechanism that determined the grant and the full
// candidate evaluation the argmax ran over.
//
// Candidates aliases an internal scratch buffer owned by the emitting policy;
// it is valid only for the duration of the RecordDecision call and must be
// copied by recorders that retain it.
type DecisionRecord struct {
	// At is the job's elapsed time at the tick.
	At time.Duration
	// Raw and Granted mirror Decision.Raw and Decision.Granted.
	Raw, Granted int
	// Mechanism is the Mech* constant naming what determined the grant.
	Mechanism string
	// Mode and Deviation mirror Decision.Mode and Decision.Deviation ("" and
	// 0 for unguarded controllers).
	Mode      string
	Deviation float64
	// Predicted mirrors Decision.Predicted (the estimate at the grant).
	Predicted time.Duration
	// Candidates holds every candidate's evaluation, ascending by
	// allocation. Empty when the tick bypassed the argmax entirely.
	Candidates []CandidateEval
}

// Recorder receives one DecisionRecord per control tick. Implementations
// must treat the record (and its Candidates slice) as borrowed: both are
// reused by the emitter on the next tick.
type Recorder interface {
	RecordDecision(r *DecisionRecord)
}

// Recordable is implemented by policies that support decision recording
// (Controller and Guard). SetRecorder(nil) turns recording off; the nil
// path adds zero allocations and does not perturb decisions (extra
// candidate evaluations on the recording path hit only pure or memoized
// predictor queries).
type Recordable interface {
	SetRecorder(Recorder)
}

// SetRecorder installs (or, with nil, removes) the decision recorder.
func (c *Controller) SetRecorder(rec Recorder) { c.rec = rec }

// rawAllocationRecorded is rawAllocation with per-candidate capture: same
// argmax, but every candidate's utility and predicted completion are staged
// into the controller's scratch buffer for the recorder.
//
//jockey:hotpath
func (c *Controller) rawAllocationRecorded(st model.State) int {
	c.cands = c.cands[:0]
	best := -1
	bestU := 0.0
	for _, a := range c.cfg.Candidates {
		ua := c.cfg.Predictor.ExpectedUtility(st, a, c.cfg.Slack, c.effU)
		c.cands = append(c.cands, CandidateEval{Alloc: a, Utility: ua, Predicted: c.predictAt(st, a)})
		if best == -1 || ua > bestU+1e-9 {
			best, bestU = a, ua
		}
	}
	return best
}

// emit finalizes a decision and, when a recorder is installed, publishes the
// tick's DecisionRecord. The record and its candidate slice are scratch
// state reused across ticks.
//
//jockey:hotpath
func (c *Controller) emit(st model.State, raw int, mech string) Decision {
	d := c.decision(st, raw)
	if c.rec != nil {
		c.recScratch = DecisionRecord{
			At:         st.Elapsed,
			Raw:        raw,
			Granted:    d.Granted,
			Mechanism:  mech,
			Predicted:  d.Predicted,
			Candidates: c.cands,
		}
		c.rec.RecordDecision(&c.recScratch)
	}
	return d
}
