package experiments

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/trace"
)

// TimelapseCase is one of the three Fig. 6 scenarios.
type TimelapseCase struct {
	// Label matches the paper's sub-captions.
	Label string
	// Job and deadline of the run.
	Job      string
	Deadline time.Duration
	// InputScale provokes the scenario (2.0 = overloaded run of Fig. 6a,
	// 1.0 = slow-stage run, 0.75 = over-provisioned run of Fig. 6c).
	InputScale float64
	// Outcome of the run, including the full allocation timeline.
	Outcome Outcome
}

// Fig6 holds the three time-lapse runs.
type Fig6 struct {
	Cases []TimelapseCase
}

// Timelapses reproduces the three dynamic-adaptation examples of Fig. 6:
// (a) job F whose actual run needs about twice the training work — the
// policy notices the slow progress and adds resources early; (b) job E with
// a stage taking longer than usual; (c) job G finishing faster than
// expected — the policy releases resources as the deadline approaches.
func Timelapses(env *Env) (*Fig6, error) {
	shortF, _, err := env.Deadlines("F")
	if err != nil {
		return nil, err
	}
	shortE, _, err := env.Deadlines("E")
	if err != nil {
		return nil, err
	}
	_, longG, err := env.Deadlines("G")
	if err != nil {
		return nil, err
	}
	cases := []TimelapseCase{
		{Label: "(a) overloaded run, job F", Job: "F", Deadline: shortF, InputScale: 2.0},
		{Label: "(b) slow stage, job E", Job: "E", Deadline: shortE, InputScale: 1.25},
		{Label: "(c) over-provisioned, job G", Job: "G", Deadline: longG, InputScale: 0.75},
	}
	f := &Fig6{}
	for i, c := range cases {
		o, err := env.Run(SLORun{
			Job:        c.Job,
			Deadline:   c.Deadline,
			Policy:     PolicyJockey,
			Seed:       uint64(100 + i),
			InputScale: c.InputScale,
		})
		if err != nil {
			return nil, err
		}
		c.Outcome = o
		f.Cases = append(f.Cases, c)
	}
	return f, nil
}

// Timeline returns the allocation timeline of case i.
func (f *Fig6) Timeline(i int) []trace.AllocPoint {
	return f.Cases[i].Outcome.Trace.Timeline
}

// Render prints each scenario's timeline: the four series of Fig. 6 (raw
// allocation, granted allocation, running vertices, oracle allocation).
func (f *Fig6) Render() string {
	out := ""
	for _, c := range f.Cases {
		var rows [][]string
		for _, p := range c.Outcome.Trace.Timeline {
			rows = append(rows, []string{
				fmt.Sprintf("%.0f", p.T.Minutes()),
				fmt.Sprint(p.Raw),
				fmt.Sprint(p.Granted),
				fmt.Sprint(p.Running),
				fmt.Sprint(p.Oracle),
				fmt.Sprintf("%.0f%%", 100*p.Progress),
			})
		}
		title := fmt.Sprintf("Figure 6 %s: deadline %v, input ×%.2f — finished %v (%.0f%% of deadline, met=%v)",
			c.Label, c.Deadline, c.InputScale, c.Outcome.Completion.Round(time.Second),
			100*c.Outcome.RelCompletion, c.Outcome.Met)
		out += renderTable(title,
			[]string{"t [min]", "raw", "granted", "running", "oracle", "progress"},
			rows) + "\n"
	}
	return out
}
