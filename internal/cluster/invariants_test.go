package cluster

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
)

// TestConservationProperty checks the fundamental bookkeeping invariants of
// the cluster under randomized contention, failures and evictions:
//   - every task of a tracked job completes exactly once (one successful
//     attempt per task);
//   - attempts of the same task are strictly ordered and never overlap;
//   - barrier semantics hold (no consumer starts before the producer stage
//     finishes).
func TestConservationProperty(t *testing.T) {
	f := func(seed uint64, rawTasks uint8, rawG uint8) bool {
		mapTasks := 10 + int(rawTasks)%60
		guarantee := 1 + int(rawG)%10
		job := dag.NewBuilder("prop").
			Stage("map", mapTasks).
			Stage("reduce", 1+mapTasks/8).
			Edge("map", "reduce", dag.AllToAll).
			MustBuild()
		p := profile.MustNew(job, []profile.StageProfile{
			{Exec: stats.LognormalFromMedian(4*time.Second, 12*time.Second),
				Queue: stats.Exponential{MeanValue: time.Second}, FailureProb: 0.08},
			{Exec: stats.LognormalFromMedian(8*time.Second, 20*time.Second)},
		})
		c, err := New(Config{
			Machines:        6,
			SlotsPerMachine: 3,
			MachineMTBF:     4 * time.Minute, // aggressive failure injection
			MachineRecovery: stats.Point{V: time.Minute},
			Seed:            seed,
		})
		if err != nil {
			return false
		}
		bg := profile.MustNew(dag.NewBuilder("bg").Stage("work", 100).MustBuild(),
			[]profile.StageProfile{{Exec: stats.Point{V: 20 * time.Second}}})
		if _, err := c.Submit(JobConfig{Profile: bg, Guarantee: 2}); err != nil {
			return false
		}
		h, err := c.Submit(JobConfig{Profile: p, Guarantee: guarantee,
			Deadline: time.Hour, Tracked: true, Start: 30 * time.Second})
		if err != nil {
			return false
		}
		if err := c.Run(); err != nil {
			return false
		}
		tr := h.Result().Trace

		// One success per task.
		succ := map[[2]int]int{}
		for _, e := range tr.Events {
			if !e.Failed {
				succ[[2]int{e.Stage, e.Task}]++
			}
		}
		if len(succ) != job.TotalTasks() {
			return false
		}
		for _, n := range succ {
			if n != 1 {
				return false
			}
		}
		// Attempts ordered, non-overlapping, with sane timestamps.
		lastEnd := map[[2]int]time.Duration{}
		lastAttempt := map[[2]int]int{}
		for _, e := range tr.Events {
			key := [2]int{e.Stage, e.Task}
			if e.Queued < 0 || e.Dispatched < e.Queued || e.Started < e.Dispatched || e.Ended < e.Started {
				return false
			}
			if prev, ok := lastEnd[key]; ok {
				if e.Started < prev || e.Attempt <= lastAttempt[key] {
					return false
				}
			}
			lastEnd[key] = e.Ended
			lastAttempt[key] = e.Attempt
		}
		// Barrier: no reduce attempt starts before the map stage completes.
		var mapDone time.Duration
		mapSucc := 0
		for _, e := range tr.Events {
			if e.Stage == 0 && !e.Failed {
				mapSucc++
				if e.Ended > mapDone && mapSucc <= job.Stages[0].Tasks {
					mapDone = e.Ended
				}
			}
		}
		for _, e := range tr.Events {
			if e.Stage == 1 && e.Dispatched < mapDone {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCombinedFaultInvariants piles every disruption the simulator can
// produce onto one run — random machine failures, a rack outage, a token
// contention window, mid-run runtime drift, speculation, and deadline
// changes — and checks that the bookkeeping invariants survive and the run
// replays bit-identically.
func TestCombinedFaultInvariants(t *testing.T) {
	build := func() (*Cluster, *Handle) {
		t.Helper()
		c, err := New(Config{
			Machines:        8,
			SlotsPerMachine: 3,
			MachineMTBF:     3 * time.Minute,
			MachineRecovery: stats.Point{V: time.Minute},
			Seed:            42,
			RackOutages: []RackOutage{
				{At: 40 * time.Second, FirstMachine: 0, Machines: 3, Duration: 90 * time.Second},
				{At: 70 * time.Second, FirstMachine: 2, Machines: 2, Duration: time.Minute},
			},
			Contention: []ContentionWindow{
				{From: 50 * time.Second, To: 3 * time.Minute, Frac: 0.5},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		job := dag.NewBuilder("chaos").
			Stage("map", 40).
			Stage("reduce", 6).
			Edge("map", "reduce", dag.AllToAll).
			MustBuild()
		p := profile.MustNew(job, []profile.StageProfile{
			{Exec: stats.LognormalFromMedian(8*time.Second, 25*time.Second),
				Queue: stats.Exponential{MeanValue: time.Second}, FailureProb: 0.05},
			{Exec: stats.LognormalFromMedian(15*time.Second, 40*time.Second)},
		})
		bg := profile.MustNew(dag.NewBuilder("bg").Stage("work", 60).MustBuild(),
			[]profile.StageProfile{{Exec: stats.Point{V: 20 * time.Second}}})
		if _, err := c.Submit(JobConfig{Profile: bg, Guarantee: 4}); err != nil {
			t.Fatal(err)
		}
		h, err := c.Submit(JobConfig{
			Profile: p, Guarantee: 8, Deadline: 20 * time.Minute,
			Tracked: true, Start: 20 * time.Second,
			SpeculativeThreshold: 1.5,
			Drifts: []StageDrift{
				{At: 30 * time.Second, Stage: 0, Factor: 1.7},
				{At: time.Minute, Stage: -1, Factor: 1.3},
			},
			DeadlineChanges: []DeadlineChange{
				{At: 90 * time.Second, Deadline: 30 * time.Minute},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, h
	}
	run := func() Result {
		c, h := build()
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return h.Result()
	}
	r := run()
	tr := r.Trace
	if tr == nil {
		t.Fatal("no trace")
	}
	// No lost task, no double completion.
	succ := map[[2]int]int{}
	for _, e := range tr.Events {
		if !e.Failed {
			succ[[2]int{e.Stage, e.Task}]++
		}
	}
	if len(succ) != 46 {
		t.Fatalf("%d tasks completed, want 46", len(succ))
	}
	for key, n := range succ {
		if n != 1 {
			t.Fatalf("task %v completed %d times", key, n)
		}
	}
	// Timestamps sane under every fault class at once; primary attempts of
	// the same task strictly ordered (speculative duplicates share the
	// primary's attempt number, so ordering applies per attempt number).
	lastEnd := map[[3]int]time.Duration{}
	for _, e := range tr.Events {
		if e.Queued < 0 || e.Dispatched < e.Queued || e.Started < e.Dispatched || e.Ended < e.Started {
			t.Fatalf("bad timestamps: %+v", e)
		}
		key := [3]int{e.Stage, e.Task, e.Attempt}
		lastEnd[key] = e.Ended
	}
	// Barrier: reduces only dispatch after all 40 maps are done.
	var mapDone time.Duration
	for _, e := range tr.Events {
		if e.Stage == 0 && !e.Failed && e.Ended > mapDone {
			mapDone = e.Ended
		}
	}
	for _, e := range tr.Events {
		if e.Stage == 1 && e.Dispatched < mapDone {
			t.Fatalf("reduce dispatched at %v before map stage finished at %v", e.Dispatched, mapDone)
		}
	}
	// Token conservation: the allocation integral must charge the nominal
	// guarantee trajectory (it is never negative and at least covers the
	// successful guaranteed work recorded).
	if r.AllocTokenSeconds <= 0 || r.UsedTokenSeconds <= 0 {
		t.Fatalf("degenerate accounting: alloc=%v used=%v", r.AllocTokenSeconds, r.UsedTokenSeconds)
	}
	// The perturbations actually bit: evictions from the outages and
	// duplicates from speculation.
	if r.Evictions == 0 {
		t.Error("combined-fault run recorded no evictions")
	}
	if r.Duplicates == 0 {
		t.Error("combined-fault run recorded no speculative duplicates")
	}
	// Determinism: an identical second run replays bit-identically.
	r2 := run()
	if r.Completion != r2.Completion || r.Evictions != r2.Evictions ||
		r.Duplicates != r2.Duplicates || r.AllocTokenSeconds != r2.AllocTokenSeconds {
		t.Fatalf("combined-fault run not deterministic:\n%+v\n%+v", r, r2)
	}
	if len(tr.Events) != len(r2.Trace.Events) {
		t.Fatalf("trace lengths diverged: %d vs %d", len(tr.Events), len(r2.Trace.Events))
	}
	for i := range tr.Events {
		if tr.Events[i] != r2.Trace.Events[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, tr.Events[i], r2.Trace.Events[i])
		}
	}
}

func TestNoSpareNeverExceedsGuarantee(t *testing.T) {
	// A NoSpare job alone on an idle cluster must never run more tasks than
	// its guarantee.
	job := dag.NewBuilder("cap").Stage("work", 40).MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
	})
	c, _ := New(Config{Machines: 10, SlotsPerMachine: 4, Seed: 1})
	var maxRunning int
	h, err := c.Submit(JobConfig{
		Profile: p, Guarantee: 6, Tracked: true, NoSpare: true,
		SamplePeriod: time.Second,
		OnSample: func(_ time.Duration, st model.State) {
			// running count is not in State; use the trace afterwards.
			_ = st
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := h.Result().Trace.MaxParallelism(); got > 6 {
		t.Errorf("NoSpare job ran %d tasks concurrently, guarantee 6", got)
	}
	// 40 tasks / 6 tokens = 7 waves of 10s.
	if got := h.Result().Completion; got != 70*time.Second {
		t.Errorf("completion = %v, want 70s", got)
	}
	_ = maxRunning
}

func TestOnSampleHook(t *testing.T) {
	job := dag.NewBuilder("s").Stage("work", 20).MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
	})
	c, _ := New(Config{Machines: 5, SlotsPerMachine: 2, Seed: 1})
	var samples []model.State
	var times []time.Duration
	_, err := c.Submit(JobConfig{
		Profile: p, Guarantee: 5, Tracked: true,
		SamplePeriod: 15 * time.Second,
		OnSample: func(at time.Duration, st model.State) {
			times = append(times, at)
			samples = append(samples, st)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for i, at := range times {
		if want := time.Duration(i+1) * 15 * time.Second; at != want {
			t.Errorf("sample %d at %v, want %v", i, at, want)
		}
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].FracDone[0] < samples[i-1].FracDone[0] {
			t.Error("progress decreased")
		}
	}
}
