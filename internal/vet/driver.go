package vet

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"runtime"
	"sort"
)

// unitConfig is the JSON the go command writes for each `go vet -vettool`
// compilation unit (the x/tools unitchecker Config, reproduced here because
// the protocol is the contract with cmd/go, not with x/tools).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes one compilation unit described by cfgPath and returns the
// process exit code: 0 clean, 1 broken invocation or typecheck failure, 2
// diagnostics found. jsonOut selects the machine-readable protocol used by
// `go vet -json`.
func RunUnit(cfgPath string, jsonOut bool, analyzers []*Analyzer) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jockeyvet: reading %s: %v\n", cfgPath, err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "jockeyvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command invokes the tool once per dependency with VetxOnly set,
	// expecting the serialized-facts side file. Standard-library dependencies
	// carry no jockeyvet facts, so they get an empty side file without the
	// cost of re-typechecking the stdlib; module packages are analyzed even
	// when VetxOnly, because downstream units need the facts their analyzers
	// export (seed-consumer signatures, derived-seed helpers).
	emptyVetx := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		data, err := EncodeFacts(NewFactStore(), analyzers)
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, data, 0o666)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "jockeyvet: writing %s: %v\n", cfg.VetxOutput, err)
			return 1
		}
		return 0
	}
	if cfg.VetxOnly && cfg.Standard[cfg.ImportPath] {
		return emptyVetx()
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
				return emptyVetx()
			}
			fmt.Fprintf(os.Stderr, "jockeyvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tcfg := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, goarch()),
		GoVersion: version.Lang(cfg.GoVersion),
	}
	info := NewInfo()
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
			// The side file must still exist for the build cache even when
			// this unit cannot be analyzed.
			return emptyVetx()
		}
		fmt.Fprintf(os.Stderr, "jockeyvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Merge the facts every dependency's unit exported. Each side file
	// carries its package's transitive facts, so order does not matter and
	// missing entries (stale cache, foreign tools) are not fatal.
	store := NewFactStore()
	pkgs := TransitivePackages(pkg)
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, path)
	}
	sort.Strings(vetxPaths)
	for _, path := range vetxPaths {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			continue
		}
		if err := DecodeFacts(data, analyzers, pkgs, store); err != nil {
			fmt.Fprintf(os.Stderr, "jockeyvet: %v\n", err)
			return 1
		}
	}

	diags, err := Check(fset, files, pkg, info, analyzers, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jockeyvet: %v\n", err)
		return 1
	}
	if cfg.VetxOutput != "" {
		data, err := EncodeFacts(store, analyzers)
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, data, 0o666)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "jockeyvet: writing %s: %v\n", cfg.VetxOutput, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	if len(diags) == 0 {
		return 0
	}
	if jsonOut {
		// The `go vet -json` unit protocol: {"pkgid": {"analyzer": [diag]}}.
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := map[string][]jsonDiag{}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
				Posn:    d.Position.String(),
				Message: d.Message,
			})
		}
		out, _ := json.MarshalIndent(map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}, "", "\t")
		fmt.Printf("%s\n", out)
		return 0
	}
	fmt.Fprintf(os.Stderr, "# %s\n", cfg.ID)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Position, d.Message)
	}
	return 2
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
