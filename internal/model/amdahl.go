package model

import (
	"time"

	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/progress"
	"github.com/jockeysim/jockey/internal/utility"
)

// Amdahl is the paper's modified Amdahl's-Law predictor (§4.1): the
// remaining completion time at allocation a is estimated as
//
//	C(f, a) = S_t + P_t / a
//
// where S_t = max over unfinished stages of (1 − f_s)·l_s + L_s is the
// remaining critical path, and P_t = Σ over unfinished stages of
// (1 − f_s)·T_s is the remaining aggregate CPU time.
//
// It is deterministic — unlike the simulator-based CPA it captures no
// variance from outliers, failures or barriers, which is why the paper's
// "Jockey w/o simulator" baseline under-provisions and misses deadlines.
type Amdahl struct {
	p *profile.Profile
	// cp holds the precomputed critical-path vectors so the per-tick
	// Estimate never touches the allocator.
	cp progress.CriticalPath
}

// NewAmdahl builds the analytic predictor from a job profile.
func NewAmdahl(p *profile.Profile) *Amdahl {
	return &Amdahl{p: p, cp: progress.NewCriticalPath(p)}
}

// Name implements Predictor.
func (m *Amdahl) Name() string { return "amdahl" }

// Estimate returns the point estimate S_t + P_t/a.
func (m *Amdahl) Estimate(fs []float64, a int) time.Duration {
	if a < 1 {
		a = 1
	}
	st := m.cp.Remaining(fs)
	var pt time.Duration
	// Stages is a slice, so this float accumulation runs in stage-index
	// order every time; keep it that way — a map here would make P_t
	// depend on iteration order (see TestAmdahlBitIdenticalAcrossConstructions).
	for s, sp := range m.p.Stages {
		f := 0.0
		if fs != nil && s < len(fs) {
			f = fs[s]
		}
		if f >= 1 {
			continue
		}
		pt += time.Duration(float64(sp.TotalWork) * (1 - f))
	}
	return st + pt/time.Duration(a)
}

// Remaining implements Predictor. The analytic model is a point estimate,
// so every quantile returns the same value.
func (m *Amdahl) Remaining(st State, a int, _ float64) time.Duration {
	return m.Estimate(st.FracDone, a)
}

// ExpectedUtility implements Predictor using the point estimate.
func (m *Amdahl) ExpectedUtility(st State, a int, slack float64, u utility.Fn) float64 {
	rem := m.Estimate(st.FracDone, a)
	return u.Utility(st.Elapsed + time.Duration(float64(rem)*slack))
}
