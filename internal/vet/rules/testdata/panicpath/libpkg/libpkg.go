// Fixture: library packages may not panic directly — the invariant helpers
// are the single sanctioned path.
package libpkg

import "errors"

func mustPositive(n int) int {
	if n <= 0 {
		panic("non-positive") // want `bare panic in library package libpkg`
	}
	return n
}

func mustNoErr() {
	panic(errors.New("boom")) // want `bare panic in library package libpkg`
}
