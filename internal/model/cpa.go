package model

import (
	"fmt"
	"sort"
	"time"

	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/progress"
	"github.com/jockeysim/jockey/internal/sim"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
)

// CPAConfig parameterizes construction of the C(p, a) table.
type CPAConfig struct {
	// Allocs is the grid of candidate allocations to simulate. Required,
	// ascending and positive.
	Allocs []int
	// RunsPerAlloc is how many simulations feed each allocation's
	// distributions (default 10).
	RunsPerAlloc int
	// SampleEvery is the progress-sampling period within each simulated run
	// (default 30s; the paper records per discrete time step).
	SampleEvery time.Duration
	// Buckets is the number of progress cells (default 100, i.e. 1% cells).
	Buckets int
	// ReservoirCap bounds the samples kept per cell (default 64).
	ReservoirCap int
	// Seed drives the simulations.
	Seed uint64
}

func (c *CPAConfig) fill() error {
	if len(c.Allocs) == 0 {
		return fmt.Errorf("model: CPAConfig.Allocs is empty")
	}
	prev := 0
	for _, a := range c.Allocs {
		if a <= prev {
			return fmt.Errorf("model: CPAConfig.Allocs must be ascending and positive, got %v", c.Allocs)
		}
		prev = a
	}
	if c.RunsPerAlloc <= 0 {
		c.RunsPerAlloc = 10
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 30 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 100
	}
	if c.ReservoirCap <= 0 {
		c.ReservoirCap = 64
	}
	return nil
}

// CPA is the precomputed table of remaining-completion-time distributions
// C(p, a): for each allocation a in the grid and each progress bucket p, a
// bounded sample of observed remaining times from offline simulations.
type CPA struct {
	indicator progress.Indicator
	allocs    []int
	buckets   int
	// cells[ai][b] holds remaining-time samples for allocation index ai and
	// progress bucket b.
	cells [][]*stats.Reservoir
}

// BuildCPA runs the offline simulator across the allocation grid and builds
// the C(p, a) table, using the supplied indicator to compute progress p —
// the same indicator the control loop will use to index the table at
// runtime.
func BuildCPA(p *profile.Profile, ind progress.Indicator, cfg CPAConfig) (*CPA, error) {
	if p == nil || ind == nil {
		return nil, fmt.Errorf("model: BuildCPA requires a profile and an indicator")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &CPA{
		indicator: ind,
		allocs:    append([]int(nil), cfg.Allocs...),
		buckets:   cfg.Buckets,
		cells:     make([][]*stats.Reservoir, len(cfg.Allocs)),
	}
	for ai := range c.cells {
		c.cells[ai] = make([]*stats.Reservoir, cfg.Buckets+1)
		for b := range c.cells[ai] {
			c.cells[ai][b] = stats.NewReservoir(cfg.ReservoirCap)
		}
	}
	rng := stats.NewRNG(stats.DeriveSeed(cfg.Seed, "cpa-reservoir"))
	type sample struct {
		t time.Duration
		p float64
	}
	for ai, alloc := range c.allocs {
		for run := 0; run < cfg.RunsPerAlloc; run++ {
			var samples []sample
			seed := stats.DeriveSeed(cfg.Seed, "cpa", fmt.Sprint(alloc), fmt.Sprint(run))
			tr, err := sim.Run(sim.Config{
				Profile:     p,
				Alloc:       alloc,
				Seed:        seed,
				SampleEvery: cfg.SampleEvery,
				OnSample: func(s sim.Snapshot) {
					samples = append(samples, sample{t: s.Time, p: ind.Progress(s.FracDone)})
				},
			})
			if err != nil {
				return nil, err
			}
			// t = 0 with p = 0 is always a valid observation.
			c.cells[ai][0].Add(tr.Completion, rng)
			for _, s := range samples {
				remaining := tr.Completion - s.t
				if remaining < 0 {
					continue
				}
				c.cells[ai][c.bucket(s.p)].Add(remaining, rng)
			}
			// Completion itself: progress 1 has zero remaining time.
			c.cells[ai][c.buckets].Add(0, rng)
		}
	}
	return c, nil
}

func (c *CPA) bucket(p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return c.buckets
	}
	return int(p * float64(c.buckets))
}

// Indicator returns the progress indicator the table was built with.
func (c *CPA) Indicator() progress.Indicator { return c.indicator }

// Allocs returns the allocation grid. The slice is owned by the CPA.
func (c *CPA) Allocs() []int { return c.allocs }

// SnapAlloc returns the grid allocation closest to a (ties go down).
func (c *CPA) SnapAlloc(a int) int {
	i := sort.SearchInts(c.allocs, a)
	if i == 0 {
		return c.allocs[0]
	}
	if i == len(c.allocs) {
		return c.allocs[len(c.allocs)-1]
	}
	if c.allocs[i]-a < a-c.allocs[i-1] {
		return c.allocs[i]
	}
	return c.allocs[i-1]
}

func (c *CPA) allocIndex(a int) int {
	snapped := c.SnapAlloc(a)
	for i, v := range c.allocs {
		if v == snapped {
			return i
		}
	}
	return 0 // unreachable
}

// samplesAt returns the remaining-time samples for progress p at allocation
// a, widening the search to neighbouring progress buckets until it finds a
// non-empty cell. The returned slice must not be modified.
func (c *CPA) samplesAt(p float64, a int) []time.Duration {
	ai := c.allocIndex(a)
	b := c.bucket(p)
	row := c.cells[ai]
	if vs := row[b].Values(); len(vs) > 0 {
		return vs
	}
	// Widen symmetrically; prefer the lower (more pessimistic) bucket.
	for d := 1; d <= c.buckets; d++ {
		if b-d >= 0 {
			if vs := row[b-d].Values(); len(vs) > 0 {
				return vs
			}
		}
		if b+d <= c.buckets {
			if vs := row[b+d].Values(); len(vs) > 0 {
				return vs
			}
		}
	}
	return nil
}

// Name implements Predictor.
func (c *CPA) Name() string { return "simulator" }

// Progress evaluates the table's indicator on a state.
func (c *CPA) Progress(st State) float64 { return c.indicator.Progress(st.FracDone) }

// Remaining implements Predictor: the q-quantile of C(p, a).
func (c *CPA) Remaining(st State, a int, q float64) time.Duration {
	samples := c.samplesAt(c.Progress(st), a)
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return stats.QuantileDurations(sorted, q)
}

// ExpectedUtility implements Predictor: the mean of U(elapsed + slack·C)
// over the sampled remaining times. Averaging over the distribution rather
// than a point estimate reproduces the paper's safety buffer: a heavy upper
// tail of C(p, a) drags expected utility down near the deadline.
func (c *CPA) ExpectedUtility(st State, a int, slack float64, u utility.Fn) float64 {
	samples := c.samplesAt(c.Progress(st), a)
	if len(samples) == 0 {
		return u.Utility(st.Elapsed)
	}
	var sum float64
	for _, rem := range samples {
		t := st.Elapsed + time.Duration(float64(rem)*slack)
		sum += u.Utility(t)
	}
	return sum / float64(len(samples))
}
