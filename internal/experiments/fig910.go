package experiments

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/core"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/stats"
)

// AllIndicators lists the six indicators in the paper's Fig. 10 order.
var AllIndicators = []core.IndicatorName{
	core.TotalWorkWithQ, core.TotalWork, core.VertexFrac,
	core.CP, core.MinStage, core.MinStageInf,
}

// IndicatorTracePoint is one per-minute sample of an indicator during a run.
type IndicatorTracePoint struct {
	T         time.Duration
	Progress  float64       // indicator value in [0, 1]
	Predicted time.Duration // worst-case completion estimate T_t
}

// IndicatorSeries is the trace of one indicator over one run of job G
// (Fig. 9 plots totalworkWithQ and CP).
type IndicatorSeries struct {
	Indicator core.IndicatorName
	Points    []IndicatorTracePoint
	// Metrics of Fig. 10.
	AvgDeltaT           float64 // mean |T_t − T_{t+1}| / job duration
	LongestConstantFrac float64 // longest constant-progress interval / duration
	ActualCompletion    time.Duration
}

// replayIndicators runs one fixed-allocation execution of the job on a
// loaded cluster, recording the per-minute stage fractions, then evaluates
// every requested indicator on the same state series — so all indicators
// see the identical run, as in §5.4.
func replayIndicators(env *Env, x *Exec, job string, inds []core.IndicatorName, seed uint64) ([]IndicatorSeries, error) {
	ground, err := env.Ground(job)
	if err != nil {
		return nil, err
	}
	jkDefault, err := env.Runtime(job, "")
	if err != nil {
		return nil, err
	}
	alloc := jkDefault.Model().SnapAlloc(env.MaxTokens / 2)

	var states []model.State
	var times []time.Duration
	c, err := x.engine.Reset(cluster.Config{
		Machines:        env.Machines,
		SlotsPerMachine: env.Slots,
		MachineMTBF:     90 * time.Minute,
		Seed:            stats.DeriveSeed(env.Seed, "fig910", job, fmt.Sprint(seed)),
	})
	if err != nil {
		return nil, err
	}
	bg := env.Background
	bg.Seed = stats.DeriveSeed(env.Seed, "fig910-bg", job, fmt.Sprint(seed))
	if _, err := x.bgPool.SubmitBackground(c, bg); err != nil {
		return nil, err
	}
	h, err := c.Submit(cluster.JobConfig{
		Profile:   ground,
		Guarantee: alloc,
		Start:     15 * time.Minute,
		Tracked:   true,
		OnSample: func(at time.Duration, st model.State) {
			states = append(states, st)
			times = append(times, at)
		},
	})
	if err != nil {
		return nil, err
	}
	if err := c.Run(); err != nil {
		return nil, err
	}
	actual := h.Result().Completion

	var out []IndicatorSeries
	for _, ind := range inds {
		jk, err := env.Runtime(job, ind)
		if err != nil {
			return nil, err
		}
		s := IndicatorSeries{Indicator: ind, ActualCompletion: actual}
		for i, st := range states {
			p := jk.Indicator().Progress(st.FracDone)
			rem := jk.Model().Remaining(st, alloc, 1.0)
			s.Points = append(s.Points, IndicatorTracePoint{
				T:         times[i],
				Progress:  p,
				Predicted: times[i] + rem,
			})
		}
		s.computeMetrics(actual)
		out = append(out, s)
	}
	return out, nil
}

func (s *IndicatorSeries) computeMetrics(duration time.Duration) {
	if len(s.Points) < 2 || duration <= 0 {
		return
	}
	var deltaSum float64
	longest, current := time.Duration(0), time.Duration(0)
	for i := 1; i < len(s.Points); i++ {
		d := s.Points[i].Predicted - s.Points[i-1].Predicted
		if d < 0 {
			d = -d
		}
		deltaSum += d.Seconds()
		gap := s.Points[i].T - s.Points[i-1].T
		if s.Points[i].Progress == s.Points[i-1].Progress {
			current += gap
			if current > longest {
				longest = current
			}
		} else {
			current = 0
		}
	}
	s.AvgDeltaT = deltaSum / float64(len(s.Points)-1) / duration.Seconds()
	s.LongestConstantFrac = float64(longest) / float64(duration)
}

// Fig9 holds the two indicator traces of Figure 9 (job G).
type Fig9 struct {
	Series []IndicatorSeries // totalworkWithQ and CP
}

// IndicatorTraces reproduces Fig. 9: the totalworkWithQ and CP indicators
// over the same run of job G, with their worst-case completion estimates.
func IndicatorTraces(env *Env) (*Fig9, error) {
	series, err := replayIndicators(env, NewExec(), "G",
		[]core.IndicatorName{core.TotalWorkWithQ, core.CP}, 1)
	if err != nil {
		return nil, err
	}
	return &Fig9{Series: series}, nil
}

// Render prints both traces side by side.
func (f *Fig9) Render() string {
	if len(f.Series) != 2 {
		return "figure 9: missing series"
	}
	a, b := f.Series[0], f.Series[1]
	var rows [][]string
	n := len(a.Points)
	if len(b.Points) < n {
		n = len(b.Points)
	}
	for i := 0; i < n; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", a.Points[i].T.Minutes()),
			fmt.Sprintf("%.0f%%", 100*a.Points[i].Progress),
			fmt.Sprintf("%.1f", a.Points[i].Predicted.Minutes()),
			fmt.Sprintf("%.0f%%", 100*b.Points[i].Progress),
			fmt.Sprintf("%.1f", b.Points[i].Predicted.Minutes()),
		})
	}
	title := fmt.Sprintf(
		"Figure 9: %s vs %s indicator traces, job G (actual completion %.1f min)\n"+
			"(paper: the CP indicator gets stuck mid-run, inflating its estimate)",
		a.Indicator, b.Indicator, a.ActualCompletion.Minutes())
	return renderTable(title,
		[]string{"t [min]", string(a.Indicator) + " progress", "T_t [min]", string(b.Indicator) + " progress", "T_t [min]"},
		rows)
}

// Fig10 holds the indicator comparison of Figure 10 (a table in the paper).
type Fig10 struct {
	// Rows aggregate each indicator's metrics across jobs.
	Rows []IndicatorComparisonRow
}

// IndicatorComparisonRow is one line of Fig. 10.
type IndicatorComparisonRow struct {
	Indicator           core.IndicatorName
	AvgDeltaT           float64
	LongestConstantFrac float64
}

// IndicatorComparison evaluates all six indicators over runs of the given
// jobs and aggregates the two Fig. 10 metrics.
func IndicatorComparison(env *Env, jobs []string) (*Fig10, error) {
	if len(jobs) == 0 {
		jobs = DefaultJobs
	}
	var tasks []execTask[[]IndicatorSeries]
	for _, job := range jobs {
		job := job
		tasks = append(tasks, execTask[[]IndicatorSeries]{
			key: "fig10/" + job,
			run: func(x *Exec) ([]IndicatorSeries, error) {
				return replayIndicators(env, x, job, AllIndicators, 2)
			},
		})
	}
	results, err := runGrid(env, tasks)
	if err != nil {
		return nil, err
	}
	deltas := map[core.IndicatorName][]float64{}
	consts := map[core.IndicatorName][]float64{}
	for _, series := range results {
		for _, s := range series {
			deltas[s.Indicator] = append(deltas[s.Indicator], s.AvgDeltaT)
			consts[s.Indicator] = append(consts[s.Indicator], s.LongestConstantFrac)
		}
	}
	f := &Fig10{}
	for _, ind := range AllIndicators {
		f.Rows = append(f.Rows, IndicatorComparisonRow{
			Indicator:           ind,
			AvgDeltaT:           stats.Mean(deltas[ind]),
			LongestConstantFrac: stats.Mean(consts[ind]),
		})
	}
	return f, nil
}

// Render prints the Fig. 10 table.
func (f *Fig10) Render() string {
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			string(r.Indicator), pct(r.AvgDeltaT), pct(r.LongestConstantFrac),
		})
	}
	return renderTable(
		"Figure 10: progress-indicator comparison\n"+
			"(paper: totalworkWithQ best — ΔT 2.0%, longest constant 8.5%;\n"+
			" minstage-inf worst — 3.9% / 26.7%)",
		[]string{"indicator", "avg ΔT", "longest constant interval"},
		rows)
}
