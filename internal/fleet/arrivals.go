package fleet

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
)

// arrival is one recurring SLO job offered to the arbiter: a shape drawn
// from the canonical pool, a business value (the height of its utility
// step), and a deadline budget expressed as a multiple of the shape's
// model-predicted latency at a mid-grid allocation.
type arrival struct {
	id    int
	at    time.Duration
	shape Shape
	// value scales the job's utility curve (paper §3: "the importance
	// (weight) of the job"). Also the job's spare-token weight.
	value int
	// deadline is the SLO relative to arrival time.
	deadline time.Duration
	// drift marks the job's ground truth to diverge from its profile
	// mid-run (service times inflate by the config's DriftFactor).
	drift bool
}

// fleetShapes is the quantized shape table arrivals draw from. Keeping it
// small means a whole load × fault experiment grid shares four profiles and
// four C(p, a) models through one ModelCache.
var fleetShapes = []Shape{
	{Tasks: 64},
	{Tasks: 96, Barrier: true},
	{Tasks: 144},
	{Tasks: 192, Barrier: true},
}

// deadline tightness multipliers: 1.3× the mid-grid predicted latency is a
// tight SLO (needs roughly the mid-grid allocation to hold), 2.3× is slack
// (feasible at a small allocation).
var fleetTightness = []float64{1.3, 1.7, 2.3}

// job values: most jobs are ordinary, a few are 4× as important.
var fleetValues = []int{1, 1, 2, 4}

// genArrivals draws the deterministic arrival stream. All randomness comes
// from DeriveSeed(cfg.Seed, "fleet-arrivals"); deadlines are resolved
// through the shared model cache, whose models depend only on its own seed
// and the shape key — so the stream is bit-identical however the cache is
// warmed.
func genArrivals(cfg *Config, models *ModelCache) ([]arrival, error) {
	rng := stats.NewRNG(stats.DeriveSeed(cfg.Seed, "fleet-arrivals"))
	mean := float64(cfg.MeanInterarrival) / cfg.LoadFactor
	arrivals := make([]arrival, 0, cfg.Arrivals)
	at := time.Duration(0)
	for i := 0; i < cfg.Arrivals; i++ {
		// Draw in a fixed field order so the stream is stable under
		// refactoring of any single field's choices.
		gap := time.Duration(rng.ExpFloat64() * mean)
		shape := fleetShapes[rng.IntN(len(fleetShapes))]
		if rng.IntN(2) == 1 {
			shape.Scale = 1.2
		}
		tight := fleetTightness[rng.IntN(len(fleetTightness))]
		value := fleetValues[rng.IntN(len(fleetValues))]
		at += gap
		jk, err := models.Model(shape)
		if err != nil {
			return nil, fmt.Errorf("fleet: model for %s: %w", shape.Key(), err)
		}
		// The deadline budget is tightness × the model's predicted latency
		// at the mid-grid allocation, rounded to whole seconds so rendered
		// records stay readable.
		base := jk.PredictLatency(jk.Model().SnapAlloc(models.MaxTokens()/2), 1.0)
		deadline := time.Duration(tight * float64(base)).Round(time.Second)
		drift := cfg.DriftEvery > 0 && (i+1)%cfg.DriftEvery == 0
		arrivals = append(arrivals, arrival{
			id:       i,
			at:       at,
			shape:    shape,
			value:    value,
			deadline: deadline,
			drift:    drift,
		})
	}
	return arrivals, nil
}
