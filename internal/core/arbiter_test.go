package core

import (
	"errors"
	"testing"
	"time"
)

func TestArbiterAdmission(t *testing.T) {
	jk := newJockey(t) // 840s work, CP 90s, grid up to 20
	a, err := NewArbiter(20)
	if err != nil {
		t.Fatal(err)
	}
	if a.Budget() != 20 || a.Available() != 20 || a.Committed() != 0 {
		t.Fatalf("fresh arbiter state wrong: %d %d %d", a.Budget(), a.Available(), a.Committed())
	}

	// A loose deadline needs few tokens and is admitted.
	need1, ok, err := a.TryAdmit("job1", jk, 30*time.Minute)
	if err != nil || !ok || need1 < 1 {
		t.Fatalf("job1: need=%d ok=%v err=%v", need1, ok, err)
	}
	if a.Committed() != need1 {
		t.Errorf("committed = %d, want %d", a.Committed(), need1)
	}

	// Admit tighter jobs until the budget runs out.
	admitted := 1
	for i := 0; i < 10; i++ {
		id := string(rune('a' + i))
		need, ok, err := a.TryAdmit(id, jk, 4*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if need <= a.Available() {
				t.Errorf("rejected %q although %d <= %d available", id, need, a.Available())
			}
			break
		}
		admitted++
	}
	if admitted < 2 {
		t.Errorf("expected at least two admissions, got %d", admitted)
	}
	if a.Committed() > a.Budget() {
		t.Errorf("over-committed: %d > %d", a.Committed(), a.Budget())
	}

	// Releasing frees capacity.
	before := a.Available()
	a.Release("job1")
	if a.Available() != before+need1 {
		t.Errorf("release did not free tokens: %d -> %d", before, a.Available())
	}
	a.Release("job1") // idempotent
}

func TestArbiterRejectsInfeasibleAndDuplicates(t *testing.T) {
	jk := newJockey(t)
	a, _ := NewArbiter(100)
	// A deadline below the critical path is infeasible at any allocation.
	if need, ok, err := a.TryAdmit("x", jk, 10*time.Second); ok || err != nil || need != 0 {
		t.Errorf("infeasible admission: need=%d ok=%v err=%v", need, ok, err)
	}
	if _, ok, err := a.TryAdmit("y", jk, 30*time.Minute); !ok || err != nil {
		t.Fatalf("first admission failed: %v", err)
	}
	if _, _, err := a.TryAdmit("y", jk, 30*time.Minute); !errors.Is(err, ErrDuplicateAdmission) {
		t.Errorf("duplicate id: err = %v, want ErrDuplicateAdmission", err)
	}
	// After release the id is admissible again, and the running committed
	// total stays consistent through the churn.
	a.Release("y")
	if a.Committed() != 0 {
		t.Errorf("committed = %d after full release, want 0", a.Committed())
	}
	if _, ok, err := a.TryAdmit("y", jk, 30*time.Minute); !ok || err != nil {
		t.Fatalf("re-admission after release failed: ok=%v err=%v", ok, err)
	}
	if got := a.Admissions(); len(got) != 1 || got[0] != "y" {
		t.Errorf("admissions = %v", got)
	}
	if _, _, err := a.TryAdmit("z", nil, time.Minute); err == nil {
		t.Error("nil runtime must error")
	}
}

func TestArbiterValidation(t *testing.T) {
	if _, err := NewArbiter(0); err == nil {
		t.Error("zero budget must fail")
	}
}
