// Quickstart: give one job a latency SLO on a shared cluster.
//
// The program builds a small map/reduce plan, profiles it with parametric
// distributions, trains Jockey's offline model, and runs the job on a busy
// simulated cluster under a 12-minute deadline while three other tenants
// compete for capacity. It prints the control loop's allocation timeline
// and the outcome.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/jockeysim/jockey"
)

func main() {
	// 1. The plan: 120 map tasks feeding a 12-task reduce through a full
	// shuffle (a barrier).
	job := jockey.NewJobBuilder("wordcount").
		Stage("map", 120).
		Stage("reduce", 12).
		Edge("map", "reduce", jockey.AllToAll).
		MustBuild()

	// 2. The profile: per-stage service-time distributions. A recurring
	// production job would extract these from a recorded run with
	// jockey.ProfileFromTrace; here we state them directly.
	prof := jockey.MustNewProfile(job, []jockey.StageProfile{
		{
			Exec:        jockey.LognormalFromMedian(8*time.Second, 25*time.Second),
			Queue:       jockey.Exponential{MeanValue: 2 * time.Second},
			FailureProb: 0.02,
		},
		{
			Exec:  jockey.LognormalFromMedian(30*time.Second, 70*time.Second),
			Queue: jockey.Exponential{MeanValue: 2 * time.Second},
		},
	})

	// 3. The runtime: offline simulations across the allocation grid build
	// the C(p, a) remaining-time model.
	jk, err := jockey.New(prof, jockey.Options{MaxTokens: 60, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	deadline := 12 * time.Minute
	if !jk.Feasible(deadline) {
		log.Fatalf("deadline %v is below the job's critical path %v",
			deadline, prof.CriticalPath())
	}
	fmt.Printf("model: worst-case latency at 10 tokens %v, at 60 tokens %v\n",
		jk.PredictLatency(10, 1.0).Round(time.Second),
		jk.PredictLatency(60, 1.0).Round(time.Second))
	if need, ok := jk.RequiredAllocation(deadline); ok {
		fmt.Printf("admission check: deadline %v needs >= %d guaranteed tokens\n", deadline, need)
	}

	// 4. A policy instance for this execution.
	pol, err := jk.Policy(deadline)
	if err != nil {
		log.Fatal(err)
	}

	// 5. A shared cluster with competing tenants.
	cl, err := jockey.NewCluster(jockey.ClusterConfig{
		Machines:        20,
		SlotsPerMachine: 4,
		MachineMTBF:     2 * time.Hour,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tenant := jockey.NewJobBuilder(fmt.Sprintf("tenant%d", i)).
			Stage("batch", 400).
			MustBuild()
		tprof := jockey.MustNewProfile(tenant, []jockey.StageProfile{
			{Exec: jockey.LognormalFromMedian(20*time.Second, 60*time.Second)},
		})
		if _, err := cl.Submit(jockey.JobConfig{Profile: tprof, Guarantee: 6}); err != nil {
			log.Fatal(err)
		}
	}

	// 6. Submit the SLO job under Jockey control and run.
	h, err := cl.Submit(jockey.JobConfig{
		Profile:  prof,
		Policy:   pol,
		Deadline: deadline,
		Tracked:  true,
		Start:    2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}

	r := h.Result()
	fmt.Println("\nallocation timeline:")
	fmt.Println("  t[min]  raw  granted  running  oracle  progress")
	for _, p := range r.Trace.Timeline {
		fmt.Printf("  %6.1f  %3d  %7d  %7d  %6d  %7.0f%%\n",
			p.T.Minutes(), p.Raw, p.Granted, p.Running, p.Oracle, 100*p.Progress)
	}
	fmt.Printf("\ncompleted in %v (deadline %v) — SLO met: %v\n",
		r.Completion.Round(time.Second), r.Deadline, r.Met)
	above := 0.0
	if r.AllocTokenSeconds > r.OracleTokenSeconds && r.AllocTokenSeconds > 0 {
		above = 1 - r.OracleTokenSeconds/r.AllocTokenSeconds
	}
	fmt.Printf("spare-token tasks: %.0f%%, evictions: %d, allocation above oracle: %.0f%%\n",
		100*r.SpareTaskFraction, r.Evictions, 100*above)
}
