package grid

import "sync"

// Cache is a per-key single-flight cache: the first Get for a key runs its
// build function exactly once, concurrent Gets for the same key block on
// that one build, and Gets for other keys — hits and independent builds
// alike — proceed without waiting. This is the construction discipline for
// the experiment environment's shared models: concurrent grid points that
// need the same job's ground truth or C(p, a) table share one build instead
// of serializing behind a global mutex or recomputing.
//
// The zero value is ready to use. Build results (including errors) are
// cached forever: a failed build is not retried, because in this repository
// a build failure means a misconfigured experiment, not a transient fault.
//
// A build function must not Get its own key (it would deadlock on itself);
// builds may freely Get other keys or other Caches, since no lock is held
// while a build runs.
type Cache[V any] struct {
	mu sync.Mutex
	m  map[string]*cacheCell[V]
}

type cacheCell[V any] struct {
	once sync.Once
	v    V
	err  error
}

// Get returns the cached value for key, building it with build on first
// use. Only the map lookup is under the Cache lock; the build itself runs
// outside it, so a hit never waits on another key's in-flight build.
func (c *Cache[V]) Get(key string, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*cacheCell[V])
	}
	cell, ok := c.m[key]
	if !ok {
		cell = &cacheCell[V]{}
		c.m[key] = cell
	}
	c.mu.Unlock()
	cell.once.Do(func() { cell.v, cell.err = build() })
	return cell.v, cell.err
}
