package experiments

import (
	"fmt"

	"github.com/jockeysim/jockey/internal/flight"
	"github.com/jockeysim/jockey/internal/grid"
)

// FlightConfig tunes decision flight recording on top of an SLORun.
type FlightConfig struct {
	// Level selects recording depth (LevelNone returns no record).
	Level flight.Level
	// TopK bounds the candidates kept per tick (default flight.DefaultTopK).
	TopK int
	// ReplayCandidates is how many constant allocations the counterfactual
	// analyzer replays, spanning the policy's candidate grid (default 6).
	ReplayCandidates int
	// replayKey and replays, when both set, share replay outcomes across
	// runs through a single-flight cache. A replay's outcome depends only on
	// (job, deadline, seed, faults, alloc) — not on the recorded policy — so
	// grids comparing policy variants on paired seeds reuse each other's
	// replays.
	replayKey string
	replays   *grid.Cache[flight.ReplayOutcome]
}

func (fc *FlightConfig) fill() {
	if fc.TopK <= 0 {
		fc.TopK = flight.DefaultTopK
	}
	if fc.ReplayCandidates <= 0 {
		fc.ReplayCandidates = 6
	}
}

// policyLabel names the run's policy as reported in flight records.
func policyLabel(r SLORun) string {
	if r.Policy == PolicyJockey && r.Guarded {
		return "jockey-guarded"
	}
	return string(r.Policy)
}

// RunFlight is RunExec with the decision flight recorder attached: it
// returns the run's outcome plus its flight record (nil at LevelNone). At
// LevelCounterfactual the finished run is replayed under constant hindsight
// allocations — on the same reusable engine, so replays recycle the arenas —
// and the regret report is attached to the record.
func (e *Env) RunFlight(x *Exec, r SLORun, fc FlightConfig) (Outcome, *flight.Record, error) {
	if fc.Level == flight.LevelNone {
		o, err := e.RunExec(x, r)
		return o, nil, err
	}
	fc.fill()
	rec := flight.NewRecorder(flight.Config{
		Job:      r.Job,
		Policy:   policyLabel(r),
		Level:    fc.Level,
		Deadline: r.Deadline,
		TopK:     fc.TopK,
	})
	r.Flight = rec
	o, err := e.RunExec(x, r)
	if err != nil {
		return Outcome{}, nil, err
	}
	record := rec.Record()
	if fc.Level == flight.LevelCounterfactual {
		jk, err := e.Runtime(r.Job, r.Knobs.Indicator)
		if err != nil {
			return Outcome{}, nil, err
		}
		cands := flight.SpanCandidates(jk.Grid(), fc.ReplayCandidates)
		actual := flight.ReplayOutcome{
			Completion:        o.Completion,
			Met:               o.Met,
			AllocTokenSeconds: o.AllocTokenSeconds,
		}
		reg, err := flight.Counterfactual(record.Ticks, actual, cands, e.flightReplayer(x, r, fc))
		if err != nil {
			return Outcome{}, nil, err
		}
		record.Counterfactual = reg
	}
	return o, record, nil
}

// flightReplayer re-executes r with a constant allocation, all seeds and
// faults identical. With a shared replay cache configured, outcomes are
// computed once per (replayKey, alloc) across the whole grid.
func (e *Env) flightReplayer(x *Exec, r SLORun, fc FlightConfig) flight.Replayer {
	run := func(alloc int) (flight.ReplayOutcome, error) {
		rr := r
		rr.Flight = nil
		rr.OnDecision = nil
		rr.OnSample = nil
		rr.fixedAlloc = alloc
		o, err := e.RunExec(x, rr)
		if err != nil {
			return flight.ReplayOutcome{}, err
		}
		return flight.ReplayOutcome{
			Alloc:             alloc,
			Completion:        o.Completion,
			Met:               o.Met,
			AllocTokenSeconds: o.AllocTokenSeconds,
		}, nil
	}
	if fc.replays == nil || fc.replayKey == "" {
		return run
	}
	return func(alloc int) (flight.ReplayOutcome, error) {
		return fc.replays.Get(fmt.Sprintf("%s/a%d", fc.replayKey, alloc), func() (flight.ReplayOutcome, error) {
			return run(alloc)
		})
	}
}
