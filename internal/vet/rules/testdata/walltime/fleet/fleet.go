// Fixture: "fleet" is a deterministic package — a multi-job replay must be
// a pure function of its seed, so stamping admissions or epoch stats from
// the wall clock (tempting for anything that looks like a daemon) is a
// violation. The cluster's virtual `now`, threaded through the epoch hook,
// is the allowed path.
package fleet

import "time"

type admission struct {
	at      time.Duration
	stamped time.Time
}

func admit(now time.Duration) admission {
	a := admission{at: now}
	a.stamped = time.Now()    // want `time.Now reads the wall clock`
	_ = time.Since(a.stamped) // want `time.Since reads the wall clock`

	deadline := now + 30*time.Minute // virtual-time arithmetic is fine
	_ = deadline
	return a
}

func backoffWait(epoch time.Duration) {
	time.Sleep(epoch) // want `time.Sleep reads the wall clock`
}
