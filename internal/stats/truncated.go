package stats

import (
	"fmt"
	"math/rand/v2"
	"time"
)

// Truncated caps every sample of the base distribution at Max. Workload
// generators use it to bound the tails of heavy-tailed service-time
// distributions: production tasks are stragglers, not unbounded — a job
// whose median task is seconds does not contain hour-long tasks.
type Truncated struct {
	Base Distribution
	Max  time.Duration
}

// Sample implements Distribution.
func (t Truncated) Sample(r *rand.Rand) time.Duration {
	v := t.Base.Sample(r)
	if v > t.Max {
		return t.Max
	}
	return v
}

// Mean implements Distribution. It is computed numerically from the clamped
// quantile function (the base mean is wrong whenever truncation bites).
func (t Truncated) Mean() time.Duration {
	const n = 200
	var sum float64
	for i := 0; i < n; i++ {
		q := (float64(i) + 0.5) / n
		sum += float64(t.Quantile(q))
	}
	return time.Duration(sum / n)
}

// Quantile implements Distribution.
func (t Truncated) Quantile(q float64) time.Duration {
	v := t.Base.Quantile(q)
	if v > t.Max {
		return t.Max
	}
	return v
}

func (t Truncated) String() string {
	return fmt.Sprintf("trunc(%v,max=%v)", t.Base, t.Max)
}
