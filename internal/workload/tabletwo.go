// Package workload synthesizes the evaluation workloads of the paper:
//
//   - the seven detailed production jobs A–G of Table 2, reconstructed from
//     their published statistics (stage/barrier/vertex counts, vertex
//     runtime percentiles, data read);
//   - a fleet of background jobs that keeps the shared cluster busy and
//     makes spare capacity fluctuate (§2.3-§2.4);
//   - the inter-job dependency graphs behind Fig. 1 (§2.5).
//
// The real workloads are Microsoft-internal; these generators substitute
// synthetic equivalents that match every statistic the paper publishes,
// which are exactly the statistics Jockey's models consume.
package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/invariant"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
)

// JobSpec is the published description of one evaluation job (Table 2).
type JobSpec struct {
	Name     string
	Stages   int
	Barriers int // stages with at least one all-to-all input
	Vertices int
	// Vertex runtime statistics across the whole job.
	MedianRuntime time.Duration
	P90Runtime    time.Duration
	// 90th-percentile runtime of the fastest and slowest stages.
	P90Fastest time.Duration
	P90Slowest time.Duration
	// DataGB is the total data read by the job.
	DataGB float64
	// FailureProb is the per-attempt task failure probability used when
	// synthesizing the job (not published; set to a production-plausible
	// 1%).
	FailureProb float64
}

func sec(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }

// TableTwo lists jobs A–G with the statistics published in Table 2 of the
// paper.
var TableTwo = []JobSpec{
	{Name: "A", Stages: 23, Barriers: 6, Vertices: 681, MedianRuntime: sec(16.3), P90Runtime: sec(61.5), P90Fastest: sec(4.0), P90Slowest: sec(126.3), DataGB: 222.5, FailureProb: 0.01},
	{Name: "B", Stages: 14, Barriers: 0, Vertices: 1605, MedianRuntime: sec(4.0), P90Runtime: sec(54.1), P90Fastest: sec(3.3), P90Slowest: sec(116.7), DataGB: 114.3, FailureProb: 0.01},
	{Name: "C", Stages: 16, Barriers: 3, Vertices: 5751, MedianRuntime: sec(2.6), P90Runtime: sec(5.7), P90Fastest: sec(1.7), P90Slowest: sec(21.9), DataGB: 151.1, FailureProb: 0.01},
	{Name: "D", Stages: 24, Barriers: 3, Vertices: 3897, MedianRuntime: sec(6.1), P90Runtime: sec(25.1), P90Fastest: sec(1.4), P90Slowest: sec(72.6), DataGB: 268.7, FailureProb: 0.01},
	{Name: "E", Stages: 11, Barriers: 1, Vertices: 2033, MedianRuntime: sec(8.0), P90Runtime: sec(130.0), P90Fastest: sec(3.9), P90Slowest: sec(320.6), DataGB: 195.7, FailureProb: 0.01},
	{Name: "F", Stages: 26, Barriers: 1, Vertices: 6139, MedianRuntime: sec(3.6), P90Runtime: sec(17.4), P90Fastest: sec(3.3), P90Slowest: sec(110.4), DataGB: 285.6, FailureProb: 0.01},
	{Name: "G", Stages: 110, Barriers: 15, Vertices: 8496, MedianRuntime: sec(3.0), P90Runtime: sec(7.7), P90Fastest: sec(1.6), P90Slowest: sec(68.3), DataGB: 155.3, FailureProb: 0.01},
}

// Spec returns the Table 2 spec with the given name ("A".."G").
func Spec(name string) (JobSpec, error) {
	for _, s := range TableTwo {
		if s.Name == name {
			return s, nil
		}
	}
	return JobSpec{}, fmt.Errorf("workload: no Table 2 job named %q", name)
}

// DefaultQueueDelay is the per-task scheduling/initialization latency
// distribution used for synthesized jobs; its median (~4s) and 90th
// percentile (~8s+) bracket the queueing statistics of Table 3.
func DefaultQueueDelay() stats.Distribution {
	return stats.Shifted{
		Base:   stats.Exponential{MeanValue: 3 * time.Second},
		Offset: 2 * time.Second,
	}
}

// Generate synthesizes a job matching the spec: a layered DAG with the
// specified stage, barrier and vertex counts, per-stage lognormal task
// runtimes whose mixture reproduces the published percentiles, and input
// sizes summing to DataGB. The same (spec, seed) always produces the same
// job.
func Generate(spec JobSpec, seed uint64) (*profile.Profile, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(stats.DeriveSeed(seed, "workload", spec.Name))

	sizes := stageSizes(spec, rng)
	b := dag.NewBuilder("job" + spec.Name)
	names := make([]string, spec.Stages)
	gbLeft := spec.DataGB
	for s := 0; s < spec.Stages; s++ {
		names[s] = fmt.Sprintf("s%02d", s)
		gb := spec.DataGB * float64(sizes[s]) / float64(spec.Vertices)
		if s == spec.Stages-1 {
			gb = gbLeft
		}
		gbLeft -= gb
		b.StageData(names[s], sizes[s], gb)
	}

	// Arrange stages into layers (depth ≈ 45% of the stage count, width
	// 1-4) and wire each stage to one or two stages of earlier layers —
	// the deep-but-branching plans of Fig. 3. Barrier stages get an
	// all-to-all input edge.
	barrierAt := pickBarriers(spec, rng)
	levelOf := make([]int, spec.Stages)
	depth := (spec.Stages*9 + 19) / 20 // ceil(0.45 * stages)
	if depth < 2 && spec.Stages >= 2 {
		depth = 2
	}
	// Stage 0 is the root layer; remaining stages fill layers 1..depth-1
	// in order, guaranteeing every layer is non-empty.
	for s := 1; s < spec.Stages; s++ {
		if s < depth {
			levelOf[s] = s
		} else {
			levelOf[s] = 1 + rng.IntN(depth-1)
		}
	}
	byLevel := make([][]int, depth)
	for s := 0; s < spec.Stages; s++ {
		byLevel[levelOf[s]] = append(byLevel[levelOf[s]], s)
	}
	for s := 1; s < spec.Stages; s++ {
		kind := dag.OneToOne
		if barrierAt[s] {
			kind = dag.AllToAll
		}
		prev := byLevel[levelOf[s]-1]
		from := prev[rng.IntN(len(prev))]
		b.Edge(names[from], names[s], kind)
		// Occasionally add a second input (join shape) from any earlier
		// layer.
		if levelOf[s] >= 2 && rng.IntN(5) == 0 {
			l2 := rng.IntN(levelOf[s] - 1)
			cand := byLevel[l2]
			extra := cand[rng.IntN(len(cand))]
			if extra != from {
				kind2 := dag.OneToOne
				if barrierAt[s] && rng.IntN(2) == 0 {
					kind2 = dag.AllToAll
				}
				b.Edge(names[extra], names[s], kind2)
			}
		}
	}
	job, err := b.Build()
	if err != nil {
		return nil, err
	}

	dists := stageDistributions(spec, sizes, rng)
	sps := make([]profile.StageProfile, spec.Stages)
	for s := range sps {
		sps[s] = profile.StageProfile{
			Exec:        dists[s],
			Queue:       DefaultQueueDelay(),
			FailureProb: spec.FailureProb,
		}
	}
	return profile.New(job, sps)
}

// MustGenerate is Generate that panics on error, for the fixed Table 2
// specs.
func MustGenerate(spec JobSpec, seed uint64) *profile.Profile {
	p, err := Generate(spec, seed)
	invariant.NoErr(err, "workload: MustGenerate(%q, seed %d)", spec.Name, seed)
	return p
}

// Jobs generates all seven Table 2 jobs keyed by name.
func Jobs(seed uint64) map[string]*profile.Profile {
	out := make(map[string]*profile.Profile, len(TableTwo))
	for _, spec := range TableTwo {
		out[spec.Name] = MustGenerate(spec, seed)
	}
	return out
}

func validateSpec(spec JobSpec) error {
	switch {
	case spec.Stages < 1:
		return fmt.Errorf("workload: job %q needs at least 1 stage", spec.Name)
	case spec.Vertices < spec.Stages:
		return fmt.Errorf("workload: job %q has fewer vertices (%d) than stages (%d)",
			spec.Name, spec.Vertices, spec.Stages)
	case spec.Barriers >= spec.Stages:
		return fmt.Errorf("workload: job %q has %d barriers but only %d non-root stages possible",
			spec.Name, spec.Barriers, spec.Stages-1)
	case spec.MedianRuntime <= 0 || spec.P90Runtime < spec.MedianRuntime:
		return fmt.Errorf("workload: job %q has inconsistent runtime percentiles", spec.Name)
	case spec.FailureProb < 0 || spec.FailureProb >= 1:
		return fmt.Errorf("workload: job %q failure probability %v out of [0,1)", spec.Name, spec.FailureProb)
	}
	return nil
}

// stageSizes splits the vertex budget across stages with a heavy skew: a few
// wide stages and a long tail of narrow ones, as in production plans (the
// node sizes of Fig. 3).
func stageSizes(spec JobSpec, rng interface{ Float64() float64 }) []int {
	weights := make([]float64, spec.Stages)
	var total float64
	for s := range weights {
		// Pareto-ish weights: most mass in a few stages.
		w := math.Pow(rng.Float64(), 3)
		weights[s] = w + 0.01
		total += weights[s]
	}
	sizes := make([]int, spec.Stages)
	left := spec.Vertices - spec.Stages // reserve 1 per stage
	assigned := 0
	for s := range sizes {
		n := int(float64(left) * weights[s] / total)
		sizes[s] = 1 + n
		assigned += n
	}
	// Distribute the rounding remainder to the widest stage.
	widest := 0
	for s, n := range sizes {
		if n > sizes[widest] {
			widest = s
		}
	}
	sizes[widest] += left - assigned
	return sizes
}

// pickBarriers marks exactly spec.Barriers stages (never the root) as
// barrier stages, spread across the plan.
func pickBarriers(spec JobSpec, rng interface{ IntN(int) int }) []bool {
	out := make([]bool, spec.Stages)
	if spec.Barriers == 0 || spec.Stages < 2 {
		return out
	}
	chosen := 0
	for chosen < spec.Barriers {
		s := 1 + rng.IntN(spec.Stages-1)
		if !out[s] {
			out[s] = true
			chosen++
		}
	}
	return out
}

// stageDistributions assigns each stage a lognormal service-time
// distribution. Stage 90th percentiles are geometrically spaced between
// P90Fastest and P90Slowest in a random (width-uncorrelated) order; the
// whole ensemble is then calibrated so the vertex-weighted *mixture* of the
// stage distributions reproduces the job's published overall median and 90th
// percentile.
func stageDistributions(spec JobSpec, sizes []int, rng interface{ IntN(int) int }) []stats.Distribution {
	n := spec.Stages
	// Random permutation decorrelates stage width from stage speed.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	lf := math.Log(spec.P90Fastest.Seconds())
	ls := math.Log(spec.P90Slowest.Seconds())
	ratio := spec.MedianRuntime.Seconds() / spec.P90Runtime.Seconds()
	lns := make([]stats.Lognormal, n)
	weights := make([]float64, n)
	const z90 = 1.2815515655446004
	for rank, s := range perm {
		frac := 0.0
		if n > 1 {
			frac = float64(rank) / float64(n-1)
		}
		p90 := math.Exp(lf + frac*(ls-lf))
		median := p90 * ratio
		lns[s] = stats.Lognormal{Mu: math.Log(median), Sigma: math.Log(p90/median) / z90}
		weights[s] = float64(sizes[s])
	}
	calibrateMixture(lns, weights, spec.MedianRuntime.Seconds(), spec.P90Runtime.Seconds())
	dists := make([]stats.Distribution, n)
	for s := range dists {
		// Bound the tail at 3× the stage's p90: stragglers exist but tasks
		// are not unbounded — without a cap a single lognormal draw (which
		// at these sigmas can exceed 30× the p90) dwarfs the rest of the
		// job and every run is straggler-bound.
		dists[s] = stats.Truncated{Base: lns[s], Max: 3 * lns[s].Quantile(0.9)}
	}
	return dists
}

// calibrateMixture iteratively shifts every stage's mu (to hit the target
// mixture median) and scales every stage's sigma (to hit the target mixture
// p90/median ratio). Per-stage p90 spacing is preserved up to the global
// scale; the fastest/slowest stage p90s drift slightly, which the Table 2
// experiment reports as measured-vs-paper.
func calibrateMixture(lns []stats.Lognormal, weights []float64, targetMed, targetP90 float64) {
	for iter := 0; iter < 12; iter++ {
		med := mixtureQuantile(lns, weights, 0.5)
		p90 := mixtureQuantile(lns, weights, 0.9)
		if med <= 0 || p90 <= med {
			return
		}
		dMu := math.Log(targetMed / med)
		sigScale := math.Log(targetP90/targetMed) / math.Log(p90/med)
		if sigScale < 0.2 {
			sigScale = 0.2
		}
		if sigScale > 5 {
			sigScale = 5
		}
		converged := math.Abs(dMu) < 0.005 && math.Abs(sigScale-1) < 0.005
		// Scale the total log-spread — both within-stage sigmas and the
		// between-stage deviations around the weighted mean mu — so jobs
		// whose published per-stage extremes exceed their overall p90 (job
		// G) still calibrate; their stage extremes compress, which the
		// Table 2 experiment reports as measured-vs-paper.
		var muBar, wTotal float64
		for i, w := range weights {
			muBar += w * lns[i].Mu
			wTotal += w
		}
		muBar /= wTotal
		for i := range lns {
			lns[i].Mu = muBar + dMu + sigScale*(lns[i].Mu-muBar)
			lns[i].Sigma *= sigScale
			if lns[i].Sigma < 0.01 {
				lns[i].Sigma = 0.01
			}
		}
		if converged {
			return
		}
	}
}

// mixtureQuantile solves for t with Σ w_s CDF_s(t) = q by bisection.
func mixtureQuantile(lns []stats.Lognormal, weights []float64, q float64) float64 {
	var wTotal float64
	for _, w := range weights {
		wTotal += w
	}
	cdf := func(t float64) float64 {
		var acc float64
		lt := math.Log(t)
		for i, ln := range lns {
			acc += weights[i] * 0.5 * (1 + math.Erf((lt-ln.Mu)/(ln.Sigma*math.Sqrt2)))
		}
		return acc / wTotal
	}
	lo, hi := 1e-6, 1e7
	for i := 0; i < 100; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection suits log-scale data
		if cdf(mid) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}
