package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles jockeyvet once per test binary.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "jockeyvet")
	cmd := exec.Command("go", "build", "-o", tool, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building jockeyvet: %v\n%s", err, out)
	}
	return tool
}

// writeModule lays out a throwaway module so `go vet -vettool` runs the full
// unit protocol against controlled sources. The module reuses the real module
// path: the package-scoped rules match full import paths, so a fixture must
// live at github.com/jockeysim/jockey/internal/... to be bound by them.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module github.com/jockeysim/jockey\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func govet(t *testing.T, tool, dir string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go vet: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// runTool invokes the built jockeyvet binary directly (standalone mode).
func runTool(t *testing.T, tool, dir string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(tool, args...)
	cmd.Dir = dir
	var outBuf, errBuf strings.Builder
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	err := cmd.Run()
	code = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %s: %v\n%s%s", tool, err, outBuf.String(), errBuf.String())
		}
		code = ee.ExitCode()
	}
	return outBuf.String(), errBuf.String(), code
}

func TestVettoolReportsViolations(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim

import "time"

func Step() time.Time { return time.Now() }
`,
	})
	out, code := govet(t, tool, dir)
	if code == 0 {
		t.Fatalf("go vet exited 0 on a walltime violation:\n%s", out)
	}
	if !strings.Contains(out, "time.Now reads the wall clock") {
		t.Fatalf("missing walltime diagnostic:\n%s", out)
	}
}

func TestVettoolHonorsIgnoreDirective(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim

import "time"

func Step() time.Time {
	return time.Now() //jockeyvet:ignore integration-test fixture
}
`,
	})
	out, code := govet(t, tool, dir)
	if code != 0 {
		t.Fatalf("go vet exited %d despite a reasoned ignore:\n%s", code, out)
	}
}

// TestVettoolDeterministicPackagesMatchFullPaths: a package merely named
// "sim" under someone else's import path is outside the determinism
// contract, so wall-clock reads there are fine.
func TestVettoolDeterministicPackagesMatchFullPaths(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"vendorish/sim/sim.go": `package sim

import "time"

func Step() time.Time { return time.Now() }
`,
	})
	out, code := govet(t, tool, dir)
	if code != 0 {
		t.Fatalf("go vet exited %d on a lookalike package outside internal/:\n%s", code, out)
	}
}

// TestVettoolCrossPackageFacts drives the whole fact pipeline through the
// real go command: seedflow records in internal/seedhelp's vetx side file
// that Gen consumes a seed at parameter 0, and the internal/sim unit —
// a separate tool invocation — imports that fact and flags the literal.
func TestVettoolCrossPackageFacts(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"internal/seedhelp/seedhelp.go": `package seedhelp

import "math/rand/v2"

// Gen builds a deterministic generator from a derived seed.
func Gen(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}
`,
		"internal/sim/sim.go": `package sim

import "github.com/jockeysim/jockey/internal/seedhelp"

func Boot() {
	_ = seedhelp.Gen(7)
}
`,
	})
	out, code := govet(t, tool, dir)
	if code == 0 {
		t.Fatalf("go vet exited 0 on a literal seed crossing a package boundary:\n%s", out)
	}
	if !strings.Contains(out, "seed reaching Gen is a literal/constant") {
		t.Fatalf("missing cross-package seedflow diagnostic:\n%s", out)
	}
}

// TestVettoolHotpathViolation: an annotated function with an allocating
// construct is caught through the full vettool protocol.
func TestVettoolHotpathViolation(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"internal/sim/hot.go": `package sim

//jockey:hotpath
func Accumulate(vals []int) []int {
	out := make([]int, 0, len(vals))
	for _, v := range vals {
		out = append(out, v)
	}
	return out
}
`,
	})
	out, code := govet(t, tool, dir)
	if code == 0 {
		t.Fatalf("go vet exited 0 on a hotpath allocation:\n%s", out)
	}
	if !strings.Contains(out, "//jockey:hotpath function Accumulate") || !strings.Contains(out, "make allocates") {
		t.Fatalf("missing hotalloc diagnostic:\n%s", out)
	}
}

// TestVettoolJSONOutput checks the standalone -json aggregate: version-1
// schema on stdout, problem-matcher lines on stderr, exit 2 on findings.
func TestVettoolJSONOutput(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim

import "time"

func Step() time.Time { return time.Now() }
`,
	})
	stdout, stderr, code := runTool(t, tool, dir, "-json", "./...")
	if code != 2 {
		t.Fatalf("jockeyvet -json exited %d, want 2:\n%s%s", code, stdout, stderr)
	}
	if err := validateReport([]byte(stdout)); err != nil {
		t.Fatalf("report fails schema validation: %v\n%s", err, stdout)
	}
	var rep report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnostics) != 1 {
		t.Fatalf("got %d diagnostics, want 1:\n%s", len(rep.Diagnostics), stdout)
	}
	d := rep.Diagnostics[0]
	if d.Analyzer != "walltime" || d.File != filepath.Join("internal", "sim", "sim.go") || d.Line != 5 {
		t.Fatalf("unexpected diagnostic: %+v", d)
	}
	wantLine := "internal/sim/sim.go:5:32: [walltime] time.Now reads the wall clock"
	if !strings.Contains(stderr, wantLine) {
		t.Fatalf("stderr missing problem-matcher line %q:\n%s", wantLine, stderr)
	}
}

// TestVettoolJSONCleanTree: a clean package yields exit 0 and an empty (but
// schema-valid) diagnostics list.
func TestVettoolJSONCleanTree(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim

func Step() int { return 1 }
`,
	})
	stdout, stderr, code := runTool(t, tool, dir, "-json", "./...")
	if code != 0 {
		t.Fatalf("jockeyvet -json exited %d on a clean tree:\n%s%s", code, stdout, stderr)
	}
	if err := validateReport([]byte(stdout)); err != nil {
		t.Fatalf("clean report fails schema validation: %v\n%s", err, stdout)
	}
	if !strings.Contains(stdout, `"diagnostics": []`) {
		t.Fatalf("clean report should carry an explicit empty diagnostics list:\n%s", stdout)
	}
}

// TestVettoolEmptyPatternFails: a pattern that matches no packages must be a
// loud failure, not a silent no-op pass — a CI typo cannot disable the gate.
func TestVettoolEmptyPatternFails(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"internal/sim/sim.go": `package sim

func Step() int { return 1 }
`,
	})
	if err := os.MkdirAll(filepath.Join(dir, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runTool(t, tool, dir, "./empty/...")
	if code == 0 {
		t.Fatalf("jockeyvet exited 0 on a pattern matching no packages:\n%s%s", stdout, stderr)
	}
	if !strings.Contains(stderr, "matched no packages") {
		t.Fatalf("missing matched-no-packages message:\n%s%s", stdout, stderr)
	}
	// The -json path takes the same guard.
	stdout, stderr, code = runTool(t, tool, dir, "-json", "./empty/...")
	if code == 0 || !strings.Contains(stderr, "matched no packages") {
		t.Fatalf("-json mode exited %d without the matched-no-packages message:\n%s%s", code, stdout, stderr)
	}
}

// TestRepositoryIsClean is the acceptance check: the whole tree must satisfy
// the determinism contract. CI runs the same invocation as a build gate;
// this test keeps it enforced for plain `go test ./...` runs too.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide vet is not short")
	}
	tool := buildTool(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	out, code := govet(t, tool, root)
	if code != 0 {
		t.Fatalf("jockeyvet found violations in the repository:\n%s", out)
	}
}
