package invariant

import (
	"testing"
	"time"
)

// TestDebugDefaultOff: the hot path must pay nothing in default builds —
// Debug is a compile-time false unless -tags invariantdebug is set, in
// which case this test is a tautology (and the model package's
// readonly_debug_test.go exercises the enforcement instead).
func TestDebugDefaultOff(t *testing.T) {
	t.Logf("invariant.Debug = %v", Debug)
}

func TestChecksumDurations(t *testing.T) {
	a := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	b := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if ChecksumDurations(a) != ChecksumDurations(b) {
		t.Error("equal slices must hash equal")
	}
	b[1]++
	if ChecksumDurations(a) == ChecksumDurations(b) {
		t.Error("mutation must change the checksum")
	}
	// Order sensitivity: the cells are sorted, so a reordering is a
	// mutation too.
	c := []time.Duration{2 * time.Second, time.Second, 3 * time.Second}
	if ChecksumDurations(a) == ChecksumDurations(c) {
		t.Error("reordering must change the checksum")
	}
	if ChecksumDurations(nil) != ChecksumDurations([]time.Duration{}) {
		t.Error("nil and empty must hash equal")
	}
}
