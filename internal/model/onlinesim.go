package model

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/sim"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
)

// OnlineSim is the enhancement proposed in §4.4 of the paper: instead of
// indexing precomputed C(p, a) distributions through a progress indicator,
// it invokes the offline job simulator *at control time*, simulating forward
// from the job's actual per-stage completion state. This gives more precise
// control (no information is lost through the scalar progress index) at the
// cost of simulation work inside the control loop — the trade-off the paper
// describes when motivating the precomputed table.
//
// OnlineSim implements Predictor and can be swapped into the controller
// wherever a CPA is used.
type OnlineSim struct {
	p    *profile.Profile
	runs int
	seed uint64
	par  int

	// Single-entry memo: the control loop queries the same state for every
	// candidate allocation, and Remaining/ExpectedUtility share samples.
	memoKey     string
	memoSamples map[int][]time.Duration
}

// NewOnlineSim builds the online predictor; runs is the number of forward
// simulations per (state, allocation) query (default 7).
func NewOnlineSim(p *profile.Profile, runs int, seed uint64) (*OnlineSim, error) {
	if p == nil {
		return nil, fmt.Errorf("model: NewOnlineSim requires a profile")
	}
	if runs <= 0 {
		runs = 7
	}
	return &OnlineSim{p: p, runs: runs, seed: seed, memoSamples: map[int][]time.Duration{}}, nil
}

// SetParallelism bounds the worker pool that executes the forward
// simulations of one query (0 or negative = runtime.GOMAXPROCS(0), the
// default). Predictions are bit-identical at any value: each forward run's
// seed depends only on (seed, state, alloc, run index), workers write
// disjoint result slots, and results are collected in run-index order.
// OnlineSim itself is not safe for concurrent queries; the knob parallelizes
// the simulations inside a single query.
func (o *OnlineSim) SetParallelism(n int) { o.par = n }

// Name implements Predictor.
func (o *OnlineSim) Name() string { return "online-sim" }

func stateKey(st State) string {
	// Round fractions so the memo survives tiny float noise within a tick.
	out := make([]byte, 0, len(st.FracDone)*3)
	for _, f := range st.FracDone {
		v := int(f * 1000)
		out = append(out, byte(v>>8), byte(v), ',')
	}
	return string(out) + fmt.Sprint(int(st.Elapsed/time.Second))
}

// samples returns remaining-time samples for the state at allocation a,
// simulating forward from the state's per-stage completion fractions.
func (o *OnlineSim) samples(st State, a int) []time.Duration {
	if a < 1 {
		a = 1
	}
	key := stateKey(st)
	if key != o.memoKey {
		o.memoKey = key
		o.memoSamples = map[int][]time.Duration{}
	}
	if s, ok := o.memoSamples[a]; ok {
		return s
	}
	workers := o.par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	completions := make([]time.Duration, o.runs)
	succeeded := make([]bool, o.runs)
	runParallel(o.runs, workers, func(r int) {
		seed := stats.DeriveSeed(o.seed, "online", key, fmt.Sprint(a), fmt.Sprint(r))
		tr, err := sim.Run(sim.Config{
			Profile:         o.p,
			Alloc:           a,
			Seed:            seed,
			InitialFracDone: st.FracDone,
		})
		if err != nil {
			// A stalled forward simulation means the state vector is
			// inconsistent with the plan; treat as "no information".
			return
		}
		completions[r] = tr.Completion
		succeeded[r] = true
	})
	out := make([]time.Duration, 0, o.runs)
	for r := 0; r < o.runs; r++ {
		if succeeded[r] {
			out = append(out, completions[r])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	o.memoSamples[a] = out
	return out
}

// Remaining implements Predictor.
func (o *OnlineSim) Remaining(st State, a int, q float64) time.Duration {
	s := o.samples(st, a)
	if len(s) == 0 {
		return 0
	}
	return stats.QuantileDurations(s, q)
}

// ExpectedUtility implements Predictor.
func (o *OnlineSim) ExpectedUtility(st State, a int, slack float64, u utility.Fn) float64 {
	s := o.samples(st, a)
	if len(s) == 0 {
		return u.Utility(st.Elapsed)
	}
	var sum float64
	for _, rem := range s {
		sum += u.Utility(st.Elapsed + time.Duration(float64(rem)*slack))
	}
	return sum / float64(len(s))
}
