// Fixture: hotalloc over calendar-queue idiom — the bucketed event-queue
// shapes internal/eventq's hot paths use. Pushes route items into per-bucket
// slices owned by the queue struct (allowed: amortized appends to struct
// fields, indexed bucket access), while the tempting shortcuts — rebuilding
// a bucket slice per push, boxing items through any, formatting debug keys —
// are exactly what the gate must flag.
package calq

import "fmt"

type entry struct {
	at  int64
	seq uint64
}

type calq struct {
	buckets [][]entry
	width   int64
	n       int
}

//jockey:hotpath
func (q *calq) push(e entry) {
	// Allowed: the bucket array is owned by the queue; append amortizes into
	// its standing capacity, and index expressions allocate nothing.
	b := int(e.at/q.width) % len(q.buckets)
	q.buckets[b] = append(q.buckets[b], e)
	q.n++
}

//jockey:hotpath
func (q *calq) take(b int) []entry {
	// Allowed: reslicing in place and handing back a view.
	out := q.buckets[b]
	q.buckets[b] = q.buckets[b][:0]
	return out
}

//jockey:hotpath
func (q *calq) pushFresh(e entry) {
	fresh := []entry{e}   // want `slice literal allocates`
	local := []entry(nil) //
	local = append(local, e) // want `append to a local slice allocates`
	q.buckets[0] = append(q.buckets[0], local...)
	q.buckets[1] = append(q.buckets[1], fresh...)
}

//jockey:hotpath
func (q *calq) resize(nb int) {
	q.buckets = make([][]entry, nb) // want `make allocates`
}

//jockey:hotpath
func (q *calq) debugKey(e entry) string {
	return fmt.Sprintf("%d@%d", e.seq, e.at) // want `fmt.Sprintf allocates`
}

//jockey:hotpath
func (q *calq) box(e entry) any {
	var v any = e // want `boxes it`
	return v
}

// resize outside an annotated body is fine: promotion/rebuild paths are
// cold and may allocate freely.
func (q *calq) coldRebuild(nb int) {
	q.buckets = make([][]entry, nb)
	for i := range q.buckets {
		q.buckets[i] = make([]entry, 0, 4)
	}
}
