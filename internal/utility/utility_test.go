package utility

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestDeadlineCurve(t *testing.T) {
	d := 60 * time.Minute
	u := Deadline(d)
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 1},
		{30 * time.Minute, 1},
		{60 * time.Minute, 1},
		{65 * time.Minute, 0},  // halfway down the first drop
		{70 * time.Minute, -1}, // d+10min
		{1060 * time.Minute, -1000},
		{5000 * time.Minute, -1000}, // flat after last point
	}
	for _, c := range cases {
		if got := u.Utility(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("U(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSoftDeadline(t *testing.T) {
	u := SoftDeadline(time.Hour, 30*time.Minute)
	if got := u.Utility(time.Hour); got != 1 {
		t.Errorf("U(d) = %v", got)
	}
	if got := u.Utility(75 * time.Minute); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("U(d+15m) = %v, want 0.5", got)
	}
	if got := u.Utility(10 * time.Hour); got != 0 {
		t.Errorf("late soft utility = %v, want 0 (never negative)", got)
	}
	// Zero grace must not panic.
	z := SoftDeadline(time.Hour, 0)
	if got := z.Utility(2 * time.Hour); got != 0 {
		t.Errorf("zero-grace late utility = %v", got)
	}
}

func TestNewPiecewiseLinearErrors(t *testing.T) {
	if _, err := NewPiecewiseLinear(nil); err == nil {
		t.Error("no points must fail")
	}
	if _, err := NewPiecewiseLinear([]Point{{T: 1, U: 0}, {T: 1, U: 5}}); err == nil {
		t.Error("duplicate times must fail")
	}
}

func TestPointsSortedAndCopied(t *testing.T) {
	pl, err := NewPiecewiseLinear([]Point{{T: 2 * time.Minute, U: 0}, {T: time.Minute, U: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ps := pl.Points()
	if ps[0].T != time.Minute {
		t.Error("points not sorted")
	}
	ps[0].U = 42
	if pl.Points()[0].U == 42 {
		t.Error("Points returned internal slice")
	}
}

func TestShiftEarlier(t *testing.T) {
	d := 60 * time.Minute
	u := Deadline(d).ShiftEarlier(3 * time.Minute)
	// The shifted curve's deadline is effectively 57 minutes.
	if got := u.Utility(57 * time.Minute); got != 1 {
		t.Errorf("U(57m) = %v", got)
	}
	if got := u.Utility(67 * time.Minute); math.Abs(got+1) > 1e-9 {
		t.Errorf("U(67m) = %v, want -1", got)
	}
	// Shifting by more than the first positive point collapses duplicates
	// at zero without panicking.
	v := Deadline(time.Minute).ShiftEarlier(2 * time.Minute)
	if got := v.Utility(0); got != 1 {
		t.Errorf("clamped curve U(0) = %v", got)
	}
}

func TestUtilityMonotoneNonIncreasingProperty(t *testing.T) {
	u := Deadline(45 * time.Minute)
	f := func(aMin, bMin uint16) bool {
		a := time.Duration(aMin) * time.Second
		b := time.Duration(bMin) * time.Second
		if a > b {
			a, b = b, a
		}
		return u.Utility(a) >= u.Utility(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	s := Deadline(time.Hour).String()
	if !strings.Contains(s, "utility[") || !strings.Contains(s, "1h0m0s") {
		t.Errorf("String = %q", s)
	}
}
