package flight

import (
	"fmt"
	"sort"
	"time"

	"github.com/jockeysim/jockey/internal/control"
)

// ReplayOutcome is the outcome of one run — the actual recorded run, or a
// counterfactual replay of it under a constant allocation.
type ReplayOutcome struct {
	// Alloc is the constant allocation replayed (0 for the actual run).
	Alloc int `json:"alloc"`
	// Completion is when the job finished.
	Completion time.Duration `json:"completion_ns"`
	// Met reports whether the deadline was met.
	Met bool `json:"met"`
	// AllocTokenSeconds is the integral of the granted allocation over the
	// run — the budget the grant cost the cluster.
	AllocTokenSeconds float64 `json:"alloc_token_seconds"`
}

// Replayer re-executes the recorded run with a constant allocation of a
// tokens, everything else identical. Because the whole stack derives its
// randomness from (seed, job, run) labels, the replay is exact: the same
// cluster, failures, background load and faults, with only the SLO job's
// grant changed.
type Replayer func(alloc int) (ReplayOutcome, error)

// MechanismShare attributes part of the hindsight allocation gap to one
// control mechanism.
type MechanismShare struct {
	// Mechanism is an attribution label (see Attribution* constants).
	Mechanism string `json:"mechanism"`
	// Ticks is how many recorded ticks contributed.
	Ticks int `json:"ticks"`
	// GapTokenSeconds is the token-seconds of allocation gap (shortfall
	// below the hindsight target on a missed run, excess above it on a met
	// run) accumulated over those ticks.
	GapTokenSeconds float64 `json:"gap_token_seconds"`
}

// Attribution labels: the per-tick mechanisms collapsed into the paper-level
// question "model error vs. damping vs. guard intervention".
const (
	AttributionModelError   = "model-error"
	AttributionHysteresis   = "hysteresis"
	AttributionDeadZone     = "dead-zone"
	AttributionGuardFallbck = "guard-fallback"
	AttributionGuardPanic   = "guard-panic"
	AttributionUrgencyBoost = "urgency-boost"
	AttributionUnknown      = "unattributed"
)

// attributionOrder fixes the iteration order of attribution aggregation so
// no code ever ranges over a map of shares (determinism by construction).
var attributionOrder = []string{
	AttributionModelError,
	AttributionHysteresis,
	AttributionDeadZone,
	AttributionGuardFallbck,
	AttributionGuardPanic,
	AttributionUrgencyBoost,
	AttributionUnknown,
}

// Regret is the counterfactual report of one run against the hindsight
// space of constant allocations.
//
// Two regrets are reported, both provably ≥ 0, exactly 0 when the actual
// trajectory is hindsight-optimal, and monotone non-increasing as the
// candidate set shrinks (pinned by the property tests):
//
//   - DeadlineRegret is 1 when the actual run missed its deadline but some
//     replayed constant allocation met it ("the miss was avoidable"), else 0.
//   - TokenRegret is, for runs that met the deadline, the token-seconds the
//     actual grant spent above the cheapest deadline-meeting constant
//     allocation ("the tokens were avoidable"); 0 for missed runs.
type Regret struct {
	// Candidates is the ascending hindsight allocation set.
	Candidates []int `json:"candidates"`
	// Replays are the constant-allocation outcomes, aligned with Candidates.
	Replays []ReplayOutcome `json:"replays"`
	// Actual is the recorded run's outcome (Alloc 0).
	Actual ReplayOutcome `json:"actual"`
	// HindsightAlloc is the constant allocation of the best replay under
	// (met, fewer token-seconds) lexicographic order, or 0 when no replay
	// strictly beats the actual trajectory.
	HindsightAlloc int `json:"hindsight_alloc"`
	// DeadlineRegret and TokenRegret are defined above.
	DeadlineRegret float64 `json:"deadline_regret"`
	TokenRegret    float64 `json:"token_regret"`
	// Attribution splits the per-tick allocation gap between the actual
	// grant and the hindsight target by mechanism, largest first.
	Attribution []MechanismShare `json:"attribution,omitempty"`
	// Attributed is the dominant mechanism ("" when there is no regret).
	Attributed string `json:"attributed,omitempty"`
}

// betterOutcome orders outcomes by (met the deadline, fewer token-seconds).
func betterOutcome(a, b ReplayOutcome) bool {
	if a.Met != b.Met {
		return a.Met
	}
	return a.AllocTokenSeconds < b.AllocTokenSeconds
}

// Counterfactual replays the recorded run under every candidate constant
// allocation and scores the actual trajectory against the hindsight-best
// one. ticks are the run's recorded decisions (used for attribution only;
// may be empty), actual is the recorded outcome, and candidates the
// hindsight allocations (deduplicated and sorted; non-positive entries are
// dropped).
func Counterfactual(ticks []Tick, actual ReplayOutcome, candidates []int, replay Replayer) (*Regret, error) {
	cands := append([]int(nil), candidates...)
	sort.Ints(cands)
	n := 0
	for _, a := range cands {
		if a <= 0 || (n > 0 && cands[n-1] == a) {
			continue
		}
		cands[n] = a
		n++
	}
	cands = cands[:n]

	reg := &Regret{Candidates: cands, Actual: actual}
	reg.Replays = make([]ReplayOutcome, 0, len(cands))
	for _, a := range cands {
		o, err := replay(a)
		if err != nil {
			return nil, fmt.Errorf("flight: replaying constant allocation %d: %w", a, err)
		}
		o.Alloc = a
		reg.Replays = append(reg.Replays, o)
	}

	best := actual
	for _, o := range reg.Replays {
		if betterOutcome(o, best) {
			best = o
			reg.HindsightAlloc = o.Alloc
		}
	}
	if best.Met && !actual.Met {
		reg.DeadlineRegret = 1
	}
	if actual.Met {
		minTok := actual.AllocTokenSeconds
		for _, o := range reg.Replays {
			if o.Met && o.AllocTokenSeconds < minTok {
				minTok = o.AllocTokenSeconds
			}
		}
		reg.TokenRegret = actual.AllocTokenSeconds - minTok
	}
	reg.attribute(ticks)
	return reg, nil
}

// attribute splits the allocation gap between the actual grants and the
// hindsight target by the mechanism that set each tick's grant. The target
// is the cheapest deadline-meeting constant allocation: on a missed run the
// gap is the shortfall below it (what kept the job under-provisioned), on a
// met run the excess above it (what over-spent).
func (r *Regret) attribute(ticks []Tick) {
	if r.DeadlineRegret == 0 && r.TokenRegret == 0 {
		return
	}
	var target *ReplayOutcome
	for i := range r.Replays {
		o := &r.Replays[i]
		if !o.Met {
			continue
		}
		if target == nil || o.AllocTokenSeconds < target.AllocTokenSeconds ||
			(o.AllocTokenSeconds == target.AllocTokenSeconds && o.Alloc < target.Alloc) {
			target = o
		}
	}
	if target == nil {
		// Unreachable when either regret is positive, but keep the report
		// well-formed for hand-built inputs.
		return
	}
	shortfall := r.DeadlineRegret > 0
	shares := map[string]*MechanismShare{}
	for i, t := range ticks {
		gap := target.Alloc - t.Granted
		if !shortfall {
			gap = -gap
		}
		if gap <= 0 {
			continue
		}
		end := r.Actual.Completion
		if i+1 < len(ticks) {
			end = ticks[i+1].At
		}
		if end < t.At {
			end = t.At
		}
		m := attributionOf(t)
		s := shares[m]
		if s == nil {
			s = &MechanismShare{Mechanism: m}
			shares[m] = s
		}
		s.Ticks++
		s.GapTokenSeconds += float64(gap) * (end - t.At).Seconds()
	}
	for _, m := range attributionOrder {
		if s := shares[m]; s != nil {
			r.Attribution = append(r.Attribution, *s)
		}
	}
	sort.SliceStable(r.Attribution, func(i, j int) bool {
		a, b := r.Attribution[i], r.Attribution[j]
		if a.GapTokenSeconds != b.GapTokenSeconds {
			return a.GapTokenSeconds > b.GapTokenSeconds
		}
		return a.Mechanism < b.Mechanism
	})
	if len(r.Attribution) > 0 {
		r.Attributed = r.Attribution[0].Mechanism
	}
}

// attributionOf collapses a tick's mechanism and guard mode into an
// attribution label: explicit damping and guard mechanisms name themselves;
// a model-chosen grant on a degraded rung is the guard's fallback model
// speaking; a model-chosen grant on the primary rung is model error.
func attributionOf(t Tick) string {
	switch t.Mechanism {
	case control.MechHysteresis:
		return AttributionHysteresis
	case control.MechDeadZone:
		return AttributionDeadZone
	case control.MechUrgencyBoost:
		return AttributionUrgencyBoost
	case control.MechGuardPanic:
		return AttributionGuardPanic
	}
	if t.Mode != "" && t.Mode != "primary" {
		return AttributionGuardFallbck
	}
	switch t.Mechanism {
	case control.MechModel, control.MechFirstTick:
		return AttributionModelError
	}
	return AttributionUnknown
}
