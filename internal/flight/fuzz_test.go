// Fuzz harness for the flight-record ingestion path: like trace JSON,
// flight-record JSON crosses the process boundary (jockey -flight /
// cmd/experiments flight files), so ReadJSON must tolerate arbitrary bytes
// and the decode→encode→decode round trip must be stable.
package flight_test

import (
	"bytes"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/flight"
)

// seedRecord builds a small well-formed record like RunFlight produces.
func seedRecord() *flight.Record {
	rec := flight.NewRecorder(flight.Config{
		Job: "B", Policy: "jockey-guarded", Level: flight.LevelCounterfactual,
		Deadline: 35 * time.Minute, TopK: 2,
	})
	rec.RecordDecision(&control.DecisionRecord{
		At: time.Minute, Raw: 54, Granted: 54, Mechanism: control.MechFirstTick, Mode: "primary",
		Predicted: 20 * time.Minute,
		Candidates: []control.CandidateEval{
			{Alloc: 1, Utility: 0, Predicted: 4 * time.Hour},
			{Alloc: 54, Utility: 1, Predicted: 20 * time.Minute},
			{Alloc: 100, Utility: 1, Predicted: 15 * time.Minute},
		},
	})
	rec.RecordDecision(&control.DecisionRecord{
		At: 2 * time.Minute, Raw: 54, Granted: 54, Mechanism: control.MechModel, Mode: "primary",
		Deviation: 0.12, Predicted: 21 * time.Minute,
		Candidates: []control.CandidateEval{
			{Alloc: 1, Utility: 0, Predicted: 4 * time.Hour},
			{Alloc: 54, Utility: 1, Predicted: 21 * time.Minute},
		},
	})
	r := rec.Record()
	r.Counterfactual = &flight.Regret{
		Candidates: []int{1, 54, 100},
		Replays: []flight.ReplayOutcome{
			{Alloc: 1, Completion: 4 * time.Hour},
			{Alloc: 54, Completion: 22 * time.Minute, Met: true, AllocTokenSeconds: 71280},
			{Alloc: 100, Completion: 16 * time.Minute, Met: true, AllocTokenSeconds: 96000},
		},
		Actual:         flight.ReplayOutcome{Completion: 23 * time.Minute, Met: true, AllocTokenSeconds: 74000},
		HindsightAlloc: 54,
		TokenRegret:    2720,
		Attribution:    []flight.MechanismShare{{Mechanism: flight.AttributionModelError, Ticks: 2, GapTokenSeconds: 2720}},
		Attributed:     flight.AttributionModelError,
	}
	return r
}

// FuzzFlightJSON: decoding arbitrary bytes must either fail cleanly or yield
// a record that re-encodes, and the re-encoded bytes must decode to the
// byte-identical encoding (decode→encode→decode stable).
func FuzzFlightJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := seedRecord().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":1,"job":"x","level":"decisions"}`))
	f.Add([]byte(`{"schema":2,"job":"x","level":"decisions"}`))
	f.Add([]byte(`{"schema":1,"job":"x","level":"warp"}`))
	f.Add([]byte(`{"schema":1,"job":"x","level":"decisions","ticks":[{"at_ns":60},{"at_ns":-1}]}`))
	f.Add([]byte(`{"schema":1,"job":"x","level":"decisions","ticks":[{"at_ns":60,"deviation":1e999}]}`))
	f.Add([]byte(`{"schema":1,"job":"x","level":"counterfactual","counterfactual":{"candidates":[5],"replays":[]}}`))
	f.Add([]byte(`{"schema":1,"job":"x","level":"counterfactual","counterfactual":{"candidates":[5,5],"replays":[{"alloc":5},{"alloc":5}]}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add([]byte("\x00\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := flight.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that validated must encode...
		var first bytes.Buffer
		if err := r.WriteJSON(&first); err != nil {
			t.Fatalf("accepted record failed to encode: %v", err)
		}
		// ...decode again...
		r2, err := flight.ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("encoded record failed to decode: %v", err)
		}
		// ...and re-encode byte-identically.
		var second bytes.Buffer
		if err := r2.WriteJSON(&second); err != nil {
			t.Fatalf("re-decoded record failed to encode: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip unstable:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
		}
	})
}
