module github.com/jockeysim/jockey

go 1.22
