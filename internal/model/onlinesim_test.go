package model

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/utility"
)

func TestOnlineSimValidation(t *testing.T) {
	if _, err := NewOnlineSim(nil, 3, 1); err == nil {
		t.Error("nil profile must fail")
	}
	p := detProfile(t)
	o, err := NewOnlineSim(p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "online-sim" {
		t.Errorf("name = %q", o.Name())
	}
}

func TestOnlineSimFromScratchMatchesOffline(t *testing.T) {
	// The deterministic job from model_test: 20×30s map, 4×60s reduce.
	p := detProfile(t)
	o, err := NewOnlineSim(p, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := State{FracDone: []float64{0, 0}}
	// At alloc 20: one map wave + reduce = 90s, deterministic.
	if got := o.Remaining(st, 20, 0.5); got != 90*time.Second {
		t.Errorf("Remaining(0, 20) = %v, want 90s", got)
	}
	// At alloc 4: 5 waves + reduce = 210s.
	if got := o.Remaining(st, 4, 1.0); got != 210*time.Second {
		t.Errorf("Remaining(0, 4) = %v, want 210s", got)
	}
}

func TestOnlineSimUsesPartialState(t *testing.T) {
	p := detProfile(t)
	o, err := NewOnlineSim(p, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Map fully done: only the reduce wave remains (60s at alloc >= 4).
	st := State{Elapsed: 5 * time.Minute, FracDone: []float64{1, 0}}
	if got := o.Remaining(st, 10, 1.0); got != 60*time.Second {
		t.Errorf("Remaining(map done) = %v, want 60s", got)
	}
	// Half the map done at alloc 10: one more map wave (30s) + reduce (60s).
	stHalf := State{FracDone: []float64{0.5, 0}}
	if got := o.Remaining(stHalf, 10, 1.0); got != 90*time.Second {
		t.Errorf("Remaining(half map) = %v, want 90s", got)
	}
	// Everything done: zero remaining.
	if got := o.Remaining(State{FracDone: []float64{1, 1}}, 10, 1.0); got != 0 {
		t.Errorf("Remaining(done) = %v, want 0", got)
	}
}

func TestOnlineSimExpectedUtility(t *testing.T) {
	p := detProfile(t)
	o, _ := NewOnlineSim(p, 3, 1)
	st := State{FracDone: []float64{0, 0}}
	easy := utility.Deadline(time.Hour)
	if got := o.ExpectedUtility(st, 20, 1.2, easy); got != 1 {
		t.Errorf("easy utility = %v", got)
	}
	// At a single token the 840s of serial work lands far past the
	// 1-second deadline's 10-minute grace slope, so utility goes negative.
	hard := utility.Deadline(time.Second)
	if got := o.ExpectedUtility(st, 1, 1.2, hard); got >= 0 {
		t.Errorf("impossible utility = %v", got)
	}
}

func TestOnlineSimMemo(t *testing.T) {
	p := noisyProfile(t)
	o, _ := NewOnlineSim(p, 4, 2)
	st := State{Elapsed: time.Minute, FracDone: []float64{0.25, 0}}
	a1 := o.Remaining(st, 10, 0.5)
	a2 := o.Remaining(st, 10, 0.5)
	if a1 != a2 {
		t.Error("memoized query differed")
	}
	// Different state must refresh the memo.
	st2 := State{Elapsed: 2 * time.Minute, FracDone: []float64{0.5, 0}}
	b := o.Remaining(st2, 10, 0.5)
	if b >= a1 {
		t.Errorf("more progress should predict less remaining: %v -> %v", a1, b)
	}
}

func TestOnlineSimAsPredictorInController(t *testing.T) {
	// OnlineSim satisfies Predictor and can drive the expected-utility
	// argmin like the CPA does.
	p := detProfile(t)
	var pred Predictor
	o, _ := NewOnlineSim(p, 3, 1)
	pred = o
	st := State{FracDone: []float64{0, 0}}
	u := utility.Deadline(3 * time.Minute)
	// 840s of work in 180s needs >= 6 tokens; utility at 4 should be worse
	// than at 20.
	u4 := pred.ExpectedUtility(st, 4, 1.0, u)
	u20 := pred.ExpectedUtility(st, 20, 1.0, u)
	if u20 <= u4 {
		t.Errorf("utility(20)=%v should exceed utility(4)=%v", u20, u4)
	}
}
