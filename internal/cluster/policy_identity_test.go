package cluster

import (
	"fmt"
	"testing"

	"github.com/jockeysim/jockey/internal/eventq"
)

// TestEventPolicyByteIdentical is the gating smoke test for the calendar
// queue: a mid-size replay (1k machines, ~20k concurrent tasks — large
// enough that PolicyAuto would promote, and every scheduler path fires) must
// produce byte-identical results and utilization whichever storage regime
// serves the event queue. (time, seq) is a strict total order, so any
// difference means the calendar reordered events.
func TestEventPolicyByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size replay is ~100ms per policy; skipped in -short")
	}
	p := newLargeProfiles(t, midScale)
	replay := func(pol eventq.Policy) string {
		cfg := midScale.config()
		cfg.EventPolicy = pol
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := p.run(t, c, midScale)
		return fmt.Sprintf("%+v util=%.17g", res, c.Utilization())
	}
	heap := replay(eventq.PolicyHeap)
	cal := replay(eventq.PolicyCalendar)
	auto := replay(eventq.PolicyAuto)
	if heap != cal {
		t.Errorf("heap and calendar replays diverge:\n heap: %.300s\n  cal: %.300s", heap, cal)
	}
	if heap != auto {
		t.Errorf("heap and auto replays diverge:\n heap: %.300s\n auto: %.300s", heap, auto)
	}
}

// TestEventPolicyIdenticalOnEngine repeats the identity check across Engine
// reuse: a reused engine replaying under the calendar must match a fresh
// cluster replaying under the heap (the two axes of state reuse compose).
func TestEventPolicyIdenticalOnEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size replay is ~100ms per policy; skipped in -short")
	}
	p := newLargeProfiles(t, midScale)
	cfgHeap := midScale.config()
	cfgHeap.EventPolicy = eventq.PolicyHeap
	fresh, err := New(cfgHeap)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%+v util=%.17g", p.run(t, fresh, midScale), fresh.Utilization())

	cfgCal := midScale.config()
	cfgCal.EventPolicy = eventq.PolicyCalendar
	eng := NewEngine()
	for i := 0; i < 2; i++ {
		c, err := eng.Reset(cfgCal)
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%+v util=%.17g", p.run(t, c, midScale), c.Utilization())
		if got != want {
			t.Errorf("reused-engine calendar replay %d diverges from fresh heap replay:\n want: %.300s\n  got: %.300s",
				i, want, got)
		}
	}
}
