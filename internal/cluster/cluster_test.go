package cluster

import (
	"strings"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
)

// fixedJob: 8 x 10s map -> barrier -> 2 x 20s reduce, deterministic.
func fixedJob(t testing.TB, name string) *profile.Profile {
	t.Helper()
	job := dag.NewBuilder(name).
		Stage("map", 8).
		Stage("reduce", 2).
		Edge("map", "reduce", dag.AllToAll).
		MustBuild()
	return profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
		{Exec: stats.Point{V: 20 * time.Second}},
	})
}

// bigJob: a long single-stage batch for background pressure.
func bigJob(t testing.TB, name string, tasks int, dur time.Duration) *profile.Profile {
	t.Helper()
	job := dag.NewBuilder(name).Stage("work", tasks).MustBuild()
	return profile.MustNew(job, []profile.StageProfile{{Exec: stats.Point{V: dur}}})
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Machines: -1}); err == nil {
		t.Error("negative machines must fail")
	}
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalCapacity() != 100 {
		t.Errorf("default capacity = %d, want 100", c.TotalCapacity())
	}
	if c.Capacity() != c.TotalCapacity() {
		t.Error("all machines should start up")
	}
}

func TestSubmitValidation(t *testing.T) {
	c, _ := New(Config{})
	if _, err := c.Submit(JobConfig{}); err == nil {
		t.Error("nil profile must fail")
	}
	p := fixedJob(t, "x")
	if _, err := c.Submit(JobConfig{Profile: p, Guarantee: -1}); err == nil {
		t.Error("negative guarantee must fail")
	}
	if _, err := c.Submit(JobConfig{Profile: p}); err == nil {
		t.Error("no policy and no guarantee must fail")
	}
	if _, err := c.Submit(JobConfig{Profile: p, Guarantee: 1, DeadlineChanges: []DeadlineChange{
		{At: time.Minute, Deadline: time.Hour}, {At: time.Second, Deadline: time.Hour},
	}}); err == nil {
		t.Error("unsorted deadline changes must fail")
	}
}

func TestSingleJobFixedGuarantee(t *testing.T) {
	c, _ := New(Config{Machines: 4, SlotsPerMachine: 2, Seed: 1})
	p := fixedJob(t, "solo")
	h, err := c.Submit(JobConfig{Profile: p, Guarantee: 8, Deadline: 2 * time.Minute, Tracked: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !h.Done() {
		t.Fatal("job not done")
	}
	r := h.Result()
	// Alone with 8 tokens on an 8-slot cluster: 10s map wave + 20s reduce.
	if r.Completion != 30*time.Second {
		t.Errorf("completion = %v, want 30s", r.Completion)
	}
	if !r.Met {
		t.Error("deadline should be met")
	}
	if r.Trace == nil || len(r.Trace.Events) != 10 {
		t.Fatalf("trace missing or wrong: %+v", r.Trace)
	}
	if r.Evictions != 0 {
		t.Errorf("evictions = %d", r.Evictions)
	}
	if h.Name() != "solo" {
		t.Errorf("name = %q", h.Name())
	}
}

func TestSpareCapacitySpeedsUpJob(t *testing.T) {
	// Guarantee 2 tokens, but the cluster is otherwise idle: the
	// work-conserving scheduler should hand out spare tokens and finish the
	// job much faster than guaranteed-only would (50s vs 30s).
	c, _ := New(Config{Machines: 4, SlotsPerMachine: 2, Seed: 1})
	p := fixedJob(t, "sparey")
	h, _ := c.Submit(JobConfig{Profile: p, Guarantee: 2, Deadline: 2 * time.Minute, Tracked: true})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := h.Result()
	if r.Completion != 30*time.Second {
		t.Errorf("completion = %v, want 30s with spare capacity", r.Completion)
	}
	if r.SpareTaskFraction == 0 {
		t.Error("some tasks should have run on spare tokens")
	}
}

func TestGuaranteedDemandEvictsSpare(t *testing.T) {
	// A background job floods the 8-slot cluster on spare tokens (guarantee
	// 1); then an SLO job with guarantee 6 arrives and must get its 6 slots
	// by evicting spare tasks.
	c, _ := New(Config{Machines: 4, SlotsPerMachine: 2, Seed: 1})
	bg := bigJob(t, "bg", 200, 100*time.Second)
	_, err := c.Submit(JobConfig{Profile: bg, Guarantee: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := fixedJob(t, "slo")
	h, err := c.Submit(JobConfig{Profile: p, Guarantee: 6, Deadline: 3 * time.Minute,
		Tracked: true, Start: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := h.Result()
	// With 6 guaranteed tokens (and up to 2 leftover slots contested):
	// map in ceil(8/6..8) waves (~20s) + reduce 20s. Must be well under the
	// 100s the background tasks occupy slots for.
	if r.Completion > 70*time.Second {
		t.Errorf("SLO job starved: completion = %v", r.Completion)
	}
	if !r.Met {
		t.Error("SLO missed despite guaranteed tokens")
	}
}

func TestEvictionKillsYoungestSpareWork(t *testing.T) {
	// 5-slot machine: the background job (guarantee 1) fills all 5 slots,
	// 4 of them on spare tokens. The arriving SLO job (guarantee 4) must
	// reclaim exactly those 4 spare slots instantly.
	c, _ := New(Config{Machines: 1, SlotsPerMachine: 5, Seed: 1})
	bg := bigJob(t, "bg", 50, 60*time.Second)
	hbg, _ := c.Submit(JobConfig{Profile: bg, Guarantee: 1})
	p := bigJob(t, "slo", 4, 10*time.Second)
	h, _ := c.Submit(JobConfig{Profile: p, Guarantee: 4, Deadline: time.Minute,
		Tracked: true, Start: 30 * time.Second})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := h.Result().Completion; got != 10*time.Second {
		t.Errorf("SLO completion = %v, want 10s (immediate eviction of 4 spare tasks)", got)
	}
	_ = hbg
}

func TestJockeyPolicyMeetsDeadlineOnCluster(t *testing.T) {
	p := fixedJob(t, "controlled")
	pred := model.NewAmdahl(p)
	pol, err := control.NewController(control.Config{
		Predictor:  pred,
		Utility:    utility.Deadline(90 * time.Second),
		Candidates: SLODefaults(8),
		Slack:      1.1,
		Hysteresis: 1.0,
		DeadZone:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(Config{Machines: 4, SlotsPerMachine: 2, Seed: 2})
	var decisions int
	h, err := c.Submit(JobConfig{
		Profile:       p,
		Policy:        pol,
		Deadline:      90 * time.Second,
		ControlPeriod: 10 * time.Second,
		Tracked:       true,
		OnDecision:    func(time.Duration, control.Decision) { decisions++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := h.Result()
	if !r.Met {
		t.Errorf("missed deadline: completion %v", r.Completion)
	}
	if decisions == 0 {
		t.Error("policy never ran")
	}
	if len(r.Trace.Timeline) == 0 {
		t.Error("no allocation timeline recorded")
	}
	if r.AllocTokenSeconds <= 0 {
		t.Error("no allocation accounted")
	}
}

func TestDeadlineChangeTriggersAdaptation(t *testing.T) {
	// A slow 40-task job under Jockey control; halfway through, the
	// deadline is cut, and the allocation must rise.
	job := dag.NewBuilder("dc").Stage("work", 40).MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 30 * time.Second}},
	})
	pred := model.NewAmdahl(p)
	pol, err := control.NewController(control.Config{
		Predictor:  pred,
		Utility:    utility.Deadline(30 * time.Minute),
		Candidates: SLODefaults(6),
		Slack:      1.1,
		Hysteresis: 1.0,
		DeadZone:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(Config{Machines: 10, SlotsPerMachine: 4, Seed: 3})
	// Saturate most capacity with a long background job so the controlled
	// job's pace is governed by its guarantee; 6 tokens of headroom remain
	// for the SLO job, so its candidate grid stops there (admission
	// control's role in the real system).
	bg := bigJob(t, "bg", 5000, time.Minute)
	if _, err := c.Submit(JobConfig{Profile: bg, Guarantee: 34}); err != nil {
		t.Fatal(err)
	}
	type obs struct {
		at time.Duration
		g  int
	}
	var seen []obs
	h, err := c.Submit(JobConfig{
		Profile:       p,
		Policy:        pol,
		Deadline:      30 * time.Minute,
		ControlPeriod: 30 * time.Second,
		Tracked:       true,
		DeadlineChanges: []DeadlineChange{
			{At: 2 * time.Minute, Deadline: 7 * time.Minute},
		},
		OnDecision: func(at time.Duration, d control.Decision) {
			seen = append(seen, obs{at, d.Granted})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := h.Result()
	if r.Deadline != 7*time.Minute {
		t.Errorf("final deadline = %v", r.Deadline)
	}
	if !r.Met {
		t.Errorf("missed tightened deadline: %v", r.Completion)
	}
	var before, after int
	for _, o := range seen {
		if o.at < 2*time.Minute && o.g > before {
			before = o.g
		}
		if o.at >= 2*time.Minute && o.g > after {
			after = o.g
		}
	}
	if after <= before {
		t.Errorf("allocation did not rise after deadline cut: before max %d, after max %d", before, after)
	}
}

func TestMachineFailuresKillTasksAndRecover(t *testing.T) {
	c, _ := New(Config{
		Machines:        5,
		SlotsPerMachine: 2,
		MachineMTBF:     2 * time.Minute, // aggressive: many failures
		MachineRecovery: stats.Point{V: 30 * time.Second},
		Seed:            7,
	})
	p := bigJob(t, "victim", 60, 20*time.Second)
	h, _ := c.Submit(JobConfig{Profile: p, Guarantee: 10, Deadline: time.Hour, Tracked: true})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := h.Result()
	failed := 0
	for _, e := range r.Trace.Events {
		if e.Failed {
			failed++
		}
	}
	if failed == 0 {
		t.Error("expected machine failures to kill some tasks")
	}
	// All 60 tasks must still complete.
	succ := 0
	for _, e := range r.Trace.Events {
		if !e.Failed {
			succ++
		}
	}
	if succ != 60 {
		t.Errorf("successes = %d, want 60", succ)
	}
}

func TestUtilizationTracking(t *testing.T) {
	c, _ := New(Config{Machines: 2, SlotsPerMachine: 2, Seed: 1})
	p := bigJob(t, "u", 16, 10*time.Second)
	c.Submit(JobConfig{Profile: p, Guarantee: 4, Tracked: true})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// 16 tasks x 10s on 4 slots = 40s fully busy.
	if u := c.Utilization(); u < 0.95 {
		t.Errorf("utilization = %v, want ~1.0", u)
	}
	if c.Now() != 40*time.Second {
		t.Errorf("Now = %v, want 40s", c.Now())
	}
}

func TestRunErrorsWhenQueueDrains(t *testing.T) {
	c, _ := New(Config{})
	// Tracked job scheduled but tracked count manipulated via an
	// impossible plan is hard; instead: no jobs but tracked forced by a job
	// that never arrives is impossible through the API. The drained-queue
	// error is still reachable if Run is called after completion with
	// tracked incremented artificially — instead verify normal empty run.
	if err := c.Run(); err != nil {
		t.Errorf("empty cluster Run should be a no-op, got %v", err)
	}
}

func TestMaxSimTimeGuard(t *testing.T) {
	c, _ := New(Config{Machines: 1, SlotsPerMachine: 1, MaxSimTime: time.Minute, Seed: 1})
	p := bigJob(t, "long", 100, 30*time.Second) // needs 50 minutes on 1 slot
	c.Submit(JobConfig{Profile: p, Guarantee: 1, Tracked: true})
	err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "max simulated time") {
		t.Errorf("expected max-sim-time error, got %v", err)
	}
}

func TestFairSharingBetweenEqualJobs(t *testing.T) {
	// Two identical background jobs with equal guarantees on a cluster with
	// exactly enough capacity: both should finish at the same time.
	c, _ := New(Config{Machines: 2, SlotsPerMachine: 4, Seed: 1})
	a, _ := c.Submit(JobConfig{Profile: bigJob(t, "a", 40, 10*time.Second), Guarantee: 4, Tracked: true})
	b, _ := c.Submit(JobConfig{Profile: bigJob(t, "b", 40, 10*time.Second), Guarantee: 4, Tracked: true})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Result(), b.Result()
	if ra.Completion != rb.Completion {
		t.Errorf("equal jobs diverged: %v vs %v", ra.Completion, rb.Completion)
	}
	if ra.Completion != 100*time.Second {
		t.Errorf("completion = %v, want 100s (10 waves of 4)", ra.Completion)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (time.Duration, int) {
		c, _ := New(Config{Machines: 5, SlotsPerMachine: 2,
			MachineMTBF: 5 * time.Minute, Seed: 11})
		bg := bigJob(t, "bg", 100, 30*time.Second)
		c.Submit(JobConfig{Profile: bg, Guarantee: 3})
		job := dag.NewBuilder("fg").
			Stage("m", 30).
			Stage("r", 6).
			Edge("m", "r", dag.AllToAll).
			MustBuild()
		p := profile.MustNew(job, []profile.StageProfile{
			{Exec: stats.LognormalFromMedian(8*time.Second, 25*time.Second),
				Queue: stats.Exponential{MeanValue: time.Second}, FailureProb: 0.05},
			{Exec: stats.LognormalFromMedian(15*time.Second, 40*time.Second)},
		})
		h, _ := c.Submit(JobConfig{Profile: p, Guarantee: 5, Deadline: 10 * time.Minute, Tracked: true})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return h.Result().Completion, len(h.Result().Trace.Events)
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Errorf("replay diverged: %v/%d vs %v/%d", c1, e1, c2, e2)
	}
}

func TestSLODefaults(t *testing.T) {
	g := SLODefaults(3)
	if len(g) != 3 || g[0] != 1 || g[2] != 3 {
		t.Errorf("grid = %v", g)
	}
}

func TestLateSubmitClampsToNow(t *testing.T) {
	c, _ := New(Config{Machines: 2, SlotsPerMachine: 2, Seed: 1})
	p := bigJob(t, "first", 4, 5*time.Second)
	c.Submit(JobConfig{Profile: p, Guarantee: 4, Tracked: true})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// Submitting with a Start in the past must clamp to the current time.
	h, err := c.Submit(JobConfig{Profile: bigJob(t, "late", 2, time.Second),
		Guarantee: 2, Tracked: true, Start: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := h.Result().Start; got != 5*time.Second {
		t.Errorf("late job start = %v, want clamped to 5s", got)
	}
}
