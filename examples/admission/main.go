// Admission: decide which SLO jobs fit before letting them run.
//
// Section 1 of the paper: "Jockey's job model can be used to check whether
// a newly submitted job would 'fit' in the cluster – that is, that all
// previously accepted SLO jobs would still be able to meet their deadlines
// – before permitting it to run."
//
// This example reserves a 60-token budget for SLO work, then offers a
// stream of jobs with deadlines of varying tightness. Each job's Jockey
// model estimates the allocation it needs; the arbiter admits it only if
// that fits in the uncommitted budget. Admitted jobs then run concurrently
// under their own Jockey policies and must all meet their deadlines.
//
// Run with:
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/jockeysim/jockey"
)

type offer struct {
	name     string
	tasks    int
	taskMed  time.Duration
	deadline time.Duration
}

func main() {
	offers := []offer{
		{"hourly-report", 200, 15 * time.Second, 20 * time.Minute},
		{"index-refresh", 400, 20 * time.Second, 30 * time.Minute},
		{"urgent-backfill", 300, 20 * time.Second, 12 * time.Minute}, // tight: needs many tokens
		{"ads-rollup", 150, 10 * time.Second, 25 * time.Minute},
		{"impossible", 100, 30 * time.Second, 20 * time.Second}, // below critical path
	}

	arbiter, err := jockey.NewArbiter(60)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := jockey.NewCluster(jockey.ClusterConfig{
		Machines:        25,
		SlotsPerMachine: 4,
		Seed:            3,
	})
	if err != nil {
		log.Fatal(err)
	}

	type admitted struct {
		name   string
		handle *jockey.JobHandle
	}
	var running []admitted
	for _, o := range offers {
		job := jockey.NewJobBuilder(o.name).
			Stage("map", o.tasks).
			Stage("reduce", o.tasks/10).
			Edge("map", "reduce", jockey.AllToAll).
			MustBuild()
		prof := jockey.MustNewProfile(job, []jockey.StageProfile{
			{Exec: jockey.LognormalFromMedian(o.taskMed, 3*o.taskMed)},
			{Exec: jockey.LognormalFromMedian(2*o.taskMed, 5*o.taskMed)},
		})
		jk, err := jockey.New(prof, jockey.Options{MaxTokens: 60, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		need, ok, err := arbiter.TryAdmit(o.name, jk, o.deadline)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			reason := fmt.Sprintf("needs %d tokens, only %d uncommitted", need, arbiter.Available())
			if need == 0 {
				reason = "deadline below the job's critical path (infeasible at any allocation)"
			}
			fmt.Printf("REJECT %-16s deadline %-8v — %s\n", o.name, o.deadline, reason)
			continue
		}
		fmt.Printf("ADMIT  %-16s deadline %-8v — committed %2d tokens (%d/%d in use)\n",
			o.name, o.deadline, need, arbiter.Committed(), arbiter.Budget())
		pol, err := jk.Policy(o.deadline)
		if err != nil {
			log.Fatal(err)
		}
		h, err := cl.Submit(jockey.JobConfig{
			Profile:  prof,
			Policy:   pol,
			Deadline: o.deadline,
			Tracked:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		running = append(running, admitted{o.name, h})
	}

	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	allMet := true
	for _, a := range running {
		r := a.handle.Result()
		fmt.Printf("%-16s finished in %-9v (%.0f%% of deadline) met=%v\n",
			a.name, r.Completion.Round(time.Second),
			100*float64(r.Completion)/float64(r.Deadline), r.Met)
		if !r.Met {
			allMet = false
		}
		arbiter.Release(a.name)
	}
	if allMet {
		fmt.Println("\nevery admitted job met its SLO; budget fully released:",
			arbiter.Available(), "tokens free")
	}
}
