package progress

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/sim"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
)

func testProfile(t testing.TB) *profile.Profile {
	t.Helper()
	job := dag.NewBuilder("p").
		Stage("map", 10).   // T=100s (10 tasks x 10s), Q=10s
		Stage("reduce", 5). // T=100s (5 x 20s), Q=0
		Edge("map", "reduce", dag.AllToAll).
		MustBuild()
	return profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}, Queue: stats.Point{V: time.Second}},
		{Exec: stats.Point{V: 20 * time.Second}},
	})
}

func TestTotalWorkWithQ(t *testing.T) {
	p := testProfile(t)
	ind := NewTotalWorkWithQ(p)
	if ind.Name() != "totalworkWithQ" {
		t.Errorf("name = %q", ind.Name())
	}
	if got := ind.Progress([]float64{0, 0}); got != 0 {
		t.Errorf("empty progress = %v", got)
	}
	if got := ind.Progress([]float64{1, 1}); got != 1 {
		t.Errorf("full progress = %v", got)
	}
	// Map stage weight = 110s, reduce = 100s, total 210s.
	want := 110.0 / 210.0
	if got := ind.Progress([]float64{1, 0}); math.Abs(got-want) > 1e-12 {
		t.Errorf("map-done progress = %v, want %v", got, want)
	}
}

func TestTotalWorkIgnoresQueue(t *testing.T) {
	p := testProfile(t)
	ind := NewTotalWork(p)
	if got := ind.Progress([]float64{1, 0}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("progress = %v, want 0.5", got)
	}
	if ind.Name() != "totalwork" {
		t.Errorf("name = %q", ind.Name())
	}
}

func TestVertexFrac(t *testing.T) {
	p := testProfile(t)
	ind := NewVertexFrac(p)
	// 10 of 15 vertices.
	if got := ind.Progress([]float64{1, 0}); math.Abs(got-10.0/15.0) > 1e-12 {
		t.Errorf("progress = %v", got)
	}
	if got := ind.Progress([]float64{0.5, 0.2}); math.Abs(got-(5+1)/15.0) > 1e-12 {
		t.Errorf("progress = %v", got)
	}
}

func TestCPIndicator(t *testing.T) {
	p := testProfile(t)
	ind := NewCP(p)
	if ind.Name() != "cp" {
		t.Errorf("name = %q", ind.Name())
	}
	// S_0 = l_map + L_map = 10 + 20 = 30s.
	if got := ind.Progress([]float64{0, 0}); got != 0 {
		t.Errorf("initial = %v", got)
	}
	if got := ind.Progress([]float64{1, 1}); got != 1 {
		t.Errorf("final = %v", got)
	}
	// Map half done: S_t = max(0.5*10+20, 20) = 25 -> p = 1-25/30.
	want := 1 - 25.0/30.0
	if got := ind.Progress([]float64{0.5, 0}); math.Abs(got-want) > 1e-12 {
		t.Errorf("half-map = %v, want %v", got, want)
	}
	// The CP indicator gets "stuck": when only reduce remains and is not
	// started, progress stays at 1-20/30 regardless of map details.
	a := ind.Progress([]float64{1, 0})
	if math.Abs(a-(1-20.0/30.0)) > 1e-12 {
		t.Errorf("map done = %v", a)
	}
}

func TestRemainingCriticalPath(t *testing.T) {
	p := testProfile(t)
	if got := RemainingCriticalPath(p, []float64{0, 0}); got != 30*time.Second {
		t.Errorf("S_0 = %v, want 30s", got)
	}
	if got := RemainingCriticalPath(p, []float64{1, 0.5}); got != 10*time.Second {
		t.Errorf("S_t = %v, want 10s", got)
	}
	if got := RemainingCriticalPath(p, []float64{1, 1}); got != 0 {
		t.Errorf("S_t = %v, want 0", got)
	}
}

func TestMinStage(t *testing.T) {
	spans := []Span{{0, 0.4}, {0.4, 1}}
	ind := NewMinStage(spans)
	if ind.Name() != "minstage" {
		t.Errorf("name = %q", ind.Name())
	}
	if got := ind.Progress([]float64{0, 0}); got != 0 {
		t.Errorf("initial = %v", got)
	}
	// Map half done, reduce untouched: min(0.2, 0.4) = 0.2.
	if got := ind.Progress([]float64{0.5, 0}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("progress = %v", got)
	}
	// Map done, reduce half: min over unfinished = 0.4+0.5*0.6 = 0.7.
	if got := ind.Progress([]float64{1, 0.5}); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("progress = %v", got)
	}
	if got := ind.Progress([]float64{1, 1}); got != 1 {
		t.Errorf("final = %v", got)
	}
	inf := NewMinStageInf(spans)
	if inf.Name() != "minstage-inf" {
		t.Errorf("name = %q", inf.Name())
	}
}

func TestSpansFromTrace(t *testing.T) {
	tr := trace.New("x", 2)
	tr.AddTask(trace.TaskEvent{Stage: 0, Queued: 0, Started: time.Second, Ended: 40 * time.Second})
	tr.AddTask(trace.TaskEvent{Stage: 1, Queued: 40 * time.Second, Started: 50 * time.Second, Ended: 100 * time.Second})
	tr.Completion = 100 * time.Second
	spans := SpansFromTrace(tr, 3)
	if spans[0].Begin != 0 || math.Abs(spans[0].End-0.4) > 1e-12 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if math.Abs(spans[1].Begin-0.4) > 1e-12 || spans[1].End != 1 {
		t.Errorf("span 1 = %+v", spans[1])
	}
	// Missing stage gets the conservative full span.
	if spans[2].Begin != 0 || spans[2].End != 1 {
		t.Errorf("span 2 = %+v", spans[2])
	}
}

func TestAll(t *testing.T) {
	p := testProfile(t)
	run, err := sim.Run(sim.Config{Profile: p, Alloc: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := sim.RunInfinite(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	inds, err := All(p, run, inf)
	if err != nil {
		t.Fatal(err)
	}
	if len(inds) != 6 {
		t.Fatalf("expected 6 indicators, got %d", len(inds))
	}
	names := map[string]bool{}
	for _, ind := range inds {
		names[ind.Name()] = true
	}
	for _, want := range []string{"totalworkWithQ", "totalwork", "vertexfrac", "cp", "minstage", "minstage-inf"} {
		if !names[want] {
			t.Errorf("missing indicator %q", want)
		}
	}
	if _, err := All(p, nil, inf); err == nil {
		t.Error("nil run must fail")
	}
}

// TestIndicatorsMonotoneProperty: all indicators must be monotone
// non-decreasing in every stage fraction, bounded in [0,1], 0-ish at start
// and exactly 1 at completion.
func TestIndicatorsMonotoneProperty(t *testing.T) {
	p := testProfile(t)
	inds := []Indicator{
		NewTotalWorkWithQ(p), NewTotalWork(p), NewVertexFrac(p), NewCP(p),
		NewMinStage([]Span{{0, 0.4}, {0.4, 1}}),
	}
	f := func(a1, a2, b1, b2 float64) bool {
		norm := func(v float64) float64 { return math.Abs(math.Mod(v, 1)) }
		fa := []float64{norm(a1), norm(a2)}
		fb := []float64{math.Min(fa[0]+norm(b1), 1), math.Min(fa[1]+norm(b2), 1)}
		for _, ind := range inds {
			pa, pb := ind.Progress(fa), ind.Progress(fb)
			if pa < 0 || pa > 1 || pb < 0 || pb > 1 {
				return false
			}
			if pb < pa-1e-9 {
				return false
			}
			if ind.Progress([]float64{1, 1}) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDegenerateWeights(t *testing.T) {
	// A job whose profile reports zero work everywhere must still yield a
	// sane indicator (progress 1, not NaN).
	job := dag.NewBuilder("z").Stage("a", 1).MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{{Exec: stats.Point{V: time.Nanosecond}}})
	p.Stages[0].TotalWork = 0
	p.Stages[0].TotalQueue = 0
	ind := NewTotalWorkWithQ(p)
	if got := ind.Progress([]float64{0}); got != 1 {
		t.Errorf("degenerate progress = %v", got)
	}
}
