//go:build invariantdebug

package invariant

// Debug is true in `-tags invariantdebug` builds: expensive invariant
// checks — e.g. the C(p, a) read-only-cells checksum in internal/model —
// run on every access and panic (via Assertf) on violation.
const Debug = true
