package invariant

import "time"

// ChecksumDurations returns an FNV-1a hash of the durations, order
// sensitive. Debug builds use it to detect mutation of slices that are
// shared under a read-only contract: record the checksum when the slice is
// published, re-check it on every access, and Assertf on mismatch. It
// lives here (rather than in stats) because it exists only to back Debug
// assertions.
func ChecksumDurations(ds []time.Duration) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, d := range ds {
		v := uint64(d)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}
