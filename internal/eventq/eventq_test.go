package eventq

import (
	"testing"
	"testing/quick"
	"time"
)

func TestOrdering(t *testing.T) {
	var q Queue[string]
	q.Push(3*time.Second, "c")
	q.Push(time.Second, "a")
	q.Push(2*time.Second, "b")
	var got []string
	for {
		_, v, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order = %v", got)
	}
}

func TestTieBreakFIFO(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(5*time.Second, i)
	}
	for i := 0; i < 100; i++ {
		_, v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("tie-break broken at %d: got %d ok=%v", i, v, ok)
		}
	}
}

func TestEmptyPopPeek(t *testing.T) {
	var q Queue[int]
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty should be !ok")
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty should be !ok")
	}
	if q.Len() != 0 {
		t.Error("Len should be 0")
	}
}

func TestPeek(t *testing.T) {
	var q Queue[int]
	q.Push(9*time.Second, 1)
	q.Push(4*time.Second, 2)
	at, ok := q.Peek()
	if !ok || at != 4*time.Second {
		t.Fatalf("Peek = %v, %v", at, ok)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d", q.Len())
	}
}

func TestPopsAreMonotoneProperty(t *testing.T) {
	f := func(times []int16) bool {
		var q Queue[int]
		for i, ms := range times {
			d := time.Duration(ms)
			if d < 0 {
				d = -d
			}
			q.Push(d*time.Millisecond, i)
		}
		var last time.Duration = -1
		for {
			at, _, ok := q.Pop()
			if !ok {
				break
			}
			if at < last {
				return false
			}
			last = at
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
