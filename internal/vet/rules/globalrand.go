package rules

import (
	"go/ast"
	"go/token"

	"github.com/jockeysim/jockey/internal/vet"
)

var randPkgs = []string{"math/rand", "math/rand/v2"}

// randConstructors build explicitly seeded generators and are the only
// package-level rand functions allowed: everything else consults the
// process-global source, whose stream depends on what every other goroutine
// has consumed — the antithesis of the per-coordinate SplitMix seeding
// discipline (stats.NewRNG / stats.DeriveSeed).
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// GlobalRand bans the global math/rand source repo-wide (tests included —
// a test drawing from the global stream is exactly the flaky determinism
// regression this suite exists to prevent) and bans seeding any generator
// from the wall clock. Randomness must flow through stats.NewRNG with a
// seed derived from coordinates.
var GlobalRand = &vet.Analyzer{
	Name: "globalrand",
	Doc:  "forbid package-level math/rand functions and time-seeded sources; use an explicitly seeded stats.RNG",
	Run:  runGlobalRand,
}

func runGlobalRand(p *vet.Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			for _, rp := range randPkgs {
				name, ok := pkgFuncRef(p, sel, rp)
				if !ok {
					continue
				}
				if !randConstructors[name] {
					p.Reportf(sel.Pos(), "%s.%s uses the process-global random source; derive a seeded generator with stats.NewRNG instead", rp, name)
				}
				return true
			}
			return true
		})
		// Independently, a constructor seeded from the wall clock is as
		// irreproducible as the global source. Nested constructors
		// (rand.New(rand.NewSource(...))) see the same seed expression, so
		// dedupe reports by position.
		reported := map[token.Pos]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			constructor := false
			for _, rp := range randPkgs {
				if name, ok := pkgFuncRef(p, sel, rp); ok && randConstructors[name] {
					constructor = true
				}
			}
			if !constructor {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					argSel, ok := m.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if name, ok := pkgFuncRef(p, argSel, "time"); ok && wallClockFuncs[name] && !reported[argSel.Pos()] {
						reported[argSel.Pos()] = true
						p.Reportf(argSel.Pos(), "random source seeded from time.%s is irreproducible; derive the seed from coordinates (stats.DeriveSeed)", name)
					}
					return true
				})
			}
			return true
		})
	}
	return nil
}
