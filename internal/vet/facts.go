package vet

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a conclusion one analyzer reaches about a package-level object
// (a function, usually) that downstream packages need to see: "calls to this
// function yield a derived seed", "this function feeds its Nth parameter
// into an RNG". Facts mirror the x/tools analysis.Fact shape: a pointer to a
// JSON-serializable struct with a marker method.
//
// Facts cross package boundaries through the vet.cfg protocol: when the go
// command asks jockeyvet to analyze a dependency (VetxOnly), the facts the
// analyzers export are serialized to the unit's VetxOutput file alongside
// the gc export data; units that import the package read them back through
// PackageVetx. Within one driver invocation the same store carries facts
// between the analyzers of a single unit.
type Fact interface{ AFact() }

// A FactStore holds the facts known about objects — both those imported
// from dependency vetx files and those exported by the analyzers running on
// the current package. One store spans all analyzers of one unit.
type FactStore struct {
	facts map[types.Object][]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: map[types.Object][]Fact{}}
}

// Export records fact for obj, replacing any existing fact of the same
// concrete type.
func (s *FactStore) Export(obj types.Object, fact Fact) {
	t := reflect.TypeOf(fact)
	kept := s.facts[obj][:0]
	for _, f := range s.facts[obj] {
		if reflect.TypeOf(f) != t {
			kept = append(kept, f)
		}
	}
	s.facts[obj] = append(kept, fact)
}

// Import copies the stored fact of out's concrete type into out, reporting
// whether one was found.
func (s *FactStore) Import(obj types.Object, out Fact) bool {
	t := reflect.TypeOf(out)
	for _, f := range s.facts[obj] {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(out).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// ExportObjectFact records a fact about obj (a package-level function or a
// method). Analyzers call this through the pass so the driver can serialize
// the facts for downstream units.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.store != nil && obj != nil {
		p.store.Export(obj, fact)
	}
}

// ImportObjectFact copies the fact of out's type previously exported for
// obj — by this unit or, via the vetx side files, by the unit that compiled
// obj's package — into out.
func (p *Pass) ImportObjectFact(obj types.Object, out Fact) bool {
	if p.store == nil || obj == nil {
		return false
	}
	return p.store.Import(obj, out)
}

// wireFact is the serialized form of one (object, fact) pair. Objects are
// addressed by package path plus a stable key ("Func" for package-level
// functions, "Type.Method" for methods), which covers everything the suite
// exports facts about.
type wireFact struct {
	Pkg    string          `json:"pkg"`
	Object string          `json:"object"`
	Type   string          `json:"type"` // "<analyzer>.<FactTypeName>"
	Data   json.RawMessage `json:"data"`
}

type wireFacts struct {
	Version int        `json:"version"`
	Facts   []wireFact `json:"facts"`
}

// factRegistry maps the serialized type tag of each fact declared by the
// analyzers (Analyzer.FactTypes) to its reflect type, so DecodeFacts can
// instantiate the right struct.
func factRegistry(analyzers []*Analyzer) map[string]reflect.Type {
	reg := map[string]reflect.Type{}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			reg[a.Name+"."+reflect.TypeOf(f).Elem().Name()] = reflect.TypeOf(f)
		}
	}
	return reg
}

// factTag returns the registry tag for a concrete fact value under the
// analyzers that declared it, or "" if no analyzer registered its type.
func factTag(analyzers []*Analyzer, f Fact) string {
	name := reflect.TypeOf(f).Elem().Name()
	for _, a := range analyzers {
		for _, ft := range a.FactTypes {
			if reflect.TypeOf(ft) == reflect.TypeOf(f) {
				return a.Name + "." + name
			}
		}
	}
	return ""
}

// objectKey returns the stable serialization key for obj, and whether the
// object is addressable at all (package-level, and exported — unexported
// objects are invisible to other packages, so their facts stay local).
func objectKey(obj types.Object) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "", false
		}
		if !named.Obj().Exported() || !fn.Exported() {
			return "", false
		}
		return named.Obj().Name() + "." + fn.Name(), true
	}
	if fn.Pkg() == nil || fn.Parent() != fn.Pkg().Scope() || !fn.Exported() {
		return "", false
	}
	return fn.Name(), true
}

// lookupObjectKey resolves a serialized object key within pkg.
func lookupObjectKey(pkg *types.Package, key string) types.Object {
	recv, name, isMethod := strings.Cut(key, ".")
	if !isMethod {
		return pkg.Scope().Lookup(key)
	}
	tn, ok := pkg.Scope().Lookup(recv).(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// EncodeFacts serializes every addressable fact in the store — including
// facts imported from upstream vetx files, so one file carries the
// transitive closure and units only ever need their direct dependencies'
// side files. Output is deterministic (sorted) for build-cache stability.
func EncodeFacts(store *FactStore, analyzers []*Analyzer) ([]byte, error) {
	out := wireFacts{Version: 1}
	for obj, facts := range store.facts {
		key, ok := objectKey(obj)
		if !ok || obj.Pkg() == nil {
			continue
		}
		for _, f := range facts {
			tag := factTag(analyzers, f)
			if tag == "" {
				continue
			}
			data, err := json.Marshal(f)
			if err != nil {
				return nil, fmt.Errorf("vet: marshaling fact %s for %s: %w", tag, key, err)
			}
			out.Facts = append(out.Facts, wireFact{
				Pkg:    obj.Pkg().Path(),
				Object: key,
				Type:   tag,
				Data:   data,
			})
		}
	}
	sort.Slice(out.Facts, func(i, j int) bool {
		a, b := out.Facts[i], out.Facts[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	return json.MarshalIndent(out, "", "\t")
}

// DecodeFacts merges the facts serialized in data into the store, resolving
// objects through pkgs (import path -> type-checked package). Facts about
// packages outside the unit's import graph, or of unregistered types, are
// skipped: they cannot influence this unit. Non-JSON data (e.g. a side file
// written by an older jockeyvet) is ignored entirely.
func DecodeFacts(data []byte, analyzers []*Analyzer, pkgs map[string]*types.Package, store *FactStore) error {
	var in wireFacts
	if err := json.Unmarshal(data, &in); err != nil {
		return nil // legacy or foreign side file: no facts to merge
	}
	reg := factRegistry(analyzers)
	for _, wf := range in.Facts {
		pkg := pkgs[wf.Pkg]
		if pkg == nil {
			continue
		}
		obj := lookupObjectKey(pkg, wf.Object)
		if obj == nil {
			continue
		}
		t, ok := reg[wf.Type]
		if !ok {
			continue
		}
		fact := reflect.New(t.Elem()).Interface().(Fact)
		if err := json.Unmarshal(wf.Data, fact); err != nil {
			return fmt.Errorf("vet: unmarshaling fact %s for %s.%s: %w", wf.Type, wf.Pkg, wf.Object, err)
		}
		store.Export(obj, fact)
	}
	return nil
}

// TransitivePackages maps every package reachable from pkg's imports
// (including pkg itself) by import path, for fact decoding.
func TransitivePackages(pkg *types.Package) map[string]*types.Package {
	seen := map[string]*types.Package{}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if p == nil || seen[p.Path()] != nil {
			return
		}
		seen[p.Path()] = p
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	walk(pkg)
	return seen
}
