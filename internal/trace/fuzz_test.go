// Fuzz harness for the trace-ingestion path: JSON from disk is the one
// input the repository accepts from outside its own process (jockey
// -save-trace / -save-profile round-trips), so ReadJSON and the
// profile-extraction built on top of it must tolerate arbitrary bytes.
package trace_test

import (
	"bytes"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/trace"
)

// seedTrace builds a small well-formed trace like the ones sim.Run records.
func seedTrace() *trace.JobTrace {
	tr := trace.New("fuzz-seed", 2)
	tr.AddTask(trace.TaskEvent{Stage: 0, Task: 0, Queued: 0, Dispatched: time.Second,
		Started: 2 * time.Second, Ended: 12 * time.Second})
	tr.AddTask(trace.TaskEvent{Stage: 0, Task: 1, Queued: 0, Dispatched: time.Second,
		Started: 3 * time.Second, Ended: 9 * time.Second, Failed: true})
	tr.AddTask(trace.TaskEvent{Stage: 0, Task: 1, Attempt: 1, Queued: 9 * time.Second,
		Dispatched: 10 * time.Second, Started: 11 * time.Second, Ended: 20 * time.Second})
	tr.AddTask(trace.TaskEvent{Stage: 1, Task: 0, Queued: 20 * time.Second,
		Dispatched: 21 * time.Second, Started: 22 * time.Second, Ended: 50 * time.Second})
	tr.AddAlloc(trace.AllocPoint{T: time.Minute, Raw: 3, Granted: 2, Running: 2, Oracle: 1,
		Progress: 0.4, Predicted: 30 * time.Second})
	tr.Completion = 50 * time.Second
	return tr
}

// FuzzTraceJSON: decoding arbitrary bytes must either fail cleanly or yield
// a trace that the whole downstream pipeline (stage accessors and
// profile.FromTrace) can consume without panicking.
func FuzzTraceJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := seedTrace().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"JobName":"x"}`))
	f.Add([]byte(`{"JobName":"x","NumStages":-3,"Events":[{"Stage":-1,"Task":9}]}`))
	f.Add([]byte(`{"JobName":"x","Events":[{"Stage":0,"Queued":5,"Started":1}]}`))
	f.Add([]byte(`{"JobName":"x","Events":[{"Stage":0,"Dispatched":9,"Started":1}]}`))
	f.Add([]byte(`{"JobName":"x","Completion":-1,"Events":[{"Stage":1000000,"Ended":9007199254740993}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add([]byte("\x00\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tr.JobName == "" {
			t.Fatal("ReadJSON accepted a trace without a job name")
		}
		// Every per-stage accessor must tolerate stage indices that do not
		// appear in the events (and events whose Stage is out of range).
		for s := -1; s <= 2; s++ {
			tr.ExecSamples(s)
			tr.InitSamples(s)
			tr.QueueSamples(s)
			tr.FailureRate(s)
			tr.StageWork(s)
			tr.StageQueue(s)
			tr.LongestTask(s)
		}
		tr.TotalWork()
		// Rebuilding a profile from the decoded trace is the real ingestion
		// target; it must return an error for inconsistent traces, never
		// panic. The plan's stage count intentionally differs from what the
		// trace may claim — FromTrace has to cope with both gaps (stages
		// with no events -> error) and stray out-of-range events.
		job := dag.NewBuilder("fuzz").
			Stage("map", 2).
			Stage("reduce", 1).
			Edge("map", "reduce", dag.AllToAll).
			MustBuild()
		if p, err := profile.FromTrace(job, tr); err == nil {
			// A profile that ingests cleanly must be internally usable.
			p.TotalWork()
			p.CriticalPath()
		}
	})
}
