// Package rules holds the seven jockeyvet analyzers that machine-check the
// repository's determinism and performance contracts (DESIGN.md,
// "Determinism contract"):
//
//	walltime    no wall-clock reads in the deterministic packages
//	globalrand  no global or time-seeded randomness anywhere
//	maporder    no order-dependent effects inside range-over-map loops
//	panicpath   no bare panics outside internal/invariant
//	errctx      errors leaving internal/cluster and internal/control carry
//	            origin context and wrap causes with %w
//	seedflow    every RNG in the deterministic packages is seeded from a
//	            value derived from stats.DeriveSeed (cross-package, via facts)
//	hotalloc    //jockey:hotpath function bodies contain no allocating
//	            constructs
//
// Every rule honors the //jockeyvet:ignore [analyzer] <reason> escape hatch
// (applied by the internal/vet driver, not by the individual analyzers).
package rules

import (
	"strings"

	"github.com/jockeysim/jockey/internal/vet"
)

// ModulePath is this repository's module path; the deterministic-package
// set is keyed on full import paths beneath it so look-alike final segments
// (fixture packages, a future testdata/.../sim) cannot be swept in.
const ModulePath = "github.com/jockeysim/jockey"

// DeterministicPackages names the packages (by full import path) whose
// behavior must be a pure function of their inputs and seeds: the C(p, a)
// model, the cluster replay, and everything they are built from. cmd/ and
// the experiment harness may read the wall clock (progress logs, measured
// speedups); these packages may not.
var DeterministicPackages = map[string]bool{
	ModulePath + "/internal/sim":      true,
	ModulePath + "/internal/cluster":  true,
	ModulePath + "/internal/model":    true,
	ModulePath + "/internal/control":  true,
	ModulePath + "/internal/profile":  true,
	ModulePath + "/internal/stats":    true,
	ModulePath + "/internal/progress": true,
	ModulePath + "/internal/workload": true,
	ModulePath + "/internal/grid":     true,
	ModulePath + "/internal/flight":   true,
	ModulePath + "/internal/fleet":    true,
}

// isDeterministic reports whether the package at path is bound by the
// determinism contract. Test-variant unit paths ("pkg [pkg.test]") are
// reduced to the base package so the gate matches what the base unit sees.
func isDeterministic(path string) bool {
	return DeterministicPackages[basePath(path)]
}

// basePath strips the " [pkg.test]" suffix the go command appends to
// test-variant compilation units.
func basePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// All returns the full suite in rule-table order.
func All() []*vet.Analyzer {
	return []*vet.Analyzer{Walltime, GlobalRand, MapOrder, PanicPath, ErrCtx, SeedFlow, HotAlloc}
}
