package experiments

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/flight"
	"github.com/jockeysim/jockey/internal/grid"
	"github.com/jockeysim/jockey/internal/stats"
)

// RobustnessScenario is one cell of the perturbation grid: a set of faults
// injected into every run of the cell. Drift offsets are relative to the SLO
// job's start; outages and contention windows are on the cluster clock (the
// SLO job arrives at SLOJobStart).
type RobustnessScenario struct {
	Name        string
	Drifts      []cluster.StageDrift
	RackOutages []cluster.RackOutage
	Contention  []cluster.ContentionWindow
}

// DefaultRobustnessScenarios builds the grid used by the robustness
// experiment, scaled to the job's deadline d:
//
//   - calm: no perturbation (the guard must not hurt the common case);
//   - drift-2x: every stage's service times double 15% of the way to the
//     deadline — the canonical stale-model fault (the profile was collected
//     on healthy inputs, the run hits a skewed partition or slow dependency);
//   - rack-outage: a third of the machines vanish for d/3;
//   - contention: the scheduler honors only half the guarantee for the middle
//     half of the run (a tenant surge under token contention, §2.4);
//   - combined: all three at once, milder drift.
func DefaultRobustnessScenarios(deadline time.Duration) []RobustnessScenario {
	d := deadline
	drift := func(factor float64, at time.Duration) []cluster.StageDrift {
		return []cluster.StageDrift{{At: at, Stage: -1, Factor: factor}}
	}
	outage := []cluster.RackOutage{{
		At:           SLOJobStart + d/3,
		FirstMachine: 0,
		Machines:     10,
		Duration:     d / 3,
	}}
	contention := []cluster.ContentionWindow{{
		From: SLOJobStart + d/4,
		To:   SLOJobStart + 3*d/4,
		Frac: 0.5,
	}}
	return []RobustnessScenario{
		{Name: "calm"},
		{Name: "drift-2x", Drifts: drift(2.0, time.Duration(0.15*float64(d)))},
		{Name: "rack-outage", RackOutages: outage},
		{Name: "contention", Contention: contention},
		{Name: "combined",
			Drifts:      drift(1.6, time.Duration(0.4*float64(d))),
			RackOutages: outage,
			Contention:  contention,
		},
	}
}

// robustnessVariant is one policy column of the grid.
type robustnessVariant struct {
	Name    string
	Policy  PolicyKind
	Guarded bool
}

// RobustnessVariants lists the compared policies: Jockey with and without the
// guard-rail layer, plus the paper's Amdahl and max-allocation baselines.
var RobustnessVariants = []robustnessVariant{
	{Name: "jockey-guarded", Policy: PolicyJockey, Guarded: true},
	{Name: "jockey", Policy: PolicyJockey},
	{Name: string(PolicyAmdahl), Policy: PolicyAmdahl},
	{Name: string(PolicyMax), Policy: PolicyMax},
}

// RobustnessRow aggregates one (scenario, policy) cell.
type RobustnessRow struct {
	Scenario  string
	Policy    string
	Runs, Met int
	MeanRel   float64 // mean completion/deadline
	MeanAbove float64 // mean allocation above oracle
	MeanChurn float64 // mean Σ|Δgranted| per run, tokens
	// Guard transition totals across the cell (guarded rows only).
	Reprofiles, Fallbacks, Panics int
	// Counterfactual aggregates (flight level counterfactual only).
	// HindsightMiss counts runs that missed the deadline although some
	// constant allocation met it; MeanTokenRegret is the mean token-seconds
	// spent above the cheapest deadline-meeting constant allocation (met
	// runs); Attributed is the cell's dominant gap mechanism by summed
	// token-seconds ("" when no run had regret).
	HindsightMiss   int
	MeanTokenRegret float64
	Attributed      string
}

// MissRate is the fraction of runs that missed the deadline.
func (r RobustnessRow) MissRate() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.Runs-r.Met) / float64(r.Runs)
}

// RobustnessConfig parameterizes the robustness grid; the zero value gives
// the legacy Robustness(env, "B", 3) behavior with no flight recording.
type RobustnessConfig struct {
	// Job is the Table 2 job (default "B").
	Job string
	// SeedsPerCell is the paired runs per (scenario, policy) cell (default 3).
	SeedsPerCell int
	// Flight selects decision recording for every run of the grid; at
	// LevelCounterfactual each run also gets a hindsight regret report, the
	// rows gain regret columns, and Records carries the per-run files.
	Flight flight.Level
	// FlightTopK and ReplayCandidates tune the recorder (see FlightConfig).
	FlightTopK       int
	ReplayCandidates int
}

// RobustnessRecord is one run's flight record with its grid coordinates.
type RobustnessRecord struct {
	Scenario string
	Policy   string
	Seed     int
	Record   *flight.Record
}

// RobustnessResult is the guard-rail robustness experiment: deadline-miss
// rate and allocation churn across the perturbation grid, plus — when flight
// recording is on — hindsight regret per cell and per-run flight records.
type RobustnessResult struct {
	Job      string
	Deadline time.Duration
	Flight   flight.Level
	Rows     []RobustnessRow
	// Records holds one flight record per run, in grid task order (empty at
	// LevelNone).
	Records []RobustnessRecord
}

// Robustness runs the perturbation grid with flight recording off. Every
// variant in a (scenario, seed) pair sees the identical cluster, background
// load and faults, so the comparison is paired. Input scale is pinned to 1
// so the injected faults are the only source of model staleness.
func Robustness(env *Env, job string, seedsPerCell int) (*RobustnessResult, error) {
	return RobustnessFlight(env, RobustnessConfig{Job: job, SeedsPerCell: seedsPerCell})
}

// RobustnessFlight is Robustness with per-run decision flight recording. At
// LevelCounterfactual the hindsight replays are shared across policy
// variants through a single-flight cache: a replay's outcome depends only on
// (scenario, seed, alloc), not on which policy was recorded, so the paired
// grid costs one replay sweep per (scenario, seed) instead of four.
func RobustnessFlight(env *Env, cfg RobustnessConfig) (*RobustnessResult, error) {
	job := cfg.Job
	if job == "" {
		job = "B"
	}
	seedsPerCell := cfg.SeedsPerCell
	if seedsPerCell <= 0 {
		seedsPerCell = 3
	}
	short, _, err := env.Deadlines(job)
	if err != nil {
		return nil, err
	}
	scenarios := DefaultRobustnessScenarios(short)
	type cell struct {
		out Outcome
		rec *flight.Record
	}
	var replays grid.Cache[flight.ReplayOutcome]
	var tasks []execTask[cell]
	for _, sc := range scenarios {
		for _, v := range RobustnessVariants {
			for s := 0; s < seedsPerCell; s++ {
				sc, v, s := sc, v, s
				tasks = append(tasks, execTask[cell]{
					key: fmt.Sprintf("robust/%s/%s/%d", sc.Name, v.Name, s),
					run: func(x *Exec) (cell, error) {
						r := SLORun{
							Job:         job,
							Deadline:    short,
							Policy:      v.Policy,
							Guarded:     v.Guarded,
							Seed:        stats.DeriveSeed(env.Seed, "robust", job, sc.Name, fmt.Sprint(s)),
							InputScale:  1,
							Drifts:      sc.Drifts,
							RackOutages: sc.RackOutages,
							Contention:  sc.Contention,
						}
						o, rec, err := env.RunFlight(x, r, FlightConfig{
							Level:            cfg.Flight,
							TopK:             cfg.FlightTopK,
							ReplayCandidates: cfg.ReplayCandidates,
							replayKey:        fmt.Sprintf("robust/%s/%d", sc.Name, s),
							replays:          &replays,
						})
						return cell{out: o, rec: rec}, err
					},
				})
			}
		}
	}
	results, err := runGrid(env, tasks)
	if err != nil {
		return nil, err
	}
	out := &RobustnessResult{Job: job, Deadline: short, Flight: cfg.Flight}
	i := 0
	for _, sc := range scenarios {
		for _, v := range RobustnessVariants {
			row := RobustnessRow{Scenario: sc.Name, Policy: v.Name}
			var rels, aboves, churns, tokRegrets []float64
			gaps := newAttributionTally()
			for s := 0; s < seedsPerCell; s++ {
				o := results[i].out
				rec := results[i].rec
				i++
				row.Runs++
				if o.Met {
					row.Met++
				}
				rels = append(rels, o.RelCompletion)
				aboves = append(aboves, o.AboveOracle)
				churns = append(churns, float64(AllocChurn(o.Trace.Timeline)))
				for _, ev := range o.GuardEvents {
					switch ev.Kind {
					case control.GuardEventReprofile:
						row.Reprofiles++
					case control.GuardEventFallback:
						row.Fallbacks++
					case control.GuardEventPanic:
						row.Panics++
					}
				}
				if rec != nil {
					out.Records = append(out.Records, RobustnessRecord{
						Scenario: sc.Name, Policy: v.Name, Seed: s, Record: rec,
					})
					if cf := rec.Counterfactual; cf != nil {
						if cf.DeadlineRegret > 0 {
							row.HindsightMiss++
						}
						tokRegrets = append(tokRegrets, cf.TokenRegret)
						for _, sh := range cf.Attribution {
							gaps.add(sh.Mechanism, sh.GapTokenSeconds)
						}
					}
				}
			}
			row.MeanRel = stats.Mean(rels)
			row.MeanAbove = stats.Mean(aboves)
			row.MeanChurn = stats.Mean(churns)
			if len(tokRegrets) > 0 {
				row.MeanTokenRegret = stats.Mean(tokRegrets)
			}
			row.Attributed = gaps.dominant()
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// attributionTally sums gap token-seconds by mechanism, deterministically:
// insertion order is preserved, so dominant() never ranges over a map.
type attributionTally struct {
	order []string
	sums  map[string]float64
}

func newAttributionTally() *attributionTally {
	return &attributionTally{sums: map[string]float64{}}
}

func (t *attributionTally) add(mech string, tokenSeconds float64) {
	if _, ok := t.sums[mech]; !ok {
		t.order = append(t.order, mech)
	}
	t.sums[mech] += tokenSeconds
}

// dominant returns the mechanism with the largest summed gap (ties: first
// added, i.e. the analyzer's own largest-first order), or "".
func (t *attributionTally) dominant() string {
	best := ""
	for _, m := range t.order {
		if best == "" || t.sums[m] > t.sums[best] {
			best = m
		}
	}
	return best
}

// Render prints the robustness grid. With counterfactual flight recording
// on, three regret columns are appended: hmiss (runs whose deadline miss
// was avoidable in hindsight), tok-regret (mean token-seconds above the
// cheapest deadline-meeting constant allocation) and attributed (the cell's
// dominant gap mechanism). Without it, the output is byte-identical to the
// pre-flight renderer.
func (r *RobustnessResult) Render() string {
	counterfactual := r.Flight == flight.LevelCounterfactual
	headers := []string{"scenario", "policy", "met", "miss", "rel", "above", "churn", "guard"}
	title := fmt.Sprintf("Robustness: guard rails under injected faults (job %s, deadline %v)\n"+
		"(guard column: reprofiles/fallbacks/panics across the cell)", r.Job, r.Deadline)
	if counterfactual {
		headers = append(headers, "hmiss", "tok-regret", "attributed")
		title += "\n(hmiss: avoidable misses; tok-regret: mean token-seconds above the cheapest hindsight-met allocation)"
	}
	var rows [][]string
	for _, row := range r.Rows {
		cells := []string{
			row.Scenario,
			row.Policy,
			fmt.Sprintf("%d/%d", row.Met, row.Runs),
			pct(row.MissRate()),
			fmt.Sprintf("%.2f", row.MeanRel),
			pct(row.MeanAbove),
			fmt.Sprintf("%.0f", row.MeanChurn),
			fmt.Sprintf("%d/%d/%d", row.Reprofiles, row.Fallbacks, row.Panics),
		}
		if counterfactual {
			attributed := row.Attributed
			if attributed == "" {
				attributed = "-"
			}
			cells = append(cells,
				fmt.Sprintf("%d/%d", row.HindsightMiss, row.Runs),
				fmt.Sprintf("%.0f", row.MeanTokenRegret),
				attributed,
			)
		}
		rows = append(rows, cells)
	}
	return renderTable(title, headers, rows)
}
