// Package control implements Jockey's resource-allocation control loop
// (§4.3) and the baseline allocation policies the paper evaluates against
// it.
//
// Every control period the policy observes the job state (elapsed time and
// per-stage completion fractions), asks a latency predictor for the expected
// utility of each candidate allocation, and grants the minimum allocation
// that maximizes utility — moderated by three standard control-theory
// mechanisms: slack (multiplicative padding of latency predictions),
// hysteresis (exponential smoothing of the allocation), and a dead zone
// (treating the deadline as D earlier and refusing to raise the allocation
// unless the job is at least D behind schedule).
package control

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/utility"
)

// Default control parameters (§5.1 of the paper).
const (
	DefaultSlack      = 1.2
	DefaultHysteresis = 0.2
	DefaultDeadZone   = 3 * time.Minute
	DefaultPeriod     = time.Minute
)

// Decision is one output of a policy.
type Decision struct {
	// Raw is the unsmoothed allocation A^r that maximizes expected utility
	// (the blue line in Fig. 6).
	Raw int
	// Granted is the allocation actually requested after hysteresis and
	// dead zone (the black line in Fig. 6).
	Granted int
	// Progress is the indicator value used, in [0, 1] (0 for policies that
	// do not track progress).
	Progress float64
	// Predicted is the policy's worst-case completion-time estimate
	// T_t = elapsed + slack · C(p, granted), or 0 if not applicable.
	Predicted time.Duration
	// Mode names the guard-rail rung that produced the decision ("" for
	// unguarded policies; see Guard).
	Mode string
	// Deviation is the guard's normalized misprediction score at this tick
	// (0 for unguarded policies).
	Deviation float64
}

// Policy decides a job's guaranteed token allocation at each control tick.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the allocation for the current state. It is called
	// once per control period.
	Decide(st model.State) Decision
	// ChangeUtility replaces the utility function mid-run (e.g. when the
	// job's deadline changes, §5.2).
	ChangeUtility(u utility.Fn)
}

// Config parameterizes the Jockey controller.
type Config struct {
	// Predictor supplies remaining-time estimates (the simulator-backed
	// model.CPA for Jockey, model.Amdahl for "Jockey w/o simulator").
	Predictor model.Predictor
	// Utility is the job's utility function.
	Utility utility.Fn
	// Candidates is the ascending set of allocations considered. Required.
	Candidates []int
	// Slack multiplies latency predictions (default 1.2). Set to 1 for
	// "no slack".
	Slack float64
	// Hysteresis is the smoothing factor α in (0, 1]; 1 disables smoothing
	// (default 0.2).
	Hysteresis float64
	// DeadZone is D (default 3 minutes; negative disables, zero means
	// default).
	DeadZone time.Duration
	// PredictQuantile selects the quantile of the remaining-time
	// distribution reported as the worst-case prediction T_t (default 1.0,
	// the maximum observed sample).
	PredictQuantile float64
}

func (c *Config) fill() error {
	if c.Predictor == nil {
		return fmt.Errorf("control: Config.Predictor is required")
	}
	if c.Utility == nil {
		return fmt.Errorf("control: Config.Utility is required")
	}
	if len(c.Candidates) == 0 {
		return fmt.Errorf("control: Config.Candidates is empty")
	}
	prev := 0
	for _, a := range c.Candidates {
		if a <= prev {
			return fmt.Errorf("control: Config.Candidates must be ascending and positive, got %v", c.Candidates)
		}
		prev = a
	}
	if c.Slack == 0 {
		c.Slack = DefaultSlack
	}
	if c.Slack < 1 {
		return fmt.Errorf("control: slack %v < 1", c.Slack)
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.Hysteresis < 0 || c.Hysteresis > 1 {
		return fmt.Errorf("control: hysteresis %v out of (0, 1]", c.Hysteresis)
	}
	if c.DeadZone == 0 {
		c.DeadZone = DefaultDeadZone
	}
	if c.DeadZone < 0 {
		c.DeadZone = 0
	}
	if c.PredictQuantile == 0 {
		c.PredictQuantile = 1.0
	}
	if c.PredictQuantile < 0 || c.PredictQuantile > 1 {
		return fmt.Errorf("control: predict quantile %v out of (0, 1]", c.PredictQuantile)
	}
	return nil
}

// Controller is Jockey's dynamic allocation policy.
type Controller struct {
	cfg      Config
	effU     utility.Fn // utility shifted earlier by the dead zone
	deadline time.Duration

	started  bool
	smoothed float64 // A^s, kept fractional between ticks
	granted  int

	// rec, when non-nil, receives one DecisionRecord per Decide call;
	// cands and recScratch are its reused staging buffers (see record.go).
	rec        Recorder
	cands      []CandidateEval
	recScratch DecisionRecord
}

// NewController builds the Jockey control loop.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg}
	c.setUtility(cfg.Utility)
	return c, nil
}

// Name implements Policy.
func (c *Controller) Name() string {
	if c.cfg.Predictor.Name() == "amdahl" {
		return "jockey-amdahl"
	}
	return "jockey"
}

// ChangeUtility implements Policy, supporting mid-run deadline changes.
func (c *Controller) ChangeUtility(u utility.Fn) { c.setUtility(u) }

func (c *Controller) setUtility(u utility.Fn) {
	c.cfg.Utility = u
	c.effU = u
	if pl, ok := u.(*utility.PiecewiseLinear); ok && c.cfg.DeadZone > 0 {
		c.effU = pl.ShiftEarlier(c.cfg.DeadZone)
	}
	c.deadline = utilityKnee(u)
}

// utilityKnee returns the latest completion time that still achieves the
// curve's maximum utility — the effective deadline.
func utilityKnee(u utility.Fn) time.Duration {
	pl, ok := u.(*utility.PiecewiseLinear)
	if !ok {
		return 0
	}
	pts := pl.Points()
	best := pts[0].U
	for _, p := range pts {
		if p.U > best {
			best = p.U
		}
	}
	knee := pts[0].T
	for _, p := range pts {
		if p.U >= best-1e-12 && p.T > knee {
			knee = p.T
		}
	}
	return knee
}

// rawAllocation returns the minimum candidate allocation maximizing expected
// utility under the dead-zone-shifted curve:
// A^r = argmin_a { a : U_a = max_b U_b }.
//
//jockey:hotpath
func (c *Controller) rawAllocation(st model.State) int {
	if c.rec != nil {
		return c.rawAllocationRecorded(st)
	}
	best := -1
	bestU := 0.0
	for _, a := range c.cfg.Candidates {
		ua := c.cfg.Predictor.ExpectedUtility(st, a, c.cfg.Slack, c.effU)
		if best == -1 || ua > bestU+1e-9 {
			best, bestU = a, ua
		}
	}
	return best
}

// Decide implements Policy.
//
//jockey:hotpath
func (c *Controller) Decide(st model.State) Decision {
	raw := c.rawAllocation(st)
	if !c.started {
		// The first decision jumps straight to the raw allocation — the
		// paper's pessimistic initial over-allocation.
		c.started = true
		c.smoothed = float64(raw)
		c.granted = raw
		return c.emit(st, raw, MechFirstTick)
	}
	target := raw
	mech := MechModel
	if target > c.granted && c.cfg.DeadZone > 0 && c.deadline > 0 {
		// Dead zone: the shifted utility curve already targets deadline−D,
		// so the job is "at least D behind schedule" only when its predicted
		// completion at the current grant misses the original deadline.
		// Within the band (deadline−D, deadline] the raw allocation wants to
		// rise but the controller holds, damping indicator noise.
		predicted := c.predictAt(st, c.granted)
		if predicted <= c.deadline {
			target = c.granted
			mech = MechDeadZone
		}
	}
	// Hysteresis: A^s_t = A^s_{t-1} + α (A^r − A^s_{t-1}).
	c.smoothed += c.cfg.Hysteresis * (float64(target) - c.smoothed)
	g := int(c.smoothed + 0.5)
	lo, hi := c.cfg.Candidates[0], c.cfg.Candidates[len(c.cfg.Candidates)-1]
	if g < lo {
		g = lo
	}
	if g > hi {
		g = hi
	}
	c.granted = g
	if g == raw {
		mech = MechModel
	} else if mech != MechDeadZone {
		mech = MechHysteresis
	}
	return c.emit(st, raw, mech)
}

// SetPredictor swaps the latency predictor mid-run, keeping the smoothing
// and dead-zone state intact so the allocation trajectory stays continuous.
// The guard-rail layer uses it to refresh a stale model or step down the
// fallback chain.
func (c *Controller) SetPredictor(p model.Predictor) { c.cfg.Predictor = p }

// Predictor returns the predictor currently driving decisions.
func (c *Controller) Predictor() model.Predictor { return c.cfg.Predictor }

// Granted returns the allocation currently in force (0 before the first
// decision).
func (c *Controller) Granted() int { return c.granted }

// Deadline returns the effective deadline derived from the utility curve's
// knee (0 if the curve is not piecewise linear).
func (c *Controller) Deadline() time.Duration { return c.deadline }

// Candidates returns the ascending candidate allocation grid.
func (c *Controller) Candidates() []int { return c.cfg.Candidates }

// PredictAt returns the controller's completion-time estimate at the given
// allocation: elapsed + slack · Remaining at the configured quantile.
func (c *Controller) PredictAt(st model.State, a int) time.Duration {
	return c.predictAt(st, a)
}

//jockey:hotpath
func (c *Controller) predictAt(st model.State, a int) time.Duration {
	rem := c.cfg.Predictor.Remaining(st, a, c.cfg.PredictQuantile)
	return st.Elapsed + time.Duration(float64(rem)*c.cfg.Slack)
}

//jockey:hotpath
func (c *Controller) decision(st model.State, raw int) Decision {
	d := Decision{
		Raw:       raw,
		Granted:   c.granted,
		Predicted: c.predictAt(st, c.granted),
	}
	if prog, ok := c.cfg.Predictor.(interface{ Progress(model.State) float64 }); ok {
		d.Progress = prog.Progress(st)
	}
	return d
}
