package utility

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Parse builds a piecewise-linear utility curve from a compact textual
// form, so users can specify utility functions directly (§2.2: "Directly
// specifying a utility function ... alleviates this problem for our
// users").
//
// The format is a comma-separated list of time:utility pairs, where times
// use Go duration syntax and utilities are floats:
//
//	"0:1, 60m:1, 70m:-1, 1060m:-1000"
//
// Two shorthands are accepted:
//
//	"deadline 60m"        – the paper's standard curve for a 60-minute SLO
//	"soft 60m grace 30m"  – a soft deadline decaying to zero over 30 minutes
func Parse(s string) (*PiecewiseLinear, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("utility: empty specification")
	}
	fields := strings.Fields(s)
	switch fields[0] {
	case "deadline":
		if len(fields) != 2 {
			return nil, fmt.Errorf("utility: want %q, got %q", "deadline <duration>", s)
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return nil, fmt.Errorf("utility: bad deadline %q: %v", fields[1], err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("utility: deadline %v must be positive", d)
		}
		return Deadline(d), nil
	case "soft":
		if len(fields) != 4 || fields[2] != "grace" {
			return nil, fmt.Errorf("utility: want %q, got %q", "soft <duration> grace <duration>", s)
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return nil, fmt.Errorf("utility: bad deadline %q: %v", fields[1], err)
		}
		g, err := time.ParseDuration(fields[3])
		if err != nil {
			return nil, fmt.Errorf("utility: bad grace %q: %v", fields[3], err)
		}
		if d <= 0 || g <= 0 {
			return nil, fmt.Errorf("utility: deadline and grace must be positive")
		}
		return SoftDeadline(d, g), nil
	}
	var points []Point
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := strings.LastIndex(part, ":")
		if i < 0 {
			return nil, fmt.Errorf("utility: point %q is not time:value", part)
		}
		t, err := time.ParseDuration(strings.TrimSpace(part[:i]))
		if err != nil {
			// Bare "0" is a convenient spelling for the origin.
			if strings.TrimSpace(part[:i]) == "0" {
				t, err = 0, nil
			} else {
				return nil, fmt.Errorf("utility: bad time in %q: %v", part, err)
			}
		}
		if t < 0 {
			return nil, fmt.Errorf("utility: negative time in %q", part)
		}
		u, err := strconv.ParseFloat(strings.TrimSpace(part[i+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("utility: bad value in %q: %v", part, err)
		}
		// ParseFloat accepts "NaN" and "±Inf"; a curve holding either would
		// poison every expected-utility comparison downstream.
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return nil, fmt.Errorf("utility: non-finite value in %q", part)
		}
		points = append(points, Point{T: t, U: u})
	}
	if len(points) < 2 {
		return nil, fmt.Errorf("utility: need at least two points, got %d", len(points))
	}
	return NewPiecewiseLinear(points)
}
