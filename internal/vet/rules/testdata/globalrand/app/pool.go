// Fixture: worker pools are the tempting place to reach for the global
// source ("each worker just needs a little jitter") — banned like everywhere
// else. Deriving a per-task seed from the task index is the allowed path.
package app

import (
	"math/rand"
	randv2 "math/rand/v2"
	"sync"
	"time"
)

func pool(tasks int) {
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = randv2.Uint64()                                          // want `process-global random source`
			r := rand.New(rand.NewSource(time.Now().UnixNano() + int64(i))) // want `seeded from time.Now`
			_ = r.Float64()
			ok := randv2.New(randv2.NewPCG(uint64(i), 0))
			_ = ok.Float64()
		}(i)
	}
	wg.Wait()
}
