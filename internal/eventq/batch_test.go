package eventq

// PushBatch must be observably indistinguishable from k sequential Pushes:
// entries get consecutive insertion sequences in slice order, so the pop
// sequence is pinned regardless of which regime (heap or calendar) absorbs
// the batch, whether the batch crosses the PolicyAuto promotion threshold,
// and whether the calendar takes the incremental or the bulk-rebuild path.

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
)

// drainBoth pops both queues dry and fails on the first divergence.
func drainBoth(t *testing.T, name string, got, want *Queue[int]) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: Len %d, want %d", name, got.Len(), want.Len())
	}
	for i := 0; ; i++ {
		wa, wv, wok := want.Pop()
		ga, gv, gok := got.Pop()
		if wok != gok {
			t.Fatalf("%s: pop %d ok=%v, want %v", name, i, gok, wok)
		}
		if !wok {
			return
		}
		if ga != wa || gv != wv {
			t.Fatalf("%s: pop %d got (%v, %d), want (%v, %d)", name, i, ga, gv, wa, wv)
		}
	}
}

// TestPushBatchMatchesSequentialPushes drives a batched and an unbatched
// queue through identical randomized workloads (interleaved batches, single
// pushes, and pops) for every policy, at sizes that exercise both regimes
// and the promotion crossing.
func TestPushBatchMatchesSequentialPushes(t *testing.T) {
	for _, tc := range []struct {
		name    string
		pol     Policy
		batches []int // batch sizes pushed in turn
	}{
		{"heap-small", PolicyHeap, []int{1, 7, 63, 2, 300}},
		{"heap-large-heapify", PolicyHeap, []int{2000, 1, 2000}},
		{"calendar-incremental", PolicyCalendar, []int{3, 50, 3, 50}},
		{"calendar-bulk-rebuild", PolicyCalendar, []int{10000, 20000}},
		{"auto-promotion-crossing", PolicyAuto, []int{4000, 200, 4000}},
		{"auto-exact-threshold", PolicyAuto, []int{calendarPromoteLen}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := stats.NewRNG(stats.DeriveSeed(42, "pushbatch-"+tc.name))
			var batched, plain Queue[int]
			batched.SetPolicy(tc.pol)
			plain.SetPolicy(tc.pol)
			v := 0
			for _, k := range tc.batches {
				es := make([]Entry[int], k)
				for i := range es {
					at := time.Duration(rng.Int64N(int64(time.Hour)))
					es[i] = Entry[int]{At: at, V: v}
					v++
				}
				batched.PushBatch(es)
				for _, e := range es {
					plain.Push(e.At, e.V)
				}
				// Interleave: drain a third of the queue, then a few single
				// pushes on both, so batches land on non-empty, partially
				// drained state.
				for i := 0; i < k/3; i++ {
					batched.Pop()
					plain.Pop()
				}
				for i := 0; i < 5; i++ {
					at := time.Duration(rng.Int64N(int64(time.Hour)))
					batched.Push(at, v)
					plain.Push(at, v)
					v++
				}
			}
			drainBoth(t, tc.name, &batched, &plain)
		})
	}
}

// A same-timestamp burst must pop in slice order: the batch assigns
// consecutive sequences, and (at, seq) breaks the tie.
func TestPushBatchSameTimestampBurst(t *testing.T) {
	for _, pol := range []Policy{PolicyHeap, PolicyCalendar} {
		var q Queue[int]
		q.SetPolicy(pol)
		es := make([]Entry[int], 5000)
		for i := range es {
			es[i] = Entry[int]{At: time.Minute, V: i}
		}
		q.PushBatch(es)
		for i := range es {
			_, v, ok := q.Pop()
			if !ok || v != i {
				t.Fatalf("policy %d: pop %d got (%d, %v), want (%d, true)", pol, i, v, ok, i)
			}
		}
	}
}

// An empty batch is a no-op: no sequence is consumed, so a later push ties
// exactly as if the batch never happened.
func TestPushBatchEmpty(t *testing.T) {
	var a, b Queue[int]
	a.PushBatch(nil)
	a.Push(time.Second, 1)
	b.Push(time.Second, 1)
	drainBoth(t, "empty-batch", &a, &b)
}

// Batching must also be regime-independent: the same batched workload run
// under a pinned heap and a pinned calendar pops identically.
func TestPushBatchRegimeIndependent(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(42, "pushbatch-regimes"))
	var heapQ, calQ Queue[int]
	heapQ.SetPolicy(PolicyHeap)
	calQ.SetPolicy(PolicyCalendar)
	v := 0
	for round := 0; round < 40; round++ {
		k := 1 + int(rng.Int64N(700))
		es := make([]Entry[int], k)
		for i := range es {
			es[i] = Entry[int]{At: time.Duration(rng.Int64N(int64(24 * time.Hour))), V: v}
			v++
		}
		heapQ.PushBatch(es)
		calQ.PushBatch(es)
		for i := 0; i < k/2; i++ {
			wa, wv, _ := heapQ.Pop()
			ga, gv, _ := calQ.Pop()
			if ga != wa || gv != wv {
				t.Fatalf("round %d pop %d: calendar (%v, %d), heap (%v, %d)", round, i, ga, gv, wa, wv)
			}
		}
	}
	drainBoth(t, "regimes", &calQ, &heapQ)
}

// TestPushBatchZeroAllocs pins the steady-state claim in PushBatch's doc
// comment: once the queue (heap or calendar) has reached its high-water
// capacity, a batch push + drain cycle allocates nothing — the bulk-rebuild
// path stages through the reused scratch buffer and the heap path appends
// into standing capacity.
func TestPushBatchZeroAllocs(t *testing.T) {
	const k = 3000
	for _, tc := range []struct {
		name string
		pol  Policy
	}{
		{"heap", PolicyHeap},
		{"calendar", PolicyCalendar},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var q Queue[int]
			q.SetPolicy(tc.pol)
			es := make([]Entry[int], k)
			for i := range es {
				es[i] = Entry[int]{At: time.Duration(i%97) * time.Second, V: i}
			}
			cycle := func() {
				q.PushBatch(es)
				for {
					if _, _, ok := q.Pop(); !ok {
						break
					}
				}
			}
			cycle() // reach high-water capacity
			if allocs := testing.AllocsPerRun(10, cycle); allocs != 0 {
				t.Fatalf("%s: batch cycle allocated %.1f times, want 0", tc.name, allocs)
			}
		})
	}
}

// waveEntries builds one 5e5-event arrival wave — the shape a fleet-scale
// replay's first scheduling pass produces when hundreds of thousands of
// runnable tasks start at once.
func waveEntries(n int) []Entry[int] {
	rng := stats.NewRNG(stats.DeriveSeed(17, "arrival-wave"))
	es := make([]Entry[int], n)
	for i := range es {
		es[i] = Entry[int]{At: time.Duration(rng.Int64N(int64(2 * time.Hour))), V: i}
	}
	return es
}

// BenchmarkArrivalWaveSingle is the retired idiom: one Push per task-end
// event. Only the wave absorption is timed; the drain (identical in both
// variants) runs with the clock stopped. Under PolicyAuto the wave crosses the promotion threshold mid-burst,
// so the binary heap absorbs thousands of events only to hand them to the
// calendar.
func BenchmarkArrivalWaveSingle(b *testing.B) {
	es := waveEntries(500_000)
	var q Queue[int]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Reset()
		for _, e := range es {
			q.Push(e.At, e.V)
		}
		b.StopTimer()
		for {
			if _, _, ok := q.Pop(); !ok {
				break
			}
		}
		b.StartTimer()
	}
}

// BenchmarkArrivalWaveBatch is the batched idiom internal/cluster now uses:
// the whole wave lands through one PushBatch, which promotes first and files
// the burst via a single right-sized calendar rebuild.
func BenchmarkArrivalWaveBatch(b *testing.B) {
	es := waveEntries(500_000)
	var q Queue[int]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Reset()
		q.PushBatch(es)
		b.StopTimer()
		for {
			if _, _, ok := q.Pop(); !ok {
				break
			}
		}
		b.StartTimer()
	}
}
