package workload

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
)

// poolProbe runs a small cluster under a background fleet plus one tracked
// probe job and returns the probe's result and the cluster clock — a compact
// fingerprint of the full replay.
func poolProbe(t *testing.T, submit func(*cluster.Cluster, BackgroundConfig) (int, error)) (cluster.Result, time.Duration) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Machines: 6, SlotsPerMachine: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := BackgroundConfig{
		MeanInterarrival: 30 * time.Second,
		Horizon:          20 * time.Minute,
		TasksLo:          10,
		TasksHi:          60,
		Seed:             11,
	}
	if _, err := submit(c, cfg); err != nil {
		t.Fatal(err)
	}
	job := dag.NewBuilder("probe").
		Stage("m", 20).
		Stage("r", 4).
		Edge("m", "r", dag.AllToAll).
		MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.LognormalFromMedian(10*time.Second, 30*time.Second)},
		{Exec: stats.LognormalFromMedian(20*time.Second, 50*time.Second)},
	})
	h, err := c.Submit(cluster.JobConfig{Profile: p, Guarantee: 5,
		Deadline: 15 * time.Minute, Tracked: true, Start: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := h.Result()
	r.Trace = nil // compared via the scalar fields; Engine tests cover traces
	return r, c.Now()
}

// TestBackgroundPoolBitIdentical pins the pool's name-independence claim: a
// fleet submitted through a (reused) pool replays exactly like one built
// from scratch, because per-job cluster randomness derives from submission
// ids, not plan names.
func TestBackgroundPoolBitIdentical(t *testing.T) {
	wantRes, wantNow := poolProbe(t, SubmitBackground)
	pool := NewBackgroundPool()
	for round := 0; round < 2; round++ {
		gotRes, gotNow := poolProbe(t, pool.SubmitBackground)
		if gotRes != wantRes || gotNow != wantNow {
			t.Fatalf("round %d: pooled fleet diverged from fresh:\n got %+v @ %v\nwant %+v @ %v",
				round, gotRes, gotNow, wantRes, wantNow)
		}
	}
}

// TestBackgroundPoolReusesProfiles pins the point of the pool: the same job
// shape yields the same *profile.Profile (and thus the same *dag.Job for
// cluster.Engine's arena keying) across fleets.
func TestBackgroundPoolReusesProfiles(t *testing.T) {
	pool := NewBackgroundPool()
	cfg := BackgroundConfig{}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	a, err := pool.profileFor(&cfg, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.profileFor(&cfg, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same shape built two distinct profiles")
	}
	if a.Job.Name != "bgb-100" {
		t.Errorf("canonical name = %q, want bgb-100", a.Job.Name)
	}
	plain, err := pool.profileFor(&cfg, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if plain == a || plain.Job.Name != "bg-100" {
		t.Errorf("barrier and plain shapes must cache separately, got %q", plain.Job.Name)
	}
	// A different task-duration distribution invalidates the cache.
	cfg2 := cfg
	cfg2.TaskDuration = stats.Point{V: 5 * time.Second}
	c, err := pool.profileFor(&cfg2, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("cache survived a TaskDuration change")
	}
}
