// Package model provides Jockey's latency predictors: the C(p, a) table of
// remaining-completion-time distributions precomputed with the offline job
// simulator (§4.1), and the modified Amdahl's-Law analytic model used by the
// "Jockey w/o simulator" baseline. It also implements the oracle allocation
// O(T, d) = ⌈T/d⌉ used as the evaluation baseline for cluster impact (§5.1).
package model

import (
	"math"
	"time"

	"github.com/jockeysim/jockey/internal/utility"
)

// State is the observable state of a running job at control time.
type State struct {
	// Elapsed is t_r, the time the job has spent running.
	Elapsed time.Duration
	// FracDone is f_s per stage: the fraction of tasks completed.
	FracDone []float64
}

// Predictor estimates the remaining completion time of a job and the
// expected utility of finishing under a candidate token allocation.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// Remaining returns the q-quantile of the predicted remaining time at
	// the given state under allocation a (q=1 is the worst case observed).
	Remaining(st State, a int, q float64) time.Duration
	// ExpectedUtility returns E[U(Elapsed + slack · C)] over the predicted
	// remaining-time distribution C at allocation a.
	ExpectedUtility(st State, a int, slack float64, u utility.Fn) float64
}

// Oracle returns the oracle allocation O(T, d) = ⌈T/d⌉: the minimum token
// count that could theoretically finish total work T within deadline d,
// ignoring job structure. It is the baseline against which a policy's
// cluster impact is measured.
func Oracle(totalWork, deadline time.Duration) int {
	if deadline <= 0 {
		return 0
	}
	if totalWork <= 0 {
		return 0
	}
	return int(math.Ceil(float64(totalWork) / float64(deadline)))
}

// ImpactAboveOracle returns the fraction of the requested allocation that
// exceeded the oracle allocation: (Σ granted − Σ oracle)/Σ granted, clamped
// at 0. alloHours and oracleHours are allocation integrals (token-hours).
func ImpactAboveOracle(allocHours, oracleHours float64) float64 {
	if allocHours <= 0 {
		return 0
	}
	v := (allocHours - oracleHours) / allocHours
	if v < 0 {
		return 0
	}
	return v
}
