// Package sim implements Jockey's offline job simulator (§4.1 of the
// paper): an event-based simulation of one job executing at a fixed token
// allocation, parameterized by a job profile (per-stage task runtime and
// initialization-latency distributions and failure probabilities).
//
// The simulator captures the features the paper calls out as important —
// outliers (heavy-tailed task runtimes), barriers (all-to-all edges), task
// failures and re-execution, and limited parallelism — while ignoring
// aspects the paper's simulator also ignores (input-size variation,
// duplicate-task scheduling).
//
// Repeatedly running the simulator across an allocation grid yields the
// samples from which the C(p, a) remaining-time distributions are built
// (package model).
package sim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/eventq"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
)

// DefaultMaxAttempts bounds re-execution of a repeatedly failing task so a
// pathological failure probability cannot hang the simulation.
const DefaultMaxAttempts = 20

// Snapshot is the observable job state handed to sampling callbacks.
type Snapshot struct {
	Time     time.Duration
	FracDone []float64 // per stage, fraction of tasks complete (f_s)
	Running  int       // tasks currently executing
	Ready    int       // tasks ready but waiting for a token
}

// Config parameterizes one simulated execution.
type Config struct {
	Profile *profile.Profile
	// Alloc is the fixed token allocation (maximum concurrently running
	// tasks). Must be >= 1.
	Alloc int
	// Seed drives all randomness of this run.
	Seed uint64
	// DisableFailures turns off failure injection (used for the
	// infinite-resource critical-path runs behind the minstage-inf
	// indicator).
	DisableFailures bool
	// MaxAttempts bounds per-task attempts; 0 means DefaultMaxAttempts.
	MaxAttempts int
	// SampleEvery, if positive, invokes OnSample at this period during the
	// run (the paper samples per minute).
	SampleEvery time.Duration
	// OnSample receives periodic snapshots. Ignored if SampleEvery <= 0.
	OnSample func(Snapshot)
	// InitialFracDone, if non-nil, starts the simulation from a partially
	// completed job: per stage, the given fraction of tasks (rounded down)
	// begins as already finished. This supports online re-simulation from a
	// running job's state (§4.4's proposed enhancement). Must be parallel
	// to the plan's stages.
	InitialFracDone []float64
}

type taskRef struct {
	stage, task int
}

type event struct {
	kind   eventKind
	stage  int
	task   int
	failed bool
}

type eventKind int

const (
	evTaskEnd eventKind = iota
	evSample
)

type engine struct {
	cfg  Config
	p    *profile.Profile
	job  *dag.Job
	rng  *rand.Rand
	q    eventq.Queue[event]
	tr   *trace.JobTrace
	now  time.Duration
	maxA int

	ready     []taskRef // FIFO queue of schedulable tasks
	readyHead int
	running   int
	tasksLeft int

	done         [][]bool
	doneCount    []int
	remDeps      [][]int
	queuedAt     [][]time.Duration
	dispatchedAt [][]time.Duration // token-grant time of the in-flight attempt
	startedAt    [][]time.Duration // exec-start time of the in-flight attempt
	attempts     [][]int

	// consumers[s][i] lists, for each one-to-one out-edge of stage s, the
	// consumer tasks that depend on producer task i.
	consumers [][][]taskRef
}

// Run simulates one execution of the profiled job and returns its trace.
func Run(cfg Config) (*trace.JobTrace, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("sim: nil profile")
	}
	if cfg.Alloc < 1 {
		return nil, fmt.Errorf("sim: allocation %d; need at least 1 token", cfg.Alloc)
	}
	if cfg.InitialFracDone != nil && len(cfg.InitialFracDone) != cfg.Profile.Job.NumStages() {
		return nil, fmt.Errorf("sim: InitialFracDone has %d entries; plan %q has %d stages",
			len(cfg.InitialFracDone), cfg.Profile.Job.Name, cfg.Profile.Job.NumStages())
	}
	e := &engine{
		cfg:  cfg,
		p:    cfg.Profile,
		job:  cfg.Profile.Job,
		rng:  stats.NewRNG(cfg.Seed),
		tr:   trace.New(cfg.Profile.Job.Name, cfg.Profile.Job.NumStages()),
		maxA: cfg.MaxAttempts,
	}
	if e.maxA <= 0 {
		e.maxA = DefaultMaxAttempts
	}
	e.init()
	if err := e.run(); err != nil {
		return nil, err
	}
	return e.tr, nil
}

func (e *engine) init() {
	job := e.job
	n := job.NumStages()
	e.done = make([][]bool, n)
	e.doneCount = make([]int, n)
	e.remDeps = make([][]int, n)
	e.queuedAt = make([][]time.Duration, n)
	e.dispatchedAt = make([][]time.Duration, n)
	e.startedAt = make([][]time.Duration, n)
	e.attempts = make([][]int, n)
	e.consumers = make([][][]taskRef, n)
	for s := 0; s < n; s++ {
		tasks := job.Stages[s].Tasks
		e.done[s] = make([]bool, tasks)
		e.remDeps[s] = make([]int, tasks)
		e.queuedAt[s] = make([]time.Duration, tasks)
		e.dispatchedAt[s] = make([]time.Duration, tasks)
		e.startedAt[s] = make([]time.Duration, tasks)
		e.attempts[s] = make([]int, tasks)
		e.consumers[s] = make([][]taskRef, tasks)
		e.tasksLeft += tasks
	}
	// Dependency counts: one unit per one-to-one producer task in range,
	// plus one unit per all-to-all input edge (satisfied when the producer
	// stage completes).
	for s := 0; s < n; s++ {
		for _, edge := range job.Inputs(s) {
			for task := 0; task < job.Stages[s].Tasks; task++ {
				if edge.Kind == dag.AllToAll {
					e.remDeps[s][task]++
					continue
				}
				lo, hi := job.DepRange(edge, task)
				e.remDeps[s][task] += hi - lo
				for i := lo; i < hi; i++ {
					e.consumers[edge.From][i] = append(e.consumers[edge.From][i], taskRef{s, task})
				}
			}
		}
	}
	e.applyInitialState()
	for s := 0; s < n; s++ {
		for task := 0; task < job.Stages[s].Tasks; task++ {
			if e.remDeps[s][task] == 0 && !e.done[s][task] {
				e.markReady(s, task)
			}
		}
	}
	if e.cfg.SampleEvery > 0 && e.cfg.OnSample != nil {
		e.q.Push(e.cfg.SampleEvery, event{kind: evSample})
	}
}

// applyInitialState pre-completes tasks according to InitialFracDone,
// propagating dependency satisfaction exactly as live completions would.
func (e *engine) applyInitialState() {
	fracs := e.cfg.InitialFracDone
	if fracs == nil {
		return
	}
	job := e.job
	// First mark per-task completions and satisfy one-to-one consumers.
	// Run validated len(fracs) == NumStages before the engine was built.
	for s := 0; s < job.NumStages(); s++ {
		k := int(fracs[s] * float64(job.Stages[s].Tasks))
		if k > job.Stages[s].Tasks {
			k = job.Stages[s].Tasks
		}
		for task := 0; task < k; task++ {
			e.done[s][task] = true
			e.doneCount[s]++
			e.tasksLeft--
			for _, c := range e.consumers[s][task] {
				e.remDeps[c.stage][c.task]--
			}
		}
	}
	// Then satisfy all-to-all consumers of fully completed stages.
	for s := 0; s < job.NumStages(); s++ {
		if e.doneCount[s] != job.Stages[s].Tasks {
			continue
		}
		for _, edge := range job.Outputs(s) {
			if edge.Kind != dag.AllToAll {
				continue
			}
			for t := 0; t < job.Stages[edge.To].Tasks; t++ {
				e.remDeps[edge.To][t]--
			}
		}
	}
}

func (e *engine) markReady(stage, task int) {
	e.queuedAt[stage][task] = e.now
	e.ready = append(e.ready, taskRef{stage, task})
}

func (e *engine) popReady() (taskRef, bool) {
	if e.readyHead >= len(e.ready) {
		return taskRef{}, false
	}
	r := e.ready[e.readyHead]
	e.readyHead++
	// Compact occasionally so the queue does not grow without bound.
	if e.readyHead > 1024 && e.readyHead*2 > len(e.ready) {
		e.ready = append(e.ready[:0], e.ready[e.readyHead:]...)
		e.readyHead = 0
	}
	return r, true
}

func (e *engine) readyLen() int { return len(e.ready) - e.readyHead }

// dispatch starts ready tasks while tokens are available.
func (e *engine) dispatch() {
	for e.running < e.cfg.Alloc {
		r, ok := e.popReady()
		if !ok {
			return
		}
		e.startTask(r.stage, r.task)
	}
}

func (e *engine) startTask(stage, task int) {
	sp := &e.p.Stages[stage]
	initDelay := sp.Queue.Sample(e.rng)
	exec := sp.Exec.Sample(e.rng)
	if exec <= 0 {
		exec = time.Millisecond
	}
	fails := false
	if !e.cfg.DisableFailures && e.attempts[stage][task] < e.maxA-1 && sp.FailureProb > 0 {
		fails = e.rng.Float64() < sp.FailureProb
	}
	if fails {
		// A failing attempt dies partway through its service time.
		exec = time.Duration(float64(exec) * e.rng.Float64())
		if exec <= 0 {
			exec = time.Millisecond
		}
	}
	e.dispatchedAt[stage][task] = e.now
	e.startedAt[stage][task] = e.now + initDelay
	e.running++
	e.q.Push(e.now+initDelay+exec, event{kind: evTaskEnd, stage: stage, task: task, failed: fails})
}

func (e *engine) run() error {
	e.dispatch()
	for e.tasksLeft > 0 {
		at, ev, ok := e.q.Pop()
		if !ok {
			return fmt.Errorf("sim: job %q stalled at %v with %d tasks left (plan bug?)",
				e.job.Name, e.now, e.tasksLeft)
		}
		e.now = at
		switch ev.kind {
		case evSample:
			e.emitSample()
			if e.tasksLeft > 0 {
				e.q.Push(e.now+e.cfg.SampleEvery, event{kind: evSample})
			}
		case evTaskEnd:
			e.finishTask(ev)
		}
	}
	e.tr.Completion = e.now
	return nil
}

func (e *engine) emitSample() {
	frac := make([]float64, e.job.NumStages())
	for s := range frac {
		frac[s] = float64(e.doneCount[s]) / float64(e.job.Stages[s].Tasks)
	}
	e.cfg.OnSample(Snapshot{
		Time:     e.now,
		FracDone: frac,
		Running:  e.running,
		Ready:    e.readyLen(),
	})
}

func (e *engine) finishTask(ev event) {
	stage, task := ev.stage, ev.task
	e.running--
	e.tr.AddTask(trace.TaskEvent{
		Stage:      stage,
		Task:       task,
		Attempt:    e.attempts[stage][task],
		Queued:     e.queuedAt[stage][task],
		Dispatched: e.dispatchedAt[stage][task],
		Started:    e.startedAt[stage][task],
		Ended:      e.now,
		Failed:     ev.failed,
	})
	if ev.failed {
		e.attempts[stage][task]++
		e.markReady(stage, task)
		e.dispatch()
		return
	}
	e.done[stage][task] = true
	e.doneCount[stage]++
	e.tasksLeft--
	// Satisfy one-to-one consumers of this task.
	for _, c := range e.consumers[stage][task] {
		e.remDeps[c.stage][c.task]--
		if e.remDeps[c.stage][c.task] == 0 {
			e.markReady(c.stage, c.task)
		}
	}
	// Satisfy all-to-all consumers if the stage just completed.
	if e.doneCount[stage] == e.job.Stages[stage].Tasks {
		for _, edge := range e.job.Outputs(stage) {
			if edge.Kind != dag.AllToAll {
				continue
			}
			for t := 0; t < e.job.Stages[edge.To].Tasks; t++ {
				e.remDeps[edge.To][t]--
				if e.remDeps[edge.To][t] == 0 {
					e.markReady(edge.To, t)
				}
			}
		}
	}
	e.dispatch()
}
