package utility

import (
	"math"
	"strings"
	"testing"
	"time"
)

// FuzzUtilityParse checks that arbitrary specifications never panic the
// parser and that every accepted curve is well formed: strictly increasing
// vertex times and finite utility everywhere (ParseFloat would happily
// admit NaN/Inf, which would poison expected-utility comparisons).
func FuzzUtilityParse(f *testing.F) {
	f.Add("deadline 60m")
	f.Add("soft 60m grace 30m")
	f.Add("0:1, 60m:1, 70m:-1, 1060m:-1000")
	f.Add("0:1,1s:0.5")
	f.Add("deadline -5m")
	f.Add("soft 1h grace")
	f.Add("0:NaN, 1m:1")
	f.Add("0:+Inf, 1m:1")
	f.Add("1m:1e308, 2m:-1e308")
	f.Add(" 10:20 ")
	f.Add("::::")
	f.Add("9999999999999h:1, 0:0")
	f.Fuzz(func(t *testing.T, s string) {
		pl, err := Parse(s)
		if err != nil {
			if !strings.Contains(err.Error(), "utility:") {
				t.Errorf("error missing package prefix: %v", err)
			}
			return
		}
		ps := pl.Points()
		if len(ps) < 2 {
			t.Fatalf("accepted curve has %d points: %q", len(ps), s)
		}
		for i, p := range ps {
			if i > 0 && ps[i-1].T >= p.T {
				t.Errorf("points not strictly increasing at %d: %v", i, ps)
			}
			if math.IsNaN(p.U) || math.IsInf(p.U, 0) {
				t.Errorf("accepted curve has non-finite vertex %v from %q", p, s)
			}
		}
		for _, probe := range []time.Duration{
			0, ps[0].T, ps[len(ps)-1].T, ps[len(ps)-1].T + time.Hour,
			(ps[0].T + ps[len(ps)-1].T) / 2,
		} {
			if u := pl.Utility(probe); math.IsNaN(u) || math.IsInf(u, 0) {
				t.Errorf("Utility(%v) = %v (non-finite) for %q", probe, u, s)
			}
		}
		if pl.String() == "" {
			t.Errorf("accepted curve renders empty for %q", s)
		}
	})
}
