package experiments

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/workload"
)

// Table2Row compares one job's published statistics with the measured
// statistics of our synthesized equivalent (from its training run).
type Table2Row struct {
	Job string

	PaperMedian, MeasuredMedian         time.Duration
	PaperP90, MeasuredP90               time.Duration
	PaperP90Fastest, MeasuredP90Fastest time.Duration
	PaperP90Slowest, MeasuredP90Slowest time.Duration
	PaperDataGB, MeasuredDataGB         float64
	PaperStages, MeasuredStages         int
	PaperBarriers, MeasuredBarriers     int
	PaperVertices, MeasuredVertices     int
}

// Table2 holds all seven rows.
type Table2 struct {
	Rows []Table2Row
}

// JobStatistics measures each synthesized job A–G on its training run and
// lines the numbers up against Table 2 of the paper.
func JobStatistics(env *Env) (*Table2, error) {
	t2 := &Table2{}
	for _, spec := range workload.TableTwo {
		res, err := env.TrainingResult(spec.Name)
		if err != nil {
			return nil, err
		}
		ground, err := env.Ground(spec.Name)
		if err != nil {
			return nil, err
		}
		tr := res.Trace
		all := tr.AllExecSamples()
		row := Table2Row{
			Job:             spec.Name,
			PaperMedian:     spec.MedianRuntime,
			PaperP90:        spec.P90Runtime,
			PaperP90Fastest: spec.P90Fastest,
			PaperP90Slowest: spec.P90Slowest,
			PaperDataGB:     spec.DataGB,
			PaperStages:     spec.Stages,
			PaperBarriers:   spec.Barriers,
			PaperVertices:   spec.Vertices,

			MeasuredMedian:   stats.QuantileDurations(all, 0.5),
			MeasuredP90:      stats.QuantileDurations(all, 0.9),
			MeasuredDataGB:   ground.Job.TotalInputGB(),
			MeasuredStages:   ground.Job.NumStages(),
			MeasuredBarriers: ground.Job.NumBarrierStages(),
			MeasuredVertices: ground.Job.TotalTasks(),
		}
		fastest := time.Duration(1<<62 - 1)
		var slowest time.Duration
		for s := 0; s < ground.Job.NumStages(); s++ {
			ex := tr.ExecSamples(s)
			if len(ex) == 0 {
				continue
			}
			p90 := stats.QuantileDurations(ex, 0.9)
			if p90 < fastest {
				fastest = p90
			}
			if p90 > slowest {
				slowest = p90
			}
		}
		row.MeasuredP90Fastest = fastest
		row.MeasuredP90Slowest = slowest
		t2.Rows = append(t2.Rows, row)
	}
	return t2, nil
}

// Render prints the paper-vs-measured comparison.
func (t *Table2) Render() string {
	var rows [][]string
	add := func(stat string, f func(r Table2Row) (string, string)) {
		paperRow := []string{stat + " (paper)"}
		measRow := []string{stat + " (ours)"}
		for _, r := range t.Rows {
			p, m := f(r)
			paperRow = append(paperRow, p)
			measRow = append(measRow, m)
		}
		rows = append(rows, paperRow, measRow)
	}
	add("vertex runtime median [s]", func(r Table2Row) (string, string) {
		return secs(r.PaperMedian), secs(r.MeasuredMedian)
	})
	add("vertex runtime p90 [s]", func(r Table2Row) (string, string) {
		return secs(r.PaperP90), secs(r.MeasuredP90)
	})
	add("p90, fastest stage [s]", func(r Table2Row) (string, string) {
		return secs(r.PaperP90Fastest), secs(r.MeasuredP90Fastest)
	})
	add("p90, slowest stage [s]", func(r Table2Row) (string, string) {
		return secs(r.PaperP90Slowest), secs(r.MeasuredP90Slowest)
	})
	add("total data read [GB]", func(r Table2Row) (string, string) {
		return fmt.Sprintf("%.1f", r.PaperDataGB), fmt.Sprintf("%.1f", r.MeasuredDataGB)
	})
	add("number of stages", func(r Table2Row) (string, string) {
		return fmt.Sprint(r.PaperStages), fmt.Sprint(r.MeasuredStages)
	})
	add("number of barrier stages", func(r Table2Row) (string, string) {
		return fmt.Sprint(r.PaperBarriers), fmt.Sprint(r.MeasuredBarriers)
	})
	add("number of vertices", func(r Table2Row) (string, string) {
		return fmt.Sprint(r.PaperVertices), fmt.Sprint(r.MeasuredVertices)
	})
	headers := []string{"stat"}
	for _, r := range t.Rows {
		headers = append(headers, r.Job)
	}
	return renderTable("Table 2: statistics of the seven evaluation jobs, paper vs synthesized",
		headers, rows)
}
