package stats

import (
	"fmt"
	"testing"
)

// TestDeriveSeedIntMatchesDeriveSeed pins the bit-identity contract between
// the allocation-free integer derivation and the general string form: task
// placements hashed with DeriveSeedInt must never shift from runs that used
// DeriveSeed(master, fmt.Sprint(n)).
func TestDeriveSeedIntMatchesDeriveSeed(t *testing.T) {
	masters := []uint64{0, 1, 42, 1<<32 | 7, ^uint64(0)}
	ns := []int{0, 1, 9, 10, 99, 12345, 1 << 20, 1<<31 - 1}
	for _, m := range masters {
		for _, n := range ns {
			got := DeriveSeedInt(m, n)
			want := DeriveSeed(m, fmt.Sprint(n))
			if got != want {
				t.Errorf("DeriveSeedInt(%d, %d) = %d, want DeriveSeed = %d", m, n, got, want)
			}
		}
	}
}

func TestDeriveSeedIntAllocates(t *testing.T) {
	if avg := testing.AllocsPerRun(100, func() {
		_ = DeriveSeedInt(12345, 678)
	}); avg != 0 {
		t.Errorf("DeriveSeedInt allocates %v per call, want 0", avg)
	}
}

// TestReseedSourceMatchesFresh pins the reuse primitive: a reseeded source
// must continue with the exact stream a fresh one would produce.
func TestReseedSourceMatchesFresh(t *testing.T) {
	reused := NewSource(1)
	for i := 0; i < 10; i++ {
		_ = reused.Uint64() // move off the initial state
	}
	ReseedSource(reused, 77)
	fresh := NewSource(77)
	for i := 0; i < 100; i++ {
		if a, b := reused.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("draw %d: reseeded %d != fresh %d", i, a, b)
		}
	}
}
