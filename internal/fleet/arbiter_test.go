package fleet

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
)

// The heap water-fill must grant exactly what the retired greedy scan
// granted. Full replays pin it epoch by epoch through Config.selfCheck
// (checkAgainstRef re-runs fillRef on every epoch's bidder snapshot);
// hand-built bidder sets pin the edge geometry the replays may not hit.

// TestWaterFillMatchesReferenceOnReplays runs the stress replay — drift,
// rack outage, deferred admissions, guard panics — and a broader thousand-
// job-scale arrival stream with the differential check armed on every
// epoch. Any grant divergence between fill and fillRef fails the test.
func TestWaterFillMatchesReferenceOnReplays(t *testing.T) {
	for _, guarded := range []bool{false, true} {
		cfg := stressConfig(7, UtilityGreedy, guarded)
		cfg.selfCheck = t.Errorf
		mustRun(t, cfg)
	}
	cfg := Config{
		Seed:             11,
		Machines:         200,
		SlotsPerMachine:  5,
		Budget:           1000,
		Arrivals:         400,
		MeanInterarrival: 30 * time.Second,
		selfCheck:        t.Errorf,
	}
	res := mustRun(t, cfg)
	if res.Admitted < 100 {
		t.Fatalf("differential replay admitted only %d jobs; too small to exercise the heap", res.Admitted)
	}
}

// mkBidder builds one synthetic bidder the way waterFill's preamble does:
// seated below the floor, curves supplied directly.
func mkBidder(cands []int, util []float64) bidder {
	return bidder{fj: &fleetJob{}, cands: cands, util: util, idx: -1}
}

// runBoth drives the production fill and the reference fillRef from the
// same starting state and requires identical rungs and leftover budget.
func runBoth(t *testing.T, name string, bs []bidder, budget int) *replay {
	t.Helper()
	r := &replay{bidders: bs}
	ref := snapshotBidders(r.bidders)
	left := r.fill(budget)
	refLeft := fillRef(ref, budget)
	if left != refLeft {
		t.Errorf("%s: leftover %d, reference %d", name, left, refLeft)
	}
	for i := range ref {
		if int(r.bidders[i].idx) != ref[i].idx {
			t.Errorf("%s: bidder %d at rung %d, reference %d", name, i, r.bidders[i].idx, ref[i].idx)
		}
	}
	return r
}

func TestWaterFillEdgeCases(t *testing.T) {
	t.Run("all-flat-curves", func(t *testing.T) {
		// Every curve is flat: nobody clears flatEps, everyone holds the
		// floor and the rest of the budget is left over.
		bs := []bidder{
			mkBidder([]int{2, 4, 8}, []float64{1, 1, 1}),
			mkBidder([]int{3, 6, 12}, []float64{0.5, 0.5, 0.5}),
		}
		r := runBoth(t, "all-flat", bs, 100)
		if g0, g1 := r.bidders[0].fj.grant, r.bidders[1].fj.grant; g0 != 2 || g1 != 3 {
			t.Errorf("flat curves granted (%d, %d), want floors (2, 3)", g0, g1)
		}
	})
	t.Run("budget-below-every-floor", func(t *testing.T) {
		bs := []bidder{
			mkBidder([]int{5, 10}, []float64{0, 1}),
			mkBidder([]int{4, 8}, []float64{0, 1}),
		}
		r := runBoth(t, "below-floor", bs, 3)
		for i := range r.bidders {
			if r.bidders[i].fj.grant != 0 {
				t.Errorf("bidder %d granted %d on a budget below every floor", i, r.bidders[i].fj.grant)
			}
		}
	})
	t.Run("single-job-whole-budget", func(t *testing.T) {
		bs := []bidder{mkBidder([]int{1, 2, 4, 8, 16}, []float64{0, 0.3, 0.6, 0.9, 1.0})}
		r := runBoth(t, "single-job", bs, 16)
		if g := r.bidders[0].fj.grant; g != 16 {
			t.Errorf("single job granted %d of a 16-token budget, want 16", g)
		}
	})
	t.Run("budget-runs-out-mid-floor", func(t *testing.T) {
		// The floor pass stops at the first unaffordable floor; later
		// bidders stay unseated even if their floors are smaller.
		bs := []bidder{
			mkBidder([]int{2, 4}, []float64{0, 1}),
			mkBidder([]int{5, 10}, []float64{0, 1}),
			mkBidder([]int{1, 2}, []float64{0, 1}),
		}
		runBoth(t, "mid-floor", bs, 6)
	})
	t.Run("non-concave-curve", func(t *testing.T) {
		// The gain sits past a flat stretch: the best jump skips rungs.
		bs := []bidder{
			mkBidder([]int{1, 2, 3, 10}, []float64{0, 0, 0, 5}),
			mkBidder([]int{1, 3}, []float64{0, 0.5}),
		}
		runBoth(t, "non-concave", bs, 12)
	})
	t.Run("exact-tie-earliest-admission", func(t *testing.T) {
		// Identical curves: every marginal rate ties exactly, and the
		// budget covers only one jump — it must go to the earlier bidder.
		bs := []bidder{
			mkBidder([]int{1, 3}, []float64{0, 1}),
			mkBidder([]int{1, 3}, []float64{0, 1}),
		}
		r := runBoth(t, "exact-tie", bs, 4)
		if g0, g1 := r.bidders[0].fj.grant, r.bidders[1].fj.grant; g0 != 3 || g1 != 1 {
			t.Errorf("tie granted (%d, %d), want the earlier bidder to win (3, 1)", g0, g1)
		}
	})
}

// TestWaterFillRandomizedDifferential fuzzes bidder geometry: random grids
// and utility curves (including non-monotone ones), random budgets, and
// compares fill against fillRef. Rates in this regime differ by far more
// than flatEps, so the reference's epsilon fold and the heap's strict
// argmax coincide — any mismatch is a heap bug.
func TestWaterFillRandomizedDifferential(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(3, "waterfill-fuzz"))
	for trial := 0; trial < 300; trial++ {
		nb := 1 + int(rng.Int64N(20))
		bs := make([]bidder, 0, nb)
		for i := 0; i < nb; i++ {
			nk := 2 + int(rng.Int64N(6))
			cands := make([]int, nk)
			util := make([]float64, nk)
			c := 1 + int(rng.Int64N(4))
			u := 0.0
			for k := 0; k < nk; k++ {
				cands[k] = c
				c += 1 + int(rng.Int64N(6))
				util[k] = u
				// Mostly rising, sometimes flat, sometimes dipping.
				switch rng.Int64N(4) {
				case 0:
				case 1:
					u -= float64(rng.Int64N(3))
				default:
					u += float64(1 + rng.Int64N(8))
				}
			}
			bs = append(bs, mkBidder(cands, util))
		}
		budget := int(rng.Int64N(120))
		runBoth(t, "fuzz", bs, budget)
		if t.Failed() {
			t.Fatalf("trial %d diverged (geometry above)", trial)
		}
	}
}

// TestGreedyFillZeroAllocs pins the heap water-fill to zero steady-state
// allocations: the bidder arena, heap index, and per-job utility buffers
// are all standing state, so an epoch at fleet scale allocates nothing.
func TestGreedyFillZeroAllocs(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(9, "waterfill-allocs"))
	r := &replay{}
	for i := 0; i < 500; i++ {
		cands := []int{1 + int(rng.Int64N(3)), 5 + int(rng.Int64N(5)), 12 + int(rng.Int64N(9))}
		util := []float64{0, float64(rng.Int64N(10)), float64(rng.Int64N(20))}
		r.bidders = append(r.bidders, mkBidder(cands, util))
	}
	cycle := func() {
		for i := range r.bidders {
			r.bidders[i].idx = -1
			r.bidders[i].fj.grant = 0
		}
		r.fill(1200)
	}
	cycle() // grow the heap index to its high-water mark
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Fatalf("water-fill epoch allocated %.1f times, want 0", allocs)
	}
}

// TestEpochStatsArbiterCost checks the observer surface: utility-greedy
// epochs report bidders and heap ops, and the heap-op count stays within a
// small constant of the work a linear-in-active epoch is allowed — the
// fleet-scale contract jockeyd -v prints.
func TestEpochStatsArbiterCost(t *testing.T) {
	var maxBidders, maxOps, epochs int
	cfg := stressConfig(5, UtilityGreedy, false)
	cfg.OnEpoch = func(s EpochStats) {
		epochs++
		if s.Bidders > maxBidders {
			maxBidders = s.Bidders
		}
		if s.HeapOps > maxOps {
			maxOps = s.HeapOps
		}
		// Every push/pop/re-seat follows a seat, a grant, or a budget
		// tightening; with K grid rungs per job the total is bounded by a
		// few ops per rung per bidder. 8× bidders × rungs is far above any
		// honest epoch and far below the quadratic the scan paid.
		if s.Bidders > 0 && s.HeapOps > 8*s.Bidders*maxGridRungs(t) {
			t.Errorf("epoch at %v: %d heap ops for %d bidders exceeds the linear budget", s.At, s.HeapOps, s.Bidders)
		}
	}
	mustRun(t, cfg)
	if maxBidders == 0 {
		t.Fatal("no epoch reported bidders; observer not wired")
	}
	if maxOps == 0 {
		t.Fatal("no epoch reported heap ops; observer not wired")
	}

	// The baselines never touch the heap: their cost fields stay zero.
	var fifoOps int
	cfg = stressConfig(5, FIFO, false)
	cfg.OnEpoch = func(s EpochStats) { fifoOps += s.HeapOps + s.Bidders }
	mustRun(t, cfg)
	if fifoOps != 0 {
		t.Fatalf("FIFO reported arbiter heap cost %d, want 0", fifoOps)
	}
	_ = epochs
}

// maxGridRungs is the largest candidate-grid length any model exposes —
// the K in the arbiter's O(grants × (K + log n)) epoch bound.
func maxGridRungs(t *testing.T) int {
	t.Helper()
	models := NewModelCache(99)
	n := 0
	for _, shape := range fleetShapes {
		jk, err := models.Model(shape)
		if err != nil {
			t.Fatal(err)
		}
		if len(jk.Grid()) > n {
			n = len(jk.Grid())
		}
	}
	return n
}
