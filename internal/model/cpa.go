package model

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/jockeysim/jockey/internal/invariant"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/progress"
	"github.com/jockeysim/jockey/internal/sim"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
)

// CPAConfig parameterizes construction of the C(p, a) table.
type CPAConfig struct {
	// Allocs is the grid of candidate allocations to simulate. Required,
	// ascending and positive.
	Allocs []int
	// RunsPerAlloc is how many simulations feed each allocation's
	// distributions (default 10).
	RunsPerAlloc int
	// SampleEvery is the progress-sampling period within each simulated run
	// (default 30s; the paper records per discrete time step).
	SampleEvery time.Duration
	// Buckets is the number of progress cells (default 100, i.e. 1% cells).
	Buckets int
	// ReservoirCap bounds the samples kept per cell (default 64).
	ReservoirCap int
	// Seed drives the simulations.
	Seed uint64
	// Parallelism bounds the worker pool that runs the offline simulations
	// (default runtime.GOMAXPROCS(0)). The table is bit-identical at any
	// value: each (alloc, run) cell derives its RNG seed independently of
	// the others, workers only fill their own cell's sample slice, and the
	// slices are folded into the reservoirs in fixed index order afterwards.
	Parallelism int
	// Quantize stores the table's cells as fixed-point int32 milliseconds
	// instead of time.Duration, halving the table's resident size (the knob
	// for cosmos-scale fleets holding hundreds of tables). Quantization is
	// applied once at build time, after the presort; queries never convert
	// per-sample. Remaining/ExpectedUtility results differ from the exact
	// table by at most the 1ms cell resolution, so the default is off and
	// golden outputs are unchanged unless a caller opts in.
	Quantize bool
}

func (c *CPAConfig) fill() error {
	if len(c.Allocs) == 0 {
		return fmt.Errorf("model: CPAConfig.Allocs is empty")
	}
	prev := 0
	for _, a := range c.Allocs {
		if a <= prev {
			return fmt.Errorf("model: CPAConfig.Allocs must be ascending and positive, got %v", c.Allocs)
		}
		prev = a
	}
	if c.RunsPerAlloc <= 0 {
		c.RunsPerAlloc = 10
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 30 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 100
	}
	if c.ReservoirCap <= 0 {
		c.ReservoirCap = 64
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return nil
}

// runParallel invokes fn(i) for every i in [0, n) on up to `workers`
// goroutines, pulling indices from a shared atomic counter. fn must only
// write state owned by index i.
func runParallel(n, workers int, fn func(int)) {
	runParallelWorkers(n, workers, func(_, i int) { fn(i) })
}

// runParallelWorkers is runParallel with the executing worker's identity
// (0 <= worker < workers) passed to fn, so callers can hand each worker
// its own reusable scratch state — e.g. one sim.Runner per worker, since
// Runners are cheap to reuse but not concurrency-safe. Worker identity
// must not influence results (the index-derived seeds and the
// deterministic merge guarantee that for the model builds).
func runParallelWorkers(n, workers int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// CPA is the precomputed table of remaining-completion-time distributions
// C(p, a): for each allocation a in the grid and each progress bucket p, a
// bounded sample of observed remaining times from offline simulations.
type CPA struct {
	indicator progress.Indicator
	allocs    []int
	buckets   int
	// cells[ai][b] holds remaining-time samples for allocation index ai and
	// progress bucket b. Every cell is sorted ascending once at build time,
	// so quantile queries index the sorted slice directly (no per-query
	// copy or sort). The cell slices are therefore shared and READ-ONLY
	// after construction; in `-tags invariantdebug` builds, sums holds a
	// per-cell checksum and samplesAt asserts it on every access.
	cells [][]*stats.Reservoir
	sums  [][]uint64
	// quant replaces cells when CPAConfig.Quantize is set: the same sorted
	// samples as int32 milliseconds (truncated, which preserves order).
	// Exactly one of cells/quant is non-nil after construction.
	quant [][][]int32
}

// BuildCPA runs the offline simulator across the allocation grid and builds
// the C(p, a) table, using the supplied indicator to compute progress p —
// the same indicator the control loop will use to index the table at
// runtime.
func BuildCPA(p *profile.Profile, ind progress.Indicator, cfg CPAConfig) (*CPA, error) {
	if p == nil || ind == nil {
		return nil, fmt.Errorf("model: BuildCPA requires a profile and an indicator")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &CPA{
		indicator: ind,
		allocs:    append([]int(nil), cfg.Allocs...),
		buckets:   cfg.Buckets,
		cells:     make([][]*stats.Reservoir, len(cfg.Allocs)),
	}
	for ai := range c.cells {
		c.cells[ai] = make([]*stats.Reservoir, cfg.Buckets+1)
		for b := range c.cells[ai] {
			c.cells[ai][b] = stats.NewReservoir(cfg.ReservoirCap)
		}
	}
	// Phase 1 — fan out: every (alloc, run) cell is an independent
	// simulation whose seed depends only on (Seed, alloc, run), so the
	// worker pool can execute cells in any order on any number of
	// goroutines. Each worker writes only its own cellObs slot, and holds
	// one reusable simulation engine plus one sample scratch buffer —
	// worker identity touches memory reuse only, never results.
	type obs struct {
		bucket int
		v      time.Duration
	}
	type sample struct {
		t time.Duration
		p float64
	}
	nCells := len(c.allocs) * cfg.RunsPerAlloc
	cellObs := make([][]obs, nCells)
	cellErr := make([]error, nCells)
	runners := make([]*sim.Runner, cfg.Parallelism)
	scratch := make([][]sample, cfg.Parallelism)
	runParallelWorkers(nCells, cfg.Parallelism, func(worker, idx int) {
		ai := idx / cfg.RunsPerAlloc
		run := idx % cfg.RunsPerAlloc
		alloc := c.allocs[ai]
		r := runners[worker]
		if r == nil {
			r = sim.NewRunner()
			runners[worker] = r
		}
		samples := scratch[worker][:0]
		seed := stats.DeriveSeed(cfg.Seed, "cpa", strconv.Itoa(alloc), strconv.Itoa(run))
		tr, err := r.Run(sim.Config{
			Profile:     p,
			Alloc:       alloc,
			Seed:        seed,
			SampleEvery: cfg.SampleEvery,
			OnSample: func(s sim.Snapshot) {
				// s.FracDone is the Runner's scratch buffer; Progress
				// consumes it inside the callback, nothing is retained.
				samples = append(samples, sample{t: s.Time, p: ind.Progress(s.FracDone)})
			},
		})
		scratch[worker] = samples // keep the grown capacity for the next cell
		if err != nil {
			cellErr[idx] = err
			return
		}
		// t = 0 with p = 0 is always a valid observation.
		out := make([]obs, 0, len(samples)+2)
		out = append(out, obs{bucket: 0, v: tr.Completion})
		for _, s := range samples {
			remaining := tr.Completion - s.t
			if remaining < 0 {
				continue
			}
			out = append(out, obs{bucket: bucketOf(s.p, c.buckets), v: remaining})
		}
		// Completion itself: progress 1 has zero remaining time.
		out = append(out, obs{bucket: c.buckets, v: 0})
		cellObs[idx] = out
	})
	// Phase 2 — deterministic merge: fold the per-cell observations into
	// the reservoirs in fixed (alloc, run) index order with one shared
	// reservoir RNG. This replays the exact Add sequence of a sequential
	// build, so the table is bit-identical at any Parallelism.
	rng := stats.NewRNG(stats.DeriveSeed(cfg.Seed, "cpa-reservoir"))
	for idx := 0; idx < nCells; idx++ {
		if err := cellErr[idx]; err != nil {
			return nil, err
		}
		ai := idx / cfg.RunsPerAlloc
		for _, o := range cellObs[idx] {
			c.cells[ai][o.bucket].Add(o.v, rng)
		}
	}
	// Phase 3 — presort: order every cell ascending exactly once, so
	// Remaining is an O(1)-allocation quantile lookup and ExpectedUtility
	// iterates the shared sorted slice. Sorting after the merge preserves
	// the reservoirs' retained multisets, so quantiles equal the old
	// copy-and-sort-per-query values bit for bit
	// (TestPresortedQuantilesMatchReference).
	for ai := range c.cells {
		for b := range c.cells[ai] {
			c.cells[ai][b].Sort()
		}
	}
	// Phase 4 (opt-in) — quantize: copy each sorted cell into fixed-point
	// int32 milliseconds and drop the Duration reservoirs. Truncation is
	// monotone, so the quantized cells stay sorted and the widening search
	// sees the same empty/non-empty structure.
	if cfg.Quantize {
		c.quant = make([][][]int32, len(c.cells))
		for ai := range c.cells {
			c.quant[ai] = make([][]int32, len(c.cells[ai]))
			for b := range c.cells[ai] {
				vs := c.cells[ai][b].Values()
				qs := make([]int32, len(vs))
				for i, v := range vs {
					qs[i] = int32(v / time.Millisecond)
				}
				c.quant[ai][b] = qs
			}
		}
		c.cells = nil
		return c, nil
	}
	if invariant.Debug {
		c.sums = make([][]uint64, len(c.cells))
		for ai := range c.cells {
			c.sums[ai] = make([]uint64, len(c.cells[ai]))
			for b := range c.cells[ai] {
				c.sums[ai][b] = invariant.ChecksumDurations(c.cells[ai][b].Values())
			}
		}
	}
	return c, nil
}

func (c *CPA) bucket(p float64) int { return bucketOf(p, c.buckets) }

// bucketOf maps progress p ∈ [0, 1] to one of buckets+1 cells, clamping
// out-of-range values. It is a free function so simulation workers can
// bucket their own samples without sharing CPA state.
func bucketOf(p float64, buckets int) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return buckets
	}
	return int(p * float64(buckets))
}

// Indicator returns the progress indicator the table was built with.
func (c *CPA) Indicator() progress.Indicator { return c.indicator }

// Allocs returns the allocation grid. The slice is owned by the CPA.
func (c *CPA) Allocs() []int { return c.allocs }

// SnapAlloc returns the grid allocation closest to a (ties go down).
func (c *CPA) SnapAlloc(a int) int {
	i := sort.SearchInts(c.allocs, a)
	if i == 0 {
		return c.allocs[0]
	}
	if i == len(c.allocs) {
		return c.allocs[len(c.allocs)-1]
	}
	if c.allocs[i]-a < a-c.allocs[i-1] {
		return c.allocs[i]
	}
	return c.allocs[i-1]
}

func (c *CPA) allocIndex(a int) int {
	snapped := c.SnapAlloc(a)
	for i, v := range c.allocs {
		if v == snapped {
			return i
		}
	}
	return 0 // unreachable
}

// samplesAt returns the remaining-time samples for progress p at allocation
// a, widening the search to neighbouring progress buckets until it finds a
// non-empty cell. The returned slice is sorted ascending, shared between
// every caller, and READ-ONLY: Remaining and ExpectedUtility consume it
// without copying, so a mutation would silently corrupt every later query.
// Debug builds (-tags invariantdebug) verify a build-time checksum of the
// cell on every access and panic on mutation.
func (c *CPA) samplesAt(p float64, a int) []time.Duration {
	ai, b, ok := c.findCell(p, a)
	if !ok {
		return nil
	}
	return c.readOnly(ai, b, c.cells[ai][b].Values())
}

// cellLen returns the sample count of cell (ai, b) under either storage.
//
//jockey:hotpath
func (c *CPA) cellLen(ai, b int) int {
	if c.quant != nil {
		return len(c.quant[ai][b])
	}
	return len(c.cells[ai][b].Values())
}

// findCell locates the cell serving progress p at allocation a, widening
// symmetrically to neighbouring progress buckets (preferring the lower, more
// pessimistic one) until it finds a non-empty cell. The widening structure
// depends only on which cells are empty, which quantization preserves, so
// exact and quantized tables always answer from the same cell.
//
//jockey:hotpath
func (c *CPA) findCell(p float64, a int) (ai, b int, ok bool) {
	ai = c.allocIndex(a)
	b = c.bucket(p)
	if c.cellLen(ai, b) > 0 {
		return ai, b, true
	}
	for d := 1; d <= c.buckets; d++ {
		if b-d >= 0 && c.cellLen(ai, b-d) > 0 {
			return ai, b - d, true
		}
		if b+d <= c.buckets && c.cellLen(ai, b+d) > 0 {
			return ai, b + d, true
		}
	}
	return 0, 0, false
}

// quantileMillis is stats.QuantileDurations over a sorted fixed-point
// millisecond cell: identical clamp and interpolation semantics, with the
// conversion to time.Duration applied only to the (at most two) samples the
// quantile touches.
//
//jockey:hotpath
func quantileMillis(sorted []int32, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(sorted[0]) * time.Millisecond
	}
	if q >= 1 {
		return time.Duration(sorted[len(sorted)-1]) * time.Millisecond
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return time.Duration(sorted[lo]) * time.Millisecond
	}
	frac := pos - float64(lo)
	ms := float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac
	return time.Duration(ms * float64(time.Millisecond))
}

// readOnly enforces the read-only-cells contract in debug builds: the cell
// being handed out must still hash to its build-time checksum. The Debug
// constant is false in default builds, so the check (and the sums table)
// compiles away.
func (c *CPA) readOnly(ai, b int, vs []time.Duration) []time.Duration {
	if invariant.Debug && c.sums != nil {
		invariant.Assertf(invariant.ChecksumDurations(vs) == c.sums[ai][b],
			"model: C(p,a) cell (alloc=%d, bucket=%d) mutated since build; cell slices are read-only",
			c.allocs[ai], b)
	}
	return vs
}

// Name implements Predictor.
func (c *CPA) Name() string { return "simulator" }

// Progress evaluates the table's indicator on a state.
func (c *CPA) Progress(st State) float64 { return c.indicator.Progress(st.FracDone) }

// Remaining implements Predictor: the q-quantile of C(p, a). Cells are
// sorted at build time, so this is a widening search plus an interpolated
// index — zero allocations per query (pinned by TestCPAQueryZeroAllocs),
// where it previously copied and re-sorted the cell on every call.
func (c *CPA) Remaining(st State, a int, q float64) time.Duration {
	if c.quant != nil {
		ai, b, ok := c.findCell(c.Progress(st), a)
		if !ok {
			return 0
		}
		return quantileMillis(c.quant[ai][b], q)
	}
	return stats.QuantileDurations(c.samplesAt(c.Progress(st), a), q)
}

// ExpectedUtility implements Predictor: the mean of U(elapsed + slack·C)
// over the sampled remaining times. Averaging over the distribution rather
// than a point estimate reproduces the paper's safety buffer: a heavy upper
// tail of C(p, a) drags expected utility down near the deadline.
func (c *CPA) ExpectedUtility(st State, a int, slack float64, u utility.Fn) float64 {
	if c.quant != nil {
		ai, b, ok := c.findCell(c.Progress(st), a)
		if !ok {
			return u.Utility(st.Elapsed)
		}
		cell := c.quant[ai][b]
		var sum float64
		for _, ms := range cell {
			rem := time.Duration(ms) * time.Millisecond
			t := st.Elapsed + time.Duration(float64(rem)*slack)
			sum += u.Utility(t)
		}
		return sum / float64(len(cell))
	}
	samples := c.samplesAt(c.Progress(st), a)
	if len(samples) == 0 {
		return u.Utility(st.Elapsed)
	}
	var sum float64
	for _, rem := range samples {
		t := st.Elapsed + time.Duration(float64(rem)*slack)
		sum += u.Utility(t)
	}
	return sum / float64(len(samples))
}
