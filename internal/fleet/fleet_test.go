package fleet

import (
	"strings"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
)

// stressConfig is the shared overload + rack-outage + drift scenario: 16
// offers at 3× the sized arrival rate onto a 60-token budget, with 11 of
// 20 machines lost for 20 minutes and every 4th job drifting mid-run.
func stressConfig(seed uint64, arb Arbitration, guarded bool) Config {
	return Config{
		Seed:        seed,
		Arrivals:    16,
		LoadFactor:  3,
		Budget:      60,
		Arbitration: arb,
		Guarded:     guarded,
		DriftEvery:  4,
		RackOutages: []cluster.RackOutage{{
			At: 12 * time.Minute, FirstMachine: 0, Machines: 11, Duration: 20 * time.Minute,
		}},
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("fleet.Run: %v", err)
	}
	return res
}

// The golden determinism pin: one guarded stress replay, byte-identical
// however much parallelism the model builds use.
func TestFleetReplayBitIdenticalAcrossParallelism(t *testing.T) {
	var want string
	for _, par := range []int{1, 4, 8} {
		models := NewModelCache(99)
		models.SetParallelism(par)
		cfg := stressConfig(2, UtilityGreedy, true)
		cfg.Models = models
		got := mustRun(t, cfg).Render()
		if par == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("replay output differs at model parallelism %d:\n%s\n--- want ---\n%s", par, got, want)
		}
	}
}

// A reused engine (twice over) must replay bit-identically to a fresh
// cluster, for every discipline.
func TestFleetFreshVsReusedEngineBitIdentical(t *testing.T) {
	for _, d := range []struct {
		arb     Arbitration
		guarded bool
	}{{FIFO, false}, {FairShare, false}, {UtilityGreedy, false}, {UtilityGreedy, true}} {
		models := NewModelCache(99)
		fresh := mustRun(t, func() Config {
			cfg := stressConfig(2, d.arb, d.guarded)
			cfg.Models = models
			return cfg
		}()).Render()
		eng := cluster.NewEngine()
		for round := 1; round <= 2; round++ {
			cfg := stressConfig(2, d.arb, d.guarded)
			cfg.Models = models
			cfg.Engine = eng
			if got := mustRun(t, cfg).Render(); got != fresh {
				t.Fatalf("%s round %d: reused-engine replay differs from fresh:\n%s\n--- want ---\n%s",
					d.arb, round, got, fresh)
			}
		}
	}
}

// A shared pre-warmed model cache must not change the replay: model
// outputs depend only on the cache seed and shape key, never on who
// warmed them or in what order.
func TestFleetSharedModelCacheBitIdentical(t *testing.T) {
	private := mustRun(t, func() Config {
		cfg := stressConfig(3, UtilityGreedy, true)
		m := NewModelCache(99)
		cfg.Models = m
		return cfg
	}()).Render()

	shared := NewModelCache(99)
	// Warm the cache in an unrelated order (reverse shape table, scaled
	// variants first) before the replay uses it.
	for i := len(fleetShapes) - 1; i >= 0; i-- {
		s := fleetShapes[i]
		s.Scale = 1.2
		if _, err := shared.Model(s); err != nil {
			t.Fatalf("warm %s: %v", s.Key(), err)
		}
	}
	cfg := stressConfig(3, UtilityGreedy, true)
	cfg.Models = shared
	if got := mustRun(t, cfg).Render(); got != private {
		t.Fatalf("shared-cache replay differs from private-cache replay:\n%s\n--- want ---\n%s", got, private)
	}
}

// The containment latch: with one drifting job driving its guard into
// max-allocation panic, containment keeps every feasible peer on its
// deadline (zero induced misses), while letting the panic off the leash
// starves a peer into missing.
func TestFleetGuardPanicContainment(t *testing.T) {
	base := Config{
		Seed:        4,
		Arrivals:    8,
		LoadFactor:  1.6,
		Budget:      50,
		Guarded:     true,
		DriftEvery:  8,
		DriftFactor: 3,
	}

	contained := mustRun(t, base)
	panics := 0
	for _, rec := range contained.Jobs {
		panics += rec.Panics
		if rec.Drift || !rec.Admitted {
			continue
		}
		if !rec.Met {
			t.Errorf("contained run: feasible peer %d (%s) missed its deadline", rec.ID, rec.Shape)
		}
	}
	if panics == 0 {
		t.Fatalf("contained run: expected at least one guard panic, got none")
	}

	// Without containment the latch's full max-allocation bid stays in the
	// committed demand and squeezes the budget, starving peers either of
	// tokens or of admission altogether. Both channels are induced misses.
	unleashed := base
	unleashed.NoContainment = true
	peerMisses := 0
	for _, rec := range mustRun(t, unleashed).Jobs {
		if !rec.Drift && !rec.Met {
			peerMisses++
		}
	}
	if peerMisses == 0 {
		t.Fatalf("uncontained run: expected the unleashed panic latch to starve at least one peer")
	}
}

// Tally and attribution invariants on a stressed replay.
func TestFleetTalliesAndAttribution(t *testing.T) {
	res := mustRun(t, stressConfig(8, UtilityGreedy, true))
	if res.Admitted+res.Rejected != len(res.Jobs) {
		t.Fatalf("admitted %d + rejected %d != offers %d", res.Admitted, res.Rejected, len(res.Jobs))
	}
	if res.Met+res.Missed != len(res.Jobs) {
		t.Fatalf("met %d + missed %d != offers %d", res.Met, res.Missed, len(res.Jobs))
	}
	if res.Rejected == 0 {
		t.Fatalf("stress config should reject at least one offer")
	}
	sum := 0.0
	for _, rec := range res.Jobs {
		sum += rec.Utility
		if rec.Deferrals > res.Epochs {
			t.Errorf("job %d: %d deferrals exceed %d epochs", rec.ID, rec.Deferrals, res.Epochs)
		}
		switch {
		case rec.Rejected:
			if rec.Attribution != "admission" {
				t.Errorf("job %d: rejected offer attributed to %q, want admission", rec.ID, rec.Attribution)
			}
			if rec.RejectReason == "" {
				t.Errorf("job %d: rejected without a reason", rec.ID)
			}
		case rec.Met:
			if rec.Attribution != "" {
				t.Errorf("job %d: met its deadline but attributed to %q", rec.ID, rec.Attribution)
			}
		default:
			switch rec.Attribution {
			case "admission", "arbitration", "guard", "model":
			default:
				t.Errorf("job %d: miss attributed to unknown mechanism %q", rec.ID, rec.Attribution)
			}
		}
	}
	if diff := sum - res.AggUtility; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("per-job utilities sum to %v, aggregate says %v", sum, res.AggUtility)
	}
}

// Config validation: unsupported combinations fail loudly, not silently.
func TestFleetConfigValidation(t *testing.T) {
	cases := []Config{
		{Arbitration: "priority"},
		{Guarded: true, Arbitration: FIFO},
		{NoContainment: true},
		{Budget: -1},
		{LoadFactor: -2},
	}
	for _, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run(%+v) accepted an invalid config", cfg)
		}
	}
}

// The epoch observer sees a monotone clock and internally consistent
// budgets.
func TestFleetEpochObserver(t *testing.T) {
	cfg := stressConfig(2, UtilityGreedy, true)
	last := time.Duration(-1)
	ticks := 0
	cfg.OnEpoch = func(s EpochStats) {
		ticks++
		if s.At <= last {
			t.Fatalf("epoch clock went backwards: %v after %v", s.At, last)
		}
		last = s.At
		if s.Granted > s.Budget {
			t.Fatalf("epoch %v granted %d beyond budget %d", s.At, s.Granted, s.Budget)
		}
	}
	res := mustRun(t, cfg)
	if ticks != res.Epochs {
		t.Fatalf("observer saw %d epochs, result says %d", ticks, res.Epochs)
	}
}

// Render stays stable under repeated invocation (no internal mutation).
func TestFleetRenderStable(t *testing.T) {
	res := mustRun(t, Config{Seed: 7})
	if a, b := res.Render(), res.Render(); a != b {
		t.Fatalf("Render is not idempotent")
	}
	if !strings.Contains(res.Render(), "fleet utility-greedy") {
		t.Fatalf("Render misses the discipline header:\n%s", res.Render())
	}
}

func BenchmarkFleetReplay(b *testing.B) {
	models := NewModelCache(99)
	eng := cluster.NewEngine()
	// Warm models outside the timed loop: the benchmark measures the
	// replay, not the offline profiling.
	warm := stressConfig(2, UtilityGreedy, true)
	warm.Models = models
	warm.Engine = eng
	if _, err := Run(warm); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := stressConfig(2, UtilityGreedy, true)
		cfg.Models = models
		cfg.Engine = eng
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
