// Fixture: a deterministic package (analyzed as internal/sim) consuming
// RNGs. Every generator must be seeded from the stats derivation chain;
// literal seeds, unseeded state, and laundered helpers are flagged — and
// the obligations arrive across package boundaries via facts (seedhelp.Gen
// and stats.NewSource/ReseedSource are consumers discovered while checking
// their own packages, not this one).
package sim

import (
	"math/rand/v2"

	"github.com/jockeysim/jockey/internal/seedhelp"
	"github.com/jockeysim/jockey/internal/stats"
)

// Config carries a seed across a construction boundary: filling the field
// with a literal is the violation, reading it back is trusted.
type Config struct {
	Name string
	Seed uint64
}

// Derived seeds flowing through intrinsics, local derivers, tracked
// helpers, and struct fields are all clean.
func clean(master uint64, cfg Config) *rand.Rand {
	a := stats.NewRNG(stats.DeriveSeed(master, "a"))
	b := seedhelp.Gen(stats.DeriveSeedInt(master, 1))
	c := stats.NewRNG(seedhelp.Mix(stats.DeriveSeed(master, "c")))
	d := stats.NewRNG(subSeed(master, 4))
	e := stats.NewRNG(cfg.Seed)
	_ = []*rand.Rand{a, b, c, d, e}
	return stats.NewRNG(stats.DeriveSeed(master, "r"))
}

// subSeed is a local deriver: summarized from its body, no annotation
// needed.
func subSeed(master uint64, i int) uint64 {
	return stats.DeriveSeedInt(master, i)
}

// spawn forwards its parameter into a cross-package consumer, inheriting
// the obligation: spawn itself becomes a seed consumer.
func spawn(seed uint64) *rand.Rand {
	return seedhelp.Gen(seed)
}

func literalSeeds(master uint64) {
	_ = seedhelp.Gen(7)     // want `seed reaching Gen is a literal/constant`
	_ = stats.NewSource(42) // want `seed reaching NewSource is a literal/constant`
	_ = rand.NewPCG(1, 2)   // want `seed reaching NewPCG is a literal/constant` `seed reaching NewPCG is a literal/constant`
	_ = spawn(123)          // want `seed reaching spawn is a literal/constant`
	entropy := func() uint64 { return master }
	_ = stats.NewRNG(entropy()) // want `produced by an indirect call`
}

func reseedWithLiteral(master uint64) {
	src := stats.NewSource(stats.DeriveSeed(master, "src"))
	stats.ReseedSource(src, 5) // want `seed reaching ReseedSource is a literal/constant`
}

func launderedSeeds(master uint64) {
	_ = seedhelp.Gen(seedhelp.Next())      // want `laundered through Next`
	_ = stats.NewRNG(localLaunder(master)) // want `laundered through localLaunder`
}

// localLaunder has a constant return path, so its result is not reliably
// derived from its input.
func localLaunder(x uint64) uint64 {
	if x == 0 {
		return 1
	}
	return x * 2
}

func unseededState() *rand.Rand {
	return rand.New(&rand.PCG{}) // want `unseeded generator`
}

func fillSeedField(master uint64) (Config, Config) {
	good := Config{Name: "good", Seed: stats.DeriveSeed(master, "good")}
	bad := Config{Name: "bad", Seed: 99} // want `seed reaching Seed field is a literal/constant`
	return good, bad
}
