// Admission: arbitrate a fleet of SLO jobs, not just a single fit check.
//
// Section 1 of the paper: "Jockey's job model can be used to check whether
// a newly submitted job would 'fit' in the cluster – that is, that all
// previously accepted SLO jobs would still be able to meet their deadlines
// – before permitting it to run."
//
// This example drives the fleet arbiter (the dynamic layer above that
// static check): a deterministic stream of recurring SLO-job offers
// arrives at 3× the sized rate while a rack outage takes 11 of 20 machines
// for 20 minutes. The same offer stream is replayed twice — once under
// FIFO admission, which freezes each job's worst-case reservation at
// admission time, and once under guarded utility-greedy arbitration, which
// re-divides the global token budget every control epoch by marginal
// utility, defers offers that don't currently fit, and contains guard
// panics so a single sick job cannot starve the fleet.
//
// Run with:
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/jockeysim/jockey"
)

func main() {
	outage := []jockey.RackOutage{{
		At:       12 * time.Minute,
		Machines: 11,
		Duration: 20 * time.Minute,
	}}

	// One shared model cache: every replay reuses the same per-shape
	// C(p, a) models, exactly as recurring jobs would in production.
	models := jockey.NewFleetModelCache(7)

	run := func(arb jockey.FleetArbitration, guarded bool) *jockey.FleetResult {
		res, err := jockey.FleetRun(jockey.FleetConfig{
			Seed:        42,
			Arrivals:    12,
			LoadFactor:  3,
			Budget:      60,
			Arbitration: arb,
			Guarded:     guarded,
			DriftEvery:  5,
			RackOutages: outage,
			Models:      models,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fifo := run(jockey.FleetFIFO, false)
	fmt.Print(fifo.Render())
	fmt.Println()

	guarded := run(jockey.FleetUtilityGreedy, true)
	fmt.Print(guarded.Render())
	fmt.Println()

	fmt.Printf("same offers, same outage: fifo missed %d of %d (utility %+.2f); "+
		"guarded utility-greedy missed %d (utility %+.2f)\n",
		fifo.Missed, len(fifo.Jobs), fifo.AggUtility,
		guarded.Missed, guarded.AggUtility)
}
