package cluster

import (
	"github.com/jockeysim/jockey/internal/dag"
)

// Engine is a reusable cluster simulator: the same shape-allocate-once /
// reset-in-place idea as sim.Runner (DESIGN.md, "Hot-path performance"),
// applied to the full shared-cluster replay. One experiment grid point
// simulates a six-hour horizon with hundreds of background jobs; a fresh
// Cluster re-allocates every jobRun, running-task record, and scheduling
// buffer each time. An Engine keeps them:
//
//   - jobRun arenas are pooled by plan identity (*dag.Job), so a workload
//     whose plans are themselves reused across runs (workload.BackgroundPool,
//     the experiment jobs A..G, the surge tenant) stops allocating per-job
//     state after the first run;
//   - task-attempt state lives in the cluster's taskStore (store.go), whose
//     flat arrays and free list keep their capacity across Reset;
//   - the event queue, machine arrays, and class heaps keep their capacity
//     across Reset.
//
// A reset engine is bit-identical in behavior to cluster.New with the same
// Config: RNG reseeding reproduces fresh streams, and pooled state is fully
// reinitialized (pinned by TestEngineReuseBitIdentical).
//
// An Engine is not safe for concurrent use; the intended pattern is one
// Engine per grid worker (internal/grid gives tasks their worker index for
// exactly this).
type Engine struct {
	c      Cluster
	arenas map[*dag.Job][]*jobRun
}

// NewEngine returns an empty reusable engine.
func NewEngine() *Engine {
	return &Engine{arenas: make(map[*dag.Job][]*jobRun)}
}

// Reset recycles the previous run's arenas and re-initializes the engine's
// cluster for cfg, returning it ready for Submit/Run. The returned cluster
// (and every Handle and Result.Trace obtained from it) is valid until the
// next Reset; Traces of tracked jobs are freshly allocated and safe to
// retain across resets.
func (e *Engine) Reset(cfg Config) (*Cluster, error) {
	for _, jr := range e.c.jobs {
		e.recycle(jr)
	}
	e.c.jobs = e.c.jobs[:0]
	if err := e.c.init(cfg); err != nil {
		return nil, err
	}
	e.c.eng = e
	return &e.c, nil
}

// recycle returns a jobRun's arena to the pool. Still-running attempt slots
// (background jobs may be mid-flight when the last tracked job completes and
// Run returns) need no per-job release: the whole taskStore resets with the
// cluster.
func (e *Engine) recycle(jr *jobRun) {
	// Drop per-run references that would otherwise pin profiles, policies,
	// and callbacks in memory between runs.
	jr.cfg = JobConfig{}
	jr.p = nil
	jr.result = Result{}
	e.arenas[jr.job] = append(e.arenas[jr.job], jr)
}

// takeArena pops a pooled arena for the plan, or returns nil when none is
// free (the same plan can be live several times in one run).
//
//jockey:hotpath
func (e *Engine) takeArena(job *dag.Job) *jobRun {
	s := e.arenas[job]
	if len(s) == 0 {
		return nil
	}
	jr := s[len(s)-1]
	e.arenas[job] = s[:len(s)-1]
	return jr
}
