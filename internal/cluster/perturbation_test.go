package cluster

import (
	"strings"
	"testing"
	"time"
)

func TestPerturbationConfigValidation(t *testing.T) {
	cases := []Config{
		{RackOutages: []RackOutage{{At: -time.Second, FirstMachine: 0, Machines: 1, Duration: time.Minute}}},
		{RackOutages: []RackOutage{{FirstMachine: 0, Machines: 1}}}, // zero duration
		{RackOutages: []RackOutage{{FirstMachine: 24, Machines: 2, Duration: time.Minute}}},
		{RackOutages: []RackOutage{{FirstMachine: -1, Machines: 1, Duration: time.Minute}}},
		{RackOutages: []RackOutage{{FirstMachine: 0, Machines: 0, Duration: time.Minute}}},
		{Contention: []ContentionWindow{{From: time.Minute, To: time.Second, Frac: 0.5}}},
		{Contention: []ContentionWindow{{From: -time.Second, To: time.Minute, Frac: 0.5}}},
		{Contention: []ContentionWindow{{From: 0, To: time.Minute, Frac: 1}}},
		{Contention: []ContentionWindow{{From: 0, To: time.Minute, Frac: -0.1}}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid perturbation config accepted: %+v", i, cfg)
		}
	}
}

func TestSubmitPerturbationValidation(t *testing.T) {
	c, _ := New(Config{})
	p := fixedJob(t, "x")
	bad := []JobConfig{
		{Profile: p, Guarantee: 1, Drifts: []StageDrift{{Stage: 2, Factor: 2}}},
		{Profile: p, Guarantee: 1, Drifts: []StageDrift{{Stage: -2, Factor: 2}}},
		{Profile: p, Guarantee: 1, Drifts: []StageDrift{{Stage: 0, Factor: 0}}},
		{Profile: p, Guarantee: 1, Drifts: []StageDrift{{At: -time.Second, Stage: 0, Factor: 2}}},
		{Profile: p, Guarantee: 1, DeadlineChanges: []DeadlineChange{{At: -time.Second, Deadline: time.Hour}}},
		{Profile: p, Guarantee: 1, DeadlineChanges: []DeadlineChange{{At: time.Second}}}, // zero new deadline
	}
	for i, jc := range bad {
		if _, err := c.Submit(jc); err == nil {
			t.Errorf("case %d: invalid job config accepted: %+v", i, jc)
		}
	}
	// All-stage drift (-1) is valid.
	if _, err := c.Submit(JobConfig{Profile: p, Guarantee: 1,
		Drifts: []StageDrift{{Stage: -1, Factor: 2}}}); err != nil {
		t.Errorf("all-stage drift rejected: %v", err)
	}
}

// runOne runs a single tracked job to completion and returns its result.
func runOne(t *testing.T, ccfg Config, jcfg JobConfig) Result {
	t.Helper()
	c, err := New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	jcfg.Tracked = true
	h, err := c.Submit(jcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return h.Result()
}

func TestStageDriftSlowsJob(t *testing.T) {
	ccfg := Config{Machines: 4, SlotsPerMachine: 2, Seed: 3}
	base := runOne(t, ccfg, JobConfig{Profile: fixedJob(t, "base"), Guarantee: 8})
	drifted := runOne(t, ccfg, JobConfig{
		Profile: fixedJob(t, "drift"), Guarantee: 8,
		Drifts: []StageDrift{{At: 0, Stage: -1, Factor: 2}},
	})
	if drifted.Completion < time.Duration(float64(base.Completion)*1.8) {
		t.Fatalf("2x all-stage drift: completion %v vs base %v, want ~2x", drifted.Completion, base.Completion)
	}
	// Drift on one stage only slows that stage's share.
	partial := runOne(t, ccfg, JobConfig{
		Profile: fixedJob(t, "partial"), Guarantee: 8,
		Drifts: []StageDrift{{At: 0, Stage: 1, Factor: 2}},
	})
	if partial.Completion <= base.Completion || partial.Completion >= drifted.Completion {
		t.Fatalf("single-stage drift completion %v not between base %v and full drift %v",
			partial.Completion, base.Completion, drifted.Completion)
	}
}

func TestStageDriftAppliesMidRun(t *testing.T) {
	// Drift injected after the job would normally be done changes nothing.
	ccfg := Config{Machines: 4, SlotsPerMachine: 2, Seed: 3}
	base := runOne(t, ccfg, JobConfig{Profile: fixedJob(t, "base"), Guarantee: 8})
	late := runOne(t, ccfg, JobConfig{
		Profile: fixedJob(t, "late"), Guarantee: 8,
		Drifts: []StageDrift{{At: base.Completion + time.Minute, Stage: -1, Factor: 10}},
	})
	if late.Completion != base.Completion {
		t.Fatalf("late drift changed completion: %v vs %v", late.Completion, base.Completion)
	}
}

func TestRackOutageEvictsAndRecovers(t *testing.T) {
	// 2 machines x 2 slots; the job needs both. Take machine 0 down shortly
	// after start: its tasks are evicted and re-run, delaying completion.
	ccfg := Config{Machines: 2, SlotsPerMachine: 2, Seed: 5}
	base := runOne(t, ccfg, JobConfig{Profile: bigJob(t, "b", 8, time.Minute), Guarantee: 4})
	out := ccfg
	out.RackOutages = []RackOutage{{At: 30 * time.Second, FirstMachine: 0, Machines: 1, Duration: 2 * time.Minute}}
	hit := runOne(t, out, JobConfig{Profile: bigJob(t, "b", 8, time.Minute), Guarantee: 4})
	if hit.Completion <= base.Completion {
		t.Fatalf("rack outage did not slow the job: %v vs %v", hit.Completion, base.Completion)
	}
	if hit.Trace == nil || len(hit.Trace.Events) <= len(base.Trace.Events) {
		t.Fatalf("rack outage produced no extra (failed) attempts")
	}
	// The cluster recovered: the job did finish (Run returned nil above).
}

func TestRackOutageWholeClusterRecovers(t *testing.T) {
	ccfg := Config{Machines: 2, SlotsPerMachine: 2, Seed: 5}
	ccfg.RackOutages = []RackOutage{{At: 30 * time.Second, FirstMachine: 0, Machines: 2, Duration: time.Minute}}
	r := runOne(t, ccfg, JobConfig{Profile: bigJob(t, "b", 8, time.Minute), Guarantee: 4})
	if r.Completion < 90*time.Second {
		t.Fatalf("whole-cluster outage: completion %v, want >= 90s", r.Completion)
	}
}

func TestOverlappingOutagesExtendDowntime(t *testing.T) {
	// Two overlapping outages of the same machine: the machine must stay
	// down until the later recovery, and the job still completes.
	ccfg := Config{Machines: 2, SlotsPerMachine: 2, Seed: 5}
	ccfg.RackOutages = []RackOutage{
		{At: 30 * time.Second, FirstMachine: 0, Machines: 1, Duration: 3 * time.Minute},
		{At: 60 * time.Second, FirstMachine: 0, Machines: 2, Duration: 30 * time.Second},
	}
	c, err := New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Submit(JobConfig{Profile: bigJob(t, "b", 8, time.Minute), Guarantee: 4, Tracked: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !h.Done() {
		t.Fatal("job did not complete")
	}
	// Machine 0's first outage (until 3m30s) outlives the second outage's
	// recovery (1m30s): the early recover event must have been ignored.
	if c.mDown[0] != 30*time.Second+3*time.Minute {
		t.Fatalf("machine 0 downUntil = %v, want 3m30s", c.mDown[0])
	}
}

func TestContentionWindowThrottlesGuarantee(t *testing.T) {
	// 8 tasks x 1min at guarantee 4 finish in ~2min; halving the honored
	// guarantee for the whole run stretches that to ~4min. NoSpare keeps the
	// job from dodging contention via spare tokens.
	ccfg := Config{Machines: 2, SlotsPerMachine: 2, Seed: 7}
	base := runOne(t, ccfg, JobConfig{Profile: bigJob(t, "b", 8, time.Minute), Guarantee: 4, NoSpare: true})
	con := ccfg
	con.Contention = []ContentionWindow{{From: 0, To: 10 * time.Hour, Frac: 0.5}}
	hit := runOne(t, con, JobConfig{Profile: bigJob(t, "b", 8, time.Minute), Guarantee: 4, NoSpare: true})
	if hit.Completion < time.Duration(float64(base.Completion)*1.8) {
		t.Fatalf("contention at 0.5 did not ~double completion: %v vs %v", hit.Completion, base.Completion)
	}
	// Accounting still charges the nominal guarantee — the broken promise.
	wantAlloc := 4 * hit.Completion.Seconds()
	if hit.AllocTokenSeconds < wantAlloc*0.99 {
		t.Fatalf("contention leaked into alloc accounting: %v token-secs, want ~%v",
			hit.AllocTokenSeconds, wantAlloc)
	}
}

func TestContentionWindowEnds(t *testing.T) {
	// A contention window covering only the first half: completion lands
	// between the unthrottled and fully-throttled runs.
	ccfg := Config{Machines: 2, SlotsPerMachine: 2, Seed: 7}
	base := runOne(t, ccfg, JobConfig{Profile: bigJob(t, "b", 8, time.Minute), Guarantee: 4, NoSpare: true})
	con := ccfg
	con.Contention = []ContentionWindow{{From: 0, To: base.Completion / 2, Frac: 0.5}}
	hit := runOne(t, con, JobConfig{Profile: bigJob(t, "b", 8, time.Minute), Guarantee: 4, NoSpare: true})
	if hit.Completion <= base.Completion || hit.Completion >= 2*base.Completion {
		t.Fatalf("half-run contention completion %v not in (%v, %v)",
			hit.Completion, base.Completion, 2*base.Completion)
	}
}

func TestPerturbedRunDeterministic(t *testing.T) {
	run := func() Result {
		ccfg := Config{Machines: 4, SlotsPerMachine: 2, Seed: 11,
			MachineMTBF: 20 * time.Minute,
			RackOutages: []RackOutage{{At: time.Minute, FirstMachine: 0, Machines: 2, Duration: time.Minute}},
			Contention:  []ContentionWindow{{From: 90 * time.Second, To: 3 * time.Minute, Frac: 0.5}},
		}
		return runOne(t, ccfg, JobConfig{
			Profile: fixedJob(t, "det"), Guarantee: 6,
			Drifts:               []StageDrift{{At: 30 * time.Second, Stage: -1, Factor: 1.5}},
			SpeculativeThreshold: 2,
		})
	}
	a, b := run(), run()
	if a.Completion != b.Completion || a.Evictions != b.Evictions || a.Duplicates != b.Duplicates {
		t.Fatalf("perturbed runs diverged: %+v vs %+v", a, b)
	}
	if len(a.Trace.Events) != len(b.Trace.Events) {
		t.Fatalf("trace lengths diverged: %d vs %d", len(a.Trace.Events), len(b.Trace.Events))
	}
}

func TestSpecTickStopsAfterCompletion(t *testing.T) {
	c, err := New(Config{Machines: 4, SlotsPerMachine: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Submit(JobConfig{
		Profile: fixedJob(t, "spec"), Guarantee: 8, Tracked: true,
		SpeculativeThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !h.Done() {
		t.Fatal("job did not complete")
	}
	// Drain the queue: every remaining spec tick must be a no-op, so the
	// queue empties instead of self-perpetuating.
	for i := 0; ; i++ {
		if i > 100 {
			t.Fatalf("event queue still has %d events after 100 pops — spec ticks re-queuing after completion", c.q.Len())
		}
		at, ev, ok := c.q.Pop()
		if !ok {
			break
		}
		c.now = at
		if ev.kind == evSpecTick {
			c.handleSpecTick(ev.job)
		}
	}
	if c.q.Len() != 0 {
		t.Fatalf("queue not drained: %d events left", c.q.Len())
	}
}

func TestRunErrorNamesUnfinishedJobs(t *testing.T) {
	// An impossible job (more guaranteed work than sim time) must name
	// itself in the Run error.
	c, err := New(Config{Machines: 1, SlotsPerMachine: 1, Seed: 1, MaxSimTime: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(JobConfig{Profile: bigJob(t, "hopeless", 100, time.Hour), Guarantee: 1, Tracked: true}); err != nil {
		t.Fatal(err)
	}
	err = c.Run()
	if err == nil || !strings.Contains(err.Error(), "hopeless") {
		t.Fatalf("Run error does not name the unfinished job: %v", err)
	}
}
