// Package fleet is the multi-job arbiter layer (paper §5): a deterministic
// replay that admits a stream of recurring SLO jobs onto one simulated
// cluster, runs a Jockey controller (optionally guard-wrapped) per admitted
// job, and once per control epoch re-divides the global guaranteed-token
// budget across the fleet by greedy marginal-utility water-filling.
//
// Robustness is the design center. Under overload the arbiter defers
// admissions with bounded exponential backoff and rejects jobs it can no
// longer serve, instead of overcommitting everyone into missing. Under a
// rack outage the effective budget shrinks to live capacity and the
// water-fill squeezes the lowest-marginal-utility jobs first. When one
// job's guard panics (model staleness + deadline at risk), containment caps
// its panic grant at its admission reservation so a single sick job cannot
// starve feasible peers.
//
// Everything is bit-identical at any parallelism: randomness derives from
// Config.Seed via stats.DeriveSeed, models come from a shape-keyed
// ModelCache whose outputs do not depend on which caller warmed them, and
// the replay itself is single-threaded inside the cluster's event loop.
package fleet

import (
	"fmt"
	"sort"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/core"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
)

// Arbitration selects how the epoch re-division of the token budget works.
type Arbitration string

const (
	// FIFO is the static baseline: admit in arrival order while the
	// reservations fit, reject otherwise, never revisit a grant.
	FIFO Arbitration = "fifo"
	// FairShare splits the effective budget equally across admitted jobs
	// every epoch, ignoring deadlines and utility.
	FairShare Arbitration = "fair-share"
	// UtilityGreedy water-fills the effective budget by marginal
	// model-estimated deadline utility, clamping flat jobs to their floor.
	UtilityGreedy Arbitration = "utility-greedy"
)

// Arbitrations lists the supported disciplines in comparison order.
var Arbitrations = []Arbitration{FIFO, FairShare, UtilityGreedy}

// Config parameterizes one fleet replay.
type Config struct {
	// Seed drives every random draw of the replay (arrival stream, cluster
	// dynamics; model randomness comes from the ModelCache's own seed).
	Seed uint64
	// Machines and SlotsPerMachine size the cluster (default 20 × 5).
	Machines        int
	SlotsPerMachine int
	// Budget is the guaranteed-token budget the arbiter divides (default:
	// full cluster capacity). The effective budget each epoch is
	// min(Budget, live capacity), so outages shrink it.
	Budget int
	// Epoch is the arbitration cadence (default 1 minute, the paper's
	// control interval).
	Epoch time.Duration
	// Arrivals is how many SLO jobs are offered (default 12).
	Arrivals int
	// MeanInterarrival is the mean gap between offers at load factor 1
	// (default 4 minutes).
	MeanInterarrival time.Duration
	// LoadFactor compresses the arrival process: 2 means jobs arrive twice
	// as fast as the cluster was sized for (default 1).
	LoadFactor float64
	// Arbitration picks the discipline (default UtilityGreedy).
	Arbitration Arbitration
	// Guarded wraps each job's controller in control.Guard. Only valid
	// with UtilityGreedy.
	Guarded bool
	// NoContainment lets a panicking guard's max-allocation latch bid for
	// the whole grid top instead of being capped at the job's admission
	// reservation — the failure mode the containment test measures.
	NoContainment bool
	// MaxDefers bounds how many times one admission may be deferred before
	// it is rejected outright (default 8; FIFO never defers).
	MaxDefers int
	// RackOutages forwards correlated failures to the cluster.
	RackOutages []cluster.RackOutage
	// DriftEvery marks every Nth arrival to drift mid-run (ground truth
	// service times inflate by DriftFactor); 0 disables drift.
	DriftEvery int
	// DriftFactor is the drift multiplier (default 2).
	DriftFactor float64
	// Models supplies shared per-shape profiles and C(p, a) models. Nil
	// builds a private cache from DeriveSeed(Seed, "fleet-models").
	Models *ModelCache
	// Engine, when set, reuses pooled simulation arenas across replays.
	// Pooled and fresh replays are bit-identical.
	Engine *cluster.Engine
	// OnEpoch, if set, observes every arbitration epoch (jockeyd -v).
	OnEpoch func(EpochStats)

	// selfCheck, set only by tests, receives a formatted report whenever
	// the heap water-fill diverges from the retired reference scan (see
	// arbiter_ref.go). Nil in production: the differential replay costs an
	// extra full fillRef per epoch.
	selfCheck func(format string, args ...any)
}

// EpochStats is the per-epoch observer record.
type EpochStats struct {
	// At is the epoch time on the cluster clock.
	At time.Duration
	// Active, Deferred and Rejected count jobs in each admission state
	// (Rejected is cumulative).
	Active, Deferred, Rejected int
	// Budget is the epoch's effective budget; Granted sums the grants.
	Budget, Granted int
	// Latched counts jobs currently held at their guard-panic grant.
	Latched int
	// Bidders counts the non-latched jobs that bid in this epoch's
	// water-fill; HeapOps counts the marginal-utility heap operations
	// (pushes, pops, re-seats) the greedy rounds took. Together they are
	// the arbiter's epoch cost: HeapOps staying near-linear in Bidders is
	// the fleet-scale contract (both are 0 outside utility-greedy).
	Bidders, HeapOps int
}

func (c *Config) fill() error {
	if c.Machines == 0 {
		c.Machines = 20
	}
	if c.SlotsPerMachine == 0 {
		c.SlotsPerMachine = 5
	}
	if c.Budget == 0 {
		c.Budget = c.Machines * c.SlotsPerMachine
	}
	if c.Budget < 1 {
		return fmt.Errorf("fleet: budget %d must be positive", c.Budget)
	}
	if c.Epoch <= 0 {
		c.Epoch = time.Minute
	}
	if c.Arrivals == 0 {
		c.Arrivals = 12
	}
	if c.Arrivals < 1 {
		return fmt.Errorf("fleet: need at least one arrival, got %d", c.Arrivals)
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 4 * time.Minute
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 1
	}
	if c.LoadFactor < 0 {
		return fmt.Errorf("fleet: load factor %v must be positive", c.LoadFactor)
	}
	if c.Arbitration == "" {
		c.Arbitration = UtilityGreedy
	}
	switch c.Arbitration {
	case FIFO, FairShare, UtilityGreedy:
	default:
		return fmt.Errorf("fleet: unknown arbitration %q", c.Arbitration)
	}
	if c.Guarded && c.Arbitration != UtilityGreedy {
		return fmt.Errorf("fleet: guarded mode requires utility-greedy arbitration, got %q", c.Arbitration)
	}
	if c.NoContainment && !c.Guarded {
		return fmt.Errorf("fleet: NoContainment only applies to guarded mode")
	}
	if c.MaxDefers == 0 {
		c.MaxDefers = 8
	}
	if c.DriftFactor == 0 {
		c.DriftFactor = 2
	}
	if c.DriftFactor <= 0 {
		return fmt.Errorf("fleet: drift factor %v must be positive", c.DriftFactor)
	}
	return nil
}

// fleetJob is the arbiter's per-job bookkeeping, from offer to finalize.
type fleetJob struct {
	arr  arrival
	jk   *core.Jockey
	prof *profile.Profile
	rec  *JobRecord

	// Admission state.
	deferrals int
	attempted bool
	firstDue  time.Duration // first epoch the offer was considered
	nextTry   time.Duration // earliest next admission attempt
	backoff   time.Duration // current defer backoff (doubles per defer)

	// Post-admission state.
	handle      *cluster.Handle
	ctrl        *control.Controller
	guard       *control.Guard
	relDeadline time.Duration // SLO relative to admission (cluster Start)
	util        utility.Fn
	reservation int
	grant       int
	wanted      int // last epoch's unconstrained desire, for gap attribution
	utilBuf     []float64 // per-grid utility scratch, sized once at admission
	latched     bool
	finalized   bool
}

// dueEntry indexes one pending offer by the earliest epoch it may be
// considered: its arrival time, or its deferred retry time.
type dueEntry struct {
	due time.Duration
	id  int // offer id, the total order within one due time
	fj  *fleetJob
}

type replay struct {
	cfg    *Config
	models *ModelCache
	c      *cluster.Cluster

	// due is a min-heap (by due time, then offer id) over offers not yet
	// admitted or rejected. Epochs where nothing is due pay one peek
	// instead of a scan of every pending offer, so epoch cost tracks
	// active jobs, not admitted-plus-waiting ones. dueScratch collects the
	// offers that fire in one epoch for re-sorting into offer order.
	due        []dueEntry
	dueScratch []dueEntry
	active     []*fleetJob // admitted and unfinished, in admission order

	// Incremental admission bookkeeping: demandCache is the committed load
	// (recomputed once per epoch, bumped per admission, replacing a full
	// demand() sum per due offer), deferred counts pending offers in
	// backoff (replacing a per-epoch scan of every pending offer).
	demandCache int
	deferred    int

	// Arbitration scratch, reused every epoch (see arbiter.go): bidder
	// arena, marginal-utility heap, latched-jobs list, heap-op counter.
	bidders        []bidder
	bheap          []int32
	latchedScratch []*fleetJob
	heapOps        int

	last time.Duration // previous epoch time, for gap integration
	held bool
	res  *Result
	err  error // first epoch-callback error; aborts the chain
}

// Run executes one fleet replay to completion and returns its record.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	models := cfg.Models
	if models == nil {
		models = NewModelCache(stats.DeriveSeed(cfg.Seed, "fleet-models"))
	}
	r := &replay{
		cfg:    &cfg,
		models: models,
		res: &Result{
			Arbitration: cfg.Arbitration,
			Guarded:     cfg.Guarded,
			Budget:      cfg.Budget,
		},
	}
	arrivals, err := genArrivals(&cfg, models)
	if err != nil {
		return nil, err
	}
	r.res.Jobs = make([]JobRecord, len(arrivals))
	for i, arr := range arrivals {
		jk, err := models.Model(arr.shape)
		if err != nil {
			return nil, fmt.Errorf("fleet: model for %s: %w", arr.shape.Key(), err)
		}
		prof, err := models.Profile(arr.shape)
		if err != nil {
			return nil, fmt.Errorf("fleet: profile for %s: %w", arr.shape.Key(), err)
		}
		r.res.Jobs[i] = JobRecord{
			ID:       arr.id,
			Shape:    arr.shape.Key(),
			Value:    arr.value,
			Drift:    arr.drift,
			Arrival:  arr.at,
			Deadline: arr.deadline,
		}
		r.duePush(dueEntry{due: arr.at, id: arr.id, fj: &fleetJob{
			arr:  arr,
			jk:   jk,
			prof: prof,
			rec:  &r.res.Jobs[i],
		}})
	}

	clusterCfg := cluster.Config{
		Machines:        cfg.Machines,
		SlotsPerMachine: cfg.SlotsPerMachine,
		Seed:            stats.DeriveSeed(cfg.Seed, "fleet-cluster"),
		RackOutages:     cfg.RackOutages,
		OnEpoch:         r.epoch,
		EpochPeriod:     cfg.Epoch,
	}
	if cfg.Engine != nil {
		r.c, err = cfg.Engine.Reset(clusterCfg)
	} else {
		r.c, err = cluster.New(clusterCfg)
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: cluster: %w", err)
	}
	// The hold keeps the event loop alive between admissions even when no
	// tracked job is running (e.g. every early job rejected, later ones
	// still pending).
	r.c.Hold()
	r.held = true
	if err := r.c.Run(); err != nil {
		return nil, fmt.Errorf("fleet: replay: %w", err)
	}
	if r.err != nil {
		return nil, r.err
	}
	r.res.Utilization = r.c.Utilization()
	r.res.finalize()
	return r.res, nil
}

// epoch is the arbiter's control tick, invoked by the cluster event loop
// every cfg.Epoch. Order matters and is fixed: integrate allocation gaps
// for the interval that just ended, release finished jobs, process due
// admissions, then re-arbitrate and actuate the grants.
func (r *replay) epoch(now time.Duration) bool {
	if r.err != nil {
		return r.unhold(false)
	}
	r.res.Epochs++
	r.integrateGaps(now)
	r.releaseFinished(now)
	r.admitDue(now)
	granted, latched := r.arbitrate(now)
	if r.cfg.OnEpoch != nil {
		r.cfg.OnEpoch(EpochStats{
			At:       now,
			Active:   len(r.active),
			Deferred: r.deferred,
			Rejected: r.res.Rejected,
			Budget:   r.effectiveBudget(),
			Granted:  granted,
			Latched:  latched,
			Bidders:  len(r.bidders),
			HeapOps:  r.heapOps,
		})
	}
	r.last = now
	if len(r.due) == 0 && len(r.active) == 0 {
		return r.unhold(false)
	}
	return true
}

func (r *replay) unhold(keep bool) bool {
	if r.held {
		r.c.Unhold()
		r.held = false
	}
	return keep
}

// abort records the first internal error and stops the epoch chain; Run
// surfaces the error after the cluster drains.
func (r *replay) abort(err error) {
	if r.err == nil {
		r.err = err
	}
	r.unhold(false)
}

// demand is the fleet's current committed load for admission fit checks:
// each active job's latest unconstrained want. FIFO's wants are frozen at
// the admission reservation, so the static baseline re-sums to the classic
// committed-reservations total; the adaptive disciplines see a running
// job's requirement shrink as it progresses (and a contained panic latch
// count at its reservation — the only promise the arbiter keeps for it),
// which is what frees room to admit a burst instead of turning it away on
// stale worst-case math.
func (r *replay) demand() int {
	sum := 0
	for _, fj := range r.active {
		if fj.latched && !r.cfg.NoContainment {
			sum += fj.reservation
			continue
		}
		sum += fj.wanted
	}
	return sum
}

// effectiveBudget is what the arbiter may actually promise this epoch: the
// configured budget, shrunk to live capacity during outages. Degrading the
// budget (instead of pretending downed slots still exist) is what lets the
// water-fill squeeze the fleet gracefully during a rack outage.
func (r *replay) effectiveBudget() int {
	if cap := r.c.Capacity(); cap < r.cfg.Budget {
		return cap
	}
	return r.cfg.Budget
}

// integrateGaps accumulates, per active job, the token-seconds by which the
// last epoch's grant fell short of the job's unconstrained desire. Latched
// (guard-panic) intervals are charged to the guard bucket, everything else
// to arbitration; the attribution step later blames the dominant bucket.
func (r *replay) integrateGaps(now time.Duration) {
	for _, fj := range r.active {
		end := now
		if fj.handle.Done() {
			res := fj.handle.Result()
			if t := res.Start + res.Completion; t < end {
				end = t
			}
		}
		dt := (end - r.last).Seconds()
		if dt <= 0 || fj.wanted <= fj.grant {
			continue
		}
		gap := float64(fj.wanted-fj.grant) * dt
		if fj.latched {
			fj.rec.GuardGap += gap
		} else {
			fj.rec.ArbitrationGap += gap
		}
	}
}

// releaseFinished finalizes completed jobs and returns their reservations
// to the committed pool.
func (r *replay) releaseFinished(now time.Duration) {
	keep := r.active[:0]
	for _, fj := range r.active {
		if !fj.handle.Done() {
			keep = append(keep, fj)
			continue
		}
		res := fj.handle.Result()
		fj.rec.Completed = true
		fj.rec.Completion = res.Start + res.Completion
		fj.rec.Met = res.Met
		fj.rec.Utility = float64(fj.arr.value) * fj.util.Utility(res.Completion)
		if fj.guard != nil {
			fj.rec.GuardMode = fj.guard.Mode().String()
			for _, ev := range fj.guard.Events() {
				if ev.Kind == control.GuardEventPanic {
					fj.rec.Panics++
				}
			}
		}
		fj.finalized = true
	}
	r.active = keep
}

// admitDue processes, in offer order, every pending job whose arrival (or
// deferred retry) time has come. The due heap hands over exactly the
// offers that fire this epoch, so an epoch where nothing is due costs one
// peek — not a scan of every job still waiting in backoff.
func (r *replay) admitDue(now time.Duration) {
	if len(r.due) == 0 || r.due[0].due > now {
		return
	}
	// The committed-load sum is O(active): take it once for the whole
	// batch of due offers and bump it per admission (admit), instead of
	// re-summing under every offer.
	r.demandCache = r.demand()
	r.dueScratch = r.dueScratch[:0]
	for len(r.due) > 0 && r.due[0].due <= now {
		r.dueScratch = append(r.dueScratch, r.duePop())
	}
	// Offers firing together are considered in offer order — the order
	// the retired full pending scan used — not in (due, id) pop order.
	sort.Slice(r.dueScratch, func(i, j int) bool { return r.dueScratch[i].id < r.dueScratch[j].id })
	for _, e := range r.dueScratch {
		if !r.tryAdmit(now, e.fj) {
			// Deferred: back into the heap at its next retry time.
			r.duePush(dueEntry{due: e.fj.nextTry, id: e.id, fj: e.fj})
		}
	}
}

func dueLess(a, b dueEntry) bool {
	if a.due != b.due {
		return a.due < b.due
	}
	return a.id < b.id
}

func (r *replay) duePush(e dueEntry) {
	r.due = append(r.due, e)
	c := len(r.due) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !dueLess(r.due[c], r.due[p]) {
			break
		}
		r.due[c], r.due[p] = r.due[p], r.due[c]
		c = p
	}
}

func (r *replay) duePop() dueEntry {
	top := r.due[0]
	n := len(r.due) - 1
	r.due[0] = r.due[n]
	r.due = r.due[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if rt := l + 1; rt < n && dueLess(r.due[rt], r.due[l]) {
			m = rt
		}
		if !dueLess(r.due[m], r.due[i]) {
			break
		}
		r.due[i], r.due[m] = r.due[m], r.due[i]
		i = m
	}
	return top
}

// tryAdmit resolves one due offer: admit, reject, or (returning false)
// defer to a later epoch with doubled backoff.
func (r *replay) tryAdmit(now time.Duration, fj *fleetJob) bool {
	if !fj.attempted {
		fj.attempted = true
		fj.firstDue = now
	}
	remaining := fj.arr.at + fj.arr.deadline - now
	need, feasible := fj.jk.RequiredAllocation(remaining)
	if !feasible {
		// No allocation on the grid meets the (possibly already-shrunk)
		// deadline: admitting would burn budget on a certain miss.
		r.reject(fj, "infeasible")
		return true
	}
	// The static baseline fits against the nominal budget — it does not
	// watch live capacity, so during an outage it happily admits into
	// slots that no longer exist. The adaptive disciplines admit against
	// what the cluster can actually deliver right now.
	budget := r.effectiveBudget()
	if r.cfg.Arbitration == FIFO {
		budget = r.cfg.Budget
	}
	if r.demandCache+need > budget {
		if r.cfg.Arbitration == FIFO {
			// The static baseline never revisits: no fit now, no job.
			r.reject(fj, "no-fit")
			return true
		}
		if fj.deferrals >= r.cfg.MaxDefers {
			r.reject(fj, "overload")
			return true
		}
		// Deterministic bounded backoff: 1, 2, 4, ... epochs. Deferring
		// (instead of admitting into an overcommitted budget) is the
		// graceful-degradation path under burst arrivals.
		if fj.backoff <= 0 {
			fj.backoff = r.cfg.Epoch
		} else {
			fj.backoff *= 2
		}
		fj.deferrals++
		if fj.deferrals == 1 {
			r.deferred++
		}
		fj.nextTry = now + fj.backoff
		fj.rec.Deferrals = fj.deferrals
		return false
	}
	if err := r.admit(now, fj, need); err != nil {
		r.abort(err)
		return true
	}
	return true
}

func (r *replay) reject(fj *fleetJob, reason string) {
	if fj.deferrals > 0 {
		r.deferred--
	}
	fj.rec.Rejected = true
	fj.rec.RejectReason = reason
	// A turned-away job is a broken promise at full weight: it scores the
	// utility floor of a hard miss.
	fj.rec.Utility = -float64(fj.arr.value)
	r.res.Rejected++
}

// deadlineCurve is the fleet's per-job utility curve: flat at 1 until the
// SLO, falling linearly to −1 over a grace of max(10 minutes, d/4), and
// floored at −1 after. The floor (unlike utility.Deadline's −1000 tail)
// bounds how much one straggler can damage the aggregate, and a flat tail
// means a hopeless job's marginal utility goes to zero — at which point
// the water-fill clamps it to the floor and hands its tokens to jobs that
// can still win. Graceful degradation, encoded in the curve.
func deadlineCurve(d time.Duration) (utility.Fn, error) {
	grace := d / 4
	if grace < 10*time.Minute {
		grace = 10 * time.Minute
	}
	return utility.NewPiecewiseLinear([]utility.Point{
		{T: 0, U: 1},
		{T: d, U: 1},
		{T: d + grace, U: -1},
	})
}

// admit submits the job with its reservation as the initial grant and
// builds its per-job control stack.
func (r *replay) admit(now time.Duration, fj *fleetJob, need int) error {
	fj.relDeadline = fj.arr.at + fj.arr.deadline - now
	u, err := deadlineCurve(fj.relDeadline)
	if err != nil {
		return fmt.Errorf("fleet: utility curve for job %d: %w", fj.arr.id, err)
	}
	fj.util = u
	jobCfg := cluster.JobConfig{
		Profile:   fj.prof,
		Guarantee: need,
		Weight:    fj.arr.value,
		Deadline:  fj.relDeadline,
		Start:     now,
		Tracked:   true,
		NoTrace:   true,
	}
	if fj.arr.drift {
		jobCfg.Drifts = []cluster.StageDrift{{At: fj.relDeadline / 3, Stage: -1, Factor: r.cfg.DriftFactor}}
	}
	if r.cfg.Arbitration == UtilityGreedy {
		ctrl, err := control.NewController(control.Config{
			Predictor:  fj.jk.Model(),
			Utility:    fj.util,
			Candidates: fj.jk.Grid(),
		})
		if err != nil {
			return fmt.Errorf("fleet: controller for job %d: %w", fj.arr.id, err)
		}
		fj.ctrl = ctrl
		if r.cfg.Guarded {
			guard, err := control.NewGuard(fj.jk.GuardConfig(ctrl, control.GuardTuning{}))
			if err != nil {
				return fmt.Errorf("fleet: guard for job %d: %w", fj.arr.id, err)
			}
			fj.guard = guard
			jobCfg.OnTaskEvent = guard.ObserveTask
		}
	}
	h, err := r.c.Submit(jobCfg)
	if err != nil {
		return fmt.Errorf("fleet: submit job %d: %w", fj.arr.id, err)
	}
	fj.handle = h
	if fj.deferrals > 0 {
		r.deferred--
	}
	fj.reservation = need
	fj.grant = need
	fj.wanted = need
	fj.utilBuf = make([]float64, len(fj.jk.Grid()))
	r.demandCache += need
	fj.rec.Admitted = true
	fj.rec.AdmittedAt = now
	fj.rec.Reservation = need
	// A deferred admission spent its wait on the admission mechanism:
	// charge those token-seconds to the admission bucket. The wait is
	// measured from the first epoch the offer was considered, so plain
	// epoch quantization (shared by every discipline) is not blamed.
	fj.rec.AdmissionGap = (now - fj.firstDue).Seconds() * float64(need)
	r.res.Admitted++
	r.active = append(r.active, fj)
	return nil
}
