// Package scope implements a miniature SCOPE-like job description language
// and its compiler. SCOPE (§2.1 of the paper) is the mash-up language
// Cosmos jobs are written in; a compiler lowers each script into an
// execution plan graph of stages connected by dataflow edges. This package
// plays that role for the reproduction: scripts written in the mini-language
// compile to dag.Job plans that the simulators execute.
//
// The language is a sequence of ';'-terminated statements:
//
//	JOB "name";
//	EXTRACT clicks FROM "clicks.tsv" TASKS 100 SIZE 40.5;
//	PROCESS sessions FROM clicks TASKS 100;        -- one-to-one (pipelined)
//	REDUCE perUser FROM sessions ON userId TASKS 20; -- all-to-all (barrier)
//	JOIN joined FROM perUser, ads TASKS 10;        -- all-to-all on each input
//	AGGREGATE totals FROM joined;                  -- all-to-all, 1 task
//	OUTPUT totals TO "out.tsv";
//
// Comments run from "--" to end of line.
package scope

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokComma
	tokSemicolon
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokKeyword:
		return "keyword"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokComma:
		return "','"
	case tokSemicolon:
		return "';'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string // identifier name, keyword (upper-cased), or literal text
	num  float64
	line int
}

var keywords = map[string]bool{
	"JOB": true, "EXTRACT": true, "PROCESS": true, "REDUCE": true,
	"JOIN": true, "AGGREGATE": true, "OUTPUT": true,
	"FROM": true, "TO": true, "ON": true, "TASKS": true, "SIZE": true,
}

// Error is a compilation error with a line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("scope: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return l.token()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) token() (token, error) {
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", line: l.line}, nil
	case c == ';':
		l.pos++
		return token{kind: tokSemicolon, text: ";", line: l.line}, nil
	case c == '"':
		return l.stringLit()
	case unicode.IsDigit(rune(c)):
		return l.number()
	case unicode.IsLetter(rune(c)) || c == '_':
		return l.word()
	default:
		return token{}, errf(l.line, "unexpected character %q", c)
	}
}

func (l *lexer) stringLit() (token, error) {
	start := l.pos + 1
	i := start
	for i < len(l.src) && l.src[i] != '"' {
		if l.src[i] == '\n' {
			return token{}, errf(l.line, "unterminated string")
		}
		i++
	}
	if i >= len(l.src) {
		return token{}, errf(l.line, "unterminated string")
	}
	t := token{kind: tokString, text: l.src[start:i], line: l.line}
	l.pos = i + 1
	return t, nil
}

func (l *lexer) number() (token, error) {
	start := l.pos
	i := start
	for i < len(l.src) && (unicode.IsDigit(rune(l.src[i])) || l.src[i] == '.') {
		i++
	}
	text := l.src[start:i]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, errf(l.line, "bad number %q", text)
	}
	l.pos = i
	return token{kind: tokNumber, text: text, num: v, line: l.line}, nil
}

func (l *lexer) word() (token, error) {
	start := l.pos
	i := start
	for i < len(l.src) && (unicode.IsLetter(rune(l.src[i])) || unicode.IsDigit(rune(l.src[i])) || l.src[i] == '_') {
		i++
	}
	text := l.src[start:i]
	l.pos = i
	if keywords[strings.ToUpper(text)] {
		return token{kind: tokKeyword, text: strings.ToUpper(text), line: l.line}, nil
	}
	return token{kind: tokIdent, text: text, line: l.line}, nil
}
