package scope

import (
	"strings"
	"testing"

	"github.com/jockeysim/jockey/internal/dag"
)

const clickstream = `
JOB "clickstream";

-- raw inputs
EXTRACT clicks FROM "clicks.tsv" TASKS 100 SIZE 40.5;
EXTRACT ads FROM "ads.tsv" TASKS 20 SIZE 4;

PROCESS sessions FROM clicks;
REDUCE perUser FROM sessions ON userId TASKS 25;
JOIN joined FROM perUser, ads TASKS 10;
AGGREGATE totals FROM joined;
OUTPUT totals TO "out.tsv";
`

func TestCompileClickstream(t *testing.T) {
	job, err := Compile(clickstream)
	if err != nil {
		t.Fatal(err)
	}
	if job.Name != "clickstream" {
		t.Errorf("name = %q", job.Name)
	}
	if job.NumStages() != 6 {
		t.Fatalf("stages = %d, want 6", job.NumStages())
	}
	// PROCESS inherits its input's task count.
	if got := job.Stages[job.StageIndex("sessions")].Tasks; got != 100 {
		t.Errorf("sessions tasks = %d, want 100", got)
	}
	// AGGREGATE defaults to 1 task.
	if got := job.Stages[job.StageIndex("totals")].Tasks; got != 1 {
		t.Errorf("totals tasks = %d, want 1", got)
	}
	// Edges: sessions is one-to-one, perUser is a barrier.
	if job.IsBarrier(job.StageIndex("sessions")) {
		t.Error("PROCESS must not be a barrier")
	}
	for _, name := range []string{"perUser", "joined", "totals"} {
		if !job.IsBarrier(job.StageIndex(name)) {
			t.Errorf("%s must be a barrier", name)
		}
	}
	// JOIN has two inputs.
	if got := len(job.Inputs(job.StageIndex("joined"))); got != 2 {
		t.Errorf("joined inputs = %d", got)
	}
	// SIZE carried through.
	if got := job.Stages[job.StageIndex("clicks")].InputGB; got != 40.5 {
		t.Errorf("clicks size = %v", got)
	}
}

func TestCompileDefaults(t *testing.T) {
	job, err := Compile(`
JOB "d";
EXTRACT a FROM "a";
PROCESS b FROM a;
REDUCE c FROM b;
OUTPUT c TO "o";
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := job.Stages[job.StageIndex("a")].Tasks; got != DefaultExtractTasks {
		t.Errorf("extract default tasks = %d", got)
	}
	if got := job.Stages[job.StageIndex("c")].Tasks; got != DefaultExtractTasks/DefaultReduceFactor {
		t.Errorf("reduce default tasks = %d", got)
	}
}

func TestCompileJoinDefaultTasks(t *testing.T) {
	job, err := Compile(`
JOB "j";
EXTRACT a FROM "a" TASKS 100;
EXTRACT b FROM "b" TASKS 10;
JOIN j FROM a, b;
OUTPUT j TO "o";
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := job.Stages[job.StageIndex("j")].Tasks; got != 10 {
		t.Errorf("join default tasks = %d, want min input (10)", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no job", `EXTRACT a FROM "f"; OUTPUT a TO "o";`, "must start with JOB"},
		{"job not first", `EXTRACT a FROM "f"; JOB "x"; OUTPUT a TO "o";`, "must be the first statement"},
		{"double job", `JOB "x"; JOB "y"; EXTRACT a FROM "f"; OUTPUT a TO "o";`, "duplicate JOB"},
		{"empty", `JOB "x";`, "no operators"},
		{"no output", `JOB "x"; EXTRACT a FROM "f";`, "no OUTPUT"},
		{"undefined input", `JOB "x"; PROCESS b FROM a; OUTPUT b TO "o";`, "undefined dataset"},
		{"undefined output", `JOB "x"; EXTRACT a FROM "f"; OUTPUT b TO "o";`, "undefined dataset"},
		{"redefined", `JOB "x"; EXTRACT a FROM "f"; EXTRACT a FROM "g"; OUTPUT a TO "o";`, "defined twice"},
		{"dead stage", `JOB "x"; EXTRACT a FROM "f"; EXTRACT b FROM "g"; OUTPUT a TO "o";`, "dead stage"},
		{"join one input", `JOB "x"; EXTRACT a FROM "f"; JOIN j FROM a; OUTPUT j TO "o";`, "at least two"},
		{"bad tasks", `JOB "x"; EXTRACT a FROM "f" TASKS 0; OUTPUT a TO "o";`, "positive integer"},
		{"frac tasks", `JOB "x"; EXTRACT a FROM "f" TASKS 2.5; OUTPUT a TO "o";`, "positive integer"},
		{"size on process", `JOB "x"; EXTRACT a FROM "f"; PROCESS b FROM a SIZE 3; OUTPUT b TO "o";`, "only valid on EXTRACT"},
		{"missing semi", `JOB "x"
EXTRACT a FROM "f"; OUTPUT a TO "o";`, "';'"},
		{"unterminated string", `JOB "x;`, "unterminated"},
		{"bad char", `JOB "x"; @`, "unexpected character"},
		{"stmt starts with ident", `JOB "x"; foo bar;`, "statement keyword"},
		{"keyword misuse", `JOB "x"; FROM a;`, "unexpected keyword"},
		{"bad number", `JOB "x"; EXTRACT a FROM "f" TASKS 1.2.3; OUTPUT a TO "o";`, "bad number"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Compile("JOB \"x\";\nEXTRACT a FROM \"f\";\nPROCESS b FROM zzz;\nOUTPUT b TO \"o\";")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 3 {
		t.Errorf("line = %d, want 3", se.Line)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("message %q should mention the line", err.Error())
	}
}

func TestCompiledPlanIsValidDAG(t *testing.T) {
	job, err := Compile(clickstream)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	// Should be runnable end to end: topological order covers all stages.
	if len(job.TopoOrder()) != job.NumStages() {
		t.Error("topo order incomplete")
	}
	// Roots are exactly the EXTRACT stages.
	roots := job.Roots()
	if len(roots) != 2 {
		t.Errorf("roots = %v", roots)
	}
	for _, r := range roots {
		name := job.Stages[r].Name
		if name != "clicks" && name != "ads" {
			t.Errorf("unexpected root %q", name)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	job, err := Compile("JOB \"c\"; -- trailing comment\n-- full line\nEXTRACT a FROM \"f\";\n\n\nOUTPUT a TO \"o\";")
	if err != nil {
		t.Fatal(err)
	}
	if job.NumStages() != 1 {
		t.Errorf("stages = %d", job.NumStages())
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	job, err := Compile(`job "k"; extract a from "f" tasks 3; output a to "o";`)
	if err != nil {
		t.Fatal(err)
	}
	if got := job.Stages[0].Tasks; got != 3 {
		t.Errorf("tasks = %d", got)
	}
}

func TestMapReduceShape(t *testing.T) {
	// The canonical "black circle connected to a blue triangle" of Fig. 3.
	job, err := Compile(`
JOB "wordcount";
EXTRACT words FROM "docs" TASKS 50;
REDUCE counts FROM words ON word TASKS 10;
OUTPUT counts TO "counts.tsv";
`)
	if err != nil {
		t.Fatal(err)
	}
	if job.NumStages() != 2 || job.NumBarrierStages() != 1 {
		t.Errorf("shape wrong: %v", job)
	}
	if job.Edges[0].Kind != dag.AllToAll {
		t.Error("reduce edge must be all-to-all")
	}
}
