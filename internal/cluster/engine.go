package cluster

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/eventq"
	"github.com/jockeysim/jockey/internal/invariant"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/trace"
	"github.com/jockeysim/jockey/internal/utility"
)

type evKind int

const (
	evArrival evKind = iota
	evTaskEnd
	evControlTick
	evDeadlineChange
	evMachineFail
	evMachineRecover
	evJobSample
	evSpecTick
	evStageDrift
	evRackOutage
	evContention
	evEpoch
)

type event struct {
	kind    evKind
	job     int
	stage   int
	task    int
	attempt int
	failed  bool
	dup     bool // the attempt is a speculative duplicate
	machine int
	change  int // index into DeadlineChanges, Drifts, or RackOutages
}

// Run processes events until every tracked job has completed and every Hold
// has been released (or the event queue drains, or MaxSimTime is exceeded,
// which returns an error).
func (c *Cluster) Run() error {
	for c.tracked+c.holds > 0 {
		at, ev, ok := c.q.Pop()
		if !ok {
			return fmt.Errorf("cluster: event queue drained with %d tracked jobs unfinished and %d holds open (%s)",
				c.tracked, c.holds, c.unfinishedTracked())
		}
		if at > c.cfg.MaxSimTime {
			return fmt.Errorf("cluster: exceeded max simulated time %v with %d tracked jobs unfinished (%s)",
				c.cfg.MaxSimTime, c.tracked, c.unfinishedTracked())
		}
		c.accrueUtil(at)
		c.now = at
		switch ev.kind {
		case evArrival:
			c.handleArrival(ev.job)
		case evTaskEnd:
			c.handleTaskEnd(ev)
		case evControlTick:
			c.handleControlTick(ev.job)
		case evDeadlineChange:
			c.handleDeadlineChange(ev)
		case evMachineFail:
			c.handleMachineFail()
		case evMachineRecover:
			c.handleMachineRecover(ev.machine)
		case evJobSample:
			c.handleJobSample(ev.job)
		case evSpecTick:
			c.handleSpecTick(ev.job)
		case evStageDrift:
			c.handleStageDrift(ev)
		case evRackOutage:
			c.handleRackOutage(ev.change)
		case evContention:
			c.reschedule() // effective guarantees changed at this boundary
		case evEpoch:
			c.handleEpoch()
		}
	}
	return nil
}

// handleEpoch runs the arbiter hook, keeps the epoch chain alive while the
// hook asks for it, and performs the scheduling pass that puts any guarantee
// changes (and same-time submissions) into effect.
func (c *Cluster) handleEpoch() {
	if c.cfg.OnEpoch == nil {
		return
	}
	if c.cfg.OnEpoch(c.now) {
		c.q.Push(c.now+c.cfg.EpochPeriod, event{kind: evEpoch})
	}
	c.reschedule()
}

// unfinishedTracked names the tracked jobs that have not completed, for
// debuggable failure messages.
func (c *Cluster) unfinishedTracked() string {
	names := ""
	for _, jr := range c.jobs {
		if jr.cfg.Tracked && !jr.completed {
			if names != "" {
				names += ", "
			}
			names += jr.job.Name
		}
	}
	return names
}

// accrueUtil folds the interval since the previous event into the
// utilization integral. The counts are maintained incrementally, so this is
// O(1) per event where it once scanned every job and machine.
//
//jockey:hotpath
func (c *Cluster) accrueUtil(now time.Duration) {
	dt := now - c.lastUtilTime
	if dt <= 0 {
		return
	}
	sec := dt.Seconds()
	c.busySecs += float64(c.totalRunning) * sec
	c.availSecs += float64(c.upCap) * sec
	c.lastUtilTime = now
}

func (c *Cluster) handleArrival(id int) {
	jr := c.jobs[id]
	jr.arrived = true
	jr.start = c.now
	jr.lastAllocAt = c.now
	c.liveAdd(jr)
	if jr.cfg.Tracked && !jr.cfg.NoTrace {
		// Traces outlive the run (results retain them), so they are always
		// freshly allocated, never pooled.
		jr.result.Trace = trace.New(jr.job.Name, jr.job.NumStages())
	}
	for s := 0; s < jr.job.NumStages(); s++ {
		for task := 0; task < jr.job.Stages[s].Tasks; task++ {
			if jr.remDeps[s][task] == 0 {
				jr.markReady(c.now, s, task)
			}
		}
	}
	if jr.cfg.Policy != nil {
		c.controlDecision(jr)
		c.q.Push(c.now+jr.cfg.ControlPeriod, event{kind: evControlTick, job: id})
	}
	for i, dc := range jr.cfg.DeadlineChanges {
		c.q.Push(jr.start+dc.At, event{kind: evDeadlineChange, job: id, change: i})
	}
	if jr.cfg.OnSample != nil {
		if jr.cfg.SamplePeriod <= 0 {
			jr.cfg.SamplePeriod = time.Minute
		}
		c.q.Push(c.now+jr.cfg.SamplePeriod, event{kind: evJobSample, job: id})
	}
	if jr.cfg.SpeculativeThreshold > 0 {
		c.q.Push(c.now+specTickPeriod, event{kind: evSpecTick, job: id})
	}
	for i, d := range jr.cfg.Drifts {
		if d.At == 0 {
			// A drift at the very start must cover the arrival dispatch too.
			c.applyDrift(jr, i)
			continue
		}
		c.q.Push(jr.start+d.At, event{kind: evStageDrift, job: id, change: i})
	}
	c.reschedule()
}

// specTickPeriod is how often speculation-enabled jobs re-check for
// stragglers even when no other event fires (the tail of a job is exactly
// when the event queue goes quiet).
const specTickPeriod = 15 * time.Second

//jockey:hotpath
func (c *Cluster) handleSpecTick(id int) {
	jr := c.jobs[id]
	// Stop the tick chain the moment the job can no longer speculate: a
	// completed (or unspeculated) job must not keep the event queue alive.
	if jr.completed || jr.tasksLeft == 0 || jr.cfg.SpeculativeThreshold <= 0 {
		return
	}
	c.q.Push(c.now+specTickPeriod, event{kind: evSpecTick, job: id})
	c.reschedule()
}

func (c *Cluster) handleStageDrift(ev event) {
	jr := c.jobs[ev.job]
	if jr.completed {
		return
	}
	c.applyDrift(jr, ev.change)
}

// applyDrift folds one StageDrift into the job's runtime factors.
// Already-running attempts keep their sampled durations; only attempts
// dispatched from now on see the drift.
//
//jockey:hotpath
func (c *Cluster) applyDrift(jr *jobRun, idx int) {
	d := jr.cfg.Drifts[idx]
	if d.Stage < 0 {
		for s := range jr.driftFactor {
			jr.driftFactor[s] *= d.Factor
		}
	} else {
		jr.driftFactor[d.Stage] *= d.Factor
	}
}

func (c *Cluster) handleRackOutage(idx int) {
	r := c.cfg.RackOutages[idx]
	until := c.now + r.Duration
	for mi := r.FirstMachine; mi < r.FirstMachine+r.Machines; mi++ {
		if c.upBits.get(mi) {
			c.killMachine(mi)
		}
		// An already-down machine (MTBF failure or overlapping rack) just has
		// its downtime extended; its earlier recover event goes stale.
		if until > c.mDown[mi] {
			c.mDown[mi] = until
			c.q.Push(until, event{kind: evMachineRecover, machine: mi})
		}
	}
	c.reschedule()
}

// contentionFrac returns the guarantee-scaling factor in force now (1 when
// no contention window is open; overlapping windows take the tightest).
//
//jockey:hotpath
func (c *Cluster) contentionFrac() float64 {
	f := 1.0
	for _, w := range c.cfg.Contention {
		if c.now >= w.From && c.now < w.To && w.Frac < f {
			f = w.Frac
		}
	}
	return f
}

// effectiveGuarantee returns how many guaranteed tokens the scheduler
// actually honors for the job right now. Allocation accounting still charges
// the nominal guarantee: during contention the job pays for a promise the
// cluster breaks.
//
//jockey:hotpath
func (c *Cluster) effectiveGuarantee(jr *jobRun) int {
	f := c.contentionFrac()
	if f >= 1 {
		return jr.guarantee
	}
	return int(float64(jr.guarantee) * f)
}

func (c *Cluster) handleJobSample(id int) {
	jr := c.jobs[id]
	if jr.completed {
		return
	}
	jr.cfg.OnSample(c.now-jr.start, jr.state(c.now))
	c.q.Push(c.now+jr.cfg.SamplePeriod, event{kind: evJobSample, job: id})
}

func (c *Cluster) handleControlTick(id int) {
	jr := c.jobs[id]
	if jr.completed {
		return
	}
	c.controlDecision(jr)
	c.q.Push(c.now+jr.cfg.ControlPeriod, event{kind: evControlTick, job: id})
	c.reschedule()
}

func (c *Cluster) controlDecision(jr *jobRun) {
	st := jr.state(c.now)
	d := jr.cfg.Policy.Decide(st)
	jr.accrueAlloc(c.now)
	jr.setGuarantee(c.now, d.Granted)
	if jr.cfg.OnDecision != nil {
		jr.cfg.OnDecision(c.now-jr.start, d)
	}
	if jr.result.Trace != nil {
		oracle := model.Oracle(jr.p.TotalWork(), jr.deadline)
		jr.result.Trace.AddAlloc(trace.AllocPoint{
			T:         c.now - jr.start,
			Raw:       d.Raw,
			Granted:   d.Granted,
			Running:   jr.liveRunning,
			Oracle:    oracle,
			Progress:  d.Progress,
			Predicted: d.Predicted,
			Mode:      d.Mode,
			Deviation: d.Deviation,
		})
	}
}

func (c *Cluster) handleDeadlineChange(ev event) {
	jr := c.jobs[ev.job]
	if jr.completed {
		return
	}
	dc := jr.cfg.DeadlineChanges[ev.change]
	jr.deadline = dc.Deadline
	if jr.cfg.Policy != nil {
		jr.cfg.Policy.ChangeUtility(utility.Deadline(dc.Deadline))
		// React immediately rather than waiting for the next tick.
		c.controlDecision(jr)
	}
	c.reschedule()
}

func (c *Cluster) handleTaskEnd(ev event) {
	jr := c.jobs[ev.job]
	st := &c.store
	var s int32
	if ev.dup {
		s = jr.dupSlot[ev.stage][ev.task]
	} else {
		s = jr.slot[ev.stage][ev.task]
	}
	if s < 0 || int(st.attempt[s]) != ev.attempt {
		return // stale event: the attempt was evicted, killed, or outraced
	}
	jr.accrueAlloc(c.now)
	machine := int(st.machine[s])
	spawnedGuar := st.flags[s]&flagSpawnGuar != 0
	c.detach(jr, s)
	c.recordAttempt(jr, s, c.now, ev.failed)
	// The other live copy of the task, if any (the duplicate when the
	// primary just ended, or vice versa).
	var sibling int32
	if ev.dup {
		sibling = jr.slot[ev.stage][ev.task]
	} else {
		sibling = jr.dupSlot[ev.stage][ev.task]
	}
	if ev.failed {
		st.release(s)
		if sibling >= 0 {
			// The other copy carries on; nothing to requeue.
			c.reschedule()
			return
		}
		jr.attempts[ev.stage][ev.task]++
		jr.markReady(c.now, ev.stage, ev.task)
		c.reschedule()
		return
	}
	if sibling >= 0 {
		// This copy won the race: cancel the loser, discarding its work.
		c.cancelCopy(jr, sibling)
	}
	if spawnedGuar {
		jr.guarDone++
	} else {
		jr.spareDone++
	}
	if len(jr.job.Inputs(ev.stage)) == 0 {
		jr.rootDone++
		for _, mi := range c.replicaMachines(jr, ev.stage, ev.task) {
			if mi == machine {
				jr.localDone++
				break
			}
		}
	}
	st.release(s)
	jr.done[ev.stage][ev.task] = true
	jr.doneCount[ev.stage]++
	jr.tasksLeft--
	for _, cons := range jr.consumers[ev.stage][ev.task] {
		jr.remDeps[cons.stage][cons.task]--
		if jr.remDeps[cons.stage][cons.task] == 0 {
			jr.markReady(c.now, cons.stage, cons.task)
		}
	}
	if jr.doneCount[ev.stage] == jr.job.Stages[ev.stage].Tasks {
		for _, edge := range jr.job.Outputs(ev.stage) {
			if edge.Kind != dag.AllToAll {
				continue
			}
			for t := 0; t < jr.job.Stages[edge.To].Tasks; t++ {
				jr.remDeps[edge.To][t]--
				if jr.remDeps[edge.To][t] == 0 {
					jr.markReady(c.now, edge.To, t)
				}
			}
		}
	}
	if jr.tasksLeft == 0 {
		c.completeJob(jr)
	}
	c.reschedule()
}

// recordAttempt emits the trace/callback record for an attempt that just
// ended. The slot is still readable (detached but not yet released).
func (c *Cluster) recordAttempt(jr *jobRun, s int32, ended time.Duration, failed bool) {
	if jr.result.Trace == nil && jr.cfg.OnTaskEvent == nil {
		return
	}
	st := &c.store
	started := st.execStart[s]
	if started > ended {
		started = ended // killed during its init delay
	}
	stage, task := int(st.stage[s]), int(st.task[s])
	e := trace.TaskEvent{
		Stage:      stage,
		Task:       task,
		Attempt:    int(st.attempt[s]),
		Queued:     jr.queuedAt[stage][task] - jr.start,
		Dispatched: st.startedAt[s] - jr.start,
		Started:    started - jr.start,
		Ended:      ended - jr.start,
		Failed:     failed,
	}
	if jr.result.Trace != nil {
		jr.result.Trace.AddTask(e)
	}
	if jr.cfg.OnTaskEvent != nil {
		jr.cfg.OnTaskEvent(e)
	}
}

// liveAdd inserts an arriving job into the live index, keeping job-id order
// (arrival events can fire out of submission order when Start times differ).
func (c *Cluster) liveAdd(jr *jobRun) {
	c.live = append(c.live, jr)
	for i := len(c.live) - 1; i > 0 && c.live[i-1].id > jr.id; i-- {
		c.live[i], c.live[i-1] = c.live[i-1], c.live[i]
	}
}

// liveRemove drops a completed job from the live index. O(live), once per
// job lifetime.
func (c *Cluster) liveRemove(jr *jobRun) {
	for i, other := range c.live {
		if other == jr {
			c.live = append(c.live[:i], c.live[i+1:]...)
			return
		}
	}
}

func (c *Cluster) completeJob(jr *jobRun) {
	jr.accrueAlloc(c.now)
	jr.completed = true
	c.liveRemove(jr)
	jr.setGuarantee(c.now, 0)
	completion := c.now - jr.start
	totalWork := jr.p.TotalWork()
	if jr.result.Trace != nil {
		jr.result.Trace.Completion = completion
		totalWork = jr.result.Trace.TotalWork()
	}
	oracle := model.Oracle(totalWork, jr.deadline)
	done := jr.guarDone + jr.spareDone
	spareFrac := 0.0
	if done > 0 {
		spareFrac = float64(jr.spareDone) / float64(done)
	}
	jr.result = Result{
		Name:               jr.job.Name,
		Start:              jr.start,
		Completion:         completion,
		Deadline:           jr.deadline,
		Met:                jr.deadline == 0 || completion <= jr.deadline,
		Oracle:             oracle,
		AllocTokenSeconds:  jr.allocSecs,
		OracleTokenSeconds: float64(oracle) * jr.deadline.Seconds(),
		UsedTokenSeconds:   jr.usedSecs,
		SpareTaskFraction:  spareFrac,
		Evictions:          jr.evictions,
		Duplicates:         jr.duplicates,
		LocalityFraction:   localityFraction(jr),
		Trace:              jr.result.Trace,
	}
	if jr.cfg.Tracked {
		c.tracked--
	}
}

func (c *Cluster) handleMachineFail() {
	// Pick a random up machine (the k-th set bit of the up set is the k-th
	// up machine in index order, reproducing the retired slice build without
	// its per-failure allocation); if none, just schedule the next failure.
	if c.upCount > 0 {
		mi := c.upBits.selectK(c.rng.IntN(c.upCount))
		c.killMachine(mi)
		rec := c.cfg.MachineRecovery.Sample(c.rng)
		if c.now+rec > c.mDown[mi] {
			c.mDown[mi] = c.now + rec
		}
		c.q.Push(c.now+rec, event{kind: evMachineRecover, machine: mi})
	}
	c.scheduleNextMachineFailure()
	c.reschedule()
}

func (c *Cluster) killMachine(mi int) {
	c.upBits.clear(mi)
	c.availBits.clear(mi)
	c.upCount--
	c.upCap -= c.cfg.SlotsPerMachine
	st := &c.store
	victims := c.scratchSlots[:0]
	for s := c.mHead[mi]; s >= 0; s = st.nextM[s] {
		victims = append(victims, s)
	}
	// Evict in (job, start time, stage, task) order — job submission order,
	// then the per-job total order — matching the retired per-job map walk
	// plus sort. Victim counts are bounded by the machine's slots, so an
	// insertion sort is both allocation-free and fast.
	for i := 1; i < len(victims); i++ {
		for j := i; j > 0 && c.victimLess(victims[j], victims[j-1]); j-- {
			victims[j], victims[j-1] = victims[j-1], victims[j]
		}
	}
	for _, s := range victims {
		c.evictTask(c.jobs[st.job[s]], s)
	}
	c.scratchSlots = victims
	c.mUsed[mi] = 0
}

//jockey:hotpath
func (c *Cluster) victimLess(a, b int32) bool {
	if c.store.job[a] != c.store.job[b] {
		return c.store.job[a] < c.store.job[b]
	}
	return c.store.less(a, b)
}

// detach removes an attempt from every index that tracks it — the slot
// table, its class heaps, the machine task list, the machine's used count,
// and the running totals — leaving the slot readable until released.
//
//jockey:hotpath
func (c *Cluster) detach(jr *jobRun, s int32) {
	st := &c.store
	stage, task := st.stage[s], st.task[s]
	if st.flags[s]&flagDup != 0 {
		jr.dupSlot[stage][task] = -1
		st.maxRemove(&jr.dupHeap, s)
	} else {
		jr.slot[stage][task] = -1
		if st.flags[s]&flagGuar != 0 {
			st.maxRemove(&jr.guarHeap, s)
			jr.guarCount--
		} else {
			st.maxRemove(&jr.spareMax, s)
			st.minRemove(&jr.spareMin, s)
		}
		jr.liveRunning--
		c.totalRunning--
	}
	mi := int(st.machine[s])
	if prev := st.prevM[s]; prev >= 0 {
		st.nextM[prev] = st.nextM[s]
	} else {
		c.mHead[mi] = st.nextM[s]
	}
	if next := st.nextM[s]; next >= 0 {
		st.prevM[next] = st.prevM[s]
	}
	c.mUsed[mi]--
	if c.upBits.get(mi) {
		c.availBits.set(mi) // a slot just freed on an up machine
	}
}

// attachMachine links a freshly dispatched attempt into its machine's task
// list and claims the slot token.
//
//jockey:hotpath
func (c *Cluster) attachMachine(mi int, s int32) {
	st := &c.store
	st.prevM[s] = -1
	st.nextM[s] = c.mHead[mi]
	if head := c.mHead[mi]; head >= 0 {
		st.prevM[head] = s
	}
	c.mHead[mi] = s
	c.mUsed[mi]++
	if int(c.mUsed[mi]) >= c.cfg.SlotsPerMachine {
		c.availBits.clear(mi)
	}
}

// cancelCopy kills the losing copy of a speculated task: its slot frees and
// its work is discarded, but the task is NOT requeued (the winner already
// completed it).
func (c *Cluster) cancelCopy(jr *jobRun, s int32) {
	c.detach(jr, s)
	c.recordAttempt(jr, s, c.now, true)
	c.store.release(s)
}

// evictTask kills a running task attempt: its work is lost and the pending
// end event becomes stale. The task re-queues unless another copy of it is
// still running.
func (c *Cluster) evictTask(jr *jobRun, s int32) {
	jr.accrueAlloc(c.now)
	st := &c.store
	stage, task := int(st.stage[s]), int(st.task[s])
	jr.evictions++
	if st.flags[s]&flagDup != 0 {
		c.cancelCopy(jr, s)
		if jr.slot[stage][task] < 0 {
			// The duplicate was the only live copy (the primary had already
			// failed or been evicted): requeue the task.
			jr.attempts[stage][task]++
			jr.markReady(c.now, stage, task)
		}
		return
	}
	c.detach(jr, s)
	c.recordAttempt(jr, s, c.now, true)
	st.release(s)
	if jr.dupSlot[stage][task] >= 0 {
		// The duplicate carries on; no requeue.
		return
	}
	jr.attempts[stage][task]++
	jr.markReady(c.now, stage, task)
}

func (c *Cluster) handleMachineRecover(mi int) {
	if c.now < c.mDown[mi] {
		return // stale: an overlapping outage extended this machine's downtime
	}
	if !c.upBits.get(mi) {
		c.upBits.set(mi)
		c.upCount++
		c.upCap += c.cfg.SlotsPerMachine
		if int(c.mUsed[mi]) < c.cfg.SlotsPerMachine {
			c.availBits.set(mi)
		}
	}
	c.reschedule()
}

func (c *Cluster) scheduleNextMachineFailure() {
	mean := c.cfg.MachineMTBF.Seconds() / float64(len(c.mUsed))
	gap := time.Duration(c.rng.ExpFloat64() * mean * float64(time.Second))
	if gap <= 0 {
		gap = time.Second
	}
	c.q.Push(c.now+gap, event{kind: evMachineFail})
}

// replicaMachines returns the machines holding the input partition of a
// root-stage task, derived deterministically from the job and task
// identity (the DFS placement).
func (c *Cluster) replicaMachines(jr *jobRun, stage, task int) []int {
	if len(jr.job.Inputs(stage)) > 0 {
		return nil // only root stages read DFS partitions directly
	}
	n := len(c.mUsed)
	h := stats.DeriveSeedInt(uint64(jr.id)<<32|uint64(stage), task)
	out := c.scratchReplicas[:0]
	stride := 1
	if n > 1 {
		stride = 1 + int((h>>40)%uint64(n-1))
	}
	first := int(h % uint64(n))
	for i := 0; i < c.cfg.Replicas && i < n; i++ {
		out = append(out, (first+i*stride)%n)
	}
	c.scratchReplicas = out
	return out
}

// freeMachineFor returns a machine with a free slot for the given task,
// preferring machines holding the task's input replicas; -1 if the cluster
// is full.
//
//jockey:hotpath
func (c *Cluster) freeMachineFor(jr *jobRun, stage, task int) int {
	for _, mi := range c.replicaMachines(jr, stage, task) {
		if c.availBits.get(mi) {
			return mi
		}
	}
	return c.freeMachine()
}

// freeMachine returns the lowest-indexed machine with a free slot, or -1.
// availBits indexes exactly the up machines with spare slots, so this is a
// bitmap scan instead of the full-cluster walk of earlier engines.
//
//jockey:hotpath
func (c *Cluster) freeMachine() int {
	return c.availBits.first()
}

// reschedule enforces the token-sharing policy: reclassify running tasks,
// satisfy guaranteed demand (evicting spare tasks when necessary), then
// hand out spare capacity round-robin. Every task dispatched by the pass
// buffered its end event; the bulk push at the end amortizes one queue
// restructure over the whole dispatch wave (and assigns the exact insertion
// sequences the per-task pushes would have, since nothing else pushes
// mid-pass).
func (c *Cluster) reschedule() {
	c.reclassify()
	c.dispatchGuaranteed()
	c.dispatchSpare()
	if len(c.endBatch) > 0 {
		c.q.PushBatch(c.endBatch)
		c.endBatch = c.endBatch[:0]
	}
}

// reclassify restores, per job, the invariant that the guaranteed class is
// exactly the job's effectiveGuarantee() earliest-started primaries (by the
// taskStore.less total order) and everything else is spare. Earlier engines
// re-derived the partition from scratch with a full sort per pass; here it is
// repaired incrementally from the class heaps:
//
//  1. count rebalance — while the guaranteed class is too big, demote its
//     maximum (latest-started) member; while too small, promote the spare
//     minimum (earliest-started);
//  2. boundary repair — while some spare started before some guaranteed task
//     (min(spare) < max(guaranteed)), swap the two.
//
// Step 2 strictly shrinks the number of cross-class inversions each swap, so
// it terminates with min(spare) ≥ max(guaranteed): with the class sizes fixed
// by step 1, that is precisely the rank partition the full sort produced.
//
//jockey:hotpath
func (c *Cluster) reclassify() {
	st := &c.store
	for _, jr := range c.live {
		if jr.liveRunning == 0 {
			continue
		}
		target := c.effectiveGuarantee(jr)
		if jr.liveRunning < target {
			target = jr.liveRunning
		}
		for jr.guarCount > target {
			s := jr.guarHeap.s[0]
			st.maxRemove(&jr.guarHeap, s)
			st.flags[s] &^= flagGuar
			st.maxPush(&jr.spareMax, s)
			st.minPush(&jr.spareMin, s)
			jr.guarCount--
		}
		for jr.guarCount < target {
			s := jr.spareMin.s[0]
			st.minRemove(&jr.spareMin, s)
			st.maxRemove(&jr.spareMax, s)
			st.flags[s] |= flagGuar
			st.maxPush(&jr.guarHeap, s)
			jr.guarCount++
		}
		for len(jr.spareMin.s) > 0 && len(jr.guarHeap.s) > 0 &&
			st.less(jr.spareMin.s[0], jr.guarHeap.s[0]) {
			g := jr.guarHeap.s[0]
			sp := jr.spareMin.s[0]
			st.maxRemove(&jr.guarHeap, g)
			st.flags[g] &^= flagGuar
			st.maxPush(&jr.spareMax, g)
			st.minPush(&jr.spareMin, g)
			st.minRemove(&jr.spareMin, sp)
			st.maxRemove(&jr.spareMax, sp)
			st.flags[sp] |= flagGuar
			st.maxPush(&jr.guarHeap, sp)
		}
	}
}

// guaranteedOrder returns the live jobs with tracked (SLO) jobs first, then
// arrival order: admission control promised SLO jobs their guarantees, so
// they win when guarantees are over-subscribed. Only live jobs are walked —
// completed and not-yet-arrived jobs were skipped by the dispatcher anyway.
func (c *Cluster) guaranteedOrder() []*jobRun {
	out := c.scratchJobs[:0]
	for _, jr := range c.live {
		if jr.cfg.Tracked {
			out = append(out, jr)
		}
	}
	for _, jr := range c.live {
		if !jr.cfg.Tracked {
			out = append(out, jr)
		}
	}
	c.scratchJobs = out
	return out
}

func (c *Cluster) dispatchGuaranteed() {
	for _, jr := range c.guaranteedOrder() {
		eff := c.effectiveGuarantee(jr)
		for jr.guarCount < eff && jr.readyLen() > 0 {
			r, _ := jr.popReady()
			mi := c.freeMachineFor(jr, r.stage, r.task)
			if mi < 0 {
				vs, vjob := c.youngestSpare()
				if vs < 0 {
					// Every slot is running guaranteed work; put the task
					// back for the next scheduling pass.
					jr.markReady(c.now, r.stage, r.task)
					return
				}
				mi = int(c.store.machine[vs])
				c.evictTask(vjob, vs)
			}
			c.startTask(jr, r, mi, true)
		}
	}
}

// youngestSpare finds the most recently started spare task in the cluster —
// the cheapest one to evict. Each job's latest-started spare is the max of
// the tops of its two spare-class max-heaps (spare primaries and speculative
// duplicates), so the cluster-wide pick costs one comparison per job instead
// of the full task scan of earlier engines. Ties across jobs cannot break
// differently from the retired scan: it compared with a strict less, so the
// first job in c.jobs order kept the pick, exactly as this loop does.
//
//jockey:hotpath
func (c *Cluster) youngestSpare() (int32, *jobRun) {
	st := &c.store
	best := int32(-1)
	var bestJob *jobRun
	for _, jr := range c.live {
		cand := int32(-1)
		if len(jr.spareMax.s) > 0 {
			cand = jr.spareMax.s[0]
		}
		if len(jr.dupHeap.s) > 0 && (cand < 0 || st.less(cand, jr.dupHeap.s[0])) {
			cand = jr.dupHeap.s[0]
		}
		if cand >= 0 && (best < 0 || st.less(best, cand)) {
			best, bestJob = cand, jr
		}
	}
	return best, bestJob
}

func (c *Cluster) dispatchSpare() {
	if len(c.live) == 0 {
		return
	}
	idle := 0
	for {
		mi := c.freeMachine()
		if mi < 0 {
			return
		}
		// Smooth weighted round-robin over jobs with pending work: each
		// eligible job accrues credit proportional to its weight, the
		// highest-credit job gets the slot, and its credit is charged the
		// total weight. Over time a job receives spare slots in proportion
		// to its weight (the cluster's weighted fair sharing).
		eligible := c.scratchJobs[:0]
		totalWeight := 0.0
		for _, jr := range c.live {
			if jr.cfg.NoSpare || jr.readyLen() == 0 {
				continue
			}
			eligible = append(eligible, jr)
			totalWeight += float64(jr.cfg.Weight)
		}
		c.scratchJobs = eligible
		dispatched := false
		if len(eligible) > 0 {
			var pick *jobRun
			for _, jr := range eligible {
				jr.spareCredit += float64(jr.cfg.Weight)
				if pick == nil || jr.spareCredit > pick.spareCredit {
					pick = jr
				}
			}
			pick.spareCredit -= totalWeight
			r, _ := pick.popReady()
			if local := c.freeMachineFor(pick, r.stage, r.task); local >= 0 {
				mi = local
			}
			c.startTask(pick, r, mi, false)
			dispatched = true
		}
		if !dispatched {
			// No fresh work anywhere: spend truly idle slots on speculative
			// duplicates of straggling tasks.
			if !c.dispatchDuplicate(mi) {
				return
			}
			continue
		}
		idle++
		if idle > 1<<20 { // guard the Assertf so its args only box on failure
			invariant.Assertf(false, "cluster: spare dispatch runaway at t=%v (machine %d)", c.now, mi)
		}
	}
}

// dispatchDuplicate launches a speculative copy of the most-overdue
// straggler (across speculation-enabled jobs) on the given machine. It
// returns false if no task qualifies. Candidates are every unspeculated
// running primary, walked through the job's two primary heaps (heap layout
// order, which is fine: the scan keeps a strict best with deterministic
// tie-breaks, so the winner is order-independent, exactly as with the
// retired map walk).
//
//jockey:hotpath
func (c *Cluster) dispatchDuplicate(mi int) bool {
	st := &c.store
	worst := int32(-1)
	var worstJob *jobRun
	var worstRatio float64
	for _, jr := range c.live {
		th := jr.cfg.SpeculativeThreshold
		if th <= 0 {
			continue
		}
		for pass := 0; pass < 2; pass++ {
			h := jr.guarHeap.s
			if pass == 1 {
				h = jr.spareMax.s
			}
			for _, s := range h {
				if jr.dupSlot[st.stage[s]][st.task[s]] >= 0 {
					continue // already speculated
				}
				p90 := jr.stageP90[st.stage[s]]
				if p90 <= 0 {
					continue
				}
				elapsed := c.now - st.execStart[s]
				ratio := float64(elapsed) / float64(p90)
				if ratio < th {
					continue
				}
				// Deterministic despite scan order: strictly-better ratio
				// wins; exact ties resolve by task identity.
				if worst < 0 || ratio > worstRatio ||
					(ratio == worstRatio && st.less(s, worst)) {
					worst, worstJob, worstRatio = s, jr, ratio
				}
			}
		}
	}
	if worst < 0 {
		return false
	}
	c.startDuplicate(worstJob, worst, mi)
	return true
}

//jockey:hotpath
func (c *Cluster) startDuplicate(jr *jobRun, orig int32, machine int) {
	jr.accrueAlloc(c.now)
	st := &c.store
	stage, task := int(st.stage[orig]), int(st.task[orig])
	attempt := st.attempt[orig]
	sp := &jr.p.Stages[stage]
	initDelay := sp.Queue.Sample(jr.rng)
	exec := jr.driftExec(stage, sp.Exec.Sample(jr.rng))
	if exec <= 0 {
		exec = time.Millisecond
	}
	fails := sp.FailureProb > 0 && jr.rng.Float64() < sp.FailureProb
	if fails {
		exec = time.Duration(float64(exec) * jr.rng.Float64())
		if exec <= 0 {
			exec = time.Millisecond
		}
	}
	s := st.alloc()
	st.job[s] = int32(jr.id)
	st.stage[s] = int32(stage)
	st.task[s] = int32(task)
	st.attempt[s] = attempt
	st.machine[s] = int32(machine)
	st.startedAt[s] = c.now
	st.execStart[s] = c.now + initDelay
	st.flags[s] = flagDup // duplicates are always spare-class
	jr.dupSlot[stage][task] = s
	st.maxPush(&jr.dupHeap, s)
	jr.duplicates++
	c.attachMachine(machine, s)
	c.endBatch = append(c.endBatch, eventq.Entry[event]{At: c.now + initDelay + exec, V: event{
		kind:    evTaskEnd,
		job:     jr.id,
		stage:   stage,
		task:    task,
		attempt: int(attempt),
		failed:  fails,
		dup:     true,
	}})
}

//jockey:hotpath
func (c *Cluster) startTask(jr *jobRun, r taskRef, machine int, guaranteed bool) {
	jr.accrueAlloc(c.now)
	sp := &jr.p.Stages[r.stage]
	initDelay := sp.Queue.Sample(jr.rng)
	exec := jr.driftExec(r.stage, sp.Exec.Sample(jr.rng))
	if exec <= 0 {
		exec = time.Millisecond
	}
	fails := false
	if sp.FailureProb > 0 && jr.attempts[r.stage][r.task] < maxClusterAttempts-1 {
		fails = jr.rng.Float64() < sp.FailureProb
	}
	if fails {
		exec = time.Duration(float64(exec) * jr.rng.Float64())
		if exec <= 0 {
			exec = time.Millisecond
		}
	}
	st := &c.store
	s := st.alloc()
	st.job[s] = int32(jr.id)
	st.stage[s] = int32(r.stage)
	st.task[s] = int32(r.task)
	st.attempt[s] = int32(jr.attempts[r.stage][r.task])
	st.machine[s] = int32(machine)
	st.startedAt[s] = c.now
	st.execStart[s] = c.now + initDelay
	if guaranteed {
		st.flags[s] = flagGuar | flagSpawnGuar
	} else {
		st.flags[s] = 0
	}
	jr.slot[r.stage][r.task] = s
	if guaranteed {
		st.maxPush(&jr.guarHeap, s)
		jr.guarCount++
	} else {
		st.maxPush(&jr.spareMax, s)
		st.minPush(&jr.spareMin, s)
	}
	jr.liveRunning++
	c.totalRunning++
	c.attachMachine(machine, s)
	c.endBatch = append(c.endBatch, eventq.Entry[event]{At: c.now + initDelay + exec, V: event{
		kind:    evTaskEnd,
		job:     jr.id,
		stage:   r.stage,
		task:    r.task,
		attempt: int(st.attempt[s]),
		failed:  fails,
	}})
}

// driftExec applies the stage's current runtime-drift factor to a sampled
// service time.
//
//jockey:hotpath
func (jr *jobRun) driftExec(stage int, exec time.Duration) time.Duration {
	if f := jr.driftFactor[stage]; f != 1 {
		exec = time.Duration(float64(exec) * f)
	}
	return exec
}

func localityFraction(jr *jobRun) float64 {
	if jr.rootDone == 0 {
		return 0
	}
	return float64(jr.localDone) / float64(jr.rootDone)
}

// maxClusterAttempts bounds re-execution of a failing task.
const maxClusterAttempts = 30
