package cluster

import (
	"math/bits"
)

// bitset is a two-level bitmap over machine ids: words holds one bit per
// machine, sum one bit per non-zero word. first() therefore scans the (tiny)
// summary level instead of all words, which keeps "lowest-index available
// machine" O(1)-ish at 10k machines — the indexed up-machine set that
// replaces the full c.machines scans of earlier engines.
type bitset struct {
	words []uint64
	sum   []uint64
	// hint is a first() cursor: the invariant is that no bit below hint is
	// set, so a scan can start there instead of at zero. set() lowers it,
	// first() advances it past the zeros it just proved. Placing an arrival
	// burst of k tasks is then one forward pass over the machine words
	// instead of k scans from the origin.
	hint int
}

// init sizes the set for n bits and fills it (all true or all false),
// keeping the backing arrays across reuse.
func (b *bitset) init(n int, all bool) {
	b.hint = 0
	nw := (n + 63) / 64
	ns := (nw + 63) / 64
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
		b.sum = make([]uint64, ns)
	}
	b.words = b.words[:nw]
	b.sum = b.sum[:ns]
	if !all {
		clear(b.words)
		clear(b.sum)
		return
	}
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if tail := n & 63; tail != 0 {
		b.words[nw-1] = (uint64(1) << tail) - 1
	}
	clear(b.sum)
	for i := range b.words {
		if b.words[i] != 0 {
			b.sum[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

//jockey:hotpath
func (b *bitset) set(i int) {
	w := i >> 6
	b.words[w] |= 1 << (uint(i) & 63)
	b.sum[w>>6] |= 1 << (uint(w) & 63)
	if i < b.hint {
		b.hint = i
	}
}

//jockey:hotpath
func (b *bitset) clear(i int) {
	w := i >> 6
	b.words[w] &^= 1 << (uint(i) & 63)
	if b.words[w] == 0 {
		b.sum[w>>6] &^= 1 << (uint(w) & 63)
	}
}

//jockey:hotpath
func (b *bitset) get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// first returns the lowest set bit, or -1 when the set is empty. The scan
// starts at the hint cursor (everything below it is provably zero) and
// leaves the cursor on the bit it found — or past the end when the set is
// empty — so a placement sweep that repeatedly asks for the lowest free
// machine walks the words once, not once per ask. clear() never has to
// touch the cursor: clearing bits cannot make anything below it set.
//
//jockey:hotpath
func (b *bitset) first() int {
	for si := b.hint >> 12; si < len(b.sum); si++ {
		sw := b.sum[si]
		if sw == 0 {
			continue
		}
		w := si<<6 + bits.TrailingZeros64(sw)
		i := w<<6 + bits.TrailingZeros64(b.words[w])
		b.hint = i
		return i
	}
	b.hint = len(b.words) << 6
	return -1
}

// selectK returns the k-th (0-based) set bit in index order, or -1 when
// fewer than k+1 bits are set. Used by the machine-failure sampler, which
// picks a uniformly random up machine: the k-th set bit of the up set is
// exactly the k-th entry of the up-machine slice earlier engines rebuilt per
// failure event.
func (b *bitset) selectK(k int) int {
	for wi, w := range b.words {
		c := bits.OnesCount64(w)
		if k >= c {
			k -= c
			continue
		}
		for ; k > 0; k-- {
			w &= w - 1 // drop lowest set bit
		}
		return wi<<6 + bits.TrailingZeros64(w)
	}
	return -1
}
