// Fixture: "flight" is a deterministic package — decision records and regret
// reports must be a pure function of the run, so timestamping them from the
// wall clock (the natural temptation for a flight recorder) is a violation.
// Virtual tick times threaded through the record are the allowed path.
package flight

import "time"

type tick struct {
	at       time.Duration
	recorded time.Time
}

func record(at time.Duration) tick {
	t := tick{at: at}
	t.recorded = time.Now()      // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	_ = time.Since(t.recorded)   // want `time.Since reads the wall clock`

	// Deriving a tick's wall-free timestamp from virtual time is fine.
	_ = at + time.Minute
	_ = time.Duration(7).String()
	return t
}
