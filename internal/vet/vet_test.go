package vet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// calls reports a diagnostic at every function call, making suppression
// behavior observable line by line without any repo-specific rule logic.
var calls = &Analyzer{
	Name: "calls",
	Doc:  "test analyzer: flags every call expression",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					p.Reportf(c.Pos(), "call")
				}
				return true
			})
		}
		return nil
	},
}

// retdecl flags every return statement, giving the scoped-ignore tests a
// second analyzer name to aim directives at.
var retdecl = &Analyzer{
	Name: "retdecl",
	Doc:  "test analyzer: flags every return statement",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					p.Reportf(r.Pos(), "return")
				}
				return true
			})
		}
		return nil
	},
}

func checkSrc(t *testing.T, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	if len(analyzers) == 0 {
		analyzers = []*Analyzer{calls}
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Check(fset, []*ast.File{f}, pkg, info, analyzers, nil)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func lines(diags []Diagnostic) []int {
	out := make([]int, len(diags))
	for i, d := range diags {
		out[i] = d.Position.Line
	}
	return out
}

func TestIgnoreSuppressesExactlyOneLine(t *testing.T) {
	diags := checkSrc(t, `package fixture

func f() {}

func g() {
	f() //jockeyvet:ignore trailing directive covers its own line
	f()
	//jockeyvet:ignore standalone directive covers only the next line
	f()
	f()
}
`)
	// Lines 6 and 9 are suppressed; lines 7 and 10 keep their diagnostics.
	if got := lines(diags); len(got) != 2 || got[0] != 7 || got[1] != 10 {
		t.Fatalf("diagnostics on lines %v, want [7 10]", got)
	}
}

func TestIgnoreWithoutReason(t *testing.T) {
	diags := checkSrc(t, `package fixture

func f() {}

func g() {
	f() //jockeyvet:ignore
}
`)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (unsuppressed call + missing reason): %v", len(diags), diags)
	}
	var sawCall, sawReason bool
	for _, d := range diags {
		if d.Message == "call" && d.Position.Line == 6 {
			sawCall = true
		}
		if strings.Contains(d.Message, "needs a reason") {
			sawReason = true
		}
	}
	if !sawCall || !sawReason {
		t.Fatalf("want the call diagnostic to survive and the directive to be flagged, got %v", diags)
	}
}

func TestIgnoreLookalikeIsNotADirective(t *testing.T) {
	diags := checkSrc(t, `package fixture

func f() {}

func g() {
	f() //jockeyvet:ignoreXXX not the directive
}
`)
	if got := lines(diags); len(got) != 1 || got[0] != 6 {
		t.Fatalf("diagnostics on lines %v, want [6]", got)
	}
}

// TestScopedIgnoreSuppressesOnlyNamedRule pins the satellite contract: when
// one line trips two analyzers, a directive whose first word names one of
// them suppresses exactly that rule and leaves the other's finding live.
func TestScopedIgnoreSuppressesOnlyNamedRule(t *testing.T) {
	diags := checkSrc(t, `package fixture

func f() int

func g() int {
	return f() //jockeyvet:ignore calls fixture: suppress only the calls rule
}
`, calls, retdecl)
	if len(diags) != 1 || diags[0].Analyzer != "retdecl" || diags[0].Position.Line != 6 {
		t.Fatalf("want only retdecl's line-6 finding to survive, got %v", diags)
	}
}

// TestScopedIgnoreOtherRule is the mirror image: naming retdecl keeps the
// calls finding.
func TestScopedIgnoreOtherRule(t *testing.T) {
	diags := checkSrc(t, `package fixture

func f() int

func g() int {
	return f() //jockeyvet:ignore retdecl fixture: suppress only the return rule
}
`, calls, retdecl)
	if len(diags) != 1 || diags[0].Analyzer != "calls" || diags[0].Position.Line != 6 {
		t.Fatalf("want only calls' line-6 finding to survive, got %v", diags)
	}
}

// TestUnscopedIgnoreSuppressesWholeLine: with no leading rule name the
// directive still covers every analyzer on the line.
func TestUnscopedIgnoreSuppressesWholeLine(t *testing.T) {
	diags := checkSrc(t, `package fixture

func f() int

func g() int {
	return f() //jockeyvet:ignore fixture: the whole line is exempt
}
`, calls, retdecl)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestUnusedIgnoreIsReported(t *testing.T) {
	diags := checkSrc(t, `package fixture

func g() int {
	return 1 //jockeyvet:ignore calls nothing on this line calls anything
}
`, calls, retdecl)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (return finding + stale directive): %v", len(diags), diags)
	}
	var sawStale bool
	for _, d := range diags {
		if strings.Contains(d.Message, "suppresses no seedflow") {
			t.Fatalf("stale message names the wrong rule: %v", d)
		}
		if strings.Contains(d.Message, "suppresses no calls diagnostic") {
			sawStale = true
		}
	}
	if !sawStale {
		t.Fatalf("want a stale-directive diagnostic naming the calls rule, got %v", diags)
	}
}

// TestScopedReasonlessIgnoreStillNeedsReason: "//jockeyvet:ignore calls"
// alone is a rule name with no justification, which stays an error.
func TestScopedReasonlessIgnoreStillNeedsReason(t *testing.T) {
	diags := checkSrc(t, `package fixture

func f() int

func g() {
	f() //jockeyvet:ignore calls
}
`, calls)
	var sawReason bool
	for _, d := range diags {
		if strings.Contains(d.Message, "needs a reason") {
			sawReason = true
		}
	}
	if !sawReason {
		t.Fatalf("want a needs-a-reason diagnostic, got %v", diags)
	}
}

func TestDiagnosticsSorted(t *testing.T) {
	diags := checkSrc(t, `package fixture

func f() {}

func g() { f(); f() }

func h() { f() }
`)
	if got := lines(diags); len(got) != 3 || got[0] != 5 || got[1] != 5 || got[2] != 7 {
		t.Fatalf("diagnostics on lines %v, want [5 5 7]", got)
	}
	if diags[0].Position.Column > diags[1].Position.Column {
		t.Fatalf("same-line diagnostics not in column order: %v", diags)
	}
}
