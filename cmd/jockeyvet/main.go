// Command jockeyvet is the repository's determinism-contract checker: a
// vet tool with five repo-specific analyzers (walltime, globalrand,
// maporder, panicpath, errctx — see the README table in this directory and
// the "Determinism contract" section of DESIGN.md).
//
// It speaks the `go vet -vettool` unit protocol, so the canonical
// invocation is
//
//	go build -o bin/jockeyvet ./cmd/jockeyvet
//	go vet -vettool=$PWD/bin/jockeyvet ./...
//
// Run directly with package patterns it re-execs itself through go vet, so
// `jockeyvet ./...` is equivalent. A finding is suppressed only by fixing
// it or by an explicit, reasoned escape hatch on the offending line:
//
//	//jockeyvet:ignore <reason the rule does not apply here>
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"github.com/jockeysim/jockey/internal/vet"
	"github.com/jockeysim/jockey/internal/vet/rules"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command's vettool handshake: version probe, flag enumeration,
	// then one invocation per compilation unit with a vet.cfg path.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Println("jockeyvet version 1")
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	jsonOut := false
	if len(args) > 0 && args[0] == "-json" {
		jsonOut = true
		args = args[1:]
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vet.RunUnit(args[0], jsonOut, rules.All())
	}

	if len(args) > 0 && args[0] == "help" {
		help()
		return 0
	}

	// Standalone mode: `jockeyvet ./...` re-execs through go vet, which
	// handles package loading, export data, and test variants.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "jockeyvet: locating own binary: %v\n", err)
		return 1
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "jockeyvet: %v\n", err)
		return 1
	}
	return 0
}

func help() {
	fmt.Println("jockeyvet — determinism-contract analyzers")
	fmt.Println()
	for _, a := range rules.All() {
		fmt.Printf("  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Println("\nSuppress one line with a reasoned directive: //jockeyvet:ignore <reason>")
}
