package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrDuplicateAdmission reports a TryAdmit for a job id that is already
// admitted and not yet released. Match with errors.Is.
var ErrDuplicateAdmission = errors.New("job already admitted")

// Arbiter implements the admission-control role sketched in §1 of the
// paper: before an SLO job is allowed to run, its model is used to check
// whether it "fits" — whether enough guaranteed capacity remains so that
// every previously admitted SLO job can still meet its deadline.
//
// The arbiter tracks a budget of guaranteed tokens reserved for SLO jobs
// (the cluster's total capacity minus headroom for non-SLO work). Each
// admitted job commits its required allocation until released. This is the
// static single-shot check; the fleet arbiter (internal/fleet) layers
// utility-driven re-arbitration, deferral, and degradation on top of the
// same fit test.
type Arbiter struct {
	budget int

	mu        sync.Mutex
	admitted  map[string]int // job id -> committed tokens
	committed int            // running sum of admitted values
}

// NewArbiter creates an arbiter managing the given guaranteed-token budget.
func NewArbiter(budget int) (*Arbiter, error) {
	if budget < 1 {
		return nil, fmt.Errorf("core: arbiter budget %d; need at least 1 token", budget)
	}
	return &Arbiter{budget: budget, admitted: map[string]int{}}, nil
}

// Budget returns the total guaranteed-token budget.
func (a *Arbiter) Budget() int { return a.budget }

// Committed returns the tokens currently committed to admitted jobs.
func (a *Arbiter) Committed() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.committed
}

// Available returns the uncommitted budget.
func (a *Arbiter) Available() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget - a.committed
}

// TryAdmit checks whether the job (represented by its Jockey runtime) fits:
// its model-estimated required allocation for the deadline must not exceed
// the uncommitted budget. On success the allocation is committed under id
// until Release. Admitting the same id twice is an error.
func (a *Arbiter) TryAdmit(id string, jk *Jockey, deadline time.Duration) (need int, ok bool, err error) {
	if jk == nil {
		return 0, false, fmt.Errorf("core: TryAdmit with nil runtime")
	}
	need, feasible := jk.RequiredAllocation(deadline)
	if !feasible {
		return 0, false, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.admitted[id]; dup {
		return 0, false, fmt.Errorf("core: job %q: %w", id, ErrDuplicateAdmission)
	}
	if need > a.budget-a.committed {
		return need, false, nil
	}
	a.admitted[id] = need
	a.committed += need
	return need, true, nil
}

// Release returns a job's committed tokens to the budget (idempotent).
func (a *Arbiter) Release(id string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if need, ok := a.admitted[id]; ok {
		a.committed -= need
		delete(a.admitted, id)
	}
}

// Admissions returns the currently admitted job ids, sorted.
func (a *Arbiter) Admissions() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.admitted))
	for id := range a.admitted {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
