package fleet

// This file keeps the retired O(rounds × bidders) greedy water-fill as a
// reference implementation. The production path (greedyFill) runs the same
// discipline on an indexed max-heap; tests pin the two together by running
// fillRef on a snapshot of every epoch's bidder set (Config.selfCheck) and
// on hand-built edge cases, requiring grant-identical results.
//
// One deliberate nuance: the retired scan folds with an epsilon hysteresis
// (`rate > pickRate+flatEps`), so a later candidate had to beat the running
// pick by more than flatEps to displace it. The heap picks the strict
// argmax with the same (admission, rung) tie-break. The two agree unless
// two DISTINCT marginal rates fall within flatEps = 1e-9 of each other —
// a knife-edge no replay in the suite produces (the self-check would fail
// loudly if one ever did).

// refBidder is a plain copy of one bidder's curves and rung for fillRef.
type refBidder struct {
	cands []int
	util  []float64
	idx   int
}

// snapshotBidders captures the bidder set before the floor pass so fillRef
// can re-run the epoch from the same starting state. Test-only (selfCheck);
// allocation here never runs in production replays.
func snapshotBidders(bs []bidder) []refBidder {
	ref := make([]refBidder, len(bs))
	for i := range bs {
		ref[i] = refBidder{cands: bs[i].cands, util: bs[i].util, idx: int(bs[i].idx)}
	}
	return ref
}

// fillRef is the retired floor pass + greedy rounds, verbatim except that
// grants stay in idx (grant = cands[idx]) instead of being actuated.
func fillRef(bidders []refBidder, remaining int) int {
	// Floor pass: every non-latched job gets the smallest grid allocation
	// (admission order) so nobody is silently starved to zero.
	for i := range bidders {
		b := &bidders[i]
		floor := b.cands[0]
		if floor > remaining {
			break
		}
		b.idx = 0
		remaining -= floor
	}

	// Greedy marginal water-fill. Each round picks the single affordable
	// jump (to ANY higher candidate, which handles non-concave curves
	// whose gain sits past a flat stretch) with the best utility-per-token
	// rate; earliest-admitted wins ties. Flat jobs never clear flatEps and
	// stay at the floor.
	for remaining > 0 {
		var pick *refBidder
		pickTo, pickRate := 0, 0.0
		for bi := range bidders {
			b := &bidders[bi]
			if b.idx < 0 {
				continue
			}
			for k := b.idx + 1; k < len(b.cands); k++ {
				cost := b.cands[k] - b.cands[b.idx]
				if cost > remaining {
					break
				}
				rate := (b.util[k] - b.util[b.idx]) / float64(cost)
				if rate > flatEps && rate > pickRate+flatEps {
					pick, pickTo, pickRate = b, k, rate
				}
			}
		}
		if pick == nil {
			break
		}
		remaining -= pick.cands[pickTo] - pick.cands[pick.idx]
		pick.idx = pickTo
	}
	return remaining
}

// checkAgainstRef replays the epoch through fillRef and reports any grant
// divergence through the selfCheck hook. It runs deferred from waterFill,
// after the heap rounds have actuated r.bidders.
func (r *replay) checkAgainstRef(ref []refBidder, remaining int) {
	fillRef(ref, remaining)
	for i := range ref {
		want := 0
		if ref[i].idx >= 0 {
			want = ref[i].cands[ref[i].idx]
		}
		got := 0
		if b := &r.bidders[i]; b.idx >= 0 {
			got = b.cands[b.idx]
		}
		if got != want {
			r.cfg.selfCheck("water-fill divergence: bidder %d granted %d, reference %d", i, got, want)
		}
	}
}
