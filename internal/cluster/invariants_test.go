package cluster

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
)

// TestConservationProperty checks the fundamental bookkeeping invariants of
// the cluster under randomized contention, failures and evictions:
//   - every task of a tracked job completes exactly once (one successful
//     attempt per task);
//   - attempts of the same task are strictly ordered and never overlap;
//   - barrier semantics hold (no consumer starts before the producer stage
//     finishes).
func TestConservationProperty(t *testing.T) {
	f := func(seed uint64, rawTasks uint8, rawG uint8) bool {
		mapTasks := 10 + int(rawTasks)%60
		guarantee := 1 + int(rawG)%10
		job := dag.NewBuilder("prop").
			Stage("map", mapTasks).
			Stage("reduce", 1+mapTasks/8).
			Edge("map", "reduce", dag.AllToAll).
			MustBuild()
		p := profile.MustNew(job, []profile.StageProfile{
			{Exec: stats.LognormalFromMedian(4*time.Second, 12*time.Second),
				Queue: stats.Exponential{MeanValue: time.Second}, FailureProb: 0.08},
			{Exec: stats.LognormalFromMedian(8*time.Second, 20*time.Second)},
		})
		c, err := New(Config{
			Machines:        6,
			SlotsPerMachine: 3,
			MachineMTBF:     4 * time.Minute, // aggressive failure injection
			MachineRecovery: stats.Point{V: time.Minute},
			Seed:            seed,
		})
		if err != nil {
			return false
		}
		bg := profile.MustNew(dag.NewBuilder("bg").Stage("work", 100).MustBuild(),
			[]profile.StageProfile{{Exec: stats.Point{V: 20 * time.Second}}})
		if _, err := c.Submit(JobConfig{Profile: bg, Guarantee: 2}); err != nil {
			return false
		}
		h, err := c.Submit(JobConfig{Profile: p, Guarantee: guarantee,
			Deadline: time.Hour, Tracked: true, Start: 30 * time.Second})
		if err != nil {
			return false
		}
		if err := c.Run(); err != nil {
			return false
		}
		tr := h.Result().Trace

		// One success per task.
		succ := map[[2]int]int{}
		for _, e := range tr.Events {
			if !e.Failed {
				succ[[2]int{e.Stage, e.Task}]++
			}
		}
		if len(succ) != job.TotalTasks() {
			return false
		}
		for _, n := range succ {
			if n != 1 {
				return false
			}
		}
		// Attempts ordered, non-overlapping, with sane timestamps.
		lastEnd := map[[2]int]time.Duration{}
		lastAttempt := map[[2]int]int{}
		for _, e := range tr.Events {
			key := [2]int{e.Stage, e.Task}
			if e.Queued < 0 || e.Dispatched < e.Queued || e.Started < e.Dispatched || e.Ended < e.Started {
				return false
			}
			if prev, ok := lastEnd[key]; ok {
				if e.Started < prev || e.Attempt <= lastAttempt[key] {
					return false
				}
			}
			lastEnd[key] = e.Ended
			lastAttempt[key] = e.Attempt
		}
		// Barrier: no reduce attempt starts before the map stage completes.
		var mapDone time.Duration
		mapSucc := 0
		for _, e := range tr.Events {
			if e.Stage == 0 && !e.Failed {
				mapSucc++
				if e.Ended > mapDone && mapSucc <= job.Stages[0].Tasks {
					mapDone = e.Ended
				}
			}
		}
		for _, e := range tr.Events {
			if e.Stage == 1 && e.Dispatched < mapDone {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNoSpareNeverExceedsGuarantee(t *testing.T) {
	// A NoSpare job alone on an idle cluster must never run more tasks than
	// its guarantee.
	job := dag.NewBuilder("cap").Stage("work", 40).MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
	})
	c, _ := New(Config{Machines: 10, SlotsPerMachine: 4, Seed: 1})
	var maxRunning int
	h, err := c.Submit(JobConfig{
		Profile: p, Guarantee: 6, Tracked: true, NoSpare: true,
		SamplePeriod: time.Second,
		OnSample: func(_ time.Duration, st model.State) {
			// running count is not in State; use the trace afterwards.
			_ = st
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := h.Result().Trace.MaxParallelism(); got > 6 {
		t.Errorf("NoSpare job ran %d tasks concurrently, guarantee 6", got)
	}
	// 40 tasks / 6 tokens = 7 waves of 10s.
	if got := h.Result().Completion; got != 70*time.Second {
		t.Errorf("completion = %v, want 70s", got)
	}
	_ = maxRunning
}

func TestOnSampleHook(t *testing.T) {
	job := dag.NewBuilder("s").Stage("work", 20).MustBuild()
	p := profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Point{V: 10 * time.Second}},
	})
	c, _ := New(Config{Machines: 5, SlotsPerMachine: 2, Seed: 1})
	var samples []model.State
	var times []time.Duration
	_, err := c.Submit(JobConfig{
		Profile: p, Guarantee: 5, Tracked: true,
		SamplePeriod: 15 * time.Second,
		OnSample: func(at time.Duration, st model.State) {
			times = append(times, at)
			samples = append(samples, st)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for i, at := range times {
		if want := time.Duration(i+1) * 15 * time.Second; at != want {
			t.Errorf("sample %d at %v, want %v", i, at, want)
		}
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].FracDone[0] < samples[i-1].FracDone[0] {
			t.Error("progress decreased")
		}
	}
}
