package utility

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestParsePointList(t *testing.T) {
	u, err := Parse("0:1, 60m:1, 70m:-1, 1060m:-1000")
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Utility(30 * time.Minute); got != 1 {
		t.Errorf("U(30m) = %v", got)
	}
	if got := u.Utility(65 * time.Minute); math.Abs(got) > 1e-9 {
		t.Errorf("U(65m) = %v, want 0", got)
	}
	if got := u.Utility(2000 * time.Minute); got != -1000 {
		t.Errorf("U(2000m) = %v", got)
	}
}

func TestParsePointListMatchesDeadline(t *testing.T) {
	a, err := Parse("0:1, 45m:1, 55m:-1, 1045m:-1000")
	if err != nil {
		t.Fatal(err)
	}
	b := Deadline(45 * time.Minute)
	for _, at := range []time.Duration{0, 10 * time.Minute, 45 * time.Minute,
		50 * time.Minute, 2 * time.Hour, 20 * time.Hour} {
		if got, want := a.Utility(at), b.Utility(at); math.Abs(got-want) > 1e-9 {
			t.Errorf("U(%v) = %v, want %v", at, got, want)
		}
	}
}

func TestParseDeadlineShorthand(t *testing.T) {
	u, err := Parse("deadline 60m")
	if err != nil {
		t.Fatal(err)
	}
	want := Deadline(time.Hour)
	for _, at := range []time.Duration{0, time.Hour, 65 * time.Minute, 3 * time.Hour} {
		if got := u.Utility(at); math.Abs(got-want.Utility(at)) > 1e-9 {
			t.Errorf("U(%v) = %v", at, got)
		}
	}
}

func TestParseSoftShorthand(t *testing.T) {
	u, err := Parse("soft 1h grace 30m")
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Utility(75 * time.Minute); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("U(75m) = %v, want 0.5", got)
	}
	if got := u.Utility(5 * time.Hour); got != 0 {
		t.Errorf("late soft U = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "empty"},
		{"deadline", "want"},
		{"deadline nope", "bad deadline"},
		{"deadline -5m", "positive"},
		{"soft 1h", "want"},
		{"soft zzz grace 1m", "bad deadline"},
		{"soft 1h grace zzz", "bad grace"},
		{"soft 1h grace -1m", "positive"},
		{"1m", "not time:value"},
		{"zzz:1, 2m:0", "bad time"},
		{"-1m:1, 2m:0", "negative time"},
		{"1m:zzz, 2m:0", "bad value"},
		{"1m:1", "at least two"},
		{"1m:1, 1m:2", "duplicate"},
	}
	for _, c := range cases {
		if _, err := Parse(c.in); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want containing %q", c.in, err, c.want)
		}
	}
}
