package experiments

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/workload"
)

// Fig1 holds the inter-job dependency distributions of Figure 1.
type Fig1 struct {
	Stats *workload.PipelineStats
}

// Dependencies generates the synthetic 3-day job-dependency graph and
// computes the four Fig. 1 distributions.
func Dependencies(env *Env, jobs int) (*Fig1, error) {
	ps, err := workload.GeneratePipelines(workload.PipelineConfig{
		Jobs: jobs,
		Seed: stats.DeriveSeed(env.Seed, "fig1"),
	})
	if err != nil {
		return nil, err
	}
	return &Fig1{Stats: ps}, nil
}

// Render prints the four CDFs of Fig. 1 at a fixed quantile grid.
func (f *Fig1) Render() string {
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99}
	gapAt := func(q float64) string {
		return fmt.Sprintf("%.1f", stats.QuantileDurations(f.Stats.Gaps, q).Minutes())
	}
	intAt := func(vals []int, q float64) string {
		fs := make([]float64, len(vals))
		for i, v := range vals {
			fs[i] = float64(v)
		}
		return fmt.Sprintf("%.0f", stats.QuantileSorted(fs, q))
	}
	var rows [][]string
	for _, q := range quantiles {
		rows = append(rows, []string{
			pct(q),
			gapAt(q),
			intAt(f.Stats.ChainLengths, q),
			intAt(f.Stats.Dependents, q),
			intAt(f.Stats.Groups, q),
		})
	}
	title := "Figure 1: dependence between jobs (synthetic 3-day window)\n" +
		fmt.Sprintf("(paper: median gap ~10 min; median job feeds >10 others; top decile >100; chains span groups)\n"+
			"samples: %d gaps, %d chains, %d producers",
			len(f.Stats.Gaps), len(f.Stats.ChainLengths), len(f.Stats.Dependents))
	return renderTable(title,
		[]string{"CDF", "gap [min]", "chain length", "# dependent jobs", "# groups"},
		rows)
}

// MedianGap is a convenience accessor used by tests.
func (f *Fig1) MedianGap() time.Duration {
	return stats.QuantileDurations(f.Stats.Gaps, 0.5)
}
