// Command jockeyd replays a deterministic multi-job fleet through the
// arbiter (internal/fleet): it admits a stream of recurring SLO jobs, runs
// one controller per job over a shared simulated cluster, and re-divides
// the global token budget every control epoch.
//
// Usage:
//
//	jockeyd [-seed N] [-arbitration fifo|fair-share|utility-greedy]
//	        [-guarded] [-no-containment]
//	        [-arrivals N] [-mean-interarrival D] [-load F] [-max-defer N]
//	        [-machines N] [-slots N] [-budget N] [-epoch D]
//	        [-drift-every N] [-drift-factor F]
//	        [-outage-at D] [-outage-machines N] [-outage-duration D]
//	        [-parallelism N] [-v]
//
// The replay is bit-identical for a given flag set at any -parallelism.
// -v streams one line per control epoch to stderr; the final per-job table
// goes to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/fleet"
	"github.com/jockeysim/jockey/internal/stats"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "master seed for arrivals, cluster, and models")
		arb     = flag.String("arbitration", "utility-greedy", "arbitration discipline: fifo, fair-share, or utility-greedy")
		guarded = flag.Bool("guarded", false, "wrap each controller in a guard (requires utility-greedy)")
		noCont  = flag.Bool("no-containment", false, "let guard-panic latches bid their full max allocation (requires -guarded)")

		arrivals = flag.Int("arrivals", 0, "number of job offers (0 = default)")
		meanIA   = flag.Duration("mean-interarrival", 0, "mean arrival gap before load scaling (0 = default)")
		load     = flag.Float64("load", 0, "load factor multiplying the arrival rate (0 = default 1)")
		maxDefer = flag.Int("max-defer", 0, "admission deferrals before an offer is rejected (0 = default)")

		machines = flag.Int("machines", 0, "cluster machines (0 = default)")
		slots    = flag.Int("slots", 0, "slots per machine (0 = default)")
		budget   = flag.Int("budget", 0, "global token budget (0 = cluster capacity)")
		epoch    = flag.Duration("epoch", 0, "control epoch period (0 = default 1m)")

		driftEvery  = flag.Int("drift-every", 0, "every Nth offer drifts from its profile mid-run (0 = none)")
		driftFactor = flag.Float64("drift-factor", 0, "service-time inflation for drifting jobs (0 = default 2)")

		outageAt       = flag.Duration("outage-at", 0, "rack outage start (0 = no outage)")
		outageMachines = flag.Int("outage-machines", 0, "machines lost to the outage")
		outageDuration = flag.Duration("outage-duration", 0, "outage length")

		par     = flag.Int("parallelism", 0, "worker pool for offline model builds (0 = GOMAXPROCS); results are identical at any value")
		verbose = flag.Bool("v", false, "stream per-epoch arbitration stats to stderr")
	)
	flag.Parse()

	cfg := fleet.Config{
		Seed:             *seed,
		Machines:         *machines,
		SlotsPerMachine:  *slots,
		Budget:           *budget,
		Epoch:            *epoch,
		Arrivals:         *arrivals,
		MeanInterarrival: *meanIA,
		LoadFactor:       *load,
		Arbitration:      fleet.Arbitration(*arb),
		Guarded:          *guarded,
		NoContainment:    *noCont,
		MaxDefers:        *maxDefer,
		DriftEvery:       *driftEvery,
		DriftFactor:      *driftFactor,
	}
	if *outageAt > 0 || *outageMachines > 0 || *outageDuration > 0 {
		cfg.RackOutages = []cluster.RackOutage{{
			At:           *outageAt,
			FirstMachine: 0,
			Machines:     *outageMachines,
			Duration:     *outageDuration,
		}}
	}
	if *par > 0 {
		// Same derived seed fleet.Run would use for its private cache, so
		// -parallelism changes only the build speed, never the replay.
		models := fleet.NewModelCache(stats.DeriveSeed(*seed, "fleet-models"))
		models.SetParallelism(*par)
		cfg.Models = models
	}
	if *verbose {
		cfg.OnEpoch = func(s fleet.EpochStats) {
			// bidders/heapops expose the arbiter's per-epoch cost (the
			// fleet-scale contract: heap ops stay linear in active jobs).
			fmt.Fprintf(os.Stderr, "[%8s] active %2d granted %3d/%-3d deferred %d rejected %d latched %d bidders %d heapops %d\n",
				s.At.Truncate(time.Second), s.Active, s.Granted, s.Budget, s.Deferred, s.Rejected, s.Latched, s.Bidders, s.HeapOps)
		}
	}

	res, err := fleet.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jockeyd:", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())
}
