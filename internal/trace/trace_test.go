package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleTrace() *JobTrace {
	t := New("demo", 2)
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	t.AddTask(TaskEvent{Stage: 0, Task: 0, Queued: sec(0), Started: sec(1), Ended: sec(5)})
	t.AddTask(TaskEvent{Stage: 0, Task: 1, Queued: sec(0), Started: sec(2), Ended: sec(4)})
	t.AddTask(TaskEvent{Stage: 0, Task: 2, Queued: sec(1), Started: sec(2), Ended: sec(3), Failed: true})
	t.AddTask(TaskEvent{Stage: 0, Task: 2, Attempt: 1, Queued: sec(3), Started: sec(4), Ended: sec(10)})
	t.AddTask(TaskEvent{Stage: 1, Task: 0, Queued: sec(10), Started: sec(12), Ended: sec(20)})
	t.Completion = sec(20)
	return t
}

func TestEventAccessors(t *testing.T) {
	e := TaskEvent{Queued: time.Second, Started: 3 * time.Second, Ended: 7 * time.Second}
	if e.QueueTime() != 2*time.Second || e.ExecTime() != 4*time.Second {
		t.Fatalf("accessors wrong: q=%v e=%v", e.QueueTime(), e.ExecTime())
	}
}

func TestExecQueueSamples(t *testing.T) {
	tr := sampleTrace()
	ex := tr.ExecSamples(0)
	if len(ex) != 3 {
		t.Fatalf("ExecSamples len = %d, want 3 (failed attempt excluded)", len(ex))
	}
	if ex[0] != 2*time.Second || ex[2] != 6*time.Second {
		t.Errorf("ExecSamples = %v (want sorted 2s..6s)", ex)
	}
	q := tr.QueueSamples(0)
	if len(q) != 3 || q[0] != time.Second {
		t.Errorf("QueueSamples = %v", q)
	}
	if got := len(tr.AllExecSamples()); got != 4 {
		t.Errorf("AllExecSamples len = %d", got)
	}
	if got := len(tr.AllQueueSamples()); got != 4 {
		t.Errorf("AllQueueSamples len = %d", got)
	}
}

func TestFailureRate(t *testing.T) {
	tr := sampleTrace()
	if got := tr.FailureRate(0); got != 0.25 {
		t.Errorf("FailureRate(0) = %v, want 0.25", got)
	}
	if got := tr.FailureRate(1); got != 0 {
		t.Errorf("FailureRate(1) = %v", got)
	}
	if got := tr.FailureRate(9); got != 0 {
		t.Errorf("FailureRate(empty) = %v", got)
	}
}

func TestWorkAggregates(t *testing.T) {
	tr := sampleTrace()
	// All attempts: 4+2+1+6+8 = 21s.
	if got := tr.TotalWork(); got != 21*time.Second {
		t.Errorf("TotalWork = %v", got)
	}
	// Successful stage-0 attempts: 4+2+6 = 12s.
	if got := tr.StageWork(0); got != 12*time.Second {
		t.Errorf("StageWork(0) = %v", got)
	}
	// Successful stage-0 queueing: 1+2+1 = 4s.
	if got := tr.StageQueue(0); got != 4*time.Second {
		t.Errorf("StageQueue(0) = %v", got)
	}
	if got := tr.LongestTask(0); got != 6*time.Second {
		t.Errorf("LongestTask(0) = %v", got)
	}
	if got := tr.LongestTask(7); got != 0 {
		t.Errorf("LongestTask(empty) = %v", got)
	}
}

func TestStageSpan(t *testing.T) {
	tr := sampleTrace()
	b, e, ok := tr.StageSpan(0)
	if !ok || b != 0 || e != 10*time.Second {
		t.Errorf("StageSpan(0) = %v,%v,%v", b, e, ok)
	}
	if _, _, ok := tr.StageSpan(5); ok {
		t.Error("StageSpan of empty stage should be !ok")
	}
}

func TestMaxParallelism(t *testing.T) {
	tr := sampleTrace()
	// At t in (2,3): tasks 0, 1 and first attempt of 2 overlap -> 3.
	if got := tr.MaxParallelism(); got != 3 {
		t.Errorf("MaxParallelism = %d, want 3", got)
	}
	if got := New("empty", 1).MaxParallelism(); got != 0 {
		t.Errorf("empty MaxParallelism = %d", got)
	}
}

func TestMaxParallelismBackToBack(t *testing.T) {
	tr := New("x", 1)
	tr.AddTask(TaskEvent{Started: 0, Ended: time.Second})
	tr.AddTask(TaskEvent{Started: time.Second, Ended: 2 * time.Second})
	if got := tr.MaxParallelism(); got != 1 {
		t.Errorf("back-to-back tasks must not overlap: %d", got)
	}
}

func TestCSVExports(t *testing.T) {
	tr := sampleTrace()
	tr.AddAlloc(AllocPoint{T: time.Minute, Raw: 40, Granted: 35, Running: 30, Oracle: 20,
		Progress: 0.5, Predicted: 30 * time.Minute})
	var ev bytes.Buffer
	if err := tr.WriteEventsCSV(&ev); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(ev.String()), "\n")
	if len(lines) != 6 { // header + 5 events
		t.Fatalf("events CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "stage,task,attempt") {
		t.Errorf("bad header: %s", lines[0])
	}
	var tl bytes.Buffer
	if err := tr.WriteTimelineCSV(&tl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl.String(), "40,35,30,20") {
		t.Errorf("timeline CSV missing row: %s", tl.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	tr.AddAlloc(AllocPoint{T: time.Minute, Raw: 4, Granted: 3, Running: 2, Oracle: 1})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.JobName != tr.JobName || len(back.Events) != len(tr.Events) ||
		len(back.Timeline) != len(tr.Timeline) || back.Completion != tr.Completion {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	for i := range tr.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("invalid JSON must fail")
	}
	if _, err := ReadJSON(strings.NewReader("{}")); err == nil {
		t.Error("missing job name must fail")
	}
	bad := `{"JobName":"x","Events":[{"Queued":5000000000,"Started":1000000000,"Ended":2000000000}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("inconsistent timestamps must fail")
	}
}
