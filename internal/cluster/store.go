package cluster

import (
	"time"
)

// taskStore holds every live task attempt (primary or speculative duplicate)
// in the cluster as struct-of-arrays: parallel flat slices indexed by a slot
// id, with a free list recycling slots as attempts end. The layout replaces
// the per-attempt *runningTask records of earlier engines for two reasons:
//
//   - the scheduler's hot loops (reclassification, eviction choice, machine
//     kills) walk dense int32/int64 arrays instead of chasing heap pointers,
//     which is what makes 10⁵–10⁶ concurrent attempts affordable;
//   - the store contains no pointers at all, so a cosmos-scale replay adds
//     nothing to the garbage collector's scan set.
//
// Slot ids are engine-internal and never observable: recycling order affects
// memory layout only, never replay output.
type taskStore struct {
	job       []int32
	stage     []int32
	task      []int32
	attempt   []int32
	machine   []int32
	startedAt []time.Duration // dispatch time
	execStart []time.Duration // after init delay
	flags     []uint8
	// heapPos is the slot's index in the one job heap it belongs to
	// (guarHeap, spareMax, or dupHeap — membership is exclusive); minPos is
	// its index in the job's spareMin heap (spare primaries only). The back
	// pointers make removal from the middle of a heap O(log n).
	heapPos []int32
	minPos  []int32
	// nextM/prevM link the slot into its machine's intrusive doubly-linked
	// task list, so killing a machine touches only that machine's tasks.
	nextM []int32
	prevM []int32

	free []int32
}

const (
	flagDup       uint8 = 1 << iota // speculative duplicate (always spare-class)
	flagGuar                        // currently charged to guaranteed tokens
	flagSpawnGuar                   // token class at dispatch, for accounting
)

// alloc hands out a slot id, recycling from the free list when possible. The
// caller overwrites every field. Steady state (within the high-water number
// of concurrent attempts) does not allocate.
//
//jockey:hotpath
func (st *taskStore) alloc() int32 {
	if n := len(st.free); n > 0 {
		s := st.free[n-1]
		st.free = st.free[:n-1]
		return s
	}
	s := int32(len(st.job))
	st.job = append(st.job, 0)
	st.stage = append(st.stage, 0)
	st.task = append(st.task, 0)
	st.attempt = append(st.attempt, 0)
	st.machine = append(st.machine, 0)
	st.startedAt = append(st.startedAt, 0)
	st.execStart = append(st.execStart, 0)
	st.flags = append(st.flags, 0)
	st.heapPos = append(st.heapPos, -1)
	st.minPos = append(st.minPos, -1)
	st.nextM = append(st.nextM, -1)
	st.prevM = append(st.prevM, -1)
	return s
}

// release returns a slot to the free list. The slot must already be detached
// from its heaps and machine list.
//
//jockey:hotpath
func (st *taskStore) release(s int32) {
	st.free = append(st.free, s)
}

// reset empties the store in place, keeping every array's capacity.
func (st *taskStore) reset() {
	st.job = st.job[:0]
	st.stage = st.stage[:0]
	st.task = st.task[:0]
	st.attempt = st.attempt[:0]
	st.machine = st.machine[:0]
	st.startedAt = st.startedAt[:0]
	st.execStart = st.execStart[:0]
	st.flags = st.flags[:0]
	st.heapPos = st.heapPos[:0]
	st.minPos = st.minPos[:0]
	st.nextM = st.nextM[:0]
	st.prevM = st.prevM[:0]
	st.free = st.free[:0]
}

// less totally orders attempts by start time, then stage/task position —
// the same order the pointer-based engine's cmpTask used. Within one job the
// order has no ties (a primary and its duplicate cannot share a start time,
// and stage/task is unique); across jobs the scheduler always breaks ties by
// job iteration order before consulting less.
//
//jockey:hotpath
func (st *taskStore) less(a, b int32) bool {
	if st.startedAt[a] != st.startedAt[b] {
		return st.startedAt[a] < st.startedAt[b]
	}
	if st.stage[a] != st.stage[b] {
		return st.stage[a] < st.stage[b]
	}
	return st.task[a] < st.task[b]
}

// slotHeap is a binary heap of store slot ids. Max-heaps (guarHeap,
// spareMax, dupHeap) track positions in taskStore.heapPos; the one min-heap
// (spareMin) tracks positions in taskStore.minPos, so a spare primary can
// sit in both a max- and a min-heap at once.
type slotHeap struct {
	s []int32
}

//jockey:hotpath
func (st *taskStore) maxSwap(h *slotHeap, i, j int) {
	h.s[i], h.s[j] = h.s[j], h.s[i]
	st.heapPos[h.s[i]] = int32(i)
	st.heapPos[h.s[j]] = int32(j)
}

//jockey:hotpath
func (st *taskStore) maxUp(h *slotHeap, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !st.less(h.s[parent], h.s[i]) {
			return
		}
		st.maxSwap(h, i, parent)
		i = parent
	}
}

//jockey:hotpath
func (st *taskStore) maxDown(h *slotHeap, i int) bool {
	moved := false
	n := len(h.s)
	for {
		left := 2*i + 1
		if left >= n {
			return moved
		}
		big := left
		if right := left + 1; right < n && st.less(h.s[left], h.s[right]) {
			big = right
		}
		if !st.less(h.s[i], h.s[big]) {
			return moved
		}
		st.maxSwap(h, i, big)
		i = big
		moved = true
	}
}

//jockey:hotpath
func (st *taskStore) maxPush(h *slotHeap, s int32) {
	h.s = append(h.s, s)
	i := len(h.s) - 1
	st.heapPos[s] = int32(i)
	st.maxUp(h, i)
}

// maxRemove deletes slot s from anywhere in the heap via its back pointer.
//
//jockey:hotpath
func (st *taskStore) maxRemove(h *slotHeap, s int32) {
	i := int(st.heapPos[s])
	n := len(h.s) - 1
	last := h.s[n]
	h.s = h.s[:n]
	if i == n {
		return
	}
	h.s[i] = last
	st.heapPos[last] = int32(i)
	if !st.maxDown(h, i) {
		st.maxUp(h, i)
	}
}

//jockey:hotpath
func (st *taskStore) minSwap(h *slotHeap, i, j int) {
	h.s[i], h.s[j] = h.s[j], h.s[i]
	st.minPos[h.s[i]] = int32(i)
	st.minPos[h.s[j]] = int32(j)
}

//jockey:hotpath
func (st *taskStore) minUp(h *slotHeap, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !st.less(h.s[i], h.s[parent]) {
			return
		}
		st.minSwap(h, i, parent)
		i = parent
	}
}

//jockey:hotpath
func (st *taskStore) minDown(h *slotHeap, i int) bool {
	moved := false
	n := len(h.s)
	for {
		left := 2*i + 1
		if left >= n {
			return moved
		}
		small := left
		if right := left + 1; right < n && st.less(h.s[right], h.s[left]) {
			small = right
		}
		if !st.less(h.s[small], h.s[i]) {
			return moved
		}
		st.minSwap(h, i, small)
		i = small
		moved = true
	}
}

//jockey:hotpath
func (st *taskStore) minPush(h *slotHeap, s int32) {
	h.s = append(h.s, s)
	i := len(h.s) - 1
	st.minPos[s] = int32(i)
	st.minUp(h, i)
}

//jockey:hotpath
func (st *taskStore) minRemove(h *slotHeap, s int32) {
	i := int(st.minPos[s])
	n := len(h.s) - 1
	last := h.s[n]
	h.s = h.s[:n]
	if i == n {
		return
	}
	h.s[i] = last
	st.minPos[last] = int32(i)
	if !st.minDown(h, i) {
		st.minUp(h, i)
	}
}
