package workload

import (
	"fmt"
	"sort"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
)

// PipelineConfig parameterizes the synthetic inter-job dependency graph
// behind Fig. 1 (§2.5): jobs submitted over an observation window, each
// reading the outputs of earlier jobs.
type PipelineConfig struct {
	// Jobs in the window (default 5000, "all jobs over three days").
	Jobs int
	// Window length (default 72h).
	Window time.Duration
	// Groups is the number of business groups (default 12).
	Groups int
	// DependentFraction is the fraction of jobs that read at least one
	// earlier job's output (the paper observes 10.2%; default 0.102).
	DependentFraction float64
	// MeanGap is the median-targeted gap between a job and its dependents
	// (default 10 minutes; gaps are lognormal around it).
	MeanGap time.Duration
	// Seed drives the generator.
	Seed uint64
}

func (c *PipelineConfig) fill() error {
	if c.Jobs == 0 {
		c.Jobs = 5000
	}
	if c.Jobs < 2 {
		return fmt.Errorf("workload: pipeline graph needs at least 2 jobs")
	}
	if c.Window <= 0 {
		c.Window = 72 * time.Hour
	}
	if c.Groups == 0 {
		c.Groups = 12
	}
	if c.Groups < 1 {
		return fmt.Errorf("workload: need at least one business group")
	}
	if c.DependentFraction == 0 {
		c.DependentFraction = 0.102
	}
	if c.DependentFraction < 0 || c.DependentFraction > 1 {
		return fmt.Errorf("workload: dependent fraction %v out of [0,1]", c.DependentFraction)
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 10 * time.Minute
	}
	return nil
}

// PipelineStats holds the four distributions plotted in Fig. 1, computed
// over the synthetic dependency graph. All slices are sorted ascending.
type PipelineStats struct {
	// Gaps between a job's completion and each directly dependent job's
	// start.
	Gaps []time.Duration
	// ChainLengths of dependent-job chains (longest downstream path from
	// each root of the dependency graph).
	ChainLengths []int
	// Dependents counts, per job with at least one dependent, the jobs that
	// directly or indirectly use its output.
	Dependents []int
	// Groups counts, per job with at least one dependent, the distinct
	// business groups depending on it.
	Groups []int
}

// GeneratePipelines builds the dependency graph and returns its Fig. 1
// statistics. Dependency targets use preferential attachment, reproducing
// the paper's heavy-tailed dependent counts (median job feeds >10 others;
// the top decile feeds >100).
func GeneratePipelines(cfg PipelineConfig) (*PipelineStats, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(stats.DeriveSeed(cfg.Seed, "pipelines"))
	n := cfg.Jobs
	start := make([]time.Duration, n) // submission times, ascending
	group := make([]int, n)           // business group of each job
	popularity := make([]float64, n)  // preferential-attachment weight
	parents := make([][]int, n)       // direct inputs of each job
	children := make([][]int, n)      // direct dependents
	gapDist := stats.LognormalFromMedian(cfg.MeanGap, 6*cfg.MeanGap)

	for i := 0; i < n; i++ {
		start[i] = time.Duration(rng.Float64() * float64(cfg.Window))
		group[i] = rng.IntN(cfg.Groups)
		popularity[i] = 1
		// A few percent of jobs produce core shared datasets (web index,
		// clickstream) that many pipelines read.
		if rng.Float64() < 0.03 {
			popularity[i] = 60
		}
	}
	sort.Slice(start, func(i, j int) bool { return start[i] < start[j] })

	var gaps []time.Duration
	var recentDependents []int // tail of the pipeline chains being extended
	for i := 1; i < n; i++ {
		if rng.Float64() >= cfg.DependentFraction {
			continue
		}
		// This job depends on 1-3 earlier jobs. Most dependencies extend an
		// existing pipeline (a recent job that itself has inputs), which
		// produces the long chains of Fig. 1; the rest attach
		// preferentially to popular producers (the shared datasets).
		nDeps := 1 + rng.IntN(3)
		for d := 0; d < nDeps; d++ {
			p := -1
			if len(recentDependents) > 0 && rng.Float64() < 0.65 {
				lookback := len(recentDependents)
				if lookback > 40 {
					lookback = 40
				}
				p = recentDependents[len(recentDependents)-1-rng.IntN(lookback)]
			} else {
				p = pickParent(rng, popularity, i)
			}
			if p < 0 || p >= i || containsInt(parents[i], p) {
				continue
			}
			parents[i] = append(parents[i], p)
			children[p] = append(children[p], i)
			popularity[p] += 6 // rich get richer
			gaps = append(gaps, gapDist.Sample(rng))
		}
		if len(parents[i]) > 0 {
			recentDependents = append(recentDependents, i)
		}
	}

	// Transitive dependents and group counts per producer.
	var dependents, groupCounts []int
	for j := 0; j < n; j++ {
		if len(children[j]) == 0 {
			continue
		}
		seen := map[int]bool{}
		grp := map[int]bool{}
		stack := append([]int(nil), children[j]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			grp[group[v]] = true
			stack = append(stack, children[v]...)
		}
		dependents = append(dependents, len(seen))
		groupCounts = append(groupCounts, len(grp))
	}

	// Chain lengths: longest downstream path from each job that has
	// dependents but no parents (pipeline roots).
	memo := make([]int, n)
	for i := range memo {
		memo[i] = -1
	}
	var depth func(j int) int
	depth = func(j int) int {
		if memo[j] >= 0 {
			return memo[j]
		}
		memo[j] = 0 // break accidental cycles defensively (none by construction)
		best := 0
		for _, ch := range children[j] {
			if d := depth(ch); d > best {
				best = d
			}
		}
		memo[j] = 1 + best
		return memo[j]
	}
	var chains []int
	for j := 0; j < n; j++ {
		if len(children[j]) > 0 && len(parents[j]) == 0 {
			chains = append(chains, depth(j))
		}
	}

	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	sort.Ints(dependents)
	sort.Ints(groupCounts)
	sort.Ints(chains)
	return &PipelineStats{
		Gaps:         gaps,
		ChainLengths: chains,
		Dependents:   dependents,
		Groups:       groupCounts,
	}, nil
}

// pickParent samples an earlier job proportional to popularity.
func pickParent(rng interface{ Float64() float64 }, pop []float64, before int) int {
	if before == 0 {
		return -1
	}
	var total float64
	for i := 0; i < before; i++ {
		total += pop[i]
	}
	r := rng.Float64() * total
	for i := 0; i < before; i++ {
		r -= pop[i]
		if r <= 0 {
			return i
		}
	}
	return before - 1
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
