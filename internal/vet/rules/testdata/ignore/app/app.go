// Fixture: the //jockeyvet:ignore escape hatch. A reasoned directive
// suppresses diagnostics on exactly one line — its own when it trails code,
// the next line when it stands alone — and a directive without a reason is
// itself reported.
package app

import "math/rand"

func inlineIgnore() float64 {
	return rand.Float64() //jockeyvet:ignore fixture: demonstrating the escape hatch
}

func standaloneIgnoreCoversOneLine() (float64, float64) {
	//jockeyvet:ignore fixture: covers only the next line
	a := rand.Float64()
	b := rand.Float64() // want `process-global random source`
	return a, b
}

// The unreasoned-directive case (//jockeyvet:ignore with no reason keeps
// the line's diagnostic and earns one of its own) lives in the framework
// test internal/vet/vet_test.go, because the `want` notation cannot share a
// line with the directive under test.
