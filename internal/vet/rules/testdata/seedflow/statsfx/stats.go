// Fixture: a miniature of internal/stats, analyzed under the real
// internal/stats import path so the seedflow intrinsics (DeriveSeed,
// DeriveSeedInt, SplitMix64) resolve and the consumer facts for
// NewRNG/NewSource/ReseedSource are derived exactly as they are for the
// real package. The package itself must come out clean: every generator
// here is parameter-seeded, which pushes the obligation to the callers.
package stats

import "math/rand/v2"

// SplitMix64 mixes x; seedflow summarizes it as a propagating deriver
// (derived out iff derived in) from the body alone.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed is an always-deriver intrinsic: its result is a derived seed
// whatever the inputs (the master seed is the experiment's root of trust).
func DeriveSeed(master uint64, labels ...string) uint64 {
	h := master
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h = (h ^ uint64(l[i])) * 0x100000001b3
		}
	}
	return SplitMix64(h)
}

// DeriveSeedInt is the allocation-free integer-label variant.
func DeriveSeedInt(master uint64, n int) uint64 {
	return SplitMix64(master ^ uint64(n)*0x9e3779b97f4a7c15)
}

// NewSource feeds its parameter into rand.NewPCG, making it a seed
// consumer: callers owe a derived seed at position 0.
func NewSource(seed uint64) *rand.PCG {
	return rand.NewPCG(SplitMix64(seed), SplitMix64(seed^0x9e3779b97f4a7c15))
}

// NewRNG chains through NewSource; the obligation propagates.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(NewSource(seed))
}

// ReseedSource re-seeds an existing generator in place; position 1 carries
// the seed obligation.
func ReseedSource(src *rand.PCG, seed uint64) {
	src.Seed(SplitMix64(seed), SplitMix64(seed^0x9e3779b97f4a7c15))
}
