// Package vettest is the fixture runner for the jockeyvet analyzers — the
// analysistest analogue of the stdlib-only internal/vet framework. A fixture
// is a directory holding one Go package whose lines carry expectations:
//
//	time.Now() // want `reads the wall clock`
//
// Each `want` regexp must match exactly one diagnostic reported on its line,
// and every diagnostic must be claimed by a want. Fixtures import only the
// standard library; export data comes from `go list -export`, so the runner
// works offline.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/jockeysim/jockey/internal/vet"
)

var (
	exportMu    sync.Mutex
	exportFiles = map[string]string{}
)

// exportData locates compiled export data for a standard-library import
// path via the go command (building it on first use).
func exportData(path string) (string, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	if f, ok := exportFiles[path]; ok {
		return f, nil
	}
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	if err != nil {
		return "", fmt.Errorf("go list -export %s: %v", path, err)
	}
	f := strings.TrimSpace(string(out))
	if f == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	exportFiles[path] = f
	return f, nil
}

// Run type-checks the fixture package in dir and checks the analyzers'
// diagnostics against the `// want` expectations. The package's import path
// is the directory base name, which is how fixtures opt in to
// package-scoped rules (a fixture dir named "cluster" is analyzed as the
// cluster package).
func Run(t *testing.T, dir string, analyzers ...*vet.Analyzer) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := exportData(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
	info := vet.NewInfo()
	pkg, err := (&types.Config{Importer: imp}).Check(filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	diags, err := vet.Check(fset, files, pkg, info, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, fset, files)
	type key struct {
		file string
		line int
	}
	unclaimed := map[key][]string{}
	for _, d := range diags {
		k := key{filepath.Base(d.Position.Filename), d.Position.Line}
		unclaimed[k] = append(unclaimed[k], d.Message)
	}
	for _, w := range wants {
		k := key{w.file, w.line}
		matched := -1
		for i, msg := range unclaimed[k] {
			if w.rx.MatchString(msg) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: no diagnostic matching %q (got %q)", w.file, w.line, w.rx, unclaimed[k])
			continue
		}
		unclaimed[k] = append(unclaimed[k][:matched], unclaimed[k][matched+1:]...)
	}
	for k, msgs := range unclaimed {
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
		}
	}
}

type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

var wantRE = regexp.MustCompile("// want ((?:[`\"][^`\"]*[`\"]\\s*)+)$")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pat, err := unquoteWant(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, want{filepath.Base(pos.Filename), pos.Line, rx})
				}
			}
		}
	}
	return wants
}

func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			out = append(out, s)
			break
		}
		out = append(out, s[:end+2])
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

func unquoteWant(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}
