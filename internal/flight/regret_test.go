package flight

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/jockeysim/jockey/internal/stats"
)

// syntheticWorld is a deterministic alloc → outcome map standing in for the
// cluster: completion falls (noisily but reproducibly) with allocation, and
// token cost is the constant grant integrated over the run. Every query for
// the same (seed, alloc) returns the identical outcome — the same exactness
// contract the real replayer gets from derived seeds.
type syntheticWorld struct {
	seed     uint64
	deadline time.Duration
}

func (w syntheticWorld) replay(alloc int) (ReplayOutcome, error) {
	rng := stats.NewRNG(stats.DeriveSeed(w.seed, "world", "alloc", time.Duration(alloc).String()))
	work := 30*time.Minute + time.Duration(rng.Int64N(int64(90*time.Minute)))
	speedup := float64(alloc) * (0.5 + rng.Float64()) // imperfect scaling
	if speedup < 1 {
		speedup = 1
	}
	completion := time.Duration(float64(work) / speedup)
	return ReplayOutcome{
		Alloc:             alloc,
		Completion:        completion,
		Met:               completion <= w.deadline,
		AllocTokenSeconds: float64(alloc) * completion.Seconds(),
	}, nil
}

// worldCase is one randomized property-test case, generated entirely from
// quick's fuzzed fields so every case is reproducible from the logged value.
type worldCase struct {
	Seed     uint64
	Deadline uint16 // minutes, offset below
	NCands   uint8
	Chosen   uint8
}

func (c worldCase) world() syntheticWorld {
	return syntheticWorld{
		seed:     c.Seed,
		deadline: 5*time.Minute + time.Duration(c.Deadline%120)*time.Minute,
	}
}

// candidates derives an ascending positive candidate set of 1..8 allocations.
func (c worldCase) candidates() []int {
	n := 1 + int(c.NCands%8)
	rng := stats.NewRNG(stats.DeriveSeed(c.Seed, "cands"))
	set := map[int]bool{}
	out := make([]int, 0, n)
	for len(out) < n {
		a := 1 + rng.IntN(100)
		if !set[a] {
			set[a] = true
			out = append(out, a)
		}
	}
	return out
}

// TestRegretNonNegative: both regret components are ≥ 0 for every run, even
// when the "actual" outcome is an arbitrary trajectory unrelated to any
// candidate.
func TestRegretNonNegative(t *testing.T) {
	prop := func(c worldCase, actualAlloc uint8) bool {
		w := c.world()
		actual, _ := w.replay(1 + int(actualAlloc%120))
		actual.Alloc = 0 // the actual run is a trajectory, not a candidate
		reg, err := Counterfactual(nil, actual, c.candidates(), w.replay)
		if err != nil {
			return false
		}
		return reg.DeadlineRegret >= 0 && reg.TokenRegret >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestRegretZeroAtHindsightOptimum: when the actual trajectory already equals
// the hindsight-best constant allocation, both regrets are exactly 0.
func TestRegretZeroAtHindsightOptimum(t *testing.T) {
	prop := func(c worldCase) bool {
		w := c.world()
		cands := c.candidates()
		best, _ := w.replay(cands[0])
		for _, a := range cands[1:] {
			o, _ := w.replay(a)
			if betterOutcome(o, best) {
				best = o
			}
		}
		actual := best
		actual.Alloc = 0
		reg, err := Counterfactual(nil, actual, cands, w.replay)
		if err != nil {
			return false
		}
		return reg.DeadlineRegret == 0 && reg.TokenRegret == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestRegretMonotoneUnderShrinkage: removing candidates (down to the chosen
// allocation alone) never increases either regret component — hindsight can
// only get weaker as its option set shrinks.
func TestRegretMonotoneUnderShrinkage(t *testing.T) {
	prop := func(c worldCase) bool {
		w := c.world()
		cands := c.candidates()
		chosen := cands[int(c.Chosen)%len(cands)]
		actual, _ := w.replay(chosen)
		actual.Alloc = 0

		// Shrink by repeatedly dropping the first non-chosen candidate.
		set := append([]int(nil), cands...)
		prevDeadline, prevToken := 2.0, 1e18
		for {
			reg, err := Counterfactual(nil, actual, set, w.replay)
			if err != nil {
				return false
			}
			if reg.DeadlineRegret > prevDeadline || reg.TokenRegret > prevToken {
				return false
			}
			prevDeadline, prevToken = reg.DeadlineRegret, reg.TokenRegret
			if len(set) == 1 {
				// Shrunk to {chosen}: the actual trajectory IS that constant
				// run, so regret must have reached exactly 0.
				return reg.DeadlineRegret == 0 && reg.TokenRegret == 0
			}
			drop := 0
			if set[drop] == chosen {
				drop = 1
			}
			set = append(set[:drop], set[drop+1:]...)
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCounterfactualDeduplicatesCandidates: duplicates and non-positive
// allocations are dropped; replays align with the cleaned ascending set.
func TestCounterfactualDeduplicatesCandidates(t *testing.T) {
	w := syntheticWorld{seed: 7, deadline: 30 * time.Minute}
	actual, _ := w.replay(10)
	actual.Alloc = 0
	reg, err := Counterfactual(nil, actual, []int{50, -3, 10, 50, 0, 10}, w.replay)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Candidates) != 2 || reg.Candidates[0] != 10 || reg.Candidates[1] != 50 {
		t.Fatalf("candidates = %v, want [10 50]", reg.Candidates)
	}
	for i, o := range reg.Replays {
		if o.Alloc != reg.Candidates[i] {
			t.Fatalf("replay %d has alloc %d, want %d", i, o.Alloc, reg.Candidates[i])
		}
	}
}

// TestAttributionTargetsNamedMechanisms: a run that missed while a replay
// met must attribute its shortfall to named mechanisms that sum over the
// under-provisioned ticks.
func TestAttributionTargetsNamedMechanisms(t *testing.T) {
	deadline := 20 * time.Minute
	ticks := []Tick{
		{At: 0, Granted: 10, Mechanism: "first-tick"},
		{At: 5 * time.Minute, Granted: 10, Mechanism: "dead-zone"},
		{At: 10 * time.Minute, Granted: 20, Mechanism: "hysteresis"},
		{At: 15 * time.Minute, Granted: 60, Mechanism: "model"},
	}
	actual := ReplayOutcome{Completion: 25 * time.Minute, Met: false, AllocTokenSeconds: 30000}
	replay := func(alloc int) (ReplayOutcome, error) {
		met := alloc >= 50
		return ReplayOutcome{
			Alloc:             alloc,
			Completion:        deadline - time.Duration(alloc)*time.Second,
			Met:               met,
			AllocTokenSeconds: float64(alloc) * 1000,
		}, nil
	}
	reg, err := Counterfactual(ticks, actual, []int{10, 50, 100}, replay)
	if err != nil {
		t.Fatal(err)
	}
	if reg.DeadlineRegret != 1 {
		t.Fatalf("deadline regret = %v, want 1 (alloc 50 met)", reg.DeadlineRegret)
	}
	if reg.HindsightAlloc != 50 {
		t.Fatalf("hindsight alloc = %d, want the cheaper met replay 50", reg.HindsightAlloc)
	}
	// Shortfall vs target 50: ticks 0–2 are short by 40, 40, 30 over 5 min
	// each; tick 3 granted 60 > 50 contributes nothing.
	want := map[string]float64{
		AttributionModelError: 40 * 300, // first-tick
		AttributionDeadZone:   40 * 300,
		AttributionHysteresis: 30 * 300,
	}
	if len(reg.Attribution) != len(want) {
		t.Fatalf("attribution = %+v, want %d mechanisms", reg.Attribution, len(want))
	}
	for _, s := range reg.Attribution {
		if w, ok := want[s.Mechanism]; !ok || s.GapTokenSeconds != w {
			t.Errorf("share %q = %v token-seconds, want %v", s.Mechanism, s.GapTokenSeconds, want[s.Mechanism])
		}
	}
	// Largest-first with the dead-zone/model-error tie broken by name.
	if reg.Attributed != AttributionDeadZone {
		t.Errorf("attributed = %q, want dead-zone (tie broken by name)", reg.Attributed)
	}
}
