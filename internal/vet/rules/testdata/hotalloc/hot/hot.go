// Fixture: the //jockey:hotpath allocation gate. Annotated bodies may not
// contain allocating constructs; identical constructs in unannotated
// functions are none of hotalloc's business.
package hot

import "fmt"

type arena struct {
	buf   []int
	items []item
	n     int
}

type item struct {
	id   int
	cost float64
}

type sink interface{ accept(int) }

//jockey:hotpath
func (a *arena) reuseIdioms(scratch []int) []int {
	// Everything here is allowed: appends to arena fields and reslices
	// amortize, value literals stay on the stack, arithmetic is free.
	a.buf = append(a.buf, a.n)
	scratch = append(scratch[:0], a.buf...)
	a.items = append(a.items, item{id: a.n, cost: 1.5})
	a.n++
	return scratch
}

//jockey:hotpath
func makeAndNew() {
	_ = make([]int, 8) // want `make allocates`
	_ = new(arena)     // want `new allocates`
	_ = map[int]int{}  // want `map literal allocates`
	_ = []int{1, 2, 3} // want `slice literal allocates`
	_ = &item{id: 1}   // want `&item composite literal escapes`
}

//jockey:hotpath
func appendGrowth(local []int, a *arena) []int {
	local = append(local, 1) // want `append to a local slice allocates`
	return append(a.buf, 2)  // ok: arena field
}

//jockey:hotpath
func formatting(id int, name string) string {
	s := fmt.Sprintf("job-%d", id) // want `fmt.Sprintf allocates`
	s = s + name                   // want `string concatenation allocates`
	s += "!"                       // want `string \+= allocates`
	b := []byte(name)              // want `string<->\[\]byte conversion`
	return string(b)               // want `string<->\[\]byte conversion`
}

//jockey:hotpath
func boxing(s sink, it item) {
	var box interface{} = it // want `boxes it`
	_ = box
	consume(it) // want `passing .*item by value boxes it`
	consume(&it)
	s.accept(it.id)
}

func consume(v interface{}) { _ = v }

//jockey:hotpath
func closures(base int) func() int {
	inc := func() int { return base + 1 } // want `closure captures base`
	pure := func(x int) int { return x * 2 }
	_ = pure
	return inc
}

//jockey:hotpath
func spawning() {
	go consume(nil) // want `go statement allocates a goroutine`
}

// coldPath has every construct above and no annotation: no findings.
func coldPath(id int) string {
	xs := make([]int, 4)
	xs = append(xs, id)
	m := map[int]int{id: id}
	_ = m
	go consume(nil)
	return fmt.Sprintf("cold-%d", id)
}
