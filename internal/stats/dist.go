package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"github.com/jockeysim/jockey/internal/invariant"
)

// Distribution models a probability distribution over durations. Task service
// times, queueing delays and initialization latencies are all Distributions.
type Distribution interface {
	// Sample draws one value using the supplied generator.
	Sample(r *rand.Rand) time.Duration
	// Mean returns the distribution mean.
	Mean() time.Duration
	// Quantile returns the q-quantile for q in [0, 1].
	Quantile(q float64) time.Duration
	fmt.Stringer
}

// zScore returns the standard-normal quantile for probability q.
func zScore(q float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return math.Sqrt2 * math.Erfinv(2*q-1)
}

func secondsToDuration(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	if s > math.MaxInt64/float64(time.Second) {
		return math.MaxInt64
	}
	return time.Duration(s * float64(time.Second))
}

func durationToSeconds(d time.Duration) float64 { return d.Seconds() }

// Point is a degenerate distribution that always returns V.
type Point struct{ V time.Duration }

// Sample implements Distribution.
func (p Point) Sample(*rand.Rand) time.Duration { return p.V }

// Mean implements Distribution.
func (p Point) Mean() time.Duration { return p.V }

// Quantile implements Distribution.
func (p Point) Quantile(float64) time.Duration { return p.V }

func (p Point) String() string { return fmt.Sprintf("point(%v)", p.V) }

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct{ Lo, Hi time.Duration }

// Sample implements Distribution.
func (u Uniform) Sample(r *rand.Rand) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(r.Int64N(int64(u.Hi-u.Lo)))
}

// Mean implements Distribution.
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

// Quantile implements Distribution.
func (u Uniform) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return u.Lo + time.Duration(q*float64(u.Hi-u.Lo))
}

func (u Uniform) String() string { return fmt.Sprintf("uniform(%v,%v)", u.Lo, u.Hi) }

// Exponential is the exponential distribution with the given mean.
type Exponential struct{ MeanValue time.Duration }

// Sample implements Distribution.
func (e Exponential) Sample(r *rand.Rand) time.Duration {
	return secondsToDuration(r.ExpFloat64() * e.MeanValue.Seconds())
}

// Mean implements Distribution.
func (e Exponential) Mean() time.Duration { return e.MeanValue }

// Quantile implements Distribution.
func (e Exponential) Quantile(q float64) time.Duration {
	if q >= 1 {
		q = 1 - 1e-12
	}
	if q < 0 {
		q = 0
	}
	return secondsToDuration(-math.Log(1-q) * e.MeanValue.Seconds())
}

func (e Exponential) String() string { return fmt.Sprintf("exp(mean=%v)", e.MeanValue) }

// Lognormal is the lognormal distribution: exp(N(Mu, Sigma²)) seconds.
// It is the workhorse for task service times because measured data-parallel
// task runtimes are heavy-tailed (the paper's "outliers").
type Lognormal struct {
	Mu    float64 // mean of the underlying normal, in log-seconds
	Sigma float64 // stddev of the underlying normal
}

// LognormalFromMedian builds a Lognormal whose median and 90th percentile
// match the given durations (the two statistics Table 2 of the paper
// publishes per stage). If p90 <= median the distribution degenerates to a
// narrow spread around the median.
func LognormalFromMedian(median, p90 time.Duration) Lognormal {
	const z90 = 1.2815515655446004
	mu := math.Log(math.Max(median.Seconds(), 1e-9))
	sigma := (math.Log(math.Max(p90.Seconds(), 1e-9)) - mu) / z90
	if sigma < 0.01 {
		sigma = 0.01
	}
	return Lognormal{Mu: mu, Sigma: sigma}
}

// Sample implements Distribution.
func (l Lognormal) Sample(r *rand.Rand) time.Duration {
	return secondsToDuration(math.Exp(l.Mu + l.Sigma*r.NormFloat64()))
}

// Mean implements Distribution.
func (l Lognormal) Mean() time.Duration {
	return secondsToDuration(math.Exp(l.Mu + l.Sigma*l.Sigma/2))
}

// Quantile implements Distribution.
func (l Lognormal) Quantile(q float64) time.Duration {
	return secondsToDuration(math.Exp(l.Mu + l.Sigma*zScore(q)))
}

func (l Lognormal) String() string {
	return fmt.Sprintf("lognormal(mu=%.3f,sigma=%.3f)", l.Mu, l.Sigma)
}

// Shifted adds a constant offset to every sample of the base distribution.
type Shifted struct {
	Base   Distribution
	Offset time.Duration
}

// Sample implements Distribution.
func (s Shifted) Sample(r *rand.Rand) time.Duration { return s.Offset + s.Base.Sample(r) }

// Mean implements Distribution.
func (s Shifted) Mean() time.Duration { return s.Offset + s.Base.Mean() }

// Quantile implements Distribution.
func (s Shifted) Quantile(q float64) time.Duration { return s.Offset + s.Base.Quantile(q) }

func (s Shifted) String() string { return fmt.Sprintf("%v+%v", s.Offset, s.Base) }

// Scaled multiplies every sample of the base distribution by Factor.
// Profiles use it to model input-size inflation (Table 3's "almost twice as
// much work").
type Scaled struct {
	Base   Distribution
	Factor float64
}

// Sample implements Distribution.
func (s Scaled) Sample(r *rand.Rand) time.Duration {
	return time.Duration(float64(s.Base.Sample(r)) * s.Factor)
}

// Mean implements Distribution.
func (s Scaled) Mean() time.Duration {
	return time.Duration(float64(s.Base.Mean()) * s.Factor)
}

// Quantile implements Distribution.
func (s Scaled) Quantile(q float64) time.Duration {
	return time.Duration(float64(s.Base.Quantile(q)) * s.Factor)
}

func (s Scaled) String() string { return fmt.Sprintf("%.2f*%v", s.Factor, s.Base) }

// Empirical is the empirical distribution of a set of observed samples,
// as extracted from a recorded training run. Sampling draws uniformly with
// linear interpolation between order statistics.
type Empirical struct {
	sorted []time.Duration
	mean   time.Duration
}

// NewEmpirical builds an empirical distribution from observed samples.
// It copies and sorts the input. It panics if samples is empty, because an
// empirical distribution of nothing is a programming error in the caller.
func NewEmpirical(samples []time.Duration) *Empirical {
	invariant.Assertf(len(samples) > 0, "stats: NewEmpirical with no samples")
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	return &Empirical{sorted: s, mean: time.Duration(sum / float64(len(s)))}
}

// Len returns the number of underlying samples.
func (e *Empirical) Len() int { return len(e.sorted) }

// Sample implements Distribution.
func (e *Empirical) Sample(r *rand.Rand) time.Duration {
	return e.Quantile(r.Float64())
}

// Mean implements Distribution.
func (e *Empirical) Mean() time.Duration { return e.mean }

// Quantile implements Distribution.
func (e *Empirical) Quantile(q float64) time.Duration {
	return QuantileDurations(e.sorted, q)
}

func (e *Empirical) String() string {
	return fmt.Sprintf("empirical(n=%d,median=%v)", len(e.sorted), e.Quantile(0.5))
}

// Samples returns the sorted underlying samples. The returned slice is owned
// by the Empirical and must not be modified.
func (e *Empirical) Samples() []time.Duration { return e.sorted }
