package cluster

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/stats"
)

// stragglerProfile: most tasks take 10s but the service distribution has a
// rare enormous mode, so some tasks straggle for minutes.
func stragglerProfile(t testing.TB, tasks int) *profile.Profile {
	t.Helper()
	job := dag.NewBuilder("strag").Stage("work", tasks).MustBuild()
	// Mixture via lognormal with heavy sigma, truncated at 10 minutes.
	return profile.MustNew(job, []profile.StageProfile{
		{Exec: stats.Truncated{
			Base: stats.Lognormal{Mu: 2.3, Sigma: 1.6}, // median 10s, wild tail
			Max:  10 * time.Minute,
		}},
	})
}

func TestSubmitRejectsBadSpeculativeThreshold(t *testing.T) {
	c, _ := New(Config{})
	p := stragglerProfile(t, 4)
	if _, err := c.Submit(JobConfig{Profile: p, Guarantee: 2, SpeculativeThreshold: 0.5}); err == nil {
		t.Error("threshold < 1 must fail")
	}
}

func TestSpeculationLaunchesDuplicatesAndCompletes(t *testing.T) {
	run := func(threshold float64) Result {
		c, _ := New(Config{Machines: 10, SlotsPerMachine: 2, Seed: 42})
		p := stragglerProfile(t, 60)
		h, err := c.Submit(JobConfig{
			Profile:              p,
			Guarantee:            10,
			Deadline:             2 * time.Hour,
			Tracked:              true,
			SpeculativeThreshold: threshold,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return h.Result()
	}
	plain := run(0)
	spec := run(2.0)
	if plain.Duplicates != 0 {
		t.Errorf("speculation disabled but %d duplicates launched", plain.Duplicates)
	}
	if spec.Duplicates == 0 {
		t.Fatal("no duplicates launched despite stragglers")
	}
	// Every task still completes exactly once.
	succ := map[int]int{}
	for _, e := range spec.Trace.Events {
		if !e.Failed {
			succ[e.Task]++
		}
	}
	if len(succ) != 60 {
		t.Fatalf("only %d tasks completed", len(succ))
	}
	for task, n := range succ {
		if n != 1 {
			t.Errorf("task %d completed %d times", task, n)
		}
	}
	// Straggler mitigation should shorten the straggler-bound tail.
	if spec.Completion >= plain.Completion {
		t.Errorf("speculation did not help: %v vs %v", spec.Completion, plain.Completion)
	}
}

func TestSpeculationSurvivesMachineFailures(t *testing.T) {
	c, _ := New(Config{
		Machines:        6,
		SlotsPerMachine: 2,
		MachineMTBF:     3 * time.Minute,
		MachineRecovery: stats.Point{V: time.Minute},
		Seed:            7,
	})
	p := stragglerProfile(t, 40)
	h, err := c.Submit(JobConfig{
		Profile:              p,
		Guarantee:            6,
		Deadline:             3 * time.Hour,
		Tracked:              true,
		SpeculativeThreshold: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := h.Result()
	succ := 0
	for _, e := range r.Trace.Events {
		if !e.Failed {
			succ++
		}
	}
	if succ != 40 {
		t.Errorf("completions = %d, want 40 (every task exactly once despite failures+speculation)", succ)
	}
}

func TestSpeculationDeterministic(t *testing.T) {
	run := func() (time.Duration, int) {
		c, _ := New(Config{Machines: 8, SlotsPerMachine: 2,
			MachineMTBF: 10 * time.Minute, Seed: 9})
		p := stragglerProfile(t, 50)
		h, _ := c.Submit(JobConfig{Profile: p, Guarantee: 8, Deadline: 2 * time.Hour,
			Tracked: true, SpeculativeThreshold: 2})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return h.Result().Completion, h.Result().Duplicates
	}
	c1, d1 := run()
	c2, d2 := run()
	if c1 != c2 || d1 != d2 {
		t.Errorf("replay diverged: %v/%d vs %v/%d", c1, d1, c2, d2)
	}
}

func TestWeightedSpareSharing(t *testing.T) {
	// Two identical jobs with weights 1 and 3 contend for spare capacity on
	// a saturated cluster: the heavy job should complete ~3x faster.
	mk := func(name string, tasks int) *profile.Profile {
		job := dag.NewBuilder(name).Stage("work", tasks).MustBuild()
		return profile.MustNew(job, []profile.StageProfile{
			{Exec: stats.Point{V: 10 * time.Second}},
		})
	}
	c, _ := New(Config{Machines: 4, SlotsPerMachine: 2, Seed: 1})
	light, err := c.Submit(JobConfig{Profile: mk("light", 200), Guarantee: 1, Weight: 1, Tracked: true})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := c.Submit(JobConfig{Profile: mk("heavy", 200), Guarantee: 1, Weight: 3, Tracked: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// While both jobs are pending, the heavy one should accumulate roughly
	// three times the completions. Compare completions at the moment the
	// first job finishes.
	first := light.Result().Completion + light.Result().Start
	if h := heavy.Result().Completion + heavy.Result().Start; h < first {
		first = h
	}
	count := func(r Result) int {
		n := 0
		for _, e := range r.Trace.Events {
			if !e.Failed && e.Ended <= first-light.Result().Start {
				n++
			}
		}
		return n
	}
	lightDone, heavyDone := count(light.Result()), count(heavy.Result())
	ratio := float64(heavyDone) / float64(lightDone)
	if ratio < 2.0 || ratio > 4.5 {
		t.Errorf("weighted sharing ratio = %.2f (heavy %d vs light %d), want ~3",
			ratio, heavyDone, lightDone)
	}
}

func TestWeightValidation(t *testing.T) {
	c, _ := New(Config{})
	p := stragglerProfile(t, 2)
	if _, err := c.Submit(JobConfig{Profile: p, Guarantee: 1, Weight: -1}); err == nil {
		t.Error("negative weight must fail")
	}
}
