// Package eventq provides the deterministic discrete-event priority queue
// shared by the offline job simulator (internal/sim) and the shared-cluster
// simulator (internal/cluster).
//
// Events are ordered by time; ties are broken by insertion sequence so that
// simulations are reproducible regardless of heap internals.
//
// The queue has two storage regimes behind one interface:
//
//   - a hand-rolled binary heap (the reference implementation), used below
//     calendarPromoteLen. It replaced a container/heap adapter: the stdlib
//     interface moves every element through `any`, which boxes one
//     allocation per Push. This matters because the queue sits on the
//     simulator's innermost loop: one Push+Pop per task attempt, millions
//     per C(p, a) table build.
//   - a bucketed calendar queue (calendar.go) with heap-ordered buckets,
//     promoted to automatically when the queue grows past
//     calendarPromoteLen — O(1) amortized push/pop at the event densities a
//     Cosmos-scale replay produces (10⁵–10⁶ queued events), where the
//     heap's log n cache-missing comparisons dominate.
//
// Because (time, seq) is a strict total order, the pop sequence is fully
// determined by the push sequence and is identical across the heap, the
// calendar, and the old container/heap adapter (pinned by the randomized
// differential tests in eventq_ref_test.go, including a 10⁵-event run).
// Which regime serves an operation is a pure function of the operation
// history, so replays are bit-identical whether or not promotion happens —
// and SetPolicy can force either regime for differential testing.
package eventq

import (
	"time"
)

type item[T any] struct {
	at  time.Duration
	seq uint64
	v   T
}

// Policy selects the queue's storage regime.
type Policy int8

const (
	// PolicyAuto (the zero value) starts on the reference heap and promotes
	// to the calendar queue when Len reaches calendarPromoteLen. Promotion
	// never changes the pop sequence; small queues keep the heap's lower
	// constant overhead.
	PolicyAuto Policy = iota
	// PolicyHeap pins the reference binary heap.
	PolicyHeap
	// PolicyCalendar pins the calendar queue regardless of size.
	PolicyCalendar
)

// calendarPromoteLen is the PolicyAuto promotion threshold. Replays sized
// like the paper's Table 2 experiments stay well below it (the heap is
// faster there); a 10k-machine replay crosses it during the first arrival
// burst.
const calendarPromoteLen = 4096

// Queue is a time-ordered event queue. The zero value is ready to use.
type Queue[T any] struct {
	h     []item[T]
	seq   uint64
	pol   Policy
	onCal bool
	cal   calendar[T]
}

// SetPolicy selects the storage regime, migrating any queued events. The
// pop order is identical under any policy; only performance differs. It is
// not reset by Reset.
func (q *Queue[T]) SetPolicy(p Policy) {
	q.pol = p
	switch {
	case p == PolicyCalendar && !q.onCal:
		q.promote()
	case p == PolicyHeap && q.onCal:
		q.demote()
	}
}

// promote moves every queued event from the heap into the calendar. Items
// keep their (at, seq) keys, so the pop sequence is unchanged.
func (q *Queue[T]) promote() {
	q.cal.rebuild(q.h)
	clear(q.h)
	q.h = q.h[:0]
	q.onCal = true
}

// demote moves every queued event from the calendar back onto the heap.
func (q *Queue[T]) demote() {
	for i := range q.cal.buckets {
		q.h = append(q.h, q.cal.buckets[i]...)
	}
	q.cal.reset()
	// Heapify bottom-up; order is (at, seq), so the layout the sifts
	// produce does not affect the pop sequence.
	for i := len(q.h)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
	q.onCal = false
}

// less orders the heap by (time, insertion sequence). seq values are unique,
// so this is a strict total order and pop order does not depend on sift
// internals.
//
//jockey:hotpath
func (q *Queue[T]) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].seq < q.h[j].seq
}

// Push schedules v at the given time. Steady-state pushes (within the
// queue's high-water capacity) do not allocate.
//
//jockey:hotpath
func (q *Queue[T]) Push(at time.Duration, v T) {
	q.seq++
	if q.onCal {
		q.cal.push(item[T]{at: at, seq: q.seq, v: v})
		return
	}
	q.h = append(q.h, item[T]{at: at, seq: q.seq, v: v})
	q.up(len(q.h) - 1)
	if q.pol == PolicyAuto && len(q.h) >= calendarPromoteLen {
		q.promote()
	}
}

// Entry is one element of a PushBatch bulk insert.
type Entry[T any] struct {
	At time.Duration
	V  T
}

// PushBatch schedules every entry in slice order. It is semantically
// identical to len(es) sequential Pushes — entries get consecutive
// insertion sequences, so the pop order is bit-identical (pinned by the
// differential tests in batch_test.go) — but the structural work is
// amortized once per batch instead of once per event:
//
//   - heap regime: entries are appended in bulk; a large batch is folded in
//     with one bottom-up heapify (O(n+k)) instead of k sift-ups
//     (O(k log n)), a small one sifts per entry. The PolicyAuto promotion
//     check runs once, after the batch.
//   - calendar regime: a batch big enough to force ring growth is staged
//     and rebuilt in one resize sized for the whole batch (the rebuild also
//     sees the batch's time span, so the bucket width is tuned to where
//     the events actually land); otherwise entries skip the per-push grow
//     check and one deferred check runs at the end.
//
// Steady-state batches (within the queue's high-water capacity) do not
// allocate.
//
//jockey:hotpath
func (q *Queue[T]) PushBatch(es []Entry[T]) {
	k := len(es)
	if k == 0 {
		return
	}
	// A batch that will cross the promotion threshold goes to the calendar
	// FIRST: promoting the (small) existing heap and bulk-filing the batch
	// is one right-sized rebuild, where absorbing the batch into the heap
	// would grow it to n+k big items, heapify them, and immediately throw
	// that layout away on promotion. Storage regime is performance-only,
	// so promoting early cannot change the pop order.
	if !q.onCal && q.pol == PolicyAuto && len(q.h)+k >= calendarPromoteLen {
		q.promote()
	}
	if q.onCal {
		q.cal.pushBatch(es, &q.seq)
		return
	}
	n := len(q.h)
	for i := range es {
		q.seq++
		q.h = append(q.h, item[T]{at: es[i].At, seq: q.seq, v: es[i].V})
	}
	// k sift-ups cost O(k log(n+k)); one bottom-up heapify costs O(n+k).
	// Pick the cheaper; either layout pops identically, since (at, seq) is
	// a strict total order.
	if lg := bitlen(n + k); k*lg >= n+k {
		for i := (n+k)/2 - 1; i >= 0; i-- {
			q.down(i)
		}
	} else {
		for i := n; i < n+k; i++ {
			q.up(i)
		}
	}
	if q.pol == PolicyAuto && len(q.h) >= calendarPromoteLen {
		q.promote()
	}
}

// bitlen is bits.Len for small non-negative ints (≈ ⌈log2⌉), open-coded so
// the hot path stays dependency-free.
//
//jockey:hotpath
func bitlen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// Pop removes and returns the earliest event. ok is false if the queue is
// empty. Pop never allocates.
//
//jockey:hotpath
func (q *Queue[T]) Pop() (at time.Duration, v T, ok bool) {
	if q.onCal {
		it, ok := q.cal.pop()
		return it.at, it.v, ok
	}
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	it := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = item[T]{} // drop references so reused capacity cannot retain T's pointers
	q.h = q.h[:n]
	if n > 1 {
		q.down(0)
	}
	return it.at, it.v, true
}

// Peek returns the earliest event time without removing it.
//
//jockey:hotpath
func (q *Queue[T]) Peek() (at time.Duration, ok bool) {
	if q.onCal {
		return q.cal.peek()
	}
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// Len returns the number of queued events.
//
//jockey:hotpath
func (q *Queue[T]) Len() int {
	if q.onCal {
		return q.cal.n
	}
	return len(q.h)
}

// Reset empties the queue in place, keeping the backing array so a reused
// queue (sim.Runner runs thousands of simulations on one queue) reaches its
// high-water capacity once and never allocates again. The insertion
// sequence restarts at zero, so a Reset queue behaves bit-identically to a
// fresh one.
//
//jockey:hotpath
func (q *Queue[T]) Reset() {
	clear(q.h) // drop references held by T
	q.h = q.h[:0]
	q.cal.reset()
	q.seq = 0
	q.onCal = q.pol == PolicyCalendar
}

// up restores the heap property from index i toward the root.
//
//jockey:hotpath
func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// down restores the heap property from index i toward the leaves.
//
//jockey:hotpath
func (q *Queue[T]) down(i int) {
	n := len(q.h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			return
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
}
