package fleet

import (
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
)

// fleetScaleConfig is the thousands-of-jobs acceptance workload (ROADMAP
// item: fleet-scale throughput): a 3,500-slot cluster offered 2,400 jobs
// at one offer per 8 seconds, which admits well over 2,000 of them and
// keeps hundreds active per epoch. The per-epoch water-fill and the
// admission machinery — not the task simulation — dominate this replay,
// so it is the benchmark that moves when the arbiter's epoch cost does.
func fleetScaleConfig() Config {
	return Config{
		Seed:             11,
		Machines:         700,
		SlotsPerMachine:  5,
		Budget:           3500,
		Arrivals:         2400,
		MeanInterarrival: 8 * time.Second,
	}
}

// TestFleetScaleReplay is the acceptance test for the fleet-scale
// contract: ≥2,000 admitted jobs, grants byte-identical to the retired
// reference scan on every epoch, and arbiter epoch cost staying within a
// linear budget of the active-job count.
func TestFleetScaleReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fleet-scale replay pays the reference scan's quadratic cost")
	}
	cfg := fleetScaleConfig()
	cfg.selfCheck = t.Errorf
	rungs := maxGridRungs(t)
	cfg.OnEpoch = func(s EpochStats) {
		if s.Bidders > 0 && s.HeapOps > 8*s.Bidders*rungs {
			t.Errorf("epoch at %v: %d heap ops for %d bidders exceeds the linear budget", s.At, s.HeapOps, s.Bidders)
		}
	}
	res := mustRun(t, cfg)
	if res.Admitted < 2000 {
		t.Fatalf("fleet-scale replay admitted %d jobs, want >= 2000", res.Admitted)
	}
}

// BenchmarkFleetScaleReplay times the 2,400-offer replay with models and
// engine warmed outside the loop, so the measurement is admission,
// arbitration, and simulation — the fleet-scale hot path.
func BenchmarkFleetScaleReplay(b *testing.B) {
	models := NewModelCache(99)
	eng := cluster.NewEngine()
	warm := fleetScaleConfig()
	warm.Models = models
	warm.Engine = eng
	if _, err := Run(warm); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := fleetScaleConfig()
		cfg.Models = models
		cfg.Engine = eng
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
