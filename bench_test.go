// Benchmarks regenerating every table and figure of the paper (one
// benchmark per artifact, on reduced run counts — cmd/experiments runs the
// full versions), plus throughput and ablation benchmarks for the design
// choices called out in DESIGN.md.
//
// Run with:
//
//	go test -bench=. -benchmem
package jockey_test

import (
	"strconv"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/dag"
	"github.com/jockeysim/jockey/internal/experiments"
	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/progress"
	"github.com/jockeysim/jockey/internal/sim"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
	"github.com/jockeysim/jockey/internal/workload"
)

// benchEnv is shared across benchmarks: the expensive per-job model builds
// are cached inside it, so each benchmark measures its experiment's runs.
var benchEnv = experiments.NewEnv(1)

// benchJobs keeps the per-figure benchmarks affordable; cmd/experiments
// uses all seven jobs.
var benchJobs = []string{"B", "E"}

func BenchmarkTable1CoV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t1, err := experiments.RecurringVariance(benchEnv, experiments.Table1Config{
			Jobs: benchJobs, RunsPerJob: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(t1.PerJobCoV[0], "cov-job0")
		}
	}
}

func BenchmarkFigure1Dependencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f1, err := experiments.Dependencies(benchEnv, 5000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(f1.MedianGap().Minutes(), "median-gap-min")
		}
	}
}

func BenchmarkTable2JobStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.JobStatistics(benchEnv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3DAGs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f3, err := experiments.StageGraphs(benchEnv)
		if err != nil {
			b.Fatal(err)
		}
		if len(f3.DOT) != 7 {
			b.Fatal("missing DOT outputs")
		}
	}
}

func BenchmarkFigure4PolicyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.PolicyComparison(benchEnv, experiments.ComparisonConfig{
			Jobs: benchJobs, SeedsPerCase: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range cmp.Summaries() {
				if s.Policy == experiments.PolicyJockey {
					b.ReportMetric(s.MissedFrac, "jockey-missed")
					b.ReportMetric(s.AboveOracle, "jockey-above-oracle")
				}
			}
		}
	}
}

func BenchmarkFigure5CompletionCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.PolicyComparison(benchEnv, experiments.ComparisonConfig{
			Jobs: benchJobs, SeedsPerCase: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if out := cmp.RenderFig5(); len(out) == 0 {
			b.Fatal("empty CDF")
		}
	}
}

func BenchmarkFigure6Timelapse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f6, err := experiments.Timelapses(benchEnv)
		if err != nil {
			b.Fatal(err)
		}
		if len(f6.Cases) != 3 {
			b.Fatal("missing cases")
		}
	}
}

func BenchmarkTable3TrainingVsRuns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TrainingVsActual(benchEnv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7DeadlineChanges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f7, err := experiments.DeadlineChanges(benchEnv, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			met := 0
			for _, r := range f7.Runs {
				if r.Outcome.Met {
					met++
				}
			}
			b.ReportMetric(float64(met)/float64(len(f7.Runs)), "met-frac")
		}
	}
}

func BenchmarkFigure8PredictionError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f8, err := experiments.PredictionAccuracy(benchEnv, benchJobs, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(f8.AvgSim, "sim-err")
			b.ReportMetric(f8.AvgAmdahl, "amdahl-err")
		}
	}
}

func BenchmarkFigure9IndicatorTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f9, err := experiments.IndicatorTraces(benchEnv)
		if err != nil {
			b.Fatal(err)
		}
		if len(f9.Series) != 2 {
			b.Fatal("missing series")
		}
	}
}

func BenchmarkFigure10IndicatorComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f10, err := experiments.IndicatorComparison(benchEnv, []string{"G"})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(f10.Rows[0].AvgDeltaT, "totalworkWithQ-deltaT")
		}
	}
}

func BenchmarkFigure11Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Sensitivity(benchEnv, []string{"B"}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12SlackSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SlackSweep(benchEnv, []string{"B"}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13HysteresisSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HysteresisSweep(benchEnv, []string{"B"}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- system throughput benchmarks ---

// BenchmarkSimulatorThroughput measures the offline job simulator on job F
// (6139 vertices); the reported tasks/op quantifies the event engine. The
// one-shot variant pays a fresh engine per run (the compatibility path);
// the reused variant is what the model builds actually do — one Runner's
// arenas recycled across runs.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := workload.MustGenerate(mustSpec(b, "F"), 1)
	b.Run("one-shot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, err := sim.Run(sim.Config{Profile: p, Alloc: 50, Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if tr.Completion <= 0 {
				b.Fatal("no completion")
			}
		}
		b.ReportMetric(float64(p.Job.TotalTasks()), "tasks/op")
	})
	b.Run("reused-runner", func(b *testing.B) {
		r := sim.NewRunner()
		for i := 0; i < b.N; i++ {
			tr, err := r.Run(sim.Config{Profile: p, Alloc: 50, Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if tr.Completion <= 0 {
				b.Fatal("no completion")
			}
		}
		b.ReportMetric(float64(p.Job.TotalTasks()), "tasks/op")
	})
}

// BenchmarkCPABuild measures the offline model construction for one job —
// the precomputation Jockey amortizes across runs of a recurring job. The
// sub-benchmarks vary the worker-pool size; per-cell seeding plus the
// deterministic merge make every variant build the bit-identical table, so
// the ratio between p1 and pN is pure wall-clock speedup (bounded by the
// machine's core count).
func BenchmarkCPABuild(b *testing.B) {
	p := workload.MustGenerate(mustSpec(b, "E"), 1)
	ind := progress.NewTotalWorkWithQ(p)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run("p"+strconv.Itoa(par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := model.BuildCPA(p, ind, model.CPAConfig{
					Allocs:       []int{5, 10, 20, 40, 80},
					RunsPerAlloc: 5,
					Seed:         uint64(i),
					Parallelism:  par,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnlineSim measures one control-tick's worth of online forward
// prediction (every candidate allocation at one state) across worker-pool
// sizes — the §4.4 enhancement's per-decision cost that parallelism must
// amortize for it to be usable inside a 1-minute control period.
func BenchmarkOnlineSim(b *testing.B) {
	p := workload.MustGenerate(mustSpec(b, "B"), 1)
	st := model.State{Elapsed: 10 * time.Minute, FracDone: halfDone(p)}
	u := benchUtility()
	for _, par := range []int{1, 2, 4, 8} {
		b.Run("p"+strconv.Itoa(par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o, err := model.NewOnlineSim(p, 8, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				o.SetParallelism(par)
				for _, a := range []int{5, 10, 20, 40, 80} {
					o.ExpectedUtility(st, a, 1.2, u)
				}
			}
		})
	}
}

// --- ablation benchmarks (design choices in DESIGN.md §5) ---

// BenchmarkAblationBucketWidth compares C(p, a) progress-bucket widths: too
// few buckets blur early and late progress together; the reported error is
// the relative difference between the model's half-progress prediction and
// the fine-grained reference.
func BenchmarkAblationBucketWidth(b *testing.B) {
	p := workload.MustGenerate(mustSpec(b, "E"), 1)
	ind := progress.NewTotalWorkWithQ(p)
	build := func(buckets int, seed uint64) *model.CPA {
		c, err := model.BuildCPA(p, ind, model.CPAConfig{
			Allocs:       []int{10, 40},
			RunsPerAlloc: 6,
			Buckets:      buckets,
			Seed:         seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	st := model.State{FracDone: halfDone(p)}
	for _, buckets := range []int{10, 100, 400} {
		b.Run(fmtInt(buckets), func(b *testing.B) {
			var last time.Duration
			for i := 0; i < b.N; i++ {
				c := build(buckets, 7)
				last = c.Remaining(st, 40, 0.9)
			}
			b.ReportMetric(last.Seconds(), "half-progress-pred-s")
		})
	}
}

// BenchmarkAblationRunsPerAlloc compares how many offline simulations feed
// each allocation: more runs tighten the worst-case estimate.
func BenchmarkAblationRunsPerAlloc(b *testing.B) {
	p := workload.MustGenerate(mustSpec(b, "B"), 1)
	ind := progress.NewTotalWorkWithQ(p)
	for _, runs := range []int{2, 8, 32} {
		b.Run(fmtInt(runs), func(b *testing.B) {
			var worst time.Duration
			for i := 0; i < b.N; i++ {
				c, err := model.BuildCPA(p, ind, model.CPAConfig{
					Allocs:       []int{40},
					RunsPerAlloc: runs,
					Seed:         9,
				})
				if err != nil {
					b.Fatal(err)
				}
				worst = c.Remaining(model.State{FracDone: make([]float64, p.Job.NumStages())}, 40, 1.0)
			}
			b.ReportMetric(worst.Seconds(), "worst-case-pred-s")
		})
	}
}

func mustSpec(b *testing.B, name string) workload.JobSpec {
	b.Helper()
	s, err := workload.Spec(name)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// halfDone builds a stage-fraction vector with every stage half complete.
func halfDone(p *profile.Profile) []float64 {
	fs := make([]float64, p.Job.NumStages())
	for i := range fs {
		fs[i] = 0.5
	}
	return fs
}

func fmtInt(v int) string { return "n" + strconv.Itoa(v) }

// BenchmarkAblationOnlineSim compares the per-decision cost of the
// precomputed C(p,a) table against online forward simulation (§4.4's
// proposed enhancement): the table answers in microseconds, the online
// simulator pays a fresh simulation per candidate allocation.
func BenchmarkAblationOnlineSim(b *testing.B) {
	p := workload.MustGenerate(mustSpec(b, "B"), 1)
	st := model.State{Elapsed: 10 * time.Minute, FracDone: halfDone(p)}
	u := benchUtility()
	b.Run("cpa-table", func(b *testing.B) {
		cpa, err := model.BuildCPA(p, progress.NewTotalWorkWithQ(p), model.CPAConfig{
			Allocs: []int{5, 10, 20, 40, 80}, RunsPerAlloc: 6, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, a := range cpa.Allocs() {
				cpa.ExpectedUtility(st, a, 1.2, u)
			}
		}
	})
	b.Run("online-sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o, err := model.NewOnlineSim(p, 3, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			for _, a := range []int{5, 10, 20, 40, 80} {
				o.ExpectedUtility(st, a, 1.2, u)
			}
		}
	})
}

// BenchmarkAblationSpeculation measures straggler mitigation (§4.4's
// "aggressiveness of mitigating stragglers" knob) on a straggler-heavy job:
// the reported completion shows duplicates trimming the tail.
func BenchmarkAblationSpeculation(b *testing.B) {
	job := daggen(b)
	p, err := profile.New(job, []profile.StageProfile{
		{Exec: stats.Truncated{Base: stats.Lognormal{Mu: 2.3, Sigma: 1.6}, Max: 10 * time.Minute}},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, th := range []float64{0, 2} {
		name := "off"
		if th > 0 {
			name = "threshold2x"
		}
		b.Run(name, func(b *testing.B) {
			var last time.Duration
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Config{Machines: 10, SlotsPerMachine: 2, Seed: 42})
				if err != nil {
					b.Fatal(err)
				}
				h, err := c.Submit(cluster.JobConfig{
					Profile: p, Guarantee: 10, Deadline: 2 * time.Hour,
					Tracked: true, SpeculativeThreshold: th,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Run(); err != nil {
					b.Fatal(err)
				}
				last = h.Result().Completion
			}
			b.ReportMetric(last.Minutes(), "completion-min")
		})
	}
}

func daggen(b *testing.B) *dag.Job {
	b.Helper()
	return dag.NewBuilder("strag").Stage("work", 60).MustBuild()
}

func benchUtility() utility.Fn { return utility.Deadline(40 * time.Minute) }
