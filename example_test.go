package jockey_test

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey"
)

// ExampleOracle shows the theoretical-minimum allocation used as the
// cluster-impact baseline throughout the paper's evaluation.
func ExampleOracle() {
	totalWork := 10 * time.Hour
	deadline := time.Hour
	fmt.Println(jockey.Oracle(totalWork, deadline), "tokens")
	// Output: 10 tokens
}

// ExampleParseUtility builds the paper's standard deadline curve from text.
func ExampleParseUtility() {
	u, err := jockey.ParseUtility("deadline 60m")
	if err != nil {
		panic(err)
	}
	fmt.Println(u.Utility(30 * time.Minute))
	fmt.Println(u.Utility(70 * time.Minute))
	// Output:
	// 1
	// -1
}

// ExampleCompileScript compiles a SCOPE-like script into an execution plan.
func ExampleCompileScript() {
	job, err := jockey.CompileScript(`
JOB "wordcount";
EXTRACT words FROM "docs" TASKS 50;
REDUCE counts FROM words ON word TASKS 10;
OUTPUT counts TO "out";
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(job)
	// Output: job "wordcount": 2 stages (1 barrier), 60 vertices
}

// ExampleSimulate runs the offline job simulator once.
func ExampleSimulate() {
	job := jockey.NewJobBuilder("tiny").Stage("only", 10).MustBuild()
	prof := jockey.MustNewProfile(job, []jockey.StageProfile{
		{Exec: jockey.Point{V: 6 * time.Second}},
	})
	tr, err := jockey.Simulate(jockey.SimConfig{Profile: prof, Alloc: 5, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.Completion)
	// Output: 12s
}
