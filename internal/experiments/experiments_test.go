package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/core"
)

// sharedEnv is reused across tests: building runtimes is the expensive part
// and the Env caches them.
var sharedEnv = NewEnv(7)

func TestEnvCaching(t *testing.T) {
	e := sharedEnv
	g1, err := e.Ground("A")
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := e.Ground("A")
	if g1 != g2 {
		t.Error("ground profile not cached")
	}
	r1, err := e.Runtime("A", "")
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := e.Runtime("A", core.TotalWorkWithQ)
	if r1 != r2 {
		t.Error("runtime not cached across default/explicit indicator")
	}
	r3, err := e.Runtime("A", core.CP)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("different indicators must build different runtimes")
	}
}

func TestDeadlinesOrdered(t *testing.T) {
	short, long, err := sharedEnv.Deadlines("B")
	if err != nil {
		t.Fatal(err)
	}
	if short <= 0 || long != 2*short {
		t.Errorf("deadlines = %v, %v", short, long)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := sharedEnv.Run(SLORun{Job: "A", Policy: PolicyJockey}); err == nil {
		t.Error("missing deadline must fail")
	}
	if _, err := sharedEnv.Run(SLORun{Job: "A", Deadline: time.Hour, Policy: "bogus"}); err == nil {
		t.Error("unknown policy must fail")
	}
	if _, err := sharedEnv.Run(SLORun{Job: "ZZ", Deadline: time.Hour, Policy: PolicyJockey}); err == nil {
		t.Error("unknown job must fail")
	}
}

func TestRunDeterministic(t *testing.T) {
	short, _, _ := sharedEnv.Deadlines("B")
	r := SLORun{Job: "B", Deadline: short, Policy: PolicyJockey, Seed: 11}
	a, err := sharedEnv.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharedEnv.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completion != b.Completion {
		t.Errorf("same run diverged: %v vs %v", a.Completion, b.Completion)
	}
}

func TestPolicyComparisonSmall(t *testing.T) {
	cmp, err := PolicyComparison(sharedEnv, ComparisonConfig{
		Jobs:         []string{"B", "E"},
		SeedsPerCase: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sums := cmp.Summaries()
	if len(sums) != 4 {
		t.Fatalf("summaries = %d", len(sums))
	}
	var jockey, max PolicySummary
	for _, s := range sums {
		if s.Runs != 4 { // 2 jobs × 2 deadlines × 1 seed
			t.Errorf("%s: runs = %d", s.Policy, s.Runs)
		}
		switch s.Policy {
		case PolicyJockey:
			jockey = s
		case PolicyMax:
			max = s
		}
	}
	// The central claims: max allocation has the highest cluster impact and
	// finishes earliest; Jockey has low impact.
	if max.AboveOracle <= jockey.AboveOracle {
		t.Errorf("max impact %.2f should exceed jockey %.2f", max.AboveOracle, jockey.AboveOracle)
	}
	if max.MedianRel >= jockey.MedianRel {
		t.Errorf("max rel %.2f should be earlier than jockey %.2f", max.MedianRel, jockey.MedianRel)
	}
	out4 := cmp.RenderFig4()
	if !strings.Contains(out4, "jockey") || !strings.Contains(out4, "max-allocation") {
		t.Errorf("fig4 render:\n%s", out4)
	}
	out5 := cmp.RenderFig5()
	if !strings.Contains(out5, "CDF") {
		t.Errorf("fig5 render:\n%s", out5)
	}
}

func TestRecurringVarianceSmall(t *testing.T) {
	t1, err := RecurringVariance(sharedEnv, Table1Config{Jobs: []string{"B", "C"}, RunsPerJob: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.PerJobCoV) != 2 || len(t1.PerJobCoVSimilarInput) != 2 {
		t.Fatalf("rows: %+v", t1)
	}
	for i, cov := range t1.PerJobCoV {
		if cov <= 0 || cov > 2 {
			t.Errorf("job %d CoV = %v out of plausible range", i, cov)
		}
	}
	if !strings.Contains(t1.Render(), "CoV across recurring jobs") {
		t.Error("render missing rows")
	}
}

func TestDependencies(t *testing.T) {
	f, err := Dependencies(sharedEnv, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if f.MedianGap() <= 0 {
		t.Error("no gap data")
	}
	if !strings.Contains(f.Render(), "Figure 1") {
		t.Error("render broken")
	}
}

func TestJobStatistics(t *testing.T) {
	t2, err := JobStatistics(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 7 {
		t.Fatalf("rows = %d", len(t2.Rows))
	}
	for _, r := range t2.Rows {
		if r.MeasuredStages != r.PaperStages || r.MeasuredVertices != r.PaperVertices ||
			r.MeasuredBarriers != r.PaperBarriers {
			t.Errorf("job %s: structural stats must match exactly: %+v", r.Job, r)
		}
		// Runtime percentiles match within a factor band (measured on a
		// real run, which adds failures and queueing).
		ratio := float64(r.MeasuredMedian) / float64(r.PaperMedian)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("job %s: measured median %v vs paper %v", r.Job, r.MeasuredMedian, r.PaperMedian)
		}
	}
	if !strings.Contains(t2.Render(), "Table 2") {
		t.Error("render broken")
	}
}

func TestStageGraphs(t *testing.T) {
	f3, err := StageGraphs(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.DOT) != 7 {
		t.Fatalf("dot count = %d", len(f3.DOT))
	}
	for job, dot := range f3.DOT {
		if !strings.Contains(dot, "digraph") {
			t.Errorf("job %s: bad DOT", job)
		}
	}
	if !strings.Contains(f3.Render(), "depth") {
		t.Error("render broken")
	}
}

func TestTimelapses(t *testing.T) {
	f6, err := Timelapses(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Cases) != 3 {
		t.Fatalf("cases = %d", len(f6.Cases))
	}
	// Scenario (a): on the overloaded run of job F the model must notice
	// the slower progress — the predicted completion T_t climbs towards the
	// deadline — and the controller must keep the allocation high instead
	// of releasing it the way the over-provisioned run does.
	tl := f6.Timeline(0)
	if len(tl) < 5 {
		t.Fatalf("timeline too short: %d", len(tl))
	}
	firstPred, lastPred := tl[0].Predicted, tl[len(tl)-1].Predicted
	if float64(lastPred) < float64(firstPred)*1.1 {
		t.Errorf("model did not notice the overload: T_t %v -> %v", firstPred, lastPred)
	}
	aFirst, aLast := tl[0].Granted, tl[len(tl)-1].Granted
	if aLast < aFirst/2 {
		t.Errorf("overloaded run released too much: %d -> %d", aFirst, aLast)
	}
	if rel := f6.Cases[0].Outcome.RelCompletion; rel < 0.85 {
		t.Errorf("overloaded run finished suspiciously early (rel %.2f); scenario not binding", rel)
	}
	// Scenario (c): over-provisioned job G should release resources.
	tlC := f6.Timeline(2)
	maxC, lastC := 0, tlC[len(tlC)-1].Granted
	for _, p := range tlC {
		if p.Granted > maxC {
			maxC = p.Granted
		}
	}
	if lastC >= maxC {
		t.Errorf("over-provisioned run should release: max %d last %d", maxC, lastC)
	}
	if !strings.Contains(f6.Render(), "Figure 6") {
		t.Error("render broken")
	}
}

func TestTrainingVsActual(t *testing.T) {
	t3, err := TrainingVsActual(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Columns) != 3 {
		t.Fatalf("columns = %d", len(t3.Columns))
	}
	train, job1 := t3.Columns[0], t3.Columns[1]
	// Job 1 carries ~1.9× the work of training.
	ratio := job1.TotalWork.Hours() / train.TotalWork.Hours()
	if ratio < 1.4 || ratio > 2.6 {
		t.Errorf("work ratio = %.2f, want ~1.9", ratio)
	}
	if !strings.Contains(t3.Render(), "Table 3") {
		t.Error("render broken")
	}
}

func TestDeadlineChangesSmall(t *testing.T) {
	f7, err := DeadlineChanges(sharedEnv, []string{"B", "E"})
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Runs) != 6 { // 2 jobs × 3 manipulations
		t.Fatalf("runs = %d", len(f7.Runs))
	}
	sum := f7.Summary()
	halve := sum[HalveDeadline]
	if halve.AllocChange <= 0 {
		t.Errorf("halving should raise allocation: %+v", halve)
	}
	double := sum[DoubleDeadline]
	if double.AllocChange >= 0 {
		t.Errorf("doubling should release allocation: %+v", double)
	}
	for _, r := range f7.Runs {
		if !r.Outcome.Met {
			t.Errorf("job %s %s missed new deadline (%v vs %v)",
				r.Job, r.Kind, r.Outcome.Completion, r.Outcome.Deadline)
		}
	}
	if !strings.Contains(f7.Render(), "Figure 7") {
		t.Error("render broken")
	}
}

func TestPredictionAccuracySmall(t *testing.T) {
	f8, err := PredictionAccuracy(sharedEnv, []string{"B", "E"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Points) != 8 {
		t.Fatalf("points = %d", len(f8.Points))
	}
	if f8.AvgSim <= 0 || f8.AvgSim > 0.6 {
		t.Errorf("simulator avg error = %v out of plausible range", f8.AvgSim)
	}
	if f8.AvgAmdahl <= 0 {
		t.Errorf("amdahl avg error = %v", f8.AvgAmdahl)
	}
	if !strings.Contains(f8.Render(), "Figure 8") {
		t.Error("render broken")
	}
}

func TestIndicatorTraces(t *testing.T) {
	f9, err := IndicatorTraces(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Series) != 2 {
		t.Fatalf("series = %d", len(f9.Series))
	}
	for _, s := range f9.Series {
		if len(s.Points) == 0 {
			t.Fatalf("%s: no points", s.Indicator)
		}
		// Progress must be monotone non-decreasing.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Progress < s.Points[i-1].Progress-1e-9 {
				t.Errorf("%s: progress decreased at %d", s.Indicator, i)
			}
		}
	}
	if !strings.Contains(f9.Render(), "Figure 9") {
		t.Error("render broken")
	}
}

func TestIndicatorComparisonSmall(t *testing.T) {
	f10, err := IndicatorComparison(sharedEnv, []string{"G"})
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Rows) != 6 {
		t.Fatalf("rows = %d", len(f10.Rows))
	}
	byName := map[core.IndicatorName]IndicatorComparisonRow{}
	for _, r := range f10.Rows {
		byName[r.Indicator] = r
		if r.LongestConstantFrac < 0 || r.LongestConstantFrac > 1 {
			t.Errorf("%s: constant frac %v", r.Indicator, r.LongestConstantFrac)
		}
	}
	// The paper's headline: totalworkWithQ has a shorter constant interval
	// than the structural minstage-inf indicator.
	if byName[core.TotalWorkWithQ].LongestConstantFrac > byName[core.MinStageInf].LongestConstantFrac {
		t.Errorf("totalworkWithQ should be smoother: %v vs %v",
			byName[core.TotalWorkWithQ].LongestConstantFrac,
			byName[core.MinStageInf].LongestConstantFrac)
	}
	if !strings.Contains(f10.Render(), "Figure 10") {
		t.Error("render broken")
	}
}

func TestSensitivitySmall(t *testing.T) {
	f11, err := Sensitivity(sharedEnv, []string{"B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f11.Rows) != 7 {
		t.Fatalf("rows = %d", len(f11.Rows))
	}
	for _, r := range f11.Rows {
		if r.Runs != 1 {
			t.Errorf("%s: runs = %d", r.Name, r.Runs)
		}
	}
	if !strings.Contains(f11.Render(), "Figure 11") {
		t.Error("render broken")
	}
}

func TestSweepsSmall(t *testing.T) {
	f12, err := SlackSweep(sharedEnv, []string{"B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.Rows) != 5 {
		t.Fatalf("slack rows = %d", len(f12.Rows))
	}
	if !strings.Contains(f12.Render(), "Figure 12") {
		t.Error("render broken")
	}
	f13, err := HysteresisSweep(sharedEnv, []string{"B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f13.Rows) != 6 {
		t.Fatalf("hysteresis rows = %d", len(f13.Rows))
	}
	if !strings.Contains(f13.Render(), "Figure 13") {
		t.Error("render broken")
	}
}

func TestRenderTable(t *testing.T) {
	out := renderTable("title", []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(out, "title") || !strings.Contains(out, "333") {
		t.Errorf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestOnlinePredictorKnob(t *testing.T) {
	short, _, err := sharedEnv.Deadlines("B")
	if err != nil {
		t.Fatal(err)
	}
	o, err := sharedEnv.Run(SLORun{
		Job:      "B",
		Deadline: short,
		Policy:   PolicyJockey,
		Seed:     31,
		// Pin the input scale: this test checks the predictor integration,
		// not its statistical performance on extreme input drift.
		InputScale: 1.1,
		Knobs:      Knobs{OnlinePredictor: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Met {
		t.Errorf("online-predictor run missed: %v of %v", o.Completion, o.Deadline)
	}
	if len(o.Trace.Timeline) == 0 {
		t.Error("no control decisions recorded")
	}
}

func TestOnlineVsTableSmall(t *testing.T) {
	e1, err := OnlineVsTable(sharedEnv, []string{"B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(e1.Rows) != 1 || e1.Rows[0].Runs != 1 {
		t.Fatalf("rows: %+v", e1.Rows)
	}
	r := e1.Rows[0]
	if r.OnlineDecision <= r.TableDecisionUs {
		t.Errorf("online decisions (%.0fµs) should cost more than table lookups (%.0fµs)",
			r.OnlineDecision, r.TableDecisionUs)
	}
	if !strings.Contains(e1.Render(), "Extension E1") {
		t.Error("render broken")
	}
}

func TestAdmissionControlSmall(t *testing.T) {
	e2, err := AdmissionControl(sharedEnv, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.Outcomes) != 2 {
		t.Fatalf("outcomes: %+v", e2.Outcomes)
	}
	gated, open := e2.Outcomes[0], e2.Outcomes[1]
	if gated.Mode != "admission-control" || open.Mode != "admit-everything" {
		t.Fatalf("mode order: %+v", e2.Outcomes)
	}
	if gated.Admitted >= open.Admitted {
		t.Errorf("arbiter should reject some jobs: %d vs %d", gated.Admitted, open.Admitted)
	}
	if gated.Met != gated.Admitted {
		t.Errorf("admitted jobs must all meet their SLOs: %d of %d", gated.Met, gated.Admitted)
	}
	if !strings.Contains(e2.Render(), "Extension E2") {
		t.Error("render broken")
	}
}
