package control

import (
	"reflect"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/model"
	"github.com/jockeysim/jockey/internal/utility"
)

// flatPredictor is an allocation-free, pure stand-in predictor: remaining
// time is work/alloc, utility is the curve at the padded completion. Its
// purity makes Decide's own allocation behavior measurable in isolation.
type flatPredictor struct {
	work time.Duration
}

func (f flatPredictor) Name() string { return "flat" }

func (f flatPredictor) Remaining(st model.State, a int, q float64) time.Duration {
	if a < 1 {
		a = 1
	}
	return f.work / time.Duration(a)
}

func (f flatPredictor) ExpectedUtility(st model.State, a int, slack float64, u utility.Fn) float64 {
	return u.Utility(st.Elapsed + time.Duration(float64(f.Remaining(st, a, 1))*slack))
}

// captureRecorder retains deep copies of every record.
type captureRecorder struct {
	recs []DecisionRecord
}

func (c *captureRecorder) RecordDecision(r *DecisionRecord) {
	cp := *r
	cp.Candidates = append([]CandidateEval(nil), r.Candidates...)
	c.recs = append(c.recs, cp)
}

func newRecordController(t *testing.T, deadline time.Duration) *Controller {
	t.Helper()
	ctrl, err := NewController(Config{
		Predictor:  flatPredictor{work: 500 * time.Minute},
		Utility:    utility.Deadline(deadline),
		Candidates: candidates(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func TestDecideNilRecorderAddsZeroAllocations(t *testing.T) {
	ctrl := newRecordController(t, 30*time.Minute)
	st := model.State{Elapsed: 0, FracDone: []float64{0, 0}}
	ctrl.Decide(st) // first tick initializes smoothing state
	st.Elapsed = time.Minute
	st.FracDone[0] = 0.1
	if allocs := testing.AllocsPerRun(200, func() {
		ctrl.Decide(st)
	}); allocs != 0 {
		t.Errorf("Decide with recording off allocates %v per call, want 0", allocs)
	}
}

func TestDecideMechanismAttribution(t *testing.T) {
	deadline := 30 * time.Minute
	ctrl := newRecordController(t, deadline)
	rec := &captureRecorder{}
	ctrl.SetRecorder(rec)

	st := model.State{Elapsed: 0, FracDone: []float64{0, 0}}
	d := ctrl.Decide(st)
	if len(rec.recs) != 1 {
		t.Fatalf("got %d records after one tick", len(rec.recs))
	}
	r0 := rec.recs[0]
	if r0.Mechanism != MechFirstTick {
		t.Errorf("first tick mechanism = %q, want %q", r0.Mechanism, MechFirstTick)
	}
	if r0.Raw != d.Raw || r0.Granted != d.Granted || r0.At != 0 {
		t.Errorf("record %+v does not mirror decision %+v", r0, d)
	}
	if len(r0.Candidates) != len(ctrl.Candidates()) {
		t.Errorf("got %d candidate evals, want the full grid (%d)", len(r0.Candidates), len(ctrl.Candidates()))
	}
	// Candidate evaluations carry exactly what the argmax compared: the
	// recorded raw allocation must re-derive from them.
	best, bestU := -1, 0.0
	for _, c := range r0.Candidates {
		if best == -1 || c.Utility > bestU+1e-9 {
			best, bestU = c.Alloc, c.Utility
		}
	}
	if best != r0.Raw {
		t.Errorf("argmax over recorded candidates = %d, recorded raw = %d", best, r0.Raw)
	}

	// Far behind schedule: raw jumps but hysteresis damps the change.
	st = model.State{Elapsed: 10 * time.Minute, FracDone: []float64{0.05, 0}}
	d = ctrl.Decide(st)
	r1 := rec.recs[len(rec.recs)-1]
	if d.Granted != d.Raw {
		if r1.Mechanism != MechHysteresis {
			t.Errorf("damped tick mechanism = %q, want %q (decision %+v)", r1.Mechanism, MechHysteresis, d)
		}
	} else if r1.Mechanism != MechModel {
		t.Errorf("undamped tick mechanism = %q, want %q", r1.Mechanism, MechModel)
	}
}

func TestDecideDeadZoneMechanism(t *testing.T) {
	// flatPredictor's forecast depends only on elapsed time, so the dead-zone
	// band is exactly computable: with work 500m, slack 1.2, deadline 30m and
	// dead zone 3m, the first tick grants 23 (0 + 600m/a ≤ 27m). Two minutes
	// in, the shifted curve wants 24, but the unshifted deadline is still met
	// at 23 (2m + 600m/23 = 28.1m ≤ 30m): the dead zone holds the grant.
	ctrl := newRecordController(t, 30*time.Minute)
	rec := &captureRecorder{}
	ctrl.SetRecorder(rec)

	st := model.State{Elapsed: 0, FracDone: []float64{0, 0}}
	ctrl.Decide(st)
	granted := ctrl.Granted()

	st.Elapsed = 2 * time.Minute
	d := ctrl.Decide(st)
	r := rec.recs[len(rec.recs)-1]
	if r.Mechanism != MechDeadZone {
		t.Fatalf("in-band tick mechanism = %q, want %q (decision %+v)", r.Mechanism, MechDeadZone, d)
	}
	if d.Raw <= granted {
		t.Errorf("dead zone recorded but raw %d did not rise above the grant %d", d.Raw, granted)
	}
	if d.Granted != granted {
		t.Errorf("dead zone did not hold the grant: %d -> %d", granted, d.Granted)
	}
}

func TestRecordingDoesNotPerturbController(t *testing.T) {
	mk := func(withRec bool) []Decision {
		ctrl := newRecordController(t, 30*time.Minute)
		if withRec {
			ctrl.SetRecorder(&captureRecorder{})
		}
		var out []Decision
		st := model.State{FracDone: []float64{0, 0}}
		frac := 0.0
		for i := 0; i < 25; i++ {
			st.Elapsed = time.Duration(i) * time.Minute
			st.FracDone[0] = frac
			out = append(out, ctrl.Decide(st))
			frac += 0.03
			if frac > 1 {
				frac = 1
			}
		}
		return out
	}
	if got, want := mk(true), mk(false); !reflect.DeepEqual(got, want) {
		t.Errorf("recording changed the decision trajectory:\n%v\nvs\n%v", got, want)
	}
}

func TestGuardEventsReturnsACopy(t *testing.T) {
	prior, _ := testSetup(t)
	ctrl := newRecordController(t, 30*time.Minute)
	g, err := NewGuard(GuardConfig{Controller: ctrl, Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	g.logEvent(model.State{Elapsed: time.Minute}, GuardEventReprofile, GuardPrimary, GuardPrimary, 0.4)
	g.logEvent(model.State{Elapsed: 2 * time.Minute}, GuardEventPanic, GuardPrimary, GuardPanic, 0.9)

	evs := g.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	evs[0].Kind = "mangled"
	evs = evs[:0]
	evs = append(evs, GuardEvent{Kind: "junk"}, GuardEvent{Kind: "junk"}, GuardEvent{Kind: "junk"})
	_ = evs

	fresh := g.Events()
	if len(fresh) != 2 || fresh[0].Kind != GuardEventReprofile || fresh[1].Kind != GuardEventPanic {
		t.Errorf("mutating the returned slice reached the internal log: %+v", fresh)
	}
}

func TestGuardRecorderSeesFinalGrant(t *testing.T) {
	prior, _ := testSetup(t)
	ctrl := newRecordController(t, 30*time.Minute)
	g, err := NewGuard(GuardConfig{Controller: ctrl, Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	rec := &captureRecorder{}
	g.SetRecorder(rec)

	st := model.State{FracDone: []float64{0, 0}}
	frac := 0.0
	for i := 0; i < 20; i++ {
		st.Elapsed = time.Duration(i) * time.Minute
		st.FracDone[0] = frac
		d := g.Decide(st)
		last := rec.recs[len(rec.recs)-1]
		if last.Granted != d.Granted || last.Raw != d.Raw {
			t.Fatalf("tick %d: record (raw %d, granted %d) disagrees with decision (raw %d, granted %d)",
				i, last.Raw, last.Granted, d.Raw, d.Granted)
		}
		if last.Mode != d.Mode || last.Deviation != d.Deviation {
			t.Fatalf("tick %d: record mode/deviation %q/%v, decision %q/%v",
				i, last.Mode, last.Deviation, d.Mode, d.Deviation)
		}
		frac += 0.01 // fall badly behind: exercises alarm paths
	}
	if len(rec.recs) != 20 {
		t.Fatalf("got %d records for 20 ticks", len(rec.recs))
	}
}
