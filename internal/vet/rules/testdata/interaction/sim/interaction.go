// Fixture: seedflow × hotalloc interaction. One line can violate both
// contracts at once — growing a local slice (hotalloc) with a
// literal-seeded generator (seedflow) — and a scoped //jockeyvet:ignore
// must suppress exactly the named rule, leaving the other's findings live.
package sim

import "math/rand/v2"

// Both rules fire on the same line: the append grows a local slice and the
// PCG seeds are literals.
//
//jockey:hotpath
func refresh(gens []*rand.Rand) []*rand.Rand {
	return append(gens, rand.New(rand.NewPCG(3, 4))) // want `append to a local slice allocates` `seed reaching NewPCG is a literal/constant` `seed reaching NewPCG is a literal/constant`
}

// Naming seedflow in the directive silences only the seed findings; the
// hotalloc finding survives.
//
//jockey:hotpath
func refreshSeedExempt(gens []*rand.Rand) []*rand.Rand {
	//jockeyvet:ignore seedflow fixture: literal seeds pinned for the interaction test
	return append(gens, rand.New(rand.NewPCG(5, 6))) // want `append to a local slice allocates`
}

// The mirror image: naming hotalloc keeps both seed findings.
//
//jockey:hotpath
func refreshAllocExempt(gens []*rand.Rand) []*rand.Rand {
	//jockeyvet:ignore hotalloc fixture: growth amortizes in the interaction test
	return append(gens, rand.New(rand.NewPCG(7, 8))) // want `seed reaching NewPCG is a literal/constant` `seed reaching NewPCG is a literal/constant`
}

// An unscoped directive still silences the whole line.
//
//jockey:hotpath
func refreshAllExempt(gens []*rand.Rand) []*rand.Rand {
	//jockeyvet:ignore fixture: whole line exempt in the interaction test
	return append(gens, rand.New(rand.NewPCG(9, 10)))
}
