// Package flight is the decision flight recorder: a zero-overhead-when-off
// capture of every control decision — the chosen allocation, the top-K
// alternative candidates with their predicted completion times and expected
// utilities, and which mechanism (raw model, hysteresis, dead zone, guard
// fallback chain, urgency boost, panic) determined the final grant — plus a
// counterfactual regret analyzer that replays a finished run under constant
// hindsight allocations and attributes any regret to a named mechanism
// ("model error vs. damping vs. guard intervention"). See DESIGN.md §12.
//
// Recording rides the control.Recorder hook: with no recorder installed
// (level none) the control loop takes its original path and allocates
// nothing extra; with one installed, the extra per-candidate predictions hit
// only pure or memoized predictors, so the decision trajectory is
// bit-identical either way (pinned by the experiments flight tests).
package flight

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/control"
)

// Level selects how much the flight recorder captures.
type Level int

const (
	// LevelNone records nothing: no recorder is installed and the control
	// loop runs its original, allocation-free path.
	LevelNone Level = iota
	// LevelDecisions records per-tick decisions, mechanisms and top-K
	// candidate evaluations.
	LevelDecisions
	// LevelCounterfactual additionally replays the finished run under
	// constant hindsight allocations and attaches a regret report.
	LevelCounterfactual
)

// String names the level as accepted by ParseLevel.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelDecisions:
		return "decisions"
	case LevelCounterfactual:
		return "counterfactual"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel parses a -flight-level flag value.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "", "none":
		return LevelNone, nil
	case "decisions":
		return LevelDecisions, nil
	case "counterfactual":
		return LevelCounterfactual, nil
	}
	return LevelNone, fmt.Errorf("flight: unknown level %q (want none, decisions or counterfactual)", s)
}

// SchemaVersion is the flight-record JSON schema version (the "schema"
// field). Bump only with a migration note in DESIGN.md §12.
const SchemaVersion = 1

// DefaultTopK is how many alternative candidates a tick keeps by default.
const DefaultTopK = 3

// Candidate is one retained candidate evaluation of a tick.
type Candidate struct {
	// Alloc is the candidate allocation (tokens).
	Alloc int `json:"alloc"`
	// Utility is the expected utility the argmax compared.
	Utility float64 `json:"utility"`
	// Predicted is the worst-case completion estimate at this allocation.
	Predicted time.Duration `json:"predicted_ns"`
}

// Tick is one recorded control decision.
type Tick struct {
	// At is the job's elapsed time at the tick.
	At time.Duration `json:"at_ns"`
	// Raw and Granted mirror control.Decision.
	Raw     int `json:"raw"`
	Granted int `json:"granted"`
	// Mechanism is the control.Mech* constant that determined the grant.
	Mechanism string `json:"mechanism"`
	// Mode is the guard rung that produced the decision ("" when unguarded).
	Mode string `json:"mode,omitempty"`
	// Deviation is the guard's staleness score at the tick.
	Deviation float64 `json:"deviation,omitempty"`
	// Predicted is the completion estimate at the granted allocation.
	Predicted time.Duration `json:"predicted_ns"`
	// Regret is the decision-time utility regret: the best candidate's
	// expected utility minus the granted allocation's, as evaluated by the
	// model at this tick (0 = the grant was the model's best option).
	Regret float64 `json:"regret"`
	// Candidates are the top-K evaluations, best first (utility descending,
	// smaller allocation on ties).
	Candidates []Candidate `json:"candidates,omitempty"`
}

// Record is a run's complete flight record — the stable JSON schema written
// by WriteJSON (see json.go).
type Record struct {
	// Schema is SchemaVersion.
	Schema int `json:"schema"`
	// Job and Policy identify the recorded run.
	Job    string `json:"job"`
	Policy string `json:"policy,omitempty"`
	// Level is the recording level ("decisions" or "counterfactual").
	Level string `json:"level"`
	// Deadline is the run's SLO.
	Deadline time.Duration `json:"deadline_ns"`
	// TopK is how many candidates each tick retains.
	TopK int `json:"top_k"`
	// Ticks are the decisions in time order.
	Ticks []Tick `json:"ticks"`
	// Counterfactual is the hindsight regret report (counterfactual level
	// only).
	Counterfactual *Regret `json:"counterfactual,omitempty"`
}

// Config parameterizes a Recorder.
type Config struct {
	// Job and Policy label the record.
	Job    string
	Policy string
	// Level stamps the record's level field (default LevelDecisions).
	Level Level
	// Deadline is the run's SLO (stored for the analyzer and readers).
	Deadline time.Duration
	// TopK bounds the candidates kept per tick (default DefaultTopK).
	TopK int
}

// Recorder implements control.Recorder, accumulating a Record. Install it
// with control.Recordable.SetRecorder (Controller and Guard both qualify).
// A Recorder is single-run, single-goroutine state: use one per run.
type Recorder struct {
	rec Record
}

// NewRecorder builds a recorder for one run.
func NewRecorder(cfg Config) *Recorder {
	if cfg.TopK <= 0 {
		cfg.TopK = DefaultTopK
	}
	lvl := cfg.Level
	if lvl == LevelNone {
		lvl = LevelDecisions
	}
	return &Recorder{rec: Record{
		Schema:   SchemaVersion,
		Job:      cfg.Job,
		Policy:   cfg.Policy,
		Level:    lvl.String(),
		Deadline: cfg.Deadline,
		TopK:     cfg.TopK,
	}}
}

// RecordDecision implements control.Recorder. The borrowed record is copied;
// nothing aliases the emitter's scratch buffers after the call returns.
func (r *Recorder) RecordDecision(d *control.DecisionRecord) {
	r.rec.Ticks = append(r.rec.Ticks, Tick{
		At:         d.At,
		Raw:        d.Raw,
		Granted:    d.Granted,
		Mechanism:  d.Mechanism,
		Mode:       d.Mode,
		Deviation:  d.Deviation,
		Predicted:  d.Predicted,
		Regret:     decisionRegret(d),
		Candidates: topK(d.Candidates, r.rec.TopK),
	})
}

// Record returns the accumulated record. The recorder retains ownership;
// callers serialize or analyze it after the run finishes.
func (r *Recorder) Record() *Record { return &r.rec }

// decisionRegret is the tick's utility gap between the best candidate and
// the granted allocation, both as the model evaluated them. The granted
// allocation's utility is looked up at the smallest candidate ≥ the grant
// (the grid is ascending; guard overrides can grant between evaluations).
//
//jockey:hotpath
func decisionRegret(d *control.DecisionRecord) float64 {
	if len(d.Candidates) == 0 {
		return 0
	}
	bestU := d.Candidates[0].Utility
	for _, c := range d.Candidates[1:] {
		if c.Utility > bestU {
			bestU = c.Utility
		}
	}
	gU := d.Candidates[len(d.Candidates)-1].Utility
	for _, c := range d.Candidates {
		if c.Alloc >= d.Granted {
			gU = c.Utility
			break
		}
	}
	if reg := bestU - gU; reg > 0 {
		return reg
	}
	return 0
}

// topK selects the k best candidates (utility descending, smaller
// allocation on ties) without reordering the borrowed input.
func topK(cands []control.CandidateEval, k int) []Candidate {
	if len(cands) == 0 || k <= 0 {
		return nil
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]Candidate, 0, k)
	used := make([]bool, len(cands))
	for n := 0; n < k; n++ {
		best := -1
		for i, c := range cands {
			if used[i] {
				continue
			}
			if best == -1 || betterCandidate(c, cands[best]) {
				best = i
			}
		}
		used[best] = true
		out = append(out, Candidate{
			Alloc:     cands[best].Alloc,
			Utility:   cands[best].Utility,
			Predicted: cands[best].Predicted,
		})
	}
	return out
}

//jockey:hotpath
func betterCandidate(a, b control.CandidateEval) bool {
	if a.Utility != b.Utility {
		return a.Utility > b.Utility
	}
	return a.Alloc < b.Alloc
}

// SpanCandidates picks up to n allocations spanning the ascending candidate
// grid, always including the smallest and largest — the default hindsight
// space for the counterfactual analyzer. It returns a fresh slice.
func SpanCandidates(grid []int, n int) []int {
	if len(grid) == 0 || n <= 0 {
		return nil
	}
	if n == 1 {
		return []int{grid[len(grid)-1]}
	}
	if n >= len(grid) {
		return append([]int(nil), grid...)
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		j := i * (len(grid) - 1) / (n - 1)
		a := grid[j]
		if len(out) == 0 || out[len(out)-1] != a {
			out = append(out, a)
		}
	}
	return out
}
