// Package progress implements the job progress indicators of §4.2 and §5.4
// of the paper. An indicator maps the per-stage fractions of completed tasks
// (f_s) to a scalar in [0, 1] that the control loop uses to index the
// precomputed C(p, a) remaining-time distributions.
//
// Six indicators are provided, matching the paper's evaluation:
//
//	totalworkWithQ  Σ_s f_s (Q_s + T_s) / Σ_s (Q_s + T_s)   (Jockey's default)
//	totalwork       Σ_s f_s T_s / Σ_s T_s
//	vertexfrac      Σ_s f_s N_s / Σ_s N_s
//	cp              1 − S_t / S_0, with S_t the remaining critical path
//	minstage        min over unfinished stages of tb_s + f_s (te_s − tb_s)
//	minstage-inf    minstage with spans from an unconstrained simulation
package progress

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/trace"
)

// Indicator estimates job progress from per-stage completion fractions.
type Indicator interface {
	// Name identifies the indicator in reports ("totalworkWithQ", ...).
	Name() string
	// Progress returns the indicator value in [0, 1] given f_s, the
	// fraction of completed tasks per stage (parallel to the plan's
	// stages).
	Progress(fs []float64) float64
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// weighted is the shared shape of totalworkWithQ, totalwork and vertexfrac:
// a completion fraction weighted by per-stage constants.
type weighted struct {
	name    string
	weights []float64
	total   float64
}

func (w *weighted) Name() string { return w.name }

func (w *weighted) Progress(fs []float64) float64 {
	if w.total <= 0 {
		return 1
	}
	var sum float64
	for s, f := range fs {
		sum += f * w.weights[s]
	}
	return clamp01(sum / w.total)
}

func newWeighted(name string, weights []float64) *weighted {
	var total float64
	for _, v := range weights {
		total += v
	}
	return &weighted{name: name, weights: weights, total: total}
}

// NewTotalWorkWithQ builds the paper's default indicator: progress is the
// fraction of total task execution-plus-queueing time that has completed.
func NewTotalWorkWithQ(p *profile.Profile) Indicator {
	weights := make([]float64, len(p.Stages))
	for s, sp := range p.Stages {
		weights[s] = (sp.TotalWork + sp.TotalQueue).Seconds()
	}
	return newWeighted("totalworkWithQ", weights)
}

// NewTotalWork builds the totalwork indicator (execution time only).
func NewTotalWork(p *profile.Profile) Indicator {
	weights := make([]float64, len(p.Stages))
	for s, sp := range p.Stages {
		weights[s] = sp.TotalWork.Seconds()
	}
	return newWeighted("totalwork", weights)
}

// NewVertexFrac builds the vertexfrac indicator: the fraction of vertices
// that have completed (the ParaTimer-style indicator the paper compares
// against).
func NewVertexFrac(p *profile.Profile) Indicator {
	weights := make([]float64, len(p.Stages))
	for s := range p.Stages {
		weights[s] = float64(p.Job.Stages[s].Tasks)
	}
	return newWeighted("vertexfrac", weights)
}

// cp is the critical-path indicator: 1 − S_t/S_0 where
// S_t = max over stages with f_s < 1 of (1 − f_s)·l_s + L_s.
type cp struct {
	ls []time.Duration // longest task per stage
	Ls []time.Duration // longest path after each stage
	s0 float64         // critical path at f = 0, seconds
}

// NewCP builds the critical-path indicator from the profile's l_s and L_s.
func NewCP(p *profile.Profile) Indicator {
	c := &cp{Ls: p.LongestPathAfter()}
	c.ls = make([]time.Duration, len(p.Stages))
	for s, sp := range p.Stages {
		c.ls[s] = sp.LongestTask
	}
	c.s0 = remainingCP(c.ls, c.Ls, nil).Seconds()
	return c
}

func (c *cp) Name() string { return "cp" }

func (c *cp) Progress(fs []float64) float64 {
	if c.s0 <= 0 {
		return 1
	}
	st := remainingCP(c.ls, c.Ls, fs).Seconds()
	return clamp01(1 - st/c.s0)
}

// remainingCP computes S_t = max over unfinished stages of (1−f_s)l_s + L_s.
// A nil fs means "nothing has run" (f_s = 0 everywhere).
func remainingCP(ls, Ls []time.Duration, fs []float64) time.Duration {
	var best time.Duration
	for s := range ls {
		f := 0.0
		if fs != nil {
			f = fs[s]
		}
		if f >= 1 {
			continue
		}
		v := time.Duration(float64(ls[s])*(1-f)) + Ls[s]
		if v > best {
			best = v
		}
	}
	return best
}

// CriticalPath is a precomputed S_t evaluator over a fixed profile. Building
// it hoists the per-stage l_s and L_s vectors out of the query path, so
// Remaining is allocation-free — callers that evaluate S_t once per control
// tick (the Amdahl predictor) stay off the allocator.
type CriticalPath struct {
	ls []time.Duration // longest task per stage
	Ls []time.Duration // longest path after each stage
}

// NewCriticalPath precomputes the critical-path vectors from a profile.
func NewCriticalPath(p *profile.Profile) CriticalPath {
	c := CriticalPath{Ls: p.LongestPathAfter()}
	c.ls = make([]time.Duration, len(p.Stages))
	for s, sp := range p.Stages {
		c.ls[s] = sp.LongestTask
	}
	return c
}

// Remaining returns S_t for the given per-stage completed fractions (nil
// means nothing has run).
func (c CriticalPath) Remaining(fs []float64) time.Duration {
	return remainingCP(c.ls, c.Ls, fs)
}

// RemainingCriticalPath exposes S_t for one-shot callers. Per-tick callers
// should hold a NewCriticalPath instead: this convenience form rebuilds the
// stage vectors on every call.
func RemainingCriticalPath(p *profile.Profile, fs []float64) time.Duration {
	return NewCriticalPath(p).Remaining(fs)
}

// Span is the normalized [begin, end] interval of one stage's activity
// within a reference run, used by the minstage indicators (the paper's tb_s
// and te_s).
type Span struct {
	Begin, End float64
}

// SpansFromTrace extracts normalized per-stage spans from a recorded run.
// Stages absent from the trace get the full [0, 1] span, which makes the
// minstage indicators conservative about them.
func SpansFromTrace(tr *trace.JobTrace, numStages int) []Span {
	spans := make([]Span, numStages)
	total := tr.Completion
	for s := 0; s < numStages; s++ {
		b, e, ok := tr.StageSpan(s)
		if !ok || total <= 0 {
			spans[s] = Span{0, 1}
			continue
		}
		spans[s] = Span{
			Begin: clamp01(b.Seconds() / total.Seconds()),
			End:   clamp01(e.Seconds() / total.Seconds()),
		}
	}
	return spans
}

type minstage struct {
	name  string
	spans []Span
}

// NewMinStage builds the minstage indicator from spans observed in a
// previous run of the job.
func NewMinStage(spans []Span) Indicator {
	return &minstage{name: "minstage", spans: spans}
}

// NewMinStageInf builds the minstage-inf indicator; the caller supplies
// spans from an unconstrained (infinite-resource) simulation, e.g. via
// sim.RunInfinite and SpansFromTrace.
func NewMinStageInf(spans []Span) Indicator {
	return &minstage{name: "minstage-inf", spans: spans}
}

func (m *minstage) Name() string { return m.name }

func (m *minstage) Progress(fs []float64) float64 {
	best := 1.0
	unfinished := false
	for s, f := range fs {
		if f >= 1 {
			continue
		}
		unfinished = true
		sp := m.spans[s]
		v := sp.Begin + f*(sp.End-sp.Begin)
		if v < best {
			best = v
		}
	}
	if !unfinished {
		return 1
	}
	return clamp01(best)
}

// All returns every indicator the paper evaluates, in its Table (Fig. 10)
// order, given the profile and the two reference runs that parameterize the
// minstage variants.
func All(p *profile.Profile, prevRun, infRun *trace.JobTrace) ([]Indicator, error) {
	if prevRun == nil || infRun == nil {
		return nil, fmt.Errorf("progress: All requires a previous run and an unconstrained run")
	}
	n := p.Job.NumStages()
	return []Indicator{
		NewTotalWorkWithQ(p),
		NewTotalWork(p),
		NewVertexFrac(p),
		NewCP(p),
		NewMinStage(SpansFromTrace(prevRun, n)),
		NewMinStageInf(SpansFromTrace(infRun, n)),
	}, nil
}
