package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles jockeyvet once per test binary.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "jockeyvet")
	cmd := exec.Command("go", "build", "-o", tool, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building jockeyvet: %v\n%s", err, out)
	}
	return tool
}

// writeModule lays out a throwaway module so `go vet -vettool` runs the
// full unit protocol against controlled sources.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpvet\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func govet(t *testing.T, tool, dir string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go vet: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

func TestVettoolReportsViolations(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"sim/sim.go": `package sim

import "time"

func Step() time.Time { return time.Now() }
`,
	})
	out, code := govet(t, tool, dir)
	if code == 0 {
		t.Fatalf("go vet exited 0 on a walltime violation:\n%s", out)
	}
	if !strings.Contains(out, "time.Now reads the wall clock") {
		t.Fatalf("missing walltime diagnostic:\n%s", out)
	}
}

func TestVettoolHonorsIgnoreDirective(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"sim/sim.go": `package sim

import "time"

func Step() time.Time {
	return time.Now() //jockeyvet:ignore integration-test fixture
}
`,
	})
	out, code := govet(t, tool, dir)
	if code != 0 {
		t.Fatalf("go vet exited %d despite a reasoned ignore:\n%s", code, out)
	}
}

// TestRepositoryIsClean is the acceptance check: the whole tree must satisfy
// the determinism contract. CI runs the same invocation as a build gate;
// this test keeps it enforced for plain `go test ./...` runs too.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide vet is not short")
	}
	tool := buildTool(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	out, code := govet(t, tool, root)
	if code != 0 {
		t.Fatalf("jockeyvet found violations in the repository:\n%s", out)
	}
}
