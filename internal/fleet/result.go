package fleet

import (
	"fmt"
	"strings"
	"time"
)

// JobRecord is one offered job's flight record through the arbiter: what
// was promised, what was granted, how it ended, and — for a miss — which
// mechanism (admission wait, arbitration squeeze, or guard latch) carries
// the dominant blame.
type JobRecord struct {
	ID    int
	Shape string
	Value int
	Drift bool

	// Arrival is the offer time; Deadline is the SLO relative to it.
	Arrival  time.Duration
	Deadline time.Duration

	// Admission outcome.
	Admitted     bool
	AdmittedAt   time.Duration
	Deferrals    int
	Rejected     bool
	RejectReason string // "infeasible", "no-fit" (FIFO), "overload"
	Reservation  int

	// Execution outcome (admitted jobs only).
	Completed  bool
	Completion time.Duration // absolute, on the cluster clock
	Met        bool
	Utility    float64
	GuardMode  string // final guard rung, "" when unguarded
	Panics     int

	// Mechanism gaps in token-seconds: how much allocation each mechanism
	// withheld relative to the job's unconstrained desire.
	AdmissionGap   float64
	ArbitrationGap float64
	GuardGap       float64
	// Attribution names the blamed mechanism for a miss ("admission",
	// "arbitration", "guard", or "model" when no gap explains it);
	// empty for met jobs.
	Attribution string
}

// Result is one fleet replay's full record.
type Result struct {
	Arbitration Arbitration
	Guarded     bool
	Budget      int
	Epochs      int
	Jobs        []JobRecord

	// Tallies over Jobs (Missed counts rejected offers as misses: a
	// turned-away SLO job is a broken promise, not a statistics dodge).
	Admitted, Rejected int
	Met, Missed        int
	AggUtility         float64
	Utilization        float64
}

// finalize derives the tallies and per-miss attributions from the records.
func (r *Result) finalize() {
	for i := range r.Jobs {
		rec := &r.Jobs[i]
		r.AggUtility += rec.Utility
		switch {
		case rec.Rejected:
			r.Missed++
			rec.Attribution = "admission"
		case rec.Met:
			r.Met++
		default:
			r.Missed++
			rec.Attribution = rec.blame()
		}
	}
}

// blame names the dominant withholding mechanism. Ties and the no-gap case
// resolve in a fixed order so attribution is deterministic: a job that was
// both deferred and squeezed blames the earlier mechanism.
func (rec *JobRecord) blame() string {
	const eps = 1e-9
	best, blame := eps, "model"
	for _, m := range []struct {
		name string
		gap  float64
	}{
		{"admission", rec.AdmissionGap},
		{"arbitration", rec.ArbitrationGap},
		{"guard", rec.GuardGap},
	} {
		if m.gap > best {
			best, blame = m.gap, m.name
		}
	}
	return blame
}

// Name is the discipline's display name ("utility-greedy+guard" when the
// guard layer is on).
func (r *Result) Name() string {
	if r.Guarded {
		return string(r.Arbitration) + "+guard"
	}
	return string(r.Arbitration)
}

// Render formats the replay as a per-job table plus a summary line. The
// output is byte-deterministic and is what the golden parallelism tests
// compare.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet %s · budget %d · %d offers · %d epochs\n",
		r.Name(), r.Budget, len(r.Jobs), r.Epochs)
	rows := make([][]string, 0, len(r.Jobs))
	for i := range r.Jobs {
		rec := &r.Jobs[i]
		admit := "-"
		switch {
		case rec.Rejected:
			admit = "rej:" + rec.RejectReason
		case rec.Admitted:
			admit = fmtDur(rec.AdmittedAt)
			if rec.Deferrals > 0 {
				admit += fmt.Sprintf(" (+%d)", rec.Deferrals)
			}
		}
		end, met := "-", "-"
		if rec.Completed {
			end = fmtDur(rec.Completion)
			if rec.Met {
				met = "met"
			} else {
				met = "MISS"
			}
		} else if rec.Rejected {
			met = "MISS"
		}
		guard := rec.GuardMode
		if guard == "" {
			guard = "-"
		}
		attr := rec.Attribution
		if attr == "" {
			attr = "-"
		}
		shape := rec.Shape
		if rec.Drift {
			shape += "!"
		}
		rows = append(rows, []string{
			fmt.Sprint(rec.ID), shape, fmt.Sprint(rec.Value),
			fmtDur(rec.Arrival), fmtDur(rec.Deadline), admit,
			fmt.Sprint(rec.Reservation), end, met,
			fmt.Sprintf("%+.2f", rec.Utility), guard, attr,
		})
	}
	renderColumns(&b, []string{
		"id", "shape", "val", "arrive", "slo", "admit", "resv", "done", "slo?", "util", "guard", "blame",
	}, rows)
	fmt.Fprintf(&b, "admitted %d/%d · rejected %d · met %d · missed %d · utility %+.2f · utilization %.0f%%\n",
		r.Admitted, len(r.Jobs), r.Rejected, r.Met, r.Missed, r.AggUtility, 100*r.Utilization)
	return b.String()
}

// fmtDur renders a cluster time compactly (whole seconds).
func fmtDur(d time.Duration) string {
	return d.Truncate(time.Second).String()
}

// renderColumns writes an aligned left-justified table.
func renderColumns(b *strings.Builder, headers []string, rows [][]string) {
	width := make([]int, len(headers))
	for i, h := range headers {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := width[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	rule := make([]string, len(headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	writeRow(rule)
	for _, row := range rows {
		writeRow(row)
	}
}
