#!/usr/bin/env bash
# bench.sh — run the simulator-core hot-path benchmarks and emit a
# machine-readable BENCH_simcore.json so the perf trajectory is tracked
# PR-over-PR (CI uploads the file as a non-gating artifact).
#
# Usage: scripts/bench.sh [output.json]
#
# Tracked benchmarks (the ones the acceptance criteria of the hot-path PR
# pinned, plus the pre-existing throughput benchmark for continuity):
#   internal/sim:    BenchmarkSimRun            (fresh engine vs reused Runner)
#   internal/eventq: BenchmarkEventQueue        (steady-state Push+Pop)
#   internal/model:  BenchmarkCPAQuery          (Remaining / ExpectedUtility)
#   internal/model:  BenchmarkOnlineSimTick     (per-tick online prediction)
#   root:            BenchmarkSimulatorThroughput (job F, 6139 vertices)
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_simcore.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

run() { # run <package> <bench regex>
  go test -run NONE -bench "$2" -benchmem -benchtime "${BENCHTIME:-1s}" -count 1 "$1" | tee -a "$TMP"
}

: >"$TMP"
run ./internal/sim 'BenchmarkSimRun'
run ./internal/eventq 'BenchmarkEventQueue'
run ./internal/model 'BenchmarkCPAQuery|BenchmarkOnlineSimTick'
run . 'BenchmarkSimulatorThroughput'

# Parse `BenchmarkName-N  iters  X ns/op  Y B/op  Z allocs/op [extra metrics]`
# into JSON. awk keeps the script dependency-free (no jq in the container).
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name) # strip GOMAXPROCS suffix
  ns = ""; bytes = ""; allocs = ""
  for (i = 2; i < NF; i++) {
    if ($(i + 1) == "ns/op") ns = $i
    if ($(i + 1) == "B/op") bytes = $i
    if ($(i + 1) == "allocs/op") allocs = $i
  }
  if (ns == "") next
  line = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
  if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
  if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
  line = line "}"
  rows[n++] = line
}
END {
  printf "{\n  \"suite\": \"simcore\",\n  \"generated\": \"%s\",\n  \"benchmarks\": [\n", date
  for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
  printf "  ]\n}\n"
}' "$TMP" >"$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
