package model

import (
	"bytes"
	"fmt"
	"runtime"
	"slices"
	"strconv"
	"time"

	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/sim"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
)

// OnlineSim is the enhancement proposed in §4.4 of the paper: instead of
// indexing precomputed C(p, a) distributions through a progress indicator,
// it invokes the offline job simulator *at control time*, simulating forward
// from the job's actual per-stage completion state. This gives more precise
// control (no information is lost through the scalar progress index) at the
// cost of simulation work inside the control loop — the trade-off the paper
// describes when motivating the precomputed table.
//
// OnlineSim implements Predictor and can be swapped into the controller
// wherever a CPA is used.
type OnlineSim struct {
	p    *profile.Profile
	runs int
	seed uint64
	par  int

	// Single-entry memo: the control loop queries the same state for every
	// candidate allocation, and Remaining/ExpectedUtility share samples.
	// The state is identified by a fixed-size binary key (3 bytes per
	// stage + 8 bytes of elapsed seconds) built into a reused buffer, so a
	// memo-hit query performs no string building and no allocation; the
	// legacy string form, which seeds the forward runs, is rebuilt only
	// when the state actually changes (once per control tick). The
	// memoized sample slices are sorted ascending.
	memoKey     []byte
	keyScratch  []byte
	seedKey     string
	memoSamples map[int][]time.Duration

	// Per-worker reusable simulation engines plus result scratch; sized on
	// first use. Worker identity affects memory reuse only — seeds depend
	// on (seed, state, alloc, run index) and results are collected in run
	// order, so predictions are bit-identical at any parallelism.
	runners     []*sim.Runner
	completions []time.Duration
	succeeded   []bool
}

// NewOnlineSim builds the online predictor; runs is the number of forward
// simulations per (state, allocation) query (default 7).
func NewOnlineSim(p *profile.Profile, runs int, seed uint64) (*OnlineSim, error) {
	if p == nil {
		return nil, fmt.Errorf("model: NewOnlineSim requires a profile")
	}
	if runs <= 0 {
		runs = 7
	}
	return &OnlineSim{p: p, runs: runs, seed: seed, memoSamples: map[int][]time.Duration{}}, nil
}

// SetParallelism bounds the worker pool that executes the forward
// simulations of one query (0 or negative = runtime.GOMAXPROCS(0), the
// default). Predictions are bit-identical at any value: each forward run's
// seed depends only on (seed, state, alloc, run index), workers write
// disjoint result slots, and results are collected in run-index order.
// OnlineSim itself is not safe for concurrent queries; the knob parallelizes
// the simulations inside a single query.
func (o *OnlineSim) SetParallelism(n int) { o.par = n }

// Name implements Predictor.
func (o *OnlineSim) Name() string { return "online-sim" }

// refreshMemo recomputes the state key into the reused scratch buffer and,
// if the state changed, invalidates the memo and rebuilds the seed-label
// string. The rounding (1/1000 fractions, whole seconds) makes the memo
// survive tiny float noise within a tick; the seed string reproduces the
// pre-binary-key format byte for byte so derived seeds — and therefore
// every prediction — are unchanged.
func (o *OnlineSim) refreshMemo(st State) {
	buf := o.keyScratch[:0]
	for _, f := range st.FracDone {
		v := int(f * 1000)
		buf = append(buf, byte(v>>8), byte(v), ',')
	}
	secs := int64(st.Elapsed / time.Second)
	var sb [8]byte
	for i := range sb {
		sb[i] = byte(secs >> (8 * i))
	}
	stages := len(buf)
	buf = append(buf, sb[:]...)
	o.keyScratch = buf
	if bytes.Equal(buf, o.memoKey) {
		return
	}
	o.memoKey = append(o.memoKey[:0], buf...)
	o.seedKey = string(buf[:stages]) + strconv.Itoa(int(secs))
	clear(o.memoSamples)
}

// samples returns remaining-time samples for the state at allocation a,
// sorted ascending, simulating forward from the state's per-stage
// completion fractions. The returned slice is memoized and shared; callers
// must treat it as read-only.
func (o *OnlineSim) samples(st State, a int) []time.Duration {
	if a < 1 {
		a = 1
	}
	o.refreshMemo(st)
	if s, ok := o.memoSamples[a]; ok {
		return s
	}
	workers := o.par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > o.runs {
		workers = o.runs
	}
	if len(o.runners) < workers {
		o.runners = append(o.runners, make([]*sim.Runner, workers-len(o.runners))...)
	}
	if cap(o.completions) < o.runs {
		o.completions = make([]time.Duration, o.runs)
		o.succeeded = make([]bool, o.runs)
	}
	completions := o.completions[:o.runs]
	succeeded := o.succeeded[:o.runs]
	clear(succeeded)
	aLabel := strconv.Itoa(a)
	runParallelWorkers(o.runs, workers, func(worker, r int) {
		rn := o.runners[worker]
		if rn == nil {
			rn = sim.NewRunner()
			o.runners[worker] = rn
		}
		seed := stats.DeriveSeed(o.seed, "online", o.seedKey, aLabel, strconv.Itoa(r))
		tr, err := rn.Run(sim.Config{
			Profile:         o.p,
			Alloc:           a,
			Seed:            seed,
			InitialFracDone: st.FracDone,
		})
		if err != nil {
			// A stalled forward simulation means the state vector is
			// inconsistent with the plan; treat as "no information".
			return
		}
		completions[r] = tr.Completion
		succeeded[r] = true
	})
	out := make([]time.Duration, 0, o.runs)
	for r := 0; r < o.runs; r++ {
		if succeeded[r] {
			out = append(out, completions[r])
		}
	}
	slices.Sort(out)
	o.memoSamples[a] = out
	return out
}

// Remaining implements Predictor.
func (o *OnlineSim) Remaining(st State, a int, q float64) time.Duration {
	return stats.QuantileDurations(o.samples(st, a), q)
}

// ExpectedUtility implements Predictor.
func (o *OnlineSim) ExpectedUtility(st State, a int, slack float64, u utility.Fn) float64 {
	s := o.samples(st, a)
	if len(s) == 0 {
		return u.Utility(st.Elapsed)
	}
	var sum float64
	for _, rem := range s {
		sum += u.Utility(st.Elapsed + time.Duration(float64(rem)*slack))
	}
	return sum / float64(len(s))
}
