// Package eventq provides the deterministic discrete-event priority queue
// shared by the offline job simulator (internal/sim) and the shared-cluster
// simulator (internal/cluster).
//
// Events are ordered by time; ties are broken by insertion sequence so that
// simulations are reproducible regardless of heap internals.
//
// The queue is a hand-rolled binary heap rather than a container/heap
// adapter: the stdlib interface moves every element through `any`, which
// boxes one allocation per Push. Because (time, seq) is a total order, the
// pop sequence is identical to the container/heap implementation it
// replaced (pinned by the randomized equivalence test in eventq_test.go);
// only the allocation per event is gone. This matters because the queue
// sits on the simulator's innermost loop: one Push+Pop per task attempt,
// millions per C(p, a) table build.
package eventq

import (
	"time"
)

type item[T any] struct {
	at  time.Duration
	seq uint64
	v   T
}

// Queue is a time-ordered event queue. The zero value is ready to use.
type Queue[T any] struct {
	h   []item[T]
	seq uint64
}

// less orders the heap by (time, insertion sequence). seq values are unique,
// so this is a strict total order and pop order does not depend on sift
// internals.
//
//jockey:hotpath
func (q *Queue[T]) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].seq < q.h[j].seq
}

// Push schedules v at the given time. Steady-state pushes (within the
// queue's high-water capacity) do not allocate.
//
//jockey:hotpath
func (q *Queue[T]) Push(at time.Duration, v T) {
	q.seq++
	q.h = append(q.h, item[T]{at: at, seq: q.seq, v: v})
	q.up(len(q.h) - 1)
}

// Pop removes and returns the earliest event. ok is false if the queue is
// empty. Pop never allocates.
//
//jockey:hotpath
func (q *Queue[T]) Pop() (at time.Duration, v T, ok bool) {
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	it := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = item[T]{} // drop references so reused capacity cannot retain T's pointers
	q.h = q.h[:n]
	if n > 1 {
		q.down(0)
	}
	return it.at, it.v, true
}

// Peek returns the earliest event time without removing it.
//
//jockey:hotpath
func (q *Queue[T]) Peek() (at time.Duration, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// Len returns the number of queued events.
//
//jockey:hotpath
func (q *Queue[T]) Len() int { return len(q.h) }

// Reset empties the queue in place, keeping the backing array so a reused
// queue (sim.Runner runs thousands of simulations on one queue) reaches its
// high-water capacity once and never allocates again. The insertion
// sequence restarts at zero, so a Reset queue behaves bit-identically to a
// fresh one.
//
//jockey:hotpath
func (q *Queue[T]) Reset() {
	clear(q.h) // drop references held by T
	q.h = q.h[:0]
	q.seq = 0
}

// up restores the heap property from index i toward the root.
//
//jockey:hotpath
func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// down restores the heap property from index i toward the leaves.
//
//jockey:hotpath
func (q *Queue[T]) down(i int) {
	n := len(q.h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			return
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
}
