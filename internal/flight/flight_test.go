package flight

import (
	"strings"
	"testing"
	"time"

	"github.com/jockeysim/jockey/internal/control"
)

func TestParseLevelRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelNone, LevelDecisions, LevelCounterfactual} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", l.String(), got, err, l)
		}
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Errorf("ParseLevel(bogus) did not fail")
	}
	if got, err := ParseLevel(""); err != nil || got != LevelNone {
		t.Errorf("ParseLevel(\"\") = %v, %v; want LevelNone", got, err)
	}
}

func TestRecorderTopKAndRegret(t *testing.T) {
	rec := NewRecorder(Config{Job: "B", Policy: "jockey", Deadline: 20 * time.Minute, TopK: 2})
	d := &control.DecisionRecord{
		At:        time.Minute,
		Raw:       50,
		Granted:   10,
		Mechanism: control.MechHysteresis,
		Candidates: []control.CandidateEval{
			{Alloc: 10, Utility: 0.2, Predicted: 30 * time.Minute},
			{Alloc: 50, Utility: 0.9, Predicted: 15 * time.Minute},
			{Alloc: 100, Utility: 0.9, Predicted: 12 * time.Minute},
		},
	}
	rec.RecordDecision(d)
	// The borrowed slice must be copied, not aliased.
	d.Candidates[0].Utility = -1

	r := rec.Record()
	if len(r.Ticks) != 1 {
		t.Fatalf("got %d ticks, want 1", len(r.Ticks))
	}
	tick := r.Ticks[0]
	if len(tick.Candidates) != 2 {
		t.Fatalf("got %d candidates, want top 2", len(tick.Candidates))
	}
	// Best first; the utility tie at 0.9 breaks toward the smaller alloc.
	if tick.Candidates[0].Alloc != 50 || tick.Candidates[1].Alloc != 100 {
		t.Errorf("top-2 = %d, %d; want 50, 100", tick.Candidates[0].Alloc, tick.Candidates[1].Alloc)
	}
	if tick.Candidates[0].Utility != 0.9 {
		t.Errorf("retained candidate aliases the borrowed scratch (utility %v)", tick.Candidates[0].Utility)
	}
	// Granted 10 has utility 0.2, best is 0.9.
	if got, want := tick.Regret, 0.7; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("decision regret = %v, want %v", got, want)
	}
	if tick.Mechanism != control.MechHysteresis {
		t.Errorf("mechanism = %q", tick.Mechanism)
	}
}

func TestDecisionRegretGrantBetweenCandidates(t *testing.T) {
	// A guard override can grant an allocation that is not on the grid; the
	// regret lookup uses the smallest candidate at or above the grant.
	d := &control.DecisionRecord{
		Granted: 30,
		Candidates: []control.CandidateEval{
			{Alloc: 10, Utility: 0.1},
			{Alloc: 50, Utility: 0.6},
			{Alloc: 100, Utility: 1.0},
		},
	}
	if got, want := decisionRegret(d), 0.4; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("regret = %v, want %v", got, want)
	}
	// A grant above every candidate falls back to the last (largest).
	d.Granted = 200
	if got := decisionRegret(d); got != 0 {
		t.Errorf("regret at top grant = %v, want 0", got)
	}
}

func TestSpanCandidates(t *testing.T) {
	grid := []int{1, 2, 4, 9, 16, 23, 37, 54, 75, 100}
	got := SpanCandidates(grid, 4)
	if len(got) != 4 || got[0] != 1 || got[len(got)-1] != 100 {
		t.Fatalf("SpanCandidates = %v; want 4 values from 1 to 100", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("SpanCandidates not ascending: %v", got)
		}
	}
	if all := SpanCandidates(grid, 100); len(all) != len(grid) {
		t.Errorf("oversized n should return the full grid, got %v", all)
	}
	if got := SpanCandidates(nil, 3); got != nil {
		t.Errorf("empty grid should give nil, got %v", got)
	}
}

func TestWriteJSONRejectsInvalid(t *testing.T) {
	r := &Record{Schema: SchemaVersion, Job: "", Level: "decisions"}
	var b strings.Builder
	if err := r.WriteJSON(&b); err == nil {
		t.Errorf("WriteJSON accepted a record with no job name")
	}
}

func TestReadJSONRoundTrip(t *testing.T) {
	rec := NewRecorder(Config{Job: "B", Policy: "jockey-guarded", Level: LevelCounterfactual, Deadline: 35 * time.Minute})
	rec.RecordDecision(&control.DecisionRecord{
		At: time.Minute, Raw: 54, Granted: 54, Mechanism: control.MechFirstTick,
		Mode: "primary",
		Candidates: []control.CandidateEval{
			{Alloc: 1, Utility: 0, Predicted: time.Hour},
			{Alloc: 54, Utility: 1, Predicted: 20 * time.Minute},
		},
	})
	r := rec.Record()
	r.Counterfactual = &Regret{
		Candidates:     []int{1, 54},
		Replays:        []ReplayOutcome{{Alloc: 1, Completion: time.Hour}, {Alloc: 54, Completion: 20 * time.Minute, Met: true, AllocTokenSeconds: 64800}},
		Actual:         ReplayOutcome{Completion: 21 * time.Minute, Met: true, AllocTokenSeconds: 70000},
		HindsightAlloc: 54,
		TokenRegret:    5200,
		Attribution:    []MechanismShare{{Mechanism: AttributionModelError, Ticks: 3, GapTokenSeconds: 5200}},
		Attributed:     AttributionModelError,
	}

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	var b2 strings.Builder
	if err := got.WriteJSON(&b2); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if b.String() != b2.String() {
		t.Errorf("round trip not byte-identical:\n%s\nvs\n%s", b.String(), b2.String())
	}
	if got.Counterfactual == nil || got.Counterfactual.Attributed != AttributionModelError {
		t.Errorf("counterfactual section lost in round trip: %+v", got.Counterfactual)
	}
}
