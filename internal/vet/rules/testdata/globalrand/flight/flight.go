// Fixture: counterfactual replays must reproduce the recorded run exactly,
// so sampling replay candidates from the process-global source (or a
// time-seeded one) is banned; a generator seeded from run coordinates is the
// allowed path.
package flight

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func sampleCandidates(grid []int) []int {
	out := make([]int, 0, 3)
	for len(out) < 3 {
		out = append(out, grid[randv2.IntN(len(grid))]) // want `process-global random source`
	}
	rand.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] }) // want `process-global random source`
	return out
}

func jitteredReplaySeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from time.Now`
}

func derivedReplaySeed(runSeed uint64, alloc int) *randv2.Rand {
	return randv2.New(randv2.NewPCG(runSeed, uint64(alloc)))
}
