package model

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/jockeysim/jockey/internal/profile"
	"github.com/jockeysim/jockey/internal/progress"
	"github.com/jockeysim/jockey/internal/sim"
	"github.com/jockeysim/jockey/internal/stats"
	"github.com/jockeysim/jockey/internal/utility"
)

// CPAConfig parameterizes construction of the C(p, a) table.
type CPAConfig struct {
	// Allocs is the grid of candidate allocations to simulate. Required,
	// ascending and positive.
	Allocs []int
	// RunsPerAlloc is how many simulations feed each allocation's
	// distributions (default 10).
	RunsPerAlloc int
	// SampleEvery is the progress-sampling period within each simulated run
	// (default 30s; the paper records per discrete time step).
	SampleEvery time.Duration
	// Buckets is the number of progress cells (default 100, i.e. 1% cells).
	Buckets int
	// ReservoirCap bounds the samples kept per cell (default 64).
	ReservoirCap int
	// Seed drives the simulations.
	Seed uint64
	// Parallelism bounds the worker pool that runs the offline simulations
	// (default runtime.GOMAXPROCS(0)). The table is bit-identical at any
	// value: each (alloc, run) cell derives its RNG seed independently of
	// the others, workers only fill their own cell's sample slice, and the
	// slices are folded into the reservoirs in fixed index order afterwards.
	Parallelism int
}

func (c *CPAConfig) fill() error {
	if len(c.Allocs) == 0 {
		return fmt.Errorf("model: CPAConfig.Allocs is empty")
	}
	prev := 0
	for _, a := range c.Allocs {
		if a <= prev {
			return fmt.Errorf("model: CPAConfig.Allocs must be ascending and positive, got %v", c.Allocs)
		}
		prev = a
	}
	if c.RunsPerAlloc <= 0 {
		c.RunsPerAlloc = 10
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 30 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 100
	}
	if c.ReservoirCap <= 0 {
		c.ReservoirCap = 64
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return nil
}

// runParallel invokes fn(i) for every i in [0, n) on up to `workers`
// goroutines, pulling indices from a shared atomic counter. fn must only
// write state owned by index i.
func runParallel(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// CPA is the precomputed table of remaining-completion-time distributions
// C(p, a): for each allocation a in the grid and each progress bucket p, a
// bounded sample of observed remaining times from offline simulations.
type CPA struct {
	indicator progress.Indicator
	allocs    []int
	buckets   int
	// cells[ai][b] holds remaining-time samples for allocation index ai and
	// progress bucket b.
	cells [][]*stats.Reservoir
}

// BuildCPA runs the offline simulator across the allocation grid and builds
// the C(p, a) table, using the supplied indicator to compute progress p —
// the same indicator the control loop will use to index the table at
// runtime.
func BuildCPA(p *profile.Profile, ind progress.Indicator, cfg CPAConfig) (*CPA, error) {
	if p == nil || ind == nil {
		return nil, fmt.Errorf("model: BuildCPA requires a profile and an indicator")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &CPA{
		indicator: ind,
		allocs:    append([]int(nil), cfg.Allocs...),
		buckets:   cfg.Buckets,
		cells:     make([][]*stats.Reservoir, len(cfg.Allocs)),
	}
	for ai := range c.cells {
		c.cells[ai] = make([]*stats.Reservoir, cfg.Buckets+1)
		for b := range c.cells[ai] {
			c.cells[ai][b] = stats.NewReservoir(cfg.ReservoirCap)
		}
	}
	// Phase 1 — fan out: every (alloc, run) cell is an independent
	// simulation whose seed depends only on (Seed, alloc, run), so the
	// worker pool can execute cells in any order on any number of
	// goroutines. Each worker writes only its own cellObs slot.
	type obs struct {
		bucket int
		v      time.Duration
	}
	nCells := len(c.allocs) * cfg.RunsPerAlloc
	cellObs := make([][]obs, nCells)
	cellErr := make([]error, nCells)
	runParallel(nCells, cfg.Parallelism, func(idx int) {
		ai := idx / cfg.RunsPerAlloc
		run := idx % cfg.RunsPerAlloc
		alloc := c.allocs[ai]
		type sample struct {
			t time.Duration
			p float64
		}
		var samples []sample
		seed := stats.DeriveSeed(cfg.Seed, "cpa", fmt.Sprint(alloc), fmt.Sprint(run))
		tr, err := sim.Run(sim.Config{
			Profile:     p,
			Alloc:       alloc,
			Seed:        seed,
			SampleEvery: cfg.SampleEvery,
			OnSample: func(s sim.Snapshot) {
				samples = append(samples, sample{t: s.Time, p: ind.Progress(s.FracDone)})
			},
		})
		if err != nil {
			cellErr[idx] = err
			return
		}
		// t = 0 with p = 0 is always a valid observation.
		out := make([]obs, 0, len(samples)+2)
		out = append(out, obs{bucket: 0, v: tr.Completion})
		for _, s := range samples {
			remaining := tr.Completion - s.t
			if remaining < 0 {
				continue
			}
			out = append(out, obs{bucket: bucketOf(s.p, c.buckets), v: remaining})
		}
		// Completion itself: progress 1 has zero remaining time.
		out = append(out, obs{bucket: c.buckets, v: 0})
		cellObs[idx] = out
	})
	// Phase 2 — deterministic merge: fold the per-cell observations into
	// the reservoirs in fixed (alloc, run) index order with one shared
	// reservoir RNG. This replays the exact Add sequence of a sequential
	// build, so the table is bit-identical at any Parallelism.
	rng := stats.NewRNG(stats.DeriveSeed(cfg.Seed, "cpa-reservoir"))
	for idx := 0; idx < nCells; idx++ {
		if err := cellErr[idx]; err != nil {
			return nil, err
		}
		ai := idx / cfg.RunsPerAlloc
		for _, o := range cellObs[idx] {
			c.cells[ai][o.bucket].Add(o.v, rng)
		}
	}
	return c, nil
}

func (c *CPA) bucket(p float64) int { return bucketOf(p, c.buckets) }

// bucketOf maps progress p ∈ [0, 1] to one of buckets+1 cells, clamping
// out-of-range values. It is a free function so simulation workers can
// bucket their own samples without sharing CPA state.
func bucketOf(p float64, buckets int) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return buckets
	}
	return int(p * float64(buckets))
}

// Indicator returns the progress indicator the table was built with.
func (c *CPA) Indicator() progress.Indicator { return c.indicator }

// Allocs returns the allocation grid. The slice is owned by the CPA.
func (c *CPA) Allocs() []int { return c.allocs }

// SnapAlloc returns the grid allocation closest to a (ties go down).
func (c *CPA) SnapAlloc(a int) int {
	i := sort.SearchInts(c.allocs, a)
	if i == 0 {
		return c.allocs[0]
	}
	if i == len(c.allocs) {
		return c.allocs[len(c.allocs)-1]
	}
	if c.allocs[i]-a < a-c.allocs[i-1] {
		return c.allocs[i]
	}
	return c.allocs[i-1]
}

func (c *CPA) allocIndex(a int) int {
	snapped := c.SnapAlloc(a)
	for i, v := range c.allocs {
		if v == snapped {
			return i
		}
	}
	return 0 // unreachable
}

// samplesAt returns the remaining-time samples for progress p at allocation
// a, widening the search to neighbouring progress buckets until it finds a
// non-empty cell. The returned slice must not be modified.
func (c *CPA) samplesAt(p float64, a int) []time.Duration {
	ai := c.allocIndex(a)
	b := c.bucket(p)
	row := c.cells[ai]
	if vs := row[b].Values(); len(vs) > 0 {
		return vs
	}
	// Widen symmetrically; prefer the lower (more pessimistic) bucket.
	for d := 1; d <= c.buckets; d++ {
		if b-d >= 0 {
			if vs := row[b-d].Values(); len(vs) > 0 {
				return vs
			}
		}
		if b+d <= c.buckets {
			if vs := row[b+d].Values(); len(vs) > 0 {
				return vs
			}
		}
	}
	return nil
}

// Name implements Predictor.
func (c *CPA) Name() string { return "simulator" }

// Progress evaluates the table's indicator on a state.
func (c *CPA) Progress(st State) float64 { return c.indicator.Progress(st.FracDone) }

// Remaining implements Predictor: the q-quantile of C(p, a).
func (c *CPA) Remaining(st State, a int, q float64) time.Duration {
	samples := c.samplesAt(c.Progress(st), a)
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return stats.QuantileDurations(sorted, q)
}

// ExpectedUtility implements Predictor: the mean of U(elapsed + slack·C)
// over the sampled remaining times. Averaging over the distribution rather
// than a point estimate reproduces the paper's safety buffer: a heavy upper
// tail of C(p, a) drags expected utility down near the deadline.
func (c *CPA) ExpectedUtility(st State, a int, slack float64, u utility.Fn) float64 {
	samples := c.samplesAt(c.Progress(st), a)
	if len(samples) == 0 {
		return u.Utility(st.Elapsed)
	}
	var sum float64
	for _, rem := range samples {
		t := st.Elapsed + time.Duration(float64(rem)*slack)
		sum += u.Utility(t)
	}
	return sum / float64(len(samples))
}
