package experiments

import (
	"fmt"
	"time"

	"github.com/jockeysim/jockey/internal/cluster"
	"github.com/jockeysim/jockey/internal/control"
	"github.com/jockeysim/jockey/internal/stats"
)

// RobustnessScenario is one cell of the perturbation grid: a set of faults
// injected into every run of the cell. Drift offsets are relative to the SLO
// job's start; outages and contention windows are on the cluster clock (the
// SLO job arrives at SLOJobStart).
type RobustnessScenario struct {
	Name        string
	Drifts      []cluster.StageDrift
	RackOutages []cluster.RackOutage
	Contention  []cluster.ContentionWindow
}

// DefaultRobustnessScenarios builds the grid used by the robustness
// experiment, scaled to the job's deadline d:
//
//   - calm: no perturbation (the guard must not hurt the common case);
//   - drift-2x: every stage's service times double 15% of the way to the
//     deadline — the canonical stale-model fault (the profile was collected
//     on healthy inputs, the run hits a skewed partition or slow dependency);
//   - rack-outage: a third of the machines vanish for d/3;
//   - contention: the scheduler honors only half the guarantee for the middle
//     half of the run (a tenant surge under token contention, §2.4);
//   - combined: all three at once, milder drift.
func DefaultRobustnessScenarios(deadline time.Duration) []RobustnessScenario {
	d := deadline
	drift := func(factor float64, at time.Duration) []cluster.StageDrift {
		return []cluster.StageDrift{{At: at, Stage: -1, Factor: factor}}
	}
	outage := []cluster.RackOutage{{
		At:           SLOJobStart + d/3,
		FirstMachine: 0,
		Machines:     10,
		Duration:     d / 3,
	}}
	contention := []cluster.ContentionWindow{{
		From: SLOJobStart + d/4,
		To:   SLOJobStart + 3*d/4,
		Frac: 0.5,
	}}
	return []RobustnessScenario{
		{Name: "calm"},
		{Name: "drift-2x", Drifts: drift(2.0, time.Duration(0.15*float64(d)))},
		{Name: "rack-outage", RackOutages: outage},
		{Name: "contention", Contention: contention},
		{Name: "combined",
			Drifts:      drift(1.6, time.Duration(0.4*float64(d))),
			RackOutages: outage,
			Contention:  contention,
		},
	}
}

// robustnessVariant is one policy column of the grid.
type robustnessVariant struct {
	Name    string
	Policy  PolicyKind
	Guarded bool
}

// RobustnessVariants lists the compared policies: Jockey with and without the
// guard-rail layer, plus the paper's Amdahl and max-allocation baselines.
var RobustnessVariants = []robustnessVariant{
	{Name: "jockey-guarded", Policy: PolicyJockey, Guarded: true},
	{Name: "jockey", Policy: PolicyJockey},
	{Name: string(PolicyAmdahl), Policy: PolicyAmdahl},
	{Name: string(PolicyMax), Policy: PolicyMax},
}

// RobustnessRow aggregates one (scenario, policy) cell.
type RobustnessRow struct {
	Scenario  string
	Policy    string
	Runs, Met int
	MeanRel   float64 // mean completion/deadline
	MeanAbove float64 // mean allocation above oracle
	MeanChurn float64 // mean Σ|Δgranted| per run, tokens
	// Guard transition totals across the cell (guarded rows only).
	Reprofiles, Fallbacks, Panics int
}

// MissRate is the fraction of runs that missed the deadline.
func (r RobustnessRow) MissRate() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.Runs-r.Met) / float64(r.Runs)
}

// RobustnessResult is the guard-rail robustness experiment: deadline-miss
// rate and allocation churn across the perturbation grid.
type RobustnessResult struct {
	Job      string
	Deadline time.Duration
	Rows     []RobustnessRow
}

// Robustness runs the perturbation grid. Every variant in a (scenario, seed)
// pair sees the identical cluster, background load and faults, so the
// comparison is paired. Input scale is pinned to 1 so the injected faults are
// the only source of model staleness.
func Robustness(env *Env, job string, seedsPerCell int) (*RobustnessResult, error) {
	if job == "" {
		job = "B"
	}
	if seedsPerCell <= 0 {
		seedsPerCell = 3
	}
	short, _, err := env.Deadlines(job)
	if err != nil {
		return nil, err
	}
	scenarios := DefaultRobustnessScenarios(short)
	var tasks []execTask[Outcome]
	for _, sc := range scenarios {
		for _, v := range RobustnessVariants {
			for s := 0; s < seedsPerCell; s++ {
				sc, v, s := sc, v, s
				tasks = append(tasks, execTask[Outcome]{
					key: fmt.Sprintf("robust/%s/%s/%d", sc.Name, v.Name, s),
					run: func(x *Exec) (Outcome, error) {
						return env.RunExec(x, SLORun{
							Job:         job,
							Deadline:    short,
							Policy:      v.Policy,
							Guarded:     v.Guarded,
							Seed:        stats.DeriveSeed(env.Seed, "robust", job, sc.Name, fmt.Sprint(s)),
							InputScale:  1,
							Drifts:      sc.Drifts,
							RackOutages: sc.RackOutages,
							Contention:  sc.Contention,
						})
					},
				})
			}
		}
	}
	results, err := runGrid(env, tasks)
	if err != nil {
		return nil, err
	}
	out := &RobustnessResult{Job: job, Deadline: short}
	i := 0
	for _, sc := range scenarios {
		for _, v := range RobustnessVariants {
			row := RobustnessRow{Scenario: sc.Name, Policy: v.Name}
			var rels, aboves, churns []float64
			for s := 0; s < seedsPerCell; s++ {
				o := results[i]
				i++
				row.Runs++
				if o.Met {
					row.Met++
				}
				rels = append(rels, o.RelCompletion)
				aboves = append(aboves, o.AboveOracle)
				churns = append(churns, float64(AllocChurn(o.Trace.Timeline)))
				for _, ev := range o.GuardEvents {
					switch ev.Kind {
					case control.GuardEventReprofile:
						row.Reprofiles++
					case control.GuardEventFallback:
						row.Fallbacks++
					case control.GuardEventPanic:
						row.Panics++
					}
				}
			}
			row.MeanRel = stats.Mean(rels)
			row.MeanAbove = stats.Mean(aboves)
			row.MeanChurn = stats.Mean(churns)
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Render prints the robustness grid.
func (r *RobustnessResult) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scenario,
			row.Policy,
			fmt.Sprintf("%d/%d", row.Met, row.Runs),
			pct(row.MissRate()),
			fmt.Sprintf("%.2f", row.MeanRel),
			pct(row.MeanAbove),
			fmt.Sprintf("%.0f", row.MeanChurn),
			fmt.Sprintf("%d/%d/%d", row.Reprofiles, row.Fallbacks, row.Panics),
		})
	}
	return renderTable(
		fmt.Sprintf("Robustness: guard rails under injected faults (job %s, deadline %v)\n"+
			"(guard column: reprofiles/fallbacks/panics across the cell)", r.Job, r.Deadline),
		[]string{"scenario", "policy", "met", "miss", "rel", "above", "churn", "guard"},
		rows)
}
