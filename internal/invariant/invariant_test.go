package invariant

import (
	"errors"
	"testing"
)

func mustPanic(t *testing.T, f func()) *Violation {
	t.Helper()
	var v *Violation
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected a panic")
			}
			var ok bool
			v, ok = r.(*Violation)
			if !ok {
				t.Fatalf("panic value is %T, want *Violation", r)
			}
		}()
		f()
	}()
	return v
}

func TestAssertfHolds(t *testing.T) {
	Assertf(true, "never evaluated %d", 42) // must not panic
}

func TestAssertfViolated(t *testing.T) {
	v := mustPanic(t, func() { Assertf(false, "stage %q out of range %d", "s03", 7) })
	if got, want := v.Error(), `stage "s03" out of range 7`; got != want {
		t.Errorf("message %q, want %q", got, want)
	}
	if v.Err != nil {
		t.Errorf("Assertf violation carries err %v, want nil", v.Err)
	}
}

func TestNoErr(t *testing.T) {
	NoErr(nil, "never evaluated") // must not panic

	cause := errors.New("boom")
	v := mustPanic(t, func() { NoErr(cause, "building job %q", "A") })
	if !errors.Is(v, cause) {
		t.Errorf("violation does not unwrap to its cause")
	}
	if got, want := v.Error(), `building job "A": boom`; got != want {
		t.Errorf("message %q, want %q", got, want)
	}
}
