package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// WriteJSON serializes the record. The schema is stable (SchemaVersion) and
// deterministic: encoding/json emits struct fields in declaration order, and
// validation rejects non-finite floats up front, so a valid record always
// encodes, and byte-identical records mean byte-identical runs.
func (r *Record) WriteJSON(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("flight: encoding: %w", err)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(r)
}

// ReadJSON deserializes and validates a record written by WriteJSON.
func ReadJSON(rd io.Reader) (*Record, error) {
	var r Record
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("flight: decoding: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("flight: decoded record: %w", err)
	}
	return &r, nil
}

// Validate checks the invariants every consumable record holds: a known
// schema and level, a job name, time-ordered ticks, finite floats
// everywhere, and a counterfactual section (if present) whose replays align
// with its ascending candidate set. Records that pass always re-encode, and
// decode→encode→decode is stable (pinned by FuzzFlightJSON).
func (r *Record) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("record has schema %d, want %d", r.Schema, SchemaVersion)
	}
	if r.Job == "" {
		return fmt.Errorf("record has no job name")
	}
	if _, err := ParseLevel(r.Level); err != nil || r.Level == "" {
		return fmt.Errorf("record has unknown level %q", r.Level)
	}
	if r.TopK < 0 {
		return fmt.Errorf("record has negative top_k %d", r.TopK)
	}
	for i, t := range r.Ticks {
		if t.At < 0 {
			return fmt.Errorf("tick %d has negative time %v", i, t.At)
		}
		if i > 0 && t.At < r.Ticks[i-1].At {
			return fmt.Errorf("tick %d goes back in time (%v after %v)", i, t.At, r.Ticks[i-1].At)
		}
		if !finite(t.Deviation) || !finite(t.Regret) {
			return fmt.Errorf("tick %d has a non-finite float", i)
		}
		for j, c := range t.Candidates {
			if !finite(c.Utility) {
				return fmt.Errorf("tick %d candidate %d has non-finite utility", i, j)
			}
		}
	}
	if cf := r.Counterfactual; cf != nil {
		if len(cf.Replays) != len(cf.Candidates) {
			return fmt.Errorf("counterfactual has %d replays for %d candidates", len(cf.Replays), len(cf.Candidates))
		}
		for i, a := range cf.Candidates {
			if a <= 0 {
				return fmt.Errorf("counterfactual candidate %d is non-positive (%d)", i, a)
			}
			if i > 0 && a <= cf.Candidates[i-1] {
				return fmt.Errorf("counterfactual candidates not strictly ascending at %d", i)
			}
			if cf.Replays[i].Alloc != a {
				return fmt.Errorf("counterfactual replay %d has alloc %d, want %d", i, cf.Replays[i].Alloc, a)
			}
		}
		outs := append([]ReplayOutcome{cf.Actual}, cf.Replays...)
		for i, o := range outs {
			if !finite(o.AllocTokenSeconds) {
				return fmt.Errorf("counterfactual outcome %d has non-finite token-seconds", i)
			}
		}
		if !finite(cf.DeadlineRegret) || !finite(cf.TokenRegret) {
			return fmt.Errorf("counterfactual has a non-finite regret")
		}
		for i, s := range cf.Attribution {
			if !finite(s.GapTokenSeconds) {
				return fmt.Errorf("counterfactual attribution %d has non-finite token-seconds", i)
			}
		}
	}
	return nil
}

func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
