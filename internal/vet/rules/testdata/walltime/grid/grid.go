// Fixture: "grid" (the parallel experiment executor) is a deterministic
// package — worker goroutines may not pace or order themselves off the wall
// clock, or results would depend on scheduling.
package grid

import (
	"sync"
	"time"
)

func runPool(workers int, tasks []func()) {
	deadline := time.Now().Add(time.Minute) // want `time.Now reads the wall clock`
	_ = deadline
	var wg sync.WaitGroup
	next := 0
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(tasks) {
					return
				}
				time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
				tasks[i]()
			}
		}()
	}
	wg.Wait()
}
