// Fixture: "experiments" is not a deterministic package — the harness may
// time real executions — so walltime reports nothing here.
package experiments

import "time"

func measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
